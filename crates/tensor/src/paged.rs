//! Out-of-core row storage: the [`RowStorage`] trait and the LRU [`Pager`].
//!
//! The paper's sparsity premise says a batch only ever needs `O(batch)`
//! embedding rows, and the touched-row contract (see [`crate::ParamStore`])
//! names that working set *in advance* from the batch's incidence index
//! lists. That is exactly the precondition for demand paging: the full
//! `(N + R) × d` table lives behind a [`RowStorage`] backend (a file, or an
//! in-RAM vector for tests and the determinism baseline), and only a
//! fixed-budget cache of rows is pinned in RAM. The pager translates
//! absolute row indices to cache slots; kernels read and write the same
//! bytes they would in the resident layout, so **paging moves bytes, never
//! arithmetic** — the paged and in-RAM arms are bit-identical.
//!
//! # Replacement policy and the simcache cross-check
//!
//! Eviction is exact LRU over whole rows. Each [`Pager::ensure`] call
//! renews a *pin epoch* on every row it loads or hits, and refuses to evict
//! a slot pinned in the current epoch — a batch's working set must be
//! co-resident while kernels run. Because every pinned slot was by
//! definition accessed in the current epoch, pinned slots are always more
//! recent than every unpinned slot, so the LRU victim is never pinned
//! unless *all* slots are (the budget is smaller than the working set,
//! a hard error). Whenever `ensure` succeeds, its hit/miss/eviction
//! decisions are therefore those of a plain fully-associative LRU cache —
//! which is what lets the counters be cross-validated *exactly* against a
//! `simcache` model replaying the recorded row trace (the same
//! first-principles validation idiom the serving layer uses for its query
//! cache).

use crate::Tensor;

/// Sentinel for "row not resident" in [`Pager`] slot maps and for list
/// ends in the intrusive LRU links.
pub(crate) const NOT_RESIDENT: u32 = u32::MAX;

/// Random-access backing storage for a parameter's rows.
///
/// Implementations move raw `f32` rows between the backing medium and
/// caller-provided buffers; they never interpret the values. The in-crate
/// [`VecStorage`] keeps rows in RAM (tests, benches, the determinism
/// baseline); the file-backed implementation lives downstream (it wraps the
/// `kg` crate's on-disk embedding format) so this crate stays free of
/// format knowledge.
pub trait RowStorage: Send + std::fmt::Debug {
    /// Total number of rows in the backing store.
    fn rows(&self) -> usize;
    /// Row width in `f32` elements.
    fn cols(&self) -> usize;
    /// Reads rows `first .. first + count` into `out` (exactly
    /// `count * cols` elements), without allocating.
    ///
    /// # Errors
    ///
    /// I/O errors from the backing medium, or an out-of-range request.
    fn read_rows_into(
        &mut self,
        first: usize,
        count: usize,
        out: &mut [f32],
    ) -> std::io::Result<()>;
    /// Writes rows `first .. first + count` from `data` (exactly
    /// `count * cols` elements).
    ///
    /// # Errors
    ///
    /// I/O errors from the backing medium, or an out-of-range request.
    fn write_rows(&mut self, first: usize, count: usize, data: &[f32]) -> std::io::Result<()>;
    /// Flushes buffered writes to the backing medium. Default: no-op.
    ///
    /// # Errors
    ///
    /// I/O errors from the backing medium.
    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
    /// Backend I/O calls issued so far, as `(read_calls, write_calls)` —
    /// one coalesced multi-row transfer counts once, which is what makes
    /// the pager's run-coalescing observable. Backends without call
    /// tracking report `(0, 0)` (the default).
    fn io_ops(&self) -> (u64, u64) {
        (0, 0)
    }
}

/// In-RAM [`RowStorage`]: a plain row-major vector.
///
/// This is the trait's identity backend — paging through it exercises every
/// slot-translation and eviction path with no I/O, which is how the
/// bit-identity tests isolate the pager from the filesystem.
///
/// # Examples
///
/// ```
/// use tensor::paged::{RowStorage, VecStorage};
///
/// let mut s = VecStorage::new(4, 2);
/// s.write_rows(1, 1, &[5.0, 6.0]).unwrap();
/// let mut out = [0.0f32; 2];
/// s.read_rows_into(1, 1, &mut out).unwrap();
/// assert_eq!(out, [5.0, 6.0]);
/// ```
#[derive(Debug, Clone)]
pub struct VecStorage {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl VecStorage {
    /// Creates a zero-filled store of `rows × cols`.
    pub fn new(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates a store holding a copy of `t`'s rows.
    pub fn from_tensor(t: &Tensor) -> Self {
        Self {
            rows: t.rows(),
            cols: t.cols(),
            data: t.as_slice().to_vec(),
        }
    }

    /// The backing data, row-major.
    pub fn data(&self) -> &[f32] {
        &self.data
    }
}

fn check_range(
    rows: usize,
    first: usize,
    count: usize,
    len: usize,
    cols: usize,
) -> std::io::Result<()> {
    if first + count > rows || len != count * cols {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidInput,
            format!("row range {first}..{} out of bounds for {rows} rows (buffer {len} for {count}x{cols})", first + count),
        ));
    }
    Ok(())
}

impl RowStorage for VecStorage {
    fn rows(&self) -> usize {
        self.rows
    }

    fn cols(&self) -> usize {
        self.cols
    }

    fn read_rows_into(
        &mut self,
        first: usize,
        count: usize,
        out: &mut [f32],
    ) -> std::io::Result<()> {
        check_range(self.rows, first, count, out.len(), self.cols)?;
        out.copy_from_slice(&self.data[first * self.cols..(first + count) * self.cols]);
        Ok(())
    }

    fn write_rows(&mut self, first: usize, count: usize, data: &[f32]) -> std::io::Result<()> {
        check_range(self.rows, first, count, data.len(), self.cols)?;
        self.data[first * self.cols..(first + count) * self.cols].copy_from_slice(data);
        Ok(())
    }
}

/// Hit/miss/eviction counters for one [`Pager`].
///
/// These are **replay-exact**: with tracing enabled, feeding the recorded
/// row trace through a fully-associative LRU `simcache` model with one line
/// per row and capacity equal to the budget must reproduce `hits` and
/// `misses` bit-for-bit (see the module docs for why pinning never
/// perturbs the LRU decision on a successful run).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PageStats {
    /// Accesses that found the row resident.
    pub hits: u64,
    /// Accesses that had to load the row from backing storage.
    pub misses: u64,
    /// Rows displaced to make room (whether or not they were dirty).
    pub evictions: u64,
    /// Evicted or flushed rows whose bytes had changed and were written
    /// back to backing storage.
    pub write_backs: u64,
}

/// Demand pager for one parameter: a fixed budget of row slots over a
/// [`RowStorage`] backend, with exact-LRU eviction, per-batch pinning, and
/// dirty-row write-back.
///
/// The pager owns the *bookkeeping* (slot maps, LRU links, dirty bits,
/// counters) but not the cache bytes themselves — those stay in the
/// caller's `budget × cols` buffer (for `ParamStore`, the parameter's value
/// tensor, so peak-memory accounting sees exactly the pinned cache). All
/// methods take the cache buffer explicitly.
#[derive(Debug)]
pub struct Pager {
    storage: Box<dyn RowStorage>,
    /// Number of cache slots.
    budget: usize,
    /// Absolute row → slot, or [`NOT_RESIDENT`].
    slot_of: Vec<u32>,
    /// Slot → absolute row, or [`NOT_RESIDENT`] for never-used slots.
    row_of: Vec<u32>,
    /// Intrusive doubly-linked LRU list over slots (head = most recent).
    lru_prev: Vec<u32>,
    lru_next: Vec<u32>,
    head: u32,
    tail: u32,
    /// Next never-used slot (slots are handed out in order before any
    /// eviction happens).
    next_free: usize,
    /// Last [`Pager::ensure`] epoch that touched each slot; slots pinned in
    /// the current epoch are never evicted.
    pin_epoch: Vec<u64>,
    epoch: u64,
    /// Whether each slot's bytes differ (conservatively) from backing
    /// storage and must be written back on eviction or flush.
    dirty_slot: Vec<bool>,
    stats: PageStats,
    /// Recorded row-access trace for simcache replay (off by default; the
    /// CLI and the validation tests turn it on).
    trace: Option<Vec<u32>>,
    /// Scratch for merged working-set unions and slot translations; reused
    /// so steady-state paging is allocation-free.
    union_scratch: Vec<u32>,
    pub(crate) slot_scratch: Vec<u32>,
    /// Slots assigned to the current coalesced miss run ([`Pager::ensure`]).
    run_scratch: Vec<u32>,
    /// Staging buffer for coalesced multi-row reads and write-backs (rows
    /// are contiguous in the backing store but scattered across cache
    /// slots). Reused so steady-state paging stays allocation-free.
    io_scratch: Vec<f32>,
}

impl Pager {
    /// Creates a pager over `storage` with `budget` row slots.
    ///
    /// `budget` is clamped to the storage's row count (a budget of 100% of
    /// the table degenerates to "load once, never evict").
    pub fn new(storage: Box<dyn RowStorage>, budget: usize) -> Self {
        let rows = storage.rows();
        let budget = budget.max(1).min(rows.max(1));
        Self {
            storage,
            budget,
            slot_of: vec![NOT_RESIDENT; rows],
            row_of: vec![NOT_RESIDENT; budget],
            lru_prev: vec![NOT_RESIDENT; budget],
            lru_next: vec![NOT_RESIDENT; budget],
            head: NOT_RESIDENT,
            tail: NOT_RESIDENT,
            next_free: 0,
            pin_epoch: vec![0; budget],
            epoch: 0,
            dirty_slot: vec![false; budget],
            stats: PageStats::default(),
            trace: None,
            union_scratch: Vec::new(),
            slot_scratch: Vec::new(),
            run_scratch: Vec::new(),
            io_scratch: Vec::new(),
        }
    }

    /// Number of cache slots.
    pub fn budget(&self) -> usize {
        self.budget
    }

    /// Logical (backing-store) row count.
    pub fn rows(&self) -> usize {
        self.storage.rows()
    }

    /// Row width in `f32` elements.
    pub fn cols(&self) -> usize {
        self.storage.cols()
    }

    /// Counter snapshot.
    pub fn stats(&self) -> PageStats {
        self.stats
    }

    /// Backing-store I/O call counters `(read_calls, write_calls)`, for
    /// backends that track them (file-backed storage does; [`VecStorage`]
    /// reports zeros). One coalesced multi-row transfer counts once, so
    /// `read_calls ≤ misses` and `write_calls ≤ write_backs` measure how
    /// much run-coalescing saved.
    pub fn storage_io_ops(&self) -> (u64, u64) {
        self.storage.io_ops()
    }

    /// Enables or disables row-trace recording (for simcache replay).
    /// Enabling clears any previous trace.
    pub fn set_tracing(&mut self, on: bool) {
        self.trace = if on { Some(Vec::new()) } else { None };
    }

    /// The recorded row-access trace, if tracing is enabled.
    pub fn trace(&self) -> Option<&[u32]> {
        self.trace.as_deref()
    }

    /// Absolute row → slot map (one entry per logical row,
    /// `u32::MAX` = not resident).
    pub fn slot_of(&self) -> &[u32] {
        &self.slot_of
    }

    /// Slot → absolute row map (`u32::MAX` = never used).
    pub fn row_of(&self) -> &[u32] {
        &self.row_of
    }

    /// The cache slot of `row`, which must be resident.
    ///
    /// # Panics
    ///
    /// Panics if `row` is not resident — that is a working-set bug (a
    /// kernel touched a row outside the lists handed to
    /// [`Pager::ensure`]).
    #[inline]
    pub fn slot(&self, row: usize) -> usize {
        let s = self.slot_of[row];
        assert_ne!(
            s, NOT_RESIDENT,
            "row {row} not resident; it was outside the working set paged in for this batch"
        );
        s as usize
    }

    /// Marks `slot`'s bytes as diverged from backing storage.
    pub fn mark_slot_dirty(&mut self, slot: usize) {
        self.dirty_slot[slot] = true;
    }

    fn detach(&mut self, s: u32) {
        let (p, n) = (self.lru_prev[s as usize], self.lru_next[s as usize]);
        if p == NOT_RESIDENT {
            self.head = n;
        } else {
            self.lru_next[p as usize] = n;
        }
        if n == NOT_RESIDENT {
            self.tail = p;
        } else {
            self.lru_prev[n as usize] = p;
        }
    }

    fn push_front(&mut self, s: u32) {
        self.lru_prev[s as usize] = NOT_RESIDENT;
        self.lru_next[s as usize] = self.head;
        if self.head != NOT_RESIDENT {
            self.lru_prev[self.head as usize] = s;
        }
        self.head = s;
        if self.tail == NOT_RESIDENT {
            self.tail = s;
        }
    }

    /// Pages in `rows` (strictly ascending, deduplicated), pinning them for
    /// this epoch. `cache` is the `budget × cols` slot buffer. Hits renew
    /// LRU recency; misses load from storage into a free or LRU-evicted
    /// slot, writing dirty victims back first.
    ///
    /// Misses on **adjacent** rows coalesce: a maximal run of consecutive
    /// non-resident rows becomes one backing-store read (into a staging
    /// buffer, scattered to the run's slots) instead of one call per row.
    /// Slot assignment, LRU order, and the hit/miss/eviction counters are
    /// identical to the row-at-a-time walk — coalescing batches I/O calls,
    /// never decisions — so the simcache replay cross-check still holds.
    ///
    /// # Errors
    ///
    /// Fails if `rows` exceeds the slot budget (the batch working set does
    /// not fit — raise `--cache-rows`) or on backing-store I/O errors.
    /// Both are fatal to the training run; after an error, rows of the
    /// failing run may be mapped with unspecified cache bytes.
    pub fn ensure(&mut self, rows: &[u32], cache: &mut [f32]) -> crate::Result<()> {
        debug_assert!(rows.windows(2).all(|w| w[0] < w[1]), "rows must be sorted");
        let cols = self.storage.cols();
        self.epoch += 1;
        if let Some(t) = &mut self.trace {
            t.extend_from_slice(rows);
        }
        let mut i = 0;
        while i < rows.len() {
            let r = rows[i];
            let ri = r as usize;
            let s = self.slot_of[ri];
            if s != NOT_RESIDENT {
                self.stats.hits += 1;
                self.pin_epoch[s as usize] = self.epoch;
                self.detach(s);
                self.push_front(s);
                i += 1;
                continue;
            }
            // Maximal run of consecutive non-resident rows starting at `i`.
            let mut j = i + 1;
            while j < rows.len()
                && rows[j] == r + (j - i) as u32
                && self.slot_of[rows[j] as usize] == NOT_RESIDENT
            {
                j += 1;
            }
            let run = j - i;
            // Assign a slot per run row first (evicting victims as needed;
            // rows pinned earlier in this epoch — including earlier run
            // rows — are never victims), then issue one coalesced read.
            let mut run_slots = std::mem::take(&mut self.run_scratch);
            run_slots.clear();
            let mut failed = None;
            for k in 0..run {
                let rk = r + k as u32;
                self.stats.misses += 1;
                let s = if self.next_free < self.budget {
                    let s = self.next_free as u32;
                    self.next_free += 1;
                    s
                } else {
                    let victim = self.tail;
                    if victim == NOT_RESIDENT || self.pin_epoch[victim as usize] == self.epoch {
                        failed = Some(storage_error(format!(
                            "cache budget of {} rows is smaller than the working set ({} rows requested); raise --cache-rows",
                            self.budget,
                            rows.len()
                        )));
                        break;
                    }
                    match self.evict_slot(victim, cache, cols) {
                        Ok(()) => victim,
                        Err(e) => {
                            failed = Some(e);
                            break;
                        }
                    }
                };
                let si = s as usize;
                self.slot_of[rk as usize] = s;
                self.row_of[si] = rk;
                self.pin_epoch[si] = self.epoch;
                // A recycled slot was detached by `evict_slot`; a brand-new
                // one was never linked. Either way it joins at the head.
                self.push_front(s);
                self.dirty_slot[si] = false;
                run_slots.push(s);
            }
            let read_result = match (&failed, run_slots.as_slice()) {
                (Some(_), _) | (None, []) => Ok(()),
                (None, &[s]) => {
                    let si = s as usize;
                    self.storage
                        .read_rows_into(ri, 1, &mut cache[si * cols..(si + 1) * cols])
                        .map_err(io_error)
                }
                (None, slots) => {
                    let mut staging = std::mem::take(&mut self.io_scratch);
                    staging.resize(slots.len() * cols, 0.0);
                    let res = self
                        .storage
                        .read_rows_into(ri, slots.len(), &mut staging)
                        .map_err(io_error);
                    if res.is_ok() {
                        for (k, &s) in slots.iter().enumerate() {
                            let si = s as usize;
                            cache[si * cols..(si + 1) * cols]
                                .copy_from_slice(&staging[k * cols..(k + 1) * cols]);
                        }
                    }
                    self.io_scratch = staging;
                    res
                }
            };
            self.run_scratch = run_slots;
            if let Some(e) = failed {
                return Err(e);
            }
            read_result?;
            i = j;
        }
        Ok(())
    }

    fn evict_slot(&mut self, s: u32, cache: &mut [f32], cols: usize) -> crate::Result<()> {
        let si = s as usize;
        let old = self.row_of[si];
        debug_assert_ne!(old, NOT_RESIDENT);
        if self.dirty_slot[si] {
            self.storage
                .write_rows(old as usize, 1, &cache[si * cols..(si + 1) * cols])
                .map_err(io_error)?;
            self.stats.write_backs += 1;
            self.dirty_slot[si] = false;
        }
        self.slot_of[old as usize] = NOT_RESIDENT;
        self.row_of[si] = NOT_RESIDENT;
        self.stats.evictions += 1;
        self.detach(s);
        Ok(())
    }

    /// Writes every dirty resident row back to storage and flushes it. The
    /// cache stays resident (this is the checkpoint hook, not an unload).
    ///
    /// Dirty rows are written in **absolute row order** so runs of adjacent
    /// dirty rows coalesce into single backing-store writes (gathered
    /// through a staging buffer — adjacent rows are usually scattered
    /// across cache slots). The bytes that land in storage, and the
    /// `write_backs` counter (one per row), are identical to the
    /// slot-at-a-time walk.
    ///
    /// # Errors
    ///
    /// I/O errors from the backing store.
    pub fn flush(&mut self, cache: &[f32]) -> crate::Result<()> {
        let cols = self.storage.cols();
        let mut rows = std::mem::take(&mut self.union_scratch);
        rows.clear();
        for si in 0..self.budget {
            if self.dirty_slot[si] && self.row_of[si] != NOT_RESIDENT {
                rows.push(self.row_of[si]);
            }
        }
        rows.sort_unstable();
        let mut staging = std::mem::take(&mut self.io_scratch);
        let mut result = Ok(());
        let mut i = 0;
        while i < rows.len() {
            let r0 = rows[i];
            let mut j = i + 1;
            while j < rows.len() && rows[j] == r0 + (j - i) as u32 {
                j += 1;
            }
            let run = j - i;
            let res = if run == 1 {
                let si = self.slot_of[r0 as usize] as usize;
                self.dirty_slot[si] = false;
                self.stats.write_backs += 1;
                self.storage
                    .write_rows(r0 as usize, 1, &cache[si * cols..(si + 1) * cols])
                    .map_err(io_error)
            } else {
                staging.resize(run * cols, 0.0);
                for k in 0..run {
                    let si = self.slot_of[(r0 as usize) + k] as usize;
                    staging[k * cols..(k + 1) * cols]
                        .copy_from_slice(&cache[si * cols..(si + 1) * cols]);
                    self.dirty_slot[si] = false;
                    self.stats.write_backs += 1;
                }
                self.storage
                    .write_rows(r0 as usize, run, &staging[..run * cols])
                    .map_err(io_error)
            };
            if let Err(e) = res {
                result = Err(e);
                break;
            }
            i = j;
        }
        self.io_scratch = staging;
        self.union_scratch = rows;
        result?;
        self.storage.flush().map_err(io_error)?;
        Ok(())
    }

    /// Reads the full logical table from backing storage into `out`
    /// (callers flush first so the bytes are current).
    ///
    /// # Errors
    ///
    /// I/O errors from the backing store.
    pub fn read_all(&mut self, out: &mut [f32]) -> crate::Result<()> {
        let rows = self.storage.rows();
        self.storage.read_rows_into(0, rows, out).map_err(io_error)
    }

    /// Translates the sorted absolute `rows` into their (sorted) slot list
    /// in `slot_scratch`. Every row must be resident.
    pub(crate) fn translate_sorted(&mut self, rows: &[u32]) {
        self.slot_scratch.clear();
        for &r in rows {
            let s = self.slot_of[r as usize];
            assert_ne!(
                s, NOT_RESIDENT,
                "row {r} not resident during slot translation (touched outside the paged-in working set)"
            );
            self.slot_scratch.push(s);
        }
        self.slot_scratch.sort_unstable();
    }

    /// Merges index lists into one sorted, deduplicated union and pages it
    /// in via [`Pager::ensure`]. The union buffer is reused across calls,
    /// so the steady-state merge is allocation-free.
    ///
    /// # Errors
    ///
    /// See [`Pager::ensure`].
    pub(crate) fn ensure_union(
        &mut self,
        lists: &[&[u32]],
        cache: &mut [f32],
    ) -> crate::Result<()> {
        let mut rows = std::mem::take(&mut self.union_scratch);
        rows.clear();
        for l in lists {
            rows.extend_from_slice(l);
        }
        rows.sort_unstable();
        rows.dedup();
        let result = self.ensure(&rows, cache);
        self.union_scratch = rows;
        result
    }
}

pub(crate) fn storage_error(context: String) -> crate::Error {
    crate::Error::Storage { context }
}

pub(crate) fn io_error(e: std::io::Error) -> crate::Error {
    crate::Error::Storage {
        context: e.to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn counting_storage(rows: usize, cols: usize) -> Box<VecStorage> {
        let mut s = VecStorage::new(rows, cols);
        for r in 0..rows {
            let row: Vec<f32> = (0..cols).map(|c| (r * cols + c) as f32).collect();
            s.write_rows(r, 1, &row).unwrap();
        }
        Box::new(s)
    }

    #[test]
    fn vec_storage_roundtrip_and_bounds() {
        let mut s = VecStorage::new(3, 2);
        assert_eq!(s.rows(), 3);
        assert_eq!(s.cols(), 2);
        s.write_rows(2, 1, &[1.0, 2.0]).unwrap();
        let mut out = [0.0; 2];
        s.read_rows_into(2, 1, &mut out).unwrap();
        assert_eq!(out, [1.0, 2.0]);
        assert!(s.read_rows_into(3, 1, &mut out).is_err());
        assert!(s.write_rows(0, 2, &[0.0; 3]).is_err());
    }

    #[test]
    fn pager_loads_hits_and_evicts_lru() {
        let mut p = Pager::new(counting_storage(10, 2), 2);
        let mut cache = vec![0.0f32; 2 * 2];
        p.ensure(&[3], &mut cache).unwrap();
        assert_eq!(cache[0..2], [6.0, 7.0]);
        p.ensure(&[5], &mut cache).unwrap();
        assert_eq!(cache[2..4], [10.0, 11.0]);
        // Hit renews recency: 3 becomes MRU, so loading 7 evicts 5.
        p.ensure(&[3], &mut cache).unwrap();
        p.ensure(&[7], &mut cache).unwrap();
        assert_eq!(p.slot_of()[5], NOT_RESIDENT);
        assert_eq!(p.slot(3), 0);
        assert_eq!(p.slot(7), 1);
        assert_eq!(
            p.stats(),
            PageStats {
                hits: 1,
                misses: 3,
                evictions: 1,
                write_backs: 0
            }
        );
    }

    #[test]
    fn dirty_rows_write_back_on_evict_and_flush() {
        let mut p = Pager::new(counting_storage(10, 2), 2);
        let mut cache = vec![0.0f32; 2 * 2];
        p.ensure(&[1, 2], &mut cache).unwrap();
        let s1 = p.slot(1);
        cache[s1 * 2..s1 * 2 + 2].copy_from_slice(&[-1.0, -2.0]);
        p.mark_slot_dirty(s1);
        // Evicting row 1 (LRU order: 1 older than 2) must persist the edit.
        p.ensure(&[9], &mut cache).unwrap();
        assert_eq!(p.stats().write_backs, 1);
        let mut out = [0.0; 2];
        p.storage.read_rows_into(1, 1, &mut out).unwrap();
        assert_eq!(out, [-1.0, -2.0]);
        // Reloading sees the written-back bytes.
        p.ensure(&[1], &mut cache).unwrap();
        let s1 = p.slot(1);
        assert_eq!(cache[s1 * 2..s1 * 2 + 2], [-1.0, -2.0]);
        // Flush persists without unloading.
        let s1 = p.slot(1);
        cache[s1 * 2] = 42.0;
        p.mark_slot_dirty(s1);
        p.flush(&cache).unwrap();
        p.storage.read_rows_into(1, 1, &mut out).unwrap();
        assert_eq!(out[0], 42.0);
        assert_eq!(p.slot(1), s1, "flush keeps rows resident");
    }

    #[test]
    fn working_set_larger_than_budget_errors() {
        let mut p = Pager::new(counting_storage(10, 1), 2);
        let mut cache = vec![0.0f32; 2];
        let err = p.ensure(&[1, 4, 8], &mut cache).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("cache budget"), "unexpected error: {msg}");
    }

    #[test]
    fn budget_at_table_size_never_evicts() {
        let mut p = Pager::new(counting_storage(4, 1), 100);
        assert_eq!(p.budget(), 4, "budget clamps to the table");
        let mut cache = vec![0.0f32; 4];
        for _ in 0..3 {
            p.ensure(&[0, 1, 2, 3], &mut cache).unwrap();
        }
        assert_eq!(p.stats().evictions, 0);
        assert_eq!(p.stats().misses, 4);
        assert_eq!(p.stats().hits, 8);
    }

    /// Wraps [`VecStorage`] counting backend calls, to observe coalescing.
    #[derive(Debug)]
    struct CallCountingStorage {
        inner: VecStorage,
        reads: u64,
        writes: u64,
    }

    impl CallCountingStorage {
        fn new(rows: usize, cols: usize) -> Box<Self> {
            let mut inner = VecStorage::new(rows, cols);
            for r in 0..rows {
                let row: Vec<f32> = (0..cols).map(|c| (r * cols + c) as f32).collect();
                inner.write_rows(r, 1, &row).unwrap();
            }
            Box::new(Self {
                inner,
                reads: 0,
                writes: 0,
            })
        }
    }

    impl RowStorage for CallCountingStorage {
        fn rows(&self) -> usize {
            self.inner.rows()
        }
        fn cols(&self) -> usize {
            self.inner.cols()
        }
        fn read_rows_into(
            &mut self,
            first: usize,
            count: usize,
            out: &mut [f32],
        ) -> std::io::Result<()> {
            self.reads += 1;
            self.inner.read_rows_into(first, count, out)
        }
        fn write_rows(&mut self, first: usize, count: usize, data: &[f32]) -> std::io::Result<()> {
            self.writes += 1;
            self.inner.write_rows(first, count, data)
        }
        fn io_ops(&self) -> (u64, u64) {
            (self.reads, self.writes)
        }
    }

    #[test]
    fn contiguous_miss_run_coalesces_to_one_read_with_same_bytes() {
        let mut p = Pager::new(CallCountingStorage::new(32, 3), 16);
        let mut cache = vec![0.0f32; 16 * 3];
        let rows: Vec<u32> = (4..20).collect();
        p.ensure(&rows, &mut cache).unwrap();
        assert_eq!(
            p.storage_io_ops(),
            (1, 0),
            "a 16-row contiguous miss run must be one backend read"
        );
        assert_eq!(p.stats().misses, 16, "counters stay per-row");
        for &r in &rows {
            let s = p.slot(r as usize);
            let want: Vec<f32> = (0..3).map(|c| (r as usize * 3 + c) as f32).collect();
            assert_eq!(&cache[s * 3..(s + 1) * 3], &want[..], "row {r} bytes");
        }
    }

    #[test]
    fn gaps_and_resident_rows_break_runs() {
        let mut p = Pager::new(CallCountingStorage::new(32, 2), 16);
        let mut cache = vec![0.0f32; 16 * 2];
        // Two runs separated by a gap: two reads.
        p.ensure(&[0, 1, 2, 5, 6], &mut cache).unwrap();
        assert_eq!(p.storage_io_ops(), (2, 0));
        // Rows 0..3 and 5..7 are now resident: only 3..5 and 7..8 miss,
        // and residency breaks what would otherwise be one 0..8 run.
        p.ensure(&[0, 1, 2, 3, 4, 5, 6, 7], &mut cache).unwrap();
        assert_eq!(p.storage_io_ops(), (4, 0));
        assert_eq!(p.stats().hits, 5);
        assert_eq!(p.stats().misses, 8);
    }

    #[test]
    fn flush_coalesces_adjacent_dirty_rows_and_preserves_bytes() {
        let mut p = Pager::new(CallCountingStorage::new(32, 2), 8);
        let mut cache = vec![0.0f32; 8 * 2];
        // Load rows in an order that scatters adjacent rows across slots.
        p.ensure(&[10], &mut cache).unwrap();
        p.ensure(&[12], &mut cache).unwrap();
        p.ensure(&[11], &mut cache).unwrap();
        p.ensure(&[20], &mut cache).unwrap();
        for r in [10u32, 11, 12, 20] {
            let s = p.slot(r as usize);
            cache[s * 2..(s + 1) * 2].copy_from_slice(&[-(r as f32), r as f32]);
            p.mark_slot_dirty(s);
        }
        let writes_before = p.storage_io_ops().1;
        p.flush(&cache).unwrap();
        assert_eq!(
            p.storage_io_ops().1 - writes_before,
            2,
            "rows 10..13 must coalesce into one write; row 20 is its own"
        );
        assert_eq!(p.stats().write_backs, 4, "counters stay per-row");
        let mut out = [0.0f32; 2];
        for r in [10usize, 11, 12, 20] {
            p.storage.read_rows_into(r, 1, &mut out).unwrap();
            assert_eq!(out, [-(r as f32), r as f32], "row {r} written back");
        }
        // A second flush has nothing dirty: no further writes.
        let writes_before = p.storage_io_ops().1;
        p.flush(&cache).unwrap();
        assert_eq!(p.storage_io_ops().1, writes_before);
    }

    #[test]
    fn trace_records_accesses_in_order() {
        let mut p = Pager::new(counting_storage(10, 1), 4);
        let mut cache = vec![0.0f32; 4];
        p.set_tracing(true);
        p.ensure(&[2, 7], &mut cache).unwrap();
        p.ensure(&[1, 7], &mut cache).unwrap();
        assert_eq!(p.trace(), Some(&[2, 7, 1, 7][..]));
    }
}
