//! Minimal offline shim for the `serde` API surface this workspace uses.
//!
//! The workspace annotates a handful of config/data types with
//! `#[derive(Serialize, Deserialize)]` but never serializes them (there is no
//! `serde_json`/`bincode` in the dependency tree and no generic bounds on the
//! traits). This shim therefore provides empty marker traits plus no-op
//! derives so those annotations compile. If a future PR needs real
//! (de)serialization, replace `vendor/serde{,_derive}` with the actual
//! crates.io packages (see `vendor/README.md`).

/// Marker stand-in for `serde::Serialize`; no methods, no impls required.
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize`; no methods, no impls required.
pub trait Deserialize<'de> {}

pub use serde_derive::{Deserialize, Serialize};
