//! Tests for the downstream-task layer (`sptransx::tasks`): fit/predict
//! roundtrips, per-relation threshold correctness, and accuracy on separable
//! synthetic data — plus property tests pinning the invariants the unit
//! tests only spot-check.

use proptest::prelude::*;

use kg::{Triple, TripleStore};
use rand::{Rng, SeedableRng};
use sptransx::tasks::{EntityClassifier, TripleClassifier};
use tensor::Tensor;

/// An embedding matrix of `classes` well-separated Gaussian blobs;
/// entity `e` belongs to class `e % classes`.
fn blob_embeddings(entities: usize, classes: usize, dim: usize, seed: u64) -> Tensor {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let centers: Vec<f32> = (0..classes * dim)
        .map(|_| rng.gen_range(-5.0f32..5.0))
        .collect();
    let mut t = Tensor::zeros(entities, dim);
    for e in 0..entities {
        let c = e % classes;
        for j in 0..dim {
            t.as_mut_slice()[e * dim + j] = centers[c * dim + j] + rng.gen_range(-0.3f32..0.3);
        }
    }
    t
}

#[test]
fn entity_classifier_fit_predict_roundtrip() {
    // Every *training* example must be classified as its own label when the
    // clusters are separated — the fit/predict roundtrip.
    let emb = blob_embeddings(40, 4, 6, 1);
    let labeled: Vec<(u32, u32)> = (0..40).map(|e| (e as u32, (e % 4) as u32)).collect();
    let clf = EntityClassifier::fit(&emb, &labeled).unwrap();
    assert_eq!(clf.num_classes(), 4);
    for &(e, label) in &labeled {
        assert_eq!(clf.predict(emb.row(e as usize)), Some(label), "entity {e}");
    }
    assert_eq!(clf.accuracy(&emb, &labeled), 1.0);
}

#[test]
fn entity_classifier_generalizes_to_held_out_entities() {
    let emb = blob_embeddings(120, 3, 8, 2);
    // Train on the first 60 entities, test on the rest.
    let train: Vec<(u32, u32)> = (0..60).map(|e| (e as u32, (e % 3) as u32)).collect();
    let test: Vec<(u32, u32)> = (60..120).map(|e| (e as u32, (e % 3) as u32)).collect();
    let clf = EntityClassifier::fit(&emb, &train).unwrap();
    let acc = clf.accuracy(&emb, &test);
    assert_eq!(acc, 1.0, "well-separated blobs must classify perfectly");
    // Empty test set is defined as 0 accuracy, not a panic.
    assert_eq!(clf.accuracy(&emb, &[]), 0.0);
}

#[test]
fn triple_classifier_thresholds_sit_between_the_classes() {
    // Per relation, positives score below 1.0 and negatives above 2.0; the
    // fitted threshold must land in the gap and classify perfectly.
    let positives: TripleStore = (0..30).map(|i| Triple::new(i, i % 3, i + 1)).collect();
    let negatives: TripleStore = (0..30)
        .map(|i| Triple::new(i + 100, i % 3, i + 101))
        .collect();
    let score = |t: Triple| -> f32 {
        let scale = 1.0 + t.rel as f32; // relation-specific score scale
        if t.head < 100 {
            scale * (0.5 + 0.01 * t.head as f32)
        } else {
            scale * (2.5 + 0.01 * (t.head - 100) as f32)
        }
    };
    let clf = TripleClassifier::fit(&positives, &negatives, score);
    for rel in 0..3u32 {
        let t = clf.threshold(rel);
        let scale = 1.0 + rel as f32;
        assert!(
            t > scale * 0.8 && t < scale * 2.5,
            "relation {rel}: threshold {t} outside the class gap"
        );
        // is_true is exactly "distance <= threshold".
        assert!(clf.is_true(rel, t));
        assert!(!clf.is_true(rel, t + 1e-3));
    }
    assert_eq!(clf.accuracy(&positives, &negatives, score), 1.0);
}

#[test]
fn triple_classifier_unseen_relation_uses_global_default() {
    let positives: TripleStore = (0..10).map(|i| Triple::new(i, 0, i + 1)).collect();
    let negatives: TripleStore = (0..10).map(|i| Triple::new(i + 50, 0, i + 51)).collect();
    let score = |t: Triple| if t.head < 50 { 0.1 } else { 0.9 };
    let clf = TripleClassifier::fit(&positives, &negatives, score);
    // Relation 7 was never fitted: it falls back to the global threshold,
    // which here equals relation 0's (same score pool).
    assert_eq!(clf.threshold(7), clf.threshold(0));
    assert!(clf.is_true(7, 0.1));
    assert!(!clf.is_true(7, 0.9));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Nearest-centroid fit is permutation-invariant: shuffling the labeled
    /// examples never changes any prediction.
    #[test]
    fn entity_classifier_is_permutation_invariant(
        entities in 6usize..40,
        classes in 1usize..5,
        seed in 0u64..500,
    ) {
        let classes = classes.min(entities);
        let emb = blob_embeddings(entities, classes, 4, seed);
        let labeled: Vec<(u32, u32)> =
            (0..entities).map(|e| (e as u32, (e % classes) as u32)).collect();
        let mut shuffled = labeled.clone();
        shuffled.reverse();
        shuffled.rotate_left(entities / 3);
        let a = EntityClassifier::fit(&emb, &labeled).unwrap();
        let b = EntityClassifier::fit(&emb, &shuffled).unwrap();
        for e in 0..entities {
            prop_assert_eq!(a.predict(emb.row(e)), b.predict(emb.row(e)));
        }
    }

    /// The fitted threshold is optimal: no other cut point achieves strictly
    /// higher accuracy on the fitting data.
    #[test]
    fn triple_threshold_is_optimal_on_fitting_data(
        pos_scores in proptest::collection::vec(0.0f32..10.0, 1..20),
        neg_scores in proptest::collection::vec(0.0f32..10.0, 1..20),
    ) {
        let positives: TripleStore =
            (0..pos_scores.len()).map(|i| Triple::new(i as u32, 0, 1)).collect();
        let negatives: TripleStore =
            (0..neg_scores.len()).map(|i| Triple::new(100 + i as u32, 0, 1)).collect();
        let score = |t: Triple| -> f32 {
            if t.head < 100 {
                pos_scores[t.head as usize]
            } else {
                neg_scores[(t.head - 100) as usize]
            }
        };
        let clf = TripleClassifier::fit(&positives, &negatives, score);
        let fitted_acc = clf.accuracy(&positives, &negatives, score);
        // Sweep every candidate cut (below, between, above each score).
        let mut all: Vec<f32> = pos_scores.iter().chain(&neg_scores).copied().collect();
        all.sort_by(f32::total_cmp);
        let mut cuts = vec![all[0] - 1.0, all[all.len() - 1] + 1.0];
        cuts.extend(all.windows(2).map(|w| (w[0] + w[1]) / 2.0));
        cuts.extend(all.iter().copied());
        for cut in cuts {
            let correct = pos_scores.iter().filter(|&&s| s <= cut).count()
                + neg_scores.iter().filter(|&&s| s > cut).count();
            let acc = correct as f32 / (pos_scores.len() + neg_scores.len()) as f32;
            prop_assert!(
                fitted_acc >= acc - 1e-6,
                "cut {} beats the fitted threshold: {} > {}", cut, acc, fitted_acc
            );
        }
    }
}
