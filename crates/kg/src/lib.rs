//! Knowledge-graph data handling: triple stores, dataset loading and
//! generation, negative sampling, batching, and link-prediction evaluation.
//!
//! This crate is the reproduction's analog of the SparseTransX framework's
//! data modules (paper §4.7.2): dataloaders for standard KG formats, a
//! streaming store for embeddings too large for memory, a negative sampler,
//! and the evaluation protocol (filtered Hits@K / MRR) used in §6.
//!
//! Because the paper's seven benchmark datasets (FB15K, WN18, BioKG, …) are
//! distributed as files we cannot fetch offline, [`synthetic`] generates
//! graphs with the same entity/relation/triple counts, Zipf-distributed
//! entity popularity and a realistic mix of relation cardinalities — the
//! properties that drive both training cost and ranking difficulty.
//!
//! **Place in the workspace:** depends only on `xparallel` (parallel
//! evaluation); `sptransx` consumes its datasets, batch plans, and samplers,
//! and the bench harness its synthetic dataset shapes.
//!
//! # Examples
//!
//! ```
//! use kg::synthetic::SyntheticKgBuilder;
//!
//! let ds = SyntheticKgBuilder::new(100, 5).triples(500).seed(1).build();
//! assert_eq!(ds.num_entities, 100);
//! assert!(ds.train.len() > 0);
//! ```

#![deny(missing_docs)]

mod batch;
mod dataset;
pub mod eval;
mod loader;
mod negative;
pub mod stats;
pub mod stream;
pub mod synthetic;
mod triple;

pub use batch::{Batch, BatchPlan};
pub use dataset::Dataset;
pub use loader::{load_tsv, write_tsv, Vocab};
pub use negative::{BernoulliSampler, NegativeSampler, UniformSampler};
pub use triple::{Triple, TripleSet, TripleStore};

/// Convenience alias for fallible operations in this crate.
pub type Result<T> = std::result::Result<T, Error>;

/// Errors produced by dataset loading and validation.
#[derive(Debug)]
#[non_exhaustive]
pub enum Error {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// A line of an input file could not be parsed.
    Parse {
        /// 1-based line number.
        line: usize,
        /// Description of the problem.
        context: String,
    },
    /// An index exceeded the declared entity/relation count.
    IndexOutOfBounds {
        /// Description of the offending value.
        context: String,
    },
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Error::Io(e) => write!(f, "I/O error: {e}"),
            Error::Parse { line, context } => write!(f, "parse error at line {line}: {context}"),
            Error::IndexOutOfBounds { context } => write!(f, "index out of bounds: {context}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for Error {
    fn from(e: std::io::Error) -> Self {
        Error::Io(e)
    }
}
