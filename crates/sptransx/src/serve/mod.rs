//! Online link-prediction serving: top-K completion queries over a trained
//! model, with an ANN candidate index so a query does not score all `N`
//! entities.
//!
//! Training ends with `sptx train` writing the stacked `(N + R) × d`
//! embedding matrix of the translational models to disk; this module is the
//! inference path the ROADMAP's "millions of users" north star needs on top
//! of it:
//!
//! * [`ServeModel`] loads that matrix back and implements
//!   [`kg::eval::BatchScorer`] through the **same** shared kernels training
//!   evaluation uses (the scorer module's `stacked_query_rows` SpMM +
//!   pool-parallel distance pass) — so the serving engine's exact arm is
//!   bit-identical to `evaluate_batched`'s scoring by construction.
//! * [`IvfIndex`] clusters the entity embeddings (deterministic k-means on
//!   the shared `xparallel` pool) into inverted lists; a query probes the
//!   `nprobe` nearest centroids and rescores only those candidates. `nprobe`
//!   is the cost/recall knob: candidate scores are computed with the same
//!   `Norm::distance` arithmetic as the full scan, so `nprobe == clusters`
//!   *is* the full scan, and recall@K against the exact arm is a pure
//!   candidate-coverage measure.
//! * [`QueryCache`] absorbs the hot head of Zipf-skewed traffic
//!   ([`ZipfWorkload`]); its exact-LRU policy is cross-validated against a
//!   fully-associative `simcache` model in the serving tests.
//!
//! **Determinism scope:** index build, query answers, cache behaviour and
//! the workload stream are all bit-identical at any `SPTX_NUM_THREADS`.
//! Only *latency* (what `benches/serve.rs` measures) varies with threads.

mod cache;
mod index;
mod workload;

pub use cache::{QueryCache, QueryCacheStats, QueryKey};
pub use index::{IvfConfig, IvfIndex};
pub use workload::ZipfWorkload;

use std::path::Path;
use std::time::Duration;

use kg::eval::BatchScorer;
use kg::stream::EmbeddingStore;

use crate::model::Norm;
use crate::scorer::{stacked_query_rows, translational_scores_into, QueryDir};
use crate::{Error, Result};

/// Which slot of a triple a completion query asks for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Given `(h, r, ?)`, rank candidate tails.
    Tail,
    /// Given `(?, r, t)`, rank candidate heads.
    Head,
}

/// One top-K completion request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Query {
    /// Which slot to complete.
    pub dir: Direction,
    /// The known entity (head for [`Direction::Tail`], tail for
    /// [`Direction::Head`]).
    pub entity: u32,
    /// The relation.
    pub rel: u32,
}

impl Query {
    /// The `(u32, u32)` pair in the order the [`BatchScorer`] API expects:
    /// `(head, rel)` for tail queries, `(rel, tail)` for head queries.
    fn pair(&self) -> (u32, u32) {
        match self.dir {
            Direction::Tail => (self.entity, self.rel),
            Direction::Head => (self.rel, self.entity),
        }
    }

    fn query_dir(&self) -> QueryDir {
        match self.dir {
            Direction::Tail => QueryDir::Tails,
            Direction::Head => QueryDir::Heads,
        }
    }
}

/// A loaded stacked-translational model (TransE / TorusE family) ready to
/// answer queries.
///
/// Holds the `(N + R) × d` matrix `sptx train` saves — entity rows first,
/// relation rows below — plus the distance norm, which the save format does
/// not record and must therefore match the training configuration.
#[derive(Debug, Clone)]
pub struct ServeModel {
    emb: Vec<f32>,
    num_entities: usize,
    num_relations: usize,
    dim: usize,
    norm: Norm,
}

impl ServeModel {
    /// Wraps an in-memory stacked embedding matrix.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Config`] when the buffer length disagrees with
    /// `(num_entities + num_relations) * dim`, or any count is zero.
    pub fn from_stacked(
        emb: Vec<f32>,
        num_entities: usize,
        num_relations: usize,
        dim: usize,
        norm: Norm,
    ) -> Result<Self> {
        if num_entities == 0 || num_relations == 0 || dim == 0 {
            return Err(Error::config(
                "serve model needs entities, relations and a positive dimension",
            ));
        }
        let expected = (num_entities + num_relations) * dim;
        if emb.len() != expected {
            return Err(Error::config(format!(
                "embedding buffer has {} floats, expected {expected} for ({num_entities} + {num_relations}) x {dim}",
                emb.len()
            )));
        }
        Ok(Self {
            emb,
            num_entities,
            num_relations,
            dim,
            norm,
        })
    }

    /// Loads the `sptx train` embedding dump at `path`.
    ///
    /// The file stores its own row/column counts; `num_entities` fixes where
    /// entity rows end and relation rows begin, and is validated against the
    /// stored row count.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Kg`] on I/O or format failures and [`Error::Serve`]
    /// when the stored shape cannot be a stacked `(N + R) × d` matrix for
    /// the given `num_entities`.
    pub fn load(path: impl AsRef<Path>, num_entities: usize, norm: Norm) -> Result<Self> {
        let mut store = EmbeddingStore::open(path).map_err(Error::Kg)?;
        let rows = store.rows();
        let dim = store.cols();
        if rows <= num_entities {
            return Err(Error::serve(format!(
                "embedding file has {rows} rows but the vocabulary has {num_entities} entities — no relation rows left"
            )));
        }
        let num_relations = rows - num_entities;
        let emb = store.read_rows(0, rows).map_err(Error::Kg)?;
        Self::from_stacked(emb, num_entities, num_relations, dim, norm)
    }

    /// Number of candidate entities.
    pub fn num_entities(&self) -> usize {
        self.num_entities
    }

    /// Number of relations.
    pub fn num_relations(&self) -> usize {
        self.num_relations
    }

    /// Embedding dimension.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Distance norm used for scoring.
    pub fn norm(&self) -> Norm {
        self.norm
    }

    /// The stacked `(N + R) × d` matrix, row-major (entities first).
    pub fn embeddings(&self) -> &[f32] {
        &self.emb
    }

    /// Materializes the query vector `q = h + r` (tail queries) or
    /// `q = t − r` (head queries) through the same SpMM kernel the batched
    /// evaluation engine uses — the root of the exact/ANN bit-identity.
    ///
    /// # Panics
    ///
    /// Panics if the query's entity or relation is out of range.
    pub fn query_vector(&self, query: &Query) -> Vec<f32> {
        stacked_query_rows(
            &self.emb,
            self.num_entities,
            self.num_relations,
            self.dim,
            &[query.pair()],
            query.query_dir(),
        )
    }
}

impl BatchScorer for ServeModel {
    fn num_entities(&self) -> usize {
        self.num_entities
    }

    fn score_tails_into(&self, queries: &[(u32, u32)], out: &mut [f32]) {
        translational_scores_into(
            &self.emb,
            self.num_entities,
            self.num_relations,
            self.dim,
            self.norm,
            queries,
            QueryDir::Tails,
            out,
        );
    }

    fn score_heads_into(&self, queries: &[(u32, u32)], out: &mut [f32]) {
        translational_scores_into(
            &self.emb,
            self.num_entities,
            self.num_relations,
            self.dim,
            self.norm,
            queries,
            QueryDir::Heads,
            out,
        );
    }
}

/// The deterministic score order used everywhere in this module: primary by
/// score ascending (lower distance = better) under IEEE total order (NaN
/// ranks worst among non-negative distances), ties by entity id ascending.
fn score_order(a: &(u32, f32), b: &(u32, f32)) -> std::cmp::Ordering {
    a.1.total_cmp(&b.1).then(a.0.cmp(&b.0))
}

/// The `k` best `(entity, score)` pairs under the deterministic score order,
/// best first. The result depends only on the *set* of input pairs, never on
/// their iteration order.
pub fn top_k(pairs: impl IntoIterator<Item = (u32, f32)>, k: usize) -> Vec<(u32, f32)> {
    let mut v: Vec<(u32, f32)> = pairs.into_iter().collect();
    if k == 0 || v.is_empty() {
        return Vec::new();
    }
    let k = k.min(v.len());
    if k < v.len() {
        v.select_nth_unstable_by(k - 1, score_order);
        v.truncate(k);
    }
    v.sort_unstable_by(score_order);
    v
}

/// Fraction of `exact`'s entity ids that `approx` also returned
/// (`|ids(exact) ∩ ids(approx)| / |exact|`; 1.0 when `exact` is empty).
pub fn recall_at_k(exact: &[(u32, f32)], approx: &[(u32, f32)]) -> f64 {
    if exact.is_empty() {
        return 1.0;
    }
    let found = exact
        .iter()
        .filter(|(id, _)| approx.iter().any(|(a, _)| a == id))
        .count();
    found as f64 / exact.len() as f64
}

/// One ANN answer plus its cost accounting.
#[derive(Debug, Clone, PartialEq)]
pub struct AnnAnswer {
    /// The top-K `(entity, score)` pairs, best first.
    pub hits: Vec<(u32, f32)>,
    /// How many candidate entities were scored (0 on a cache hit).
    pub scored: usize,
    /// Whether the answer came from the query cache.
    pub cache_hit: bool,
}

/// The serving engine: a [`ServeModel`], its [`IvfIndex`], and an optional
/// [`QueryCache`], with reusable scratch buffers so steady-state queries
/// allocate only their answer vectors.
#[derive(Debug)]
pub struct ServeEngine {
    model: ServeModel,
    index: IvfIndex,
    cache: Option<QueryCache>,
    /// Full-scan score buffer (`N` entries).
    scan_buf: Vec<f32>,
    /// ANN candidate ids.
    cand_buf: Vec<u32>,
    /// ANN candidate scores.
    score_buf: Vec<f32>,
}

impl ServeEngine {
    /// Couples a model with an index built over its entity embeddings.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Serve`] when the index disagrees with the model on
    /// dimension or entity count.
    pub fn new(model: ServeModel, index: IvfIndex) -> Result<Self> {
        if index.dim() != model.dim() {
            return Err(Error::serve(format!(
                "index dimension {} does not match model dimension {}",
                index.dim(),
                model.dim()
            )));
        }
        if index.num_entities() != model.num_entities() {
            return Err(Error::serve(format!(
                "index covers {} entities, model has {}",
                index.num_entities(),
                model.num_entities()
            )));
        }
        Ok(Self {
            model,
            index,
            cache: None,
            scan_buf: Vec::new(),
            cand_buf: Vec::new(),
            score_buf: Vec::new(),
        })
    }

    /// Enables an exact-LRU answer cache holding `capacity` entries.
    #[must_use]
    pub fn with_cache(mut self, capacity: usize) -> Self {
        self.cache = Some(QueryCache::new(capacity));
        self
    }

    /// The loaded model.
    pub fn model(&self) -> &ServeModel {
        &self.model
    }

    /// The candidate index.
    pub fn index(&self) -> &IvfIndex {
        &self.index
    }

    /// Cache hit/miss counters, if a cache is enabled.
    pub fn cache_stats(&self) -> Option<QueryCacheStats> {
        self.cache.as_ref().map(|c| c.stats())
    }

    /// Ground-truth arm: scores **all** `N` entities through the
    /// [`BatchScorer`] kernels and returns the top-K, best first.
    ///
    /// # Panics
    ///
    /// Panics if the query's entity or relation is out of range.
    pub fn answer_exact(&mut self, query: &Query, k: usize) -> Vec<(u32, f32)> {
        let n = self.model.num_entities();
        self.scan_buf.resize(n, 0.0);
        match query.dir {
            Direction::Tail => self
                .model
                .score_tails_into(&[query.pair()], &mut self.scan_buf),
            Direction::Head => self
                .model
                .score_heads_into(&[query.pair()], &mut self.scan_buf),
        }
        top_k(
            self.scan_buf
                .iter()
                .enumerate()
                .map(|(i, &s)| (i as u32, s)),
            k,
        )
    }

    /// ANN arm: probes the `nprobe` nearest clusters and rescores only their
    /// entities, with the exact same distance arithmetic as the full scan —
    /// so every returned score equals the full scan's score for that entity
    /// bit-for-bit, and `nprobe == num_clusters` reproduces
    /// [`ServeEngine::answer_exact`] exactly.
    ///
    /// With a cache enabled, repeated `(dir, entity, rel, k, nprobe)` keys
    /// are answered from the cache (`scored == 0`).
    ///
    /// # Panics
    ///
    /// Panics if the query's entity or relation is out of range.
    pub fn answer_ann(&mut self, query: &Query, k: usize, nprobe: usize) -> AnnAnswer {
        let key: QueryKey = (
            query.dir as u8,
            query.entity,
            query.rel,
            k as u32,
            nprobe as u32,
        );
        if let Some(cache) = &mut self.cache {
            if let Some(hit) = cache.get(&key) {
                return AnnAnswer {
                    hits: hit.to_vec(),
                    scored: 0,
                    cache_hit: true,
                };
            }
        }
        let qv = self.model.query_vector(query);
        self.index.probe(&qv, nprobe, &mut self.cand_buf);
        let scored = self.cand_buf.len();
        self.score_buf.resize(scored, 0.0);
        let (emb, d) = (self.model.embeddings(), self.model.dim());
        let (norm, cands) = (self.model.norm(), &self.cand_buf);
        xparallel::parallel_for_mut(&mut self.score_buf, 256, |offset, chunk| {
            for (i, dst) in chunk.iter_mut().enumerate() {
                let e = cands[offset + i] as usize;
                *dst = norm.distance(&qv, &emb[e * d..(e + 1) * d]);
            }
        });
        let hits = top_k(
            self.cand_buf
                .iter()
                .zip(&self.score_buf)
                .map(|(&id, &s)| (id, s)),
            k,
        );
        if let Some(cache) = &mut self.cache {
            cache.insert(key, hits.clone());
        }
        AnnAnswer {
            hits,
            scored,
            cache_hit: false,
        }
    }
}

/// A fixed-budget row cache over a file-backed stacked embedding matrix:
/// the serving analog of training's paged [`tensor::ParamStore`], for
/// answering queries from a store bigger than RAM.
///
/// Wraps the same [`tensor::Pager`] (fully-associative LRU, exact
/// hit/miss/evict counters, optional row trace for simcache
/// cross-validation) around a read-only [`tensor::RowStorage`] backend —
/// typically [`crate::ReadOnlyRowStorage`] over the `sptx train` embedding
/// dump. Serving never dirties rows, so nothing is ever written back.
#[derive(Debug)]
pub struct PagedRows {
    pager: tensor::Pager,
    cache: Vec<f32>,
    /// Scratch for the sorted/deduped row list `ensure` hands the pager.
    list: Vec<u32>,
}

impl PagedRows {
    /// Builds a `budget`-row cache over `storage` (clamped to the row
    /// count). The cache memory (`budget × cols` floats) is allocated once,
    /// here.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Serve`] for a zero budget or an empty store.
    pub fn new(storage: Box<dyn tensor::RowStorage>, budget: usize) -> Result<Self> {
        if budget == 0 {
            return Err(Error::serve("row-cache budget must be at least 1 row"));
        }
        if storage.rows() == 0 || storage.cols() == 0 {
            return Err(Error::serve("cannot page an empty embedding store"));
        }
        let budget = budget.min(storage.rows());
        let pager = tensor::Pager::new(storage, budget);
        let cache = vec![0.0; budget * pager.cols()];
        Ok(Self {
            pager,
            cache,
            list: Vec::new(),
        })
    }

    /// Total rows in the backing store.
    pub fn rows(&self) -> usize {
        self.pager.rows()
    }

    /// The cache budget in rows (after clamping to the store size).
    pub fn budget(&self) -> usize {
        self.pager.budget()
    }

    /// Floats per row.
    pub fn cols(&self) -> usize {
        self.pager.cols()
    }

    /// Cache hit/miss/evict counters.
    pub fn stats(&self) -> tensor::PageStats {
        self.pager.stats()
    }

    /// Enables or disables row-trace recording (for simcache replay).
    pub fn set_tracing(&mut self, on: bool) {
        self.pager.set_tracing(on);
    }

    /// The recorded row trace, if tracing is enabled.
    pub fn trace(&self) -> Option<&[u32]> {
        self.pager.trace()
    }

    /// Pages the given rows in (loading misses from the backing store) and
    /// pins them until the next `ensure` call.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Serve`] when the distinct rows exceed the cache
    /// budget or on backing-store I/O failures.
    pub fn ensure(&mut self, rows: impl IntoIterator<Item = u32>) -> Result<()> {
        self.list.clear();
        self.list.extend(rows);
        self.list.sort_unstable();
        self.list.dedup();
        self.pager
            .ensure(&self.list, &mut self.cache)
            .map_err(|e| Error::serve(e.to_string()))
    }

    /// The cached copy of row `r`. The row must have been pinned by the most
    /// recent [`PagedRows::ensure`] call.
    ///
    /// # Panics
    ///
    /// Panics if `r` is not resident.
    pub fn row(&self, r: usize) -> &[f32] {
        let s = self.pager.slot(r);
        let d = self.pager.cols();
        &self.cache[s * d..(s + 1) * d]
    }
}

impl ServeEngine {
    /// ANN arm reading embedding rows **only** through a [`PagedRows`]
    /// cache — the out-of-core serving path. The resident matrix inside the
    /// engine's [`ServeModel`] is never touched; only its shape metadata and
    /// norm are used.
    ///
    /// Bit-identity with [`ServeEngine::answer_ann`]: the query vector is
    /// `1.0·ent[j] + (±1.0)·rel[j]` — exactly the 2-nonzero SpMM fast path
    /// the resident arm runs — and candidates are rescored with the same
    /// `Norm::distance` over the same bytes, so answers match the resident
    /// ANN arm bit for bit. The query cache is bypassed (the caller owns
    /// caching policy for the paged tier).
    ///
    /// # Errors
    ///
    /// Returns [`Error::Serve`] when `rows` disagrees with the model shape,
    /// the working set (2 query rows, then the candidate set) exceeds the
    /// cache budget, or the backing store fails.
    ///
    /// # Panics
    ///
    /// Panics if the query's entity or relation is out of range.
    pub fn answer_ann_paged(
        &mut self,
        rows: &mut PagedRows,
        query: &Query,
        k: usize,
        nprobe: usize,
    ) -> Result<AnnAnswer> {
        let (n, r, d) = (
            self.model.num_entities(),
            self.model.num_relations(),
            self.model.dim(),
        );
        if rows.rows() != n + r || rows.cols() != d {
            return Err(Error::serve(format!(
                "paged store is {}x{} but the model needs {}x{d}",
                rows.rows(),
                rows.cols(),
                n + r
            )));
        }
        assert!(
            (query.entity as usize) < n && (query.rel as usize) < r,
            "query ({}, {}) out of range for {n} entities / {r} relations",
            query.entity,
            query.rel
        );
        let ent_row = query.entity;
        let rel_row = (n + query.rel as usize) as u32;
        rows.ensure([ent_row, rel_row])?;
        let (v0, v1) = match query.dir {
            Direction::Tail => (1.0f32, 1.0f32),
            Direction::Head => (1.0f32, -1.0f32),
        };
        let (ent, rel) = (rows.row(ent_row as usize), rows.row(rel_row as usize));
        let qv: Vec<f32> = ent
            .iter()
            .zip(rel)
            .map(|(&e, &rl)| v0 * e + v1 * rl)
            .collect();

        self.index.probe(&qv, nprobe, &mut self.cand_buf);
        rows.ensure(self.cand_buf.iter().copied())?;
        let scored = self.cand_buf.len();
        self.score_buf.resize(scored, 0.0);
        let norm = self.model.norm();
        for (dst, &e) in self.score_buf.iter_mut().zip(&self.cand_buf) {
            *dst = norm.distance(&qv, rows.row(e as usize));
        }
        let hits = top_k(
            self.cand_buf
                .iter()
                .zip(&self.score_buf)
                .map(|(&id, &s)| (id, s)),
            k,
        );
        Ok(AnnAnswer {
            hits,
            scored,
            cache_hit: false,
        })
    }
}

/// Latency percentiles plus throughput over a set of per-query samples.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatencySummary {
    /// Median latency.
    pub p50: Duration,
    /// 95th-percentile latency.
    pub p95: Duration,
    /// 99th-percentile latency.
    pub p99: Duration,
    /// Arithmetic mean latency.
    pub mean: Duration,
    /// Queries per second implied by the total time (`len / sum`).
    pub qps: f64,
}

impl LatencySummary {
    /// Summarizes per-query latency samples (nearest-rank percentiles).
    /// Returns `None` for an empty sample set.
    pub fn from_samples(samples: &[Duration]) -> Option<Self> {
        if samples.is_empty() {
            return None;
        }
        let mut sorted = samples.to_vec();
        sorted.sort_unstable();
        let pct = |p: f64| {
            let rank = ((p * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
            sorted[rank - 1]
        };
        let total: Duration = sorted.iter().sum();
        let qps = if total.as_secs_f64() > 0.0 {
            sorted.len() as f64 / total.as_secs_f64()
        } else {
            f64::INFINITY
        };
        Some(Self {
            p50: pct(0.50),
            p95: pct(0.95),
            p99: pct(0.99),
            mean: total / sorted.len() as u32,
            qps,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn top_k_is_order_independent_and_tie_broken_by_id() {
        let pairs = vec![(3u32, 1.0f32), (1, 0.5), (2, 0.5), (0, 2.0)];
        let mut rev = pairs.clone();
        rev.reverse();
        let a = top_k(pairs, 3);
        let b = top_k(rev, 3);
        assert_eq!(a, b);
        assert_eq!(a, vec![(1, 0.5), (2, 0.5), (3, 1.0)]);
    }

    #[test]
    fn top_k_handles_nan_pessimistically() {
        let pairs = vec![(0u32, f32::NAN), (1, 5.0), (2, 1.0)];
        let got = top_k(pairs, 2);
        assert_eq!(got, vec![(2, 1.0), (1, 5.0)]);
    }

    #[test]
    fn top_k_clamps_k() {
        assert_eq!(top_k(vec![(0, 1.0)], 10), vec![(0, 1.0)]);
        assert!(top_k(vec![(0, 1.0)], 0).is_empty());
        assert!(top_k(Vec::new(), 5).is_empty());
    }

    #[test]
    fn recall_counts_id_overlap() {
        let exact = vec![(1u32, 0.1f32), (2, 0.2), (3, 0.3), (4, 0.4)];
        let approx = vec![(2u32, 0.2f32), (4, 0.4), (9, 9.0)];
        assert!((recall_at_k(&exact, &approx) - 0.5).abs() < 1e-12);
        assert_eq!(recall_at_k(&[], &approx), 1.0);
    }

    #[test]
    fn serve_model_validates_shape() {
        assert!(ServeModel::from_stacked(vec![0.0; 10], 3, 2, 2, Norm::L2).is_ok());
        assert!(ServeModel::from_stacked(vec![0.0; 9], 3, 2, 2, Norm::L2).is_err());
        assert!(ServeModel::from_stacked(vec![], 0, 2, 2, Norm::L2).is_err());
    }

    #[test]
    fn latency_summary_percentiles() {
        let samples: Vec<Duration> = (1..=100).map(Duration::from_micros).collect();
        let s = LatencySummary::from_samples(&samples).unwrap();
        assert_eq!(s.p50, Duration::from_micros(50));
        assert_eq!(s.p95, Duration::from_micros(95));
        assert_eq!(s.p99, Duration::from_micros(99));
        assert!(LatencySummary::from_samples(&[]).is_none());
    }
}
