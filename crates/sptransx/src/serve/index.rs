//! IVF-style (inverted-file) ANN candidate index over entity embeddings.
//!
//! The serving engine must not score all `N` entities per query. Following
//! the clustering/IVF recipe Helmsman applies at billion scale, the entity
//! embeddings are partitioned by k-means into `K` clusters; a query probes
//! the `nprobe` nearest cluster centroids and rescorest only the entities in
//! those clusters — `nprobe` is the cost/recall knob (`nprobe == K` degrades
//! to an exact full scan).
//!
//! **Determinism contract:** [`IvfIndex::build`] produces a bit-identical
//! index at any [`PoolHandle`] width (and therefore any `SPTX_NUM_THREADS`):
//! the parallel assignment step computes each entity's nearest centroid
//! independently (per-element work, destination-sharded writes), and the
//! centroid update folds entities serially in index order into `f64`
//! accumulators. Ties (equidistant centroids) resolve to the lowest cluster
//! index; empty clusters are re-seeded on the farthest entity, lowest index
//! first.

use std::fs::File;
use std::io::{BufReader, BufWriter, Read, Write};
use std::path::Path;

use xparallel::PoolHandle;

use crate::{Error, Result};

/// On-disk magic of a serialized [`IvfIndex`].
const MAGIC: &[u8; 8] = b"SPTXIVF1";

/// K-means build parameters for [`IvfIndex::build`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IvfConfig {
    /// Number of clusters `K` (clamped to the entity count).
    pub clusters: usize,
    /// Lloyd iterations (assignment + centroid update rounds).
    pub iters: usize,
    /// Seed for the initial centroid draw.
    pub seed: u64,
}

impl Default for IvfConfig {
    fn default() -> Self {
        Self {
            clusters: 64,
            iters: 8,
            seed: 0x1DF,
        }
    }
}

impl IvfConfig {
    /// A square-root-of-`N` cluster count — the usual IVF starting point —
    /// with the default iteration count and seed.
    pub fn sqrt_clusters(num_entities: usize) -> Self {
        let clusters = ((num_entities as f64).sqrt().round() as usize).max(1);
        Self {
            clusters,
            ..Default::default()
        }
    }
}

/// A k-means inverted-file index over the first `N` rows of an embedding
/// matrix.
///
/// Inverted lists are stored CSR-style (`indptr` / `entities`), entities
/// ascending within each cluster, so serialization is canonical: two builds
/// that agree on assignments produce byte-identical files.
#[derive(Debug, Clone, PartialEq)]
pub struct IvfIndex {
    dim: usize,
    /// `K × dim`, row-major.
    centroids: Vec<f32>,
    /// `K + 1` offsets into `entities`.
    indptr: Vec<u32>,
    /// Concatenated per-cluster entity ids, ascending within each cluster.
    entities: Vec<u32>,
}

impl IvfIndex {
    /// Builds the index by k-means over rows `0..num_entities` of the
    /// row-major `emb` buffer (row width `dim`).
    ///
    /// `emb` may be the stacked `(N + R) × d` serving matrix; only the
    /// leading entity rows are clustered. Results are bit-identical at any
    /// `handle` width — see the module docs for the mechanism.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Config`] when `num_entities == 0`, `dim == 0`,
    /// `cfg.clusters == 0`, or `emb` is shorter than `num_entities * dim`.
    pub fn build(
        emb: &[f32],
        num_entities: usize,
        dim: usize,
        cfg: &IvfConfig,
        handle: &PoolHandle,
    ) -> Result<Self> {
        if num_entities == 0 || dim == 0 {
            return Err(Error::config("IVF index needs entities and a dimension"));
        }
        if cfg.clusters == 0 {
            return Err(Error::config("IVF cluster count must be positive"));
        }
        if emb.len() < num_entities * dim {
            return Err(Error::config(format!(
                "embedding buffer holds {} values, need {} for {num_entities} x {dim}",
                emb.len(),
                num_entities * dim
            )));
        }
        let k = cfg.clusters.min(num_entities);
        let ent = &emb[..num_entities * dim];

        // Initial centroids: k distinct seeded-random entities (partial
        // Fisher–Yates over the id range).
        let mut centroids = vec![0f32; k * dim];
        {
            use rand::{Rng, SeedableRng};
            let mut rng = rand::rngs::StdRng::seed_from_u64(cfg.seed);
            let mut pool: Vec<u32> = (0..num_entities as u32).collect();
            for (c, centroid) in centroids.chunks_exact_mut(dim).enumerate() {
                let j = rng.gen_range(c..num_entities);
                pool.swap(c, j);
                let e = pool[c] as usize;
                centroid.copy_from_slice(&ent[e * dim..(e + 1) * dim]);
            }
        }

        // Per-entity (nearest cluster, squared distance) pairs; one slice so
        // the parallel pass needs a single destination-sharded loop.
        let mut assign: Vec<(u32, f32)> = vec![(0, 0.0); num_entities];
        for _ in 0..cfg.iters.max(1) {
            assign_nearest(ent, dim, &centroids, k, handle, &mut assign);
            update_centroids(ent, dim, k, &assign, &mut centroids);
        }
        // Final assignment against the final centroids, so the inverted
        // lists match what `probe` will compute at query time.
        assign_nearest(ent, dim, &centroids, k, handle, &mut assign);

        // Inverted lists: one counting pass, one placement pass in entity
        // order — ascending ids within each cluster by construction.
        let mut counts = vec![0u32; k];
        for &(c, _) in &assign {
            counts[c as usize] += 1;
        }
        let mut indptr = vec![0u32; k + 1];
        for c in 0..k {
            indptr[c + 1] = indptr[c] + counts[c];
        }
        let mut cursor = indptr[..k].to_vec();
        let mut entities = vec![0u32; num_entities];
        for (e, &(c, _)) in assign.iter().enumerate() {
            let slot = &mut cursor[c as usize];
            entities[*slot as usize] = e as u32;
            *slot += 1;
        }
        Ok(Self {
            dim,
            centroids,
            indptr,
            entities,
        })
    }

    /// Embedding dimension the index was built for.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of clusters.
    pub fn num_clusters(&self) -> usize {
        self.indptr.len() - 1
    }

    /// Total number of indexed entities.
    pub fn num_entities(&self) -> usize {
        self.entities.len()
    }

    /// The entity ids assigned to cluster `c`, ascending.
    ///
    /// # Panics
    ///
    /// Panics if `c >= num_clusters()`.
    pub fn cluster(&self, c: usize) -> &[u32] {
        &self.entities[self.indptr[c] as usize..self.indptr[c + 1] as usize]
    }

    /// Centroid `c` as a `dim`-length row.
    ///
    /// # Panics
    ///
    /// Panics if `c >= num_clusters()`.
    pub fn centroid(&self, c: usize) -> &[f32] {
        &self.centroids[c * self.dim..(c + 1) * self.dim]
    }

    /// The `nprobe` clusters nearest to `q` under squared L2 distance,
    /// nearest first; equidistant centroids resolve to the lower index.
    ///
    /// # Panics
    ///
    /// Panics if `q.len() != dim()`.
    pub fn nearest_clusters(&self, q: &[f32], nprobe: usize) -> Vec<u32> {
        assert_eq!(q.len(), self.dim, "query dimension mismatch");
        let k = self.num_clusters();
        let mut order: Vec<(u32, f32)> = (0..k as u32)
            .map(|c| (c, l2_sq(q, self.centroid(c as usize))))
            .collect();
        order.sort_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
        order.truncate(nprobe.clamp(1, k));
        order.into_iter().map(|(c, _)| c).collect()
    }

    /// Appends the candidate entities of the `nprobe` clusters nearest to
    /// `q` onto `out` (cleared first). Candidate count is the per-query
    /// scan cost the `nprobe` knob trades against recall.
    pub fn probe(&self, q: &[f32], nprobe: usize, out: &mut Vec<u32>) {
        out.clear();
        for c in self.nearest_clusters(q, nprobe) {
            out.extend_from_slice(self.cluster(c as usize));
        }
    }

    /// Serializes the index: magic, `u64` dim / clusters / entity count,
    /// centroids (`f32` LE), indptr and entity lists (`u32` LE).
    ///
    /// # Errors
    ///
    /// Returns [`Error::Serve`] on any I/O failure.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<()> {
        let io = |e: std::io::Error| Error::serve(format!("writing IVF index: {e}"));
        let mut w = BufWriter::new(File::create(path).map_err(io)?);
        w.write_all(MAGIC).map_err(io)?;
        for v in [
            self.dim as u64,
            self.num_clusters() as u64,
            self.entities.len() as u64,
        ] {
            w.write_all(&v.to_le_bytes()).map_err(io)?;
        }
        for &v in &self.centroids {
            w.write_all(&v.to_le_bytes()).map_err(io)?;
        }
        for &v in &self.indptr {
            w.write_all(&v.to_le_bytes()).map_err(io)?;
        }
        for &v in &self.entities {
            w.write_all(&v.to_le_bytes()).map_err(io)?;
        }
        w.flush().map_err(io)?;
        Ok(())
    }

    /// Deserializes an index written by [`IvfIndex::save`], validating the
    /// magic, the exact file length, and inverted-list consistency — a
    /// corrupt or truncated file is an error, never a panic.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Serve`] on I/O failure or any consistency violation.
    pub fn load(path: impl AsRef<Path>) -> Result<Self> {
        let io = |e: std::io::Error| Error::serve(format!("reading IVF index: {e}"));
        let file = File::open(&path).map_err(io)?;
        let file_len = file.metadata().map_err(io)?.len();
        let mut r = BufReader::new(file);
        let mut header = [0u8; 8 + 3 * 8];
        r.read_exact(&mut header)
            .map_err(|_| Error::serve("truncated IVF index header"))?;
        if &header[..8] != MAGIC {
            return Err(Error::serve("not an SPTXIVF1 index file"));
        }
        let word = |i: usize| {
            u64::from_le_bytes(header[8 + i * 8..16 + i * 8].try_into().expect("8 bytes"))
        };
        let (dim, k, n) = (word(0) as usize, word(1) as usize, word(2) as usize);
        if dim == 0 || k == 0 {
            return Err(Error::serve("IVF index with zero dim or clusters"));
        }
        let expected = (header.len() as u64)
            + 4 * (k as u64 * dim as u64)
            + 4 * (k as u64 + 1)
            + 4 * (n as u64);
        if file_len != expected {
            return Err(Error::serve(format!(
                "IVF index file is {file_len} bytes, header implies {expected} (corrupt or truncated)"
            )));
        }
        let mut centroids = vec![0f32; k * dim];
        read_f32s(&mut r, &mut centroids)?;
        let mut indptr = vec![0u32; k + 1];
        read_u32s(&mut r, &mut indptr)?;
        let mut entities = vec![0u32; n];
        read_u32s(&mut r, &mut entities)?;
        if indptr[0] != 0 || indptr[k] as usize != n || indptr.windows(2).any(|w| w[0] > w[1]) {
            return Err(Error::serve("IVF index inverted lists are inconsistent"));
        }
        Ok(Self {
            dim,
            centroids,
            indptr,
            entities,
        })
    }
}

fn read_f32s(r: &mut impl Read, out: &mut [f32]) -> Result<()> {
    let mut buf = [0u8; 4];
    for v in out {
        r.read_exact(&mut buf)
            .map_err(|_| Error::serve("truncated IVF index body"))?;
        *v = f32::from_le_bytes(buf);
    }
    Ok(())
}

fn read_u32s(r: &mut impl Read, out: &mut [u32]) -> Result<()> {
    let mut buf = [0u8; 4];
    for v in out {
        r.read_exact(&mut buf)
            .map_err(|_| Error::serve("truncated IVF index body"))?;
        *v = u32::from_le_bytes(buf);
    }
    Ok(())
}

/// Squared L2 distance (monotone in L2, cheaper — ranking is unaffected).
fn l2_sq(a: &[f32], b: &[f32]) -> f32 {
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

/// Parallel nearest-centroid assignment. Each entity's argmin is computed
/// independently with a serial inner loop (ties → lowest cluster index) and
/// written to exactly one destination slot, so the result is identical at
/// any handle width.
fn assign_nearest(
    ent: &[f32],
    dim: usize,
    centroids: &[f32],
    k: usize,
    handle: &PoolHandle,
    assign: &mut [(u32, f32)],
) {
    handle.for_mut(assign, 64, |offset, chunk| {
        for (i, slot) in chunk.iter_mut().enumerate() {
            let e = offset + i;
            let row = &ent[e * dim..(e + 1) * dim];
            let mut best_c = 0u32;
            let mut best_d = f32::INFINITY;
            for c in 0..k {
                let d = l2_sq(row, &centroids[c * dim..(c + 1) * dim]);
                if d < best_d {
                    best_d = d;
                    best_c = c as u32;
                }
            }
            *slot = (best_c, best_d);
        }
    });
}

/// Serial centroid update in entity order (`f64` accumulators), then
/// deterministic re-seeding of empty clusters on the farthest entities.
fn update_centroids(
    ent: &[f32],
    dim: usize,
    k: usize,
    assign: &[(u32, f32)],
    centroids: &mut [f32],
) {
    let mut sums = vec![0f64; k * dim];
    let mut counts = vec![0u64; k];
    for (e, &(c, _)) in assign.iter().enumerate() {
        let c = c as usize;
        counts[c] += 1;
        let row = &ent[e * dim..(e + 1) * dim];
        for (s, &x) in sums[c * dim..(c + 1) * dim].iter_mut().zip(row) {
            *s += f64::from(x);
        }
    }
    let mut reseeded: Vec<u32> = Vec::new();
    for c in 0..k {
        if counts[c] == 0 {
            // Farthest entity not already used for another empty cluster,
            // lowest id on ties — deterministic.
            let mut best_e = 0usize;
            let mut best_d = f32::NEG_INFINITY;
            for (e, &(_, d)) in assign.iter().enumerate() {
                if d > best_d && !reseeded.contains(&(e as u32)) {
                    best_d = d;
                    best_e = e;
                }
            }
            reseeded.push(best_e as u32);
            centroids[c * dim..(c + 1) * dim]
                .copy_from_slice(&ent[best_e * dim..(best_e + 1) * dim]);
        } else {
            let inv = 1.0 / counts[c] as f64;
            for (dst, &s) in centroids[c * dim..(c + 1) * dim]
                .iter_mut()
                .zip(&sums[c * dim..(c + 1) * dim])
            {
                *dst = (s * inv) as f32;
            }
        }
    }
}
