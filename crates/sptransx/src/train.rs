//! The training loop, with the paper's instrumentation built in.

use std::time::{Duration, Instant};

use kg::eval::{
    evaluate, evaluate_batched, BatchScorer, EvalConfig, LinkPredictionReport, TripleScorer,
};
use kg::{BatchPlan, BernoulliSampler, Dataset, UniformSampler};
use tensor::optim::{Optimizer, StepLr};
use tensor::{memory, Graph};
use xparallel::PoolHandle;

use crate::model::{KgeModel, SamplerKind, TrainConfig};
use crate::Result;

/// Accumulated wall-clock time of the three training phases the paper
/// breaks out (Table 1, Figure 8).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Breakdown {
    /// Loss computation (graph construction + forward kernels).
    pub forward: Duration,
    /// Gradient computation (reverse tape replay).
    pub backward: Duration,
    /// Optimizer parameter update.
    pub step: Duration,
}

impl Breakdown {
    /// Sum of all phases.
    pub fn total(&self) -> Duration {
        self.forward + self.backward + self.step
    }
}

impl std::ops::Add for Breakdown {
    type Output = Breakdown;
    fn add(self, rhs: Self) -> Breakdown {
        Breakdown {
            forward: self.forward + rhs.forward,
            backward: self.backward + rhs.backward,
            step: self.step + rhs.step,
        }
    }
}

/// Everything measured during one training run.
#[derive(Debug, Clone)]
pub struct TrainReport {
    /// Mean batch loss per epoch.
    pub epoch_losses: Vec<f32>,
    /// Forward/backward/step time totals.
    pub breakdown: Breakdown,
    /// Total wall-clock time.
    pub wall: Duration,
    /// Peak tensor memory (bytes) above the pre-training baseline — the
    /// paper's CUDA-memory analog (Table 5).
    pub peak_memory_bytes: u64,
    /// FLOPs recorded by instrumented kernels during the run (Table 6).
    pub flops: u64,
    /// SpMM kernel invocations during the run.
    pub spmm_calls: u64,
}

/// Drives a [`KgeModel`] over a [`BatchPlan`] with margin-ranking loss and
/// the configured optimizer ([`crate::OptimizerKind`], default SGD),
/// recording the paper's metrics.
///
/// The gradient plumbing is **row-sparse end to end** (the touched-row
/// contract, see `tensor::ParamStore`): per batch, zeroing, backward
/// scatters and the SGD/Adagrad update walk only the rows the batch
/// touches, so step cost is `O(batch · d)` regardless of entity count.
/// `TrainConfig::dense_grads` restores the dense sweeps (bit-identical,
/// just `O(N · d)`) for ablation.
///
/// # Examples
///
/// ```
/// use kg::synthetic::SyntheticKgBuilder;
/// use sptransx::{SpTransE, TrainConfig, Trainer};
///
/// # fn main() -> Result<(), sptransx::Error> {
/// let ds = SyntheticKgBuilder::new(60, 4).triples(400).seed(8).build();
/// let config = TrainConfig { epochs: 2, batch_size: 128, dim: 8, lr: 0.05, ..Default::default() };
/// let mut trainer = Trainer::new(SpTransE::from_config(&ds, &config)?, &ds, &config)?;
/// let report = trainer.run()?;
/// assert_eq!(report.epoch_losses.len(), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct Trainer<M: KgeModel> {
    model: M,
    config: TrainConfig,
    num_batches: usize,
    optimizer: Box<dyn Optimizer>,
    scheduler: Option<StepLr>,
    pool: PoolHandle,
    /// One long-lived tape, [`Graph::reset`] per batch: its arena serves
    /// every buffer of the steady-state step, so training performs zero
    /// tensor-buffer heap allocations after the first batch.
    graph: Graph,
}

impl<M: KgeModel> Trainer<M> {
    /// Builds the batch plan from `dataset.train` (pre-generating negatives
    /// per §5.3), attaches it to the model, and prepares the optimizer.
    ///
    /// # Errors
    ///
    /// Returns configuration or index errors from plan construction.
    pub fn new(model: M, dataset: &Dataset, config: &TrainConfig) -> Result<Self> {
        config.validate()?;
        let known = dataset.all_known();
        let plan = match config.sampler {
            SamplerKind::Uniform => {
                let sampler = UniformSampler::new(dataset.num_entities.max(2));
                BatchPlan::build(
                    &dataset.train,
                    &known,
                    &sampler,
                    config.batch_size,
                    config.seed,
                )
            }
            SamplerKind::Bernoulli => {
                let sampler = BernoulliSampler::fit(&dataset.train, dataset.num_entities.max(2));
                BatchPlan::build(
                    &dataset.train,
                    &known,
                    &sampler,
                    config.batch_size,
                    config.seed,
                )
            }
        };
        Self::with_plan(model, plan, config)
    }

    /// Like [`Trainer::new`] but with a caller-provided plan (used by the
    /// data-parallel driver and the benches).
    ///
    /// # Errors
    ///
    /// Returns errors from [`KgeModel::attach_plan`].
    pub fn with_plan(mut model: M, plan: BatchPlan, config: &TrainConfig) -> Result<Self> {
        config.validate()?;
        model.attach_plan(&plan)?;
        // The dense-gradient ablation switch: forces every touched-row
        // sweep (zeroing, backward scatters, optimizer, all-reduce) onto
        // its full-table path. Bit-identical to the sparse walks.
        model.store_mut().set_dense_grads(config.dense_grads);
        let scheduler = config
            .lr_schedule
            .map(|(step, gamma)| StepLr::new(config.lr, step, gamma));
        let mut graph = Graph::new();
        graph.set_fused(config.fused);
        Ok(Self {
            num_batches: plan.num_batches(),
            model,
            config: config.clone(),
            optimizer: config.optimizer.build(config.lr),
            scheduler,
            pool: PoolHandle::global(),
            graph,
        })
    }

    /// Dispatches the whole training step — forward kernels, backward
    /// closures, and optimizer updates — on an explicit pool handle.
    ///
    /// The step is bit-identical at any handle width (see `tensor::Graph`),
    /// so this knob trades wall-clock only: `PoolHandle::sequential()` is
    /// the serial baseline, pinned widths reproduce a wide machine's
    /// schedule on a narrow one.
    #[must_use]
    pub fn with_pool(mut self, pool: PoolHandle) -> Self {
        self.optimizer.set_pool(&pool);
        self.graph = Graph::with_pool(pool.clone());
        self.graph.set_fused(self.config.fused);
        self.pool = pool;
        self
    }

    /// Replaces the optimizer (keeping the configured schedule, which acts
    /// through [`tensor::optim::Optimizer::set_learning_rate`]). Prefer
    /// [`TrainConfig::optimizer`]; this hook exists for custom
    /// implementations.
    #[must_use]
    pub fn with_optimizer(mut self, optimizer: impl Optimizer + 'static) -> Self {
        self.optimizer = Box::new(optimizer);
        self.optimizer.set_pool(&self.pool);
        self
    }

    /// Borrows the optimizer (e.g. to inspect the scheduled learning rate).
    pub fn optimizer(&self) -> &dyn Optimizer {
        self.optimizer.as_ref()
    }

    /// Runs the configured number of epochs.
    ///
    /// # Errors
    ///
    /// See [`Trainer::run_epochs`].
    pub fn run(&mut self) -> Result<TrainReport> {
        self.run_epochs(self.config.epochs)
    }

    /// Runs exactly `epochs` epochs (callers can interleave evaluation).
    ///
    /// # Errors
    ///
    /// Returns [`crate::Error::Config`] if the attached plan has no batches:
    /// a 0-batch epoch would otherwise silently report loss 0.
    pub fn run_epochs(&mut self, epochs: usize) -> Result<TrainReport> {
        if self.num_batches == 0 {
            return Err(crate::Error::config(
                "batch plan has no batches (empty training set?); refusing to report 0-batch epochs as loss 0",
            ));
        }
        let wall_start = Instant::now();
        let mem_scope = memory::MemoryScope::start();
        let metrics_before = sparse::metrics::snapshot();
        let mut breakdown = Breakdown::default();
        let mut epoch_losses = Vec::with_capacity(epochs);

        for epoch in 0..epochs {
            if let Some(sched) = &self.scheduler {
                sched.apply(self.optimizer.as_mut(), epoch as u32);
            }
            let mut loss_sum = 0f64;
            for b in 0..self.num_batches {
                self.model.store_mut().zero_grads();
                // Out-of-core models pin this batch's working set in the
                // row cache here; fully resident models no-op.
                self.model.page_in_batch(b)?;

                let t0 = Instant::now();
                // Reset (not rebuild) the tape: node buffers recycle through
                // the graph's arena, so the steady-state step never touches
                // the allocator (see `tensor::Arena`).
                self.graph.reset();
                let (pos, neg) = self.model.score_batch(&mut self.graph, b);
                let loss = self.graph.margin_ranking_loss(pos, neg, self.config.margin);
                breakdown.forward += t0.elapsed();
                loss_sum += f64::from(self.graph.value(loss).get(0, 0));

                let t1 = Instant::now();
                self.graph.backward(loss, self.model.store_mut());
                breakdown.backward += t1.elapsed();

                let t2 = Instant::now();
                self.optimizer.step(self.model.store_mut());
                breakdown.step += t2.elapsed();
            }
            self.model.end_epoch();
            epoch_losses.push((loss_sum / self.num_batches as f64) as f32);
        }

        let delta = sparse::metrics::snapshot() - metrics_before;
        Ok(TrainReport {
            epoch_losses,
            breakdown,
            wall: wall_start.elapsed(),
            peak_memory_bytes: mem_scope.peak_delta_bytes(),
            flops: delta.flops,
            spmm_calls: delta.spmm_calls,
        })
    }

    /// Runs filtered link-prediction evaluation through the scalar
    /// per-query path (requires a scoring model).
    ///
    /// Prefer [`Trainer::evaluate_batched`] — all built-in models implement
    /// [`BatchScorer`] natively; this entry point is kept for custom models
    /// that only implement the scalar [`TripleScorer`].
    pub fn evaluate(&self, dataset: &Dataset, eval: &EvalConfig) -> LinkPredictionReport
    where
        M: TripleScorer,
    {
        evaluate(&self.model, &dataset.test, &dataset.all_known(), eval)
    }

    /// Runs filtered link-prediction evaluation through the batched,
    /// pool-parallel engine: chunked scoring into reused buffers plus
    /// parallel ranking, producing bit-identical metrics to
    /// [`Trainer::evaluate`] (see `kg::eval`).
    pub fn evaluate_batched(&self, dataset: &Dataset, eval: &EvalConfig) -> LinkPredictionReport
    where
        M: BatchScorer,
    {
        evaluate_batched(&self.model, &dataset.test, &dataset.all_known(), eval)
    }

    /// Borrows the persistent tape (e.g. for arena recycling statistics).
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// Borrows the model.
    pub fn model(&self) -> &M {
        &self.model
    }

    /// Mutably borrows the model.
    pub fn model_mut(&mut self) -> &mut M {
        &mut self.model
    }

    /// Consumes the trainer, returning the trained model.
    pub fn into_model(self) -> M {
        self.model
    }

    /// The effective number of batches per epoch.
    pub fn num_batches(&self) -> usize {
        self.num_batches
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DenseTransE, SpDistMult, SpTorusE, SpTransE, SpTransH, SpTransR};
    use kg::synthetic::SyntheticKgBuilder;

    fn dataset() -> Dataset {
        SyntheticKgBuilder::new(60, 5).triples(500).seed(30).build()
    }

    fn fast_config() -> TrainConfig {
        TrainConfig {
            epochs: 4,
            batch_size: 128,
            dim: 12,
            rel_dim: 6,
            lr: 0.05,
            ..Default::default()
        }
    }

    #[test]
    fn transe_loss_decreases() {
        let ds = dataset();
        let cfg = fast_config();
        let mut t = Trainer::new(SpTransE::from_config(&ds, &cfg).unwrap(), &ds, &cfg).unwrap();
        let report = t.run().unwrap();
        assert!(report.epoch_losses.last().unwrap() < report.epoch_losses.first().unwrap());
        assert!(report.flops > 0);
        assert!(report.spmm_calls > 0);
        assert!(report.peak_memory_bytes > 0);
        assert!(report.breakdown.total() <= report.wall + Duration::from_millis(50));
    }

    #[test]
    fn all_sparse_models_train() {
        let ds = dataset();
        let cfg = fast_config();
        macro_rules! check {
            ($model:expr) => {{
                let mut t = Trainer::new($model, &ds, &cfg).unwrap();
                let report = t.run().unwrap();
                assert!(
                    report.epoch_losses.last().unwrap() <= report.epoch_losses.first().unwrap(),
                    "loss should not increase"
                );
            }};
        }
        check!(SpTransE::from_config(&ds, &cfg).unwrap());
        check!(SpTorusE::from_config(&ds, &cfg).unwrap());
        check!(SpTransR::from_config(&ds, &cfg).unwrap());
        check!(SpTransH::from_config(&ds, &cfg).unwrap());
        check!(SpDistMult::from_config(&ds, &cfg).unwrap());
    }

    #[test]
    fn sparse_and_dense_trainers_converge_identically() {
        // Same init, same plan seed, same optimizer: the loss trajectories
        // must match closely (accuracy parity, paper §6.2.5).
        let ds = dataset();
        let cfg = fast_config();
        let mut ts = Trainer::new(SpTransE::from_config(&ds, &cfg).unwrap(), &ds, &cfg).unwrap();
        let rs = ts.run().unwrap();
        let mut td = Trainer::new(DenseTransE::from_config(&ds, &cfg).unwrap(), &ds, &cfg).unwrap();
        let rd = td.run().unwrap();
        for (a, b) in rs.epoch_losses.iter().zip(&rd.epoch_losses) {
            assert!((a - b).abs() < 1e-3, "sparse {a} vs dense {b}");
        }
    }

    #[test]
    fn bernoulli_sampler_path_works() {
        let ds = dataset();
        let cfg = TrainConfig {
            sampler: SamplerKind::Bernoulli,
            ..fast_config()
        };
        let mut t = Trainer::new(SpTransE::from_config(&ds, &cfg).unwrap(), &ds, &cfg).unwrap();
        assert!(t.run().is_ok());
    }

    #[test]
    fn lr_schedule_is_applied() {
        let ds = dataset();
        let cfg = TrainConfig {
            lr_schedule: Some((1, 0.5)),
            epochs: 3,
            ..fast_config()
        };
        let mut t = Trainer::new(SpTransE::from_config(&ds, &cfg).unwrap(), &ds, &cfg).unwrap();
        t.run().unwrap();
        // After 3 epochs with step=1, gamma=0.5: lr = base * 0.25.
        assert!((t.optimizer.learning_rate() - cfg.lr * 0.25).abs() < 1e-9);
    }

    #[test]
    fn evaluation_protocol_runs() {
        let ds = dataset();
        let cfg = fast_config();
        let mut t = Trainer::new(SpTransE::from_config(&ds, &cfg).unwrap(), &ds, &cfg).unwrap();
        t.run().unwrap();
        let report = t.evaluate(&ds, &EvalConfig::default());
        assert_eq!(report.queries, 2 * ds.test.len());
        assert!(report.mrr > 0.0 && report.mrr <= 1.0);
        for h in &report.hits_at {
            assert!((0.0..=1.0).contains(h));
        }
    }

    #[test]
    fn batched_evaluation_matches_scalar_after_training() {
        let ds = dataset();
        let cfg = fast_config();
        let mut t = Trainer::new(SpTransE::from_config(&ds, &cfg).unwrap(), &ds, &cfg).unwrap();
        t.run().unwrap();
        let eval = EvalConfig::default();
        // Bit-identical: both paths share the ranking engine, and the native
        // BatchScorer reproduces the scalar arithmetic exactly.
        assert_eq!(t.evaluate(&ds, &eval), t.evaluate_batched(&ds, &eval));
    }
}
