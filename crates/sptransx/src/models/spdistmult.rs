//! Sparse DistMult (paper Appendix D).
//!
//! DistMult is a bilinear (semantic matching) model with score
//! `⟨h, r, t⟩ = Σⱼ hⱼ rⱼ tⱼ` — **higher is better**, unlike the
//! translational distances. Appendix D shows the same incidence-matrix
//! traversal computes it when the SpMM semiring is switched to `(×, ×)`;
//! this model implements that: forward scoring runs
//! [`sparse::semiring::semiring_spmm`] with [`sparse::semiring::TimesTimes`]
//! over an **unsigned** `hrt` incidence matrix, and the backward pass
//! distributes `g ⊙ (product of the other two rows)` via the cached
//! transpose.
//!
//! To reuse the margin-ranking trainer (which minimizes positive
//! *distances*), scores are negated on the tape.

use kg::eval::TripleScorer;
use kg::{BatchPlan, Dataset};
use sparse::incidence::TailSign;
use tensor::{init, Graph, ParamId, ParamStore, Var};

use crate::model::{KgeModel, TrainConfig};
use crate::models::{build_hrt_caches, HrtCache};
use crate::Result;

/// The semiring-SpMM DistMult model.
///
/// # Examples
///
/// ```
/// use kg::synthetic::SyntheticKgBuilder;
/// use sptransx::{SpDistMult, TrainConfig};
///
/// let ds = SyntheticKgBuilder::new(40, 3).triples(200).seed(1).build();
/// let model = SpDistMult::from_config(&ds, &TrainConfig { dim: 8, ..Default::default() })?;
/// assert_eq!(sptransx::KgeModel::name(&model), "SpDistMult");
/// # Ok::<(), sptransx::Error>(())
/// ```
#[derive(Debug)]
pub struct SpDistMult {
    store: ParamStore,
    emb: ParamId,
    num_entities: usize,
    num_relations: usize,
    dim: usize,
    batches: Vec<HrtCache>,
}

impl SpDistMult {
    /// Initializes the model for a dataset.
    ///
    /// # Errors
    ///
    /// Returns [`crate::Error::Config`] for invalid hyperparameters.
    pub fn from_config(dataset: &Dataset, config: &TrainConfig) -> Result<Self> {
        config.validate()?;
        let (n, r, d) = (dataset.num_entities, dataset.num_relations, config.dim);
        let mut store = ParamStore::new();
        // Unit-normalized init keeps triple products in a sane range.
        let emb = store.add_param("embeddings", init::xavier_normalized(n + r, d, config.seed));
        Ok(Self {
            store,
            emb,
            num_entities: n,
            num_relations: r,
            dim: d,
            batches: Vec::new(),
        })
    }

    /// Embedding dimension.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Handle to the stacked embedding parameter.
    pub fn embedding_param(&self) -> ParamId {
        self.emb
    }

    /// Raw (similarity) score of one triple: `Σⱼ hⱼ rⱼ tⱼ`.
    pub fn similarity(&self, head: u32, rel: u32, tail: u32) -> f32 {
        let emb = self.store.value(self.emb);
        let h = emb.row(head as usize);
        let r = emb.row(self.num_entities + rel as usize);
        let t = emb.row(tail as usize);
        h.iter().zip(r).zip(t).map(|((a, b), c)| a * b * c).sum()
    }
}

impl KgeModel for SpDistMult {
    fn name(&self) -> &'static str {
        "SpDistMult"
    }

    fn store(&self) -> &ParamStore {
        &self.store
    }

    fn store_mut(&mut self) -> &mut ParamStore {
        &mut self.store
    }

    fn attach_plan(&mut self, plan: &BatchPlan) -> Result<()> {
        // Positive tail sign: the (×,×) semiring ignores signs, and an
        // all-+1 matrix keeps the formulation of Appendix D literal.
        self.batches = build_hrt_caches(
            plan,
            self.num_entities,
            self.num_relations,
            TailSign::Positive,
        )?;
        Ok(())
    }

    fn num_batches(&self) -> usize {
        self.batches.len()
    }

    fn score_batch(&self, g: &mut Graph, batch_idx: usize) -> (Var, Var) {
        let cache = &self.batches[batch_idx];
        let side = |g: &mut Graph, pair: &std::sync::Arc<sparse::incidence::IncidencePair>| {
            let prod = g.triple_product(&self.store, self.emb, pair.clone());
            let sim = g.row_sum(prod);
            // Similarity -> pseudo-distance for the margin ranking loss.
            g.scale(sim, -1.0)
        };
        let pos = side(g, &cache.pos);
        let neg = side(g, &cache.neg);
        (pos, neg)
    }
}

impl TripleScorer for SpDistMult {
    fn score_tails(&self, head: u32, rel: u32) -> Vec<f32> {
        let emb = self.store.value(self.emb);
        let h = emb.row(head as usize);
        let r = emb.row(self.num_entities + rel as usize);
        let q: Vec<f32> = h.iter().zip(r).map(|(a, b)| a * b).collect();
        (0..self.num_entities)
            .map(|t| -q.iter().zip(emb.row(t)).map(|(a, b)| a * b).sum::<f32>())
            .collect()
    }

    fn score_heads(&self, rel: u32, tail: u32) -> Vec<f32> {
        let emb = self.store.value(self.emb);
        let t = emb.row(tail as usize);
        let r = emb.row(self.num_entities + rel as usize);
        let q: Vec<f32> = t.iter().zip(r).map(|(a, b)| a * b).collect();
        (0..self.num_entities)
            .map(|h| -q.iter().zip(emb.row(h)).map(|(a, b)| a * b).sum::<f32>())
            .collect()
    }

    fn num_entities(&self) -> usize {
        self.num_entities
    }
}

impl kg::eval::BatchScorer for SpDistMult {
    fn num_entities(&self) -> usize {
        self.num_entities
    }

    fn score_tails_into(&self, queries: &[(u32, u32)], out: &mut [f32]) {
        crate::scorer::distmult_scores_into(
            self.store.value(self.emb).as_slice(),
            self.num_entities,
            self.num_relations,
            self.dim,
            queries,
            crate::scorer::QueryDir::Tails,
            out,
        );
    }

    fn score_heads_into(&self, queries: &[(u32, u32)], out: &mut [f32]) {
        crate::scorer::distmult_scores_into(
            self.store.value(self.emb).as_slice(),
            self.num_entities,
            self.num_relations,
            self.dim,
            queries,
            crate::scorer::QueryDir::Heads,
            out,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kg::synthetic::SyntheticKgBuilder;
    use kg::UniformSampler;

    fn setup() -> (Dataset, SpDistMult, BatchPlan) {
        let ds = SyntheticKgBuilder::new(40, 4).triples(300).seed(13).build();
        let config = TrainConfig {
            dim: 8,
            batch_size: 64,
            ..Default::default()
        };
        let model = SpDistMult::from_config(&ds, &config).unwrap();
        let sampler = UniformSampler::new(ds.num_entities);
        let plan = BatchPlan::build(&ds.train, &ds.all_known(), &sampler, 64, 14);
        (ds, model, plan)
    }

    #[test]
    fn tape_scores_match_similarity() {
        let (_, mut model, plan) = setup();
        model.attach_plan(&plan).unwrap();
        let mut g = Graph::new();
        let (pos, _) = model.score_batch(&mut g, 0);
        let batch = plan.batch(0);
        for i in 0..batch.len().min(10) {
            let t = batch.pos.get(i);
            let want = -model.similarity(t.head, t.rel, t.tail);
            assert!((g.value(pos).get(i, 0) - want).abs() < 1e-4);
        }
    }

    #[test]
    fn symmetry_of_distmult() {
        // DistMult is symmetric in head/tail by construction.
        let (_, model, plan) = setup();
        let t = plan.batch(0).pos.get(0);
        let a = model.similarity(t.head, t.rel, t.tail);
        let b = model.similarity(t.tail, t.rel, t.head);
        assert!((a - b).abs() < 1e-5);
    }

    #[test]
    fn gradients_flow_through_semiring() {
        let (_, mut model, plan) = setup();
        model.attach_plan(&plan).unwrap();
        let mut g = Graph::new();
        let (pos, neg) = model.score_batch(&mut g, 0);
        let loss = g.margin_ranking_loss(pos, neg, 5.0);
        g.backward(loss, model.store_mut());
        assert!(model.store().grad(model.embedding_param()).frobenius_norm() > 0.0);
    }

    #[test]
    fn scorer_matches_similarity() {
        let (_, model, plan) = setup();
        let t = plan.batch(0).pos.get(0);
        let tails = model.score_tails(t.head, t.rel);
        assert!((tails[t.tail as usize] + model.similarity(t.head, t.rel, t.tail)).abs() < 1e-5);
    }
}
