//! Compressed sparse row matrices.

use serde::{Deserialize, Serialize};

use crate::{CooMatrix, Error, Result};

/// A sparse matrix in compressed-sparse-row format.
///
/// CSR is the kernel format: row `i`'s nonzeros occupy
/// `indices[indptr[i]..indptr[i+1]]` / `values[...]`, with column indices
/// sorted ascending within each row. This is the layout the paper's CPU SpMM
/// (iSpLib) consumes; the incidence matrices built per mini-batch are
/// converted to CSR once and reused across epochs.
///
/// # Examples
///
/// ```
/// use sparse::{CooMatrix, CsrMatrix};
///
/// let coo = CooMatrix::from_triplets(2, 3, vec![(0, 0, 1.0), (1, 2, -1.0)])?;
/// let csr: CsrMatrix = coo.to_csr();
/// assert_eq!(csr.nnz(), 2);
/// assert_eq!(csr.row(1).next(), Some((2, -1.0)));
/// # Ok::<(), sparse::Error>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CsrMatrix {
    rows: usize,
    cols: usize,
    indptr: Vec<u32>,
    indices: Vec<u32>,
    values: Vec<f32>,
    /// Whether every stored value is exactly `+1.0` or `-1.0` — true for all
    /// incidence matrices. Cached at construction so the hot SpMM kernels
    /// (which branch on it for FLOP accounting) never rescan the nnz values
    /// per call; [`CsrMatrix::transpose`] carries it over without a scan.
    unit_coeffs: bool,
}

/// True when every coefficient is exactly `±1.0` (vacuously for no values).
fn all_unit_coeffs(values: &[f32]) -> bool {
    values.iter().all(|&v| v == 1.0 || v == -1.0)
}

impl CsrMatrix {
    /// Builds a CSR matrix from raw arrays, validating all invariants.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidStructure`] if `indptr` has the wrong length,
    /// is non-monotone, or disagrees with `indices.len()`; if `indices` and
    /// `values` differ in length; or if any column index is out of bounds or
    /// rows are not sorted strictly ascending.
    pub fn from_raw_parts(
        rows: usize,
        cols: usize,
        indptr: Vec<u32>,
        indices: Vec<u32>,
        values: Vec<f32>,
    ) -> Result<Self> {
        if indptr.len() != rows + 1 {
            return Err(Error::structure(format!(
                "indptr length {} != rows + 1 = {}",
                indptr.len(),
                rows + 1
            )));
        }
        if indices.len() != values.len() {
            return Err(Error::structure(format!(
                "indices length {} != values length {}",
                indices.len(),
                values.len()
            )));
        }
        if indptr[0] != 0 || *indptr.last().expect("len >= 1") as usize != indices.len() {
            return Err(Error::structure(
                "indptr must start at 0 and end at nnz".to_string(),
            ));
        }
        for w in indptr.windows(2) {
            if w[1] < w[0] {
                return Err(Error::structure(
                    "indptr must be non-decreasing".to_string(),
                ));
            }
        }
        for r in 0..rows {
            let (s, e) = (indptr[r] as usize, indptr[r + 1] as usize);
            let row = &indices[s..e];
            for w in row.windows(2) {
                if w[1] <= w[0] {
                    return Err(Error::structure(format!(
                        "row {r} column indices must be strictly ascending"
                    )));
                }
            }
            if let Some(&last) = row.last() {
                if last as usize >= cols {
                    return Err(Error::structure(format!(
                        "row {r} has column index {last} >= cols {cols}"
                    )));
                }
            }
        }
        let unit_coeffs = all_unit_coeffs(&values);
        Ok(Self {
            rows,
            cols,
            indptr,
            indices,
            values,
            unit_coeffs,
        })
    }

    /// Builds a CSR matrix from arrays assumed valid (debug-asserted).
    pub(crate) fn from_raw_parts_unchecked(
        rows: usize,
        cols: usize,
        indptr: Vec<u32>,
        indices: Vec<u32>,
        values: Vec<f32>,
    ) -> Self {
        debug_assert_eq!(indptr.len(), rows + 1);
        debug_assert_eq!(indices.len(), values.len());
        let unit_coeffs = all_unit_coeffs(&values);
        Self {
            rows,
            cols,
            indptr,
            indices,
            values,
            unit_coeffs,
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of stored nonzeros.
    pub fn nnz(&self) -> usize {
        self.indices.len()
    }

    /// Row pointer array (`rows + 1` entries).
    pub fn indptr(&self) -> &[u32] {
        &self.indptr
    }

    /// Column index array.
    pub fn indices(&self) -> &[u32] {
        &self.indices
    }

    /// Value array.
    pub fn values(&self) -> &[f32] {
        &self.values
    }

    /// Whether every stored coefficient is exactly `±1.0` (cached at
    /// construction — O(1)). Incidence matrices always are; the SpMM
    /// kernels use this for their FLOP accounting without rescanning the
    /// value array on every call.
    pub fn has_unit_coefficients(&self) -> bool {
        self.unit_coeffs
    }

    /// Iterates `(col, value)` pairs of row `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= rows`.
    pub fn row(&self, i: usize) -> impl Iterator<Item = (usize, f32)> + '_ {
        let (s, e) = self.row_bounds(i);
        self.indices[s..e]
            .iter()
            .zip(&self.values[s..e])
            .map(|(&c, &v)| (c as usize, v))
    }

    /// Returns `(start, end)` offsets of row `i` into `indices` / `values`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= rows`.
    #[inline]
    pub fn row_bounds(&self, i: usize) -> (usize, usize) {
        (self.indptr[i] as usize, self.indptr[i + 1] as usize)
    }

    /// The maximum number of nonzeros in any row.
    pub fn max_row_nnz(&self) -> usize {
        (0..self.rows)
            .map(|i| {
                let (s, e) = self.row_bounds(i);
                e - s
            })
            .max()
            .unwrap_or(0)
    }

    /// Row indices with at least one stored nonzero, ascending.
    ///
    /// On a cached transpose this is the **nonzero-column list of the
    /// forward matrix** — for an incidence matrix, exactly the embedding
    /// rows the batch touches (the touched-row gradient contract reads it
    /// from [`crate::incidence::IncidencePair::touched_columns`]). Runs in
    /// `O(rows)` off `indptr` alone.
    pub fn occupied_rows(&self) -> Vec<u32> {
        (0..self.rows as u32)
            .filter(|&r| self.indptr[r as usize + 1] > self.indptr[r as usize])
            .collect()
    }

    /// Column indices with at least one stored nonzero, ascending and
    /// deduplicated — the rows of the dense operand this matrix actually
    /// reads in an SpMM (`O(nnz log nnz)`). Equal to
    /// `self.transpose().occupied_rows()` without materializing the
    /// transpose.
    pub fn nonzero_columns(&self) -> Vec<u32> {
        let mut cols = self.indices.clone();
        cols.sort_unstable();
        cols.dedup();
        cols
    }

    /// Returns the transpose in CSR form.
    ///
    /// Runs a counting-sort transpose in `O(nnz + rows + cols)`. This is the
    /// backward-pass matrix of Appendix G: `∂L/∂X = Aᵀ · ∂L/∂C`. Models cache
    /// the result alongside the forward matrix.
    pub fn transpose(&self) -> CsrMatrix {
        let mut counts = vec![0u32; self.cols + 1];
        for &c in &self.indices {
            counts[c as usize + 1] += 1;
        }
        for i in 0..self.cols {
            counts[i + 1] += counts[i];
        }
        let indptr = counts.clone();
        let mut cursor = counts;
        let nnz = self.nnz();
        let mut indices = vec![0u32; nnz];
        let mut values = vec![0f32; nnz];
        for r in 0..self.rows {
            let (s, e) = self.row_bounds(r);
            for k in s..e {
                let c = self.indices[k] as usize;
                let dst = cursor[c] as usize;
                indices[dst] = r as u32;
                values[dst] = self.values[k];
                cursor[c] += 1;
            }
        }
        // Rows of the transpose are visited in ascending original-row order,
        // so indices within each transposed row are already sorted. The
        // transpose permutes values, so the ±1 flag carries over unscanned
        // (which is why this bypasses from_raw_parts_unchecked — keep its
        // structural debug assertions in sync here).
        debug_assert_eq!(indptr.len(), self.cols + 1);
        debug_assert_eq!(indices.len(), values.len());
        CsrMatrix {
            rows: self.cols,
            cols: self.rows,
            indptr,
            indices,
            values,
            unit_coeffs: self.unit_coeffs,
        }
    }

    /// Converts back to COO (entries in row-major order).
    pub fn to_coo(&self) -> CooMatrix {
        let mut coo = CooMatrix::with_capacity(self.rows, self.cols, self.nnz());
        for r in 0..self.rows {
            for (c, v) in self.row(r) {
                coo.push_unchecked(r, c, v);
            }
        }
        coo
    }

    /// Materializes the matrix densely (row-major); for tests and references.
    pub fn to_dense(&self) -> crate::DenseMatrix {
        let mut m = crate::DenseMatrix::zeros(self.rows, self.cols);
        for r in 0..self.rows {
            for (c, v) in self.row(r) {
                m.set(r, c, v);
            }
        }
        m
    }

    /// Approximate heap usage in bytes (index + value arrays).
    pub fn heap_bytes(&self) -> usize {
        self.indptr.len() * 4 + self.indices.len() * 4 + self.values.len() * 4
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CsrMatrix {
        CooMatrix::from_triplets(
            3,
            4,
            vec![
                (0, 0, 1.0),
                (0, 3, -1.0),
                (1, 1, 2.0),
                (2, 0, 3.0),
                (2, 2, 4.0),
            ],
        )
        .unwrap()
        .to_csr()
    }

    #[test]
    fn raw_parts_round_trip() {
        let m = sample();
        let m2 = CsrMatrix::from_raw_parts(
            m.rows(),
            m.cols(),
            m.indptr().to_vec(),
            m.indices().to_vec(),
            m.values().to_vec(),
        )
        .unwrap();
        assert_eq!(m, m2);
    }

    #[test]
    fn validation_rejects_bad_indptr() {
        let err = CsrMatrix::from_raw_parts(2, 2, vec![0, 1], vec![0], vec![1.0]).unwrap_err();
        assert!(matches!(err, Error::InvalidStructure { .. }));
        let err =
            CsrMatrix::from_raw_parts(2, 2, vec![0, 2, 1], vec![0, 1], vec![1.0, 1.0]).unwrap_err();
        assert!(matches!(err, Error::InvalidStructure { .. }));
    }

    #[test]
    fn validation_rejects_unsorted_columns() {
        let err =
            CsrMatrix::from_raw_parts(1, 3, vec![0, 2], vec![2, 0], vec![1.0, 1.0]).unwrap_err();
        assert!(matches!(err, Error::InvalidStructure { .. }));
    }

    #[test]
    fn validation_rejects_out_of_bounds_column() {
        let err = CsrMatrix::from_raw_parts(1, 2, vec![0, 1], vec![5], vec![1.0]).unwrap_err();
        assert!(matches!(err, Error::InvalidStructure { .. }));
    }

    #[test]
    fn transpose_round_trips() {
        let m = sample();
        let t = m.transpose();
        assert_eq!((t.rows(), t.cols()), (4, 3));
        assert_eq!(t.transpose(), m);
        // Spot-check an entry: A[2][0] = 3.0 => Aᵀ[0][2] = 3.0.
        assert_eq!(t.row(0).collect::<Vec<_>>(), vec![(0, 1.0), (2, 3.0)]);
    }

    #[test]
    fn to_coo_round_trips() {
        let m = sample();
        assert_eq!(m.to_coo().to_csr(), m);
    }

    #[test]
    fn max_row_nnz_and_bytes() {
        let m = sample();
        assert_eq!(m.max_row_nnz(), 2);
        assert!(m.heap_bytes() > 0);
    }

    #[test]
    fn occupied_rows_and_nonzero_columns_agree_through_transpose() {
        let m = sample();
        assert_eq!(m.occupied_rows(), vec![0, 1, 2]);
        assert_eq!(m.nonzero_columns(), vec![0, 1, 2, 3]);
        assert_eq!(m.transpose().occupied_rows(), m.nonzero_columns());
        assert_eq!(m.transpose().nonzero_columns(), m.occupied_rows());

        // A matrix with empty rows and untouched columns.
        let sparse = CooMatrix::from_triplets(4, 6, vec![(1, 5, 1.0), (3, 2, -1.0), (3, 5, 1.0)])
            .unwrap()
            .to_csr();
        assert_eq!(sparse.occupied_rows(), vec![1, 3]);
        assert_eq!(sparse.nonzero_columns(), vec![2, 5]);
        let empty = CooMatrix::new(3, 3).to_csr();
        assert!(empty.occupied_rows().is_empty());
        assert!(empty.nonzero_columns().is_empty());
    }

    #[test]
    fn unit_coefficient_flag_is_cached_and_transposed() {
        // sample() has values 2.0/3.0/4.0 — not an incidence matrix.
        let m = sample();
        assert!(!m.has_unit_coefficients());
        assert!(!m.transpose().has_unit_coefficients());

        let inc = CooMatrix::from_triplets(2, 3, vec![(0, 0, 1.0), (0, 2, -1.0), (1, 1, 1.0)])
            .unwrap()
            .to_csr();
        assert!(inc.has_unit_coefficients());
        assert!(inc.transpose().has_unit_coefficients());

        // Empty matrices are vacuously ±1, matching the per-call scan the
        // kernels used to do.
        assert!(CooMatrix::new(3, 3).to_csr().has_unit_coefficients());

        let raw = CsrMatrix::from_raw_parts(1, 2, vec![0, 1], vec![0], vec![0.5]).unwrap();
        assert!(!raw.has_unit_coefficients());
    }
}
