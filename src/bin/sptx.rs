//! `sptx` — command-line trainer for SparseTransX models.
//!
//! See `sptx help` for usage.

use sptransx_repro::cli;

fn main() {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let result = cli::parse_args(&raw).and_then(|args| cli::run(&args));
    match result {
        Ok(message) => println!("{message}"),
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    }
}
