//! Optimizers and learning-rate scheduling.
//!
//! The paper trains with a fixed learning rate of `4e-4` (§5.3) and, in
//! Appendix E, adds a learning-rate scheduler for the accuracy comparison.
//! All optimizers operate directly on a [`ParamStore`]; state (Adam moments,
//! Adagrad accumulators) is keyed by parameter index and allocated lazily.

use xparallel::PoolHandle;

use crate::{ParamStore, Tensor};

/// A first-order optimizer over a [`ParamStore`].
///
/// Implementors read accumulated gradients and update parameter values in
/// place; [`step`](Optimizer::step) does **not** zero gradients — call
/// [`ParamStore::zero_grads`] per batch, as PyTorch does.
///
/// # Touched-row contract
///
/// [`ParamStore::iter_mut`] hands each parameter's [`crate::RowSet`]
/// alongside its gradient. Optimizers whose update is a fixed point on zero
/// gradients (`SGD`: `x + (−lr · 0) = x`; `Adagrad`: the accumulator and
/// value are both unchanged by `g = 0`, bit for bit under IEEE-754) walk
/// only the touched rows, making the step `O(batch · d)` instead of
/// `O(N · d)`. `Adam` is **not** such a fixed point — its moments decay
/// (`m ← β₁m`) even when `g = 0` — so it always sweeps densely; see
/// [`Adam`].
pub trait Optimizer: std::fmt::Debug {
    /// Applies one update using the gradients currently in `store`.
    fn step(&mut self, store: &mut ParamStore);

    /// Current learning rate.
    fn learning_rate(&self) -> f32;

    /// Overrides the learning rate (used by schedulers).
    fn set_learning_rate(&mut self, lr: f32);

    /// Re-targets pool-dispatched updates onto an explicit handle. Default:
    /// no-op (serial optimizers ignore it). Results are bit-identical at
    /// any handle width either way — the knob trades wall-clock only.
    fn set_pool(&mut self, pool: &PoolHandle) {
        let _ = pool;
    }
}

/// Plain stochastic gradient descent: `p ← p − lr · g`.
///
/// The update is elementwise, so it is sharded over parameter rows on the
/// optimizer's [`PoolHandle`] (see [`Sgd::with_pool`]); results are
/// bit-identical at any pool width. This is the paper's optimizer-step
/// phase (Table 1), parallelized.
///
/// # Examples
///
/// ```
/// use tensor::optim::{Optimizer, Sgd};
/// use tensor::{ParamStore, Tensor};
///
/// let mut store = ParamStore::new();
/// let p = store.add_param("w", Tensor::full(1, 1, 1.0));
/// store.grad_mut(p).set(0, 0, 0.5);
/// Sgd::new(0.1).step(&mut store);
/// assert!((store.value(p).get(0, 0) - 0.95).abs() < 1e-6);
/// ```
#[derive(Debug, Clone)]
pub struct Sgd {
    lr: f32,
    pool: PoolHandle,
}

impl Sgd {
    /// Creates SGD with learning rate `lr`, stepping on the global pool.
    pub fn new(lr: f32) -> Self {
        Self {
            lr,
            pool: PoolHandle::global(),
        }
    }

    /// Dispatches parameter updates on an explicit pool handle (sequential
    /// inside data-parallel workers; pinned widths for determinism audits).
    #[must_use]
    pub fn with_pool(mut self, pool: PoolHandle) -> Self {
        self.pool = pool;
        self
    }
}

impl Optimizer for Sgd {
    fn step(&mut self, store: &mut ParamStore) {
        let lr = self.lr;
        for (_, value, grad, rows, dirty, pager) in store.iter_mut() {
            debug_assert_eq!(
                value.shape(),
                grad.shape(),
                "value/grad shape mismatch in Sgd::step"
            );
            let n = value.cols();
            if let Some(pager) = pager {
                // Paged parameter: value/grad hold the slot-aligned cache and
                // the touched rows are pinned resident, so the update is the
                // same per-row `x += -lr * g` walk through the slot map. The
                // slot translation moves bytes, never arithmetic, so this is
                // bit-identical to the resident sparse walk.
                let rows = rows
                    .as_slice()
                    .expect("paged parameters require sparse touched sets");
                let (vd, gd) = (value.as_mut_slice(), grad.as_slice());
                for &r in rows {
                    let s = pager.slot(r as usize);
                    let dst = &mut vd[s * n..(s + 1) * n];
                    let src = &gd[s * n..(s + 1) * n];
                    for (d, g) in dst.iter_mut().zip(src) {
                        *d += -lr * *g;
                    }
                }
                dirty.insert_slice(rows);
                continue;
            }
            match rows.as_slice() {
                None => {
                    value.add_scaled_with(&self.pool, grad, -lr);
                    dirty.mark_all();
                }
                // Touched-row walk: untouched rows hold exact +0.0
                // gradients, and `x + (−lr · 0.0) = x` bit for bit, so
                // skipping them reproduces the dense sweep exactly.
                Some(rows) if n > 0 => {
                    let gd = grad.as_slice();
                    self.pool.for_listed_rows(
                        value.as_mut_slice(),
                        n,
                        rows,
                        64,
                        |listed, first, window| {
                            for &r in listed {
                                let r = r as usize;
                                let off = (r - first) * n;
                                let dst = &mut window[off..off + n];
                                let src = &gd[r * n..(r + 1) * n];
                                for (d, s) in dst.iter_mut().zip(src) {
                                    *d += -lr * *s;
                                }
                            }
                        },
                    );
                    // Exactly these rows were rewritten: arm the next
                    // renormalization sweep for them, for free.
                    dirty.insert_slice(rows);
                }
                Some(_) => {}
            }
        }
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f32) {
        self.lr = lr;
    }

    fn set_pool(&mut self, pool: &PoolHandle) {
        self.pool = pool.clone();
    }
}

/// Adagrad: per-coordinate adaptive learning rates.
///
/// Like [`Sgd`], the update is a bitwise fixed point on zero gradients
/// (`a + 0·0 = a`, `v − lr·0/(√a + ε) = v`), so the step walks only the
/// touched rows of each parameter and stays bit-identical to a dense sweep.
#[derive(Debug, Clone)]
pub struct Adagrad {
    lr: f32,
    eps: f32,
    accum: Vec<Option<Tensor>>,
}

impl Adagrad {
    /// Creates Adagrad with learning rate `lr` and stability epsilon `1e-10`.
    pub fn new(lr: f32) -> Self {
        Self {
            lr,
            eps: 1e-10,
            accum: Vec::new(),
        }
    }
}

/// Borrows lazily-allocated optimizer state for one parameter, re-allocating
/// (and thereby resetting) it when its shape no longer matches the value —
/// the guard that keeps state keyed by dense [`crate::ParamId`] index valid
/// when parameters are registered after the optimizer's first `step`.
fn validated_state<'a, T>(
    slot: &'a mut Option<T>,
    value: &Tensor,
    shape_of: impl Fn(&T) -> (usize, usize),
    fresh: impl FnOnce() -> T,
) -> &'a mut T {
    let stale = slot.as_ref().is_some_and(|s| shape_of(s) != value.shape());
    if stale {
        *slot = None;
    }
    slot.get_or_insert_with(fresh)
}

impl Optimizer for Adagrad {
    fn step(&mut self, store: &mut ParamStore) {
        let (lr, eps) = (self.lr, self.eps);
        let n = store.len();
        self.accum.resize_with(n, || None);
        for (id, value, grad, rows, dirty, pager) in store.iter_mut() {
            debug_assert_eq!(
                value.shape(),
                grad.shape(),
                "value/grad shape mismatch in Adagrad::step"
            );
            // The accumulator is row-addressed `N × d` state; a paged
            // parameter's cache slots are recycled across batches, so the
            // accumulator would need its own paging to stay coherent.
            assert!(
                pager.is_none(),
                "Adagrad does not support paged parameters; use SGD with --store disk"
            );
            let acc = validated_state(&mut self.accum[id_index(id)], value, Tensor::shape, || {
                Tensor::zeros(value.rows(), value.cols())
            });
            let cols = value.cols();
            let (vd, gd, ad) = (value.as_mut_slice(), grad.as_slice(), acc.as_mut_slice());
            let update = |i: usize, vd: &mut [f32], ad: &mut [f32]| {
                let g = gd[i];
                let a = ad[i] + g * g;
                ad[i] = a;
                vd[i] -= lr * g / (a.sqrt() + eps);
            };
            match rows.as_slice() {
                None => {
                    for i in 0..vd.len() {
                        update(i, vd, ad);
                    }
                    dirty.mark_all();
                }
                Some(rows) => {
                    for &r in rows {
                        let r = r as usize;
                        for i in r * cols..(r + 1) * cols {
                            update(i, vd, ad);
                        }
                    }
                    dirty.insert_slice(rows);
                }
            }
        }
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f32) {
        self.lr = lr;
    }
}

/// Adam (Kingma & Ba) with bias correction.
///
/// **Dense by design:** Adam's moments decay on every step (`m ← β₁·m`,
/// `v ← β₂·v`) even where the gradient is zero, so a zero-gradient row is
/// *not* a fixed point — skipping untouched rows would change results (the
/// "dense Adam vs sparse Adam" semantics gap PyTorch exposes as
/// `SparseAdam`). This implementation keeps the reference dense-Adam
/// semantics and therefore ignores the touched-row sets: its step is
/// `O(N · d)` regardless of batch sparsity. Use [`Sgd`] or [`Adagrad`] when
/// the touched-row fast path matters.
#[derive(Debug, Clone)]
pub struct Adam {
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    t: u64,
    moments: Vec<Option<(Tensor, Tensor)>>,
}

impl Adam {
    /// Creates Adam with the standard hyperparameters `β₁=0.9, β₂=0.999`.
    pub fn new(lr: f32) -> Self {
        Self {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            t: 0,
            moments: Vec::new(),
        }
    }

    /// Overrides the exponential decay rates.
    pub fn with_betas(mut self, beta1: f32, beta2: f32) -> Self {
        self.beta1 = beta1;
        self.beta2 = beta2;
        self
    }
}

impl Optimizer for Adam {
    fn step(&mut self, store: &mut ParamStore) {
        self.t += 1;
        let (lr, b1, b2, eps, t) = (self.lr, self.beta1, self.beta2, self.eps, self.t);
        let bias1 = 1.0 - b1.powi(t as i32);
        let bias2 = 1.0 - b2.powi(t as i32);
        let n = store.len();
        self.moments.resize_with(n, || None);
        for (id, value, grad, _rows, dirty, pager) in store.iter_mut() {
            debug_assert_eq!(
                value.shape(),
                grad.shape(),
                "value/grad shape mismatch in Adam::step"
            );
            // Adam is dense by design (moments decay everywhere), which is
            // exactly what paging out cold rows forbids.
            assert!(
                pager.is_none(),
                "Adam does not support paged parameters; use SGD with --store disk"
            );
            // Adam rewrites every element (moments decay on zero grads), so
            // every row goes dirty — renormalization after an Adam epoch is
            // a full sweep, matching its deliberately dense step.
            dirty.mark_all();
            let (m, v) = validated_state(
                &mut self.moments[id_index(id)],
                value,
                |(m, _)| m.shape(),
                || {
                    (
                        Tensor::zeros(value.rows(), value.cols()),
                        Tensor::zeros(value.rows(), value.cols()),
                    )
                },
            );
            let (vd, gd) = (value.as_mut_slice(), grad.as_slice());
            let (md, sd) = (m.as_mut_slice(), v.as_mut_slice());
            for i in 0..vd.len() {
                let g = gd[i];
                md[i] = b1 * md[i] + (1.0 - b1) * g;
                sd[i] = b2 * sd[i] + (1.0 - b2) * g * g;
                let mhat = md[i] / bias1;
                let vhat = sd[i] / bias2;
                vd[i] -= lr * mhat / (vhat.sqrt() + eps);
            }
        }
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f32) {
        self.lr = lr;
    }
}

fn id_index(id: crate::ParamId) -> usize {
    // ParamStore hands out ids densely, so the index doubles as a state key.
    id.index()
}

/// Multiplicative step decay: every `step_size` epochs, `lr ← lr · gamma`
/// (the Appendix E scheduler).
#[derive(Debug, Clone)]
pub struct StepLr {
    base_lr: f32,
    step_size: u32,
    gamma: f32,
}

impl StepLr {
    /// Creates a scheduler decaying by `gamma` every `step_size` epochs.
    ///
    /// # Panics
    ///
    /// Panics if `step_size == 0`.
    pub fn new(base_lr: f32, step_size: u32, gamma: f32) -> Self {
        assert!(step_size > 0, "step_size must be positive");
        Self {
            base_lr,
            step_size,
            gamma,
        }
    }

    /// Learning rate for a zero-based `epoch`.
    pub fn lr_at(&self, epoch: u32) -> f32 {
        self.base_lr * self.gamma.powi((epoch / self.step_size) as i32)
    }

    /// Applies the schedule to an optimizer for the given epoch.
    pub fn apply(&self, opt: &mut dyn Optimizer, epoch: u32) {
        opt.set_learning_rate(self.lr_at(epoch));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quadratic_store() -> (ParamStore, crate::ParamId) {
        let mut s = ParamStore::new();
        let p = s.add_param("x", Tensor::full(1, 1, 4.0));
        (s, p)
    }

    /// Minimizes f(x) = x² with analytic gradient 2x.
    fn run_steps(opt: &mut dyn Optimizer, store: &mut ParamStore, p: crate::ParamId, n: u32) {
        for _ in 0..n {
            store.zero_grads();
            let x = store.value(p).get(0, 0);
            store.grad_mut(p).set(0, 0, 2.0 * x);
            opt.step(store);
        }
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        let (mut s, p) = quadratic_store();
        let mut opt = Sgd::new(0.1);
        run_steps(&mut opt, &mut s, p, 100);
        assert!(s.value(p).get(0, 0).abs() < 1e-3);
    }

    #[test]
    fn adagrad_converges_on_quadratic() {
        let (mut s, p) = quadratic_store();
        let mut opt = Adagrad::new(1.0);
        run_steps(&mut opt, &mut s, p, 300);
        assert!(s.value(p).get(0, 0).abs() < 0.05);
    }

    #[test]
    fn adam_converges_on_quadratic() {
        let (mut s, p) = quadratic_store();
        let mut opt = Adam::new(0.2);
        run_steps(&mut opt, &mut s, p, 300);
        assert!(s.value(p).get(0, 0).abs() < 0.01);
    }

    #[test]
    fn step_lr_decays() {
        let sched = StepLr::new(1.0, 10, 0.5);
        assert_eq!(sched.lr_at(0), 1.0);
        assert_eq!(sched.lr_at(9), 1.0);
        assert_eq!(sched.lr_at(10), 0.5);
        assert_eq!(sched.lr_at(25), 0.25);
        let mut opt = Sgd::new(1.0);
        sched.apply(&mut opt, 30);
        assert!((opt.learning_rate() - 0.125).abs() < 1e-7);
    }

    #[test]
    fn sgd_lr_is_settable() {
        let mut opt = Sgd::new(0.5);
        assert_eq!(opt.learning_rate(), 0.5);
        opt.set_learning_rate(0.1);
        assert_eq!(opt.learning_rate(), 0.1);
    }

    /// Registering a parameter after the first `step` must lazily allocate
    /// its state instead of indexing out of bounds, and shape-mismatched
    /// state (dense-index reuse across stores) must be re-validated.
    #[test]
    fn stateful_optimizers_survive_late_params_and_store_swaps() {
        for make in [
            (|| Box::new(Adagrad::new(0.1)) as Box<dyn Optimizer>) as fn() -> Box<dyn Optimizer>,
            || Box::new(Adam::new(0.1)),
        ] {
            let mut opt = make();
            let mut s = ParamStore::new();
            let a = s.add_param("a", Tensor::full(1, 1, 2.0));
            s.grad_mut(a).set(0, 0, 1.0);
            opt.step(&mut s);
            // Late registration: the state vector must grow.
            let b = s.add_param("b", Tensor::full(2, 3, 1.0));
            s.grad_mut(b).row_mut(1).fill(0.5);
            opt.step(&mut s);
            assert!(s.value(b).get(1, 0) < 1.0, "late param must train");

            // Same optimizer against a store whose param 0 has a different
            // shape: stale state must be dropped, not indexed against.
            let mut other = ParamStore::new();
            let w = other.add_param("w", Tensor::full(4, 2, 1.0));
            other.grad_mut(w).row_mut(0).fill(0.25);
            opt.step(&mut other);
            assert!(other.value(w).get(0, 0) < 1.0);
        }
    }

    /// The sparse (touched-row) step must be bit-identical to the dense
    /// sweep for SGD and Adagrad — the IEEE fixed-point argument, asserted.
    #[test]
    fn sparse_step_matches_dense_bitwise() {
        let runs: [fn() -> Box<dyn Optimizer>; 2] =
            [|| Box::new(Sgd::new(0.1)), || Box::new(Adagrad::new(0.1))];
        for make in runs {
            let mut dense_store = ParamStore::new();
            let mut sparse_store = ParamStore::new();
            let init = Tensor::from_rows(&[[1.0, -2.0], [0.5, 0.25], [3.0, -0.125], [0.0, 7.5]]);
            let pd = dense_store.add_param("p", init.clone());
            let ps = sparse_store.add_param("p", init);
            let mut dense_opt = make();
            let mut sparse_opt = make();
            for round in 0..3 {
                dense_store.zero_grads();
                sparse_store.zero_grads();
                let g = 0.5 + round as f32;
                // Dense store: untracked write marks everything.
                let gd = dense_store.grad_mut(pd);
                gd.row_mut(1).fill(g);
                gd.set(3, 0, -g);
                // Sparse store: tracked write on rows {1, 3} only.
                let gs = sparse_store.grad_rows_mut(ps, &[1, 3]);
                gs.row_mut(1).fill(g);
                gs.set(3, 0, -g);
                assert!(dense_store.touched(pd).is_dense());
                assert!(!sparse_store.touched(ps).is_dense());
                dense_opt.step(&mut dense_store);
                sparse_opt.step(&mut sparse_store);
                for (x, y) in dense_store
                    .value(pd)
                    .as_slice()
                    .iter()
                    .zip(sparse_store.value(ps).as_slice())
                {
                    assert_eq!(x.to_bits(), y.to_bits(), "{x} vs {y}");
                }
            }
        }
    }
}
