//! No-op derive macros backing the vendored `serde` shim.
//!
//! The workspace only uses `#[derive(Serialize, Deserialize)]` annotations —
//! no code ever calls serialization methods or uses the traits as bounds — so
//! these derives simply accept the item and emit nothing. If a future PR
//! starts serializing for real, replace `vendor/serde{,_derive}` with the
//! actual crates.io packages (see `vendor/README.md`).

use proc_macro::TokenStream;

/// Accepts a `#[derive(Serialize)]` annotation and emits no code.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Accepts a `#[derive(Deserialize)]` annotation and emits no code.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}
