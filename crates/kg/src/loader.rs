//! Loading and saving triples in tab/comma-separated text formats.
//!
//! The paper's framework accepts CSV, TTL and RDF inputs and interns entity
//! and relation labels into dense indices (stored in SQLite in the original;
//! an in-memory [`Vocab`] here). We support the common
//! `head<TAB>relation<TAB>tail` layout used by FB15K/WN18 distributions.

use std::collections::HashMap;
use std::io::{BufRead, BufReader, Read, Write};

use crate::{Error, Result, Triple, TripleStore};

/// A bidirectional label ⇄ index mapping for entities and relations.
#[derive(Debug, Clone, Default)]
pub struct Vocab {
    entity_to_id: HashMap<String, u32>,
    entities: Vec<String>,
    relation_to_id: HashMap<String, u32>,
    relations: Vec<String>,
}

impl Vocab {
    /// Creates an empty vocabulary.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns an entity label, returning its dense index.
    pub fn intern_entity(&mut self, label: &str) -> u32 {
        if let Some(&id) = self.entity_to_id.get(label) {
            return id;
        }
        let id = self.entities.len() as u32;
        self.entities.push(label.to_string());
        self.entity_to_id.insert(label.to_string(), id);
        id
    }

    /// Interns a relation label, returning its dense index.
    pub fn intern_relation(&mut self, label: &str) -> u32 {
        if let Some(&id) = self.relation_to_id.get(label) {
            return id;
        }
        let id = self.relations.len() as u32;
        self.relations.push(label.to_string());
        self.relation_to_id.insert(label.to_string(), id);
        id
    }

    /// Label of entity `id`, if known.
    pub fn entity(&self, id: u32) -> Option<&str> {
        self.entities.get(id as usize).map(String::as_str)
    }

    /// Label of relation `id`, if known.
    pub fn relation(&self, id: u32) -> Option<&str> {
        self.relations.get(id as usize).map(String::as_str)
    }

    /// Index of an entity label, if interned.
    pub fn entity_id(&self, label: &str) -> Option<u32> {
        self.entity_to_id.get(label).copied()
    }

    /// Index of a relation label, if interned.
    pub fn relation_id(&self, label: &str) -> Option<u32> {
        self.relation_to_id.get(label).copied()
    }

    /// Number of interned entities.
    pub fn num_entities(&self) -> usize {
        self.entities.len()
    }

    /// Number of interned relations.
    pub fn num_relations(&self) -> usize {
        self.relations.len()
    }
}

/// Parses `head<sep>relation<sep>tail` lines from a reader, interning labels
/// into `vocab`. Pass `&mut reader` to keep using the reader afterwards.
///
/// Empty lines and lines starting with `#` are skipped. The separator is
/// auto-detected per line: tab if present, otherwise comma.
///
/// # Errors
///
/// Returns [`Error::Parse`] (with line number) for malformed rows and
/// [`Error::Io`] for read failures.
///
/// # Examples
///
/// ```
/// let data = "alice\tknows\tbob\nbob\tknows\tcarol\n";
/// let mut vocab = kg::Vocab::new();
/// let store = kg::load_tsv(data.as_bytes(), &mut vocab)?;
/// assert_eq!(store.len(), 2);
/// assert_eq!(vocab.num_entities(), 3);
/// # Ok::<(), kg::Error>(())
/// ```
pub fn load_tsv<R: Read>(reader: R, vocab: &mut Vocab) -> Result<TripleStore> {
    let mut store = TripleStore::new();
    let buf = BufReader::new(reader);
    for (lineno, line) in buf.lines().enumerate() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let sep = if trimmed.contains('\t') { '\t' } else { ',' };
        let mut parts = trimmed.split(sep);
        let (h, r, t) = match (parts.next(), parts.next(), parts.next()) {
            (Some(h), Some(r), Some(t)) if !h.is_empty() && !r.is_empty() && !t.is_empty() => {
                (h.trim(), r.trim(), t.trim())
            }
            _ => {
                return Err(Error::Parse {
                    line: lineno + 1,
                    context: format!("expected 3 fields, got {trimmed:?}"),
                })
            }
        };
        if parts.next().is_some() {
            return Err(Error::Parse {
                line: lineno + 1,
                context: format!("expected exactly 3 fields, got extra in {trimmed:?}"),
            });
        }
        let head = vocab.intern_entity(h);
        let rel = vocab.intern_relation(r);
        let tail = vocab.intern_entity(t);
        store.push(Triple::new(head, rel, tail));
    }
    Ok(store)
}

/// Writes triples as `head<TAB>relation<TAB>tail` lines using vocabulary
/// labels (falling back to the numeric index for unknown ids).
///
/// # Errors
///
/// Returns [`Error::Io`] on write failure.
pub fn write_tsv<W: Write>(mut writer: W, store: &TripleStore, vocab: &Vocab) -> Result<()> {
    for t in store.iter() {
        let h = vocab
            .entity(t.head)
            .map(str::to_string)
            .unwrap_or_else(|| t.head.to_string());
        let r = vocab
            .relation(t.rel)
            .map(str::to_string)
            .unwrap_or_else(|| t.rel.to_string());
        let tl = vocab
            .entity(t.tail)
            .map(str::to_string)
            .unwrap_or_else(|| t.tail.to_string());
        writeln!(writer, "{h}\t{r}\t{tl}")?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_through_text() {
        let input = "a\tr1\tb\nb\tr2\tc\na\tr2\tc\n";
        let mut vocab = Vocab::new();
        let store = load_tsv(input.as_bytes(), &mut vocab).unwrap();
        assert_eq!(store.len(), 3);
        assert_eq!(vocab.num_entities(), 3);
        assert_eq!(vocab.num_relations(), 2);

        let mut out = Vec::new();
        write_tsv(&mut out, &store, &vocab).unwrap();
        let mut vocab2 = Vocab::new();
        let store2 = load_tsv(out.as_slice(), &mut vocab2).unwrap();
        assert_eq!(store, store2);
    }

    #[test]
    fn csv_detection_and_comments() {
        let input = "# a comment\n\na,r,b\nc , r , d\n";
        let mut vocab = Vocab::new();
        let store = load_tsv(input.as_bytes(), &mut vocab).unwrap();
        assert_eq!(store.len(), 2);
        assert_eq!(vocab.entity(0), Some("a"));
        assert_eq!(vocab.entity_id("c"), Some(2));
    }

    #[test]
    fn repeated_labels_share_ids() {
        let input = "a\tr\tb\na\tr\tb\n";
        let mut vocab = Vocab::new();
        let store = load_tsv(input.as_bytes(), &mut vocab).unwrap();
        assert_eq!(store.get(0), store.get(1));
        assert_eq!(vocab.num_entities(), 2);
    }

    #[test]
    fn malformed_lines_report_position() {
        let input = "a\tr\tb\nbroken line\n";
        let mut vocab = Vocab::new();
        let err = load_tsv(input.as_bytes(), &mut vocab).unwrap_err();
        match err {
            Error::Parse { line, .. } => assert_eq!(line, 2),
            other => panic!("unexpected error: {other:?}"),
        }
    }

    #[test]
    fn too_many_fields_rejected() {
        let input = "a\tr\tb\textra\n";
        let mut vocab = Vocab::new();
        assert!(load_tsv(input.as_bytes(), &mut vocab).is_err());
    }

    #[test]
    fn vocab_lookup_api() {
        let mut v = Vocab::new();
        let a = v.intern_entity("a");
        assert_eq!(v.intern_entity("a"), a);
        assert_eq!(v.relation("?".len() as u32), None);
        assert_eq!(v.relation_id("nope"), None);
    }
}
