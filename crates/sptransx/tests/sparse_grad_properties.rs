//! The touched-row gradient contract, asserted bit-for-bit.
//!
//! The sparse gradient pipeline (tape-recorded row sets → sparse
//! `zero_grads` → touched-row backward kernels → touched-row SGD/Adagrad →
//! union all-reduce) promises **bit-identical training to the dense
//! sweeps** it replaced: untouched rows carry exact `+0.0` gradients and
//! every per-row expression matches the dense path's, so only the per-batch
//! cost changes (`O(batch · d)` vs `O(N · d)`). These tests flip
//! `TrainConfig::dense_grads` — the ablation switch `sptx train
//! --dense-grads` exposes — and compare multi-epoch runs across every model
//! family and several pinned pool widths, `f32` bits not tolerances. CI
//! re-runs the suite under `SPTX_NUM_THREADS ∈ {1, 4}` and cross-diffs CLI
//! runs of both paths.

use kg::synthetic::SyntheticKgBuilder;
use kg::Dataset;
use sptransx::distributed::train_data_parallel_returning;
use sptransx::{
    DenseTransE, DenseTransR, KgeModel, OptimizerKind, SpComplEx, SpDistMult, SpRotatE, SpTorusE,
    SpTransE, SpTransH, SpTransR, TrainConfig, Trainer,
};
use xparallel::PoolHandle;

fn dataset() -> Dataset {
    SyntheticKgBuilder::new(80, 5).triples(500).seed(91).build()
}

fn config(dense_grads: bool, optimizer: OptimizerKind) -> TrainConfig {
    TrainConfig {
        epochs: 3,
        batch_size: 96,
        dim: 12,
        rel_dim: 6,
        lr: 0.05,
        dense_grads,
        optimizer,
        ..Default::default()
    }
}

/// Losses and final parameter bits of one run.
fn run<M, F>(
    width: usize,
    dense_grads: bool,
    optimizer: OptimizerKind,
    make: F,
) -> (Vec<u32>, Vec<Vec<u32>>)
where
    M: KgeModel,
    F: FnOnce(&Dataset, &TrainConfig) -> M,
{
    let ds = dataset();
    let cfg = config(dense_grads, optimizer);
    let model = make(&ds, &cfg);
    let mut trainer = Trainer::new(model, &ds, &cfg)
        .unwrap()
        .with_pool(PoolHandle::global().with_width(width));
    let report = trainer.run().unwrap();
    let model = trainer.into_model();
    let params = model
        .store()
        .param_ids()
        .into_iter()
        .map(|id| {
            model
                .store()
                .value(id)
                .as_slice()
                .iter()
                .map(|x| x.to_bits())
                .collect()
        })
        .collect();
    let losses = report.epoch_losses.iter().map(|x| x.to_bits()).collect();
    (losses, params)
}

/// Sparse vs dense gradient path must agree bit-for-bit after multi-epoch
/// training, at every pool width — for every kernel family on the tape:
/// TransE/TorusE (SpMM + norms), TransR (projections + scatter-outer),
/// TransH (gathers + hyperplane algebra), DistMult (semiring triple
/// product), RotatE/ComplEx (complex kernels), and the dense gather/scatter
/// baselines.
macro_rules! sparse_matches_dense_test {
    ($name:ident, $model:ty) => {
        #[test]
        fn $name() {
            let make = |ds: &Dataset, cfg: &TrainConfig| <$model>::from_config(ds, cfg).unwrap();
            for width in [1usize, 4, 8] {
                let sparse = run(width, false, OptimizerKind::Sgd, make);
                let dense = run(width, true, OptimizerKind::Sgd, make);
                assert!(
                    sparse.0.iter().all(|l| f32::from_bits(*l).is_finite()),
                    "losses must be finite"
                );
                assert_eq!(
                    sparse.0,
                    dense.0,
                    "{} width {width}: epoch losses diverged",
                    stringify!($model)
                );
                assert_eq!(
                    sparse.1,
                    dense.1,
                    "{} width {width}: final parameters diverged",
                    stringify!($model)
                );
            }
        }
    };
}

sparse_matches_dense_test!(sptranse_sparse_matches_dense, SpTransE);
sparse_matches_dense_test!(sptoruse_sparse_matches_dense, SpTorusE);
sparse_matches_dense_test!(sptransr_sparse_matches_dense, SpTransR);
sparse_matches_dense_test!(sptransh_sparse_matches_dense, SpTransH);
sparse_matches_dense_test!(spdistmult_sparse_matches_dense, SpDistMult);
sparse_matches_dense_test!(sprotate_sparse_matches_dense, SpRotatE);
sparse_matches_dense_test!(spcomplex_sparse_matches_dense, SpComplEx);
sparse_matches_dense_test!(densetranse_sparse_matches_dense, DenseTransE);
sparse_matches_dense_test!(densetransr_sparse_matches_dense, DenseTransR);

/// Adagrad's touched-row step is a bitwise fixed point on zero gradients
/// too; Adam intentionally stays dense either way — both optimizers must
/// produce identical bits with and without the ablation switch.
#[test]
fn adagrad_and_adam_sparse_match_dense() {
    let make = |ds: &Dataset, cfg: &TrainConfig| SpTransE::from_config(ds, cfg).unwrap();
    for optimizer in [OptimizerKind::Adagrad, OptimizerKind::Adam] {
        for width in [1usize, 4] {
            let sparse = run(width, false, optimizer, make);
            let dense = run(width, true, optimizer, make);
            assert_eq!(sparse, dense, "{optimizer:?} width {width} diverged");
        }
    }
}

/// The optimizer choice must actually change training (the wiring is live,
/// not cosmetic), while the LR schedule composes with any optimizer.
#[test]
fn optimizer_choice_is_wired_through_the_trainer() {
    let make = |ds: &Dataset, cfg: &TrainConfig| SpTransE::from_config(ds, cfg).unwrap();
    let sgd = run(1, false, OptimizerKind::Sgd, make);
    let adagrad = run(1, false, OptimizerKind::Adagrad, make);
    let adam = run(1, false, OptimizerKind::Adam, make);
    assert_ne!(sgd.1, adagrad.1, "Adagrad must differ from SGD");
    assert_ne!(sgd.1, adam.1, "Adam must differ from SGD");

    let ds = dataset();
    let cfg = TrainConfig {
        lr_schedule: Some((1, 0.5)),
        optimizer: OptimizerKind::Adagrad,
        ..config(false, OptimizerKind::Adagrad)
    };
    let mut trainer = Trainer::new(SpTransE::from_config(&ds, &cfg).unwrap(), &ds, &cfg).unwrap();
    trainer.run().unwrap();
    // 3 epochs, step 1, gamma 0.5: lr = base · 0.25.
    assert!((trainer.optimizer().learning_rate() - cfg.lr * 0.25).abs() < 1e-9);
}

/// The data-parallel driver shares the contract: its union all-reduce and
/// per-replica sparse steps must match the dense reduction bit-for-bit.
#[test]
fn distributed_sparse_all_reduce_matches_dense() {
    let ds = dataset();
    for workers in [2usize, 3] {
        let run_mode = |dense_grads: bool| {
            let cfg = config(dense_grads, OptimizerKind::Sgd);
            let (report, model) =
                train_data_parallel_returning(&ds, &cfg, workers, SpTransE::from_config).unwrap();
            let emb: Vec<u32> = model
                .store()
                .value(model.embedding_param())
                .as_slice()
                .iter()
                .map(|x| x.to_bits())
                .collect();
            let losses: Vec<u32> = report.epoch_losses.iter().map(|x| x.to_bits()).collect();
            (losses, emb)
        };
        let sparse = run_mode(false);
        let dense = run_mode(true);
        assert_eq!(sparse.0, dense.0, "workers {workers}: losses diverged");
        assert_eq!(sparse.1, dense.1, "workers {workers}: embeddings diverged");
    }
}

/// Stateful optimizers in the data-parallel driver: each replica owns its
/// optimizer instance, all replicas step on the same averaged gradient, so
/// their state — and therefore their parameters — stay in lock-step (the
/// driver bit-asserts this after every synchronous step in debug builds; a
/// single shared Adagrad/Adam would advance its accumulators once per
/// replica per step and fail that assertion on the first step).
#[test]
fn distributed_stateful_optimizers_keep_replicas_in_lockstep() {
    let ds = dataset();
    for optimizer in [OptimizerKind::Adagrad, OptimizerKind::Adam] {
        let cfg = config(false, optimizer);
        let (report, _model) =
            train_data_parallel_returning(&ds, &cfg, 3, SpTransE::from_config).unwrap();
        assert!(
            report.epoch_losses.iter().all(|l| l.is_finite()),
            "{optimizer:?}: losses must be finite"
        );
    }
}

/// `TrainConfig::lr_schedule` must act in the distributed driver exactly as
/// in `Trainer`: a 1-worker data-parallel run with a decay schedule matches
/// the single-process trainer bit-for-bit (same optimizer state, same
/// per-epoch decayed rate).
#[test]
fn distributed_honors_lr_schedule_like_trainer() {
    let ds = dataset();
    let cfg = TrainConfig {
        lr_schedule: Some((1, 0.5)),
        ..config(false, OptimizerKind::Adagrad)
    };
    let (dist_report, dist_model) =
        train_data_parallel_returning(&ds, &cfg, 1, SpTransE::from_config).unwrap();
    let mut trainer = Trainer::new(SpTransE::from_config(&ds, &cfg).unwrap(), &ds, &cfg).unwrap();
    let train_report = trainer.run().unwrap();
    let final_lr = trainer.optimizer().learning_rate();
    let trainer_model = trainer.into_model();
    for (i, (a, b)) in dist_report
        .epoch_losses
        .iter()
        .zip(&train_report.epoch_losses)
        .enumerate()
    {
        assert_eq!(a.to_bits(), b.to_bits(), "epoch {i}: {a} vs {b}");
    }
    let da = dist_model.store().value(dist_model.embedding_param());
    let db = trainer_model.store().value(trainer_model.embedding_param());
    for (a, b) in da.as_slice().iter().zip(db.as_slice()) {
        assert_eq!(a.to_bits(), b.to_bits());
    }
    // 3 epochs, step 1, gamma 0.5: the schedule really decayed.
    assert!((final_lr - cfg.lr * 0.25).abs() < 1e-9);
}

/// After `backward`, each parameter's row set covers exactly the rows with
/// nonzero gradient — and nothing in the batch's complement.
#[test]
fn row_sets_cover_all_nonzero_gradient_rows() {
    let ds = dataset();
    let cfg = config(false, OptimizerKind::Sgd);
    for model_run in 0..2 {
        // Two structurally different families: SpTransE (one stacked
        // parameter, SpMM backward) and SpTransR (three parameters:
        // SpMM + gather + scatter-outer backward).
        let check = |store: &tensor::ParamStore| {
            for id in store.param_ids() {
                let rows = store.touched(id);
                let grad = store.grad(id);
                let n = grad.cols();
                let listed = rows.as_slice().expect("sparse mode must stay sparse");
                for r in 0..grad.rows() {
                    let nonzero = grad.as_slice()[r * n..(r + 1) * n]
                        .iter()
                        .any(|&x| x != 0.0);
                    let in_set = listed.binary_search(&(r as u32)).is_ok();
                    assert!(
                        !nonzero || in_set,
                        "param {id:?} row {r} has gradient but is not in the row set"
                    );
                }
                assert!(
                    listed.windows(2).all(|w| w[0] < w[1]),
                    "row set must be sorted and deduplicated"
                );
            }
        };
        if model_run == 0 {
            let mut t = Trainer::new(SpTransE::from_config(&ds, &cfg).unwrap(), &ds, &cfg).unwrap();
            t.run_epochs(1).unwrap();
            check(t.model().store());
        } else {
            let mut t = Trainer::new(SpTransR::from_config(&ds, &cfg).unwrap(), &ds, &cfg).unwrap();
            t.run_epochs(1).unwrap();
            check(t.model().store());
        }
    }
}
