//! Ablations of the DESIGN.md kernel choices:
//!
//! 1. **Incidence fast path** (fused 2/3-nonzero rows) vs the general tiled
//!    axpy path on the same matrix — the "specialized for incidence rows"
//!    design decision.
//! 2. **Thread scaling** of the SpMM kernel via the runtime parallelism cap
//!    (the paper's CPU-vs-GPU axis; informative only on multi-core hosts).
//! 3. **Transpose caching**: backward with the cached `Aᵀ` vs re-transposing
//!    per call, the `IncidencePair` design decision.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sparse::incidence::{hrt, TailSign};
use sparse::spmm::{csr_spmm, csr_spmm_into, csr_spmm_into_general};
use sparse::{CsrMatrix, DenseMatrix};

fn incidence(n_ent: usize, n_rel: usize, m: usize, seed: u64) -> CsrMatrix {
    let mut rng = StdRng::seed_from_u64(seed);
    let heads: Vec<u32> = (0..m).map(|_| rng.gen_range(0..n_ent as u32)).collect();
    let tails: Vec<u32> = (0..m)
        .map(|i| {
            let mut t = rng.gen_range(0..n_ent as u32);
            if t == heads[i] {
                t = (t + 1) % n_ent as u32;
            }
            t
        })
        .collect();
    let rels: Vec<u32> = (0..m).map(|_| rng.gen_range(0..n_rel as u32)).collect();
    hrt(n_ent, n_rel, &heads, &rels, &tails, TailSign::Negative).unwrap()
}

fn dense(rows: usize, cols: usize, seed: u64) -> DenseMatrix {
    let mut rng = StdRng::seed_from_u64(seed);
    DenseMatrix::from_vec(
        rows,
        cols,
        (0..rows * cols).map(|_| rng.gen_range(-1.0..1.0)).collect(),
    )
}

fn bench_fastpath_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_fastpath");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(3));
    group.warm_up_time(std::time::Duration::from_secs(1));
    let (n_ent, n_rel, m, d) = (20_000usize, 200usize, 8192usize, 128usize);
    let a = incidence(n_ent, n_rel, m, 1);
    let b = dense(n_ent + n_rel, d, 2);
    let mut out = vec![0f32; m * d];
    group.bench_function("fused_incidence_rows", |bench| {
        bench.iter(|| csr_spmm_into(&a, b.view(), &mut out))
    });
    group.bench_function("general_tiled_axpy", |bench| {
        bench.iter(|| csr_spmm_into_general(&a, b.view(), &mut out))
    });
    group.finish();
}

fn bench_thread_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_threads");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(3));
    group.warm_up_time(std::time::Duration::from_secs(1));
    let (n_ent, n_rel, m, d) = (20_000usize, 200usize, 16_384usize, 128usize);
    let a = incidence(n_ent, n_rel, m, 3);
    let b = dense(n_ent + n_rel, d, 4);
    let mut out = vec![0f32; m * d];
    let max = xparallel::current_num_threads();
    for threads in [1usize, 2, 4, 8] {
        if threads > max {
            break;
        }
        group.bench_with_input(BenchmarkId::new("spmm", threads), &threads, |bench, &t| {
            xparallel::with_parallelism(t, || bench.iter(|| csr_spmm_into(&a, b.view(), &mut out)))
        });
    }
    group.finish();
}

fn bench_transpose_caching(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_transpose_cache");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(3));
    group.warm_up_time(std::time::Duration::from_secs(1));
    let (n_ent, n_rel, m, d) = (20_000usize, 200usize, 8192usize, 64usize);
    let a = incidence(n_ent, n_rel, m, 5);
    let a_t = a.transpose();
    let g = dense(m, d, 6);
    group.bench_function("cached_transpose_backward", |bench| {
        bench.iter(|| csr_spmm(&a_t, &g))
    });
    group.bench_function("retranspose_every_call", |bench| {
        bench.iter(|| csr_spmm(&a.transpose(), &g))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_fastpath_ablation,
    bench_thread_scaling,
    bench_transpose_caching
);
criterion_main!(benches);
