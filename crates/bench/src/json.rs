//! Machine-readable benchmark output: `BENCH_<name>.json` files.
//!
//! Criterion's reports live under `target/criterion/` in a layout that
//! changes between versions and is awkward for scripts to consume. The
//! benches that feed CI trend lines therefore *also* emit a flat JSON array
//! of records — one object per (arm, configuration) measurement — via this
//! hand-rolled writer (the workspace deliberately carries no serde).
//!
//! Files land in the directory named by the `SPTX_BENCH_JSON_DIR`
//! environment variable, or the current working directory when unset, as
//! `BENCH_<name>.json`.

use std::io::Write;
use std::path::PathBuf;

/// One JSON object, built field by field in insertion order.
///
/// # Examples
///
/// ```
/// use sptx_bench::json::JsonObject;
///
/// let o = JsonObject::new()
///     .str("arm", "async")
///     .int("workers", 4)
///     .num("ms_per_epoch", 12.5);
/// assert_eq!(
///     o.render(),
///     r#"{"arm": "async", "workers": 4, "ms_per_epoch": 12.5}"#
/// );
/// ```
#[derive(Debug, Clone, Default)]
pub struct JsonObject {
    fields: Vec<(String, String)>,
}

impl JsonObject {
    /// An empty object.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a string field (escaped).
    #[must_use]
    pub fn str(mut self, key: &str, value: &str) -> Self {
        self.fields
            .push((key.to_string(), format!("\"{}\"", escape(value))));
        self
    }

    /// Adds an integer field.
    #[must_use]
    pub fn int(mut self, key: &str, value: u64) -> Self {
        self.fields.push((key.to_string(), value.to_string()));
        self
    }

    /// Adds a finite float field. Non-finite values render as `null`
    /// (bare `NaN`/`inf` tokens are not JSON).
    #[must_use]
    pub fn num(mut self, key: &str, value: f64) -> Self {
        let rendered = if value.is_finite() {
            format!("{value}")
        } else {
            "null".to_string()
        };
        self.fields.push((key.to_string(), rendered));
        self
    }

    /// Renders the object as a single-line JSON string.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::from("{");
        for (i, (k, v)) in self.fields.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push('"');
            out.push_str(&escape(k));
            out.push_str("\": ");
            out.push_str(v);
        }
        out.push('}');
        out
    }
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// The output directory: `SPTX_BENCH_JSON_DIR`, or the current directory.
#[must_use]
pub fn output_dir() -> PathBuf {
    std::env::var_os("SPTX_BENCH_JSON_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("."))
}

/// Writes `records` as a pretty-ish JSON array to `BENCH_<name>.json` in
/// [`output_dir`], returning the path written.
///
/// # Errors
///
/// Propagates filesystem errors (missing directory, permissions).
pub fn write_bench_json(name: &str, records: &[JsonObject]) -> std::io::Result<PathBuf> {
    let path = output_dir().join(format!("BENCH_{name}.json"));
    let mut body = String::from("[\n");
    for (i, r) in records.iter().enumerate() {
        body.push_str("  ");
        body.push_str(&r.render());
        if i + 1 < records.len() {
            body.push(',');
        }
        body.push('\n');
    }
    body.push_str("]\n");
    let mut f = std::fs::File::create(&path)?;
    f.write_all(body.as_bytes())?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_fields_in_order_with_escapes() {
        let o = JsonObject::new()
            .str("name", "a\"b\\c\nd")
            .int("count", 3)
            .num("ratio", 0.5)
            .num("bad", f64::NAN);
        assert_eq!(
            o.render(),
            "{\"name\": \"a\\\"b\\\\c\\nd\", \"count\": 3, \"ratio\": 0.5, \"bad\": null}"
        );
    }

    #[test]
    fn writes_array_file_to_env_dir() {
        let dir = std::env::temp_dir().join("sptx-bench-json-test");
        std::fs::create_dir_all(&dir).unwrap();
        // Write via an explicit path rather than mutating the process-wide
        // env var (tests run concurrently).
        let records = [
            JsonObject::new().str("arm", "sync").int("workers", 1),
            JsonObject::new().str("arm", "async").int("workers", 4),
        ];
        let mut body = String::from("[\n");
        for (i, r) in records.iter().enumerate() {
            body.push_str("  ");
            body.push_str(&r.render());
            if i + 1 < records.len() {
                body.push(',');
            }
            body.push('\n');
        }
        body.push_str("]\n");
        let path = dir.join("BENCH_test.json");
        std::fs::write(&path, &body).unwrap();
        let read = std::fs::read_to_string(&path).unwrap();
        assert!(read.starts_with("[\n  {\"arm\": \"sync\""));
        assert!(read.trim_end().ends_with(']'));
        assert_eq!(read.matches('{').count(), 2);
        std::fs::remove_dir_all(&dir).ok();
    }
}
