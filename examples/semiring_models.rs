//! Appendix D in action: the same incidence-matrix SpMM computes
//! non-translational scores when the semiring is swapped.
//!
//! Trains DistMult end-to-end through the `(×, ×)` semiring, then scores
//! triples with the ComplEx and RotatE semiring kernels.
//!
//! ```sh
//! cargo run --release --example semiring_models
//! ```

use kg::eval::{evaluate, EvalConfig, TripleScorer};
use kg::synthetic::SyntheticKgBuilder;
use sptransx::{
    ComplExScorer, RotatEScorer, SpComplEx, SpDistMult, SpRotatE, TrainConfig, Trainer,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dataset = SyntheticKgBuilder::new(300, 8)
        .triples(2_500)
        .seed(5)
        .build();
    let config = TrainConfig {
        epochs: 25,
        batch_size: 512,
        dim: 32,
        lr: 0.05,
        ..Default::default()
    };

    // --- DistMult: trainable via the (×,×) semiring SpMM -----------------
    let model = SpDistMult::from_config(&dataset, &config)?;
    let mut trainer = Trainer::new(model, &dataset, &config)?;
    let report = trainer.run()?;
    println!(
        "DistMult loss: {:.4} -> {:.4}",
        report.epoch_losses.first().unwrap(),
        report.epoch_losses.last().unwrap()
    );
    let eval = trainer.evaluate(
        &dataset,
        &EvalConfig {
            max_triples: Some(100),
            ..Default::default()
        },
    );
    println!(
        "DistMult filtered Hits@10: {:.3}\n",
        eval.hits(10).unwrap_or(0.0)
    );

    // --- RotatE & ComplEx: trainable through the complex semirings --------
    for name in ["rotate", "complex"] {
        let cfg = TrainConfig {
            dim: 16,
            ..config.clone()
        };
        let (first, last, hits) = match name {
            "rotate" => {
                let mut t = Trainer::new(SpRotatE::from_config(&dataset, &cfg)?, &dataset, &cfg)?;
                let r = t.run()?;
                let e = t.evaluate(
                    &dataset,
                    &EvalConfig {
                        max_triples: Some(100),
                        ..Default::default()
                    },
                );
                (
                    r.epoch_losses[0],
                    *r.epoch_losses.last().unwrap(),
                    e.hits(10).unwrap_or(0.0),
                )
            }
            _ => {
                let mut t = Trainer::new(SpComplEx::from_config(&dataset, &cfg)?, &dataset, &cfg)?;
                let r = t.run()?;
                let e = t.evaluate(
                    &dataset,
                    &EvalConfig {
                        max_triples: Some(100),
                        ..Default::default()
                    },
                );
                (
                    r.epoch_losses[0],
                    *r.epoch_losses.last().unwrap(),
                    e.hits(10).unwrap_or(0.0),
                )
            }
        };
        println!("Sp{name}: loss {first:.4} -> {last:.4}, filtered Hits@10 {hits:.3}");
    }
    println!();

    // --- ComplEx & RotatE: complex-semiring scoring -----------------------
    // Build complex embeddings where each relation is a pure rotation and
    // tails are exactly rotated heads for the known triples — RotatE's
    // geometric ideal — then check the scorers rank those tails first.
    let n = dataset.num_entities;
    let r = dataset.num_relations;
    let half_dim = 8;
    let emb = tensor::init::unit_phases(n + r, half_dim, 99);

    let rotate = RotatEScorer::new(emb.as_slice().to_vec(), n, r, half_dim)?;
    let complex = ComplExScorer::new(emb.as_slice().to_vec(), n, r, half_dim)?;

    let eval_cfg = EvalConfig {
        max_triples: Some(30),
        ..Default::default()
    };
    let known = dataset.all_known();
    let rot_eval = evaluate(&rotate, &dataset.test, &known, &eval_cfg);
    let cpx_eval = evaluate(&complex, &dataset.test, &known, &eval_cfg);
    println!(
        "RotatE  (random unit-phase embeddings) MRR: {:.3}",
        rot_eval.mrr
    );
    println!(
        "ComplEx (random unit-phase embeddings) MRR: {:.3}",
        cpx_eval.mrr
    );
    println!("(random embeddings score near chance — the point is the kernel path)");

    // Direct kernel sanity: a tail that IS the rotated head scores ~0.
    let h = sparse::Complex32::from_phase(0.3);
    let rel = sparse::Complex32::from_phase(1.2);
    let t = h * rel;
    let mut toy = Vec::new();
    for z in [h, t, rel] {
        toy.push(z.re);
        toy.push(z.im);
    }
    let toy_scorer = RotatEScorer::new(toy, 2, 1, 1)?;
    println!(
        "\ntoy RotatE distance(h, r, h∘r) = {:.2e} (exact rotation scores zero)",
        toy_scorer.score_tails(0, 0)[1]
    );
    Ok(())
}
