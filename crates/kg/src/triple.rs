//! Triples and triple collections.

use std::collections::HashSet;

use serde::{Deserialize, Serialize};

use crate::{Error, Result};

/// One knowledge-graph fact: `(head, relation, tail)` as dense indices.
///
/// # Examples
///
/// ```
/// let t = kg::Triple::new(0, 2, 5);
/// assert_eq!(t.head, 0);
/// assert_eq!(t.rel, 2);
/// assert_eq!(t.tail, 5);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Triple {
    /// Head (subject) entity index.
    pub head: u32,
    /// Relation (predicate) index.
    pub rel: u32,
    /// Tail (object) entity index.
    pub tail: u32,
}

impl Triple {
    /// Creates a triple.
    pub const fn new(head: u32, rel: u32, tail: u32) -> Self {
        Self { head, rel, tail }
    }
}

/// A columnar collection of triples (structure-of-arrays).
///
/// Columnar storage is what the incidence builders and batch iterators
/// consume directly, avoiding a transpose per mini-batch.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TripleStore {
    heads: Vec<u32>,
    rels: Vec<u32>,
    tails: Vec<u32>,
}

impl TripleStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty store with reserved capacity.
    pub fn with_capacity(n: usize) -> Self {
        Self {
            heads: Vec::with_capacity(n),
            rels: Vec::with_capacity(n),
            tails: Vec::with_capacity(n),
        }
    }

    /// Appends one triple.
    pub fn push(&mut self, t: Triple) {
        self.heads.push(t.head);
        self.rels.push(t.rel);
        self.tails.push(t.tail);
    }

    /// Number of stored triples.
    pub fn len(&self) -> usize {
        self.heads.len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.heads.is_empty()
    }

    /// Head column.
    pub fn heads(&self) -> &[u32] {
        &self.heads
    }

    /// Relation column.
    pub fn rels(&self) -> &[u32] {
        &self.rels
    }

    /// Tail column.
    pub fn tails(&self) -> &[u32] {
        &self.tails
    }

    /// The `i`-th triple.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len()`.
    pub fn get(&self, i: usize) -> Triple {
        Triple::new(self.heads[i], self.rels[i], self.tails[i])
    }

    /// Iterates all triples.
    pub fn iter(&self) -> impl Iterator<Item = Triple> + '_ {
        (0..self.len()).map(move |i| self.get(i))
    }

    /// Validates all indices against entity/relation counts.
    ///
    /// # Errors
    ///
    /// Returns [`Error::IndexOutOfBounds`] naming the first offending triple.
    pub fn validate(&self, num_entities: usize, num_relations: usize) -> Result<()> {
        for (i, t) in self.iter().enumerate() {
            if t.head as usize >= num_entities || t.tail as usize >= num_entities {
                return Err(Error::IndexOutOfBounds {
                    context: format!(
                        "triple {i} = ({}, {}, {}) exceeds entity count {num_entities}",
                        t.head, t.rel, t.tail
                    ),
                });
            }
            if t.rel as usize >= num_relations {
                return Err(Error::IndexOutOfBounds {
                    context: format!(
                        "triple {i} = ({}, {}, {}) exceeds relation count {num_relations}",
                        t.head, t.rel, t.tail
                    ),
                });
            }
        }
        Ok(())
    }

    /// Returns a sub-store for `range` (used by batch sharding).
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds.
    pub fn slice(&self, range: std::ops::Range<usize>) -> TripleStore {
        TripleStore {
            heads: self.heads[range.clone()].to_vec(),
            rels: self.rels[range.clone()].to_vec(),
            tails: self.tails[range].to_vec(),
        }
    }

    /// Splits into `(first, second)` at `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at > len()`.
    pub fn split_at(&self, at: usize) -> (TripleStore, TripleStore) {
        (self.slice(0..at), self.slice(at..self.len()))
    }

    /// Deterministically shuffles the store with the given seed.
    pub fn shuffled(&self, seed: u64) -> TripleStore {
        use rand::seq::SliceRandom;
        use rand::SeedableRng;
        let mut perm: Vec<usize> = (0..self.len()).collect();
        perm.shuffle(&mut rand::rngs::StdRng::seed_from_u64(seed));
        let mut out = TripleStore::with_capacity(self.len());
        for &i in &perm {
            out.push(self.get(i));
        }
        out
    }
}

impl FromIterator<Triple> for TripleStore {
    fn from_iter<I: IntoIterator<Item = Triple>>(iter: I) -> Self {
        let mut s = TripleStore::new();
        for t in iter {
            s.push(t);
        }
        s
    }
}

impl Extend<Triple> for TripleStore {
    fn extend<I: IntoIterator<Item = Triple>>(&mut self, iter: I) {
        for t in iter {
            self.push(t);
        }
    }
}

/// A hash set of known triples, used for filtered evaluation and for
/// rejecting false-negative samples.
#[derive(Debug, Clone, Default)]
pub struct TripleSet {
    set: HashSet<Triple>,
}

impl TripleSet {
    /// Creates an empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds a set from any number of stores (train + valid + test for the
    /// "filtered" protocol).
    pub fn from_stores<'a>(stores: impl IntoIterator<Item = &'a TripleStore>) -> Self {
        let mut set = HashSet::new();
        for s in stores {
            set.extend(s.iter());
        }
        Self { set }
    }

    /// Inserts a triple; returns whether it was new.
    pub fn insert(&mut self, t: Triple) -> bool {
        self.set.insert(t)
    }

    /// Membership test.
    pub fn contains(&self, t: &Triple) -> bool {
        self.set.contains(t)
    }

    /// Iterates the distinct triples (arbitrary order).
    pub fn iter(&self) -> impl Iterator<Item = Triple> + '_ {
        self.set.iter().copied()
    }

    /// Number of distinct triples.
    pub fn len(&self) -> usize {
        self.set.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.set.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_store() -> TripleStore {
        [
            Triple::new(0, 0, 1),
            Triple::new(1, 1, 2),
            Triple::new(2, 0, 0),
        ]
        .into_iter()
        .collect()
    }

    #[test]
    fn columnar_round_trip() {
        let s = sample_store();
        assert_eq!(s.len(), 3);
        assert_eq!(s.heads(), &[0, 1, 2]);
        assert_eq!(s.rels(), &[0, 1, 0]);
        assert_eq!(s.tails(), &[1, 2, 0]);
        assert_eq!(s.get(1), Triple::new(1, 1, 2));
        let collected: Vec<Triple> = s.iter().collect();
        assert_eq!(collected.len(), 3);
    }

    #[test]
    fn validation_catches_bad_indices() {
        let s = sample_store();
        assert!(s.validate(3, 2).is_ok());
        assert!(matches!(
            s.validate(2, 2),
            Err(Error::IndexOutOfBounds { .. })
        ));
        assert!(matches!(
            s.validate(3, 1),
            Err(Error::IndexOutOfBounds { .. })
        ));
    }

    #[test]
    fn slicing_and_splitting() {
        let s = sample_store();
        let (a, b) = s.split_at(1);
        assert_eq!(a.len(), 1);
        assert_eq!(b.len(), 2);
        assert_eq!(b.get(0), Triple::new(1, 1, 2));
        let mid = s.slice(1..2);
        assert_eq!(mid.get(0), Triple::new(1, 1, 2));
    }

    #[test]
    fn shuffle_is_deterministic_permutation() {
        let s = sample_store();
        let a = s.shuffled(42);
        let b = s.shuffled(42);
        assert_eq!(a, b);
        let mut orig: Vec<Triple> = s.iter().collect();
        let mut shuf: Vec<Triple> = a.iter().collect();
        orig.sort();
        shuf.sort();
        assert_eq!(orig, shuf);
    }

    #[test]
    fn triple_set_membership() {
        let s = sample_store();
        let set = TripleSet::from_stores([&s]);
        assert_eq!(set.len(), 3);
        assert!(set.contains(&Triple::new(0, 0, 1)));
        assert!(!set.contains(&Triple::new(0, 0, 2)));
        let mut set = set;
        assert!(set.insert(Triple::new(9, 9, 9)));
        assert!(!set.insert(Triple::new(9, 9, 9)));
    }
}
