//! Evaluation scoring helpers and the complex-embedding scorers
//! (ComplEx / RotatE, paper Appendix D).

use kg::eval::TripleScorer;
use sparse::semiring::{semiring_spmm, ComplexTriple, RotateTriple};
use sparse::incidence::{hrt, TailSign};
use sparse::Complex32;

use crate::model::Norm;

/// Distances from `query` to each of the first `n` rows of a row-major
/// `buffer` with row width `d`, under `norm`. Parallelized over rows.
pub(crate) fn distances_to_rows(
    buffer: &[f32],
    n: usize,
    d: usize,
    query: &[f32],
    norm: Norm,
) -> Vec<f32> {
    debug_assert!(buffer.len() >= n * d);
    debug_assert_eq!(query.len(), d);
    let mut out = vec![0f32; n];
    xparallel::parallel_for_mut(&mut out, 256, |offset, chunk| {
        for (k, dst) in chunk.iter_mut().enumerate() {
            let i = offset + k;
            *dst = norm.distance(query, &buffer[i * d..(i + 1) * d]);
        }
    });
    out
}

/// Link-prediction scorer over **complex** embeddings with the ComplEx score
/// `Re(⟨h, r, t̄⟩)` (similarity — negated into a distance).
///
/// Embeddings are interleaved `(re, im)` pairs: `2 * half_dim` floats per
/// row, entities stacked above relations as in the `hrt` formulation. The
/// per-triple kernel is the Appendix D semiring SpMM.
///
/// # Examples
///
/// ```
/// use sptransx::ComplExScorer;
/// use kg::eval::TripleScorer;
///
/// // 2 entities + 1 relation, complex dim 1 (2 floats per row).
/// let emb = vec![1.0, 0.0,  0.0, 1.0,  1.0, 0.0];
/// let scorer = ComplExScorer::new(emb, 2, 1, 1)?;
/// let scores = scorer.score_tails(0, 0);
/// assert_eq!(scores.len(), 2);
/// # Ok::<(), sptransx::Error>(())
/// ```
#[derive(Debug, Clone)]
pub struct ComplExScorer {
    emb: Vec<Complex32>,
    num_entities: usize,
    num_relations: usize,
    half_dim: usize,
}

impl ComplExScorer {
    /// Wraps interleaved complex embeddings of shape
    /// `(num_entities + num_relations) × (2 * half_dim)`.
    ///
    /// # Errors
    ///
    /// Returns [`crate::Error::Config`] if the buffer length disagrees with
    /// the declared shape.
    pub fn new(
        interleaved: Vec<f32>,
        num_entities: usize,
        num_relations: usize,
        half_dim: usize,
    ) -> crate::Result<Self> {
        let expected = (num_entities + num_relations) * half_dim * 2;
        if interleaved.len() != expected {
            return Err(crate::Error::config(format!(
                "embedding buffer has {} floats, expected {expected}",
                interleaved.len()
            )));
        }
        Ok(Self {
            emb: Complex32::slice_from_interleaved(&interleaved),
            num_entities,
            num_relations,
            half_dim,
        })
    }

    /// ComplEx similarity of one triple via the semiring SpMM kernel.
    pub fn similarity(&self, head: u32, rel: u32, tail: u32) -> f32 {
        let a = hrt(
            self.num_entities,
            self.num_relations,
            &[head],
            &[rel],
            &[tail],
            TailSign::Negative, // −1 marks the conjugated operand
        )
        .expect("validated indices");
        let c = semiring_spmm::<ComplexTriple>(
            &a,
            &self.emb,
            self.num_entities + self.num_relations,
            self.half_dim,
        );
        c.iter().map(|z| z.re).sum()
    }
}

impl TripleScorer for ComplExScorer {
    fn score_tails(&self, head: u32, rel: u32) -> Vec<f32> {
        (0..self.num_entities as u32)
            .map(|t| -self.similarity(head, rel, t))
            .collect()
    }

    fn score_heads(&self, rel: u32, tail: u32) -> Vec<f32> {
        (0..self.num_entities as u32)
            .map(|h| -self.similarity(h, rel, tail))
            .collect()
    }

    fn num_entities(&self) -> usize {
        self.num_entities
    }
}

/// Link-prediction scorer with the RotatE score `‖h ∘ r − t‖` over complex
/// embeddings (distance — lower is better), computed with the Appendix D
/// rotate semiring.
#[derive(Debug, Clone)]
pub struct RotatEScorer {
    emb: Vec<Complex32>,
    num_entities: usize,
    num_relations: usize,
    half_dim: usize,
}

impl RotatEScorer {
    /// Wraps interleaved complex embeddings (same layout as
    /// [`ComplExScorer::new`]).
    ///
    /// # Errors
    ///
    /// Returns [`crate::Error::Config`] on a shape mismatch.
    pub fn new(
        interleaved: Vec<f32>,
        num_entities: usize,
        num_relations: usize,
        half_dim: usize,
    ) -> crate::Result<Self> {
        let expected = (num_entities + num_relations) * half_dim * 2;
        if interleaved.len() != expected {
            return Err(crate::Error::config(format!(
                "embedding buffer has {} floats, expected {expected}",
                interleaved.len()
            )));
        }
        Ok(Self {
            emb: Complex32::slice_from_interleaved(&interleaved),
            num_entities,
            num_relations,
            half_dim,
        })
    }

    /// RotatE distance of one triple via the semiring SpMM kernel.
    pub fn distance(&self, head: u32, rel: u32, tail: u32) -> f32 {
        let a = hrt(
            self.num_entities,
            self.num_relations,
            &[head],
            &[rel],
            &[tail],
            TailSign::Negative,
        )
        .expect("validated indices");
        let c = semiring_spmm::<RotateTriple>(
            &a,
            &self.emb,
            self.num_entities + self.num_relations,
            self.half_dim,
        );
        c.iter().map(|z| z.abs()).sum()
    }
}

impl TripleScorer for RotatEScorer {
    fn score_tails(&self, head: u32, rel: u32) -> Vec<f32> {
        (0..self.num_entities as u32)
            .map(|t| self.distance(head, rel, t))
            .collect()
    }

    fn score_heads(&self, rel: u32, tail: u32) -> Vec<f32> {
        (0..self.num_entities as u32)
            .map(|h| self.distance(h, rel, tail))
            .collect()
    }

    fn num_entities(&self) -> usize {
        self.num_entities
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distances_to_rows_matches_norm() {
        let buffer = vec![0.0, 0.0, 3.0, 4.0, 1.0, 1.0];
        let q = vec![0.0, 0.0];
        let d = distances_to_rows(&buffer, 3, 2, &q, Norm::L2);
        assert!((d[0] - 0.0).abs() < 1e-6);
        assert!((d[1] - 5.0).abs() < 1e-6);
        let d = distances_to_rows(&buffer, 3, 2, &q, Norm::L1);
        assert!((d[2] - 2.0).abs() < 1e-6);
    }

    #[test]
    fn complex_scorer_validates_shape() {
        assert!(ComplExScorer::new(vec![0.0; 5], 2, 1, 1).is_err());
        assert!(ComplExScorer::new(vec![0.0; 6], 2, 1, 1).is_ok());
    }

    #[test]
    fn complex_similarity_matches_manual() {
        // h = 1+i, r = i, t = 2 - i: Re(h*r*conj(t)).
        let emb = vec![
            1.0, 1.0, // e0 = h
            2.0, -1.0, // e1 = t
            0.0, 1.0, // r0
        ];
        let s = ComplExScorer::new(emb, 2, 1, 1).unwrap();
        let h = Complex32::new(1.0, 1.0);
        let r = Complex32::new(0.0, 1.0);
        let t = Complex32::new(2.0, -1.0);
        let want = (h * r * t.conj()).re;
        assert!((s.similarity(0, 0, 1) - want).abs() < 1e-5);
    }

    #[test]
    fn rotate_exact_rotation_scores_zero() {
        // t = h rotated by r (unit phase) => distance 0.
        let h = Complex32::from_phase(0.7);
        let r = Complex32::from_phase(1.1);
        let t = h * r;
        let emb = vec![h.re, h.im, t.re, t.im, r.re, r.im];
        let s = RotatEScorer::new(emb, 2, 1, 1).unwrap();
        assert!(s.distance(0, 0, 1) < 1e-5);
        // And the true tail ranks first.
        let tails = s.score_tails(0, 0);
        assert!(tails[1] < tails[0]);
    }
}
