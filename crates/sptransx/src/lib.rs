//! SparseTransX: translation-based knowledge-graph embedding models trained
//! with sparse matrix operations.
//!
//! This crate is the paper's primary contribution, rebuilt in Rust. Each
//! translational model exists in two functionally identical variants:
//!
//! | Model | Sparse (SpTransX) | Dense baseline (TorchKGE-style) |
//! |-------|-------------------|--------------------------------|
//! | TransE (`‖h + r − t‖`) | [`SpTransE`] — one `hrt` SpMM | [`DenseTransE`] — 3 gathers + add/sub |
//! | TorusE (torus `‖h + r − t‖`) | [`SpTorusE`] | [`DenseTorusE`] |
//! | TransR (`‖Mᵣ(h − t) + r‖`) | [`SpTransR`] — one `ht` SpMM + 1 projection | [`DenseTransR`] — 2 gathers + 2 projections |
//! | TransH (hyperplane) | [`SpTransH`] — one `ht` SpMM, shared sub-expressions | [`DenseTransH`] — 2 gathers + 2 projections |
//! | DistMult (Appendix D) | [`SpDistMult`] — `(×,×)` semiring SpMM | — |
//!
//! The sparse variants build each mini-batch's incidence matrix **once**
//! (negatives are pre-generated, §5.3) and reuse it — with its cached
//! transpose for the backward SpMM — every epoch.
//!
//! [`Trainer`] drives any model over a [`kg::BatchPlan`] with margin-ranking
//! loss and reports the forward/backward/step time breakdown, peak memory,
//! and FLOP counts the paper tabulates. [`distributed`] adds the Appendix F
//! data-parallel analog.
//!
//! **Place in the workspace:** the top of the model stack — it combines
//! `kg` (data), `sparse` (incidence matrices), and `tensor` (autograd);
//! the bench harness and the `sptransx-repro` facade sit above it.
//!
//! # Examples
//!
//! ```
//! use sptransx::{SpTransE, TrainConfig, Trainer};
//! use kg::synthetic::SyntheticKgBuilder;
//!
//! # fn main() -> Result<(), sptransx::Error> {
//! let ds = SyntheticKgBuilder::new(100, 6).triples(600).seed(3).build();
//! let config = TrainConfig { epochs: 3, batch_size: 128, dim: 16, lr: 0.05, ..Default::default() };
//! let model = SpTransE::from_config(&ds, &config)?;
//! let mut trainer = Trainer::new(model, &ds, &config)?;
//! let report = trainer.run()?;
//! assert!(report.epoch_losses.last() < report.epoch_losses.first());
//! # Ok(())
//! # }
//! ```

#![deny(missing_docs)]

pub mod distributed;
mod model;
mod models;
mod paging;
mod scorer;
pub mod serve;
pub mod tasks;
mod train;

pub use model::{KgeModel, Norm, OptimizerKind, SamplerKind, TrainConfig};
pub use models::dense::{DenseTorusE, DenseTransE, DenseTransH, DenseTransR};
pub use models::extensions::{SpTransC, SpTransM};
pub use models::spcomplex::SpComplEx;
pub use models::spdistmult::SpDistMult;
pub use models::sprotate::SpRotatE;
pub use models::sptorus::SpTorusE;
pub use models::sptranse::SpTransE;
pub use models::sptransh::SpTransH;
pub use models::sptransr::SpTransR;
pub use paging::{FileRowStorage, Prefetcher, ReadOnlyRowStorage};
pub use scorer::{ComplExScorer, RotatEScorer};
pub use train::{Breakdown, TrainReport, Trainer};

/// Convenience alias for fallible operations in this crate.
pub type Result<T> = std::result::Result<T, Error>;

/// Errors surfaced by model construction and training.
#[derive(Debug)]
#[non_exhaustive]
pub enum Error {
    /// An invalid configuration value.
    Config {
        /// What was wrong.
        context: String,
    },
    /// Propagated sparse-matrix error.
    Sparse(sparse::Error),
    /// Propagated dataset error.
    Kg(kg::Error),
    /// Serving-layer failure (index I/O, corrupt files, shape mismatches).
    Serve {
        /// What went wrong.
        context: String,
    },
    /// Propagated paged-storage error (cache budget exceeded, backing-store
    /// I/O, invalid paging configuration).
    Storage(tensor::Error),
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Error::Config { context } => write!(f, "invalid configuration: {context}"),
            Error::Sparse(e) => write!(f, "sparse matrix error: {e}"),
            Error::Kg(e) => write!(f, "dataset error: {e}"),
            Error::Serve { context } => write!(f, "serving error: {context}"),
            Error::Storage(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Sparse(e) => Some(e),
            Error::Kg(e) => Some(e),
            Error::Storage(e) => Some(e),
            _ => None,
        }
    }
}

impl From<sparse::Error> for Error {
    fn from(e: sparse::Error) -> Self {
        Error::Sparse(e)
    }
}

impl From<kg::Error> for Error {
    fn from(e: kg::Error) -> Self {
        Error::Kg(e)
    }
}

impl From<tensor::Error> for Error {
    fn from(e: tensor::Error) -> Self {
        Error::Storage(e)
    }
}

impl Error {
    pub(crate) fn config(context: impl Into<String>) -> Self {
        Error::Config {
            context: context.into(),
        }
    }

    /// A serving-layer error with the given context (public so callers
    /// layering CLI/deployment checks on top of [`serve`] can produce
    /// uniform errors).
    pub fn serve(context: impl Into<String>) -> Self {
        Error::Serve {
            context: context.into(),
        }
    }
}
