//! Minimal offline shim for the subset of the `parking_lot` API this
//! workspace uses, implemented over `std::sync`.
//!
//! The container building this repository has no access to crates.io, so the
//! workspace vendors tiny API-compatible stand-ins for its external
//! dependencies (see `vendor/README.md`). This one provides [`Mutex`] (whose
//! `lock` returns a guard directly instead of a `Result`) and [`Condvar`]
//! (whose `wait` takes `&mut MutexGuard`). Lock poisoning is ignored, which
//! matches `parking_lot` semantics.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::PoisonError;

/// A mutual exclusion primitive with `parking_lot`'s panic-tolerant API.
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// RAII guard returned by [`Mutex::lock`].
///
/// Internally holds an `Option` so [`Condvar::wait`] can move the underlying
/// std guard out and back in place.
pub struct MutexGuard<'a, T: ?Sized> {
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex guarding `value`.
    pub const fn new(value: T) -> Self {
        Self {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the guarded value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: Some(self.inner.lock().unwrap_or_else(PoisonError::into_inner)),
        }
    }

    /// Returns a mutable reference to the guarded value without locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard invariant")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard invariant")
    }
}

/// A condition variable compatible with [`MutexGuard`].
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    /// Creates a new condition variable.
    pub const fn new() -> Self {
        Self {
            inner: std::sync::Condvar::new(),
        }
    }

    /// Blocks until notified, releasing the guard's lock while waiting.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let std_guard = guard.inner.take().expect("guard invariant");
        let std_guard = self
            .inner
            .wait(std_guard)
            .unwrap_or_else(PoisonError::into_inner);
        guard.inner = Some(std_guard);
    }

    /// Wakes one waiting thread.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wakes all waiting threads.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

impl Default for Condvar {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_guards_data() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn condvar_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = Arc::clone(&pair);
        let h = std::thread::spawn(move || {
            let (lock, cvar) = &*pair2;
            *lock.lock() = true;
            cvar.notify_all();
        });
        let (lock, cvar) = &*pair;
        let mut ready = lock.lock();
        while !*ready {
            cvar.wait(&mut ready);
        }
        h.join().unwrap();
    }
}
