//! The steady-state allocation contract, asserted per batch.
//!
//! The recycling arena promises: after the first mini-batch has populated
//! the pool, the training step performs **zero** tensor-buffer heap
//! allocations — `tensor::memory::alloc_count()` is flat from batch 2
//! onward of a multi-epoch run — while every loss and embedding bit stays
//! identical to a fresh-`Graph`-per-batch run.
//!
//! Everything lives in ONE `#[test]` on purpose: `alloc_count()` is a
//! process-global counter, and a sibling test allocating tensors on another
//! thread would make a "delta is zero" assertion racy. This file is its own
//! integration binary, so a single test means no concurrent allocations.
//! CI runs it under `SPTX_NUM_THREADS ∈ {1,4}` in the determinism job; the
//! pinned-width handles below additionally exercise both schedules
//! in-process.

use kg::synthetic::SyntheticKgBuilder;
use kg::{BatchPlan, Dataset, UniformSampler};
use sptransx::{
    KgeModel, SpDistMult, SpRotatE, SpTransE, SpTransH, SpTransM, SpTransR, TrainConfig, Trainer,
};
use tensor::memory;
use tensor::optim::{Optimizer, Sgd};
use tensor::Graph;
use xparallel::PoolHandle;

fn dataset() -> Dataset {
    SyntheticKgBuilder::new(60, 5).triples(500).seed(90).build()
}

fn config() -> TrainConfig {
    TrainConfig {
        epochs: 3,
        batch_size: 64,
        dim: 12,
        rel_dim: 6,
        lr: 0.05,
        ..Default::default()
    }
}

/// Everything one training run observes: per-batch tensor-allocation deltas
/// plus the bit patterns of the losses and final parameters (and, for
/// paged runs, the total evictions so the trace provably exercised paging).
struct RunTrace {
    batch_allocs: Vec<u64>,
    loss_bits: Vec<u32>,
    param_bits: Vec<Vec<u32>>,
    evictions: u64,
}

fn param_bits<M: KgeModel>(model: &M) -> Vec<Vec<u32>> {
    model
        .store()
        .param_ids()
        .into_iter()
        .map(|id| {
            model
                .store()
                .value(id)
                .as_slice()
                .iter()
                .map(|x| x.to_bits())
                .collect()
        })
        .collect()
}

/// Replays the `Trainer` step loop by hand so each batch's allocation count
/// can be sampled. `fresh_graph_per_batch = true` reproduces the pre-arena
/// schedule (a new tape every batch); `false` is the recycling steady state.
fn run_traced<M: KgeModel>(
    mut model: M,
    plan: &BatchPlan,
    cfg: &TrainConfig,
    pool: PoolHandle,
    fresh_graph_per_batch: bool,
) -> RunTrace {
    model.attach_plan(plan).expect("attach plan");
    let mut graph = Graph::with_pool(pool.clone());
    let mut opt = Sgd::new(cfg.lr).with_pool(pool.clone());
    let mut batch_allocs = Vec::new();
    let mut loss_bits = Vec::new();
    for _epoch in 0..cfg.epochs {
        for b in 0..plan.num_batches() {
            let before = memory::alloc_count();
            model.store_mut().zero_grads();
            model.page_in_batch(b).expect("page in batch working set");
            if fresh_graph_per_batch {
                graph = Graph::with_pool(pool.clone());
            } else {
                graph.reset();
            }
            let (pos, neg) = model.score_batch(&mut graph, b);
            let loss = graph.margin_ranking_loss(pos, neg, cfg.margin);
            loss_bits.push(graph.value(loss).get(0, 0).to_bits());
            graph.backward(loss, model.store_mut());
            opt.step(model.store_mut());
            batch_allocs.push(memory::alloc_count() - before);
        }
        model.end_epoch();
    }
    // Paged parameters must come back resident before `param_bits` reads
    // the full table (counting their evictions on the way out).
    let mut evictions = 0;
    let store = model.store_mut();
    for id in store.param_ids() {
        if store.is_paged(id) {
            evictions += store
                .pager(id)
                .expect("paged param has a pager")
                .stats()
                .evictions;
            store.unpage(id).expect("unpage after traced run");
        }
    }
    RunTrace {
        batch_allocs,
        loss_bits,
        param_bits: param_bits(&model),
        evictions,
    }
}

/// Asserts the per-batch allocation profile: batch 1 may (must) allocate,
/// every later batch must not — except the *first* occurrence of a ragged
/// final batch, whose smaller shapes enter the pool once.
fn assert_flat_from_batch_2(trace: &RunTrace, num_batches: usize, uniform: bool, ctx: &str) {
    assert!(
        trace.batch_allocs[0] > 0,
        "{ctx}: the first batch should populate the arena"
    );
    for (i, &allocs) in trace.batch_allocs.iter().enumerate().skip(1) {
        let (epoch, batch) = (i / num_batches, i % num_batches);
        let first_ragged_batch = !uniform && epoch == 0 && batch == num_batches - 1;
        if !first_ragged_batch {
            assert_eq!(
                allocs, 0,
                "{ctx}: batch {batch} of epoch {epoch} performed {allocs} \
                 tensor-buffer heap allocations (steady state must be flat)"
            );
        }
    }
}

#[test]
fn steady_state_training_step_is_allocation_free_and_bit_identical() {
    let ds = dataset();
    let cfg = config();
    let known = ds.all_known();
    let sampler = UniformSampler::new(ds.num_entities.max(2));
    let plan = BatchPlan::build(&ds.train, &known, &sampler, cfg.batch_size, cfg.seed);
    let num_batches = plan.num_batches();
    assert!(num_batches >= 3, "need several batches per epoch");
    let uniform = (0..num_batches).all(|i| plan.batch(i).len() == plan.batch(0).len());

    // Pre-arena reference: a fresh Graph per batch, exactly the old step.
    let reference = run_traced(
        SpTransE::from_config(&ds, &cfg).unwrap(),
        &plan,
        &cfg,
        PoolHandle::global().with_width(4),
        true,
    );

    // Sequential and pinned-width-4 schedules (CI re-runs the whole binary
    // under SPTX_NUM_THREADS=1 and =4 on top of this).
    for (name, pool) in [
        ("seq", PoolHandle::sequential()),
        ("w4", PoolHandle::global().with_width(4)),
    ] {
        macro_rules! check_model {
            ($model:ty) => {{
                let trace = run_traced(
                    <$model>::from_config(&ds, &cfg).unwrap(),
                    &plan,
                    &cfg,
                    pool.clone(),
                    false,
                );
                let ctx = format!("{} [{name}]", stringify!($model));
                assert_flat_from_batch_2(&trace, num_batches, uniform, &ctx);
                trace
            }};
        }
        let transe = check_model!(SpTransE);
        check_model!(SpTransH);
        check_model!(SpTransR);
        check_model!(SpDistMult);
        check_model!(SpRotatE);
        check_model!(SpTransM);

        // Recycling swaps buffer identity, never arithmetic: the arena run
        // matches the fresh-graph-per-batch reference bit for bit.
        assert_eq!(
            transe.loss_bits, reference.loss_bits,
            "[{name}] arena step changed a loss bit vs fresh-graph step"
        );
        assert_eq!(
            transe.param_bits, reference.param_bits,
            "[{name}] arena step changed an embedding bit vs fresh-graph step"
        );
    }

    // Paged arm: demand paging must not reintroduce steady-state
    // allocations. The table is paged out to in-RAM backing storage at a
    // full-table budget first (this dataset's batches touch nearly every
    // row, so any smaller budget could not pin a working set) — reads,
    // write-backs and the slot translation all run, batch 2 onward stays
    // flat, and the bits still match the resident reference.
    {
        let mut model = SpTransE::from_config(&ds, &cfg).unwrap();
        let emb = model.embedding_param();
        let (rows, cols) = model.store().param_shape(emb);
        model
            .store_mut()
            .page_out(emb, Box::new(tensor::VecStorage::new(rows, cols)), rows)
            .unwrap();
        let trace = run_traced(
            model,
            &plan,
            &cfg,
            PoolHandle::global().with_width(4),
            false,
        );
        assert_flat_from_batch_2(&trace, num_batches, uniform, "SpTransE [paged]");
        assert_eq!(
            trace.loss_bits, reference.loss_bits,
            "[paged] demand paging changed a loss bit"
        );
        assert_eq!(
            trace.param_bits, reference.param_bits,
            "[paged] demand paging changed an embedding bit"
        );
    }

    // And under genuine eviction pressure: a smaller-batch plan whose
    // working sets fit a half-table budget. Compared against its own
    // resident run (different plan ⇒ different losses than `reference`).
    {
        let small_plan = BatchPlan::build(&ds.train, &known, &sampler, 12, cfg.seed);
        let small_batches = small_plan.num_batches();
        let small_uniform =
            (0..small_batches).all(|i| small_plan.batch(i).len() == small_plan.batch(0).len());
        let resident = run_traced(
            SpTransE::from_config(&ds, &cfg).unwrap(),
            &small_plan,
            &cfg,
            PoolHandle::sequential(),
            false,
        );
        let mut model = SpTransE::from_config(&ds, &cfg).unwrap();
        let emb = model.embedding_param();
        let (rows, cols) = model.store().param_shape(emb);
        model
            .store_mut()
            .page_out(
                emb,
                Box::new(tensor::VecStorage::new(rows, cols)),
                rows / 2 + 8,
            )
            .unwrap();
        let trace = run_traced(model, &small_plan, &cfg, PoolHandle::sequential(), false);
        assert!(
            trace.evictions > 0,
            "half-table budget over 3 epochs must evict"
        );
        assert_flat_from_batch_2(
            &trace,
            small_batches,
            small_uniform,
            "SpTransE [paged/evict]",
        );
        assert_eq!(
            trace.loss_bits, resident.loss_bits,
            "[paged/evict] eviction + write-back changed a loss bit"
        );
        assert_eq!(
            trace.param_bits, resident.param_bits,
            "[paged/evict] eviction + write-back changed an embedding bit"
        );

        // With background prefetch on top: the staging hand-off recycles its
        // row/byte buffers between the training thread and the I/O worker,
        // so the steady-state batch stays flat (the prefetcher's own
        // buffers are not tensor allocations, and admission copies staged
        // bytes straight into existing cache slots). Bits still match.
        let mut model = SpTransE::from_config(&ds, &cfg).unwrap();
        let emb = model.embedding_param();
        model
            .store_mut()
            .page_out(
                emb,
                Box::new(tensor::VecStorage::new(rows, cols)),
                rows / 2 + 8,
            )
            .unwrap();
        model.set_prefetch(true).unwrap();
        let trace = run_traced(model, &small_plan, &cfg, PoolHandle::sequential(), false);
        assert!(trace.evictions > 0, "prefetch arm must still evict");
        assert_flat_from_batch_2(
            &trace,
            small_batches,
            small_uniform,
            "SpTransE [paged/prefetch]",
        );
        assert_eq!(
            trace.loss_bits, resident.loss_bits,
            "[paged/prefetch] background prefetch changed a loss bit"
        );
        assert_eq!(
            trace.param_bits, resident.param_bits,
            "[paged/prefetch] background prefetch changed an embedding bit"
        );
    }

    // The same contract holds through the public Trainer API: after a
    // warm-up epoch, further epochs are allocation-free end to end.
    let mut trainer = Trainer::new(SpTransE::from_config(&ds, &cfg).unwrap(), &ds, &cfg).unwrap();
    trainer.run_epochs(1).expect("warm-up epoch");
    let before = memory::alloc_count();
    trainer.run_epochs(2).expect("steady-state epochs");
    assert_eq!(
        memory::alloc_count(),
        before,
        "Trainer epochs after the first must not heap-allocate tensor buffers"
    );
    assert!(
        trainer.graph().arena().hits() > 0,
        "the trainer's arena should be serving buffers"
    );
}
