//! Criterion micro-benchmarks of the core SpMM kernels: the incidence-row
//! fast path vs the general CSR path vs COO, across batch sizes and
//! embedding widths. This is the kernel-level ablation backing Figure 7.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sparse::incidence::{hrt, TailSign};
use sparse::spmm::{coo_spmm, csr_spmm};
use sparse::{CooMatrix, CsrMatrix, DenseMatrix};

fn incidence(n_ent: usize, n_rel: usize, m: usize, seed: u64) -> CsrMatrix {
    let mut rng = StdRng::seed_from_u64(seed);
    let heads: Vec<u32> = (0..m).map(|_| rng.gen_range(0..n_ent as u32)).collect();
    let tails: Vec<u32> = (0..m)
        .map(|i| {
            let mut t = rng.gen_range(0..n_ent as u32);
            if t == heads[i] {
                t = (t + 1) % n_ent as u32;
            }
            t
        })
        .collect();
    let rels: Vec<u32> = (0..m).map(|_| rng.gen_range(0..n_rel as u32)).collect();
    hrt(n_ent, n_rel, &heads, &rels, &tails, TailSign::Negative).unwrap()
}

fn dense(rows: usize, cols: usize, seed: u64) -> DenseMatrix {
    let mut rng = StdRng::seed_from_u64(seed);
    DenseMatrix::from_vec(
        rows,
        cols,
        (0..rows * cols).map(|_| rng.gen_range(-1.0..1.0)).collect(),
    )
}

fn bench_incidence_spmm(c: &mut Criterion) {
    let mut group = c.benchmark_group("incidence_spmm");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(3));
    group.warm_up_time(std::time::Duration::from_secs(1));
    let n_ent = 10_000;
    let n_rel = 100;
    for &m in &[1024usize, 8192] {
        for &d in &[64usize, 256] {
            let a = incidence(n_ent, n_rel, m, 1);
            let b = dense(n_ent + n_rel, d, 2);
            group.throughput(Throughput::Elements((m * d) as u64));
            group.bench_with_input(
                BenchmarkId::new("csr_fastpath", format!("m{m}_d{d}")),
                &(a, b),
                |bench, (a, b)| bench.iter(|| csr_spmm(a, b)),
            );
        }
    }
    group.finish();
}

fn bench_general_vs_coo(c: &mut Criterion) {
    let mut group = c.benchmark_group("csr_vs_coo");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(3));
    group.warm_up_time(std::time::Duration::from_secs(1));
    let rows = 2048;
    let cols = 4096;
    let d = 128;
    let mut rng = StdRng::seed_from_u64(3);
    // General sparse matrix with ~8 nnz per row (beyond the fast path).
    let mut coo = CooMatrix::new(rows, cols);
    for r in 0..rows {
        for _ in 0..8 {
            coo.push(r, rng.gen_range(0..cols), rng.gen_range(-1.0..1.0))
                .unwrap();
        }
    }
    let csr = coo.to_csr();
    let b = dense(cols, d, 4);
    group.bench_function("csr_general", |bench| bench.iter(|| csr_spmm(&csr, &b)));
    group.bench_function("coo_scatter", |bench| bench.iter(|| coo_spmm(&coo, &b)));
    group.finish();
}

fn bench_transpose_build(c: &mut Criterion) {
    // Building Aᵀ is a once-per-batch cost amortized over all epochs.
    let a = incidence(50_000, 500, 32_768, 5);
    c.bench_function("incidence_transpose", |bench| bench.iter(|| a.transpose()));
}

criterion_group!(
    benches,
    bench_incidence_spmm,
    bench_general_vs_coo,
    bench_transpose_build
);
criterion_main!(benches);
