//! Minimal offline shim for the subset of the `criterion` API this
//! workspace's benches use.
//!
//! The container building this repository has no access to crates.io, so the
//! workspace vendors tiny API-compatible stand-ins for its external
//! dependencies (see `vendor/README.md`). This shim really runs and times the
//! benchmark bodies, but it is a measurement tool only — no statistics, no
//! HTML reports, and measurement/warm-up times are capped well below
//! criterion's defaults so `cargo bench` finishes quickly. Results print one
//! line per benchmark: `group/id  mean-per-iter  (iters)` plus throughput
//! when configured.

use std::fmt::Write as _;
use std::time::{Duration, Instant};

/// Opaque value barrier; re-exported from `std::hint`.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Upper bound applied to configured warm-up times.
const WARM_UP_CAP: Duration = Duration::from_millis(100);
/// Upper bound applied to configured measurement times.
const MEASUREMENT_CAP: Duration = Duration::from_millis(400);

/// Top-level benchmark driver (stub: only carries configuration defaults).
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
            measurement_time: MEASUREMENT_CAP,
            warm_up_time: WARM_UP_CAP,
            throughput: None,
        }
    }

    /// Runs one stand-alone benchmark (an unnamed group of one).
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.benchmark_group(String::new()).bench_function(id, f);
        self
    }
}

/// Identifier for one benchmark within a group: `function_name/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// Creates an id from a function name and a parameter value.
    pub fn new(function: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        Self {
            label: format!("{function}/{parameter}"),
        }
    }

    /// Creates an id from a parameter value alone.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        Self {
            label: parameter.to_string(),
        }
    }
}

/// Accepted by `bench_function`-style methods: a plain `&str` or a
/// [`BenchmarkId`].
pub trait IntoBenchmarkId {
    /// Converts into the printable label.
    fn into_label(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_label(self) -> String {
        self.label
    }
}

impl IntoBenchmarkId for &str {
    fn into_label(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_label(self) -> String {
        self
    }
}

/// Units for throughput reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Number of logical elements processed per iteration.
    Elements(u64),
    /// Number of bytes processed per iteration.
    Bytes(u64),
}

/// A named collection of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    measurement_time: Duration,
    warm_up_time: Duration,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the shim sizes samples by time.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Sets the measurement budget (capped at 400 ms by the shim).
    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.measurement_time = t.min(MEASUREMENT_CAP);
        self
    }

    /// Sets the warm-up budget (capped at 100 ms by the shim).
    pub fn warm_up_time(&mut self, t: Duration) -> &mut Self {
        self.warm_up_time = t.min(WARM_UP_CAP);
        self
    }

    /// Declares per-iteration throughput for subsequent benchmarks.
    pub fn throughput(&mut self, tp: Throughput) -> &mut Self {
        self.throughput = Some(tp);
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = id.into_label();
        let mut b = Bencher {
            warm_up: self.warm_up_time,
            measurement: self.measurement_time,
            total: Duration::ZERO,
            iters: 0,
        };
        f(&mut b);
        self.report(&label, &b);
        self
    }

    /// Runs one benchmark with an explicit input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = id.into_label();
        let mut b = Bencher {
            warm_up: self.warm_up_time,
            measurement: self.measurement_time,
            total: Duration::ZERO,
            iters: 0,
        };
        f(&mut b, input);
        self.report(&label, &b);
        self
    }

    /// Ends the group (prints nothing extra in the shim).
    pub fn finish(&mut self) {}

    fn report(&self, label: &str, b: &Bencher) {
        let mut line = if self.name.is_empty() {
            label.to_string()
        } else {
            format!("{}/{}", self.name, label)
        };
        if b.iters == 0 {
            println!("{line}: no iterations recorded");
            return;
        }
        let per_iter = b.total.as_secs_f64() / b.iters as f64;
        let _ = write!(
            line,
            ": {} per iter ({} iters)",
            fmt_duration(per_iter),
            b.iters
        );
        if let Some(tp) = self.throughput {
            let (count, unit) = match tp {
                Throughput::Elements(n) => (n, "elem"),
                Throughput::Bytes(n) => (n, "B"),
            };
            let rate = count as f64 / per_iter;
            let _ = write!(line, ", {rate:.3e} {unit}/s");
        }
        println!("{line}");
    }
}

fn fmt_duration(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3} s")
    } else if secs >= 1e-3 {
        format!("{:.3} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.3} µs", secs * 1e6)
    } else {
        format!("{:.1} ns", secs * 1e9)
    }
}

/// Times repeated executions of a closure.
pub struct Bencher {
    warm_up: Duration,
    measurement: Duration,
    total: Duration,
    iters: u64,
}

impl Bencher {
    /// Runs `f` repeatedly: first until the warm-up budget elapses, then
    /// until the measurement budget elapses, recording only the latter.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let warm_end = Instant::now() + self.warm_up;
        while Instant::now() < warm_end {
            black_box(f());
        }
        let start = Instant::now();
        let measure_end = start + self.measurement;
        let mut iters = 0u64;
        loop {
            black_box(f());
            iters += 1;
            if Instant::now() >= measure_end {
                break;
            }
        }
        self.total = start.elapsed();
        self.iters = iters;
    }
}

/// Bundles benchmark functions into a callable group, mirroring criterion's
/// macro of the same name.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Generates `fn main` running the listed groups (benches use
/// `harness = false`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_iterations() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(5))
            .throughput(Throughput::Elements(10));
        group.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
        group.bench_with_input(BenchmarkId::new("sum", 4), &4u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        group.finish();
    }
}
