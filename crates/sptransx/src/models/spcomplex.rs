//! Sparse ComplEx (paper Appendix D, trainable).
//!
//! ComplEx scores triples with `Re(⟨h, r, t̄⟩)` over complex embeddings —
//! a similarity (higher is better). The fused tape op
//! [`tensor::Graph::complex_score`] computes it through the complex-conjugate
//! semiring of Appendix D; scores are negated on the tape for the
//! margin-ranking trainer.

use kg::eval::TripleScorer;
use kg::{BatchPlan, Dataset};
use sparse::incidence::TailSign;
use sparse::Complex32;
use tensor::{init, Graph, ParamId, ParamStore, Var};

use crate::model::{KgeModel, TrainConfig};
use crate::models::{build_hrt_caches, HrtCache};
use crate::Result;

/// The semiring-SpMM ComplEx model.
///
/// `config.dim` is the complex dimension (the parameter has `2 · dim`
/// interleaved columns).
///
/// # Examples
///
/// ```
/// use kg::synthetic::SyntheticKgBuilder;
/// use sptransx::{SpComplEx, TrainConfig};
///
/// let ds = SyntheticKgBuilder::new(40, 3).triples(200).seed(1).build();
/// let model = SpComplEx::from_config(&ds, &TrainConfig { dim: 8, ..Default::default() })?;
/// assert_eq!(sptransx::KgeModel::name(&model), "SpComplEx");
/// # Ok::<(), sptransx::Error>(())
/// ```
#[derive(Debug)]
pub struct SpComplEx {
    store: ParamStore,
    emb: ParamId,
    num_entities: usize,
    num_relations: usize,
    half_dim: usize,
    batches: Vec<HrtCache>,
}

impl SpComplEx {
    /// Initializes the model for a dataset.
    ///
    /// # Errors
    ///
    /// Returns [`crate::Error::Config`] for invalid hyperparameters.
    pub fn from_config(dataset: &Dataset, config: &TrainConfig) -> Result<Self> {
        config.validate()?;
        let (n, r) = (dataset.num_entities, dataset.num_relations);
        let half = config.dim;
        let mut store = ParamStore::new();
        let emb = store.add_param(
            "embeddings",
            init::xavier_normalized(n + r, half * 2, config.seed),
        );
        Ok(Self {
            store,
            emb,
            num_entities: n,
            num_relations: r,
            half_dim: half,
            batches: Vec::new(),
        })
    }

    /// The complex dimension (half the parameter width).
    pub fn half_dim(&self) -> usize {
        self.half_dim
    }

    /// Handle to the interleaved complex embedding parameter.
    pub fn embedding_param(&self) -> ParamId {
        self.emb
    }

    fn complex_row(&self, row: usize) -> Vec<Complex32> {
        Complex32::slice_from_interleaved(self.store.value(self.emb).row(row))
    }

    /// ComplEx similarity of one triple (evaluation path).
    pub fn similarity(&self, head: u32, rel: u32, tail: u32) -> f32 {
        let h = self.complex_row(head as usize);
        let r = self.complex_row(self.num_entities + rel as usize);
        let t = self.complex_row(tail as usize);
        h.iter()
            .zip(&r)
            .zip(&t)
            .map(|((&a, &b), &c)| (a * b * c.conj()).re)
            .sum()
    }
}

impl KgeModel for SpComplEx {
    fn name(&self) -> &'static str {
        "SpComplEx"
    }

    fn store(&self) -> &ParamStore {
        &self.store
    }

    fn store_mut(&mut self) -> &mut ParamStore {
        &mut self.store
    }

    fn attach_plan(&mut self, plan: &BatchPlan) -> Result<()> {
        self.batches = build_hrt_caches(
            plan,
            self.num_entities,
            self.num_relations,
            TailSign::Negative,
        )?;
        Ok(())
    }

    fn num_batches(&self) -> usize {
        self.batches.len()
    }

    fn score_batch(&self, g: &mut Graph, batch_idx: usize) -> (Var, Var) {
        let cache = &self.batches[batch_idx];
        let pos_sim = g.complex_score(&self.store, self.emb, cache.pos.clone());
        let neg_sim = g.complex_score(&self.store, self.emb, cache.neg.clone());
        // Similarity -> pseudo-distance.
        (g.scale(pos_sim, -1.0), g.scale(neg_sim, -1.0))
    }
}

impl TripleScorer for SpComplEx {
    fn score_tails(&self, head: u32, rel: u32) -> Vec<f32> {
        (0..self.num_entities as u32)
            .map(|t| -self.similarity(head, rel, t))
            .collect()
    }

    fn score_heads(&self, rel: u32, tail: u32) -> Vec<f32> {
        (0..self.num_entities as u32)
            .map(|h| -self.similarity(h, rel, tail))
            .collect()
    }

    fn num_entities(&self) -> usize {
        self.num_entities
    }
}

impl kg::eval::BatchScorer for SpComplEx {
    fn num_entities(&self) -> usize {
        self.num_entities
    }

    fn score_tails_into(&self, queries: &[(u32, u32)], out: &mut [f32]) {
        use crate::scorer::{for_each_score, stacked_query_rows_semiring, QueryDir};
        let (n, half) = (self.num_entities, self.half_dim);
        let emb = Complex32::slice_from_interleaved(self.store.value(self.emb).as_slice());
        // q = h ∘ r per query via the training ComplexTriple semiring kernel,
        // then score(t) = −Σⱼ Re(qⱼ · t̄ⱼ) — the same association order as the
        // scalar `similarity`.
        let q = stacked_query_rows_semiring::<sparse::semiring::ComplexTriple>(
            &emb,
            n,
            self.num_relations,
            half,
            queries,
            QueryDir::Tails,
        );
        for_each_score(n, 0, out, |qi, cand, _| {
            let qr = &q[qi * half..(qi + 1) * half];
            let t = &emb[cand * half..(cand + 1) * half];
            -qr.iter()
                .zip(t)
                .map(|(&a, &c)| (a * c.conj()).re)
                .sum::<f32>()
        });
    }

    fn score_heads_into(&self, queries: &[(u32, u32)], out: &mut [f32]) {
        use crate::scorer::for_each_score;
        let (n, half) = (self.num_entities, self.half_dim);
        let emb = Complex32::slice_from_interleaved(self.store.value(self.emb).as_slice());
        // The candidate multiplies the relation *first* (h ∘ r ∘ t̄), so
        // nothing per-query can be factored out without changing the float
        // association; score each element with the scalar expression.
        for_each_score(n, 0, out, |qi, cand, _| {
            let (rel, tail) = queries[qi];
            let h = &emb[cand * half..(cand + 1) * half];
            let r = &emb[(n + rel as usize) * half..(n + rel as usize + 1) * half];
            let t = &emb[tail as usize * half..(tail as usize + 1) * half];
            -h.iter()
                .zip(r)
                .zip(t)
                .map(|((&a, &b), &c)| (a * b * c.conj()).re)
                .sum::<f32>()
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kg::synthetic::SyntheticKgBuilder;
    use kg::UniformSampler;

    fn setup() -> (Dataset, SpComplEx, BatchPlan) {
        let ds = SyntheticKgBuilder::new(40, 4).triples(300).seed(60).build();
        let config = TrainConfig {
            dim: 4,
            batch_size: 64,
            ..Default::default()
        };
        let model = SpComplEx::from_config(&ds, &config).unwrap();
        let sampler = UniformSampler::new(ds.num_entities);
        let plan = BatchPlan::build(&ds.train, &ds.all_known(), &sampler, 64, 61);
        (ds, model, plan)
    }

    #[test]
    fn tape_scores_match_similarity() {
        let (_, mut model, plan) = setup();
        model.attach_plan(&plan).unwrap();
        let mut g = Graph::new();
        let (pos, _) = model.score_batch(&mut g, 0);
        let batch = plan.batch(0);
        for i in 0..batch.len().min(10) {
            let t = batch.pos.get(i);
            let want = -model.similarity(t.head, t.rel, t.tail);
            assert!((g.value(pos).get(i, 0) - want).abs() < 1e-4);
        }
    }

    #[test]
    fn complex_is_antisymmetric_capable() {
        // Unlike DistMult, ComplEx can distinguish (h, r, t) from (t, r, h)
        // when embeddings have imaginary parts.
        let (_, model, plan) = setup();
        let t = plan.batch(0).pos.get(0);
        let fwd = model.similarity(t.head, t.rel, t.tail);
        let bwd = model.similarity(t.tail, t.rel, t.head);
        assert!((fwd - bwd).abs() > 1e-9, "scores unexpectedly symmetric");
    }

    #[test]
    fn gradients_flow() {
        let (_, mut model, plan) = setup();
        model.attach_plan(&plan).unwrap();
        let mut g = Graph::new();
        let (pos, neg) = model.score_batch(&mut g, 0);
        let loss = g.margin_ranking_loss(pos, neg, 5.0);
        g.backward(loss, model.store_mut());
        assert!(model.store().grad(model.embedding_param()).frobenius_norm() > 0.0);
    }

    #[test]
    fn scorer_matches_similarity() {
        let (_, model, plan) = setup();
        let t = plan.batch(0).pos.get(0);
        let tails = model.score_tails(t.head, t.rel);
        assert!((tails[t.tail as usize] + model.similarity(t.head, t.rel, t.tail)).abs() < 1e-5);
    }
}
