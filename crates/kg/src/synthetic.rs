//! Synthetic knowledge-graph generation calibrated to the paper's datasets.
//!
//! The seven benchmark graphs in Table 3 (plus the COVID-19 graph of
//! Appendix F) cannot be downloaded offline, so experiments run on synthetic
//! graphs that match each dataset's **entity count, relation count and triple
//! count**, with two structural properties that drive the behaviours the
//! paper measures:
//!
//! * **Zipf-distributed entity popularity** — real KGs have heavy-tailed
//!   degree distributions; gather/scatter locality (the paper's bottleneck)
//!   depends on how often hot rows are touched.
//! * **Relation cardinality mix** — relations are assigned 1-1 / 1-N / N-1 /
//!   N-N behaviour in the proportions reported for FB15K, which determines
//!   ranking difficulty (TransE struggles with 1-N, the motivation for
//!   TransH/TransR).

use std::collections::HashSet;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::{Dataset, Triple, TripleStore};

/// Relation cardinality class.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Cardinality {
    /// One head maps to one tail.
    OneToOne,
    /// One head maps to many tails.
    OneToMany,
    /// Many heads map to one tail.
    ManyToOne,
    /// Many heads map to many tails.
    ManyToMany,
}

/// A Zipf sampler over `0..n` with exponent `s` (cumulative-table based).
#[derive(Debug, Clone)]
pub struct ZipfSampler {
    cdf: Vec<f64>,
}

impl ZipfSampler {
    /// Builds the sampler.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "domain must be non-empty");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for i in 0..n {
            acc += 1.0 / ((i + 1) as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for c in &mut cdf {
            *c /= total;
        }
        Self { cdf }
    }

    /// Draws one index.
    pub fn sample(&self, rng: &mut StdRng) -> usize {
        let u: f64 = rng.gen();
        match self
            .cdf
            .binary_search_by(|c| c.partial_cmp(&u).expect("finite cdf"))
        {
            Ok(i) => i,
            Err(i) => i.min(self.cdf.len() - 1),
        }
    }
}

/// Builder for synthetic KG datasets.
///
/// # Examples
///
/// ```
/// use kg::synthetic::SyntheticKgBuilder;
///
/// let ds = SyntheticKgBuilder::new(50, 4)
///     .triples(200)
///     .zipf_exponent(0.8)
///     .valid_frac(0.1)
///     .test_frac(0.1)
///     .seed(13)
///     .build();
/// assert_eq!(ds.num_relations, 4);
/// assert!(ds.test.len() > 0);
/// ```
#[derive(Debug, Clone)]
pub struct SyntheticKgBuilder {
    name: String,
    num_entities: usize,
    num_relations: usize,
    num_triples: usize,
    zipf_exponent: f64,
    valid_frac: f64,
    test_frac: f64,
    seed: u64,
}

impl SyntheticKgBuilder {
    /// Starts a builder for a graph over `num_entities` and `num_relations`.
    ///
    /// # Panics
    ///
    /// Panics if either count is zero.
    pub fn new(num_entities: usize, num_relations: usize) -> Self {
        assert!(num_entities > 1, "need at least two entities");
        assert!(num_relations > 0, "need at least one relation");
        Self {
            name: format!("synth-{num_entities}e-{num_relations}r"),
            num_entities,
            num_relations,
            num_triples: num_entities * 4,
            zipf_exponent: 0.9,
            valid_frac: 0.05,
            test_frac: 0.05,
            seed: 0,
        }
    }

    /// Sets the dataset name.
    pub fn name(mut self, name: impl Into<String>) -> Self {
        self.name = name.into();
        self
    }

    /// Sets the total triple count (across all splits).
    pub fn triples(mut self, n: usize) -> Self {
        self.num_triples = n;
        self
    }

    /// Sets the Zipf exponent for entity popularity (0 = uniform).
    pub fn zipf_exponent(mut self, s: f64) -> Self {
        self.zipf_exponent = s;
        self
    }

    /// Sets the validation fraction.
    pub fn valid_frac(mut self, f: f64) -> Self {
        self.valid_frac = f;
        self
    }

    /// Sets the test fraction.
    pub fn test_frac(mut self, f: f64) -> Self {
        self.test_frac = f;
        self
    }

    /// Sets the RNG seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Generates the dataset.
    ///
    /// Duplicate triples are rejected during generation, so the result may
    /// contain slightly fewer triples than requested on tiny graphs where
    /// the space is nearly exhausted.
    pub fn build(&self) -> Dataset {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let head_sampler = ZipfSampler::new(self.num_entities, self.zipf_exponent);
        // Different permutation for tails so heads and tails are not
        // correlated hot rows.
        let tail_offset = self.num_entities / 2 + 1;
        let rel_sampler = ZipfSampler::new(self.num_relations, 0.6);

        // Assign cardinalities in FB15K-like proportions:
        // ~24% 1-1, ~23% 1-N, ~29% N-1, ~24% N-N.
        let cardinality: Vec<Cardinality> = (0..self.num_relations)
            .map(|_| match rng.gen_range(0..100u32) {
                0..=23 => Cardinality::OneToOne,
                24..=46 => Cardinality::OneToMany,
                47..=75 => Cardinality::ManyToOne,
                _ => Cardinality::ManyToMany,
            })
            .collect();

        let mut seen: HashSet<Triple> = HashSet::with_capacity(self.num_triples * 2);
        let mut store = TripleStore::with_capacity(self.num_triples);
        let max_attempts = self.num_triples.saturating_mul(20).max(1000);
        let mut attempts = 0;
        // Per-relation anchor entities give 1-N / N-1 relations their shape:
        // a small pool on the "one" side.
        let anchors: Vec<u32> = (0..self.num_relations)
            .map(|_| rng.gen_range(0..self.num_entities as u32))
            .collect();
        while store.len() < self.num_triples && attempts < max_attempts {
            attempts += 1;
            let r = rel_sampler.sample(&mut rng) as u32;
            let (h, t) = match cardinality[r as usize] {
                Cardinality::OneToOne => {
                    let h = head_sampler.sample(&mut rng) as u32;
                    let t =
                        ((head_sampler.sample(&mut rng) + tail_offset) % self.num_entities) as u32;
                    (h, t)
                }
                Cardinality::OneToMany => {
                    // Few heads (anchor neighborhood), many tails.
                    let h = (anchors[r as usize] as usize
                        + rng.gen_range(0..8).min(self.num_entities - 1))
                        as u32
                        % self.num_entities as u32;
                    let t =
                        ((head_sampler.sample(&mut rng) + tail_offset) % self.num_entities) as u32;
                    (h, t)
                }
                Cardinality::ManyToOne => {
                    let h = head_sampler.sample(&mut rng) as u32;
                    let t = (anchors[r as usize] as usize
                        + rng.gen_range(0..8).min(self.num_entities - 1))
                        as u32
                        % self.num_entities as u32;
                    (h, t)
                }
                Cardinality::ManyToMany => {
                    let h = head_sampler.sample(&mut rng) as u32;
                    let t =
                        ((head_sampler.sample(&mut rng) + tail_offset) % self.num_entities) as u32;
                    (h, t)
                }
            };
            if h == t {
                continue;
            }
            let triple = Triple::new(h, r, t);
            if seen.insert(triple) {
                store.push(triple);
            }
        }
        Dataset::from_single_store(
            self.name.clone(),
            self.num_entities,
            self.num_relations,
            store,
            self.valid_frac,
            self.test_frac,
            self.seed.wrapping_add(1),
        )
        .expect("generator produces in-range indices")
    }
}

/// Shape specification of one of the paper's benchmark graphs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PaperDatasetSpec {
    /// Dataset name as printed in the paper.
    pub name: &'static str,
    /// Entity count (Table 3).
    pub entities: usize,
    /// Relation count (Table 3).
    pub relations: usize,
    /// Training-triple count (Table 3).
    pub triples: usize,
}

/// The seven benchmark datasets of paper Table 3.
pub const PAPER_DATASETS: [PaperDatasetSpec; 7] = [
    PaperDatasetSpec {
        name: "FB15K",
        entities: 14_951,
        relations: 1_345,
        triples: 483_142,
    },
    PaperDatasetSpec {
        name: "FB15K237",
        entities: 14_541,
        relations: 237,
        triples: 272_115,
    },
    PaperDatasetSpec {
        name: "WN18",
        entities: 40_943,
        relations: 18,
        triples: 141_442,
    },
    PaperDatasetSpec {
        name: "WN18RR",
        entities: 40_943,
        relations: 11,
        triples: 86_835,
    },
    PaperDatasetSpec {
        name: "FB13",
        entities: 67_399,
        relations: 15_342,
        triples: 316_232,
    },
    PaperDatasetSpec {
        name: "YAGO3-10",
        entities: 123_182,
        relations: 37,
        triples: 1_079_040,
    },
    PaperDatasetSpec {
        name: "BioKG",
        entities: 93_773,
        relations: 51,
        triples: 4_762_678,
    },
];

/// The COVID-19 graph of Appendix F (Table 9).
pub const COVID19_SPEC: PaperDatasetSpec = PaperDatasetSpec {
    name: "COVID-19",
    entities: 60_820,
    relations: 62,
    triples: 1_032_939,
};

impl PaperDatasetSpec {
    /// Looks a spec up by (case-insensitive) name.
    pub fn by_name(name: &str) -> Option<PaperDatasetSpec> {
        PAPER_DATASETS
            .iter()
            .chain(std::iter::once(&COVID19_SPEC))
            .find(|s| s.name.eq_ignore_ascii_case(name))
            .copied()
    }

    /// Generates a synthetic stand-in for this dataset.
    ///
    /// `scale` divides the triple **and entity** counts (keeping density
    /// roughly constant) so CI-speed runs are possible; `scale = 1` matches
    /// the paper's sizes exactly.
    ///
    /// # Panics
    ///
    /// Panics if `scale == 0`.
    pub fn generate(&self, scale: usize, seed: u64) -> Dataset {
        assert!(scale > 0, "scale must be at least 1");
        let entities = (self.entities / scale).max(16);
        let relations = (self.relations / scale).max(2);
        let triples = (self.triples / scale).max(64);
        SyntheticKgBuilder::new(entities, relations)
            .name(if scale == 1 {
                format!("synth-{}", self.name)
            } else {
                format!("synth-{}-s{scale}", self.name)
            })
            .triples(triples)
            .seed(seed)
            .build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zipf_prefers_small_indices() {
        let z = ZipfSampler::new(1000, 1.0);
        let mut rng = StdRng::seed_from_u64(1);
        let mut head_hits = 0;
        let n = 10_000;
        for _ in 0..n {
            if z.sample(&mut rng) < 10 {
                head_hits += 1;
            }
        }
        // Under Zipf(1.0) the top-10 of 1000 items carry ~39% of the mass.
        assert!(head_hits > n / 5, "got {head_hits}");
    }

    #[test]
    fn zipf_zero_exponent_is_roughly_uniform() {
        let z = ZipfSampler::new(100, 0.0);
        let mut rng = StdRng::seed_from_u64(2);
        let mut counts = [0usize; 100];
        for _ in 0..50_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        let max = *counts.iter().max().unwrap();
        let min = *counts.iter().min().unwrap();
        assert!(max < min * 3, "uniform-ish expected: {min}..{max}");
    }

    #[test]
    fn builder_produces_requested_shape() {
        let ds = SyntheticKgBuilder::new(200, 10)
            .triples(1000)
            .seed(3)
            .build();
        assert_eq!(ds.num_entities, 200);
        assert_eq!(ds.num_relations, 10);
        assert_eq!(ds.total_triples(), 1000);
        ds.train.validate(200, 10).unwrap();
    }

    #[test]
    fn triples_are_distinct() {
        let ds = SyntheticKgBuilder::new(100, 4).triples(400).seed(4).build();
        let mut seen = std::collections::HashSet::new();
        for t in ds.train.iter().chain(ds.valid.iter()).chain(ds.test.iter()) {
            assert!(seen.insert(t), "duplicate triple {t:?}");
            assert_ne!(t.head, t.tail, "self-loops excluded");
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = SyntheticKgBuilder::new(80, 3).triples(200).seed(9).build();
        let b = SyntheticKgBuilder::new(80, 3).triples(200).seed(9).build();
        assert_eq!(a.train, b.train);
        assert_eq!(a.test, b.test);
    }

    #[test]
    fn paper_specs_lookup_and_scale() {
        let spec = PaperDatasetSpec::by_name("fb15k").unwrap();
        assert_eq!(spec.entities, 14_951);
        assert!(PaperDatasetSpec::by_name("nope").is_none());
        let ds = spec.generate(100, 5);
        assert_eq!(ds.num_entities, 149);
        assert!(ds.total_triples() >= 4000); // 483142/100 rounded by dedup
    }

    #[test]
    fn covid_spec_matches_appendix_f() {
        assert_eq!(COVID19_SPEC.entities, 60_820);
        assert_eq!(COVID19_SPEC.relations, 62);
        assert_eq!(COVID19_SPEC.triples, 1_032_939);
    }
}
