//! Minimal complex-number support for the Appendix D semiring models.

use serde::{Deserialize, Serialize};

/// A 32-bit complex number, stored `(re, im)`.
///
/// ComplEx and RotatE embeddings (paper Appendix D) are complex-valued; dense
/// embedding rows hold `2 * d` floats interpreted as `d` interleaved
/// [`Complex32`] values.
///
/// # Examples
///
/// ```
/// use sparse::Complex32;
///
/// let a = Complex32::new(1.0, 2.0);
/// let b = Complex32::new(3.0, -1.0);
/// assert_eq!(a * b, Complex32::new(5.0, 5.0));
/// assert_eq!(a.conj(), Complex32::new(1.0, -2.0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Complex32 {
    /// Real part.
    pub re: f32,
    /// Imaginary part.
    pub im: f32,
}

impl Complex32 {
    /// The additive identity.
    pub const ZERO: Complex32 = Complex32 { re: 0.0, im: 0.0 };
    /// The multiplicative identity.
    pub const ONE: Complex32 = Complex32 { re: 1.0, im: 0.0 };

    /// Creates a complex number from real and imaginary parts.
    #[inline]
    pub const fn new(re: f32, im: f32) -> Self {
        Self { re, im }
    }

    /// Complex conjugate.
    #[inline]
    pub fn conj(self) -> Self {
        Self {
            re: self.re,
            im: -self.im,
        }
    }

    /// Squared modulus `re² + im²`.
    #[inline]
    pub fn norm_sqr(self) -> f32 {
        self.re * self.re + self.im * self.im
    }

    /// Modulus `√(re² + im²)`.
    #[inline]
    pub fn abs(self) -> f32 {
        self.norm_sqr().sqrt()
    }

    /// Unit complex number `e^{iθ}` — RotatE constrains relation embeddings
    /// to the unit circle.
    #[inline]
    pub fn from_phase(theta: f32) -> Self {
        let (s, c) = theta.sin_cos();
        Self { re: c, im: s }
    }

    /// Reinterprets an even-length `f32` slice as interleaved complex values.
    ///
    /// # Panics
    ///
    /// Panics if `slice.len()` is odd.
    pub fn slice_from_interleaved(slice: &[f32]) -> Vec<Complex32> {
        assert!(
            slice.len().is_multiple_of(2),
            "interleaved complex slice must have even length"
        );
        slice
            .chunks_exact(2)
            .map(|p| Complex32::new(p[0], p[1]))
            .collect()
    }
}

impl std::ops::Add for Complex32 {
    type Output = Complex32;
    #[inline]
    fn add(self, rhs: Self) -> Self {
        Self {
            re: self.re + rhs.re,
            im: self.im + rhs.im,
        }
    }
}

impl std::ops::Sub for Complex32 {
    type Output = Complex32;
    #[inline]
    fn sub(self, rhs: Self) -> Self {
        Self {
            re: self.re - rhs.re,
            im: self.im - rhs.im,
        }
    }
}

impl std::ops::Mul for Complex32 {
    type Output = Complex32;
    #[inline]
    fn mul(self, rhs: Self) -> Self {
        Self {
            re: self.re * rhs.re - self.im * rhs.im,
            im: self.re * rhs.im + self.im * rhs.re,
        }
    }
}

impl std::ops::Neg for Complex32 {
    type Output = Complex32;
    #[inline]
    fn neg(self) -> Self {
        Self {
            re: -self.re,
            im: -self.im,
        }
    }
}

impl std::ops::AddAssign for Complex32 {
    #[inline]
    fn add_assign(&mut self, rhs: Self) {
        *self = *self + rhs;
    }
}

impl std::fmt::Display for Complex32 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.im >= 0.0 {
            write!(f, "{}+{}i", self.re, self.im)
        } else {
            write!(f, "{}{}i", self.re, self.im)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_identities() {
        let z = Complex32::new(2.0, -3.0);
        assert_eq!(z + Complex32::ZERO, z);
        assert_eq!(z * Complex32::ONE, z);
        assert_eq!(z - z, Complex32::ZERO);
        assert_eq!(-z, Complex32::new(-2.0, 3.0));
    }

    #[test]
    fn conjugate_multiplication_gives_norm() {
        let z = Complex32::new(3.0, 4.0);
        let n = z * z.conj();
        assert!((n.re - 25.0).abs() < 1e-6);
        assert!(n.im.abs() < 1e-6);
        assert!((z.abs() - 5.0).abs() < 1e-6);
    }

    #[test]
    fn phase_is_unit_modulus() {
        for theta in [0.0f32, 0.5, 1.0, std::f32::consts::PI, -2.0] {
            let z = Complex32::from_phase(theta);
            assert!((z.abs() - 1.0).abs() < 1e-6);
        }
    }

    #[test]
    fn interleaved_parsing() {
        let v = Complex32::slice_from_interleaved(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(v, vec![Complex32::new(1.0, 2.0), Complex32::new(3.0, 4.0)]);
    }

    #[test]
    #[should_panic(expected = "even length")]
    fn interleaved_rejects_odd() {
        let _ = Complex32::slice_from_interleaved(&[1.0, 2.0, 3.0]);
    }

    #[test]
    fn display_formats_sign() {
        assert_eq!(Complex32::new(1.0, 2.0).to_string(), "1+2i");
        assert_eq!(Complex32::new(1.0, -2.0).to_string(), "1-2i");
    }
}
