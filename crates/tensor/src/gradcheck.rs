//! Finite-difference gradient checking.
//!
//! Every backward rule on the tape (and, transitively, the Appendix G claim
//! that SpMM backward is `Aᵀ`-SpMM) is validated by comparing analytic
//! parameter gradients with central finite differences of the loss.

use crate::{ParamId, ParamStore, Tensor, Var};

/// Result of one gradient check.
#[derive(Debug, Clone, PartialEq)]
pub struct GradCheckReport {
    /// Largest absolute difference between analytic and numeric gradients.
    pub max_abs_diff: f32,
    /// Largest relative difference (guarded by `1e-3` denominators).
    pub max_rel_diff: f32,
    /// Number of coordinates checked.
    pub coords: usize,
}

impl GradCheckReport {
    /// Whether the check passed at the given absolute/relative tolerances.
    pub fn passes(&self, atol: f32, rtol: f32) -> bool {
        self.max_abs_diff <= atol || self.max_rel_diff <= rtol
    }
}

/// Checks the analytic gradient of `param` against central differences.
///
/// `build` must construct the loss graph from the store and return the
/// scalar loss node; it is invoked `2 · |param| + 1` times, so keep the
/// parameter small in tests. `h` is the perturbation step (`1e-3` is a good
/// default for `f32`).
///
/// # Panics
///
/// Panics if `build` returns a non-scalar node.
pub fn check_param<F>(store: &mut ParamStore, param: ParamId, h: f32, build: F) -> GradCheckReport
where
    F: Fn(&mut crate::Graph, &ParamStore) -> Var,
{
    // Analytic gradient.
    store.zero_grads();
    let mut g = crate::Graph::new();
    let loss = build(&mut g, store);
    g.backward(loss, store);
    let analytic = store.grad(param).clone();

    // Numeric gradient by central differences.
    let (rows, cols) = store.value(param).shape();
    let mut numeric = Tensor::zeros(rows, cols);
    for i in 0..rows {
        for j in 0..cols {
            let orig = store.value(param).get(i, j);

            store.value_mut(param).set(i, j, orig + h);
            let mut gp = crate::Graph::new();
            let lp = build(&mut gp, store);
            let fp = gp.value(lp).get(0, 0);

            store.value_mut(param).set(i, j, orig - h);
            let mut gm = crate::Graph::new();
            let lm = build(&mut gm, store);
            let fm = gm.value(lm).get(0, 0);

            store.value_mut(param).set(i, j, orig);
            numeric.set(i, j, (fp - fm) / (2.0 * h));
        }
    }

    let mut max_abs = 0.0f32;
    let mut max_rel = 0.0f32;
    for (a, n) in analytic.as_slice().iter().zip(numeric.as_slice()) {
        let abs = (a - n).abs();
        let rel = abs / a.abs().max(n.abs()).max(1e-3);
        max_abs = max_abs.max(abs);
        max_rel = max_rel.max(rel);
    }
    GradCheckReport {
        max_abs_diff: max_abs,
        max_rel_diff: max_rel,
        coords: rows * cols,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init;
    use sparse::incidence::IncidencePair;
    use sparse::incidence::{hrt, ht, TailSign};
    use std::sync::Arc;

    fn small_store(rows: usize, cols: usize, seed: u64) -> (ParamStore, ParamId) {
        let mut s = ParamStore::new();
        let p = s.add_param("p", init::uniform(rows, cols, 1.0, seed));
        (s, p)
    }

    #[test]
    fn gather_l2_gradcheck() {
        let (mut s, p) = small_store(5, 3, 1);
        let report = check_param(&mut s, p, 1e-3, |g, store| {
            let x = g.gather(store, store.lookup("p").unwrap(), vec![0, 2, 4, 2]);
            let n = g.l2_norm_rows(x, 1e-9);
            g.mean(n)
        });
        assert!(report.passes(1e-2, 1e-2), "{report:?}");
    }

    #[test]
    fn spmm_hrt_gradcheck() {
        let (mut s, p) = small_store(6, 3, 2); // 4 entities + 2 relations
        let pair = Arc::new(IncidencePair::new(
            hrt(4, 2, &[0, 3], &[1, 0], &[2, 1], TailSign::Negative).unwrap(),
        ));
        let report = check_param(&mut s, p, 1e-3, move |g, store| {
            let x = g.spmm(store, store.lookup("p").unwrap(), Arc::clone(&pair));
            let n = g.squared_l2_norm_rows(x);
            g.mean(n)
        });
        assert!(report.passes(1e-2, 1e-2), "{report:?}");
    }

    #[test]
    fn transh_composition_gradcheck() {
        // Gradient through row_dot + scale_rows + sub + add.
        let mut s = ParamStore::new();
        let ent = s.add_param("ent", init::uniform(4, 3, 0.8, 3));
        let _w = s.add_param("w", init::uniform(2, 3, 0.8, 4));
        let _d = s.add_param("d", init::uniform(2, 3, 0.3, 5));
        let pair = Arc::new(IncidencePair::new(ht(4, &[0, 1], &[2, 3]).unwrap()));
        let build = move |g: &mut crate::Graph, store: &ParamStore| {
            let ent = store.lookup("ent").unwrap();
            let w = store.lookup("w").unwrap();
            let d = store.lookup("d").unwrap();
            let htv = g.spmm(store, ent, Arc::clone(&pair));
            let wv = g.gather(store, w, vec![0, 1]);
            let dv = g.gather(store, d, vec![0, 1]);
            let dot = g.row_dot(wv, htv);
            let proj = g.scale_rows(wv, dot);
            let tmp = g.sub(htv, proj);
            let expr = g.add(tmp, dv);
            let n = g.squared_l2_norm_rows(expr);
            g.mean(n)
        };
        for name in ["ent", "w", "d"] {
            let pid = s.lookup(name).unwrap();
            let report = check_param(&mut s, pid, 1e-3, &build);
            assert!(report.passes(2e-2, 2e-2), "{name}: {report:?}");
        }
        let _ = ent;
    }

    #[test]
    fn project_rows_gradcheck_both_params() {
        let mut s = ParamStore::new();
        let _ent = s.add_param("ent", init::uniform(4, 2, 0.9, 6));
        let _mats = s.add_param("mats", init::uniform(2, 3 * 2, 0.7, 7)); // 2 rels, 3x2 mats
        let pair = Arc::new(IncidencePair::new(ht(4, &[0, 1], &[2, 3]).unwrap()));
        let build = move |g: &mut crate::Graph, store: &ParamStore| {
            let ent = store.lookup("ent").unwrap();
            let mats = store.lookup("mats").unwrap();
            let htv = g.spmm(store, ent, Arc::clone(&pair));
            let proj = g.project_rows(store, mats, htv, vec![1, 0], 3);
            let n = g.squared_l2_norm_rows(proj);
            g.mean(n)
        };
        for name in ["ent", "mats"] {
            let pid = s.lookup(name).unwrap();
            let report = check_param(&mut s, pid, 1e-3, &build);
            assert!(report.passes(2e-2, 2e-2), "{name}: {report:?}");
        }
    }

    #[test]
    fn triple_product_row_sum_gradcheck() {
        // DistMult scoring path: Σ_j h_j r_j t_j differentiated through the
        // semiring SpMM forward and the transpose-traversal backward.
        let (mut s, p) = small_store(5, 3, 21); // 3 entities + 2 relations
        let pair = Arc::new(IncidencePair::new(
            hrt(3, 2, &[0, 2], &[0, 1], &[1, 0], TailSign::Positive).unwrap(),
        ));
        let report = check_param(&mut s, p, 1e-3, move |g, store| {
            let prod = g.triple_product(store, store.lookup("p").unwrap(), Arc::clone(&pair));
            let score = g.row_sum(prod);
            g.mean(score)
        });
        assert!(report.passes(2e-2, 2e-2), "{report:?}");
    }

    #[test]
    fn rotate_score_gradcheck() {
        // Complex parameter: 3 entities + 2 relations, complex dim 2
        // (4 interleaved floats per row).
        let (mut s, p) = small_store(5, 4, 31);
        let pair = Arc::new(IncidencePair::new(
            hrt(3, 2, &[0, 2], &[0, 1], &[1, 0], TailSign::Negative).unwrap(),
        ));
        let report = check_param(&mut s, p, 1e-3, move |g, store| {
            let score = g.rotate_score(store, store.lookup("p").unwrap(), Arc::clone(&pair));
            g.mean(score)
        });
        assert!(report.passes(2e-2, 2e-2), "{report:?}");
    }

    #[test]
    fn complex_score_gradcheck() {
        let (mut s, p) = small_store(5, 4, 32);
        let pair = Arc::new(IncidencePair::new(
            hrt(3, 2, &[0, 1], &[1, 0], &[2, 0], TailSign::Negative).unwrap(),
        ));
        let report = check_param(&mut s, p, 1e-3, move |g, store| {
            let score = g.complex_score(store, store.lookup("p").unwrap(), Arc::clone(&pair));
            g.mean(score)
        });
        assert!(report.passes(2e-2, 2e-2), "{report:?}");
    }

    #[test]
    fn margin_loss_gradcheck() {
        let (mut s, p) = small_store(6, 2, 8);
        let report = check_param(&mut s, p, 1e-3, |g, store| {
            let pid = store.lookup("p").unwrap();
            let pos = g.gather(store, pid, vec![0, 1, 2]);
            let neg = g.gather(store, pid, vec![3, 4, 5]);
            let ps = g.l2_norm_rows(pos, 1e-9);
            let ns = g.l2_norm_rows(neg, 1e-9);
            g.margin_ranking_loss(ps, ns, 0.5)
        });
        // Hinge is piecewise-linear; tolerate kinks.
        assert!(report.passes(5e-2, 5e-2), "{report:?}");
    }

    #[test]
    fn l1_and_torus_gradchecks() {
        let (mut s, p) = small_store(3, 4, 9);
        let report = check_param(&mut s, p, 1e-4, |g, store| {
            let pid = store.lookup("p").unwrap();
            let x = g.gather(store, pid, vec![0, 1, 2]);
            let n = g.l1_norm_rows(x);
            g.mean(n)
        });
        assert!(report.passes(5e-2, 5e-2), "L1: {report:?}");

        let report = check_param(&mut s, p, 1e-4, |g, store| {
            let pid = store.lookup("p").unwrap();
            let x = g.gather(store, pid, vec![0, 1, 2]);
            let n = g.torus_l2_sq_rows(x);
            g.mean(n)
        });
        assert!(report.passes(5e-2, 5e-2), "torus L2²: {report:?}");
    }
}
