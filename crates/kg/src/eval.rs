//! Link-prediction evaluation: Hits@K, MRR, mean rank (raw and filtered).
//!
//! The paper reports **filtered Hits@10** (§6.1, Appendix E): for each test
//! triple, all entities are ranked as candidate tails (and heads) by model
//! score; candidates that form *other* known true triples are excluded before
//! ranking (Bordes et al., 2013's protocol).
//!
//! # Engine architecture
//!
//! Evaluation is a headline workload (the paper's Hits@10 tables), so the
//! engine is batched and pool-parallel rather than scalar:
//!
//! 1. Test triples are processed in chunks of [`EvalConfig::chunk_size`].
//! 2. A [`BatchScorer`] fills a reused `(chunk × num_entities)` dense score
//!    buffer for the whole chunk — one kernel dispatch instead of one
//!    heap-allocated `Vec` per query.
//! 3. Queries in the chunk are ranked across the [`xparallel`] pool with a
//!    fixed-size sub-chunk reduction folded in order, so reports are
//!    bit-identical at **any** `SPTX_NUM_THREADS` — the same determinism
//!    contract the training step upholds.
//!
//! Scalar [`TripleScorer`] implementations plug into the same engine through
//! the [`ScalarBatch`] adapter; [`evaluate`] does this automatically, so both
//! paths share one ranking/reduction code path and produce bit-identical
//! metrics whenever their score buffers are bit-identical.
//!
//! # Ranking convention
//!
//! The rank of the true entity is `1 + |{strictly better}| + |{ties}| / 2`:
//! equal-score candidates contribute half a rank each instead of resolving in
//! index order, which would flatter (or punish) models that emit many equal
//! scores. `NaN` scores are handled pessimistically — see [`evaluate`].

use std::collections::HashMap;

use crate::{TripleSet, TripleStore};

/// A model that can score every candidate head/tail for a partial triple.
///
/// Scores are **distances**: lower is better, matching the translational
/// score functions `‖h + r − t‖`.
pub trait TripleScorer {
    /// Scores `(h, r, t)` for every entity `t` in `0..num_entities`.
    fn score_tails(&self, head: u32, rel: u32) -> Vec<f32>;

    /// Scores `(h, r, t)` for every entity `h` in `0..num_entities`.
    fn score_heads(&self, rel: u32, tail: u32) -> Vec<f32>;

    /// Number of candidate entities.
    fn num_entities(&self) -> usize;
}

/// A model that can score **chunks** of ranking queries into a caller-provided
/// dense buffer — the batched counterpart of [`TripleScorer`].
///
/// Implementations write one row of `num_entities()` scores per query into
/// `out` (row-major, `out.len() == queries.len() * num_entities()`), reusing
/// whatever scratch they need across the chunk instead of allocating per
/// query. The sparse models implement this by building a per-chunk query
/// incidence matrix and dispatching the same SpMM kernels used in training.
///
/// Scores follow the [`TripleScorer`] convention: distances, lower is better.
pub trait BatchScorer {
    /// Number of candidate entities (the row width of the score buffer).
    fn num_entities(&self) -> usize;

    /// Scores `(h, r, t)` for every entity `t`, for each query `(h, r)` in
    /// `queries`; row `i` of `out` receives query `i`'s scores.
    ///
    /// # Panics
    ///
    /// Implementations may panic if
    /// `out.len() != queries.len() * num_entities()`.
    fn score_tails_into(&self, queries: &[(u32, u32)], out: &mut [f32]);

    /// Scores `(h, r, t)` for every entity `h`, for each query `(r, t)` in
    /// `queries`; row `i` of `out` receives query `i`'s scores.
    ///
    /// # Panics
    ///
    /// Implementations may panic if
    /// `out.len() != queries.len() * num_entities()`.
    fn score_heads_into(&self, queries: &[(u32, u32)], out: &mut [f32]);
}

/// Adapter running any scalar [`TripleScorer`] through the batched engine:
/// each query row is filled by one scalar `score_tails`/`score_heads` call.
///
/// This keeps every existing scorer working with [`evaluate_batched`] (and is
/// what [`evaluate`] uses internally); models with a native [`BatchScorer`]
/// implementation skip the per-query allocation this adapter inherits.
pub struct ScalarBatch<'a, S: TripleScorer + ?Sized>(pub &'a S);

impl<S: TripleScorer + ?Sized> BatchScorer for ScalarBatch<'_, S> {
    fn num_entities(&self) -> usize {
        self.0.num_entities()
    }

    fn score_tails_into(&self, queries: &[(u32, u32)], out: &mut [f32]) {
        let n = self.0.num_entities();
        assert_eq!(
            out.len(),
            queries.len() * n,
            "score buffer has wrong length"
        );
        for (row, &(head, rel)) in out.chunks_exact_mut(n.max(1)).zip(queries) {
            row.copy_from_slice(&self.0.score_tails(head, rel));
        }
    }

    fn score_heads_into(&self, queries: &[(u32, u32)], out: &mut [f32]) {
        let n = self.0.num_entities();
        assert_eq!(
            out.len(),
            queries.len() * n,
            "score buffer has wrong length"
        );
        for (row, &(rel, tail)) in out.chunks_exact_mut(n.max(1)).zip(queries) {
            row.copy_from_slice(&self.0.score_heads(rel, tail));
        }
    }
}

/// Aggregate link-prediction metrics.
#[derive(Debug, Clone, PartialEq)]
pub struct LinkPredictionReport {
    /// `hits_at[i]` is the fraction of queries whose true entity ranked
    /// within `ks[i]`.
    pub hits_at: Vec<f32>,
    /// The cutoffs corresponding to `hits_at`.
    pub ks: Vec<usize>,
    /// Mean reciprocal rank.
    pub mrr: f32,
    /// Mean rank (1-based).
    pub mean_rank: f32,
    /// Number of ranking queries performed (2 per test triple).
    pub queries: usize,
}

impl LinkPredictionReport {
    /// The Hits@K value for cutoff `k`, if it was requested.
    pub fn hits(&self, k: usize) -> Option<f32> {
        self.ks
            .iter()
            .position(|&x| x == k)
            .map(|i| self.hits_at[i])
    }
}

/// How [`EvalConfig::max_triples`] selects its subset of the test set.
///
/// Evaluation is `O(|test| · N · d)`, so large graphs evaluate a sample.
/// Which sample matters: test stores often carry residual dataset order
/// (generation order, relation grouping), and a plain prefix inherits that
/// bias.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SampleStrategy {
    /// The first `max_triples` test triples, in order. **Biased** whenever
    /// the test store is not already shuffled — kept as the default because
    /// it is what pre-existing reports were produced with.
    #[default]
    Prefix,
    /// Every `⌈len / max_triples⌉`-th triple, spreading the sample evenly
    /// across the store. Deterministic and order-robust against contiguous
    /// grouping (e.g. triples sorted by relation).
    Strided,
    /// A uniform random subset drawn with the given seed (partial
    /// Fisher–Yates), visited in ascending index order. Deterministic for a
    /// fixed seed.
    Seeded(u64),
}

/// Evaluation protocol configuration.
#[derive(Debug, Clone)]
pub struct EvalConfig {
    /// Hits@K cutoffs to report (default `[1, 3, 10]`).
    pub ks: Vec<usize>,
    /// Whether to filter known true triples from candidate lists.
    pub filtered: bool,
    /// Cap on evaluated test triples (None = all). **This truncates the test
    /// set**; [`EvalConfig::sample`] controls which subset survives.
    pub max_triples: Option<usize>,
    /// Subset selection when `max_triples` truncates (default
    /// [`SampleStrategy::Prefix`]).
    pub sample: SampleStrategy,
    /// Test triples scored per batched chunk (default 64). Each chunk uses a
    /// reused `chunk_size × num_entities` score buffer; larger chunks
    /// amortize kernel dispatch, smaller chunks bound memory.
    pub chunk_size: usize,
}

impl Default for EvalConfig {
    fn default() -> Self {
        Self {
            ks: vec![1, 3, 10],
            filtered: true,
            max_triples: None,
            sample: SampleStrategy::default(),
            chunk_size: 64,
        }
    }
}

impl EvalConfig {
    /// Indices of the test triples this configuration evaluates, in
    /// evaluation order — `max_triples` capping plus [`SampleStrategy`]
    /// selection applied to a store of length `len`.
    pub fn selected_indices(&self, len: usize) -> Vec<usize> {
        let limit = self.max_triples.unwrap_or(len).min(len);
        if limit == len {
            return (0..len).collect();
        }
        match self.sample {
            SampleStrategy::Prefix => (0..limit).collect(),
            SampleStrategy::Strided => {
                // i-th pick at ⌊i·len/limit⌋: evenly spread, strictly
                // increasing because limit ≤ len.
                (0..limit).map(|i| i * len / limit).collect()
            }
            SampleStrategy::Seeded(seed) => {
                use rand::{Rng, SeedableRng};
                let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
                let mut pool: Vec<usize> = (0..len).collect();
                for i in 0..limit {
                    let j = rng.gen_range(i..len);
                    pool.swap(i, j);
                }
                let mut picked = pool[..limit].to_vec();
                // Ascending order for score-buffer locality; the set is
                // already uniform, so ordering adds no bias.
                picked.sort_unstable();
                picked
            }
        }
    }
}

/// Runs link-prediction evaluation of a scalar `scorer` on `test`.
///
/// This wraps `scorer` in [`ScalarBatch`] and delegates to
/// [`evaluate_batched`], so the scalar and batched paths share one ranking
/// engine. For each test triple both the tail and the head are predicted.
///
/// # Ranking convention
///
/// The rank of the true entity is `1 + |{candidates with strictly smaller
/// score}| + |{equal-score candidates}| / 2`: optimistic tie-breaking on
/// equal scores would inflate results, so ties count half. `NaN` candidate
/// scores never outrank the truth, and a `NaN` score **for the truth itself**
/// is assigned the worst possible rank — a model emitting `NaN` must not be
/// flattered by `NaN`'s all-comparisons-false semantics.
///
/// # Examples
///
/// ```
/// use kg::eval::{evaluate, EvalConfig, TripleScorer};
/// use kg::{Triple, TripleSet, TripleStore};
///
/// /// A perfect oracle: distance 0 for the true entity, 1 elsewhere.
/// struct Oracle { truth: TripleSet, n: usize }
/// impl TripleScorer for Oracle {
///     fn score_tails(&self, h: u32, r: u32) -> Vec<f32> {
///         (0..self.n as u32)
///             .map(|t| if self.truth.contains(&Triple::new(h, r, t)) { 0.0 } else { 1.0 })
///             .collect()
///     }
///     fn score_heads(&self, r: u32, t: u32) -> Vec<f32> {
///         (0..self.n as u32)
///             .map(|h| if self.truth.contains(&Triple::new(h, r, t)) { 0.0 } else { 1.0 })
///             .collect()
///     }
///     fn num_entities(&self) -> usize { self.n }
/// }
///
/// let test: TripleStore = [Triple::new(0, 0, 1)].into_iter().collect();
/// let truth = TripleSet::from_stores([&test]);
/// let report = evaluate(&Oracle { truth: truth.clone(), n: 5 }, &test, &truth, &EvalConfig::default());
/// assert_eq!(report.hits(1), Some(1.0));
/// ```
pub fn evaluate(
    scorer: &dyn TripleScorer,
    test: &TripleStore,
    known: &TripleSet,
    config: &EvalConfig,
) -> LinkPredictionReport {
    evaluate_batched(&ScalarBatch(scorer), test, known, config)
}

/// Runs link-prediction evaluation through the batched, pool-parallel engine.
///
/// Test triples are scored in chunks into two reused
/// `chunk_size × num_entities` buffers (tail and head queries), then every
/// query in the chunk is ranked in parallel on the [`xparallel`] pool. The
/// reduction maps fixed-size sub-chunks of queries to partials and folds
/// them in order, so metrics are bit-identical at any thread count.
///
/// Ranking follows the same convention as [`evaluate`] — the two entry points
/// produce bit-identical reports whenever the scorers produce bit-identical
/// score buffers.
pub fn evaluate_batched(
    scorer: &dyn BatchScorer,
    test: &TripleStore,
    known: &TripleSet,
    config: &EvalConfig,
) -> LinkPredictionReport {
    let indices = config.selected_indices(test.len());
    let n = scorer.num_entities();
    let chunk = config.chunk_size.max(1);
    // Chunk score buffers, allocated once and reused for every chunk.
    let mut tail_scores = vec![0f32; chunk.min(indices.len().max(1)) * n];
    let mut head_scores = vec![0f32; chunk.min(indices.len().max(1)) * n];

    // Filter indexes, built in one pass over `known`: ranking then corrects
    // each query's rank from its (typically tiny) filter list instead of
    // probing the hash set once per candidate — for a 10k-entity graph that
    // replaces ~10k hash lookups per query with a handful of slots.
    let empty: Vec<u32> = Vec::new();
    let mut known_tails: HashMap<(u32, u32), Vec<u32>> = HashMap::new();
    let mut known_heads: HashMap<(u32, u32), Vec<u32>> = HashMap::new();
    if config.filtered {
        for t in known.iter() {
            known_tails.entry((t.head, t.rel)).or_default().push(t.tail);
            known_heads.entry((t.rel, t.tail)).or_default().push(t.head);
        }
    }

    let mut acc = Accum::new(config.ks.len());
    for ids in indices.chunks(chunk) {
        let m = ids.len();
        let tail_q: Vec<(u32, u32)> = ids
            .iter()
            .map(|&i| {
                let t = test.get(i);
                (t.head, t.rel)
            })
            .collect();
        let head_q: Vec<(u32, u32)> = ids
            .iter()
            .map(|&i| {
                let t = test.get(i);
                (t.rel, t.tail)
            })
            .collect();
        scorer.score_tails_into(&tail_q, &mut tail_scores[..m * n]);
        scorer.score_heads_into(&head_q, &mut head_scores[..m * n]);

        let tail_scores = &tail_scores[..m * n];
        let head_scores = &head_scores[..m * n];
        // Sub-chunks of fixed length: the fold order of the f64 partials
        // depends only on `m`, never on the worker count.
        let part = xparallel::PoolHandle::global().map_reduce_fixed(
            m,
            RANK_REDUCE_CHUNK,
            Accum::new(config.ks.len()),
            |range| {
                let mut local = Accum::new(config.ks.len());
                for i in range {
                    let t = test.get(ids[i]);
                    let tail_filter = known_tails
                        .get(&(t.head, t.rel))
                        .unwrap_or(&empty)
                        .as_slice();
                    let rank = rank_of(
                        &tail_scores[i * n..(i + 1) * n],
                        t.tail as usize,
                        tail_filter,
                    );
                    local.record(&config.ks, rank);
                    let head_filter = known_heads
                        .get(&(t.rel, t.tail))
                        .unwrap_or(&empty)
                        .as_slice();
                    let rank = rank_of(
                        &head_scores[i * n..(i + 1) * n],
                        t.head as usize,
                        head_filter,
                    );
                    local.record(&config.ks, rank);
                }
                local
            },
            Accum::merge,
        );
        acc = Accum::merge(acc, part);
    }
    acc.into_report(&config.ks)
}

/// Queries per reduction sub-chunk in [`evaluate_batched`]; fixed so the
/// metric fold order is independent of the pool width.
const RANK_REDUCE_CHUNK: usize = 8;

/// Deterministic partial metrics for one worker's share of ranking queries.
struct Accum {
    hits: Vec<usize>,
    rr_sum: f64,
    rank_sum: f64,
    queries: usize,
}

impl Accum {
    fn new(num_ks: usize) -> Self {
        Self {
            hits: vec![0; num_ks],
            rr_sum: 0.0,
            rank_sum: 0.0,
            queries: 0,
        }
    }

    fn record(&mut self, ks: &[usize], rank: f64) {
        for (slot, &k) in self.hits.iter_mut().zip(ks) {
            if rank <= k as f64 {
                *slot += 1;
            }
        }
        self.rr_sum += 1.0 / rank;
        self.rank_sum += rank;
        self.queries += 1;
    }

    fn merge(mut self, other: Self) -> Self {
        for (a, b) in self.hits.iter_mut().zip(&other.hits) {
            *a += b;
        }
        self.rr_sum += other.rr_sum;
        self.rank_sum += other.rank_sum;
        self.queries += other.queries;
        self
    }

    fn into_report(self, ks: &[usize]) -> LinkPredictionReport {
        let q = self.queries.max(1) as f64;
        LinkPredictionReport {
            hits_at: self.hits.iter().map(|&h| (h as f64 / q) as f32).collect(),
            ks: ks.to_vec(),
            mrr: (self.rr_sum / q) as f32,
            mean_rank: (self.rank_sum / q) as f32,
            queries: self.queries,
        }
    }
}

/// 1-based rank of `target` among `scores` (lower score = better), with the
/// candidates listed in `filtered` excluded from the competition.
///
/// Convention: `1 + |{strictly better}| + |{ties}| / 2` — ties count half so
/// index order can neither flatter nor punish models that emit equal scores.
/// `NaN` candidates count as worse than everything; a `NaN` target score gets
/// the worst possible rank (all surviving candidates counted as better).
///
/// The implementation counts over *all* candidates in one branch-light pass,
/// then subtracts the filter list's contributions — `O(n + |filter|)` with no
/// per-candidate set probe. Filter entries must be distinct (they come from a
/// set); out-of-range entries are ignored, and the target itself never
/// counts, filtered or not.
fn rank_of(scores: &[f32], target: usize, filtered: &[u32]) -> f64 {
    let target_score = scores[target];
    let mut better = 0isize;
    let mut ties = 0isize;
    let mut candidates = scores.len() as isize - 1;
    for (cand, &s) in scores.iter().enumerate() {
        if cand == target {
            continue;
        }
        if s < target_score {
            better += 1;
        } else if s == target_score {
            ties += 1;
        }
    }
    for &c in filtered {
        let c = c as usize;
        if c == target || c >= scores.len() {
            continue;
        }
        candidates -= 1;
        let s = scores[c];
        if s < target_score {
            better -= 1;
        } else if s == target_score {
            ties -= 1;
        }
    }
    if target_score.is_nan() {
        // All comparisons against NaN are false, which would assign rank 1;
        // report the documented worst case instead.
        return 1.0 + candidates.max(0) as f64;
    }
    1.0 + better as f64 + ties as f64 / 2.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Triple;

    struct FixedScorer {
        n: usize,
        /// score[i] used for every query.
        scores: Vec<f32>,
    }

    impl TripleScorer for FixedScorer {
        fn score_tails(&self, _h: u32, _r: u32) -> Vec<f32> {
            self.scores.clone()
        }
        fn score_heads(&self, _r: u32, _t: u32) -> Vec<f32> {
            self.scores.clone()
        }
        fn num_entities(&self) -> usize {
            self.n
        }
    }

    fn single_test_triple() -> (TripleStore, TripleSet) {
        let test: TripleStore = [Triple::new(0, 0, 2)].into_iter().collect();
        let known = TripleSet::from_stores([&test]);
        (test, known)
    }

    #[test]
    fn perfect_scores_rank_first() {
        let (test, known) = single_test_triple();
        // Entity 2 has the lowest distance; entity 0 (head query truth) does too... use
        // distinct scores so both queries rank exactly.
        let scorer = FixedScorer {
            n: 4,
            scores: vec![0.0, 3.0, 0.1, 2.0],
        };
        // tail query: truth = 2 (score 0.1): entity 0 scores better -> rank 2.
        // head query: truth = 0 (score 0.0): rank 1.
        let r = evaluate(&scorer, &test, &known, &EvalConfig::default());
        assert_eq!(r.queries, 2);
        assert_eq!(r.hits(1), Some(0.5));
        assert_eq!(r.hits(3), Some(1.0));
        assert!((r.mrr - (1.0 + 0.5) / 2.0).abs() < 1e-6);
        assert!((r.mean_rank - 1.5).abs() < 1e-6);
    }

    #[test]
    fn filtering_removes_known_competitors() {
        // Truth for tail query is entity 2; entity 0 scores better but forms a
        // known triple, so filtered eval ranks the truth first.
        let test: TripleStore = [Triple::new(1, 0, 2)].into_iter().collect();
        let mut known = TripleSet::from_stores([&test]);
        known.insert(Triple::new(1, 0, 0)); // known competitor as tail
        known.insert(Triple::new(0, 0, 2)); // known competitor as head
        let scorer = FixedScorer {
            n: 3,
            scores: vec![0.0, 0.5, 1.0],
        };
        let raw = evaluate(
            &scorer,
            &test,
            &known,
            &EvalConfig {
                filtered: false,
                ..Default::default()
            },
        );
        let filt = evaluate(&scorer, &test, &known, &EvalConfig::default());
        assert!(filt.mrr > raw.mrr);
        // Tail query filtered: candidates {1}, truth=2 score 1.0 vs 0.5 -> rank 2.
        // Head query filtered: candidates {2}, truth=1 score 0.5 vs 1.0 -> rank 1.
        assert!((filt.mean_rank - 1.5).abs() < 1e-6);
    }

    #[test]
    fn ties_count_half() {
        let (test, known) = single_test_triple();
        let scorer = FixedScorer {
            n: 3,
            scores: vec![1.0, 1.0, 1.0],
        };
        let r = evaluate(&scorer, &test, &known, &EvalConfig::default());
        // Two ties -> rank 1 + 2/2 = 2 for both queries.
        assert!((r.mean_rank - 2.0).abs() < 1e-6);
    }

    #[test]
    fn tie_rank_is_invariant_to_candidate_order() {
        // The truth ties with two candidates; permuting which indices hold
        // the tying scores must not change the rank.
        let base = vec![0.5, 2.0, 0.5, 0.5, 9.0];
        let permuted = vec![0.5, 0.5, 0.5, 9.0, 2.0];
        let r1 = rank_of(&base, 0, &[]);
        let r2 = rank_of(&permuted, 2, &[]);
        assert_eq!(r1, r2);
        assert_eq!(r1, 1.0 + 0.0 + 2.0 / 2.0);
    }

    #[test]
    fn nan_scores_are_pessimistic() {
        // NaN candidates never beat the truth.
        let scores = vec![f32::NAN, 1.0, f32::NAN];
        assert_eq!(rank_of(&scores, 1, &[]), 1.0);
        // A NaN truth gets the worst rank, not (flattering) rank 1.
        let scores = vec![0.5, f32::NAN, 2.0];
        assert_eq!(rank_of(&scores, 1, &[]), 3.0);
        // ... and filtered candidates still do not count against it.
        assert_eq!(rank_of(&scores, 1, &[0]), 2.0);
        // Out-of-range filter entries (scorer/filter vocabulary mismatch)
        // are ignored rather than corrupting the counts.
        assert_eq!(rank_of(&scores, 1, &[0, 99]), 2.0);
    }

    #[test]
    fn max_triples_caps_work() {
        let test: TripleStore = (0..10).map(|i| Triple::new(i, 0, (i + 1) % 10)).collect();
        let known = TripleSet::from_stores([&test]);
        let scorer = FixedScorer {
            n: 10,
            scores: (0..10).map(|i| i as f32).collect(),
        };
        let r = evaluate(
            &scorer,
            &test,
            &known,
            &EvalConfig {
                max_triples: Some(3),
                ..Default::default()
            },
        );
        assert_eq!(r.queries, 6);
    }

    #[test]
    fn sample_strategies_select_expected_indices() {
        let cfg = |sample| EvalConfig {
            max_triples: Some(4),
            sample,
            ..Default::default()
        };
        // No truncation: every strategy yields the identity.
        let full = EvalConfig {
            sample: SampleStrategy::Seeded(7),
            ..Default::default()
        };
        assert_eq!(full.selected_indices(3), vec![0, 1, 2]);

        assert_eq!(
            cfg(SampleStrategy::Prefix).selected_indices(10),
            vec![0, 1, 2, 3]
        );
        // Stride spreads over the whole store instead of taking a prefix.
        let strided = cfg(SampleStrategy::Strided).selected_indices(10);
        assert_eq!(strided, vec![0, 2, 5, 7]);

        let a = cfg(SampleStrategy::Seeded(9)).selected_indices(100);
        let b = cfg(SampleStrategy::Seeded(9)).selected_indices(100);
        assert_eq!(a, b, "seeded sampling is deterministic");
        assert_eq!(a.len(), 4);
        assert!(
            a.windows(2).all(|w| w[0] < w[1]),
            "distinct and sorted: {a:?}"
        );
        assert!(a.iter().all(|&i| i < 100));
        let c = cfg(SampleStrategy::Seeded(10)).selected_indices(100);
        assert_ne!(a, c, "different seeds draw different subsets");
    }

    #[test]
    fn strided_sampling_resists_dataset_order_bias() {
        // A store whose second half is "easy" (truth in the first K): a
        // prefix sample sees none of it, a strided sample sees half.
        let test: TripleStore = (0..20).map(|i| Triple::new(0, 0, i % 10)).collect();
        let picked = EvalConfig {
            max_triples: Some(10),
            sample: SampleStrategy::Strided,
            ..Default::default()
        }
        .selected_indices(test.len());
        assert!(picked.iter().filter(|&&i| i >= 10).count() >= 4);
    }

    #[test]
    fn batched_adapter_matches_scalar_for_all_chunk_sizes() {
        let test: TripleStore = (0..17)
            .map(|i| Triple::new(i % 5, i % 3, (i + 1) % 5))
            .collect();
        let known = TripleSet::from_stores([&test]);
        let scorer = FixedScorer {
            n: 5,
            scores: vec![0.3, 0.1, 4.0, 0.1, 2.0],
        };
        let baseline = evaluate(
            &scorer,
            &test,
            &known,
            &EvalConfig {
                chunk_size: 1,
                ..Default::default()
            },
        );
        for chunk_size in [2usize, 3, 16, 64] {
            let r = evaluate(
                &scorer,
                &test,
                &known,
                &EvalConfig {
                    chunk_size,
                    ..Default::default()
                },
            );
            assert_eq!(r, baseline, "chunk_size {chunk_size}");
        }
    }

    #[test]
    fn empty_test_store_reports_zero_queries() {
        let test = TripleStore::new();
        let known = TripleSet::new();
        let scorer = FixedScorer {
            n: 3,
            scores: vec![0.0, 1.0, 2.0],
        };
        let r = evaluate(&scorer, &test, &known, &EvalConfig::default());
        assert_eq!(r.queries, 0);
        assert_eq!(r.mrr, 0.0);
    }

    #[test]
    fn hits_lookup_missing_k() {
        let (test, known) = single_test_triple();
        let scorer = FixedScorer {
            n: 3,
            scores: vec![0.0, 1.0, 2.0],
        };
        let r = evaluate(&scorer, &test, &known, &EvalConfig::default());
        assert_eq!(r.hits(7), None);
    }
}
