//! Regenerates **Figure 2**: the most CPU-intensive functions per model and
//! dataset, as fractions of total training time.
//!
//! The paper profiles the PyTorch baselines with `perf` and finds
//! `EmbeddingBackward` (gradient scatter) among the top functions for every
//! translational model, plus `l2_torus_dissimilarity` for TorusE. Our analog
//! attributes wall-clock time to the named autograd-op scopes.

use kg::synthetic::PaperDatasetSpec;
use sptx_bench::harness::{
    bench_config, epochs_from_env, print_table, run_model, scale_from_env, ModelKind, Variant,
};
use tensor::profile;

fn main() {
    let scale = scale_from_env();
    let epochs = epochs_from_env();
    println!("# Figure 2 — top op-level time consumers (scale 1/{scale}, {epochs} epochs)");
    println!("\nBaseline (gather/scatter) variants are profiled, as in the paper.");

    let cfg = bench_config(32, 16, 2048, epochs);
    for ds_name in ["FB13", "FB15K"] {
        let spec = PaperDatasetSpec::by_name(ds_name).expect("known dataset");
        let ds = spec.generate(scale, 0xF16 + u64::from(ds_name.len() as u32));
        for kind in ModelKind::ALL {
            profile::reset();
            let report = run_model(kind, Variant::Dense, &ds, &cfg);
            let total = report.breakdown.total().as_secs_f64().max(1e-9);
            let mut rows: Vec<Vec<String>> = profile::report()
                .into_iter()
                .filter(|e| e.name.starts_with("op::"))
                .take(5)
                .map(|e| {
                    vec![
                        e.name.to_string(),
                        format!("{:.1}%", 100.0 * e.total.as_secs_f64() / total),
                        e.calls.to_string(),
                    ]
                })
                .collect();
            if rows.is_empty() {
                rows.push(vec!["<none>".into(), "-".into(), "0".into()]);
            }
            print_table(
                &format!(
                    "{} ({}) — top ops by share of training time",
                    kind.name(),
                    ds_name
                ),
                &["Function (op scope)", "Share", "Calls"],
                &rows,
            );
        }
    }
    println!("\nExpected shape: gather_backward (the scatter of Figure 1b) ranks near the");
    println!("top for TransE/TransR/TransH; the torus dissimilarity op joins it for TorusE.");
}
