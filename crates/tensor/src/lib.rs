//! Dense tensors with tape-based reverse-mode automatic differentiation.
//!
//! The SparseTransX paper builds on PyTorch 2.3; this crate is the
//! reproduction's PyTorch analog, scoped to exactly what translation-based
//! KGE training needs:
//!
//! * [`Tensor`] — owned row-major `f32` matrices with parallel elementwise /
//!   reduction / norm kernels and global **peak-memory accounting**
//!   ([`memory`]), the stand-in for `torch.cuda.max_memory_allocated`.
//! * [`Arena`] — a recycling buffer pool that makes the steady-state
//!   training step allocation-free: every [`Graph`] owns one, draws node
//!   values/gradients and backward temporaries from it, and returns them on
//!   [`Graph::reset`] instead of dropping them.
//! * [`Graph`] / [`Var`] — a define-by-run tape. Forward values are computed
//!   eagerly as ops are recorded; [`Graph::backward`] replays the tape in
//!   reverse. Embedding tables live outside the tape in a [`ParamStore`] so
//!   the (large) parameter matrices are never copied per batch.
//! * The two ops at the heart of the paper: [`Graph::gather`] +
//!   scatter-add backward (the *non-sparse* fine-grained path every baseline
//!   framework uses) and [`Graph::spmm`] whose backward is a second SpMM with
//!   the cached transpose (`∂L/∂X = Aᵀ · ∂L/∂C`, Appendix G).
//! * [`optim`] — SGD / Adagrad / Adam and a step LR scheduler (Appendix E).
//! * [`loss`] — margin ranking loss over positive/negative score vectors.
//! * [`profile`] — lightweight named timers used to regenerate the paper's
//!   forward/backward/step breakdowns (Table 1, Figure 8) and the
//!   per-function attribution of Figure 2.
//!
//! **Place in the workspace:** builds on `sparse` (SpMM kernels) and
//! `xparallel` (elementwise parallelism); `sptransx` drives every model's
//! forward/backward through this tape.
//!
//! # Examples
//!
//! Differentiate a TransE-style score through the tape:
//!
//! ```
//! use tensor::{Graph, ParamStore, Tensor};
//!
//! let mut store = ParamStore::new();
//! let emb = store.add_param("emb", Tensor::from_rows(&[[1.0, 2.0], [0.5, 0.0], [3.0, 1.0]]));
//! let mut g = Graph::new();
//! let rows = g.gather(&store, emb, vec![0, 2]);
//! let norms = g.l2_norm_rows(rows, 1e-9);
//! let loss = g.mean(norms);
//! g.backward(loss, &mut store);
//! assert_eq!(store.grad(emb).rows(), 3);
//! ```

#![deny(missing_docs)]

mod arena;
pub mod gradcheck;
mod graph;
pub mod hogwild;
pub mod init;
pub mod loss;
pub mod memory;
pub mod optim;
pub mod paged;
pub mod profile;
mod store;
mod tensor;

pub use arena::Arena;
pub use graph::{Graph, RowScore, Var};

/// Low-level kernels re-exported for benchmarks and cross-crate tests.
pub mod kernels {
    pub use crate::graph::scatter_add_rows;
}
pub use hogwild::SharedTable;
pub use paged::{PageStats, Pager, PrefetchStats, RowStorage, VecStorage};
pub use store::{ParamId, ParamStore, RowSet, TableView};
pub use tensor::Tensor;

/// Convenience alias for fallible tensor operations.
pub type Result<T> = std::result::Result<T, Error>;

/// Errors for tensor-level operations.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum Error {
    /// Operand shapes are incompatible.
    ShapeMismatch {
        /// Description of the mismatch.
        context: String,
    },
    /// A referenced parameter does not exist.
    UnknownParam {
        /// The offending parameter name.
        name: String,
    },
    /// A paged-storage operation failed: backing-store I/O, a working set
    /// larger than the cache budget, or an invalid paging configuration.
    Storage {
        /// Description of the failure.
        context: String,
    },
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Error::ShapeMismatch { context } => write!(f, "shape mismatch: {context}"),
            Error::UnknownParam { name } => write!(f, "unknown parameter: {name}"),
            Error::Storage { context } => write!(f, "paged storage: {context}"),
        }
    }
}

impl std::error::Error for Error {}
