//! Ranking-throughput micro-benchmark: link-prediction evaluation before and
//! after the batched, pool-parallel engine.
//!
//! Three arms, measured across worker counts on a ≥10k-entity synthetic KG:
//!
//! * `legacy` — a faithful copy of the pre-engine evaluation loop: one
//!   heap-allocated `Vec` per query, sequential ranking, and one known-set
//!   hash probe **per candidate** for filtering. This is the baseline the
//!   engine replaces (it ignores the thread knob entirely).
//! * `scalar-adapter` — scalar `TripleScorer` scoring through the new engine
//!   via `ScalarBatch` (per-query allocation remains; ranking is chunked,
//!   filter-list-based and pool-parallel).
//! * `batched` — native `BatchScorer` scoring: per-chunk query-incidence
//!   SpMM into reused buffers plus the pool-parallel ranking pass.
//!
//! Throughput is reported in ranking queries per second (2 queries — tail +
//! head — per test triple). Note: the thread sweep (`t1`..`t8`) only
//! differentiates on a machine with that many physical cores; on a
//! single-core container the engine arms collapse to one schedule and only
//! the allocation/filtering savings over `legacy` remain visible.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use kg::eval::{evaluate, evaluate_batched, EvalConfig, TripleScorer};
use kg::synthetic::SyntheticKgBuilder;
use kg::{Triple, TripleSet, TripleStore};
use sptransx::{SpTransE, TrainConfig};

const NUM_ENTITIES: usize = 10_000;
const EVAL_TRIPLES: usize = 64;

/// The pre-engine evaluation loop (scalar scoring, sequential ranking,
/// per-candidate hash filtering), preserved verbatim as the benchmark
/// baseline.
fn legacy_evaluate(
    scorer: &dyn TripleScorer,
    test: &TripleStore,
    known: &TripleSet,
    config: &EvalConfig,
) -> f64 {
    let limit = config.max_triples.unwrap_or(test.len()).min(test.len());
    let mut rank_sum = 0.0f64;
    for i in 0..limit {
        let t = test.get(i);
        let scores = scorer.score_tails(t.head, t.rel);
        rank_sum += legacy_rank(&scores, t.tail as usize, |cand| {
            config.filtered
                && cand != t.tail as usize
                && known.contains(&Triple::new(t.head, t.rel, cand as u32))
        });
        let scores = scorer.score_heads(t.rel, t.tail);
        rank_sum += legacy_rank(&scores, t.head as usize, |cand| {
            config.filtered
                && cand != t.head as usize
                && known.contains(&Triple::new(cand as u32, t.rel, t.tail))
        });
    }
    rank_sum
}

fn legacy_rank(scores: &[f32], target: usize, filtered: impl Fn(usize) -> bool) -> f64 {
    let target_score = scores[target];
    let mut better = 0usize;
    let mut ties = 0usize;
    for (cand, &s) in scores.iter().enumerate() {
        if cand == target || filtered(cand) {
            continue;
        }
        if s < target_score {
            better += 1;
        } else if s == target_score {
            ties += 1;
        }
    }
    1.0 + better as f64 + ties as f64 / 2.0
}

fn bench_ranking_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("link_prediction_eval");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(3));
    group.warm_up_time(Duration::from_secs(1));

    let ds = SyntheticKgBuilder::new(NUM_ENTITIES, 20)
        .triples(NUM_ENTITIES * 4)
        .test_frac(0.01)
        .seed(0x5EED)
        .build();
    let known = ds.all_known();
    let cfg = TrainConfig {
        dim: 32,
        ..Default::default()
    };
    // Untrained weights: evaluation cost does not depend on embedding values.
    let model = SpTransE::from_config(&ds, &cfg).expect("model");
    let eval = EvalConfig {
        max_triples: Some(EVAL_TRIPLES),
        ..Default::default()
    };

    for &threads in &[1usize, 2, 4, 8] {
        group.throughput(Throughput::Elements(2 * EVAL_TRIPLES as u64));
        group.bench_with_input(
            BenchmarkId::new("legacy", format!("t{threads}")),
            &threads,
            |b, &t| {
                xparallel::with_parallelism(t, || {
                    b.iter(|| legacy_evaluate(&model, &ds.test, &known, &eval))
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("scalar-adapter", format!("t{threads}")),
            &threads,
            |b, &t| {
                xparallel::with_parallelism(t, || {
                    b.iter(|| evaluate(&model, &ds.test, &known, &eval))
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("batched", format!("t{threads}")),
            &threads,
            |b, &t| {
                xparallel::with_parallelism(t, || {
                    b.iter(|| evaluate_batched(&model, &ds.test, &known, &eval))
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_ranking_throughput);
criterion_main!(benches);
