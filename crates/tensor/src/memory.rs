//! Global tensor-memory accounting.
//!
//! The paper reports peak CUDA memory per framework (Table 5, Figure 6).
//! Our analog: every [`crate::Tensor`] buffer registers its byte size on
//! allocation and deregisters on drop, and we track the running and peak
//! totals. Peak can be reset per phase (e.g. per training run) just like
//! `torch.cuda.reset_peak_memory_stats`.
//!
//! Two counters with distinct meanings:
//!
//! * **Bytes** ([`current_bytes`] / [`peak_bytes`]) measure the live working
//!   set. Buffers recycled through an [`crate::Arena`] **stay registered**
//!   while pooled — recycling changes who holds a buffer, not whether it is
//!   part of the working set — so `peak_bytes` keeps its Table-5 meaning
//!   under the allocation-free training step.
//! * **Allocations** ([`alloc_count`]) count real heap allocations of
//!   tensor buffers. An arena pool *hit* does not bump it; only fresh
//!   allocations (pool misses included) do. The steady-state training step
//!   is required to keep this counter flat once every batch shape has been
//!   seen once — from batch 2 onward with uniform batches; a smaller
//!   ragged final batch warms the pool for its shapes on its first
//!   occurrence only. The regression tests assert exactly that.
//!
//! # Examples
//!
//! ```
//! use tensor::{memory, Tensor};
//!
//! memory::reset_peak();
//! let before = memory::current_bytes();
//! let t = Tensor::zeros(64, 64);
//! assert!(memory::current_bytes() >= before + 64 * 64 * 4);
//! drop(t);
//! assert!(memory::peak_bytes() >= before + 64 * 64 * 4);
//! ```

use std::sync::atomic::{AtomicU64, Ordering};

static CURRENT: AtomicU64 = AtomicU64::new(0);
static PEAK: AtomicU64 = AtomicU64::new(0);
static ALLOCS: AtomicU64 = AtomicU64::new(0);

/// Registers an allocation of `bytes`.
pub(crate) fn register(bytes: u64) {
    if bytes > 0 {
        // Zero-length tensors never touch the heap; don't count them.
        ALLOCS.fetch_add(1, Ordering::Relaxed);
    }
    let cur = CURRENT.fetch_add(bytes, Ordering::Relaxed) + bytes;
    PEAK.fetch_max(cur, Ordering::Relaxed);
}

/// Deregisters an allocation of `bytes`.
pub(crate) fn deregister(bytes: u64) {
    CURRENT.fetch_sub(bytes, Ordering::Relaxed);
}

/// Currently live tensor bytes.
pub fn current_bytes() -> u64 {
    CURRENT.load(Ordering::Relaxed)
}

/// High-water mark of live tensor bytes since the last [`reset_peak`].
pub fn peak_bytes() -> u64 {
    PEAK.load(Ordering::Relaxed)
}

/// Resets the peak to the current live total.
pub fn reset_peak() {
    PEAK.store(CURRENT.load(Ordering::Relaxed), Ordering::Relaxed);
}

/// Monotone count of tensor-buffer heap allocations since process start.
///
/// Snapshot before and after a region and subtract to measure its
/// allocation traffic; an arena-served (recycled) buffer does not count.
/// This is process-global and monotone, so concurrent tests only ever
/// *overcount* a region's delta — an assertion that a delta is zero is
/// therefore conservative.
pub fn alloc_count() -> u64 {
    ALLOCS.load(Ordering::Relaxed)
}

/// RAII scope that reports the peak-over-scope delta.
///
/// # Examples
///
/// ```
/// let scope = tensor::memory::MemoryScope::start();
/// let t = tensor::Tensor::zeros(128, 128);
/// drop(t);
/// assert!(scope.peak_delta_bytes() >= 128 * 128 * 4);
/// ```
#[derive(Debug)]
pub struct MemoryScope {
    baseline: u64,
}

impl MemoryScope {
    /// Starts a scope: resets the peak to the current live total.
    pub fn start() -> Self {
        reset_peak();
        Self {
            baseline: current_bytes(),
        }
    }

    /// Peak bytes allocated above the scope's baseline so far.
    pub fn peak_delta_bytes(&self) -> u64 {
        peak_bytes().saturating_sub(self.baseline)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Tensor;

    #[test]
    fn tracks_alloc_and_free() {
        let before = current_bytes();
        let t = Tensor::zeros(100, 10);
        assert_eq!(current_bytes(), before + 100 * 10 * 4);
        drop(t);
        assert_eq!(current_bytes(), before);
    }

    #[test]
    fn peak_survives_drop() {
        reset_peak();
        let base = current_bytes();
        {
            let _a = Tensor::zeros(50, 50);
            let _b = Tensor::zeros(50, 50);
        }
        assert!(peak_bytes() >= base + 2 * 50 * 50 * 4);
    }

    #[test]
    fn clone_registers_its_own_buffer() {
        let before = current_bytes();
        let a = Tensor::zeros(10, 10);
        let b = a.clone();
        assert_eq!(current_bytes(), before + 2 * 10 * 10 * 4);
        drop(a);
        drop(b);
        assert_eq!(current_bytes(), before);
    }
}
