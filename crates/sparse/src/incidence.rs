//! Triplet incidence matrices (paper §4.2).
//!
//! For a batch of `M` training triplets over `N` entities and `R` relations,
//! SparseTransX represents the batch as a sparse incidence matrix `A` whose
//! rows are triplets and whose columns are entities (and, for the `hrt` form,
//! relations). Multiplying `A` by the embedding matrix computes, in one SpMM:
//!
//! * **`ht` form** (`A ∈ {−1,0,1}^{M×N}`, §4.2.1): row `i` holds `+1` at the
//!   head column and `−1` at the tail column, so `A·E = head − tail`.
//!   Used by TransR and TransH after algebraic rearrangement.
//! * **`hrt` form** (`A ∈ {−1,0,1}^{M×(N+R)}`, §4.2.2): additionally `+1` at
//!   column `N + r`, with entity and relation embeddings stacked vertically,
//!   so `A·[E;Rel] = head + relation − tail`. Used by TransE and TorusE.
//! * **`hrt_unsigned` form** (Appendix D): all three coefficients `+1`; the
//!   sign carries no meaning under product semirings (DistMult), or flags
//!   conjugation/subtraction (ComplEx, RotatE) where the tail keeps `−1`.

use crate::{CooMatrix, CsrMatrix, Error, Result};

/// Coefficient convention for the tail (and, per semiring, its meaning).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TailSign {
    /// Tail column stores `−1` (translational `h − t` / `h + r − t`; also the
    /// conjugate/subtract marker for ComplEx/RotatE).
    Negative,
    /// Tail column stores `+1` (pure product semirings such as DistMult).
    Positive,
}

/// Builds the `M × N` `ht` incidence matrix for `head − tail` (§4.2.1).
///
/// Each row has exactly two stored entries: `+1` at `heads[i]` and `−1` at
/// `tails[i]`. Self-loops (`head == tail`) collapse to a single explicit zero
/// entry after duplicate summing, which is mathematically exact.
///
/// # Errors
///
/// Returns [`Error::IndexOutOfBounds`] if any index `≥ num_entities`, or
/// [`Error::ShapeMismatch`] if `heads.len() != tails.len()`.
///
/// # Examples
///
/// ```
/// let a = sparse::incidence::ht(22, &[5], &[15])?;
/// assert_eq!(a.rows(), 1);
/// assert_eq!(a.row(0).collect::<Vec<_>>(), vec![(5, 1.0), (15, -1.0)]);
/// # Ok::<(), sparse::Error>(())
/// ```
pub fn ht(num_entities: usize, heads: &[u32], tails: &[u32]) -> Result<CsrMatrix> {
    if heads.len() != tails.len() {
        return Err(Error::shape(format!(
            "heads length {} != tails length {}",
            heads.len(),
            tails.len()
        )));
    }
    let m = heads.len();
    let mut coo = CooMatrix::with_capacity(m, num_entities, 2 * m);
    for i in 0..m {
        let (h, t) = (heads[i] as usize, tails[i] as usize);
        check_entity(h, num_entities, i)?;
        check_entity(t, num_entities, i)?;
        coo.push_unchecked(i, h, 1.0);
        coo.push_unchecked(i, t, -1.0);
    }
    Ok(coo.to_csr())
}

/// Builds the `M × (N + R)` `hrt` incidence matrix for `head + relation −
/// tail` (§4.2.2).
///
/// Relation column indices are offset by `num_entities` so that the matrix
/// multiplies a vertically stacked `[entities; relations]` embedding matrix.
///
/// # Errors
///
/// Returns [`Error::IndexOutOfBounds`] on any out-of-range entity/relation
/// index, or [`Error::ShapeMismatch`] on unequal slice lengths.
///
/// # Examples
///
/// ```
/// // 20 entities, 8 relations: triple (h=5, r=2, t=15) as in Figure 3(b).
/// let a = sparse::incidence::hrt(20, 8, &[5], &[2], &[15], sparse::incidence::TailSign::Negative)?;
/// assert_eq!(a.cols(), 28);
/// assert_eq!(a.row(0).collect::<Vec<_>>(), vec![(5, 1.0), (15, -1.0), (22, 1.0)]);
/// # Ok::<(), sparse::Error>(())
/// ```
pub fn hrt(
    num_entities: usize,
    num_relations: usize,
    heads: &[u32],
    rels: &[u32],
    tails: &[u32],
    tail_sign: TailSign,
) -> Result<CsrMatrix> {
    if heads.len() != tails.len() || heads.len() != rels.len() {
        return Err(Error::shape(format!(
            "triple component lengths differ: heads {}, rels {}, tails {}",
            heads.len(),
            rels.len(),
            tails.len()
        )));
    }
    let m = heads.len();
    let cols = num_entities + num_relations;
    let tail_coeff = match tail_sign {
        TailSign::Negative => -1.0,
        TailSign::Positive => 1.0,
    };
    let mut coo = CooMatrix::with_capacity(m, cols, 3 * m);
    for i in 0..m {
        let (h, r, t) = (heads[i] as usize, rels[i] as usize, tails[i] as usize);
        check_entity(h, num_entities, i)?;
        check_entity(t, num_entities, i)?;
        if r >= num_relations {
            return Err(Error::IndexOutOfBounds {
                row: i,
                col: num_entities + r,
                rows: m,
                cols,
            });
        }
        coo.push_unchecked(i, h, 1.0);
        coo.push_unchecked(i, num_entities + r, 1.0);
        coo.push_unchecked(i, t, tail_coeff);
    }
    Ok(coo.to_csr())
}

fn check_entity(idx: usize, num_entities: usize, row: usize) -> Result<()> {
    if idx >= num_entities {
        Err(Error::IndexOutOfBounds {
            row,
            col: idx,
            rows: 0,
            cols: num_entities,
        })
    } else {
        Ok(())
    }
}

/// A forward incidence matrix paired with its cached transpose.
///
/// SparseTransX training reuses each mini-batch's incidence matrix every
/// epoch; the backward pass needs `Aᵀ` (Appendix G), so both are materialized
/// once and kept together.
#[derive(Debug, Clone, PartialEq)]
pub struct IncidencePair {
    /// Forward matrix `A` (`M × cols`).
    pub forward: CsrMatrix,
    /// Cached transpose `Aᵀ` (`cols × M`).
    pub transpose: CsrMatrix,
    /// Sorted, deduplicated nonzero columns of `A` — the embedding rows this
    /// batch touches. Cached once per pair (the same `O(cols)` pass the
    /// transpose construction already pays) so the backward pass and the
    /// touched-row gradient contract never rescan the matrix.
    touched: Vec<u32>,
}

impl IncidencePair {
    /// Builds the pair from a forward matrix.
    pub fn new(forward: CsrMatrix) -> Self {
        let transpose = forward.transpose();
        // Occupied rows of Aᵀ == nonzero columns of A, read in O(cols) off
        // the transpose's indptr instead of an O(nnz log nnz) sort.
        let touched = transpose.occupied_rows();
        Self {
            forward,
            transpose,
            touched,
        }
    }

    /// Number of triplets (rows of the forward matrix).
    pub fn num_triples(&self) -> usize {
        self.forward.rows()
    }

    /// Sorted, deduplicated column indices of `forward` with at least one
    /// nonzero — exactly the parameter rows whose gradients a batch using
    /// this incidence matrix can touch. Consumers union it into their
    /// `RowSet`s per batch.
    pub fn touched_columns(&self) -> &[u32] {
        &self.touched
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spmm::csr_spmm;
    use crate::DenseMatrix;

    #[test]
    fn ht_computes_head_minus_tail() {
        // 4 entities, embeddings are rows of E.
        let e = DenseMatrix::from_rows(&[[1.0, 0.0], [2.0, 1.0], [4.0, 4.0], [8.0, -1.0]]);
        let a = ht(4, &[0, 2], &[1, 3]).unwrap();
        let c = csr_spmm(&a, &e);
        assert_eq!(c.row(0), &[-1.0, -1.0]); // e0 - e1
        assert_eq!(c.row(1), &[-4.0, 5.0]); // e2 - e3
    }

    #[test]
    fn hrt_computes_head_plus_rel_minus_tail() {
        // 3 entities, 2 relations; stacked embedding matrix is 5 x 2.
        let stacked = DenseMatrix::from_rows(&[
            [1.0, 0.0],  // e0
            [0.0, 1.0],  // e1
            [2.0, 2.0],  // e2
            [10.0, 0.0], // r0
            [0.0, 10.0], // r1
        ]);
        let a = hrt(3, 2, &[0, 2], &[1, 0], &[1, 0], TailSign::Negative).unwrap();
        let c = csr_spmm(&a, &stacked);
        assert_eq!(c.row(0), &[1.0, 9.0]); // e0 + r1 - e1
        assert_eq!(c.row(1), &[11.0, 2.0]); // e2 + r0 - e0
    }

    #[test]
    fn each_row_has_expected_nnz() {
        let a = ht(10, &[1, 2, 3], &[4, 5, 6]).unwrap();
        for i in 0..3 {
            assert_eq!(a.row(i).count(), 2);
        }
        let a = hrt(10, 4, &[1], &[0], &[2], TailSign::Negative).unwrap();
        assert_eq!(a.row(0).count(), 3);
        assert_eq!(a.nnz(), 3);
    }

    #[test]
    fn self_loop_collapses_exactly() {
        // head == tail: +1 and -1 on the same column sum to zero.
        let a = ht(5, &[2], &[2]).unwrap();
        let e = DenseMatrix::from_rows(&[[1.0], [2.0], [3.0], [4.0], [5.0]]);
        let c = csr_spmm(&a, &e);
        assert_eq!(c.row(0), &[0.0]);
    }

    #[test]
    fn positive_tail_sign_for_product_semirings() {
        let a = hrt(3, 1, &[0], &[0], &[1], TailSign::Positive).unwrap();
        let vals: Vec<f32> = a.row(0).map(|(_, v)| v).collect();
        assert_eq!(vals, vec![1.0, 1.0, 1.0]);
    }

    #[test]
    fn bounds_are_validated() {
        assert!(matches!(
            ht(3, &[3], &[0]),
            Err(Error::IndexOutOfBounds { .. })
        ));
        assert!(matches!(
            ht(3, &[0], &[9]),
            Err(Error::IndexOutOfBounds { .. })
        ));
        assert!(matches!(
            hrt(3, 2, &[0], &[2], &[1], TailSign::Negative),
            Err(Error::IndexOutOfBounds { .. })
        ));
        assert!(matches!(
            ht(3, &[0, 1], &[0]),
            Err(Error::ShapeMismatch { .. })
        ));
        assert!(matches!(
            hrt(3, 2, &[0], &[0, 1], &[1], TailSign::Negative),
            Err(Error::ShapeMismatch { .. })
        ));
    }

    #[test]
    fn incidence_pair_caches_transpose() {
        let a = hrt(5, 2, &[0, 1], &[0, 1], &[2, 3], TailSign::Negative).unwrap();
        let pair = IncidencePair::new(a.clone());
        assert_eq!(pair.num_triples(), 2);
        assert_eq!(pair.transpose, a.transpose());
    }

    #[test]
    fn incidence_pair_caches_touched_columns() {
        // Triples (0, r0, 2) and (1, r1, 3) over 5 entities + 2 relations:
        // columns 0..=3 plus relation columns 5 and 6; entity 4 untouched.
        let a = hrt(5, 2, &[0, 1], &[0, 1], &[2, 3], TailSign::Negative).unwrap();
        let pair = IncidencePair::new(a.clone());
        assert_eq!(pair.touched_columns(), &[0, 1, 2, 3, 5, 6]);
        assert_eq!(pair.touched_columns(), a.nonzero_columns());
    }
}
