//! Quickstart: train sparse TransE on a synthetic knowledge graph, watch the
//! loss fall, and run filtered link-prediction evaluation.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use kg::eval::EvalConfig;
use kg::synthetic::SyntheticKgBuilder;
use sptransx::{SpTransE, TrainConfig, Trainer};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A synthetic KG: 500 entities, 12 relations, 4000 triples with
    //    Zipf-distributed entity popularity (see kg::synthetic for knobs).
    let dataset = SyntheticKgBuilder::new(500, 12)
        .triples(4_000)
        .valid_frac(0.05)
        .test_frac(0.10)
        .seed(7)
        .build();
    println!(
        "dataset: {} entities, {} relations, {} train / {} test triples",
        dataset.num_entities,
        dataset.num_relations,
        dataset.train.len(),
        dataset.test.len()
    );

    // 2. Configure training. The paper's optimizer settings are the
    //    defaults; we raise the learning rate for a short demo run.
    let config = TrainConfig {
        epochs: 200,
        batch_size: 512,
        dim: 32,
        lr: 0.5,
        margin: 1.0,
        ..Default::default()
    };

    // 3. One SpMM per batch side computes every h + r - t expression; the
    //    backward pass is a second SpMM with the cached transpose.
    let model = SpTransE::from_config(&dataset, &config)?;
    let mut trainer = Trainer::new(model, &dataset, &config)?;
    let report = trainer.run()?;

    println!(
        "\nloss: first epoch {:.4} -> last epoch {:.4}",
        report.epoch_losses.first().copied().unwrap_or(0.0),
        report.epoch_losses.last().copied().unwrap_or(0.0)
    );
    println!(
        "time: {:.2}s total (forward {:.2}s, backward {:.2}s, step {:.2}s)",
        report.wall.as_secs_f64(),
        report.breakdown.forward.as_secs_f64(),
        report.breakdown.backward.as_secs_f64(),
        report.breakdown.step.as_secs_f64()
    );
    println!(
        "peak tensor memory: {:.2} MiB, SpMM calls: {}, GFLOPs: {:.3}",
        report.peak_memory_bytes as f64 / (1024.0 * 1024.0),
        report.spmm_calls,
        report.flops as f64 / 1e9
    );

    // 4. Filtered link prediction (Hits@K / MRR / mean rank).
    let eval = trainer.evaluate(&dataset, &EvalConfig::default());
    println!("\nlink prediction over {} queries:", eval.queries);
    for (k, h) in eval.ks.iter().zip(&eval.hits_at) {
        println!("  filtered Hits@{k}: {h:.3}");
    }
    println!("  MRR: {:.3}, mean rank: {:.1}", eval.mrr, eval.mean_rank);
    Ok(())
}
