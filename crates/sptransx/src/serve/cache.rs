//! Exact LRU cache for hot query results.
//!
//! Zipf-skewed serving traffic concentrates on a small set of hot
//! (entity, relation) pairs, so a modest result cache absorbs a large share
//! of queries. This is a *real* cache (it stores answers), but its
//! replacement policy is plain LRU so its hit behaviour can be
//! cross-validated against the `simcache` hit-rate model: replaying the same
//! key stream through a fully-associative `simcache::Cache` (one set,
//! `ways == capacity`, one distinct address per distinct key) must predict
//! exactly the hit count reported by [`QueryCache::stats`]. The serving
//! tests pin that equivalence.

use std::collections::HashMap;

/// Cache key: `(direction, entity, relation, k, nprobe)`.
///
/// `k` and `nprobe` are part of the key because answers differ across them;
/// two queries agreeing on all five fields are by construction answered
/// identically (the whole pipeline is deterministic), so serving a cached
/// answer never changes observable results.
pub type QueryKey = (u8, u32, u32, u32, u32);

/// Hit/miss counters for a [`QueryCache`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QueryCacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that missed.
    pub misses: u64,
}

impl QueryCacheStats {
    /// Hits over total lookups (0 when no lookups happened).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// Doubly-linked LRU list node backed by a slab (`usize::MAX` = null).
#[derive(Debug)]
struct Node {
    key: QueryKey,
    value: Vec<(u32, f32)>,
    prev: usize,
    next: usize,
}

const NIL: usize = usize::MAX;

/// A fixed-capacity exact-LRU map from [`QueryKey`] to top-K answers.
///
/// Lookup and insert are O(1): a `HashMap` finds the slab slot, and an
/// intrusive doubly-linked list maintains recency order.
#[derive(Debug)]
pub struct QueryCache {
    map: HashMap<QueryKey, usize>,
    slab: Vec<Node>,
    /// Most-recently-used node.
    head: usize,
    /// Least-recently-used node (the eviction victim).
    tail: usize,
    capacity: usize,
    stats: QueryCacheStats,
}

impl QueryCache {
    /// Creates a cache holding at most `capacity` answers (min 1).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        Self {
            map: HashMap::with_capacity(capacity),
            slab: Vec::with_capacity(capacity),
            head: NIL,
            tail: NIL,
            capacity,
            stats: QueryCacheStats::default(),
        }
    }

    /// Maximum number of cached answers.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current number of cached answers.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Hit/miss counters accumulated by [`QueryCache::get`].
    pub fn stats(&self) -> QueryCacheStats {
        self.stats
    }

    /// Looks up `key`, counting a hit or miss and refreshing recency on hit.
    pub fn get(&mut self, key: &QueryKey) -> Option<&[(u32, f32)]> {
        match self.map.get(key).copied() {
            Some(idx) => {
                self.stats.hits += 1;
                self.detach(idx);
                self.attach_front(idx);
                Some(&self.slab[idx].value)
            }
            None => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// Inserts (or refreshes) `key`, evicting the least-recently-used entry
    /// when at capacity.
    pub fn insert(&mut self, key: QueryKey, value: Vec<(u32, f32)>) {
        if let Some(&idx) = self.map.get(&key) {
            self.slab[idx].value = value;
            self.detach(idx);
            self.attach_front(idx);
            return;
        }
        let idx = if self.map.len() < self.capacity {
            self.slab.push(Node {
                key,
                value,
                prev: NIL,
                next: NIL,
            });
            self.slab.len() - 1
        } else {
            // Reuse the LRU victim's slot.
            let victim = self.tail;
            self.detach(victim);
            self.map.remove(&self.slab[victim].key);
            self.slab[victim].key = key;
            self.slab[victim].value = value;
            victim
        };
        self.map.insert(key, idx);
        self.attach_front(idx);
    }

    /// Unlinks `idx` from the recency list.
    fn detach(&mut self, idx: usize) {
        let (prev, next) = (self.slab[idx].prev, self.slab[idx].next);
        if prev != NIL {
            self.slab[prev].next = next;
        } else if self.head == idx {
            self.head = next;
        }
        if next != NIL {
            self.slab[next].prev = prev;
        } else if self.tail == idx {
            self.tail = prev;
        }
        self.slab[idx].prev = NIL;
        self.slab[idx].next = NIL;
    }

    /// Links `idx` as the most-recently-used node.
    fn attach_front(&mut self, idx: usize) {
        self.slab[idx].prev = NIL;
        self.slab[idx].next = self.head;
        if self.head != NIL {
            self.slab[self.head].prev = idx;
        }
        self.head = idx;
        if self.tail == NIL {
            self.tail = idx;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(e: u32) -> QueryKey {
        (0, e, 0, 10, 4)
    }

    #[test]
    fn hit_after_insert_miss_before() {
        let mut c = QueryCache::new(4);
        assert!(c.get(&key(1)).is_none());
        c.insert(key(1), vec![(7, 0.5)]);
        assert_eq!(c.get(&key(1)), Some(&[(7, 0.5)][..]));
        assert_eq!(c.stats(), QueryCacheStats { hits: 1, misses: 1 });
    }

    #[test]
    fn evicts_least_recently_used() {
        let mut c = QueryCache::new(2);
        c.insert(key(1), vec![]);
        c.insert(key(2), vec![]);
        // Touch 1 so 2 becomes the LRU victim.
        assert!(c.get(&key(1)).is_some());
        c.insert(key(3), vec![]);
        assert!(c.get(&key(2)).is_none(), "2 should have been evicted");
        assert!(c.get(&key(1)).is_some());
        assert!(c.get(&key(3)).is_some());
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn reinsert_refreshes_value_and_recency() {
        let mut c = QueryCache::new(2);
        c.insert(key(1), vec![(1, 1.0)]);
        c.insert(key(2), vec![]);
        c.insert(key(1), vec![(9, 9.0)]);
        c.insert(key(3), vec![]);
        // 2 was LRU after 1's refresh.
        assert!(c.get(&key(2)).is_none());
        assert_eq!(c.get(&key(1)), Some(&[(9, 9.0)][..]));
    }

    #[test]
    fn capacity_one_cycles() {
        let mut c = QueryCache::new(1);
        for e in 0..10 {
            c.insert(key(e), vec![]);
            assert!(c.get(&key(e)).is_some());
            if e > 0 {
                assert!(c.get(&key(e - 1)).is_none());
            }
        }
        assert_eq!(c.len(), 1);
    }
}
