//! Sparse TransR (paper §4.4).
//!
//! TransR projects entities into a relation-specific space before
//! translating: `‖Mᵣh + r − Mᵣt‖`. The paper's rearrangement
//! `Mᵣ(h − t) + r` lets the sparse variant compute all `h − t` expressions
//! with one `ht` SpMM and apply **one** projection per triple, where the
//! dense baseline projects head and tail separately (two projections).

use kg::eval::TripleScorer;
use kg::{BatchPlan, Dataset};
use tensor::{init, Graph, ParamId, ParamStore, Var};

use crate::model::{KgeModel, Norm, TrainConfig};
use crate::models::{build_ht_caches, HtCache};
use crate::Result;

/// The SpTransX TransR model.
///
/// Parameters: entity embeddings `(N, d)`, relation embeddings `(R, k)`, and
/// per-relation projection matrices `(R, k·d)` (each row a `k × d` matrix),
/// initialized to identity blocks as in the original TransR.
///
/// # Examples
///
/// ```
/// use kg::synthetic::SyntheticKgBuilder;
/// use sptransx::{SpTransR, TrainConfig};
///
/// let ds = SyntheticKgBuilder::new(40, 3).triples(200).seed(1).build();
/// let config = TrainConfig { dim: 8, rel_dim: 4, ..Default::default() };
/// let model = SpTransR::from_config(&ds, &config)?;
/// assert_eq!(model.rel_dim(), 4);
/// # Ok::<(), sptransx::Error>(())
/// ```
#[derive(Debug)]
pub struct SpTransR {
    store: ParamStore,
    ent: ParamId,
    rel: ParamId,
    mats: ParamId,
    num_entities: usize,
    num_relations: usize,
    dim: usize,
    rel_dim: usize,
    norm: Norm,
    batches: Vec<HtCache>,
}

impl SpTransR {
    /// Initializes the model for a dataset.
    ///
    /// # Errors
    ///
    /// Returns [`crate::Error::Config`] for invalid hyperparameters.
    pub fn from_config(dataset: &Dataset, config: &TrainConfig) -> Result<Self> {
        config.validate()?;
        let (n, r) = (dataset.num_entities, dataset.num_relations);
        let (d, k) = (config.dim, config.rel_dim);
        let mut store = ParamStore::new();
        let ent = store.add_param("entities", init::xavier_normalized(n, d, config.seed));
        let rel = store.add_param(
            "relations",
            init::xavier_translational(r, k, config.seed + 1),
        );
        let mats = store.add_param("projections", init::stacked_identity(r, k, d));
        Ok(Self {
            store,
            ent,
            rel,
            mats,
            num_entities: n,
            num_relations: r,
            dim: d,
            rel_dim: k,
            norm: match config.norm {
                Norm::TorusL1 | Norm::TorusL2 => Norm::L2, // torus metrics are TorusE-only
                other => other,
            },
            batches: Vec::new(),
        })
    }

    /// Entity embedding dimension.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Relation-space dimension.
    pub fn rel_dim(&self) -> usize {
        self.rel_dim
    }

    /// Number of relations.
    pub fn num_relations(&self) -> usize {
        self.num_relations
    }

    /// Handles to `(entities, relations, projections)` parameters.
    pub fn params(&self) -> (ParamId, ParamId, ParamId) {
        (self.ent, self.rel, self.mats)
    }

    /// Projects `vec` (length `d`) with relation `r`'s matrix into the
    /// relation space (length `k`) — evaluation helper.
    fn project(&self, rel: usize, vec: &[f32]) -> Vec<f32> {
        let mats = self.store.value(self.mats);
        let mat = mats.row(rel);
        let (k, d) = (self.rel_dim, self.dim);
        (0..k)
            .map(|o| {
                let row = &mat[o * d..(o + 1) * d];
                row.iter().zip(vec).map(|(m, v)| m * v).sum()
            })
            .collect()
    }
}

impl KgeModel for SpTransR {
    fn name(&self) -> &'static str {
        "SpTransR"
    }

    fn store(&self) -> &ParamStore {
        &self.store
    }

    fn store_mut(&mut self) -> &mut ParamStore {
        &mut self.store
    }

    fn attach_plan(&mut self, plan: &BatchPlan) -> Result<()> {
        self.batches = build_ht_caches(plan, self.num_entities)?;
        Ok(())
    }

    fn num_batches(&self) -> usize {
        self.batches.len()
    }

    fn score_batch(&self, g: &mut Graph, batch_idx: usize) -> (Var, Var) {
        let cache = &self.batches[batch_idx];
        let side = |g: &mut Graph,
                    pair: &std::sync::Arc<sparse::incidence::IncidencePair>,
                    rels: &std::sync::Arc<Vec<u32>>| {
            // Mᵣ(h − t) + r, one SpMM + one projection per triple. Relation
            // index lists are Arc-shared with the tape (no per-batch copy).
            let ht = g.spmm(&self.store, self.ent, pair.clone());
            let proj = g.project_rows(&self.store, self.mats, ht, rels.clone(), self.rel_dim);
            let r = g.gather(&self.store, self.rel, rels.clone());
            let expr = g.add(proj, r);
            self.norm.apply(g, expr)
        };
        let pos = side(g, &cache.pos, &cache.pos_rels);
        let neg = side(g, &cache.neg, &cache.neg_rels);
        (pos, neg)
    }

    fn end_epoch(&mut self) {
        crate::model::normalize_leading_rows(&mut self.store, self.ent, self.num_entities);
    }
}

impl TripleScorer for SpTransR {
    fn score_tails(&self, head: u32, rel: u32) -> Vec<f32> {
        let ent = self.store.value(self.ent);
        let r_emb = self.store.value(self.rel);
        let ph = self.project(rel as usize, ent.row(head as usize));
        // score(t) = ‖(Mᵣh + r) − Mᵣt‖.
        let query: Vec<f32> = ph
            .iter()
            .zip(r_emb.row(rel as usize))
            .map(|(a, b)| a + b)
            .collect();
        (0..self.num_entities)
            .map(|t| {
                let pt = self.project(rel as usize, ent.row(t));
                self.norm.distance(&query, &pt)
            })
            .collect()
    }

    fn score_heads(&self, rel: u32, tail: u32) -> Vec<f32> {
        let ent = self.store.value(self.ent);
        let r_emb = self.store.value(self.rel);
        let pt = self.project(rel as usize, ent.row(tail as usize));
        // score(h) = ‖Mᵣh − (Mᵣt − r)‖.
        let query: Vec<f32> = pt
            .iter()
            .zip(r_emb.row(rel as usize))
            .map(|(a, b)| a - b)
            .collect();
        (0..self.num_entities)
            .map(|h| {
                let ph = self.project(rel as usize, ent.row(h));
                self.norm.distance(&ph, &query)
            })
            .collect()
    }

    fn num_entities(&self) -> usize {
        self.num_entities
    }
}

impl kg::eval::BatchScorer for SpTransR {
    fn num_entities(&self) -> usize {
        self.num_entities
    }

    fn score_tails_into(&self, queries: &[(u32, u32)], out: &mut [f32]) {
        crate::scorer::projected_scores_into(
            self.store.value(self.ent).as_slice(),
            self.store.value(self.rel).as_slice(),
            self.store.value(self.mats).as_slice(),
            self.num_entities,
            self.dim,
            self.rel_dim,
            self.norm,
            queries,
            crate::scorer::QueryDir::Tails,
            out,
        );
    }

    fn score_heads_into(&self, queries: &[(u32, u32)], out: &mut [f32]) {
        crate::scorer::projected_scores_into(
            self.store.value(self.ent).as_slice(),
            self.store.value(self.rel).as_slice(),
            self.store.value(self.mats).as_slice(),
            self.num_entities,
            self.dim,
            self.rel_dim,
            self.norm,
            queries,
            crate::scorer::QueryDir::Heads,
            out,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kg::synthetic::SyntheticKgBuilder;
    use kg::UniformSampler;

    fn setup() -> (Dataset, SpTransR, BatchPlan) {
        let ds = SyntheticKgBuilder::new(40, 4).triples(300).seed(6).build();
        let config = TrainConfig {
            dim: 8,
            rel_dim: 4,
            batch_size: 64,
            ..Default::default()
        };
        let model = SpTransR::from_config(&ds, &config).unwrap();
        let sampler = UniformSampler::new(ds.num_entities);
        let plan = BatchPlan::build(&ds.train, &ds.all_known(), &sampler, 64, 8);
        (ds, model, plan)
    }

    #[test]
    fn identity_projection_reduces_to_transe_form() {
        // With identity Mᵣ (the init) and k == d, score = ‖(h − t) + r‖.
        let ds = SyntheticKgBuilder::new(30, 2).triples(150).seed(7).build();
        let config = TrainConfig {
            dim: 6,
            rel_dim: 6,
            batch_size: 32,
            ..Default::default()
        };
        let mut model = SpTransR::from_config(&ds, &config).unwrap();
        let sampler = UniformSampler::new(ds.num_entities);
        let plan = BatchPlan::build(&ds.train, &ds.all_known(), &sampler, 32, 9);
        model.attach_plan(&plan).unwrap();
        let mut g = Graph::new();
        let (pos, _) = model.score_batch(&mut g, 0);
        let batch = plan.batch(0);
        let (ent_id, rel_id, _) = model.params();
        let ent = model.store().value(ent_id);
        let rel = model.store().value(rel_id);
        for i in 0..batch.len().min(8) {
            let t = batch.pos.get(i);
            let mut dist = 0.0f32;
            for j in 0..6 {
                let v = ent.get(t.head as usize, j) - ent.get(t.tail as usize, j)
                    + rel.get(t.rel as usize, j);
                dist += v * v;
            }
            assert!((g.value(pos).get(i, 0) - dist.sqrt()).abs() < 1e-4);
        }
    }

    #[test]
    fn projection_shape_is_rel_dim() {
        let (_, mut model, plan) = setup();
        model.attach_plan(&plan).unwrap();
        let mut g = Graph::new();
        let (pos, neg) = model.score_batch(&mut g, 0);
        assert_eq!(g.value(pos).shape(), (plan.batch(0).len(), 1));
        assert_eq!(g.value(neg).shape(), (plan.batch(0).len(), 1));
    }

    #[test]
    fn gradients_reach_all_three_params() {
        let (_, mut model, plan) = setup();
        model.attach_plan(&plan).unwrap();
        let mut g = Graph::new();
        let (pos, neg) = model.score_batch(&mut g, 0);
        let loss = g.margin_ranking_loss(pos, neg, 5.0); // large margin: all active
        g.backward(loss, model.store_mut());
        let (ent, rel, mats) = model.params();
        assert!(model.store().grad(ent).frobenius_norm() > 0.0);
        assert!(model.store().grad(rel).frobenius_norm() > 0.0);
        assert!(model.store().grad(mats).frobenius_norm() > 0.0);
    }

    #[test]
    fn scorer_is_consistent_with_forward() {
        let (_, mut model, plan) = setup();
        model.attach_plan(&plan).unwrap();
        let mut g = Graph::new();
        let (pos, _) = model.score_batch(&mut g, 0);
        let batch = plan.batch(0);
        let t = batch.pos.get(0);
        let tails = model.score_tails(t.head, t.rel);
        assert!((tails[t.tail as usize] - g.value(pos).get(0, 0)).abs() < 1e-3);
        let heads = model.score_heads(t.rel, t.tail);
        assert!((heads[t.head as usize] - g.value(pos).get(0, 0)).abs() < 1e-3);
    }
}
