//! Optimizers and learning-rate scheduling.
//!
//! The paper trains with a fixed learning rate of `4e-4` (§5.3) and, in
//! Appendix E, adds a learning-rate scheduler for the accuracy comparison.
//! All optimizers operate directly on a [`ParamStore`]; state (Adam moments,
//! Adagrad accumulators) is keyed by parameter index and allocated lazily.

use xparallel::PoolHandle;

use crate::{ParamStore, Tensor};

/// A first-order optimizer over a [`ParamStore`].
///
/// Implementors read accumulated gradients and update parameter values in
/// place; [`step`](Optimizer::step) does **not** zero gradients — call
/// [`ParamStore::zero_grads`] per batch, as PyTorch does.
pub trait Optimizer {
    /// Applies one update using the gradients currently in `store`.
    fn step(&mut self, store: &mut ParamStore);

    /// Current learning rate.
    fn learning_rate(&self) -> f32;

    /// Overrides the learning rate (used by schedulers).
    fn set_learning_rate(&mut self, lr: f32);
}

/// Plain stochastic gradient descent: `p ← p − lr · g`.
///
/// The update is elementwise, so it is sharded over parameter rows on the
/// optimizer's [`PoolHandle`] (see [`Sgd::with_pool`]); results are
/// bit-identical at any pool width. This is the paper's optimizer-step
/// phase (Table 1), parallelized.
///
/// # Examples
///
/// ```
/// use tensor::optim::{Optimizer, Sgd};
/// use tensor::{ParamStore, Tensor};
///
/// let mut store = ParamStore::new();
/// let p = store.add_param("w", Tensor::full(1, 1, 1.0));
/// store.grad_mut(p).set(0, 0, 0.5);
/// Sgd::new(0.1).step(&mut store);
/// assert!((store.value(p).get(0, 0) - 0.95).abs() < 1e-6);
/// ```
#[derive(Debug, Clone)]
pub struct Sgd {
    lr: f32,
    pool: PoolHandle,
}

impl Sgd {
    /// Creates SGD with learning rate `lr`, stepping on the global pool.
    pub fn new(lr: f32) -> Self {
        Self {
            lr,
            pool: PoolHandle::global(),
        }
    }

    /// Dispatches parameter updates on an explicit pool handle (sequential
    /// inside data-parallel workers; pinned widths for determinism audits).
    #[must_use]
    pub fn with_pool(mut self, pool: PoolHandle) -> Self {
        self.pool = pool;
        self
    }
}

impl Optimizer for Sgd {
    fn step(&mut self, store: &mut ParamStore) {
        let lr = self.lr;
        for (_, value, grad) in store.iter_mut() {
            value.add_scaled_with(&self.pool, grad, -lr);
        }
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f32) {
        self.lr = lr;
    }
}

/// Adagrad: per-coordinate adaptive learning rates.
#[derive(Debug, Clone)]
pub struct Adagrad {
    lr: f32,
    eps: f32,
    accum: Vec<Option<Tensor>>,
}

impl Adagrad {
    /// Creates Adagrad with learning rate `lr` and stability epsilon `1e-10`.
    pub fn new(lr: f32) -> Self {
        Self {
            lr,
            eps: 1e-10,
            accum: Vec::new(),
        }
    }
}

impl Optimizer for Adagrad {
    fn step(&mut self, store: &mut ParamStore) {
        let (lr, eps) = (self.lr, self.eps);
        let n = store.len();
        self.accum.resize_with(n, || None);
        for (id, value, grad) in store.iter_mut() {
            let acc = self.accum[id_index(id)]
                .get_or_insert_with(|| Tensor::zeros(value.rows(), value.cols()));
            let (vd, gd, ad) = (value.as_mut_slice(), grad.as_slice(), acc.as_mut_slice());
            for i in 0..vd.len() {
                let g = gd[i];
                let a = ad[i] + g * g;
                ad[i] = a;
                vd[i] -= lr * g / (a.sqrt() + eps);
            }
        }
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f32) {
        self.lr = lr;
    }
}

/// Adam (Kingma & Ba) with bias correction.
#[derive(Debug, Clone)]
pub struct Adam {
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    t: u64,
    moments: Vec<Option<(Tensor, Tensor)>>,
}

impl Adam {
    /// Creates Adam with the standard hyperparameters `β₁=0.9, β₂=0.999`.
    pub fn new(lr: f32) -> Self {
        Self {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            t: 0,
            moments: Vec::new(),
        }
    }

    /// Overrides the exponential decay rates.
    pub fn with_betas(mut self, beta1: f32, beta2: f32) -> Self {
        self.beta1 = beta1;
        self.beta2 = beta2;
        self
    }
}

impl Optimizer for Adam {
    fn step(&mut self, store: &mut ParamStore) {
        self.t += 1;
        let (lr, b1, b2, eps, t) = (self.lr, self.beta1, self.beta2, self.eps, self.t);
        let bias1 = 1.0 - b1.powi(t as i32);
        let bias2 = 1.0 - b2.powi(t as i32);
        let n = store.len();
        self.moments.resize_with(n, || None);
        for (id, value, grad) in store.iter_mut() {
            let (m, v) = self.moments[id_index(id)].get_or_insert_with(|| {
                (
                    Tensor::zeros(value.rows(), value.cols()),
                    Tensor::zeros(value.rows(), value.cols()),
                )
            });
            let (vd, gd) = (value.as_mut_slice(), grad.as_slice());
            let (md, sd) = (m.as_mut_slice(), v.as_mut_slice());
            for i in 0..vd.len() {
                let g = gd[i];
                md[i] = b1 * md[i] + (1.0 - b1) * g;
                sd[i] = b2 * sd[i] + (1.0 - b2) * g * g;
                let mhat = md[i] / bias1;
                let vhat = sd[i] / bias2;
                vd[i] -= lr * mhat / (vhat.sqrt() + eps);
            }
        }
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f32) {
        self.lr = lr;
    }
}

fn id_index(id: crate::ParamId) -> usize {
    // ParamStore hands out ids densely, so the index doubles as a state key.
    id.index()
}

/// Multiplicative step decay: every `step_size` epochs, `lr ← lr · gamma`
/// (the Appendix E scheduler).
#[derive(Debug, Clone)]
pub struct StepLr {
    base_lr: f32,
    step_size: u32,
    gamma: f32,
}

impl StepLr {
    /// Creates a scheduler decaying by `gamma` every `step_size` epochs.
    ///
    /// # Panics
    ///
    /// Panics if `step_size == 0`.
    pub fn new(base_lr: f32, step_size: u32, gamma: f32) -> Self {
        assert!(step_size > 0, "step_size must be positive");
        Self {
            base_lr,
            step_size,
            gamma,
        }
    }

    /// Learning rate for a zero-based `epoch`.
    pub fn lr_at(&self, epoch: u32) -> f32 {
        self.base_lr * self.gamma.powi((epoch / self.step_size) as i32)
    }

    /// Applies the schedule to an optimizer for the given epoch.
    pub fn apply(&self, opt: &mut dyn Optimizer, epoch: u32) {
        opt.set_learning_rate(self.lr_at(epoch));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quadratic_store() -> (ParamStore, crate::ParamId) {
        let mut s = ParamStore::new();
        let p = s.add_param("x", Tensor::full(1, 1, 4.0));
        (s, p)
    }

    /// Minimizes f(x) = x² with analytic gradient 2x.
    fn run_steps(opt: &mut dyn Optimizer, store: &mut ParamStore, p: crate::ParamId, n: u32) {
        for _ in 0..n {
            store.zero_grads();
            let x = store.value(p).get(0, 0);
            store.grad_mut(p).set(0, 0, 2.0 * x);
            opt.step(store);
        }
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        let (mut s, p) = quadratic_store();
        let mut opt = Sgd::new(0.1);
        run_steps(&mut opt, &mut s, p, 100);
        assert!(s.value(p).get(0, 0).abs() < 1e-3);
    }

    #[test]
    fn adagrad_converges_on_quadratic() {
        let (mut s, p) = quadratic_store();
        let mut opt = Adagrad::new(1.0);
        run_steps(&mut opt, &mut s, p, 300);
        assert!(s.value(p).get(0, 0).abs() < 0.05);
    }

    #[test]
    fn adam_converges_on_quadratic() {
        let (mut s, p) = quadratic_store();
        let mut opt = Adam::new(0.2);
        run_steps(&mut opt, &mut s, p, 300);
        assert!(s.value(p).get(0, 0).abs() < 0.01);
    }

    #[test]
    fn step_lr_decays() {
        let sched = StepLr::new(1.0, 10, 0.5);
        assert_eq!(sched.lr_at(0), 1.0);
        assert_eq!(sched.lr_at(9), 1.0);
        assert_eq!(sched.lr_at(10), 0.5);
        assert_eq!(sched.lr_at(25), 0.25);
        let mut opt = Sgd::new(1.0);
        sched.apply(&mut opt, 30);
        assert!((opt.learning_rate() - 0.125).abs() < 1e-7);
    }

    #[test]
    fn sgd_lr_is_settable() {
        let mut opt = Sgd::new(0.5);
        assert_eq!(opt.learning_rate(), 0.5);
        opt.set_learning_rate(0.1);
        assert_eq!(opt.learning_rate(), 0.1);
    }
}
