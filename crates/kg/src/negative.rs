//! Negative sampling.
//!
//! Margin-ranking training needs one corrupted triple per positive. The paper
//! pre-generates negatives outside the training loop (§5.3); the samplers
//! here produce whole negative stores in one deterministic pass.
//!
//! Two strategies are provided:
//!
//! * [`UniformSampler`] — corrupt head or tail with probability ½ each,
//!   replacement drawn uniformly (the TransE paper's scheme).
//! * [`BernoulliSampler`] — corrupt-side probability depends on the
//!   relation's tails-per-head / heads-per-tail statistics (the TransH
//!   paper's scheme, reducing false negatives for 1-N / N-1 relations).

use std::collections::HashMap;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::{Triple, TripleSet, TripleStore};

/// A strategy for corrupting positive triples into negatives.
pub trait NegativeSampler {
    /// Produces one negative per positive triple in `positives`.
    ///
    /// Sampled corruptions that collide with a known triple in `known` are
    /// re-drawn (up to a bounded number of attempts) to avoid false
    /// negatives.
    fn corrupt(&self, positives: &TripleStore, known: &TripleSet, seed: u64) -> TripleStore;
}

/// Uniform corruption: pick head or tail with probability ½ and replace it
/// with a uniform random entity.
///
/// # Examples
///
/// ```
/// use kg::{NegativeSampler, Triple, TripleSet, TripleStore, UniformSampler};
///
/// let pos: TripleStore = [Triple::new(0, 0, 1)].into_iter().collect();
/// let known = TripleSet::from_stores([&pos]);
/// let neg = UniformSampler::new(10).corrupt(&pos, &known, 7);
/// assert_eq!(neg.len(), 1);
/// assert!(!known.contains(&neg.get(0)));
/// ```
#[derive(Debug, Clone)]
pub struct UniformSampler {
    num_entities: usize,
}

impl UniformSampler {
    /// Creates a sampler over `num_entities` candidate replacements.
    ///
    /// # Panics
    ///
    /// Panics if `num_entities < 2`.
    pub fn new(num_entities: usize) -> Self {
        assert!(num_entities >= 2, "need at least two entities to corrupt");
        Self { num_entities }
    }
}

const MAX_REDRAWS: usize = 32;

fn corrupt_one(
    t: Triple,
    corrupt_head: bool,
    num_entities: usize,
    known: &TripleSet,
    rng: &mut StdRng,
) -> Triple {
    // Self-loop candidates (head == tail) are rejected alongside known
    // triples: they are degenerate negatives, and the incidence-matrix
    // formulation relies on the three triple components occupying three
    // distinct columns.
    let other = if corrupt_head { t.tail } else { t.head };
    for _ in 0..MAX_REDRAWS {
        let replacement = rng.gen_range(0..num_entities as u32);
        if replacement == other {
            continue;
        }
        let cand = if corrupt_head {
            Triple::new(replacement, t.rel, t.tail)
        } else {
            Triple::new(t.head, t.rel, replacement)
        };
        if cand != t && !known.contains(&cand) {
            return cand;
        }
    }
    // Dense graph corner: give up on known-triple filtering and return a
    // shifted replacement that still avoids the positive and self-loops.
    let base = if corrupt_head { t.head } else { t.tail };
    let mut replacement = (base + 1) % num_entities as u32;
    if replacement == other {
        replacement = (replacement + 1) % num_entities as u32;
    }
    if corrupt_head {
        Triple::new(replacement, t.rel, t.tail)
    } else {
        Triple::new(t.head, t.rel, replacement)
    }
}

impl NegativeSampler for UniformSampler {
    fn corrupt(&self, positives: &TripleStore, known: &TripleSet, seed: u64) -> TripleStore {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut out = TripleStore::with_capacity(positives.len());
        for t in positives.iter() {
            let corrupt_head = rng.gen_bool(0.5);
            out.push(corrupt_one(
                t,
                corrupt_head,
                self.num_entities,
                known,
                &mut rng,
            ));
        }
        out
    }
}

/// Bernoulli corruption (Wang et al., 2014): for each relation compute
/// `tph` (average tails per head) and `hpt` (average heads per tail), then
/// corrupt the **head** with probability `tph / (tph + hpt)`.
#[derive(Debug, Clone)]
pub struct BernoulliSampler {
    num_entities: usize,
    head_prob: HashMap<u32, f64>,
}

impl BernoulliSampler {
    /// Computes per-relation statistics from the training store.
    ///
    /// # Panics
    ///
    /// Panics if `num_entities < 2`.
    pub fn fit(train: &TripleStore, num_entities: usize) -> Self {
        assert!(num_entities >= 2, "need at least two entities to corrupt");
        // tails-per-head and heads-per-tail, per relation.
        let mut tails_of: HashMap<(u32, u32), u32> = HashMap::new(); // (rel, head) -> count
        let mut heads_of: HashMap<(u32, u32), u32> = HashMap::new(); // (rel, tail) -> count
        for t in train.iter() {
            *tails_of.entry((t.rel, t.head)).or_insert(0) += 1;
            *heads_of.entry((t.rel, t.tail)).or_insert(0) += 1;
        }
        let mut tph_sum: HashMap<u32, (u64, u64)> = HashMap::new(); // rel -> (sum, heads)
        for ((rel, _), c) in &tails_of {
            let e = tph_sum.entry(*rel).or_insert((0, 0));
            e.0 += u64::from(*c);
            e.1 += 1;
        }
        let mut hpt_sum: HashMap<u32, (u64, u64)> = HashMap::new();
        for ((rel, _), c) in &heads_of {
            let e = hpt_sum.entry(*rel).or_insert((0, 0));
            e.0 += u64::from(*c);
            e.1 += 1;
        }
        let mut head_prob = HashMap::new();
        for (rel, (sum, n)) in &tph_sum {
            let tph = *sum as f64 / (*n).max(1) as f64;
            let (hs, hn) = hpt_sum.get(rel).copied().unwrap_or((1, 1));
            let hpt = hs as f64 / hn.max(1) as f64;
            head_prob.insert(*rel, tph / (tph + hpt));
        }
        Self {
            num_entities,
            head_prob,
        }
    }

    /// The fitted probability of corrupting the head for `rel` (0.5 for
    /// unseen relations).
    pub fn head_probability(&self, rel: u32) -> f64 {
        self.head_prob.get(&rel).copied().unwrap_or(0.5)
    }
}

impl NegativeSampler for BernoulliSampler {
    fn corrupt(&self, positives: &TripleStore, known: &TripleSet, seed: u64) -> TripleStore {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut out = TripleStore::with_capacity(positives.len());
        for t in positives.iter() {
            let corrupt_head = rng.gen_bool(self.head_probability(t.rel));
            out.push(corrupt_one(
                t,
                corrupt_head,
                self.num_entities,
                known,
                &mut rng,
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chain(n: u32) -> TripleStore {
        (0..n).map(|i| Triple::new(i, 0, i + 1)).collect()
    }

    #[test]
    fn uniform_negatives_avoid_known() {
        let pos = chain(50);
        let known = TripleSet::from_stores([&pos]);
        let neg = UniformSampler::new(60).corrupt(&pos, &known, 1);
        assert_eq!(neg.len(), 50);
        for (i, n) in neg.iter().enumerate() {
            assert!(!known.contains(&n), "negative {i} collides");
            let p = pos.get(i);
            assert_eq!(n.rel, p.rel, "relation must be preserved");
            assert!(
                n.head == p.head || n.tail == p.tail,
                "only one side corrupted"
            );
        }
    }

    #[test]
    fn uniform_is_deterministic_per_seed() {
        let pos = chain(20);
        let known = TripleSet::from_stores([&pos]);
        let s = UniformSampler::new(30);
        assert_eq!(s.corrupt(&pos, &known, 5), s.corrupt(&pos, &known, 5));
        assert_ne!(s.corrupt(&pos, &known, 5), s.corrupt(&pos, &known, 6));
    }

    #[test]
    fn bernoulli_skews_toward_heads_for_one_to_many() {
        // Relation 0: entity 0 connects to tails 1..=40 (1-N). tph=40, hpt=1:
        // corrupting the head is very likely.
        let pos: TripleStore = (1..=40).map(|t| Triple::new(0, 0, t)).collect();
        let sampler = BernoulliSampler::fit(&pos, 64);
        assert!(sampler.head_probability(0) > 0.9);
        assert_eq!(sampler.head_probability(99), 0.5); // unseen relation
    }

    #[test]
    fn bernoulli_balanced_for_one_to_one() {
        let pos = chain(30); // each head one tail, each tail one head
        let sampler = BernoulliSampler::fit(&pos, 64);
        let p = sampler.head_probability(0);
        assert!((p - 0.5).abs() < 0.05, "got {p}");
    }

    #[test]
    fn dense_graph_fallback_terminates() {
        // Complete bipartite-ish tiny graph where most corruptions collide.
        let mut pos = TripleStore::new();
        for h in 0..3u32 {
            for t in 0..3u32 {
                if h != t {
                    pos.push(Triple::new(h, 0, t));
                }
            }
        }
        let known = TripleSet::from_stores([&pos]);
        let neg = UniformSampler::new(3).corrupt(&pos, &known, 2);
        assert_eq!(neg.len(), pos.len()); // must not hang or panic
    }
}
