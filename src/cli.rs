//! Command-line interface logic for the `sptx` binary.
//!
//! Subcommands:
//!
//! * `generate` — write a synthetic KG to TSV files
//!   (`--entities`, `--relations`, `--triples`, `--out <dir>`).
//! * `train` — train a model on a TSV file and save embeddings
//!   (`--model`, `--train <file>`, `--epochs`, `--dim`, `--lr`, `--out`);
//!   `--async true --workers N` switches to the lock-free Hogwild arm
//!   (nondeterministic, SGD + sparse gradients + resident store only).
//! * `stats` — print dataset statistics (degrees, relation classes).
//! * `serve` — load saved embeddings, build (or load) an IVF candidate
//!   index, replay a Zipf-skewed query workload through the ANN and exact
//!   arms, and report recall@K, latency percentiles, QPS, scan fraction and
//!   cache hit rates (`--emb`, `--train`, `--clusters`, `--nprobe`, …).
//!
//! Every subcommand accepts `--threads N` to pin the worker-pool size. The
//! training and evaluation engines are bit-identical at any thread count
//! (the determinism contract CI enforces), so the knob only trades
//! wall-clock time. The one documented exception is `train --async true`
//! with 2+ workers, which is nondeterministic by design.
//!
//! Parsing is deliberately dependency-free (`--key value` pairs); this
//! module holds the testable core, `src/bin/sptx.rs` is a thin shell.

use std::collections::HashMap;
use std::path::{Path, PathBuf};

use kg::eval::EvalConfig;
use kg::stream::EmbeddingStore;
use kg::{load_tsv, write_tsv, Dataset, Vocab};
use sptransx::serve::{
    recall_at_k, IvfConfig, IvfIndex, LatencySummary, QueryKey, ServeEngine, ServeModel,
    ZipfWorkload,
};
use sptransx::{
    KgeModel, Norm, OptimizerKind, SamplerKind, SpDistMult, SpTorusE, SpTransE, SpTransH, SpTransR,
    TrainConfig, Trainer,
};

/// Parsed command line: subcommand plus `--key value` options.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Args {
    /// The subcommand name.
    pub command: String,
    /// `--key value` options (keys without the dashes).
    pub options: HashMap<String, String>,
}

/// Errors surfaced to the CLI user.
#[derive(Debug)]
pub enum CliError {
    /// Bad invocation (missing command, unknown flag, unparsable value).
    Usage(String),
    /// Underlying library failure.
    Library(Box<dyn std::error::Error>),
}

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CliError::Usage(msg) => write!(f, "usage error: {msg}"),
            CliError::Library(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for CliError {}

impl From<kg::Error> for CliError {
    fn from(e: kg::Error) -> Self {
        CliError::Library(Box::new(e))
    }
}

impl From<sptransx::Error> for CliError {
    fn from(e: sptransx::Error) -> Self {
        CliError::Library(Box::new(e))
    }
}

/// Splits raw arguments (without argv\[0\]) into a subcommand and options.
///
/// # Errors
///
/// Returns [`CliError::Usage`] when no subcommand is present, a flag lacks a
/// value, or a positional argument appears after the subcommand.
pub fn parse_args(raw: &[String]) -> Result<Args, CliError> {
    let mut iter = raw.iter();
    let command = iter
        .next()
        .ok_or_else(|| {
            CliError::Usage("expected a subcommand (generate|train|stats|serve)".into())
        })?
        .clone();
    let mut options = HashMap::new();
    while let Some(key) = iter.next() {
        let Some(stripped) = key.strip_prefix("--") else {
            return Err(CliError::Usage(format!(
                "unexpected positional argument {key:?}"
            )));
        };
        let value = iter
            .next()
            .ok_or_else(|| CliError::Usage(format!("flag --{stripped} needs a value")))?;
        options.insert(stripped.to_string(), value.clone());
    }
    Ok(Args { command, options })
}

impl Args {
    /// A string option with a default.
    pub fn str_or(&self, key: &str, default: &str) -> String {
        self.options
            .get(key)
            .cloned()
            .unwrap_or_else(|| default.to_string())
    }

    /// A required string option.
    ///
    /// # Errors
    ///
    /// Returns [`CliError::Usage`] if missing.
    pub fn required(&self, key: &str) -> Result<String, CliError> {
        self.options
            .get(key)
            .cloned()
            .ok_or_else(|| CliError::Usage(format!("missing required flag --{key}")))
    }

    /// A parsed numeric option with a default.
    ///
    /// # Errors
    ///
    /// Returns [`CliError::Usage`] when the value does not parse.
    pub fn parse_or<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, CliError> {
        match self.options.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| CliError::Usage(format!("could not parse --{key} value {v:?}"))),
        }
    }
}

/// The `generate` subcommand: synthesize a KG and write train/valid/test TSVs.
///
/// # Errors
///
/// Propagates I/O and usage errors.
pub fn cmd_generate(args: &Args) -> Result<String, CliError> {
    let entities: usize = args.parse_or("entities", 1_000)?;
    let relations: usize = args.parse_or("relations", 10)?;
    let triples: usize = args.parse_or("triples", entities * 5)?;
    let seed: u64 = args.parse_or("seed", 42)?;
    let out = PathBuf::from(args.str_or("out", "kg-out"));
    std::fs::create_dir_all(&out).map_err(kg::Error::from)?;

    let ds = kg::synthetic::SyntheticKgBuilder::new(entities, relations)
        .triples(triples)
        .seed(seed)
        .build();
    let vocab = numeric_vocab(entities, relations);
    for (name, store) in [
        ("train.tsv", &ds.train),
        ("valid.tsv", &ds.valid),
        ("test.tsv", &ds.test),
    ] {
        let file = std::fs::File::create(out.join(name)).map_err(kg::Error::from)?;
        write_tsv(file, store, &vocab)?;
    }
    Ok(format!(
        "wrote {} train / {} valid / {} test triples to {}",
        ds.train.len(),
        ds.valid.len(),
        ds.test.len(),
        out.display()
    ))
}

/// The `train` subcommand: load a TSV, train, save embeddings + report.
///
/// # Errors
///
/// Propagates I/O, parse and training errors.
pub fn cmd_train(args: &Args) -> Result<String, CliError> {
    let train_path = args.required("train")?;
    let model_name = args.str_or("model", "transe");
    let config = config_from_args(args)?;
    let out = PathBuf::from(args.str_or("out", "embeddings.bin"));
    let paged = paged_store_from_args(args, &model_name, &config, &out)?;

    // `--prefetch true` pipelines the paged arm: a background I/O worker
    // reads batch b+1's working set while batch b trains. Meaningless
    // without a disk store to read from.
    let prefetch: bool = args.parse_or("prefetch", false)?;
    if prefetch && paged.is_none() {
        return Err(CliError::Usage(
            "--prefetch true requires --store disk (a resident store has nothing to prefetch)"
                .into(),
        ));
    }

    // `--async true` selects the Hogwild arm; `--workers` is meaningless
    // (and therefore rejected) on the synchronous default.
    let use_async: bool = args.parse_or("async", false)?;
    if args.options.contains_key("workers") && !use_async {
        return Err(CliError::Usage(
            "--workers only applies to the asynchronous arm; add --async true".into(),
        ));
    }
    let workers: usize = args.parse_or("workers", 4)?;
    if use_async {
        if workers == 0 {
            return Err(CliError::Usage("--workers must be at least 1".into()));
        }
        if paged.is_some() {
            return Err(CliError::Usage(
                "--async true is incompatible with --store disk (workers share one resident \
                 parameter buffer; a row cache cannot be shared lock-free)"
                    .into(),
            ));
        }
        if config.optimizer != OptimizerKind::Sgd {
            return Err(CliError::Usage(
                "--async true requires --optimizer sgd (stateless updates are what make \
                 lock-free row collisions benign)"
                    .into(),
            ));
        }
        if config.dense_grads {
            return Err(CliError::Usage(
                "--async true needs the sparse touched-row gradient path; drop --dense-grads true"
                    .into(),
            ));
        }
    }

    let (ds, _vocab) = load_dataset(Path::new(&train_path), args)?;
    let result = if use_async {
        train_dispatch_async(&model_name, &ds, &config, workers)
    } else {
        train_dispatch(
            &model_name,
            &ds,
            &config,
            paged.as_ref().map(|(p, b)| (p.as_path(), *b)),
            prefetch,
        )
    };
    // The pagefile is scratch space for the run; keep the filesystem clean
    // whether training succeeded or not.
    if let Some((pagefile, _)) = &paged {
        std::fs::remove_file(pagefile).ok();
    }
    let (summary, emb) = result?;
    if let Some((rows, cols, data)) = emb {
        EmbeddingStore::write(&out, rows, cols, |r, dst| {
            dst.copy_from_slice(&data[r * cols..(r + 1) * cols]);
        })?;
    }
    Ok(format!("{summary}\nembeddings saved to {}", out.display()))
}

/// Parses and validates `--store {ram,disk}` + `--cache-rows N` into the
/// out-of-core paging request: `Some((pagefile, cache budget))` for disk
/// mode, `None` for the fully resident default.
///
/// Disk mode pages the embedding table to `{out}.pagefile` and keeps only
/// `--cache-rows` rows pinned in RAM; it is restricted to the combinations
/// whose hot path is slot-translation-aware (TransE/TorusE, SGD, sparse
/// gradients, fused kernels) so paging can move bytes without ever touching
/// arithmetic.
fn paged_store_from_args(
    args: &Args,
    model_name: &str,
    config: &TrainConfig,
    out: &Path,
) -> Result<Option<(PathBuf, usize)>, CliError> {
    let store = args.str_or("store", "ram");
    match store.as_str() {
        "ram" => Ok(None),
        "disk" => {
            if !matches!(model_name, "transe" | "toruse") {
                return Err(CliError::Usage(format!(
                    "--store disk supports --model transe|toruse, got {model_name:?} \
                     (other models' kernels are not paging-aware yet)"
                )));
            }
            if config.optimizer != OptimizerKind::Sgd {
                return Err(CliError::Usage(
                    "--store disk requires --optimizer sgd (Adagrad/Adam keep dense \
                     per-row state the row cache cannot page)"
                        .into(),
                ));
            }
            if config.dense_grads {
                return Err(CliError::Usage(
                    "--store disk needs the sparse touched-row gradient path; \
                     drop --dense-grads true"
                        .into(),
                ));
            }
            if !config.fused {
                return Err(CliError::Usage(
                    "--store disk needs the fused kernels; drop --fused false".into(),
                ));
            }
            let cache_rows: usize = args.parse_or("cache-rows", 4096)?;
            if cache_rows == 0 {
                return Err(CliError::Usage("--cache-rows must be at least 1".into()));
            }
            let mut pagefile = out.as_os_str().to_owned();
            pagefile.push(".pagefile");
            Ok(Some((PathBuf::from(pagefile), cache_rows)))
        }
        other => Err(CliError::Usage(format!(
            "unknown --store {other:?} (ram|disk)"
        ))),
    }
}

/// The `stats` subcommand.
///
/// # Errors
///
/// Propagates I/O and parse errors.
pub fn cmd_stats(args: &Args) -> Result<String, CliError> {
    let path = args.required("train")?;
    let (ds, _) = load_dataset(Path::new(&path), args)?;
    let stats = kg::stats::GraphStats::compute(&ds.train, ds.num_entities);
    Ok(format!(
        "triples: {}\nactive entities: {}\nactive relations: {}\nmean degree: {:.2}\n\
         max degree: {}\ntop-1% degree share: {:.1}%\nrelation classes (1-1/1-N/N-1/N-N): {:?}",
        stats.triples,
        stats.active_entities,
        stats.active_relations,
        stats.mean_degree,
        stats.max_degree,
        100.0 * stats.top1pct_degree_share,
        stats.class_counts
    ))
}

/// The `serve` subcommand: load embeddings, build/load the IVF index,
/// replay a Zipf workload through the ANN (cached) and exact arms, report
/// quality and latency, and optionally enforce `--min-recall` /
/// `--max-scan-frac` thresholds (nonzero exit on violation — the CI smoke
/// hook).
///
/// # Errors
///
/// Propagates I/O, parse and serving errors; threshold violations surface
/// as [`CliError::Library`] serving errors.
pub fn cmd_serve(args: &Args) -> Result<String, CliError> {
    let emb_path = args.required("emb")?;
    let train_path = args.required("train")?;
    let norm = match args.str_or("norm", "l2").as_str() {
        "l1" => Norm::L1,
        "l2" => Norm::L2,
        other => return Err(CliError::Usage(format!("unknown --norm {other:?} (l1|l2)"))),
    };
    // The embedding dump stores only the stacked matrix; the training TSV
    // recovers the entity/relation split of its rows.
    let mut vocab = Vocab::new();
    let file = std::fs::File::open(&train_path).map_err(kg::Error::from)?;
    load_tsv(file, &mut vocab)?;
    let n = vocab.num_entities();
    if n == 0 {
        return Err(CliError::Usage(format!(
            "training file {train_path:?} has no triples"
        )));
    }
    let model = ServeModel::load(&emb_path, n, norm)?;
    let r = model.num_relations();
    if r != vocab.num_relations() {
        return Err(CliError::Library(Box::new(sptransx::Error::serve(
            format!(
                "embedding file implies {r} relations but the training file has {} — \
             wrong file pair, or a non-translational model dump",
                vocab.num_relations()
            ),
        ))));
    }

    let clusters: usize = args.parse_or("clusters", IvfConfig::sqrt_clusters(n).clusters)?;
    let kmeans_iters: usize = args.parse_or("kmeans-iters", 8)?;
    let seed: u64 = args.parse_or("seed", 42)?;
    let k: usize = args.parse_or("k", 10)?;
    let num_queries: usize = args.parse_or("queries", 2_000)?;
    let zipf: f64 = args.parse_or("zipf", 1.1)?;
    let cache_size: usize = args.parse_or("cache-size", 1_024)?;

    let index = match args.options.get("index") {
        Some(path) => IvfIndex::load(path)?,
        None => IvfIndex::build(
            model.embeddings(),
            n,
            model.dim(),
            &IvfConfig {
                clusters,
                iters: kmeans_iters,
                seed,
            },
            &xparallel::PoolHandle::global(),
        )?,
    };
    if let Some(path) = args.options.get("index-out") {
        index.save(path)?;
    }
    let num_clusters = index.num_clusters();
    let nprobe: usize = args.parse_or("nprobe", num_clusters.div_ceil(8))?;
    let nprobe = nprobe.clamp(1, num_clusters);

    let mut engine = ServeEngine::new(model, index)?.with_cache(cache_size);
    let mut workload = ZipfWorkload::new(n, r, zipf, seed);

    // --store disk: additionally answer every query through a row cache over
    // the on-disk embedding file (the out-of-core arm), cross-checking each
    // answer against the resident ANN arm bit for bit.
    let mut paged_rows = match args.str_or("store", "ram").as_str() {
        "ram" => None,
        "disk" => {
            let cache_rows: usize = args.parse_or("cache-rows", 4096)?;
            if cache_rows == 0 {
                return Err(CliError::Usage("--cache-rows must be at least 1".into()));
            }
            let storage = sptransx::ReadOnlyRowStorage::open(&emb_path)?;
            let mut rows = sptransx::serve::PagedRows::new(Box::new(storage), cache_rows)?;
            rows.set_tracing(true);
            Some(rows)
        }
        other => {
            return Err(CliError::Usage(format!(
                "unknown --store {other:?} (ram|disk)"
            )))
        }
    };

    // First-principles cache model: the same key stream replayed through a
    // fully-associative simcache LRU (one distinct line per distinct key)
    // must predict the real cache's hit count exactly.
    let mut sim = simcache::Cache::new(simcache::CacheConfig {
        size_bytes: cache_size * 64,
        line_bytes: 64,
        ways: cache_size,
    });
    let mut key_addrs: HashMap<QueryKey, u64> = HashMap::new();

    let mut ann_lat = Vec::with_capacity(num_queries);
    let mut exact_lat = Vec::with_capacity(num_queries);
    let mut paged_lat = Vec::with_capacity(num_queries);
    let mut recall_sum = 0.0f64;
    let mut scored_total = 0usize;
    let mut computed = 0usize;
    let mut paged_divergences = 0usize;
    for _ in 0..num_queries {
        let q = workload.next_query();
        let key: QueryKey = (q.dir as u8, q.entity, q.rel, k as u32, nprobe as u32);
        let next_addr = key_addrs.len() as u64 * 64;
        sim.access(*key_addrs.entry(key).or_insert(next_addr));

        let t = std::time::Instant::now();
        let ann = engine.answer_ann(&q, k, nprobe);
        ann_lat.push(t.elapsed());
        let t = std::time::Instant::now();
        let exact = engine.answer_exact(&q, k);
        exact_lat.push(t.elapsed());
        if let Some(rows) = &mut paged_rows {
            let t = std::time::Instant::now();
            let paged = engine.answer_ann_paged(rows, &q, k, nprobe)?;
            paged_lat.push(t.elapsed());
            if paged.hits != ann.hits {
                paged_divergences += 1;
            }
        }

        recall_sum += recall_at_k(&exact, &ann.hits);
        if !ann.cache_hit {
            scored_total += ann.scored;
            computed += 1;
        }
    }

    let recall = recall_sum / num_queries.max(1) as f64;
    let scan_frac = if computed == 0 {
        0.0
    } else {
        scored_total as f64 / (computed * n) as f64
    };
    let cache_stats = engine.cache_stats().unwrap_or_default();
    let us = |d: std::time::Duration| d.as_secs_f64() * 1e6;
    let arm = |name: &str, s: &LatencySummary| {
        format!(
            "{name} p50 {:.1}us p95 {:.1}us p99 {:.1}us, {:.0} qps",
            us(s.p50),
            us(s.p95),
            us(s.p99),
            s.qps
        )
    };
    let ann_sum = LatencySummary::from_samples(&ann_lat)
        .ok_or_else(|| CliError::Usage("--queries must be positive".into()))?;
    let exact_sum = LatencySummary::from_samples(&exact_lat).expect("same sample count");
    let mut out = format!(
        "serving {n} entities / {r} relations, dim {}, norm {}\n\
         index: {num_clusters} clusters, nprobe {nprobe}, kmeans iters {kmeans_iters}, seed {seed}\n\
         workload: {num_queries} queries, zipf({zipf}), k {k}, cache {cache_size}\n\
         recall@{k} vs exact arm: {recall:.4}\n\
         scan fraction (cache misses): {:.1}% of entities\n\
         cache hit rate: {:.1}% (simcache model: {:.1}%)\n\
         {}\n\
         {}",
        engine.model().dim(),
        args.str_or("norm", "l2"),
        100.0 * scan_frac,
        100.0 * cache_stats.hit_rate(),
        100.0 * (1.0 - sim.stats().miss_rate()),
        arm("ann  ", &ann_sum),
        arm("exact", &exact_sum),
    );
    if cache_stats.hits != sim.stats().hits {
        out.push_str(&format!(
            "\nWARNING: simcache model predicted {} hits, cache saw {}",
            sim.stats().hits,
            cache_stats.hits
        ));
    }
    if let Some(rows) = &paged_rows {
        let stats = rows.stats();
        let accesses = stats.hits + stats.misses;
        let hit_rate = if accesses > 0 {
            100.0 * stats.hits as f64 / accesses as f64
        } else {
            0.0
        };
        out.push_str(&format!(
            "\npaged store: budget {} rows, {} hits / {} misses / {} evictions (hit rate {hit_rate:.1}%)",
            rows.budget(),
            stats.hits,
            stats.misses,
            stats.evictions,
        ));
        if let Some(s) = LatencySummary::from_samples(&paged_lat) {
            out.push_str(&format!("\n{}", arm("paged", &s)));
        }
        let mut row_sim = simcache::Cache::new(simcache::CacheConfig {
            size_bytes: rows.budget() * 64,
            line_bytes: 64,
            ways: rows.budget(),
        });
        for &row in rows.trace().expect("tracing was enabled") {
            row_sim.access(u64::from(row) * 64);
        }
        out.push_str(&format!(
            "\nsimcache LRU replay: {} hits / {} misses",
            row_sim.stats().hits,
            row_sim.stats().misses
        ));
        if row_sim.stats().hits != stats.hits {
            out.push_str(&format!(
                "\nWARNING: simcache model predicted {} hits, row cache saw {}",
                row_sim.stats().hits,
                stats.hits
            ));
        }
        if paged_divergences > 0 {
            out.push_str(&format!(
                "\nWARNING: paged arm diverged from the resident ANN arm on \
                 {paged_divergences} queries"
            ));
        }
    }

    let min_recall: f64 = args.parse_or("min-recall", 0.0)?;
    if recall < min_recall {
        return Err(CliError::Library(Box::new(sptransx::Error::serve(
            format!("recall@{k} {recall:.4} is below --min-recall {min_recall} ({out})"),
        ))));
    }
    let max_scan_frac: f64 = args.parse_or("max-scan-frac", 1.0)?;
    if scan_frac > max_scan_frac {
        return Err(CliError::Library(Box::new(sptransx::Error::serve(
            format!("scan fraction {scan_frac:.4} exceeds --max-scan-frac {max_scan_frac} ({out})"),
        ))));
    }
    Ok(out)
}

fn numeric_vocab(entities: usize, relations: usize) -> Vocab {
    let mut vocab = Vocab::new();
    for e in 0..entities {
        vocab.intern_entity(&format!("e{e}"));
    }
    for r in 0..relations {
        vocab.intern_relation(&format!("r{r}"));
    }
    vocab
}

fn load_dataset(train: &Path, args: &Args) -> Result<(Dataset, Vocab), CliError> {
    let mut vocab = Vocab::new();
    let file = std::fs::File::open(train).map_err(kg::Error::from)?;
    let store = load_tsv(file, &mut vocab)?;
    let valid_frac: f64 = args.parse_or("valid-frac", 0.0)?;
    let test_frac: f64 = args.parse_or("test-frac", 0.1)?;
    let seed: u64 = args.parse_or("seed", 42)?;
    let ds = Dataset::from_single_store(
        train.display().to_string(),
        vocab.num_entities(),
        vocab.num_relations(),
        store,
        valid_frac,
        test_frac,
        seed,
    )?;
    Ok((ds, vocab))
}

fn config_from_args(args: &Args) -> Result<TrainConfig, CliError> {
    let norm = match args.str_or("norm", "l2").as_str() {
        "l1" => Norm::L1,
        "l2" => Norm::L2,
        other => return Err(CliError::Usage(format!("unknown --norm {other:?} (l1|l2)"))),
    };
    let sampler = match args.str_or("sampler", "uniform").as_str() {
        "uniform" => SamplerKind::Uniform,
        "bernoulli" => SamplerKind::Bernoulli,
        other => {
            return Err(CliError::Usage(format!(
                "unknown --sampler {other:?} (uniform|bernoulli)"
            )))
        }
    };
    let optimizer = match args.str_or("optimizer", "sgd").as_str() {
        "sgd" => OptimizerKind::Sgd,
        "adagrad" => OptimizerKind::Adagrad,
        "adam" => OptimizerKind::Adam,
        other => {
            return Err(CliError::Usage(format!(
                "unknown --optimizer {other:?} (sgd|adagrad|adam)"
            )))
        }
    };
    // `--lr-decay STEP:GAMMA` hooks the Appendix E step scheduler up:
    // every STEP epochs the learning rate is multiplied by GAMMA.
    let lr_schedule = match args.options.get("lr-decay") {
        None => None,
        Some(raw) => Some(parse_lr_decay(raw)?),
    };
    Ok(TrainConfig {
        epochs: args.parse_or("epochs", 50)?,
        batch_size: args.parse_or("batch-size", 1024)?,
        dim: args.parse_or("dim", 64)?,
        rel_dim: args.parse_or("rel-dim", 32)?,
        lr: args.parse_or("lr", 0.1)?,
        margin: args.parse_or("margin", 0.5)?,
        norm,
        sampler,
        seed: args.parse_or("seed", 42)?,
        lr_schedule,
        optimizer,
        dense_grads: args.parse_or("dense-grads", false)?,
        fused: args.parse_or("fused", true)?,
    })
}

/// Parses `STEP:GAMMA` (e.g. `10:0.5`) into a step-LR schedule.
fn parse_lr_decay(raw: &str) -> Result<(u32, f32), CliError> {
    let bad = || {
        CliError::Usage(format!(
            "--lr-decay needs STEP:GAMMA with STEP ≥ 1 and GAMMA > 0 (e.g. 10:0.5), got {raw:?}"
        ))
    };
    let (step, gamma) = raw.split_once(':').ok_or_else(bad)?;
    let step: u32 = step
        .trim()
        .parse()
        .ok()
        .filter(|&s| s >= 1)
        .ok_or_else(bad)?;
    let gamma: f32 = gamma
        .trim()
        .parse()
        .ok()
        .filter(|g: &f32| g.is_finite() && *g > 0.0)
        .ok_or_else(bad)?;
    Ok((step, gamma))
}

type EmbeddingDump = Option<(usize, usize, Vec<f32>)>;

/// Pages the trainer's `embeddings` table out to a fresh `pagefile` with a
/// `budget`-row cache and turns row tracing on (the trace feeds the simcache
/// cross-validation after the run). Returns the paged [`tensor::ParamId`].
fn page_out_embeddings<M: KgeModel>(
    trainer: &mut Trainer<M>,
    pagefile: &Path,
    budget: usize,
) -> Result<tensor::ParamId, CliError> {
    let store = trainer.model_mut().store_mut();
    let id = store.lookup("embeddings").ok_or_else(|| {
        CliError::Usage("--store disk needs a model with an 'embeddings' table".into())
    })?;
    let (rows, cols) = store.param_shape(id);
    let storage = sptransx::FileRowStorage::create(pagefile, rows, cols)?;
    store
        .page_out(id, Box::new(storage), budget)
        .map_err(sptransx::Error::from)?;
    store
        .pager_mut(id)
        .expect("just paged out")
        .set_tracing(true);
    Ok(id)
}

/// Collects the pager's counters and row trace, brings the table fully back
/// into RAM (evaluation and the embedding dump need residency), replays the
/// trace through a fully-associative simcache LRU of the same budget, and
/// renders the report lines — with the PR-6 `WARNING:` idiom on any
/// hit-count divergence so CI can grep for it.
///
/// The replay is **extended to model prefetch**: the pager records each
/// `begin_prefetch` request (the unfiltered working-set union, stamped with
/// the access-call it precedes), and the replay re-derives the staging
/// decisions — which requested rows were non-resident and therefore staged,
/// which staged rows a miss then consumed, which expired unconsumed — from
/// the simulated cache alone, via the non-mutating `Cache::contains` probe.
/// Every prefetch counter must match this independent model exactly.
fn unpage_and_validate<M: KgeModel>(
    trainer: &mut Trainer<M>,
    id: tensor::ParamId,
) -> Result<String, CliError> {
    let timing = trainer.model().prefetch_timing();
    let store = trainer.model_mut().store_mut();
    let pager = store.pager(id).expect("paged parameter");
    let stats = pager.stats();
    let pstats = pager.prefetch_stats();
    let trace = pager.trace().expect("tracing was enabled").to_vec();
    let call_lens = pager.trace_call_lens().to_vec();
    let prefetch_events = pager.trace_prefetch_events().to_vec();
    let budget = pager.budget();
    store.unpage(id).map_err(sptransx::Error::from)?;

    let mut sim = simcache::Cache::new(simcache::CacheConfig {
        size_bytes: budget * 64,
        line_bytes: 64,
        ways: budget,
    });
    // Replayed prefetch counters, rebuilt from the request log + the
    // simulated residency (not from the pager's own filter decisions).
    let (mut sim_staged, mut sim_admitted, mut sim_demand, mut sim_wasted) =
        (0u64, 0u64, 0u64, 0u64);
    let mut staged: Vec<u32> = Vec::new();
    let mut used: Vec<bool> = Vec::new();
    let mut events = prefetch_events.iter().peekable();
    let mut pos = 0usize;
    for (call, &len) in call_lens.iter().enumerate() {
        while let Some((at_call, requested)) = events.peek() {
            if *at_call as usize != call {
                break;
            }
            staged.clear();
            staged.extend(
                requested
                    .iter()
                    .copied()
                    .filter(|&r| !sim.contains(u64::from(r) * 64)),
            );
            used.clear();
            used.resize(staged.len(), false);
            sim_staged += staged.len() as u64;
            events.next();
        }
        for &row in &trace[pos..pos + len as usize] {
            if sim.access(u64::from(row) * 64) == simcache::Access::Miss {
                match staged.binary_search(&row) {
                    Ok(i) => {
                        sim_admitted += 1;
                        used[i] = true;
                    }
                    Err(_) => sim_demand += 1,
                }
            }
        }
        pos += len as usize;
        // The staging window closes with the call that consumed it.
        sim_wasted += used.iter().filter(|&&u| !u).count() as u64;
        staged.clear();
        used.clear();
    }
    let sim_stats = sim.stats();
    let accesses = stats.hits + stats.misses;
    let hit_rate = if accesses > 0 {
        100.0 * stats.hits as f64 / accesses as f64
    } else {
        0.0
    };
    let mut out = format!(
        "\npaged store: budget {budget} rows, {} hits / {} misses / {} evictions / {} \
         write-backs (hit rate {hit_rate:.1}%)\n\
         simcache LRU replay: {} hits / {} misses",
        stats.hits,
        stats.misses,
        stats.evictions,
        stats.write_backs,
        sim_stats.hits,
        sim_stats.misses,
    );
    if pstats.staged > 0 || timing.is_some() {
        let admit_rate = if stats.misses > 0 {
            100.0 * pstats.admitted as f64 / stats.misses as f64
        } else {
            0.0
        };
        out.push_str(&format!(
            "\nprefetch: {} staged, {} admitted / {} demand loads / {} wasted \
             (admit rate {admit_rate:.1}%)\n\
             simcache prefetch replay: {sim_staged} staged / {sim_admitted} admitted / \
             {sim_demand} demand / {sim_wasted} wasted",
            pstats.staged, pstats.admitted, pstats.demand_loads, pstats.wasted,
        ));
        if let Some((read, stall)) = timing {
            out.push_str(&format!(
                "\nprefetch I/O: worker read {:.3}s, training stalled {:.3}s",
                read.as_secs_f64(),
                stall.as_secs_f64(),
            ));
        }
    }
    if sim_stats.hits != stats.hits {
        out.push_str(&format!(
            "\nWARNING: simcache model predicted {} hits, cache saw {}",
            sim_stats.hits, stats.hits
        ));
    }
    let sim_pstats = (sim_staged, sim_admitted, sim_demand, sim_wasted);
    let pager_pstats = (
        pstats.staged,
        pstats.admitted,
        pstats.demand_loads,
        pstats.wasted,
    );
    if sim_pstats != pager_pstats {
        out.push_str(&format!(
            "\nWARNING: simcache prefetch model predicted {sim_pstats:?} \
             (staged/admitted/demand/wasted), pager saw {pager_pstats:?}",
        ));
    }
    Ok(out)
}

fn train_dispatch(
    model: &str,
    ds: &Dataset,
    config: &TrainConfig,
    paged: Option<(&Path, usize)>,
    prefetch: bool,
) -> Result<(String, EmbeddingDump), CliError> {
    macro_rules! run {
        ($ctor:expr) => {{
            let model = $ctor?;
            let mut trainer = Trainer::new(model, ds, config)?;
            let paged_id = match paged {
                Some((pagefile, budget)) => {
                    let id = page_out_embeddings(&mut trainer, pagefile, budget)?;
                    if prefetch {
                        trainer.model_mut().set_prefetch(true)?;
                    }
                    Some(id)
                }
                None => None,
            };
            tensor::profile::reset();
            let report = trainer.run()?;
            // Snapshot kernel counters before evaluation pollutes them.
            let kernel_table = kernel_counter_table();
            // Unpage (and cross-validate the cache counters) before the
            // paging-unaware evaluation and dump paths read the table.
            let paged_report = match paged_id {
                Some(id) => unpage_and_validate(&mut trainer, id)?,
                None => String::new(),
            };
            // Batched, pool-parallel engine; strided subsampling avoids the
            // dataset-order bias of a plain prefix truncation.
            let eval = trainer.evaluate_batched(
                ds,
                &EvalConfig {
                    max_triples: Some(500),
                    sample: kg::eval::SampleStrategy::Strided,
                    ..Default::default()
                },
            );
            let m = trainer.model();
            let emb_id = m.store().lookup("embeddings");
            let emb = emb_id.map(|id| {
                let t = m.store().value(id);
                (t.rows(), t.cols(), t.as_slice().to_vec())
            });
            let summary = format!(
                "{}: {} epochs, loss {:.4} -> {:.4}, wall {:.2}s, Hits@10 {:.3}, MRR {:.3}\n\
                 arm: {} gradients/renorm, {} kernels\n{}{}",
                KgeModel::name(m),
                report.epoch_losses.len(),
                report.epoch_losses.first().copied().unwrap_or(0.0),
                report.epoch_losses.last().copied().unwrap_or(0.0),
                report.wall.as_secs_f64(),
                eval.hits(10).unwrap_or(0.0),
                eval.mrr,
                if config.dense_grads {
                    "dense (--dense-grads ablation)"
                } else {
                    "sparse touched-row"
                },
                if config.fused { "fused" } else { "unfused" },
                kernel_table,
                paged_report,
            );
            Ok((summary, emb))
        }};
    }
    match model {
        "transe" => run!(SpTransE::from_config(ds, config)),
        "toruse" => run!(SpTorusE::from_config(ds, config)),
        "transr" => run!(SpTransR::from_config(ds, config)),
        "transh" => run!(SpTransH::from_config(ds, config)),
        "distmult" => run!(SpDistMult::from_config(ds, config)),
        other => Err(CliError::Usage(format!(
            "unknown --model {other:?} (transe|toruse|transr|transh|distmult)"
        ))),
    }
}

/// The `--async true` dispatch: trains through the Hogwild driver and
/// evaluates/dumps from the returned rank-0 replica (all replicas alias the
/// same shared values, so after the final epoch-edge join it *is* the
/// model). The summary names the arm and its worker count so report
/// consumers can tell a nondeterministic run from a contract run.
fn train_dispatch_async(
    model: &str,
    ds: &Dataset,
    config: &TrainConfig,
    workers: usize,
) -> Result<(String, EmbeddingDump), CliError> {
    macro_rules! run_async {
        ($ctor:expr) => {{
            tensor::profile::reset();
            let (report, m) =
                sptransx::distributed::train_hogwild_returning(ds, config, workers, $ctor)?;
            let kernel_table = kernel_counter_table();
            let eval = kg::eval::evaluate_batched(
                &m,
                &ds.test,
                &ds.all_known(),
                &EvalConfig {
                    max_triples: Some(500),
                    sample: kg::eval::SampleStrategy::Strided,
                    ..Default::default()
                },
            );
            let emb = m.store().lookup("embeddings").map(|id| {
                let t = m.store().value(id);
                (t.rows(), t.cols(), t.as_slice().to_vec())
            });
            let summary = format!(
                "{}: {} epochs, loss {:.4} -> {:.4}, wall {:.2}s, Hits@10 {:.3}, MRR {:.3}\n\
                 arm: async hogwild ({} workers, nondeterministic), sparse touched-row \
                 gradients/renorm, {} kernels\n{}",
                KgeModel::name(&m),
                report.epoch_losses.len(),
                report.epoch_losses.first().copied().unwrap_or(0.0),
                report.epoch_losses.last().copied().unwrap_or(0.0),
                report.wall.as_secs_f64(),
                eval.hits(10).unwrap_or(0.0),
                eval.mrr,
                report.workers,
                if config.fused { "fused" } else { "unfused" },
                kernel_table,
            );
            Ok((summary, emb))
        }};
    }
    match model {
        "transe" => run_async!(SpTransE::from_config),
        "toruse" => run_async!(SpTorusE::from_config),
        "transr" => run_async!(SpTransR::from_config),
        "transh" => run_async!(SpTransH::from_config),
        "distmult" => run_async!(SpDistMult::from_config),
        other => Err(CliError::Usage(format!(
            "unknown --model {other:?} (transe|toruse|transr|transh|distmult)"
        ))),
    }
}

/// Renders the Table-5-style per-kernel counter report for the training run:
/// one row per autograd kernel (`op::*` scope) with call counts and the
/// analytic bytes-moved / flop totals from `sparse::metrics`.
///
/// Wall-clock times are deliberately omitted and rows are sorted by name,
/// so the table is bit-identical across thread counts and machines — CI
/// diffs the full report between runs.
fn kernel_counter_table() -> String {
    let mut rows: Vec<_> = tensor::profile::report()
        .into_iter()
        .filter(|e| e.name.starts_with("op::"))
        .collect();
    rows.sort_by_key(|e| e.name);
    let mut out = String::from("per-kernel counters (analytic bytes/flops, thread-independent):");
    for e in &rows {
        out.push_str(&format!(
            "\n  {:<28} calls {:>8}  bytes {:>14}  flops {:>14}",
            e.name, e.calls, e.bytes, e.flops
        ));
    }
    out
}

/// Applies the global `--threads N` option: pins the pool size if the pool
/// is not yet created, and caps the fan-out either way.
///
/// # Errors
///
/// Returns [`CliError::Usage`] for a non-positive or unparsable value.
fn apply_threads_option(args: &Args) -> Result<(), CliError> {
    let Some(raw) = args.options.get("threads") else {
        return Ok(());
    };
    let n: usize = raw.parse().ok().filter(|&n| n >= 1).ok_or_else(|| {
        CliError::Usage(format!("--threads needs a positive integer, got {raw:?}"))
    })?;
    // `set_num_threads` sizes the pool when it has not been created yet; the
    // parallelism limit also covers the already-created case (tests, REPLs).
    xparallel::set_num_threads(n);
    xparallel::set_parallelism_limit(n);
    Ok(())
}

/// Dispatches a parsed command, returning the text to print.
///
/// # Errors
///
/// Propagates all subcommand errors.
pub fn run(args: &Args) -> Result<String, CliError> {
    apply_threads_option(args)?;
    match args.command.as_str() {
        "generate" => cmd_generate(args),
        "train" => cmd_train(args),
        "stats" => cmd_stats(args),
        "serve" => cmd_serve(args),
        "help" | "--help" | "-h" => Ok(USAGE.to_string()),
        other => Err(CliError::Usage(format!(
            "unknown subcommand {other:?}\n{USAGE}"
        ))),
    }
}

/// The usage banner.
pub const USAGE: &str = "\
sptx — SparseTransX knowledge-graph embedding trainer

USAGE:
  sptx generate --entities N --relations R --triples M --out DIR
  sptx train    --train FILE.tsv [--model transe|toruse|transr|transh|distmult]
                [--epochs E] [--dim D] [--lr LR] [--margin M] [--norm l1|l2]
                [--optimizer sgd|adagrad|adam] [--lr-decay STEP:GAMMA]
                [--sampler uniform|bernoulli] [--dense-grads true|false]
                [--fused true|false] [--store ram|disk] [--cache-rows N]
                [--prefetch true|false] [--async true] [--workers N]
                [--out embeddings.bin]
  sptx stats    --train FILE.tsv
  sptx serve    --emb FILE.bin --train FILE.tsv [--norm l1|l2] [--k K]
                [--clusters C] [--nprobe P] [--kmeans-iters I]
                [--queries Q] [--zipf S] [--cache-size N] [--seed S]
                [--store ram|disk] [--cache-rows N]
                [--index FILE] [--index-out FILE]
                [--min-recall R] [--max-scan-frac F]
  sptx help

Any subcommand also accepts --threads N (worker-pool size; results are
bit-identical at any N, only wall-clock changes). --dense-grads true disables
the touched-row sparse gradient AND epoch-renormalization paths (an ablation
switch: training is bit-identical, each batch and epoch-end sweep just walks
whole embedding tables). --fused false disables the fused gather+distance /
margin-loss+backward-seed kernels (also bit-identical; the unfused tape
materializes the chunk-by-dim intermediates). The train report names which
arm ran and prints a per-kernel calls/bytes/flops counter table. --lr-decay
multiplies the learning rate by GAMMA every STEP epochs.

--async true trains with the lock-free Hogwild arm: --workers N threads
(default 4) share one set of parameter tensors and apply touched-row SGD
updates with no barriers and no locks. Throughput scales with cores, but the
run is nondeterministic at 2+ workers (update interleaving and occasional
lost increments on row collisions) — validate results statistically, and use
the synchronous default wherever the bit-determinism contract matters. At
--workers 1 the arm degenerates to the synchronous trainer bit-for-bit.
Requires SGD, sparse gradients and --store ram.

--store disk trains out of core: the embedding table lives in {out}.pagefile
and only each batch's touched rows are paged into a --cache-rows row RAM
cache (LRU, dirty rows written back on eviction and at epoch end). Paging
moves bytes, never arithmetic — the run is bit-identical to --store ram —
and the report's cache counters are cross-validated against a simcache LRU
replay of the same row trace (any divergence prints a WARNING line).
Requires --model transe|toruse with SGD, sparse gradients and fused kernels.

--prefetch true pipelines the disk arm: one background I/O worker reads
batch b+1's non-resident working set while batch b trains, and the pager
admits the staged rows at the batch edge without touching the disk.
Prefetch moves bytes earlier, never arithmetic — the run stays bit-identical
to --prefetch false and to --store ram at any thread count. The report adds
a 'prefetch:' counter line (staged / admitted / demand loads / wasted), a
'simcache prefetch replay:' line re-deriving those counters from the
recorded request log (divergence prints a WARNING), and a 'prefetch I/O:'
line splitting the worker's read time from the training thread's residual
stall. Requires --store disk.

serve loads the stacked embedding matrix train saves (TransE/TorusE layout;
--norm must match training), answers top-K completion queries through an
IVF candidate index (nprobe = cost/recall knob; nprobe = clusters is an
exact full scan), measures recall@K against the exact full-scan arm, and
reports latency percentiles, QPS, scan fraction and cache hit rates.
--min-recall / --max-scan-frac turn quality regressions into a nonzero
exit status for CI. serve --store disk additionally answers every query
through a --cache-rows row cache over the on-disk embedding file (queries a
store bigger than RAM); answers are checked bitwise against the resident
arm and the row-cache counters against a simcache LRU replay, with any
divergence reported as a WARNING line.";

#[cfg(test)]
mod tests {
    use super::*;

    fn strs(v: &[&str]) -> Vec<String> {
        v.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parse_command_and_flags() {
        let args = parse_args(&strs(&["train", "--epochs", "5", "--lr", "0.1"])).unwrap();
        assert_eq!(args.command, "train");
        assert_eq!(args.parse_or("epochs", 0usize).unwrap(), 5);
        assert!((args.parse_or("lr", 0.0f32).unwrap() - 0.1).abs() < 1e-6);
        assert_eq!(args.parse_or("dim", 64usize).unwrap(), 64);
    }

    #[test]
    fn parse_rejects_bad_input() {
        assert!(parse_args(&[]).is_err());
        assert!(parse_args(&strs(&["train", "positional"])).is_err());
        assert!(parse_args(&strs(&["train", "--epochs"])).is_err());
        let args = parse_args(&strs(&["train", "--epochs", "abc"])).unwrap();
        assert!(args.parse_or("epochs", 0usize).is_err());
        assert!(args.required("missing").is_err());
    }

    #[test]
    fn generate_then_stats_then_train() {
        let dir = std::env::temp_dir().join("sptx-cli-test");
        let _ = std::fs::remove_dir_all(&dir);
        let out = dir.to_string_lossy().to_string();

        let gen = parse_args(&strs(&[
            "generate",
            "--entities",
            "80",
            "--relations",
            "4",
            "--triples",
            "500",
            "--out",
            &out,
        ]))
        .unwrap();
        let msg = run(&gen).unwrap();
        assert!(msg.contains("train"), "{msg}");

        let train_file = dir.join("train.tsv").to_string_lossy().to_string();
        let stats = parse_args(&strs(&["stats", "--train", &train_file])).unwrap();
        let msg = run(&stats).unwrap();
        assert!(msg.contains("mean degree"), "{msg}");

        let emb_out = dir.join("emb.bin").to_string_lossy().to_string();
        let train = parse_args(&strs(&[
            "train",
            "--train",
            &train_file,
            "--epochs",
            "3",
            "--dim",
            "8",
            "--batch-size",
            "64",
            "--out",
            &emb_out,
        ]))
        .unwrap();
        let msg = run(&train).unwrap();
        assert!(msg.contains("SpTransE"), "{msg}");
        assert!(
            msg.contains("arm: sparse touched-row gradients/renorm, fused kernels"),
            "{msg}"
        );
        assert!(msg.contains("per-kernel counters"), "{msg}");
        assert!(msg.contains("op::spmm_score"), "{msg}");
        assert!(dir.join("emb.bin").exists());
    }

    #[test]
    fn unknown_subcommand_and_model() {
        let args = parse_args(&strs(&["frobnicate"])).unwrap();
        assert!(matches!(run(&args), Err(CliError::Usage(_))));

        let dir = std::env::temp_dir().join("sptx-cli-test2");
        let _ = std::fs::remove_dir_all(&dir);
        let out = dir.to_string_lossy().to_string();
        run(&parse_args(&strs(&[
            "generate",
            "--entities",
            "30",
            "--relations",
            "2",
            "--triples",
            "100",
            "--out",
            &out,
        ]))
        .unwrap())
        .unwrap();
        let train_file = dir.join("train.tsv").to_string_lossy().to_string();
        let bad = parse_args(&strs(&["train", "--train", &train_file, "--model", "nope"])).unwrap();
        assert!(matches!(run(&bad), Err(CliError::Usage(_))));
    }

    #[test]
    fn optimizer_and_lr_decay_flags_parse() {
        let args = parse_args(&strs(&[
            "train",
            "--optimizer",
            "adagrad",
            "--lr-decay",
            "10:0.5",
            "--dense-grads",
            "true",
        ]))
        .unwrap();
        let cfg = config_from_args(&args).unwrap();
        assert_eq!(cfg.optimizer, OptimizerKind::Adagrad);
        assert_eq!(cfg.lr_schedule, Some((10, 0.5)));
        assert!(cfg.dense_grads);

        let defaults = config_from_args(&parse_args(&strs(&["train"])).unwrap()).unwrap();
        assert_eq!(defaults.optimizer, OptimizerKind::Sgd);
        assert_eq!(defaults.lr_schedule, None);
        assert!(!defaults.dense_grads);
        assert!(defaults.fused);

        let unfused =
            config_from_args(&parse_args(&strs(&["train", "--fused", "false"])).unwrap()).unwrap();
        assert!(!unfused.fused);

        let bad = parse_args(&strs(&["train", "--optimizer", "lbfgs"])).unwrap();
        assert!(matches!(config_from_args(&bad), Err(CliError::Usage(_))));
        for decay in ["0:0.5", "10", "10:-1", "x:0.5", "10:nan"] {
            let bad = parse_args(&strs(&["train", "--lr-decay", decay])).unwrap();
            assert!(
                matches!(config_from_args(&bad), Err(CliError::Usage(_))),
                "--lr-decay {decay} should be rejected"
            );
        }
    }

    #[test]
    fn train_with_adam_and_decay_runs_end_to_end() {
        let dir = std::env::temp_dir().join("sptx-cli-test-opt");
        let _ = std::fs::remove_dir_all(&dir);
        let out = dir.to_string_lossy().to_string();
        run(&parse_args(&strs(&[
            "generate",
            "--entities",
            "60",
            "--relations",
            "3",
            "--triples",
            "300",
            "--out",
            &out,
        ]))
        .unwrap())
        .unwrap();
        let train_file = dir.join("train.tsv").to_string_lossy().to_string();
        let emb_out = dir.join("emb.bin").to_string_lossy().to_string();
        let train = parse_args(&strs(&[
            "train",
            "--train",
            &train_file,
            "--epochs",
            "2",
            "--dim",
            "8",
            "--batch-size",
            "64",
            "--optimizer",
            "adam",
            "--lr-decay",
            "1:0.5",
            "--out",
            &emb_out,
        ]))
        .unwrap();
        let msg = run(&train).unwrap();
        assert!(msg.contains("SpTransE"), "{msg}");
    }

    #[test]
    fn train_store_disk_matches_store_ram_bit_for_bit() {
        let dir = std::env::temp_dir().join("sptx-cli-test-paged");
        let _ = std::fs::remove_dir_all(&dir);
        let out = dir.to_string_lossy().to_string();
        run(&parse_args(&strs(&[
            "generate",
            "--entities",
            "150",
            "--relations",
            "4",
            "--triples",
            "700",
            "--out",
            &out,
        ]))
        .unwrap())
        .unwrap();
        let train_file = dir.join("train.tsv").to_string_lossy().to_string();
        let common = |store: &str, cache: &str, prefetch: &str, emb: &str| {
            strs(&[
                "train",
                "--train",
                &train_file,
                "--epochs",
                "2",
                "--dim",
                "8",
                "--batch-size",
                "16",
                "--store",
                store,
                "--cache-rows",
                cache,
                "--prefetch",
                prefetch,
                "--out",
                emb,
            ])
        };

        let ram_out = dir.join("emb_ram.bin").to_string_lossy().to_string();
        let msg = run(&parse_args(&common("ram", "96", "false", &ram_out)).unwrap()).unwrap();
        assert!(!msg.contains("paged store:"), "{msg}");

        // 96 cache rows against a 154-row stacked table: evictions and
        // write-backs all run, yet the dumped embeddings must be the same
        // bytes the resident run saved.
        let disk_out = dir.join("emb_disk.bin").to_string_lossy().to_string();
        let msg = run(&parse_args(&common("disk", "96", "false", &disk_out)).unwrap()).unwrap();
        assert!(msg.contains("paged store: budget 96 rows"), "{msg}");
        assert!(msg.contains("simcache LRU replay"), "{msg}");
        assert!(!msg.contains("prefetch:"), "{msg}");
        assert!(!msg.contains("WARNING"), "cache model diverged: {msg}");
        assert!(
            !dir.join("emb_disk.bin.pagefile").exists(),
            "the pagefile must be cleaned up after training"
        );

        // Third arm: same disk store, background prefetch pipelining the
        // reads. Bytes must match both other arms; the report gains the
        // prefetch counter lines, and the extended simcache replay must
        // re-derive every counter (any mismatch prints a WARNING).
        let pf_out = dir.join("emb_pf.bin").to_string_lossy().to_string();
        let msg = run(&parse_args(&common("disk", "96", "true", &pf_out)).unwrap()).unwrap();
        assert!(msg.contains("paged store: budget 96 rows"), "{msg}");
        assert!(msg.contains("prefetch: "), "{msg}");
        assert!(msg.contains("simcache prefetch replay: "), "{msg}");
        assert!(msg.contains("prefetch I/O: "), "{msg}");
        assert!(!msg.contains("WARNING"), "prefetch model diverged: {msg}");

        let ram_bytes = std::fs::read(dir.join("emb_ram.bin")).unwrap();
        let disk_bytes = std::fs::read(dir.join("emb_disk.bin")).unwrap();
        let pf_bytes = std::fs::read(dir.join("emb_pf.bin")).unwrap();
        assert_eq!(
            ram_bytes, disk_bytes,
            "paged embeddings diverged from resident"
        );
        assert_eq!(
            disk_bytes, pf_bytes,
            "prefetched embeddings diverged from synchronous paging"
        );
    }

    #[test]
    fn train_store_disk_rejects_unsupported_configurations() {
        // Validation fires before the dataset loads, so no fixture needed.
        for extra in [
            &["--store", "disk", "--optimizer", "adam"][..],
            &["--store", "disk", "--model", "transr"],
            &["--store", "disk", "--dense-grads", "true"],
            &["--store", "disk", "--fused", "false"],
            &["--store", "disk", "--cache-rows", "0"],
            &["--store", "tape"],
            &["--prefetch", "true"], // prefetch needs a disk store
            &["--prefetch", "true", "--store", "ram"],
        ] {
            let mut argv = strs(&["train", "--train", "missing.tsv"]);
            argv.extend(strs(extra));
            let args = parse_args(&argv).unwrap();
            assert!(
                matches!(run(&args), Err(CliError::Usage(_))),
                "expected a usage error for {extra:?}"
            );
        }
    }

    #[test]
    fn train_async_end_to_end_and_flag_validation() {
        // Flag validation fires before any dataset loads.
        for extra in [
            &["--workers", "2"][..], // --workers without --async
            &["--async", "true", "--workers", "0"],
            &["--async", "true", "--store", "disk"],
            &["--async", "true", "--optimizer", "adam"],
            &["--async", "true", "--dense-grads", "true"],
        ] {
            let mut argv = strs(&["train", "--train", "missing.tsv"]);
            argv.extend(strs(extra));
            let args = parse_args(&argv).unwrap();
            assert!(
                matches!(run(&args), Err(CliError::Usage(_))),
                "expected a usage error for {extra:?}"
            );
        }

        let dir = std::env::temp_dir().join("sptx-cli-test-async");
        let _ = std::fs::remove_dir_all(&dir);
        let out = dir.to_string_lossy().to_string();
        run(&parse_args(&strs(&[
            "generate",
            "--entities",
            "80",
            "--relations",
            "4",
            "--triples",
            "500",
            "--out",
            &out,
        ]))
        .unwrap())
        .unwrap();
        let train_file = dir.join("train.tsv").to_string_lossy().to_string();
        let emb_out = dir.join("emb.bin").to_string_lossy().to_string();
        let train = parse_args(&strs(&[
            "train",
            "--train",
            &train_file,
            "--epochs",
            "3",
            "--dim",
            "8",
            "--batch-size",
            "64",
            "--async",
            "true",
            "--workers",
            "2",
            "--out",
            &emb_out,
        ]))
        .unwrap();
        let msg = run(&train).unwrap();
        assert!(msg.contains("SpTransE"), "{msg}");
        assert!(
            msg.contains("arm: async hogwild (2 workers, nondeterministic)"),
            "{msg}"
        );
        assert!(msg.contains("MRR"), "{msg}");
        assert!(msg.contains("per-kernel counters"), "{msg}");
        assert!(dir.join("emb.bin").exists());
    }

    #[test]
    fn serve_end_to_end_with_index_roundtrip() {
        let dir = std::env::temp_dir().join("sptx-cli-test-serve");
        let _ = std::fs::remove_dir_all(&dir);
        let out = dir.to_string_lossy().to_string();
        run(&parse_args(&strs(&[
            "generate",
            "--entities",
            "120",
            "--relations",
            "4",
            "--triples",
            "600",
            "--out",
            &out,
        ]))
        .unwrap())
        .unwrap();
        let train_file = dir.join("train.tsv").to_string_lossy().to_string();
        let emb_out = dir.join("emb.bin").to_string_lossy().to_string();
        run(&parse_args(&strs(&[
            "train",
            "--train",
            &train_file,
            "--epochs",
            "2",
            "--dim",
            "8",
            "--batch-size",
            "64",
            "--out",
            &emb_out,
        ]))
        .unwrap())
        .unwrap();

        // Build the index, serve a small workload, and persist the index.
        let index_path = dir.join("index.ivf").to_string_lossy().to_string();
        let serve = parse_args(&strs(&[
            "serve",
            "--emb",
            &emb_out,
            "--train",
            &train_file,
            "--queries",
            "200",
            "--clusters",
            "12",
            "--nprobe",
            "12", // nprobe == clusters: the ANN arm IS the exact scan
            "--min-recall",
            "0.999",
            "--index-out",
            &index_path,
        ]))
        .unwrap();
        let msg = run(&serve).unwrap();
        assert!(msg.contains("recall@10 vs exact arm: 1.0000"), "{msg}");
        assert!(!msg.contains("WARNING"), "cache model diverged: {msg}");

        // Reload the saved index and serve again with a selective probe.
        let serve = parse_args(&strs(&[
            "serve",
            "--emb",
            &emb_out,
            "--train",
            &train_file,
            "--queries",
            "200",
            "--nprobe",
            "3",
            "--index",
            &index_path,
        ]))
        .unwrap();
        let msg = run(&serve).unwrap();
        assert!(msg.contains("index: 12 clusters, nprobe 3"), "{msg}");

        // The out-of-core arm: the same workload answered through a 48-row
        // cache over the on-disk dump must agree with the resident arm on
        // every query (any divergence or counter mismatch prints WARNING).
        let serve = parse_args(&strs(&[
            "serve",
            "--emb",
            &emb_out,
            "--train",
            &train_file,
            "--queries",
            "200",
            "--nprobe",
            "3",
            "--index",
            &index_path,
            "--store",
            "disk",
            "--cache-rows",
            "48",
        ]))
        .unwrap();
        let msg = run(&serve).unwrap();
        assert!(msg.contains("paged store: budget 48 rows"), "{msg}");
        assert!(msg.contains("simcache LRU replay"), "{msg}");
        assert!(!msg.contains("WARNING"), "paged arm diverged: {msg}");

        let bad = parse_args(&strs(&[
            "serve",
            "--emb",
            &emb_out,
            "--train",
            &train_file,
            "--store",
            "tape",
        ]))
        .unwrap();
        assert!(matches!(run(&bad), Err(CliError::Usage(_))));

        // An impossible recall floor must fail the command.
        let serve = parse_args(&strs(&[
            "serve",
            "--emb",
            &emb_out,
            "--train",
            &train_file,
            "--queries",
            "50",
            "--nprobe",
            "1",
            "--min-recall",
            "1.1",
        ]))
        .unwrap();
        assert!(matches!(run(&serve), Err(CliError::Library(_))));
    }

    #[test]
    fn serve_rejects_mismatched_and_corrupt_inputs() {
        let dir = std::env::temp_dir().join("sptx-cli-test-serve-bad");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let out = dir.to_string_lossy().to_string();
        run(&parse_args(&strs(&[
            "generate",
            "--entities",
            "50",
            "--relations",
            "3",
            "--triples",
            "200",
            "--out",
            &out,
        ]))
        .unwrap())
        .unwrap();
        let train_file = dir.join("train.tsv").to_string_lossy().to_string();

        // Missing embedding file.
        let serve = parse_args(&strs(&[
            "serve",
            "--emb",
            "/nonexistent.bin",
            "--train",
            &train_file,
        ]))
        .unwrap();
        assert!(run(&serve).is_err());

        // Truncated embedding file: rejected at open, not a panic.
        let emb_out = dir.join("emb.bin").to_string_lossy().to_string();
        run(&parse_args(&strs(&[
            "train",
            "--train",
            &train_file,
            "--epochs",
            "1",
            "--dim",
            "8",
            "--batch-size",
            "64",
            "--out",
            &emb_out,
        ]))
        .unwrap())
        .unwrap();
        let bytes = std::fs::read(&emb_out).unwrap();
        let cut = dir.join("cut.bin");
        std::fs::write(&cut, &bytes[..bytes.len() / 2]).unwrap();
        let serve = parse_args(&strs(&[
            "serve",
            "--emb",
            &cut.to_string_lossy(),
            "--train",
            &train_file,
        ]))
        .unwrap();
        assert!(matches!(run(&serve), Err(CliError::Library(_))));

        // Corrupt index file.
        let bad_index = dir.join("bad.ivf");
        std::fs::write(&bad_index, b"SPTXIVF1 not really").unwrap();
        let serve = parse_args(&strs(&[
            "serve",
            "--emb",
            &emb_out,
            "--train",
            &train_file,
            "--index",
            &bad_index.to_string_lossy(),
        ]))
        .unwrap();
        assert!(matches!(run(&serve), Err(CliError::Library(_))));
    }

    #[test]
    fn threads_option_is_validated_and_accepted() {
        let bad = parse_args(&strs(&["help", "--threads", "zero"])).unwrap();
        assert!(matches!(run(&bad), Err(CliError::Usage(_))));
        let bad = parse_args(&strs(&["help", "--threads", "0"])).unwrap();
        assert!(matches!(run(&bad), Err(CliError::Usage(_))));
        // A generous cap is a no-op on any machine; the command still runs.
        let ok = parse_args(&strs(&["help", "--threads", "8"])).unwrap();
        assert!(run(&ok).is_ok());
    }

    #[test]
    fn help_prints_usage() {
        let args = parse_args(&strs(&["help"])).unwrap();
        assert_eq!(run(&args).unwrap(), USAGE);
    }
}
