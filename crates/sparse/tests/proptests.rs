//! Property-based tests of the sparse-matrix substrate: format round-trips,
//! kernel equivalences, semiring laws, and incidence invariants.

use proptest::prelude::*;
use sparse::incidence::{hrt, ht, TailSign};
use sparse::semiring::{semiring_spmm, PlusTimes, RotateTriple, TimesTimes};
use sparse::spmm::{coo_spmm, csr_spmm, csr_spmm_into, csr_spmm_into_general, spmm_reference};
use sparse::{Complex32, CooMatrix, DenseMatrix};

/// Arbitrary COO entries within a bounded shape.
fn coo_strategy() -> impl Strategy<Value = (usize, usize, Vec<(usize, usize, f32)>)> {
    (1usize..25, 1usize..20).prop_flat_map(|(rows, cols)| {
        let entry = (0..rows, 0..cols, -4.0f32..4.0);
        (Just(rows), Just(cols), prop::collection::vec(entry, 0..80))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// COO -> CSR -> COO -> CSR reaches a fixed point with duplicates summed.
    #[test]
    fn format_round_trip_fixed_point((rows, cols, entries) in coo_strategy()) {
        let coo = CooMatrix::from_triplets(rows, cols, entries).unwrap();
        let csr1 = coo.to_csr();
        let csr2 = csr1.to_coo().to_csr();
        prop_assert_eq!(csr1, csr2);
    }

    /// Dense materialization commutes with the format conversions.
    #[test]
    fn dense_materialization_commutes((rows, cols, entries) in coo_strategy()) {
        let coo = CooMatrix::from_triplets(rows, cols, entries).unwrap();
        let via_coo = coo.to_dense();
        let via_csr = coo.to_csr().to_dense();
        for (a, b) in via_coo.as_slice().iter().zip(via_csr.as_slice()) {
            prop_assert!((a - b).abs() < 1e-4);
        }
    }

    /// All four SpMM implementations agree with the naive reference.
    #[test]
    fn all_spmm_kernels_agree(
        (rows, cols, entries) in coo_strategy(),
        d in 1usize..10,
        bseed in 0u64..1000,
    ) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(bseed);
        let coo = CooMatrix::from_triplets(rows, cols, entries).unwrap();
        let csr = coo.to_csr();
        let b = DenseMatrix::from_vec(
            cols, d, (0..cols * d).map(|_| rng.gen_range(-1.0..1.0)).collect());

        let want = spmm_reference(&csr, b.view());
        let got_csr = csr_spmm(&csr, &b);
        let got_coo = coo_spmm(&coo, &b);
        let mut got_general = vec![0f32; rows * d];
        csr_spmm_into_general(&csr, b.view(), &mut got_general);
        let mut got_into = vec![0f32; rows * d];
        csr_spmm_into(&csr, b.view(), &mut got_into);

        for i in 0..rows * d {
            let w = want.as_slice()[i];
            prop_assert!((got_csr.as_slice()[i] - w).abs() < 1e-3);
            prop_assert!((got_coo.as_slice()[i] - w).abs() < 1e-3);
            prop_assert!((got_general[i] - w).abs() < 1e-3);
            prop_assert!((got_into[i] - w).abs() < 1e-3);
        }
    }

    /// The PlusTimes semiring is exactly regular SpMM.
    #[test]
    fn plus_times_semiring_is_spmm(
        (rows, cols, entries) in coo_strategy(),
        d in 1usize..8,
    ) {
        let coo = CooMatrix::from_triplets(rows, cols, entries).unwrap();
        let csr = coo.to_csr();
        let b: Vec<f32> = (0..cols * d).map(|i| (i as f32 * 0.37).sin()).collect();
        let want = csr_spmm(&csr, DenseMatrix::from_vec(cols, d, b.clone()).view());
        let got = semiring_spmm::<PlusTimes>(&csr, &b, cols, d);
        for (x, y) in got.iter().zip(want.as_slice()) {
            prop_assert!((x - y).abs() < 1e-3);
        }
    }

    /// Incidence structure: every ht row has exactly 2 nonzeros summing to 0,
    /// every hrt row 3 nonzeros summing to ±1 (h != t).
    #[test]
    fn incidence_row_invariants(
        n in 2usize..50,
        r in 1usize..8,
        picks in prop::collection::vec((0u32..1000, 0u32..1000, 0u32..1000), 1..40),
    ) {
        let heads: Vec<u32> = picks.iter().map(|p| p.0 % n as u32).collect();
        let rels: Vec<u32> = picks.iter().map(|p| p.1 % r as u32).collect();
        let tails: Vec<u32> = picks
            .iter()
            .zip(&heads)
            .map(|(p, &h)| {
                let t = p.2 % n as u32;
                if t == h { (t + 1) % n as u32 } else { t }
            })
            .collect();

        let a = ht(n, &heads, &tails).unwrap();
        for i in 0..a.rows() {
            let row: Vec<(usize, f32)> = a.row(i).collect();
            prop_assert_eq!(row.len(), 2);
            prop_assert!((row.iter().map(|e| e.1).sum::<f32>()).abs() < 1e-6);
        }

        let a = hrt(n, r, &heads, &rels, &tails, TailSign::Negative).unwrap();
        for i in 0..a.rows() {
            let row: Vec<(usize, f32)> = a.row(i).collect();
            prop_assert_eq!(row.len(), 3);
            prop_assert!((row.iter().map(|e| e.1).sum::<f32>() - 1.0).abs() < 1e-6);
        }
    }

    /// DistMult semiring on a one-hot dense operand selects products of the
    /// right entries (spot law: multiplying by all-ones gives 1 per row).
    #[test]
    fn times_times_identity_operand(
        n in 2usize..30,
        r in 1usize..5,
        picks in prop::collection::vec((0u32..1000, 0u32..1000, 0u32..1000), 1..20),
    ) {
        let heads: Vec<u32> = picks.iter().map(|p| p.0 % n as u32).collect();
        let rels: Vec<u32> = picks.iter().map(|p| p.1 % r as u32).collect();
        let tails: Vec<u32> = picks
            .iter()
            .zip(&heads)
            .map(|(p, &h)| {
                let t = p.2 % n as u32;
                if t == h { (t + 1) % n as u32 } else { t }
            })
            .collect();
        let a = hrt(n, r, &heads, &rels, &tails, TailSign::Positive).unwrap();
        let ones = vec![1.0f32; (n + r) * 3];
        let out = semiring_spmm::<TimesTimes>(&a, &ones, n + r, 3);
        for v in out {
            prop_assert!((v - 1.0).abs() < 1e-6);
        }
    }

    /// Rotate semiring with the identity rotation and t = h scores zero.
    #[test]
    fn rotate_identity_rotation_scores_zero(h_re in -2.0f32..2.0, h_im in -2.0f32..2.0) {
        // 2 entities + 1 relation, complex dim 1: h = e0, t = e1 = h, r = 1.
        let a = hrt(2, 1, &[0], &[0], &[1], TailSign::Negative).unwrap();
        let emb = vec![
            Complex32::new(h_re, h_im),
            Complex32::new(h_re, h_im),
            Complex32::ONE,
        ];
        let out = semiring_spmm::<RotateTriple>(&a, &emb, 3, 1);
        prop_assert!(out[0].norm_sqr() < 1e-8);
    }

    /// Transpose preserves nnz and flips shape for arbitrary matrices.
    #[test]
    fn transpose_preserves_nnz((rows, cols, entries) in coo_strategy()) {
        let csr = CooMatrix::from_triplets(rows, cols, entries).unwrap().to_csr();
        let t = csr.transpose();
        prop_assert_eq!(t.nnz(), csr.nnz());
        prop_assert_eq!((t.rows(), t.cols()), (csr.cols(), csr.rows()));
    }
}
