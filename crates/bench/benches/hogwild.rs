//! Sync-vs-async (Hogwild) training: epoch throughput across a worker
//! sweep, and an epochs-to-quality convergence comparison.
//!
//! The asynchronous driver removes the per-step all-reduce barrier of the
//! synchronous data-parallel driver; this bench quantifies both sides of
//! that trade:
//!
//! * `hogwild/{sync,async}/{1,2,4,8}` — wall time of a short training run
//!   through each driver at each worker count. On a multicore machine the
//!   async arm's epoch throughput meets or beats the sync arm at equal
//!   worker count (no barrier, no gradient reduction); on a single core
//!   both arms serialize and the sweep measures pure driver overhead.
//! * the **convergence sweep** (JSON only) — filtered MRR after 2/4/8
//!   epochs for the sync arm and the 4-worker async arm: staleness and
//!   lost increments perturb the trajectory, so the async arm may need
//!   more epochs to a given MRR; the records show how many.
//!
//! Besides the Criterion report, running this bench writes
//! `BENCH_hogwild.json` (see `sptx_bench::json`): one record per
//! measurement with `arm`, `workers`, `epochs`, `ms_per_epoch`, and `mrr`,
//! to the directory named by `SPTX_BENCH_JSON_DIR` (default `.`). The
//! JSON pass re-times the drivers with plain `Instant` sweeps — numbers,
//! not Criterion's distribution estimates, so scripts can diff them.
//!
//! Run with `cargo bench -p sptx-bench --bench hogwild`. The async arm is
//! nondeterministic at 2+ workers; MRR records are statistical.

use std::time::Duration;

use criterion::{BenchmarkId, Criterion};
use kg::eval::{EvalConfig, SampleStrategy};
use kg::synthetic::SyntheticKgBuilder;
use kg::Dataset;
use sptransx::distributed::{
    train_data_parallel, train_data_parallel_returning, train_hogwild, train_hogwild_returning,
};
use sptransx::{SpTransE, TrainConfig};
use sptx_bench::json::{write_bench_json, JsonObject};

const WORKER_SWEEP: [usize; 4] = [1, 2, 4, 8];

fn dataset() -> Dataset {
    SyntheticKgBuilder::new(2_000, 8)
        .triples(6_000)
        .seed(0xA58C)
        .build()
}

fn config(epochs: usize) -> TrainConfig {
    TrainConfig {
        epochs,
        batch_size: 128,
        dim: 16,
        rel_dim: 8,
        lr: 0.05,
        ..Default::default()
    }
}

fn bench_epoch_throughput(c: &mut Criterion) {
    let ds = dataset();
    let mut group = c.benchmark_group("hogwild");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(2));
    group.warm_up_time(Duration::from_millis(300));

    // Each iteration is a whole 1-epoch driver run (replica construction
    // included): the drivers own their replicas, so per-epoch reuse cannot
    // be isolated from outside. Both arms pay the identical setup, so the
    // sync-vs-async delta is the barrier cost the async arm removes.
    for &w in &WORKER_SWEEP {
        group.bench_with_input(BenchmarkId::new("sync", w), &w, |b, &w| {
            b.iter(|| train_data_parallel(&ds, &config(1), w, SpTransE::from_config).unwrap());
        });
        group.bench_with_input(BenchmarkId::new("async", w), &w, |b, &w| {
            b.iter(|| train_hogwild(&ds, &config(1), w, SpTransE::from_config).unwrap());
        });
    }
    group.finish();
}

fn eval_config() -> EvalConfig {
    EvalConfig {
        max_triples: Some(500),
        sample: SampleStrategy::Strided,
        ..EvalConfig::default()
    }
}

/// One record per measurement: the worker sweep at fixed epochs (throughput
/// view) plus the epochs sweep at fixed arms (convergence view).
/// `ms_per_epoch` comes from the driver's own wall clock (training loop
/// only, replica setup excluded).
fn emit_json() {
    let ds = dataset();
    let known = ds.all_known();
    let eval = eval_config();
    let mut records = Vec::new();

    let epochs = 3;
    for &w in &WORKER_SWEEP {
        let (sync, sync_model) =
            train_data_parallel_returning(&ds, &config(epochs), w, SpTransE::from_config)
                .expect("sync arm");
        let sync_mrr = kg::eval::evaluate_batched(&sync_model, &ds.test, &known, &eval).mrr;
        let (hog, hog_model) =
            train_hogwild_returning(&ds, &config(epochs), w, SpTransE::from_config)
                .expect("async arm");
        let hog_mrr = kg::eval::evaluate_batched(&hog_model, &ds.test, &known, &eval).mrr;
        for (arm, report, mrr) in [("sync", &sync, sync_mrr), ("async", &hog, hog_mrr)] {
            records.push(
                JsonObject::new()
                    .str("bench", "throughput")
                    .str("arm", arm)
                    .int("workers", w as u64)
                    .int("epochs", epochs as u64)
                    .num(
                        "ms_per_epoch",
                        report.wall.as_secs_f64() * 1e3 / epochs as f64,
                    )
                    .num("mrr", f64::from(mrr)),
            );
        }
    }

    // Convergence: quality as a function of epochs, sync vs 4-worker async.
    for epochs in [2usize, 4, 8] {
        let (sync, sync_model) =
            train_data_parallel_returning(&ds, &config(epochs), 1, SpTransE::from_config)
                .expect("sync arm");
        let sync_mrr = kg::eval::evaluate_batched(&sync_model, &ds.test, &known, &eval).mrr;
        let (hog, hog_model) =
            train_hogwild_returning(&ds, &config(epochs), 4, SpTransE::from_config)
                .expect("async arm");
        let hog_mrr = kg::eval::evaluate_batched(&hog_model, &ds.test, &known, &eval).mrr;
        for (arm, workers, report, mrr) in
            [("sync", 1u64, &sync, sync_mrr), ("async", 4, &hog, hog_mrr)]
        {
            records.push(
                JsonObject::new()
                    .str("bench", "convergence")
                    .str("arm", arm)
                    .int("workers", workers)
                    .int("epochs", epochs as u64)
                    .num(
                        "ms_per_epoch",
                        report.wall.as_secs_f64() * 1e3 / epochs as f64,
                    )
                    .num("mrr", f64::from(mrr)),
            );
        }
    }

    match write_bench_json("hogwild", &records) {
        Ok(path) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("could not write BENCH_hogwild.json: {e}"),
    }
}

fn main() {
    let mut c = Criterion::default();
    bench_epoch_throughput(&mut c);
    emit_json();
}
