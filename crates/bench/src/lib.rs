//! Shared harness utilities for the benchmark binaries that regenerate the
//! paper's tables and figures. See `src/bin/` for one binary per artifact
//! and `benches/` for the Criterion micro-benchmarks.
//!
//! **Place in the workspace:** the top of the dependency graph — it drives
//! every other crate (`sptransx` models over `kg` datasets, with `simcache`
//! for the cache-miss analog) and is depended on by nothing.

#![deny(missing_docs)]

pub mod harness;
pub mod json;
