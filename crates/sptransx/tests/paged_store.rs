//! Out-of-core training contract: the paged parameter store moves bytes,
//! never arithmetic.
//!
//! Three pillars, mirroring the CI `out-of-core-smoke` job in-process:
//!
//! 1. **Bit-identity** — training with the embedding table paged to backing
//!    storage under a tight cache budget produces byte-for-byte the same
//!    losses and final embeddings as the fully resident run, over both the
//!    in-RAM and file-backed [`tensor::RowStorage`] backends.
//! 2. **Counter validation** — the pager's hit/miss counters are replayed
//!    through an independent `simcache` fully-associative LRU model over the
//!    same row trace and must match *exactly* (the PR-6 query-cache idiom).
//! 3. **Failure modes** — budgets below the working set, incompatible
//!    optimizers, and the data-parallel driver all refuse loudly instead of
//!    silently corrupting state.

use kg::synthetic::SyntheticKgBuilder;
use kg::Dataset;
use sptransx::{FileRowStorage, KgeModel, OptimizerKind, SpTorusE, SpTransE, TrainConfig, Trainer};
use tensor::{PageStats, PrefetchStats, RowStorage, VecStorage};

fn dataset() -> Dataset {
    SyntheticKgBuilder::new(200, 4)
        .triples(1200)
        .seed(9)
        .build()
}

fn config() -> TrainConfig {
    TrainConfig {
        epochs: 3,
        batch_size: 16,
        dim: 8,
        lr: 0.05,
        seed: 7,
        ..Default::default()
    }
}

/// A cache budget safely above any batch's working set (≤ 3 rows per triple
/// × 2 incidence matrices × 16 triples) but well below the 204-row table,
/// so every epoch exercises eviction and write-back.
const BUDGET: usize = 96;

struct Run {
    embeddings: Vec<f32>,
    losses: Vec<f32>,
}

fn train_resident(ds: &Dataset, cfg: &TrainConfig) -> Run {
    let model = SpTransE::from_config(ds, cfg).unwrap();
    let emb = model.embedding_param();
    let mut trainer = Trainer::new(model, ds, cfg).unwrap();
    let report = trainer.run().unwrap();
    let model = trainer.into_model();
    Run {
        embeddings: model.store().value(emb).as_slice().to_vec(),
        losses: report.epoch_losses,
    }
}

/// Trains with the table paged out to `storage`, returning the run plus the
/// pager's counters and row trace (collected before unpaging).
fn train_paged(
    ds: &Dataset,
    cfg: &TrainConfig,
    storage: Box<dyn RowStorage>,
    budget: usize,
) -> (Run, PageStats, Vec<u32>) {
    let model = SpTransE::from_config(ds, cfg).unwrap();
    let emb = model.embedding_param();
    let mut trainer = Trainer::new(model, ds, cfg).unwrap();
    let store = trainer.model_mut().store_mut();
    store.page_out(emb, storage, budget).unwrap();
    store.pager_mut(emb).unwrap().set_tracing(true);
    let report = trainer.run().unwrap();
    let store = trainer.model_mut().store_mut();
    let pager = store.pager(emb).unwrap();
    let stats = pager.stats();
    let trace = pager.trace().unwrap().to_vec();
    store.unpage(emb).unwrap();
    let model = trainer.into_model();
    (
        Run {
            embeddings: model.store().value(emb).as_slice().to_vec(),
            losses: report.epoch_losses,
        },
        stats,
        trace,
    )
}

fn assert_bits_equal(a: &[f32], b: &[f32], what: &str) {
    assert_eq!(a.len(), b.len(), "{what}: length mismatch");
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        assert_eq!(
            x.to_bits(),
            y.to_bits(),
            "{what}: element {i} differs ({x} vs {y})"
        );
    }
}

/// Replays the pager's row trace through simcache configured as a
/// fully-associative LRU of `budget` lines (one synthetic 64-byte line per
/// row), the same cross-validation idiom the serving layer uses for its
/// query cache.
fn simcache_replay(trace: &[u32], budget: usize) -> simcache::CacheStats {
    let mut sim = simcache::Cache::new(simcache::CacheConfig {
        size_bytes: budget * 64,
        line_bytes: 64,
        ways: budget,
    });
    for &row in trace {
        sim.access(u64::from(row) * 64);
    }
    sim.stats()
}

/// Everything a traced prefetch run leaves behind, alongside the [`Run`].
struct PagedTrace {
    stats: PageStats,
    pstats: PrefetchStats,
    trace: Vec<u32>,
    call_lens: Vec<u32>,
    prefetch_events: Vec<(u32, Vec<u32>)>,
}

/// Generic paged training run over any model family with an `embeddings`
/// table, optionally with the background prefetch pipeline enabled.
fn train_paged_model<M: KgeModel>(
    ds: &Dataset,
    cfg: &TrainConfig,
    storage: Box<dyn RowStorage>,
    budget: usize,
    prefetch: bool,
    ctor: impl FnOnce(&Dataset, &TrainConfig) -> sptransx::Result<M>,
) -> sptransx::Result<(Run, PagedTrace)> {
    let model = ctor(ds, cfg)?;
    let emb = model
        .store()
        .lookup("embeddings")
        .expect("embeddings table");
    let mut trainer = Trainer::new(model, ds, cfg)?;
    let store = trainer.model_mut().store_mut();
    store.page_out(emb, storage, budget)?;
    store.pager_mut(emb).unwrap().set_tracing(true);
    if prefetch {
        trainer.model_mut().set_prefetch(true)?;
    }
    let report = trainer.run()?;
    let store = trainer.model_mut().store_mut();
    let pager = store.pager(emb).unwrap();
    let paged_trace = PagedTrace {
        stats: pager.stats(),
        pstats: pager.prefetch_stats(),
        trace: pager.trace().unwrap().to_vec(),
        call_lens: pager.trace_call_lens().to_vec(),
        prefetch_events: pager.trace_prefetch_events().to_vec(),
    };
    store.unpage(emb)?;
    let model = trainer.into_model();
    Ok((
        Run {
            embeddings: model.store().value(emb).as_slice().to_vec(),
            losses: report.epoch_losses,
        },
        paged_trace,
    ))
}

/// The extended simcache replay: re-derives the pager's prefetch staging
/// decisions from the recorded request log and the simulated residency
/// alone (via the non-mutating `contains` probe), mirroring the CLI's
/// validation. Returns the cache stats plus
/// `(staged, admitted, demand_loads, wasted)`.
fn simcache_prefetch_replay(
    t: &PagedTrace,
    budget: usize,
) -> (simcache::CacheStats, PrefetchStats) {
    let mut sim = simcache::Cache::new(simcache::CacheConfig {
        size_bytes: budget * 64,
        line_bytes: 64,
        ways: budget,
    });
    let mut out = PrefetchStats::default();
    let mut staged: Vec<u32> = Vec::new();
    let mut used: Vec<bool> = Vec::new();
    let mut events = t.prefetch_events.iter().peekable();
    let mut pos = 0usize;
    for (call, &len) in t.call_lens.iter().enumerate() {
        while let Some((at_call, requested)) = events.peek() {
            if *at_call as usize != call {
                break;
            }
            staged.clear();
            staged.extend(
                requested
                    .iter()
                    .copied()
                    .filter(|&r| !sim.contains(u64::from(r) * 64)),
            );
            used.clear();
            used.resize(staged.len(), false);
            out.staged += staged.len() as u64;
            events.next();
        }
        for &row in &t.trace[pos..pos + len as usize] {
            if sim.access(u64::from(row) * 64) == simcache::Access::Miss {
                match staged.binary_search(&row) {
                    Ok(i) => {
                        out.admitted += 1;
                        used[i] = true;
                    }
                    Err(_) => out.demand_loads += 1,
                }
            }
        }
        pos += len as usize;
        out.wasted += used.iter().filter(|&&u| !u).count() as u64;
        staged.clear();
        used.clear();
    }
    (sim.stats(), out)
}

#[test]
fn paged_training_is_bit_identical_to_resident_vec_backend() {
    let ds = dataset();
    let cfg = config();
    let resident = train_resident(&ds, &cfg);
    let (rows, cols) = (204, cfg.dim);
    let (paged, stats, _) = train_paged(&ds, &cfg, Box::new(VecStorage::new(rows, cols)), BUDGET);
    assert_eq!(paged.losses, resident.losses, "per-epoch losses diverged");
    assert_bits_equal(&paged.embeddings, &resident.embeddings, "embeddings");
    // The tight budget really exercised the machinery.
    assert!(stats.evictions > 0, "no evictions at budget {BUDGET}");
    assert!(stats.write_backs > 0, "no write-backs at budget {BUDGET}");
}

#[test]
fn paged_training_is_bit_identical_to_resident_file_backend() {
    let ds = dataset();
    let cfg = config();
    let resident = train_resident(&ds, &cfg);
    let dir = std::env::temp_dir().join("sptx-paged-store-test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(format!("table_{}.bin", std::process::id()));
    let storage = FileRowStorage::create(&path, 204, cfg.dim).unwrap();
    let (paged, stats, _) = train_paged(&ds, &cfg, Box::new(storage), BUDGET);
    std::fs::remove_file(&path).ok();
    assert_eq!(paged.losses, resident.losses, "per-epoch losses diverged");
    assert_bits_equal(&paged.embeddings, &resident.embeddings, "embeddings");
    assert!(stats.write_backs > 0, "dirty rows never hit the file");
}

#[test]
fn pager_counters_match_simcache_lru_replay_exactly() {
    let ds = dataset();
    let cfg = config();
    let (_, stats, trace) = train_paged(&ds, &cfg, Box::new(VecStorage::new(204, cfg.dim)), BUDGET);
    assert_eq!(
        stats.hits + stats.misses,
        trace.len() as u64,
        "every traced access is a hit or a miss"
    );
    let sim = simcache_replay(&trace, BUDGET);
    assert_eq!(
        stats.hits, sim.hits,
        "hit counts diverge from the LRU model"
    );
    assert_eq!(
        stats.misses, sim.misses,
        "miss counts diverge from the LRU model"
    );
    // Fully associative with sequential slot fill: the first `BUDGET` misses
    // occupy free slots, every later miss evicts exactly one row.
    assert_eq!(
        stats.evictions,
        stats.misses.saturating_sub(BUDGET as u64),
        "eviction count inconsistent with fully-associative fill"
    );
}

#[test]
fn counters_match_model_at_full_table_budget_too() {
    // Budget = whole table: after compulsory misses everything hits and
    // nothing is ever evicted.
    let ds = dataset();
    let cfg = config();
    let (_, stats, trace) = train_paged(&ds, &cfg, Box::new(VecStorage::new(204, cfg.dim)), 204);
    let sim = simcache_replay(&trace, 204);
    assert_eq!((stats.hits, stats.misses), (sim.hits, sim.misses));
    assert_eq!(stats.evictions, 0);
    assert!(stats.misses <= 204, "at most one compulsory miss per row");
}

#[test]
fn budget_below_working_set_is_a_hard_error() {
    let ds = dataset();
    let cfg = config();
    let model = SpTransE::from_config(&ds, &cfg).unwrap();
    let emb = model.embedding_param();
    let mut trainer = Trainer::new(model, &ds, &cfg).unwrap();
    trainer
        .model_mut()
        .store_mut()
        .page_out(emb, Box::new(VecStorage::new(204, cfg.dim)), 4)
        .unwrap();
    let err = trainer
        .run()
        .expect_err("a 4-row budget cannot hold a batch");
    let msg = err.to_string();
    assert!(
        msg.contains("cache budget"),
        "unexpected error message: {msg}"
    );
}

#[test]
fn page_out_rejects_invalid_configurations() {
    let ds = dataset();
    let cfg = config();
    let mut model = SpTransE::from_config(&ds, &cfg).unwrap();
    let emb = model.embedding_param();
    // Shape mismatch between the parameter and the backing store.
    assert!(model
        .store_mut()
        .page_out(emb, Box::new(VecStorage::new(10, 3)), 8)
        .is_err());
    // Zero budget.
    assert!(model
        .store_mut()
        .page_out(emb, Box::new(VecStorage::new(204, cfg.dim)), 0)
        .is_err());
    // Paging out twice.
    model
        .store_mut()
        .page_out(emb, Box::new(VecStorage::new(204, cfg.dim)), 32)
        .unwrap();
    assert!(model
        .store_mut()
        .page_out(emb, Box::new(VecStorage::new(204, cfg.dim)), 32)
        .is_err());
}

#[test]
#[should_panic(expected = "does not support paged parameters")]
fn adagrad_refuses_paged_parameters() {
    let ds = dataset();
    let cfg = TrainConfig {
        optimizer: OptimizerKind::Adagrad,
        ..config()
    };
    let model = SpTransE::from_config(&ds, &cfg).unwrap();
    let emb = model.embedding_param();
    let mut trainer = Trainer::new(model, &ds, &cfg).unwrap();
    trainer
        .model_mut()
        .store_mut()
        .page_out(emb, Box::new(VecStorage::new(204, cfg.dim)), BUDGET)
        .unwrap();
    let _ = trainer.run();
}

#[test]
fn data_parallel_driver_rejects_paged_models() {
    let ds = dataset();
    let cfg = config();
    let err = sptransx::distributed::train_data_parallel(&ds, &cfg, 2, |ds, cfg| {
        let mut m = SpTransE::from_config(ds, cfg)?;
        let emb = m.embedding_param();
        m.store_mut()
            .page_out(emb, Box::new(VecStorage::new(204, cfg.dim)), BUDGET)?;
        Ok(m)
    })
    .expect_err("paged replicas must be rejected");
    assert!(err.to_string().contains("data-parallel"));
}

#[test]
fn unpaged_table_round_trips_through_storage() {
    // page_out → a few batches → unpage restores a fully resident table
    // usable by the (paging-unaware) evaluation path.
    let ds = dataset();
    let cfg = TrainConfig {
        epochs: 1,
        ..config()
    };
    let resident = train_resident(&ds, &cfg);
    let (paged, _, _) = train_paged(&ds, &cfg, Box::new(VecStorage::new(204, cfg.dim)), BUDGET);
    assert_bits_equal(&paged.embeddings, &resident.embeddings, "one-epoch table");
}

#[test]
fn hogwild_driver_rejects_paged_models() {
    let ds = dataset();
    let cfg = config();
    let err = sptransx::distributed::train_hogwild(&ds, &cfg, 2, |ds, cfg| {
        let mut m = SpTransE::from_config(ds, cfg)?;
        let emb = m.embedding_param();
        m.store_mut()
            .page_out(emb, Box::new(VecStorage::new(204, cfg.dim)), BUDGET)?;
        Ok(m)
    })
    .expect_err("paged replicas must be rejected");
    assert!(err.to_string().contains("asynchronous driver"));
}

#[test]
fn file_backend_coalesces_io_transfers_below_per_row_counts() {
    // Write coalescing: the pager batches maximal runs of adjacent rows into
    // single storage transfers, so over a full training run the *transfer*
    // counts must come in strictly below the per-row miss/write-back
    // counters — while the bytes on disk stay exactly what a row-at-a-time
    // pager would have written.
    let ds = dataset();
    let cfg = config();
    let dir = std::env::temp_dir().join("sptx-test-io-coalescing");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("emb.bin");

    let model = SpTransE::from_config(&ds, &cfg).unwrap();
    let emb = model.embedding_param();
    let mut trainer = Trainer::new(model, &ds, &cfg).unwrap();
    let store = trainer.model_mut().store_mut();
    let (rows, cols) = store.param_shape(emb);
    store
        .page_out(
            emb,
            Box::new(FileRowStorage::create(&path, rows, cols).unwrap()),
            BUDGET,
        )
        .unwrap();
    trainer.run().unwrap();

    let store = trainer.model_mut().store_mut();
    store.flush_paged(emb).unwrap();
    let pager = store.pager(emb).unwrap();
    let stats = pager.stats();
    let (reads, writes) = pager.storage_io_ops();
    assert!(
        stats.misses > 0 && stats.write_backs > 0,
        "budget too loose"
    );
    assert!(
        reads < stats.misses,
        "no read coalescing: {reads} transfers for {} misses",
        stats.misses
    );
    assert!(
        writes < stats.write_backs,
        "no write coalescing: {writes} transfers for {} write-backs",
        stats.write_backs
    );

    // Unchanged bytes: the flushed file must hold exactly the table the
    // pager reassembles, row for row.
    store.unpage(emb).unwrap();
    let final_emb = trainer.model().store().value(emb).as_slice().to_vec();
    let mut reopened = FileRowStorage::open(&path).unwrap();
    let mut from_disk = vec![0f32; rows * cols];
    reopened.read_rows_into(0, rows, &mut from_disk).unwrap();
    assert_bits_equal(&from_disk, &final_emb, "flushed file vs final table");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn prefetch_is_bit_identical_across_paged_model_families() {
    // `--prefetch true` ≡ `--prefetch false` ≡ resident, for both paged
    // model families, over both storage backends. The whole suite reruns
    // under SPTX_NUM_THREADS ∈ {1, 4} in CI, covering the thread-count leg.
    let ds = dataset();
    let cfg = config();

    // SpTransE, in-RAM backend.
    let resident = train_resident(&ds, &cfg);
    let (sync, sync_t) = train_paged_model(
        &ds,
        &cfg,
        Box::new(VecStorage::new(204, cfg.dim)),
        BUDGET,
        false,
        SpTransE::from_config,
    )
    .unwrap();
    let (pf, pf_t) = train_paged_model(
        &ds,
        &cfg,
        Box::new(VecStorage::new(204, cfg.dim)),
        BUDGET,
        true,
        SpTransE::from_config,
    )
    .unwrap();
    assert_eq!(pf.losses, sync.losses, "transe: losses diverged");
    assert_bits_equal(&pf.embeddings, &sync.embeddings, "transe: prefetch vs sync");
    assert_bits_equal(
        &pf.embeddings,
        &resident.embeddings,
        "transe: prefetch vs resident",
    );
    // Staged bytes change where data comes from, never what the cache
    // decides: the decision stream (and therefore PageStats) is identical.
    assert_eq!(
        pf_t.stats, sync_t.stats,
        "transe: prefetch changed a paging decision"
    );
    assert_eq!(
        pf_t.trace, sync_t.trace,
        "transe: prefetch changed the access trace"
    );
    assert!(pf_t.pstats.admitted > 0, "prefetch never admitted a row");
    assert!(
        pf_t.stats.evictions > 0,
        "budget too loose to prove anything"
    );

    // SpTransE, file backend (the worker really reads from disk).
    let dir = std::env::temp_dir().join("sptx-prefetch-store-test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(format!("pf_{}.bin", std::process::id()));
    let storage = FileRowStorage::create(&path, 204, cfg.dim).unwrap();
    let (pf_file, pf_file_t) = train_paged_model(
        &ds,
        &cfg,
        Box::new(storage),
        BUDGET,
        true,
        SpTransE::from_config,
    )
    .unwrap();
    std::fs::remove_file(&path).ok();
    assert_bits_equal(
        &pf_file.embeddings,
        &resident.embeddings,
        "transe/file: prefetch vs resident",
    );
    assert!(pf_file_t.pstats.admitted > 0);

    // SpTorusE (the other paged family).
    let torus_cfg = cfg.clone();
    let torus_resident = {
        let model = SpTorusE::from_config(&ds, &torus_cfg).unwrap();
        let emb = model.embedding_param();
        let mut trainer = Trainer::new(model, &ds, &torus_cfg).unwrap();
        let report = trainer.run().unwrap();
        let model = trainer.into_model();
        Run {
            embeddings: model.store().value(emb).as_slice().to_vec(),
            losses: report.epoch_losses,
        }
    };
    let (torus_pf, torus_t) = train_paged_model(
        &ds,
        &torus_cfg,
        Box::new(VecStorage::new(204, torus_cfg.dim)),
        BUDGET,
        true,
        SpTorusE::from_config,
    )
    .unwrap();
    assert_eq!(
        torus_pf.losses, torus_resident.losses,
        "toruse: losses diverged"
    );
    assert_bits_equal(
        &torus_pf.embeddings,
        &torus_resident.embeddings,
        "toruse: prefetch vs resident",
    );
    assert!(torus_t.pstats.admitted > 0);
}

#[test]
fn prefetch_is_bit_identical_under_eviction_pressure() {
    // Budget barely above the working set: admissions constantly trigger
    // evictions of freshly staged-and-used rows, the hardest interleaving
    // for the staging/write-back interaction.
    let ds = dataset();
    let cfg = config();
    // Find the tightest budget that can pin every batch's working set (the
    // pager hard-errors below it), then run both arms exactly there.
    let mut budget = 40;
    let sync = loop {
        match train_paged_model(
            &ds,
            &cfg,
            Box::new(VecStorage::new(204, cfg.dim)),
            budget,
            false,
            SpTransE::from_config,
        ) {
            Ok(run) => break run,
            Err(e) => {
                assert!(
                    e.to_string().contains("cache budget"),
                    "unexpected failure at budget {budget}: {e}"
                );
                budget += 4;
                assert!(budget <= 204, "never found a workable budget");
            }
        }
    };
    let (pf, pf_t) = train_paged_model(
        &ds,
        &cfg,
        Box::new(VecStorage::new(204, cfg.dim)),
        budget,
        true,
        SpTransE::from_config,
    )
    .unwrap();
    assert_eq!(pf.losses, sync.0.losses, "pressure: losses diverged");
    assert_bits_equal(
        &pf.embeddings,
        &sync.0.embeddings,
        "pressure: prefetch vs sync",
    );
    assert_eq!(
        pf_t.stats, sync.1.stats,
        "pressure: decision streams diverged"
    );
    assert!(
        budget < BUDGET && pf_t.stats.evictions > 0,
        "budget {budget} not tight enough: {} evictions",
        pf_t.stats.evictions,
    );
    assert!(pf_t.pstats.admitted > 0);
}

#[test]
fn prefetch_counters_match_extended_simcache_replay_exactly() {
    let ds = dataset();
    let cfg = config();
    let (_, t) = train_paged_model(
        &ds,
        &cfg,
        Box::new(VecStorage::new(204, cfg.dim)),
        BUDGET,
        true,
        SpTransE::from_config,
    )
    .unwrap();
    // Internal consistency first.
    assert_eq!(
        t.pstats.admitted + t.pstats.demand_loads,
        t.stats.misses,
        "every miss is either admitted from staging or demand-loaded"
    );
    assert_eq!(
        t.pstats.admitted + t.pstats.wasted,
        t.pstats.staged,
        "every staged row is either consumed or wasted"
    );
    assert!(
        !t.prefetch_events.is_empty(),
        "no prefetch requests recorded"
    );
    // The independent model re-derives every counter from the request log.
    let (sim_stats, sim_pstats) = simcache_prefetch_replay(&t, BUDGET);
    assert_eq!(
        (sim_stats.hits, sim_stats.misses),
        (t.stats.hits, t.stats.misses),
        "hit/miss replay diverged"
    );
    assert_eq!(
        sim_pstats, t.pstats,
        "prefetch counters diverged from the extended replay"
    );
}
