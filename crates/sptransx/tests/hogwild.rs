//! The asynchronous (Hogwild) training arm: degenerate determinism,
//! race-safety under forced row conflicts, and statistical agreement with
//! the synchronous arm.
//!
//! The async driver is explicitly outside the bit-determinism contract at
//! 2+ workers, so these tests split into two regimes:
//!
//! * `workers == 1` — the driver must collapse to the synchronous
//!   `Trainer` **bit-for-bit** (same losses, same embeddings): the single
//!   worker runs inline on the caller thread, sweeps the identity shard in
//!   order, and executes the exact `Trainer` step sequence.
//! * `workers >= 2` — only statistical properties hold: parameters stay
//!   finite under heavy deliberate row conflicts, loss decreases, and the
//!   final filtered MRR lands within tolerance of the synchronous arm.
//!
//! CI re-runs this suite under `SPTX_NUM_THREADS=1` and `=4`; nothing here
//! may depend on pool width.

use kg::eval::{EvalConfig, SampleStrategy};
use kg::synthetic::SyntheticKgBuilder;
use kg::Dataset;
use sptransx::distributed::train_hogwild_returning;
use sptransx::{KgeModel, SpRotatE, SpTransE, TrainConfig, Trainer};

fn dataset() -> Dataset {
    SyntheticKgBuilder::new(60, 4).triples(600).seed(40).build()
}

fn config() -> TrainConfig {
    TrainConfig {
        epochs: 4,
        batch_size: 64,
        dim: 8,
        lr: 0.05,
        ..Default::default()
    }
}

/// Losses and all final parameter tables of a model, as raw bits carriers.
fn snapshot<M: KgeModel>(losses: &[f32], model: &M) -> (Vec<f32>, Vec<Vec<f32>>) {
    let params = model
        .store()
        .param_ids()
        .into_iter()
        .map(|id| model.store().value(id).as_slice().to_vec())
        .collect();
    (losses.to_vec(), params)
}

fn assert_bitwise_equal(a: &(Vec<f32>, Vec<Vec<f32>>), b: &(Vec<f32>, Vec<Vec<f32>>), ctx: &str) {
    assert_eq!(a.0.len(), b.0.len(), "{ctx}: epoch count differs");
    for (i, (x, y)) in a.0.iter().zip(&b.0).enumerate() {
        assert_eq!(x.to_bits(), y.to_bits(), "{ctx}: epoch {i} loss {x} vs {y}");
    }
    assert_eq!(a.1.len(), b.1.len(), "{ctx}: parameter count differs");
    for (p, (pa, pb)) in a.1.iter().zip(&b.1).enumerate() {
        assert_eq!(pa.len(), pb.len(), "{ctx}: param {p} length differs");
        for (j, (x, y)) in pa.iter().zip(pb).enumerate() {
            assert_eq!(
                x.to_bits(),
                y.to_bits(),
                "{ctx}: param {p} scalar {j}: {x} vs {y}"
            );
        }
    }
}

/// Degenerate determinism: at `workers == 1` the async driver is the
/// synchronous `Trainer` — same plan, same step sequence, inline execution —
/// so its report and final embeddings must match bit-for-bit.
#[test]
fn single_worker_is_bit_identical_to_synchronous_trainer() {
    let ds = dataset();
    let cfg = config();

    let mut trainer = Trainer::new(SpTransE::from_config(&ds, &cfg).unwrap(), &ds, &cfg).unwrap();
    let sync_report = trainer.run().unwrap();
    let sync_model = trainer.into_model();

    let (async_report, async_model) =
        train_hogwild_returning(&ds, &cfg, 1, SpTransE::from_config).unwrap();

    assert_eq!(async_report.workers, 1);
    assert_eq!(async_report.steps, sync_report.epoch_losses.len() * 9);
    assert_bitwise_equal(
        &snapshot(&sync_report.epoch_losses, &sync_model),
        &snapshot(&async_report.epoch_losses, &async_model),
        "SpTransE sync vs async(1)",
    );
}

/// Same degeneracy for a model with a nontrivial epoch hook (SpRotatE
/// reprojects relations in `end_epoch`): the epoch-edge dirty-row fold and
/// rank-0 renormalization must reproduce the `Trainer`'s sweep exactly.
#[test]
fn single_worker_matches_trainer_for_rotate_epoch_hook() {
    let ds = dataset();
    let cfg = config();

    let mut trainer = Trainer::new(SpRotatE::from_config(&ds, &cfg).unwrap(), &ds, &cfg).unwrap();
    let sync_report = trainer.run().unwrap();
    let sync_model = trainer.into_model();

    let (async_report, async_model) =
        train_hogwild_returning(&ds, &cfg, 1, SpRotatE::from_config).unwrap();

    assert_bitwise_equal(
        &snapshot(&sync_report.epoch_losses, &sync_model),
        &snapshot(&async_report.epoch_losses, &async_model),
        "SpRotatE sync vs async(1)",
    );
}

/// Safety/liveness under forced contention: a vocabulary so small that
/// every worker's every batch collides on the same embedding rows. The run
/// must not panic, every shared scalar must come out finite (no torn or
/// corrupted writes — racy word-sized stores lose increments, never bits),
/// and the loss must still trend down.
#[test]
fn many_workers_on_tiny_vocab_stay_finite_and_learn() {
    let ds = SyntheticKgBuilder::new(10, 2).triples(400).seed(7).build();
    let cfg = TrainConfig {
        epochs: 5,
        batch_size: 16,
        dim: 8,
        lr: 0.02,
        ..Default::default()
    };
    let (report, model) = train_hogwild_returning(&ds, &cfg, 8, SpTransE::from_config).unwrap();

    assert_eq!(report.workers, 8);
    assert_eq!(report.epoch_losses.len(), 5);
    for id in model.store().param_ids() {
        assert!(
            model
                .store()
                .value(id)
                .as_slice()
                .iter()
                .all(|x| x.is_finite()),
            "non-finite scalar in {:?} after contended async training",
            id
        );
    }
    let first = report.epoch_losses.first().copied().unwrap();
    let last = report.epoch_losses.last().copied().unwrap();
    assert!(
        last <= first,
        "loss did not trend down under contention: {:?}",
        report.epoch_losses
    );
}

/// Statistical agreement: at 4 workers the async arm's filtered MRR must
/// land within 5% relative of the synchronous arm's (the paper-style
/// Hogwild claim — staleness perturbs the trajectory, not the quality).
#[test]
fn four_worker_mrr_is_within_tolerance_of_sync() {
    let ds = dataset();
    let cfg = config();
    let eval = EvalConfig {
        max_triples: Some(500),
        sample: SampleStrategy::Strided,
        ..EvalConfig::default()
    };
    let known = ds.all_known();

    let mut trainer = Trainer::new(SpTransE::from_config(&ds, &cfg).unwrap(), &ds, &cfg).unwrap();
    trainer.run().unwrap();
    let sync_model = trainer.into_model();
    let sync_mrr = kg::eval::evaluate_batched(&sync_model, &ds.test, &known, &eval).mrr;

    let (_, async_model) = train_hogwild_returning(&ds, &cfg, 4, SpTransE::from_config).unwrap();
    let async_mrr = kg::eval::evaluate_batched(&async_model, &ds.test, &known, &eval).mrr;

    assert!(sync_mrr > 0.0, "sync arm failed to learn (MRR {sync_mrr})");
    let rel = (f64::from(async_mrr) - f64::from(sync_mrr)).abs() / f64::from(sync_mrr);
    assert!(
        rel <= 0.05,
        "async MRR {async_mrr} deviates {:.1}% from sync MRR {sync_mrr}",
        rel * 100.0
    );
}
