//! The shared model interface and training configuration.

use kg::BatchPlan;
use tensor::{Graph, ParamStore, Var};

use crate::Result;

/// Distance metric applied to the translated expression.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Norm {
    /// Manhattan distance.
    L1,
    /// Euclidean distance (the paper's default, §5.3).
    #[default]
    L2,
    /// Wraparound L1 distance on the unit torus (TorusE).
    TorusL1,
    /// Squared wraparound L2 distance on the unit torus (TorusE).
    TorusL2,
}

impl Norm {
    /// Applies this norm row-wise on the tape, producing `(m, 1)` scores.
    pub fn apply(self, g: &mut Graph, expr: Var) -> Var {
        match self {
            Norm::L1 => g.l1_norm_rows(expr),
            Norm::L2 => g.l2_norm_rows(expr, 1e-9),
            Norm::TorusL1 => g.torus_l1_rows(expr),
            Norm::TorusL2 => g.torus_l2_sq_rows(expr),
        }
    }

    /// The fused-kernel row score equivalent to [`Norm::apply`] — same
    /// variants, same `eps`, so `Graph::spmm_score` with this score is
    /// bit-identical to `spmm` followed by `apply`.
    pub fn row_score(self) -> tensor::RowScore {
        match self {
            Norm::L1 => tensor::RowScore::L1,
            Norm::L2 => tensor::RowScore::L2 { eps: 1e-9 },
            Norm::TorusL1 => tensor::RowScore::TorusL1,
            Norm::TorusL2 => tensor::RowScore::TorusL2Sq,
        }
    }

    /// Distance between two raw vectors under this norm (evaluation path).
    pub fn distance(self, a: &[f32], b: &[f32]) -> f32 {
        debug_assert_eq!(a.len(), b.len());
        match self {
            Norm::L1 => a.iter().zip(b).map(|(x, y)| (x - y).abs()).sum(),
            Norm::L2 => a
                .iter()
                .zip(b)
                .map(|(x, y)| (x - y) * (x - y))
                .sum::<f32>()
                .sqrt(),
            Norm::TorusL1 => a
                .iter()
                .zip(b)
                .map(|(x, y)| {
                    let f = (x - y) - (x - y).floor();
                    f.min(1.0 - f)
                })
                .sum(),
            Norm::TorusL2 => a
                .iter()
                .zip(b)
                .map(|(x, y)| {
                    let f = (x - y) - (x - y).floor();
                    let d = f.min(1.0 - f);
                    d * d
                })
                .sum(),
        }
    }
}

/// Negative-sampling strategy selector.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SamplerKind {
    /// Uniform head/tail corruption (TransE's scheme).
    #[default]
    Uniform,
    /// Relation-statistics-weighted corruption (TransH's scheme).
    Bernoulli,
}

/// Optimizer selector, wired from [`TrainConfig`] through [`crate::Trainer`]
/// and the data-parallel driver down to `sptx train --optimizer`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OptimizerKind {
    /// Plain SGD (the paper's optimizer, §5.3). Touched-row sparse step.
    #[default]
    Sgd,
    /// Adagrad. Touched-row sparse step.
    Adagrad,
    /// Adam. **Always dense**: its moments decay on zero gradients, so the
    /// touched-row fast path does not apply (see `tensor::optim::Adam`).
    Adam,
}

impl OptimizerKind {
    /// Instantiates the optimizer at learning rate `lr`.
    pub fn build(self, lr: f32) -> Box<dyn tensor::optim::Optimizer> {
        match self {
            OptimizerKind::Sgd => Box::new(tensor::optim::Sgd::new(lr)),
            OptimizerKind::Adagrad => Box::new(tensor::optim::Adagrad::new(lr)),
            OptimizerKind::Adam => Box::new(tensor::optim::Adam::new(lr)),
        }
    }
}

/// Hyperparameters shared by all models and the trainer.
///
/// Defaults follow the paper's training configuration (§5.3): learning rate
/// `4e-4`, margin `0.5`, L2 dissimilarity, margin-ranking loss. Batch size
/// and dimensions are scaled-down defaults; the benchmark harnesses override
/// them per experiment (Table 4).
#[derive(Debug, Clone)]
pub struct TrainConfig {
    /// Training epochs.
    pub epochs: usize,
    /// Positive triples per mini-batch.
    pub batch_size: usize,
    /// Entity embedding dimension.
    pub dim: usize,
    /// Relation-space dimension (TransR projections; TransH relation vectors
    /// use `dim`).
    pub rel_dim: usize,
    /// Learning rate.
    pub lr: f32,
    /// Margin of the ranking loss.
    pub margin: f32,
    /// Dissimilarity function.
    pub norm: Norm,
    /// Negative sampler.
    pub sampler: SamplerKind,
    /// RNG seed for init, shuffling and sampling.
    pub seed: u64,
    /// Optional step LR schedule `(step_epochs, gamma)` (Appendix E).
    pub lr_schedule: Option<(u32, f32)>,
    /// Optimizer driving the parameter update.
    pub optimizer: OptimizerKind,
    /// Forces every gradient sweep dense (`ParamStore::set_dense_grads`) —
    /// the ablation arm of the touched-row contract. Also forces the epoch
    /// renormalization sweeps dense, so this arm measures the full
    /// `O(N · d)` baseline. Training is bit-identical either way; only the
    /// per-batch and per-epoch cost changes from `O(batch · d)` to
    /// `O(N · d)`.
    pub dense_grads: bool,
    /// Uses the fused gather+distance and loss+backward-seed kernels
    /// (`Graph::set_fused`). On by default; the unfused arm materializes
    /// every intermediate and is bit-identical — it exists for ablation and
    /// the fused-kernel property tests.
    pub fused: bool,
}

impl Default for TrainConfig {
    fn default() -> Self {
        Self {
            epochs: 5,
            batch_size: 1024,
            dim: 32,
            rel_dim: 16,
            lr: 4e-4,
            margin: 0.5,
            norm: Norm::L2,
            sampler: SamplerKind::Uniform,
            seed: 42,
            lr_schedule: None,
            optimizer: OptimizerKind::Sgd,
            dense_grads: false,
            fused: true,
        }
    }
}

impl TrainConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`crate::Error::Config`] for zero sizes or non-positive
    /// hyperparameters.
    pub fn validate(&self) -> Result<()> {
        if self.epochs == 0 {
            return Err(crate::Error::config("epochs must be positive"));
        }
        if self.batch_size == 0 {
            return Err(crate::Error::config("batch_size must be positive"));
        }
        if self.dim == 0 || self.rel_dim == 0 {
            return Err(crate::Error::config(
                "embedding dimensions must be positive",
            ));
        }
        if self.lr.partial_cmp(&0.0) != Some(std::cmp::Ordering::Greater) {
            return Err(crate::Error::config("learning rate must be positive"));
        }
        if self.margin < 0.0 {
            return Err(crate::Error::config("margin must be non-negative"));
        }
        Ok(())
    }
}

/// A trainable knowledge-graph embedding model.
///
/// Models own their parameters (a [`ParamStore`]) and any per-batch cached
/// structures (incidence matrices for the sparse variants, index arrays for
/// the dense baselines). The [`crate::Trainer`] drives the protocol:
///
/// 1. [`attach_plan`](KgeModel::attach_plan) once per training run;
/// 2. per batch: build a fresh [`Graph`], call
///    [`score_batch`](KgeModel::score_batch), take the margin loss, run
///    backward, step the optimizer;
/// 3. [`end_epoch`](KgeModel::end_epoch) applies model constraints (entity
///    normalization, hyperplane unit norms).
pub trait KgeModel {
    /// Short model name (e.g. `"SpTransE"`).
    fn name(&self) -> &'static str;

    /// Borrows the parameter store.
    fn store(&self) -> &ParamStore;

    /// Mutably borrows the parameter store.
    fn store_mut(&mut self) -> &mut ParamStore;

    /// Pre-computes cached structures for every batch of `plan`. Replaces
    /// any previously attached plan.
    ///
    /// # Errors
    ///
    /// Returns an error if the plan references out-of-range indices.
    fn attach_plan(&mut self, plan: &BatchPlan) -> Result<()>;

    /// Number of batches in the attached plan (0 before attachment).
    fn num_batches(&self) -> usize;

    /// Builds the forward graph for attached batch `batch_idx`, returning
    /// `(positive_scores, negative_scores)` as `(m, 1)` distance columns.
    ///
    /// # Panics
    ///
    /// Panics if `batch_idx >= num_batches()`.
    fn score_batch(&self, g: &mut Graph, batch_idx: usize) -> (Var, Var);

    /// Pages in the rows batch `batch_idx` will touch, for models whose
    /// parameters live behind [`tensor::RowStorage`]. The batch's working
    /// set is known up front from its cached incidence/index lists — the
    /// sparsity premise that makes demand paging possible — so the trainer
    /// calls this before [`score_batch`](KgeModel::score_batch). Default:
    /// no-op (everything resident).
    ///
    /// # Errors
    ///
    /// Returns an error if the working set exceeds the cache budget or the
    /// backing store fails.
    fn page_in_batch(&mut self, _batch_idx: usize) -> Result<()> {
        Ok(())
    }

    /// Enables (or disables) background prefetch of the next batch's
    /// working set for models whose parameters live behind
    /// [`tensor::RowStorage`]. With prefetch on,
    /// [`page_in_batch`](KgeModel::page_in_batch) overlaps batch *b+1*'s
    /// reads with batch *b*'s compute via a [`crate::Prefetcher`];
    /// prefetching moves bytes earlier, never arithmetic, so training is
    /// bit-identical either way. Default: error when enabling (the model
    /// has no paged parameters to prefetch).
    ///
    /// # Errors
    ///
    /// Returns [`crate::Error::Config`] if the model does not support
    /// prefetching.
    fn set_prefetch(&mut self, on: bool) -> Result<()> {
        if on {
            return Err(crate::Error::config(
                "this model does not support paged prefetch",
            ));
        }
        Ok(())
    }

    /// Cumulative `(worker_read_time, completion_stall_time)` of the
    /// prefetch pipeline, when one is active. Default: `None`.
    fn prefetch_timing(&self) -> Option<(std::time::Duration, std::time::Duration)> {
        None
    }

    /// Applies per-epoch parameter constraints. Default: none.
    fn end_epoch(&mut self) {}
}

/// Rows whose L2 norm is already within this tolerance of 1.0 are unit-norm
/// at f32 working precision and renormalization skips them.
///
/// This makes the normalize map **idempotent**: one application lands every
/// row within a few ulps of unit norm (measured ≤ 4 ulps up to `d = 256`;
/// the tolerance is ~8 ulps), so the second application is a guaranteed
/// no-op. Without the band, `x ↦ x · (1/‖x‖)` settles into a bitwise
/// period-2 oscillation for ~16% of already-normalized rows — last-ulp
/// jitter with no modeling content that would keep those rows in the dirty
/// set forever and put an `O(N)` floor under the per-epoch sweep.
pub(crate) const UNIT_NORM_TOL: f32 = 1e-6;

/// Normalizes the first `n` rows of a parameter to unit L2 norm in place —
/// the entity-embedding constraint of TransE/TransH.
///
/// Walks only the parameter's **dirty rows** (rows the optimizer stepped
/// since the last sweep, plus rows whose last renormalization changed
/// bits), so the per-epoch cost is `O(touched · d)` rather than `O(N · d)`.
/// Bit-identical to the dense sweep: a row leaves the dirty set only when
/// renormalizing it was a bitwise no-op, i.e. when it is a fixed point
/// (already unit-norm within [`UNIT_NORM_TOL`]) that the dense sweep would
/// also leave untouched. Rows at index `≥ n` (relation rows in a stacked
/// parameter) are outside this constraint and are simply dropped from the
/// set; the optimizer re-marks them on the next touch.
pub(crate) fn normalize_leading_rows(store: &mut ParamStore, id: tensor::ParamId, n: usize) {
    // `param_shape` reports the logical shape even when the parameter is
    // paged out (where `value()` would be the slot cache, not the table).
    let (rows, cols) = store.param_shape(id);
    let n = n.min(rows);
    store.for_dirty_rows(id, |idx, row| {
        if idx >= n || cols == 0 {
            return false;
        }
        let norm = row.iter().map(|x| x * x).sum::<f32>().sqrt();
        let mut changed = false;
        if norm > 1e-12 && (norm - 1.0).abs() > UNIT_NORM_TOL {
            let inv = 1.0 / norm;
            for x in row {
                let y = *x * inv;
                changed |= y.to_bits() != x.to_bits();
                *x = y;
            }
        }
        changed
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn norm_distances() {
        let a = [1.0, 2.0];
        let b = [0.0, 0.0];
        assert_eq!(Norm::L1.distance(&a, &b), 3.0);
        assert!((Norm::L2.distance(&a, &b) - 5f32.sqrt()).abs() < 1e-6);
        // Torus: differences 1.0 and 2.0 are both 0 on the unit torus.
        assert!(Norm::TorusL1.distance(&a, &b).abs() < 1e-6);
        assert!(Norm::TorusL2.distance(&[0.25, 0.0], &[0.0, 0.0]) - 0.0625 < 1e-6);
    }

    #[test]
    fn config_validation() {
        assert!(TrainConfig::default().validate().is_ok());
        let bad = TrainConfig {
            epochs: 0,
            ..Default::default()
        };
        assert!(bad.validate().is_err());
        let bad = TrainConfig {
            lr: 0.0,
            ..Default::default()
        };
        assert!(bad.validate().is_err());
        let bad = TrainConfig {
            margin: -1.0,
            ..Default::default()
        };
        assert!(bad.validate().is_err());
        let bad = TrainConfig {
            dim: 0,
            ..Default::default()
        };
        assert!(bad.validate().is_err());
    }

    #[test]
    fn normalize_leading_rows_only() {
        let mut store = ParamStore::new();
        let p = store.add_param("e", tensor::Tensor::from_rows(&[[3.0, 4.0], [10.0, 0.0]]));
        normalize_leading_rows(&mut store, p, 1);
        assert!((store.value(p).get(0, 0) - 0.6).abs() < 1e-6);
        assert_eq!(store.value(p).get(1, 0), 10.0); // untouched
    }
}
