//! Sparse TorusE (paper §4.6).
//!
//! TorusE shares TransE's `h + r − t` expression (computed with the same
//! single `hrt` SpMM) but measures it with a wraparound (torus) metric over
//! the fractional parts of the embeddings, and applies no norm constraints.

use kg::eval::{BatchScorer, TripleScorer};
use kg::{BatchPlan, Dataset};
use sparse::incidence::TailSign;
use tensor::{init, Graph, ParamId, ParamStore, Var};

use crate::model::{KgeModel, Norm, TrainConfig};
use crate::models::{build_hrt_caches, HrtCache};
use crate::paging::Prefetcher;
use crate::scorer::{distances_to_rows, translational_scores_into, QueryDir};
use crate::Result;

/// The SpTransX TorusE model.
///
/// The configured [`Norm`] is coerced to a torus metric: `L1 → TorusL1`,
/// anything else → `TorusL2` (the paper's "L2 torus" default).
///
/// # Examples
///
/// ```
/// use kg::synthetic::SyntheticKgBuilder;
/// use sptransx::{SpTorusE, TrainConfig};
///
/// let ds = SyntheticKgBuilder::new(40, 3).triples(200).seed(5).build();
/// let model = SpTorusE::from_config(&ds, &TrainConfig { dim: 8, ..Default::default() })?;
/// assert_eq!(sptransx::KgeModel::name(&model), "SpTorusE");
/// # Ok::<(), sptransx::Error>(())
/// ```
#[derive(Debug)]
pub struct SpTorusE {
    store: ParamStore,
    emb: ParamId,
    num_entities: usize,
    num_relations: usize,
    dim: usize,
    norm: Norm,
    batches: Vec<HrtCache>,
    prefetcher: Option<Prefetcher>,
}

impl SpTorusE {
    /// Initializes the model for a dataset.
    ///
    /// # Errors
    ///
    /// Returns [`crate::Error::Config`] for invalid hyperparameters.
    pub fn from_config(dataset: &Dataset, config: &TrainConfig) -> Result<Self> {
        config.validate()?;
        let (n, r, d) = (dataset.num_entities, dataset.num_relations, config.dim);
        // Torus coordinates: uniform in [0, 1).
        let mut emb_t = init::uniform(n + r, d, 0.5, config.seed);
        for x in emb_t.as_mut_slice() {
            *x += 0.5; // shift into [0, 1)
        }
        let norm = match config.norm {
            Norm::L1 | Norm::TorusL1 => Norm::TorusL1,
            _ => Norm::TorusL2,
        };
        let mut store = ParamStore::new();
        let emb = store.add_param("embeddings", emb_t);
        Ok(Self {
            store,
            emb,
            num_entities: n,
            num_relations: r,
            dim: d,
            norm,
            batches: Vec::new(),
            prefetcher: None,
        })
    }

    /// Embedding dimension.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The torus metric in use.
    pub fn metric(&self) -> Norm {
        self.norm
    }

    /// Handle to the stacked embedding parameter.
    pub fn embedding_param(&self) -> ParamId {
        self.emb
    }
}

impl KgeModel for SpTorusE {
    fn name(&self) -> &'static str {
        "SpTorusE"
    }

    fn store(&self) -> &ParamStore {
        &self.store
    }

    fn store_mut(&mut self) -> &mut ParamStore {
        &mut self.store
    }

    fn attach_plan(&mut self, plan: &BatchPlan) -> Result<()> {
        self.batches = build_hrt_caches(
            plan,
            self.num_entities,
            self.num_relations,
            TailSign::Negative,
        )?;
        Ok(())
    }

    fn num_batches(&self) -> usize {
        self.batches.len()
    }

    fn score_batch(&self, g: &mut Graph, batch_idx: usize) -> (Var, Var) {
        let cache = &self.batches[batch_idx];
        let score = self.norm.row_score();
        let pos = g.spmm_score(&self.store, self.emb, cache.pos.clone(), score);
        let neg = g.spmm_score(&self.store, self.emb, cache.neg.clone(), score);
        (pos, neg)
    }

    fn page_in_batch(&mut self, batch_idx: usize) -> Result<()> {
        if !self.store.is_paged(self.emb) {
            return Ok(());
        }
        // Same pipelined protocol as SpTransE: close the in-flight
        // hand-off, page in (admitting staged rows), then send batch
        // b+1's working set to the I/O worker — never across the epoch
        // edge, so end-of-epoch flushes always find the storage home.
        if let Some(pf) = &mut self.prefetcher {
            let pager = self.store.pager_mut(self.emb).expect("paged above");
            pf.complete(pager)?;
        }
        let cache = &self.batches[batch_idx];
        let lists = [cache.pos.touched_columns(), cache.neg.touched_columns()];
        self.store.page_in(self.emb, &lists)?;
        if batch_idx + 1 < self.batches.len() {
            if let Some(pf) = &mut self.prefetcher {
                let next = &self.batches[batch_idx + 1];
                let lists = [next.pos.touched_columns(), next.neg.touched_columns()];
                let pager = self.store.pager_mut(self.emb).expect("paged above");
                pf.issue(pager, &lists)?;
            }
        }
        Ok(())
    }

    fn set_prefetch(&mut self, on: bool) -> Result<()> {
        self.prefetcher = if on { Some(Prefetcher::new()) } else { None };
        Ok(())
    }

    fn prefetch_timing(&self) -> Option<(std::time::Duration, std::time::Duration)> {
        self.prefetcher.as_ref().map(Prefetcher::timing)
    }
}

impl TripleScorer for SpTorusE {
    fn score_tails(&self, head: u32, rel: u32) -> Vec<f32> {
        let emb = self.store.value(self.emb);
        let h = emb.row(head as usize);
        let r = emb.row(self.num_entities + rel as usize);
        let query: Vec<f32> = h.iter().zip(r).map(|(a, b)| a + b).collect();
        distances_to_rows(
            emb.as_slice(),
            self.num_entities,
            self.dim,
            &query,
            self.norm,
        )
    }

    fn score_heads(&self, rel: u32, tail: u32) -> Vec<f32> {
        let emb = self.store.value(self.emb);
        let t = emb.row(tail as usize);
        let r = emb.row(self.num_entities + rel as usize);
        let query: Vec<f32> = t.iter().zip(r).map(|(a, b)| a - b).collect();
        distances_to_rows(
            emb.as_slice(),
            self.num_entities,
            self.dim,
            &query,
            self.norm,
        )
    }

    fn num_entities(&self) -> usize {
        self.num_entities
    }
}

impl BatchScorer for SpTorusE {
    fn num_entities(&self) -> usize {
        self.num_entities
    }

    fn score_tails_into(&self, queries: &[(u32, u32)], out: &mut [f32]) {
        let emb = self.store.value(self.emb);
        translational_scores_into(
            emb.as_slice(),
            self.num_entities,
            self.num_relations,
            self.dim,
            self.norm,
            queries,
            QueryDir::Tails,
            out,
        );
    }

    fn score_heads_into(&self, queries: &[(u32, u32)], out: &mut [f32]) {
        let emb = self.store.value(self.emb);
        translational_scores_into(
            emb.as_slice(),
            self.num_entities,
            self.num_relations,
            self.dim,
            self.norm,
            queries,
            QueryDir::Heads,
            out,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kg::synthetic::SyntheticKgBuilder;
    use kg::UniformSampler;

    #[test]
    fn norm_is_coerced_to_torus() {
        let ds = SyntheticKgBuilder::new(30, 2).triples(100).seed(1).build();
        let m = SpTorusE::from_config(
            &ds,
            &TrainConfig {
                norm: Norm::L2,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(m.metric(), Norm::TorusL2);
        let m = SpTorusE::from_config(
            &ds,
            &TrainConfig {
                norm: Norm::L1,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(m.metric(), Norm::TorusL1);
    }

    #[test]
    fn scores_are_bounded_by_torus_geometry() {
        let ds = SyntheticKgBuilder::new(40, 3).triples(300).seed(2).build();
        let config = TrainConfig {
            dim: 8,
            batch_size: 50,
            ..Default::default()
        };
        let mut model = SpTorusE::from_config(&ds, &config).unwrap();
        let sampler = UniformSampler::new(ds.num_entities);
        let plan = BatchPlan::build(&ds.train, &ds.all_known(), &sampler, 50, 3);
        model.attach_plan(&plan).unwrap();
        let mut g = Graph::new();
        let (pos, _) = model.score_batch(&mut g, 0);
        // Max per-component squared torus distance is 0.25.
        let bound = 0.25 * model.dim() as f32 + 1e-5;
        assert!(g
            .value(pos)
            .as_slice()
            .iter()
            .all(|&x| (0.0..=bound).contains(&x)));
    }

    #[test]
    fn wraparound_equivalence_in_scoring() {
        // Shifting an embedding by an integer must not change torus scores.
        let ds = SyntheticKgBuilder::new(20, 2).triples(80).seed(4).build();
        let config = TrainConfig {
            dim: 4,
            ..Default::default()
        };
        let mut model = SpTorusE::from_config(&ds, &config).unwrap();
        let before = model.score_tails(0, 0);
        let emb_id = model.embedding_param();
        {
            let emb = model.store_mut().value_mut(emb_id);
            for j in 0..4 {
                let v = emb.get(0, j);
                emb.set(0, j, v + 3.0); // integer shift of the head entity
            }
        }
        let after = model.score_tails(0, 0);
        for (a, b) in before.iter().zip(&after) {
            assert!((a - b).abs() < 1e-4, "{a} vs {b}");
        }
    }
}
