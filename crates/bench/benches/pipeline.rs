//! Criterion end-to-end benchmarks: one full training step (forward +
//! backward + optimizer) of each model, sparse vs dense — the steady-state
//! cost Figure 7 integrates over epochs — plus the data-pipeline costs
//! (negative sampling, batch planning, incidence construction).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use kg::synthetic::SyntheticKgBuilder;
use kg::{BatchPlan, NegativeSampler, UniformSampler};
use sptransx::{
    DenseTorusE, DenseTransE, DenseTransH, DenseTransR, KgeModel, SpTorusE, SpTransE, SpTransH,
    SpTransR,
};
use sptx_bench::harness::{bench_config, ModelKind, Variant};
use tensor::optim::{Optimizer, Sgd};
use tensor::Graph;

fn training_step<M: KgeModel>(model: &mut M, opt: &mut Sgd) {
    model.store_mut().zero_grads();
    let mut g = Graph::new();
    let (pos, neg) = model.score_batch(&mut g, 0);
    let loss = g.margin_ranking_loss(pos, neg, 0.5);
    g.backward(loss, model.store_mut());
    opt.step(model.store_mut());
}

fn bench_training_step(c: &mut Criterion) {
    let ds = SyntheticKgBuilder::new(10_000, 100)
        .triples(50_000)
        .seed(3)
        .build();
    let sampler = UniformSampler::new(ds.num_entities);
    let plan = BatchPlan::build(&ds.train, &ds.all_known(), &sampler, 4096, 5);
    let cfg = bench_config(64, 16, 4096, 1);

    let mut group = c.benchmark_group("training_step");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(3));
    group.warm_up_time(std::time::Duration::from_secs(1));
    macro_rules! pair {
        ($kind:expr, $sp:ident, $de:ident) => {{
            let mut sp = $sp::from_config(&ds, &cfg).unwrap();
            sp.attach_plan(&plan).unwrap();
            let mut de = $de::from_config(&ds, &cfg).unwrap();
            de.attach_plan(&plan).unwrap();
            let mut opt = Sgd::new(cfg.lr);
            group.bench_function(
                BenchmarkId::new($kind.name(), Variant::Sparse.name()),
                |b| b.iter(|| training_step(&mut sp, &mut opt)),
            );
            group.bench_function(BenchmarkId::new($kind.name(), Variant::Dense.name()), |b| {
                b.iter(|| training_step(&mut de, &mut opt))
            });
        }};
    }
    pair!(ModelKind::TransE, SpTransE, DenseTransE);
    pair!(ModelKind::TorusE, SpTorusE, DenseTorusE);
    pair!(ModelKind::TransR, SpTransR, DenseTransR);
    pair!(ModelKind::TransH, SpTransH, DenseTransH);
    group.finish();
}

fn bench_data_pipeline(c: &mut Criterion) {
    let ds = SyntheticKgBuilder::new(10_000, 100)
        .triples(50_000)
        .seed(4)
        .build();
    let known = ds.all_known();
    let sampler = UniformSampler::new(ds.num_entities);

    let mut group = c.benchmark_group("data_pipeline");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(3));
    group.warm_up_time(std::time::Duration::from_secs(1));
    group.bench_function("negative_sampling_45k", |b| {
        b.iter(|| sampler.corrupt(&ds.train, &known, 9))
    });
    group.bench_function("batch_plan_45k_bs4096", |b| {
        b.iter(|| BatchPlan::build(&ds.train, &known, &sampler, 4096, 9))
    });
    let plan = BatchPlan::build(&ds.train, &known, &sampler, 4096, 9);
    let batch = plan.batch(0);
    group.bench_function("incidence_build_4096", |b| {
        b.iter(|| {
            sparse::incidence::hrt(
                ds.num_entities,
                ds.num_relations,
                batch.pos.heads(),
                batch.pos.rels(),
                batch.pos.tails(),
                sparse::incidence::TailSign::Negative,
            )
            .unwrap()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_training_step, bench_data_pipeline);
criterion_main!(benches);
