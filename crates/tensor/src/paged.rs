//! Out-of-core row storage: the [`RowStorage`] trait and the LRU [`Pager`].
//!
//! The paper's sparsity premise says a batch only ever needs `O(batch)`
//! embedding rows, and the touched-row contract (see [`crate::ParamStore`])
//! names that working set *in advance* from the batch's incidence index
//! lists. That is exactly the precondition for demand paging: the full
//! `(N + R) × d` table lives behind a [`RowStorage`] backend (a file, or an
//! in-RAM vector for tests and the determinism baseline), and only a
//! fixed-budget cache of rows is pinned in RAM. The pager translates
//! absolute row indices to cache slots; kernels read and write the same
//! bytes they would in the resident layout, so **paging moves bytes, never
//! arithmetic** — the paged and in-RAM arms are bit-identical.
//!
//! # Replacement policy and the simcache cross-check
//!
//! Eviction is exact LRU over whole rows. Each [`Pager::ensure`] call
//! renews a *pin epoch* on every row it loads or hits, and refuses to evict
//! a slot pinned in the current epoch — a batch's working set must be
//! co-resident while kernels run. Because every pinned slot was by
//! definition accessed in the current epoch, pinned slots are always more
//! recent than every unpinned slot, so the LRU victim is never pinned
//! unless *all* slots are (the budget is smaller than the working set,
//! a hard error). Whenever `ensure` succeeds, its hit/miss/eviction
//! decisions are therefore those of a plain fully-associative LRU cache —
//! which is what lets the counters be cross-validated *exactly* against a
//! `simcache` model replaying the recorded row trace (the same
//! first-principles validation idiom the serving layer uses for its query
//! cache).
//!
//! # Prefetch staging
//!
//! Because a batch's working set is known a whole batch in advance, the
//! pager supports a double-buffered hand-off: [`Pager::begin_prefetch`]
//! lends the backing storage to a caller-owned I/O worker together with the
//! next working set's non-resident rows, the worker reads them into a
//! staging buffer while the current batch computes, and
//! [`Pager::finish_prefetch`] returns the storage and installs the staged
//! bytes. The next [`Pager::ensure`] then *admits* staged rows into their
//! cache slots instead of reading the backing store. Staging changes only
//! where a missed row's bytes come from — hit/miss/eviction decisions, LRU
//! order, and [`PageStats`] are bit-identical with prefetch on or off, and
//! a staged row is only ever copied into a slot assigned to a **miss**, so
//! it can never clobber a dirtier resident copy (hits leave cache bytes
//! untouched; an erroneously staged resident row is simply counted wasted).
//! The [`PrefetchStats`] counters are themselves replay-exact against a
//! simcache model extended with the recorded prefetch events.

use crate::Tensor;

/// Sentinel for "row not resident" in [`Pager`] slot maps and for list
/// ends in the intrusive LRU links.
pub(crate) const NOT_RESIDENT: u32 = u32::MAX;

/// Random-access backing storage for a parameter's rows.
///
/// Implementations move raw `f32` rows between the backing medium and
/// caller-provided buffers; they never interpret the values. The in-crate
/// [`VecStorage`] keeps rows in RAM (tests, benches, the determinism
/// baseline); the file-backed implementation lives downstream (it wraps the
/// `kg` crate's on-disk embedding format) so this crate stays free of
/// format knowledge.
pub trait RowStorage: Send + std::fmt::Debug {
    /// Total number of rows in the backing store.
    fn rows(&self) -> usize;
    /// Row width in `f32` elements.
    fn cols(&self) -> usize;
    /// Reads rows `first .. first + count` into `out` (exactly
    /// `count * cols` elements), without allocating.
    ///
    /// # Errors
    ///
    /// I/O errors from the backing medium, or an out-of-range request.
    fn read_rows_into(
        &mut self,
        first: usize,
        count: usize,
        out: &mut [f32],
    ) -> std::io::Result<()>;
    /// Writes rows `first .. first + count` from `data` (exactly
    /// `count * cols` elements).
    ///
    /// # Errors
    ///
    /// I/O errors from the backing medium, or an out-of-range request.
    fn write_rows(&mut self, first: usize, count: usize, data: &[f32]) -> std::io::Result<()>;
    /// Flushes buffered writes to the backing medium. Default: no-op.
    ///
    /// # Errors
    ///
    /// I/O errors from the backing medium.
    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
    /// Backend I/O calls issued so far, as `(read_calls, write_calls)` —
    /// one coalesced multi-row transfer counts once, which is what makes
    /// the pager's run-coalescing observable. Backends without call
    /// tracking report `(0, 0)` (the default).
    fn io_ops(&self) -> (u64, u64) {
        (0, 0)
    }
    /// Reads a strictly increasing list of row indices into `out` (exactly
    /// `rows.len() * cols` elements, row `rows[i]` landing at
    /// `out[i * cols ..]`), coalescing every maximal run of *adjacent*
    /// indices into one [`RowStorage::read_rows_into`] transfer — the
    /// scattered-read mirror of the pager's write-side flush coalescing,
    /// and the call a prefetch worker uses to stage a working set.
    ///
    /// # Errors
    ///
    /// A mis-sized buffer, plus whatever the per-run reads return.
    fn read_row_list_into(&mut self, rows: &[u32], out: &mut [f32]) -> std::io::Result<()> {
        let cols = self.cols();
        if out.len() != rows.len() * cols {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                format!(
                    "buffer holds {} floats but {} listed rows span {}",
                    out.len(),
                    rows.len(),
                    rows.len() * cols
                ),
            ));
        }
        let mut i = 0;
        while i < rows.len() {
            let mut j = i + 1;
            while j < rows.len() && rows[j] == rows[j - 1] + 1 {
                j += 1;
            }
            self.read_rows_into(rows[i] as usize, j - i, &mut out[i * cols..j * cols])?;
            i = j;
        }
        Ok(())
    }
}

/// In-RAM [`RowStorage`]: a plain row-major vector.
///
/// This is the trait's identity backend — paging through it exercises every
/// slot-translation and eviction path with no I/O, which is how the
/// bit-identity tests isolate the pager from the filesystem.
///
/// # Examples
///
/// ```
/// use tensor::paged::{RowStorage, VecStorage};
///
/// let mut s = VecStorage::new(4, 2);
/// s.write_rows(1, 1, &[5.0, 6.0]).unwrap();
/// let mut out = [0.0f32; 2];
/// s.read_rows_into(1, 1, &mut out).unwrap();
/// assert_eq!(out, [5.0, 6.0]);
/// ```
#[derive(Debug, Clone)]
pub struct VecStorage {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl VecStorage {
    /// Creates a zero-filled store of `rows × cols`.
    pub fn new(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates a store holding a copy of `t`'s rows.
    pub fn from_tensor(t: &Tensor) -> Self {
        Self {
            rows: t.rows(),
            cols: t.cols(),
            data: t.as_slice().to_vec(),
        }
    }

    /// The backing data, row-major.
    pub fn data(&self) -> &[f32] {
        &self.data
    }
}

fn check_range(
    rows: usize,
    first: usize,
    count: usize,
    len: usize,
    cols: usize,
) -> std::io::Result<()> {
    if first + count > rows || len != count * cols {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidInput,
            format!("row range {first}..{} out of bounds for {rows} rows (buffer {len} for {count}x{cols})", first + count),
        ));
    }
    Ok(())
}

impl RowStorage for VecStorage {
    fn rows(&self) -> usize {
        self.rows
    }

    fn cols(&self) -> usize {
        self.cols
    }

    fn read_rows_into(
        &mut self,
        first: usize,
        count: usize,
        out: &mut [f32],
    ) -> std::io::Result<()> {
        check_range(self.rows, first, count, out.len(), self.cols)?;
        out.copy_from_slice(&self.data[first * self.cols..(first + count) * self.cols]);
        Ok(())
    }

    fn write_rows(&mut self, first: usize, count: usize, data: &[f32]) -> std::io::Result<()> {
        check_range(self.rows, first, count, data.len(), self.cols)?;
        self.data[first * self.cols..(first + count) * self.cols].copy_from_slice(data);
        Ok(())
    }
}

/// Hit/miss/eviction counters for one [`Pager`].
///
/// These are **replay-exact**: with tracing enabled, feeding the recorded
/// row trace through a fully-associative LRU `simcache` model with one line
/// per row and capacity equal to the budget must reproduce `hits` and
/// `misses` bit-for-bit (see the module docs for why pinning never
/// perturbs the LRU decision on a successful run).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PageStats {
    /// Accesses that found the row resident.
    pub hits: u64,
    /// Accesses that had to load the row from backing storage.
    pub misses: u64,
    /// Rows displaced to make room (whether or not they were dirty).
    pub evictions: u64,
    /// Evicted or flushed rows whose bytes had changed and were written
    /// back to backing storage.
    pub write_backs: u64,
}

/// Prefetch-staging counters for one [`Pager`].
///
/// Like [`PageStats`] these are **replay-exact**: with tracing enabled, a
/// simcache LRU replay that partitions the row trace into
/// [`Pager::trace_call_lens`] and applies the recorded
/// [`Pager::trace_prefetch_events`] (staging each requested row that is not
/// resident in the model) must reproduce every field bit-for-bit.
///
/// Invariants on a completed run: `admitted + wasted == staged` (every
/// staged row is eventually consumed or discarded) and
/// `admitted + demand_loads == PageStats::misses` (every miss is served
/// from exactly one of staging or backing storage).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PrefetchStats {
    /// Rows handed to [`Pager::finish_prefetch`] (read early by a worker).
    pub staged: u64,
    /// Missed rows whose bytes came from the staging buffer — each one a
    /// backing-store read moved off the batch edge.
    pub admitted: u64,
    /// Missed rows read synchronously from backing storage (all misses,
    /// when prefetch is off).
    pub demand_loads: u64,
    /// Staged rows discarded unconsumed at the end of an [`Pager::ensure`]
    /// call (prefetched but not part of the working set, or already
    /// resident by admission time).
    pub wasted: u64,
}

/// Demand pager for one parameter: a fixed budget of row slots over a
/// [`RowStorage`] backend, with exact-LRU eviction, per-batch pinning, and
/// dirty-row write-back.
///
/// The pager owns the *bookkeeping* (slot maps, LRU links, dirty bits,
/// counters) but not the cache bytes themselves — those stay in the
/// caller's `budget × cols` buffer (for `ParamStore`, the parameter's value
/// tensor, so peak-memory accounting sees exactly the pinned cache). All
/// methods take the cache buffer explicitly.
#[derive(Debug)]
pub struct Pager {
    /// `None` while the backing storage is lent to a prefetch worker
    /// ([`Pager::begin_prefetch`] .. [`Pager::finish_prefetch`]); every
    /// method that needs storage errors cleanly in that window.
    storage: Option<Box<dyn RowStorage>>,
    /// Logical row count (cached so shape queries work while the storage
    /// is lent out).
    rows: usize,
    /// Row width (cached for the same reason).
    cols: usize,
    /// Number of cache slots.
    budget: usize,
    /// Absolute row → slot, or [`NOT_RESIDENT`].
    slot_of: Vec<u32>,
    /// Slot → absolute row, or [`NOT_RESIDENT`] for never-used slots.
    row_of: Vec<u32>,
    /// Intrusive doubly-linked LRU list over slots (head = most recent).
    lru_prev: Vec<u32>,
    lru_next: Vec<u32>,
    head: u32,
    tail: u32,
    /// Next never-used slot (slots are handed out in order before any
    /// eviction happens).
    next_free: usize,
    /// Last [`Pager::ensure`] epoch that touched each slot; slots pinned in
    /// the current epoch are never evicted.
    pin_epoch: Vec<u64>,
    epoch: u64,
    /// Whether each slot's bytes differ (conservatively) from backing
    /// storage and must be written back on eviction or flush.
    dirty_slot: Vec<bool>,
    stats: PageStats,
    pstats: PrefetchStats,
    /// Staged (prefetched) rows awaiting admission, strictly ascending.
    staged_rows: Vec<u32>,
    /// Staged row bytes, `staged_rows.len() × cols`, parallel to
    /// `staged_rows`.
    staged_data: Vec<f32>,
    /// Which staged rows have been admitted (the rest count as wasted when
    /// the staging window closes).
    staged_used: Vec<bool>,
    /// `storage.io_ops()` snapshot taken when the storage was lent out, so
    /// [`Pager::storage_io_ops`] stays answerable mid-prefetch.
    io_ops_at_lend: (u64, u64),
    /// Recorded row-access trace for simcache replay (off by default; the
    /// CLI and the validation tests turn it on).
    trace: Option<Vec<u32>>,
    /// Per-[`Pager::ensure`]-call row counts partitioning `trace` (only
    /// recorded while tracing): the call boundaries the prefetch-aware
    /// replay needs, because staging is consumed/wasted per call.
    trace_call_lens: Vec<u32>,
    /// Recorded prefetch requests (only while tracing): `(call_index,
    /// requested union)` where `call_index` counts `ensure` calls made so
    /// far — the replay stages the requested rows that its model holds
    /// non-resident at that point, validating the pager's residency filter
    /// along with the counters.
    trace_prefetch: Vec<(u32, Vec<u32>)>,
    /// Scratch for merged working-set unions and slot translations; reused
    /// so steady-state paging is allocation-free.
    union_scratch: Vec<u32>,
    pub(crate) slot_scratch: Vec<u32>,
    /// Slots assigned to the current coalesced miss run ([`Pager::ensure`]).
    run_scratch: Vec<u32>,
    /// Staging buffer for coalesced multi-row reads and write-backs (rows
    /// are contiguous in the backing store but scattered across cache
    /// slots). Reused so steady-state paging stays allocation-free.
    io_scratch: Vec<f32>,
}

impl Pager {
    /// Creates a pager over `storage` with `budget` row slots.
    ///
    /// `budget` is clamped to the storage's row count (a budget of 100% of
    /// the table degenerates to "load once, never evict").
    pub fn new(storage: Box<dyn RowStorage>, budget: usize) -> Self {
        let rows = storage.rows();
        let cols = storage.cols();
        let budget = budget.max(1).min(rows.max(1));
        Self {
            storage: Some(storage),
            rows,
            cols,
            budget,
            slot_of: vec![NOT_RESIDENT; rows],
            row_of: vec![NOT_RESIDENT; budget],
            lru_prev: vec![NOT_RESIDENT; budget],
            lru_next: vec![NOT_RESIDENT; budget],
            head: NOT_RESIDENT,
            tail: NOT_RESIDENT,
            next_free: 0,
            pin_epoch: vec![0; budget],
            epoch: 0,
            dirty_slot: vec![false; budget],
            stats: PageStats::default(),
            pstats: PrefetchStats::default(),
            staged_rows: Vec::new(),
            staged_data: Vec::new(),
            staged_used: Vec::new(),
            io_ops_at_lend: (0, 0),
            trace: None,
            trace_call_lens: Vec::new(),
            trace_prefetch: Vec::new(),
            union_scratch: Vec::new(),
            slot_scratch: Vec::new(),
            run_scratch: Vec::new(),
            io_scratch: Vec::new(),
        }
    }

    /// Number of cache slots.
    pub fn budget(&self) -> usize {
        self.budget
    }

    /// Logical (backing-store) row count.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Row width in `f32` elements.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Counter snapshot.
    pub fn stats(&self) -> PageStats {
        self.stats
    }

    /// Prefetch-staging counter snapshot (all zeros except `demand_loads`
    /// when prefetch is never used).
    pub fn prefetch_stats(&self) -> PrefetchStats {
        self.pstats
    }

    /// Backing-store I/O call counters `(read_calls, write_calls)`, for
    /// backends that track them (file-backed storage does; [`VecStorage`]
    /// reports zeros). One coalesced multi-row transfer counts once, so
    /// `read_calls ≤ misses` and `write_calls ≤ write_backs` measure how
    /// much run-coalescing saved. While the storage is lent to a prefetch
    /// worker this reports the counts as of the hand-off.
    pub fn storage_io_ops(&self) -> (u64, u64) {
        match &self.storage {
            Some(s) => s.io_ops(),
            None => self.io_ops_at_lend,
        }
    }

    /// Enables or disables row-trace recording (for simcache replay).
    /// Enabling clears any previous trace, call boundaries, and prefetch
    /// events.
    pub fn set_tracing(&mut self, on: bool) {
        self.trace = if on { Some(Vec::new()) } else { None };
        self.trace_call_lens.clear();
        self.trace_prefetch.clear();
    }

    /// The recorded row-access trace, if tracing is enabled.
    pub fn trace(&self) -> Option<&[u32]> {
        self.trace.as_deref()
    }

    /// Per-`ensure`-call row counts partitioning [`Pager::trace`] (empty
    /// unless tracing is enabled).
    pub fn trace_call_lens(&self) -> &[u32] {
        &self.trace_call_lens
    }

    /// Recorded prefetch requests as `(ensure_call_index, requested rows)`
    /// (empty unless tracing is enabled). The requested list is the full
    /// working-set union *before* the pager's residency filter, so a
    /// replay validates the filter too.
    pub fn trace_prefetch_events(&self) -> &[(u32, Vec<u32>)] {
        &self.trace_prefetch
    }

    /// Whether the backing storage is currently lent to a prefetch worker.
    pub fn storage_lent(&self) -> bool {
        self.storage.is_none()
    }

    fn backing(&mut self) -> &mut dyn RowStorage {
        self.storage
            .as_deref_mut()
            .expect("backing storage present (callers check storage_lent first)")
    }

    fn lent_error() -> crate::Error {
        storage_error(
            "backing storage is lent to a prefetch worker; finish the prefetch hand-off first"
                .into(),
        )
    }

    /// Absolute row → slot map (one entry per logical row,
    /// `u32::MAX` = not resident).
    pub fn slot_of(&self) -> &[u32] {
        &self.slot_of
    }

    /// Slot → absolute row map (`u32::MAX` = never used).
    pub fn row_of(&self) -> &[u32] {
        &self.row_of
    }

    /// The cache slot of `row`, which must be resident.
    ///
    /// # Panics
    ///
    /// Panics if `row` is not resident — that is a working-set bug (a
    /// kernel touched a row outside the lists handed to
    /// [`Pager::ensure`]).
    #[inline]
    pub fn slot(&self, row: usize) -> usize {
        let s = self.slot_of[row];
        assert_ne!(
            s, NOT_RESIDENT,
            "row {row} not resident; it was outside the working set paged in for this batch"
        );
        s as usize
    }

    /// Marks `slot`'s bytes as diverged from backing storage.
    pub fn mark_slot_dirty(&mut self, slot: usize) {
        self.dirty_slot[slot] = true;
    }

    fn detach(&mut self, s: u32) {
        let (p, n) = (self.lru_prev[s as usize], self.lru_next[s as usize]);
        if p == NOT_RESIDENT {
            self.head = n;
        } else {
            self.lru_next[p as usize] = n;
        }
        if n == NOT_RESIDENT {
            self.tail = p;
        } else {
            self.lru_prev[n as usize] = p;
        }
    }

    fn push_front(&mut self, s: u32) {
        self.lru_prev[s as usize] = NOT_RESIDENT;
        self.lru_next[s as usize] = self.head;
        if self.head != NOT_RESIDENT {
            self.lru_prev[self.head as usize] = s;
        }
        self.head = s;
        if self.tail == NOT_RESIDENT {
            self.tail = s;
        }
    }

    /// Pages in `rows` (strictly ascending, deduplicated), pinning them for
    /// this epoch. `cache` is the `budget × cols` slot buffer. Hits renew
    /// LRU recency; misses load from storage into a free or LRU-evicted
    /// slot, writing dirty victims back first.
    ///
    /// Misses on **adjacent** rows coalesce: a maximal run of consecutive
    /// non-resident rows becomes one backing-store read (into a staging
    /// buffer, scattered to the run's slots) instead of one call per row.
    /// Slot assignment, LRU order, and the hit/miss/eviction counters are
    /// identical to the row-at-a-time walk — coalescing batches I/O calls,
    /// never decisions — so the simcache replay cross-check still holds.
    ///
    /// Missed rows with staged (prefetched) bytes are *admitted* — copied
    /// from the staging buffer instead of read from storage. Admission
    /// changes only the byte source: slot assignment, LRU order, and
    /// [`PageStats`] are identical with or without staging. Any staged rows
    /// left unconsumed when this call returns are counted wasted and
    /// discarded (the staging window is one `ensure` call).
    ///
    /// # Errors
    ///
    /// Fails if `rows` exceeds the slot budget (the batch working set does
    /// not fit — raise `--cache-rows`), if the storage is lent to a
    /// prefetch worker, or on backing-store I/O errors. All are fatal to
    /// the training run; after an error, rows of the failing run may be
    /// mapped with unspecified cache bytes.
    pub fn ensure(&mut self, rows: &[u32], cache: &mut [f32]) -> crate::Result<()> {
        if self.storage.is_none() {
            return Err(Self::lent_error());
        }
        let result = self.ensure_inner(rows, cache);
        // Close the staging window: whatever survived this call was
        // prefetched in vain.
        if !self.staged_rows.is_empty() {
            self.pstats.wasted += self.staged_used.iter().filter(|&&u| !u).count() as u64;
            self.staged_rows.clear();
            self.staged_data.clear();
            self.staged_used.clear();
        }
        result
    }

    fn ensure_inner(&mut self, rows: &[u32], cache: &mut [f32]) -> crate::Result<()> {
        debug_assert!(rows.windows(2).all(|w| w[0] < w[1]), "rows must be sorted");
        let cols = self.cols;
        self.epoch += 1;
        if let Some(t) = &mut self.trace {
            t.extend_from_slice(rows);
            self.trace_call_lens.push(rows.len() as u32);
        }
        let mut i = 0;
        while i < rows.len() {
            let r = rows[i];
            let ri = r as usize;
            let s = self.slot_of[ri];
            if s != NOT_RESIDENT {
                self.stats.hits += 1;
                self.pin_epoch[s as usize] = self.epoch;
                self.detach(s);
                self.push_front(s);
                i += 1;
                continue;
            }
            // Maximal run of consecutive non-resident rows starting at `i`.
            let mut j = i + 1;
            while j < rows.len()
                && rows[j] == r + (j - i) as u32
                && self.slot_of[rows[j] as usize] == NOT_RESIDENT
            {
                j += 1;
            }
            let run = j - i;
            // Assign a slot per run row first (evicting victims as needed;
            // rows pinned earlier in this epoch — including earlier run
            // rows — are never victims), then issue one coalesced read.
            let mut run_slots = std::mem::take(&mut self.run_scratch);
            run_slots.clear();
            let mut failed = None;
            for k in 0..run {
                let rk = r + k as u32;
                self.stats.misses += 1;
                let s = if self.next_free < self.budget {
                    let s = self.next_free as u32;
                    self.next_free += 1;
                    s
                } else {
                    let victim = self.tail;
                    if victim == NOT_RESIDENT || self.pin_epoch[victim as usize] == self.epoch {
                        failed = Some(storage_error(format!(
                            "cache budget of {} rows is smaller than the working set ({} rows requested); raise --cache-rows",
                            self.budget,
                            rows.len()
                        )));
                        break;
                    }
                    match self.evict_slot(victim, cache, cols) {
                        Ok(()) => victim,
                        Err(e) => {
                            failed = Some(e);
                            break;
                        }
                    }
                };
                let si = s as usize;
                self.slot_of[rk as usize] = s;
                self.row_of[si] = rk;
                self.pin_epoch[si] = self.epoch;
                // A recycled slot was detached by `evict_slot`; a brand-new
                // one was never linked. Either way it joins at the head.
                self.push_front(s);
                self.dirty_slot[si] = false;
                run_slots.push(s);
            }
            let read_result = if failed.is_some() || run_slots.is_empty() {
                Ok(())
            } else {
                self.fill_run(r, &run_slots, cache, cols)
            };
            self.run_scratch = run_slots;
            if let Some(e) = failed {
                return Err(e);
            }
            read_result?;
            i = j;
        }
        Ok(())
    }

    /// Fills the freshly assigned `slots` for the miss run starting at
    /// `first_row`: staged rows are admitted (copied from the staging
    /// buffer, no I/O), and each maximal sub-run of non-staged rows is one
    /// coalesced backing-store read scattered to its slots.
    fn fill_run(
        &mut self,
        first_row: u32,
        slots: &[u32],
        cache: &mut [f32],
        cols: usize,
    ) -> crate::Result<()> {
        let mut k = 0;
        while k < slots.len() {
            let row = first_row + k as u32;
            if let Ok(pos) = self.staged_rows.binary_search(&row) {
                let si = slots[k] as usize;
                cache[si * cols..(si + 1) * cols]
                    .copy_from_slice(&self.staged_data[pos * cols..(pos + 1) * cols]);
                self.staged_used[pos] = true;
                self.pstats.admitted += 1;
                k += 1;
                continue;
            }
            // Maximal sub-run of non-staged rows -> one coalesced read.
            let mut m = k + 1;
            while m < slots.len()
                && self
                    .staged_rows
                    .binary_search(&(first_row + m as u32))
                    .is_err()
            {
                m += 1;
            }
            let run = m - k;
            self.pstats.demand_loads += run as u64;
            let first = first_row as usize + k;
            if run == 1 {
                let si = slots[k] as usize;
                self.backing()
                    .read_rows_into(first, 1, &mut cache[si * cols..(si + 1) * cols])
                    .map_err(io_error)?;
            } else {
                let mut staging = std::mem::take(&mut self.io_scratch);
                staging.resize(run * cols, 0.0);
                let res = self
                    .backing()
                    .read_rows_into(first, run, &mut staging)
                    .map_err(io_error);
                if res.is_ok() {
                    for (q, &s) in slots[k..m].iter().enumerate() {
                        let si = s as usize;
                        cache[si * cols..(si + 1) * cols]
                            .copy_from_slice(&staging[q * cols..(q + 1) * cols]);
                    }
                }
                self.io_scratch = staging;
                res?;
            }
            k = m;
        }
        Ok(())
    }

    fn evict_slot(&mut self, s: u32, cache: &mut [f32], cols: usize) -> crate::Result<()> {
        let si = s as usize;
        let old = self.row_of[si];
        debug_assert_ne!(old, NOT_RESIDENT);
        if self.dirty_slot[si] {
            self.backing()
                .write_rows(old as usize, 1, &cache[si * cols..(si + 1) * cols])
                .map_err(io_error)?;
            self.stats.write_backs += 1;
            self.dirty_slot[si] = false;
        }
        self.slot_of[old as usize] = NOT_RESIDENT;
        self.row_of[si] = NOT_RESIDENT;
        self.stats.evictions += 1;
        self.detach(s);
        Ok(())
    }

    /// Writes every dirty resident row back to storage and flushes it. The
    /// cache stays resident (this is the checkpoint hook, not an unload).
    ///
    /// Dirty rows are written in **absolute row order** so runs of adjacent
    /// dirty rows coalesce into single backing-store writes (gathered
    /// through a staging buffer — adjacent rows are usually scattered
    /// across cache slots). The bytes that land in storage, and the
    /// `write_backs` counter (one per row), are identical to the
    /// slot-at-a-time walk.
    ///
    /// # Errors
    ///
    /// I/O errors from the backing store, or a storage lent to a prefetch
    /// worker.
    pub fn flush(&mut self, cache: &[f32]) -> crate::Result<()> {
        if self.storage.is_none() {
            return Err(Self::lent_error());
        }
        let cols = self.cols;
        let mut rows = std::mem::take(&mut self.union_scratch);
        rows.clear();
        for si in 0..self.budget {
            if self.dirty_slot[si] && self.row_of[si] != NOT_RESIDENT {
                rows.push(self.row_of[si]);
            }
        }
        rows.sort_unstable();
        let mut staging = std::mem::take(&mut self.io_scratch);
        let mut result = Ok(());
        let mut i = 0;
        while i < rows.len() {
            let r0 = rows[i];
            let mut j = i + 1;
            while j < rows.len() && rows[j] == r0 + (j - i) as u32 {
                j += 1;
            }
            let run = j - i;
            let res = if run == 1 {
                let si = self.slot_of[r0 as usize] as usize;
                self.dirty_slot[si] = false;
                self.stats.write_backs += 1;
                self.backing()
                    .write_rows(r0 as usize, 1, &cache[si * cols..(si + 1) * cols])
                    .map_err(io_error)
            } else {
                staging.resize(run * cols, 0.0);
                for k in 0..run {
                    let si = self.slot_of[(r0 as usize) + k] as usize;
                    staging[k * cols..(k + 1) * cols]
                        .copy_from_slice(&cache[si * cols..(si + 1) * cols]);
                    self.dirty_slot[si] = false;
                    self.stats.write_backs += 1;
                }
                self.backing()
                    .write_rows(r0 as usize, run, &staging[..run * cols])
                    .map_err(io_error)
            };
            if let Err(e) = res {
                result = Err(e);
                break;
            }
            i = j;
        }
        self.io_scratch = staging;
        self.union_scratch = rows;
        result?;
        self.backing().flush().map_err(io_error)?;
        Ok(())
    }

    /// Reads the full logical table from backing storage into `out`
    /// (callers flush first so the bytes are current).
    ///
    /// # Errors
    ///
    /// I/O errors from the backing store, or a storage lent to a prefetch
    /// worker.
    pub fn read_all(&mut self, out: &mut [f32]) -> crate::Result<()> {
        if self.storage.is_none() {
            return Err(Self::lent_error());
        }
        let rows = self.rows;
        self.backing()
            .read_rows_into(0, rows, out)
            .map_err(io_error)
    }

    /// Translates the sorted absolute `rows` into their (sorted) slot list
    /// in `slot_scratch`. Every row must be resident.
    pub(crate) fn translate_sorted(&mut self, rows: &[u32]) {
        self.slot_scratch.clear();
        for &r in rows {
            let s = self.slot_of[r as usize];
            assert_ne!(
                s, NOT_RESIDENT,
                "row {r} not resident during slot translation (touched outside the paged-in working set)"
            );
            self.slot_scratch.push(s);
        }
        self.slot_scratch.sort_unstable();
    }

    /// Merges index lists into one sorted, deduplicated union and pages it
    /// in via [`Pager::ensure`]. The union buffer is reused across calls,
    /// so the steady-state merge is allocation-free.
    ///
    /// # Errors
    ///
    /// See [`Pager::ensure`].
    pub(crate) fn ensure_union(
        &mut self,
        lists: &[&[u32]],
        cache: &mut [f32],
    ) -> crate::Result<()> {
        let mut rows = std::mem::take(&mut self.union_scratch);
        rows.clear();
        for l in lists {
            rows.extend_from_slice(l);
        }
        rows.sort_unstable();
        rows.dedup();
        let result = self.ensure(&rows, cache);
        self.union_scratch = rows;
        result
    }

    /// Opens a prefetch hand-off for the next batch: merges `lists` into a
    /// working-set union (exactly as the page-in path will when the batch
    /// arrives), fills `rows_out` with the union's **non-resident**
    /// rows — the ones a worker should read early — and lends out the
    /// backing storage. No cache state changes; the pager is fully usable
    /// for in-cache work while lent, but anything needing storage (miss
    /// loads, write-backs, flush) errors until [`Pager::finish_prefetch`]
    /// or [`Pager::reclaim_storage`] returns it.
    ///
    /// The non-resident filter is sound because residency is frozen while
    /// the storage is out: `ensure` (the only thing that loads or evicts)
    /// refuses to run without storage, so the staged rows stay non-resident
    /// and their backing bytes stay current until admission.
    ///
    /// # Errors
    ///
    /// Fails if the storage is already lent or staged rows are pending
    /// (protocol misuse: one prefetch may be in flight at a time).
    pub fn begin_prefetch(
        &mut self,
        lists: &[&[u32]],
        rows_out: &mut Vec<u32>,
    ) -> crate::Result<Box<dyn RowStorage>> {
        if !self.staged_rows.is_empty() {
            return Err(storage_error(
                "prefetch protocol: staged rows are pending admission".into(),
            ));
        }
        let storage = self.storage.take().ok_or_else(Self::lent_error)?;
        self.io_ops_at_lend = storage.io_ops();
        let mut rows = std::mem::take(&mut self.union_scratch);
        rows.clear();
        for l in lists {
            rows.extend_from_slice(l);
        }
        rows.sort_unstable();
        rows.dedup();
        if self.trace.is_some() {
            // Record the unfiltered request so a replay can re-derive (and
            // thereby validate) the residency filter below.
            self.trace_prefetch
                .push((self.trace_call_lens.len() as u32, rows.clone()));
        }
        rows_out.clear();
        rows_out.extend(
            rows.iter()
                .copied()
                .filter(|&r| self.slot_of[r as usize] == NOT_RESIDENT),
        );
        self.union_scratch = rows;
        Ok(storage)
    }

    /// Closes a prefetch hand-off: returns the lent storage and installs
    /// the worker's staged rows (`rows` strictly ascending — the list
    /// [`Pager::begin_prefetch`] produced — with `data` holding
    /// `rows.len() × cols` floats read from storage). The next
    /// [`Pager::ensure`] call admits them.
    ///
    /// # Errors
    ///
    /// Fails if the storage was never lent.
    pub fn finish_prefetch(
        &mut self,
        storage: Box<dyn RowStorage>,
        rows: &[u32],
        data: &[f32],
    ) -> crate::Result<()> {
        if self.storage.is_some() {
            return Err(storage_error(
                "prefetch protocol: storage returned twice".into(),
            ));
        }
        debug_assert_eq!(data.len(), rows.len() * self.cols);
        debug_assert!(rows.windows(2).all(|w| w[0] < w[1]));
        self.storage = Some(storage);
        self.staged_rows.clear();
        self.staged_rows.extend_from_slice(rows);
        self.staged_data.clear();
        self.staged_data.extend_from_slice(data);
        self.staged_used.clear();
        self.staged_used.resize(rows.len(), false);
        self.pstats.staged += rows.len() as u64;
        Ok(())
    }

    /// Returns lent storage without staging anything — the error-path half
    /// of the hand-off (the worker's read failed, or the prefetch is being
    /// abandoned at shutdown).
    pub fn reclaim_storage(&mut self, storage: Box<dyn RowStorage>) {
        debug_assert!(self.storage.is_none(), "storage returned twice");
        self.storage = Some(storage);
    }
}

pub(crate) fn storage_error(context: String) -> crate::Error {
    crate::Error::Storage { context }
}

pub(crate) fn io_error(e: std::io::Error) -> crate::Error {
    crate::Error::Storage {
        context: e.to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn counting_storage(rows: usize, cols: usize) -> Box<VecStorage> {
        let mut s = VecStorage::new(rows, cols);
        for r in 0..rows {
            let row: Vec<f32> = (0..cols).map(|c| (r * cols + c) as f32).collect();
            s.write_rows(r, 1, &row).unwrap();
        }
        Box::new(s)
    }

    #[test]
    fn vec_storage_roundtrip_and_bounds() {
        let mut s = VecStorage::new(3, 2);
        assert_eq!(s.rows(), 3);
        assert_eq!(s.cols(), 2);
        s.write_rows(2, 1, &[1.0, 2.0]).unwrap();
        let mut out = [0.0; 2];
        s.read_rows_into(2, 1, &mut out).unwrap();
        assert_eq!(out, [1.0, 2.0]);
        assert!(s.read_rows_into(3, 1, &mut out).is_err());
        assert!(s.write_rows(0, 2, &[0.0; 3]).is_err());
    }

    #[test]
    fn pager_loads_hits_and_evicts_lru() {
        let mut p = Pager::new(counting_storage(10, 2), 2);
        let mut cache = vec![0.0f32; 2 * 2];
        p.ensure(&[3], &mut cache).unwrap();
        assert_eq!(cache[0..2], [6.0, 7.0]);
        p.ensure(&[5], &mut cache).unwrap();
        assert_eq!(cache[2..4], [10.0, 11.0]);
        // Hit renews recency: 3 becomes MRU, so loading 7 evicts 5.
        p.ensure(&[3], &mut cache).unwrap();
        p.ensure(&[7], &mut cache).unwrap();
        assert_eq!(p.slot_of()[5], NOT_RESIDENT);
        assert_eq!(p.slot(3), 0);
        assert_eq!(p.slot(7), 1);
        assert_eq!(
            p.stats(),
            PageStats {
                hits: 1,
                misses: 3,
                evictions: 1,
                write_backs: 0
            }
        );
    }

    #[test]
    fn dirty_rows_write_back_on_evict_and_flush() {
        let mut p = Pager::new(counting_storage(10, 2), 2);
        let mut cache = vec![0.0f32; 2 * 2];
        p.ensure(&[1, 2], &mut cache).unwrap();
        let s1 = p.slot(1);
        cache[s1 * 2..s1 * 2 + 2].copy_from_slice(&[-1.0, -2.0]);
        p.mark_slot_dirty(s1);
        // Evicting row 1 (LRU order: 1 older than 2) must persist the edit.
        p.ensure(&[9], &mut cache).unwrap();
        assert_eq!(p.stats().write_backs, 1);
        let mut out = [0.0; 2];
        p.storage
            .as_mut()
            .unwrap()
            .read_rows_into(1, 1, &mut out)
            .unwrap();
        assert_eq!(out, [-1.0, -2.0]);
        // Reloading sees the written-back bytes.
        p.ensure(&[1], &mut cache).unwrap();
        let s1 = p.slot(1);
        assert_eq!(cache[s1 * 2..s1 * 2 + 2], [-1.0, -2.0]);
        // Flush persists without unloading.
        let s1 = p.slot(1);
        cache[s1 * 2] = 42.0;
        p.mark_slot_dirty(s1);
        p.flush(&cache).unwrap();
        p.storage
            .as_mut()
            .unwrap()
            .read_rows_into(1, 1, &mut out)
            .unwrap();
        assert_eq!(out[0], 42.0);
        assert_eq!(p.slot(1), s1, "flush keeps rows resident");
    }

    #[test]
    fn working_set_larger_than_budget_errors() {
        let mut p = Pager::new(counting_storage(10, 1), 2);
        let mut cache = vec![0.0f32; 2];
        let err = p.ensure(&[1, 4, 8], &mut cache).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("cache budget"), "unexpected error: {msg}");
    }

    #[test]
    fn budget_at_table_size_never_evicts() {
        let mut p = Pager::new(counting_storage(4, 1), 100);
        assert_eq!(p.budget(), 4, "budget clamps to the table");
        let mut cache = vec![0.0f32; 4];
        for _ in 0..3 {
            p.ensure(&[0, 1, 2, 3], &mut cache).unwrap();
        }
        assert_eq!(p.stats().evictions, 0);
        assert_eq!(p.stats().misses, 4);
        assert_eq!(p.stats().hits, 8);
    }

    /// Wraps [`VecStorage`] counting backend calls, to observe coalescing.
    #[derive(Debug)]
    struct CallCountingStorage {
        inner: VecStorage,
        reads: u64,
        writes: u64,
    }

    impl CallCountingStorage {
        fn new(rows: usize, cols: usize) -> Box<Self> {
            let mut inner = VecStorage::new(rows, cols);
            for r in 0..rows {
                let row: Vec<f32> = (0..cols).map(|c| (r * cols + c) as f32).collect();
                inner.write_rows(r, 1, &row).unwrap();
            }
            Box::new(Self {
                inner,
                reads: 0,
                writes: 0,
            })
        }
    }

    impl RowStorage for CallCountingStorage {
        fn rows(&self) -> usize {
            self.inner.rows()
        }
        fn cols(&self) -> usize {
            self.inner.cols()
        }
        fn read_rows_into(
            &mut self,
            first: usize,
            count: usize,
            out: &mut [f32],
        ) -> std::io::Result<()> {
            self.reads += 1;
            self.inner.read_rows_into(first, count, out)
        }
        fn write_rows(&mut self, first: usize, count: usize, data: &[f32]) -> std::io::Result<()> {
            self.writes += 1;
            self.inner.write_rows(first, count, data)
        }
        fn io_ops(&self) -> (u64, u64) {
            (self.reads, self.writes)
        }
    }

    #[test]
    fn contiguous_miss_run_coalesces_to_one_read_with_same_bytes() {
        let mut p = Pager::new(CallCountingStorage::new(32, 3), 16);
        let mut cache = vec![0.0f32; 16 * 3];
        let rows: Vec<u32> = (4..20).collect();
        p.ensure(&rows, &mut cache).unwrap();
        assert_eq!(
            p.storage_io_ops(),
            (1, 0),
            "a 16-row contiguous miss run must be one backend read"
        );
        assert_eq!(p.stats().misses, 16, "counters stay per-row");
        for &r in &rows {
            let s = p.slot(r as usize);
            let want: Vec<f32> = (0..3).map(|c| (r as usize * 3 + c) as f32).collect();
            assert_eq!(&cache[s * 3..(s + 1) * 3], &want[..], "row {r} bytes");
        }
    }

    #[test]
    fn gaps_and_resident_rows_break_runs() {
        let mut p = Pager::new(CallCountingStorage::new(32, 2), 16);
        let mut cache = vec![0.0f32; 16 * 2];
        // Two runs separated by a gap: two reads.
        p.ensure(&[0, 1, 2, 5, 6], &mut cache).unwrap();
        assert_eq!(p.storage_io_ops(), (2, 0));
        // Rows 0..3 and 5..7 are now resident: only 3..5 and 7..8 miss,
        // and residency breaks what would otherwise be one 0..8 run.
        p.ensure(&[0, 1, 2, 3, 4, 5, 6, 7], &mut cache).unwrap();
        assert_eq!(p.storage_io_ops(), (4, 0));
        assert_eq!(p.stats().hits, 5);
        assert_eq!(p.stats().misses, 8);
    }

    #[test]
    fn flush_coalesces_adjacent_dirty_rows_and_preserves_bytes() {
        let mut p = Pager::new(CallCountingStorage::new(32, 2), 8);
        let mut cache = vec![0.0f32; 8 * 2];
        // Load rows in an order that scatters adjacent rows across slots.
        p.ensure(&[10], &mut cache).unwrap();
        p.ensure(&[12], &mut cache).unwrap();
        p.ensure(&[11], &mut cache).unwrap();
        p.ensure(&[20], &mut cache).unwrap();
        for r in [10u32, 11, 12, 20] {
            let s = p.slot(r as usize);
            cache[s * 2..(s + 1) * 2].copy_from_slice(&[-(r as f32), r as f32]);
            p.mark_slot_dirty(s);
        }
        let writes_before = p.storage_io_ops().1;
        p.flush(&cache).unwrap();
        assert_eq!(
            p.storage_io_ops().1 - writes_before,
            2,
            "rows 10..13 must coalesce into one write; row 20 is its own"
        );
        assert_eq!(p.stats().write_backs, 4, "counters stay per-row");
        let mut out = [0.0f32; 2];
        for r in [10usize, 11, 12, 20] {
            p.storage
                .as_mut()
                .unwrap()
                .read_rows_into(r, 1, &mut out)
                .unwrap();
            assert_eq!(out, [-(r as f32), r as f32], "row {r} written back");
        }
        // A second flush has nothing dirty: no further writes.
        let writes_before = p.storage_io_ops().1;
        p.flush(&cache).unwrap();
        assert_eq!(p.storage_io_ops().1, writes_before);
    }

    #[test]
    fn trace_records_accesses_in_order() {
        let mut p = Pager::new(counting_storage(10, 1), 4);
        let mut cache = vec![0.0f32; 4];
        p.set_tracing(true);
        p.ensure(&[2, 7], &mut cache).unwrap();
        p.ensure(&[1, 7], &mut cache).unwrap();
        assert_eq!(p.trace(), Some(&[2, 7, 1, 7][..]));
        assert_eq!(p.trace_call_lens(), &[2, 2]);
    }

    /// Drives one full prefetch hand-off the way a worker would, inline.
    fn prefetch_round_trip(p: &mut Pager, lists: &[&[u32]]) -> Vec<u32> {
        let mut rows = Vec::new();
        let mut storage = p.begin_prefetch(lists, &mut rows).unwrap();
        let mut data = vec![0.0f32; rows.len() * p.cols()];
        storage.read_row_list_into(&rows, &mut data).unwrap();
        p.finish_prefetch(storage, &rows, &data).unwrap();
        rows
    }

    #[test]
    fn staged_rows_admit_without_backend_reads() {
        let mut p = Pager::new(CallCountingStorage::new(32, 2), 8);
        let mut cache = vec![0.0f32; 8 * 2];
        p.ensure(&[1, 2], &mut cache).unwrap();
        // Stage the next working set {1, 2, 6, 7, 9}: rows 1, 2 are already
        // resident, so only 6, 7, 9 go to the worker.
        let staged = prefetch_round_trip(&mut p, &[&[1, 2, 6, 7], &[9]]);
        assert_eq!(staged, vec![6, 7, 9]);
        let reads_at_handoff = p.storage_io_ops().0;
        p.ensure(&[1, 2, 6, 7, 9], &mut cache).unwrap();
        assert_eq!(
            p.storage_io_ops().0,
            reads_at_handoff,
            "every miss was admitted from staging; no demand reads"
        );
        // Bytes are the backing-store bytes.
        for r in [6usize, 7, 9] {
            let s = p.slot(r);
            let want = [(r * 2) as f32, (r * 2 + 1) as f32];
            assert_eq!(cache[s * 2..s * 2 + 2], want, "row {r} bytes");
        }
        let ps = p.prefetch_stats();
        assert_eq!(ps.staged, 3);
        assert_eq!(ps.admitted, 3);
        assert_eq!(ps.wasted, 0);
        // demand_loads counts the two pre-prefetch misses only.
        assert_eq!(ps.demand_loads, 2);
        assert_eq!(ps.admitted + ps.demand_loads, p.stats().misses);
    }

    #[test]
    fn prefetch_changes_byte_source_never_decisions() {
        // The same access sequence with and without prefetch: PageStats and
        // final cache bytes must be identical.
        let seqs: [&[u32]; 4] = [&[0, 1, 2, 3], &[2, 3, 8, 9], &[0, 8, 12], &[1, 9, 12]];
        let mut plain = Pager::new(counting_storage(16, 2), 6);
        let mut plain_cache = vec![0.0f32; 6 * 2];
        for s in &seqs {
            plain.ensure(s, &mut plain_cache).unwrap();
        }
        let mut pf = Pager::new(counting_storage(16, 2), 6);
        let mut pf_cache = vec![0.0f32; 6 * 2];
        for (i, s) in seqs.iter().enumerate() {
            if i > 0 {
                // Prefetch this working set at the end of the previous step
                // — here, just before, which exercises the same hand-off.
                prefetch_round_trip(&mut pf, &[s]);
            }
            pf.ensure(s, &mut pf_cache).unwrap();
        }
        assert_eq!(plain.stats(), pf.stats(), "decision stream must match");
        assert_eq!(plain.slot_of(), pf.slot_of(), "slot assignment must match");
        assert_eq!(plain_cache, pf_cache, "cache bytes must match");
        let ps = pf.prefetch_stats();
        assert_eq!(ps.admitted + ps.demand_loads, pf.stats().misses);
        assert_eq!(ps.admitted + ps.wasted, ps.staged);
    }

    #[test]
    fn unused_staged_rows_count_wasted_and_clear() {
        let mut p = Pager::new(counting_storage(16, 1), 4);
        let mut cache = vec![0.0f32; 4];
        let staged = prefetch_round_trip(&mut p, &[&[5, 6, 7]]);
        assert_eq!(staged, vec![5, 6, 7]);
        // The batch that arrives wants something else entirely.
        p.ensure(&[1, 2], &mut cache).unwrap();
        let ps = p.prefetch_stats();
        assert_eq!(ps.staged, 3);
        assert_eq!(ps.admitted, 0);
        assert_eq!(ps.wasted, 3);
        // The staging window closed: a later access to 5 is a demand load.
        p.ensure(&[5], &mut cache).unwrap();
        assert_eq!(p.prefetch_stats().wasted, 3);
        assert_eq!(p.prefetch_stats().demand_loads, 3);
    }

    #[test]
    fn staged_row_never_clobbers_dirtier_resident_copy() {
        let mut p = Pager::new(counting_storage(16, 2), 4);
        let mut cache = vec![0.0f32; 4 * 2];
        // Stage row 3 while it is NOT resident...
        let staged = prefetch_round_trip(&mut p, &[&[3]]);
        assert_eq!(staged, vec![3]);
        // ...then (violating the usual frozen-residency protocol) make it
        // resident and dirty before admission. ensure() must keep the
        // dirtier cached copy: hits never touch cache bytes.
        //
        // (ensure consumes the staging window, so re-stage afterwards.)
        p.ensure(&[3], &mut cache).unwrap();
        let s = p.slot(3);
        cache[s * 2..s * 2 + 2].copy_from_slice(&[-7.0, -8.0]);
        p.mark_slot_dirty(s);
        let mut rows = Vec::new();
        let storage = p.begin_prefetch(&[&[2]], &mut rows).unwrap();
        // Hand back a deliberately wrong staging list that includes the
        // resident dirty row 3.
        p.finish_prefetch(storage, &[2, 3], &[4.0, 5.0, 6.0, 7.0])
            .unwrap();
        p.ensure(&[2, 3], &mut cache).unwrap();
        let s = p.slot(3);
        assert_eq!(
            cache[s * 2..s * 2 + 2],
            [-7.0, -8.0],
            "the dirty resident copy must survive admission"
        );
        let ps = p.prefetch_stats();
        assert_eq!(ps.wasted, 1, "the resident row's staged copy is wasted");
        // One admission from the first round trip, one for row 2 here.
        assert_eq!(ps.admitted, 2, "row 2 still admits normally");
    }

    #[test]
    fn prefetch_protocol_misuse_errors_cleanly() {
        let mut p = Pager::new(counting_storage(8, 1), 4);
        let mut cache = vec![0.0f32; 4];
        let mut rows = Vec::new();
        let storage = p.begin_prefetch(&[&[1, 2]], &mut rows).unwrap();
        // Storage is lent: everything needing it fails instead of panicking.
        assert!(p.begin_prefetch(&[&[3]], &mut Vec::new()).is_err());
        assert!(p.ensure(&[1], &mut cache).is_err());
        assert!(p.flush(&cache).is_err());
        let mut out = vec![0.0f32; 8];
        assert!(p.read_all(&mut out).is_err());
        // Shape queries still answer while lent.
        assert_eq!(p.rows(), 8);
        assert_eq!(p.cols(), 1);
        p.finish_prefetch(storage, &rows, &[1.0, 2.0]).unwrap();
        // Returning a second storage is rejected.
        let extra: Box<dyn RowStorage> = Box::new(VecStorage::new(8, 1));
        assert!(p.finish_prefetch(extra, &[], &[]).is_err());
        // With staged rows pending, a new hand-off is rejected.
        assert!(p.begin_prefetch(&[&[3]], &mut Vec::new()).is_err());
        p.ensure(&[1, 2], &mut cache).unwrap();
        assert_eq!(p.prefetch_stats().admitted, 2);
    }

    #[test]
    fn prefetch_trace_records_requests_and_call_boundaries() {
        let mut p = Pager::new(counting_storage(16, 1), 4);
        let mut cache = vec![0.0f32; 4];
        p.set_tracing(true);
        p.ensure(&[1, 2], &mut cache).unwrap();
        // Request includes resident rows; the event records them unfiltered.
        let staged = prefetch_round_trip(&mut p, &[&[2, 5], &[6]]);
        assert_eq!(staged, vec![5, 6]);
        p.ensure(&[2, 5, 6], &mut cache).unwrap();
        assert_eq!(p.trace_call_lens(), &[2, 3]);
        assert_eq!(
            p.trace_prefetch_events(),
            &[(1, vec![2, 5, 6])],
            "event fires after call 0, records the unfiltered union"
        );
        assert_eq!(p.trace(), Some(&[1, 2, 2, 5, 6][..]));
    }

    #[test]
    fn default_row_list_read_coalesces_adjacent_runs() {
        let mut s = CallCountingStorage::new(16, 2);
        let mut out = vec![0.0f32; 5 * 2];
        // 3,4,5 | 9,10 -> two transfers.
        s.read_row_list_into(&[3, 4, 5, 9, 10], &mut out).unwrap();
        assert_eq!(s.io_ops(), (2, 0));
        for (i, r) in [3usize, 4, 5, 9, 10].into_iter().enumerate() {
            assert_eq!(out[i * 2], (r * 2) as f32, "row {r} landed at index {i}");
        }
        // Mis-sized buffer is rejected before any I/O.
        assert!(s.read_row_list_into(&[0, 1], &mut out).is_err());
        assert_eq!(s.io_ops(), (2, 0));
    }
}
