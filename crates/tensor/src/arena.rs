//! A recycling buffer arena for steady-state allocation-free training.
//!
//! The training step records the *same* tape shape batch after batch: every
//! node value, node gradient, kernel output, and backward temporary has a
//! size that recurs identically on the next batch. Allocating (and zeroing)
//! each of those buffers fresh makes the step allocator-bound at the margins
//! — thousands of page-faulting `malloc`/`memset` cycles per epoch that do
//! no arithmetic. The [`Arena`] breaks that cycle: buffers are *reclaimed*
//! on tape reset instead of dropped, and the next request for the same
//! length pops the recycled buffer off a free list.
//!
//! # Design
//!
//! * **Length-keyed free lists.** A [`crate::Tensor`] is a flat row-major
//!   `Vec<f32>`, so the only shape component that matters for reuse is the
//!   element count — an `(m, 1)` column and a `(1, m)` row share a bucket.
//! * **Reclaimed buffers stay registered.** [`crate::memory`] accounting
//!   treats a pooled buffer as live: [`Arena::reclaim`] does *not*
//!   deregister, and [`crate::Tensor::zeros_in`] /
//!   [`crate::Tensor::uninit_in`] do not re-register on a pool hit. Only a
//!   pool **miss** performs (and counts) a real heap allocation, so
//!   [`crate::memory::alloc_count`] is flat once the working set is warm,
//!   and [`crate::memory::peak_bytes`] keeps its meaning as the
//!   high-water mark of the live working set.
//! * **Determinism is untouched.** Recycling changes buffer *identity*,
//!   never arithmetic order. `zeros_in` zero-fills a recycled buffer exactly
//!   as a fresh allocation would be zeroed; `uninit_in` hands back stale
//!   contents and is only used by kernels that fully overwrite their output.
//!
//! # Examples
//!
//! ```
//! use tensor::{memory, Arena, Tensor};
//!
//! let mut arena = Arena::new();
//! let t = Tensor::zeros_in(&mut arena, 8, 4); // pool miss: heap-allocates
//! let allocs = memory::alloc_count();
//! arena.reclaim(t);
//! let t = Tensor::zeros_in(&mut arena, 8, 4); // pool hit: no allocation
//! assert_eq!(memory::alloc_count(), allocs);
//! assert!(t.as_slice().iter().all(|&x| x == 0.0));
//! ```

use std::collections::HashMap;

use crate::{memory, Tensor};

/// A length-keyed free-list pool of `f32` buffers (see the module docs).
///
/// The autograd tape ([`crate::Graph`]) owns one arena and draws every node
/// value, node gradient, and backward temporary from it; [`crate::Graph::reset`]
/// returns them all. Long-lived training drivers therefore perform zero
/// tensor-buffer heap allocations once the first batch has populated the
/// pool.
#[derive(Debug, Default)]
pub struct Arena {
    buckets: HashMap<usize, Vec<Vec<f32>>>,
    held_bytes: u64,
    hits: u64,
    misses: u64,
}

impl Arena {
    /// Creates an empty arena.
    pub fn new() -> Self {
        Self::default()
    }

    /// Pops a recycled buffer of exactly `len` elements, if one is pooled.
    ///
    /// Registration ownership transfers to the caller: the buffer's bytes
    /// are already counted in [`memory::current_bytes`], and the `Tensor`
    /// built around it will deregister them on its final drop.
    pub(crate) fn take(&mut self, len: usize) -> Option<Vec<f32>> {
        match self.buckets.get_mut(&len).and_then(Vec::pop) {
            Some(buf) => {
                debug_assert_eq!(buf.len(), len);
                self.hits += 1;
                self.held_bytes -= (len * 4) as u64;
                Some(buf)
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Returns a tensor's buffer to the pool for reuse.
    ///
    /// The buffer's bytes **stay registered** with [`crate::memory`] — a
    /// pooled buffer is part of the live working set, so `current_bytes`
    /// and `peak_bytes` are unaffected by recycling round-trips.
    pub fn reclaim(&mut self, t: Tensor) {
        let data = t.into_raw_registered();
        self.held_bytes += (data.len() * 4) as u64;
        self.buckets.entry(data.len()).or_default().push(data);
    }

    /// Frees every pooled buffer (deregistering their bytes).
    pub fn clear(&mut self) {
        memory::deregister(self.held_bytes);
        self.held_bytes = 0;
        self.buckets.clear();
    }

    /// Bytes currently held by pooled (recycled, not in use) buffers.
    pub fn held_bytes(&self) -> u64 {
        self.held_bytes
    }

    /// Number of pooled buffers across all buckets.
    pub fn pooled_buffers(&self) -> usize {
        self.buckets.values().map(Vec::len).sum()
    }

    /// Requests served from the pool since construction.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Requests that fell through to a fresh heap allocation.
    pub fn misses(&self) -> u64 {
        self.misses
    }
}

impl Drop for Arena {
    fn drop(&mut self) {
        // Pooled buffers are registered; release their accounting with them.
        memory::deregister(self.held_bytes);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // NOTE: unit tests here avoid equality assertions on the *global*
    // `memory::alloc_count()` — tests in this binary run concurrently, so
    // only the arena-local hit/miss counters are race-free. The process-wide
    // flatness guarantee is asserted by the single-test integration binary
    // `sptransx/tests/alloc_regression.rs`.
    #[test]
    fn hit_reuses_buffer_instead_of_allocating() {
        let mut arena = Arena::new();
        let t = Tensor::zeros_in(&mut arena, 4, 4);
        assert_eq!(arena.misses(), 1);
        arena.reclaim(t);
        assert_eq!(arena.pooled_buffers(), 1);
        let t = Tensor::zeros_in(&mut arena, 4, 4);
        assert_eq!(arena.hits(), 1, "second request must be served by the pool");
        assert_eq!(arena.misses(), 1);
        assert_eq!(arena.pooled_buffers(), 0);
        assert_eq!(t.shape(), (4, 4));
    }

    #[test]
    fn zeros_in_scrubs_recycled_contents() {
        let mut arena = Arena::new();
        let mut t = Tensor::zeros_in(&mut arena, 2, 3);
        t.as_mut_slice().fill(7.5);
        arena.reclaim(t);
        let t = Tensor::zeros_in(&mut arena, 2, 3);
        assert!(t.as_slice().iter().all(|&x| x == 0.0));
        // uninit_in hands the stale buffer back as-is (callers overwrite).
        arena.reclaim(t);
        let mut u = Tensor::uninit_in(&mut arena, 3, 2);
        u.as_mut_slice().fill(1.0);
        assert_eq!(u.shape(), (3, 2)); // (2,3) and (3,2) share a bucket
    }

    #[test]
    fn length_mismatch_is_a_miss() {
        let mut arena = Arena::new();
        let t = Tensor::zeros_in(&mut arena, 2, 2);
        arena.reclaim(t);
        let _bigger = Tensor::zeros_in(&mut arena, 4, 4);
        assert_eq!(arena.misses(), 2);
        assert_eq!(arena.pooled_buffers(), 1); // the 2x2 buffer is still pooled
    }

    #[test]
    fn reclaimed_bytes_stay_registered_until_clear() {
        let mut arena = Arena::new();
        let before = memory::current_bytes();
        let t = Tensor::zeros_in(&mut arena, 10, 10);
        assert_eq!(memory::current_bytes(), before + 400);
        arena.reclaim(t);
        assert_eq!(
            memory::current_bytes(),
            before + 400,
            "pooled buffers are live working set"
        );
        assert_eq!(arena.held_bytes(), 400);
        arena.clear();
        assert_eq!(memory::current_bytes(), before);
        assert_eq!(arena.pooled_buffers(), 0);
    }

    #[test]
    fn drop_releases_held_accounting() {
        let before = memory::current_bytes();
        {
            let mut arena = Arena::new();
            let t = Tensor::zeros_in(&mut arena, 8, 8);
            arena.reclaim(t);
            assert!(memory::current_bytes() >= before + 256);
        }
        assert_eq!(memory::current_bytes(), before);
    }
}
