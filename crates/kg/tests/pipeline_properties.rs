//! Property-based tests of the data pipeline: sampler soundness, batch-plan
//! partitioning, split disjointness, and evaluation-protocol invariants.

use proptest::prelude::*;

use kg::synthetic::SyntheticKgBuilder;
use kg::{BatchPlan, BernoulliSampler, NegativeSampler, TripleSet, UniformSampler};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Splits partition the generated triples without overlap.
    #[test]
    fn dataset_splits_are_disjoint(
        entities in 10usize..80,
        relations in 1usize..6,
        seed in 0u64..500,
    ) {
        let ds = SyntheticKgBuilder::new(entities, relations)
            .triples(entities * 4)
            .valid_frac(0.1)
            .test_frac(0.2)
            .seed(seed)
            .build();
        let train: std::collections::HashSet<_> = ds.train.iter().collect();
        for t in ds.valid.iter() {
            prop_assert!(!train.contains(&t));
        }
        for t in ds.test.iter() {
            prop_assert!(!train.contains(&t));
        }
        prop_assert_eq!(
            ds.total_triples(),
            ds.train.len() + ds.valid.len() + ds.test.len()
        );
    }

    /// Negatives never collide with known triples, never self-loop, preserve
    /// the relation, and corrupt exactly one side.
    #[test]
    fn negative_sampler_soundness(
        entities in 5usize..60,
        seed in 0u64..500,
        bernoulli in proptest::bool::ANY,
    ) {
        let ds = SyntheticKgBuilder::new(entities, 3)
            .triples(entities * 3)
            .seed(seed)
            .build();
        let known = ds.all_known();
        let negatives = if bernoulli {
            BernoulliSampler::fit(&ds.train, entities).corrupt(&ds.train, &known, seed)
        } else {
            UniformSampler::new(entities).corrupt(&ds.train, &known, seed)
        };
        prop_assert_eq!(negatives.len(), ds.train.len());
        for (i, neg) in negatives.iter().enumerate() {
            let pos = ds.train.get(i);
            prop_assert_eq!(neg.rel, pos.rel);
            prop_assert!(neg.head != neg.tail, "self-loop negative {:?}", neg);
            prop_assert!(neg != pos);
            let head_changed = neg.head != pos.head;
            let tail_changed = neg.tail != pos.tail;
            prop_assert!(head_changed ^ tail_changed, "exactly one side corrupted");
        }
    }

    /// Batch plans cover the training set exactly once and shards partition
    /// the batches.
    #[test]
    fn batch_plan_partitions(
        entities in 10usize..60,
        batch_size in 1usize..64,
        workers in 1usize..6,
        seed in 0u64..200,
    ) {
        let ds = SyntheticKgBuilder::new(entities, 3)
            .triples(entities * 3)
            .seed(seed)
            .build();
        let sampler = UniformSampler::new(entities);
        let plan = BatchPlan::build(&ds.train, &ds.all_known(), &sampler, batch_size, seed);
        prop_assert_eq!(plan.total_triples(), ds.train.len());

        // Every training triple appears exactly once across batches.
        let mut seen = std::collections::HashMap::new();
        for batch in plan.iter() {
            for t in batch.pos.iter() {
                *seen.entry(t).or_insert(0usize) += 1;
            }
        }
        for t in ds.train.iter() {
            prop_assert_eq!(seen.get(&t).copied(), Some(1));
        }

        let shards = plan.shard(workers);
        prop_assert_eq!(shards.len(), workers);
        let total: usize = shards.iter().map(BatchPlan::total_triples).sum();
        prop_assert_eq!(total, plan.total_triples());
    }

    /// The filtered protocol never ranks worse than the raw protocol.
    #[test]
    fn filtered_never_worse_than_raw(seed in 0u64..200) {
        use kg::eval::{evaluate, EvalConfig, TripleScorer};
        let ds = SyntheticKgBuilder::new(30, 3).triples(150).seed(seed).build();
        let known = ds.all_known();
        struct S;
        impl TripleScorer for S {
            fn score_tails(&self, h: u32, r: u32) -> Vec<f32> {
                (0..30).map(|t| ((h + r + t) % 7) as f32).collect()
            }
            fn score_heads(&self, r: u32, t: u32) -> Vec<f32> {
                (0..30).map(|h| ((h + r + t) % 5) as f32).collect()
            }
            fn num_entities(&self) -> usize { 30 }
        }
        let raw = evaluate(&S, &ds.test, &known, &EvalConfig { filtered: false, ..Default::default() });
        let filt = evaluate(&S, &ds.test, &known, &EvalConfig::default());
        prop_assert!(filt.mean_rank <= raw.mean_rank + 1e-6);
        prop_assert!(filt.mrr + 1e-6 >= raw.mrr);
    }

    /// `TripleSet` is exactly the union of the splits.
    #[test]
    fn known_set_is_union(seed in 0u64..200) {
        let ds = SyntheticKgBuilder::new(40, 3).triples(200).seed(seed).build();
        let known = ds.all_known();
        let mut manual = TripleSet::new();
        for t in ds.train.iter().chain(ds.valid.iter()).chain(ds.test.iter()) {
            manual.insert(t);
        }
        prop_assert_eq!(known.len(), manual.len());
        for t in ds.train.iter() {
            prop_assert!(known.contains(&t));
        }
    }
}
