//! The paper's headline comparison on your machine: train the same TransE
//! model with the SpTransX (SpMM) schedule and the TorchKGE-style
//! (gather/scatter) schedule, from identical initialization, and compare
//! time, memory, FLOPs — and confirm the losses coincide.
//!
//! ```sh
//! cargo run --release --example sparse_vs_dense
//! ```

use kg::synthetic::SyntheticKgBuilder;
use sptransx::{DenseTransE, KgeModel, SpTransE, TrainConfig, Trainer};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dataset = SyntheticKgBuilder::new(5_000, 50)
        .triples(40_000)
        .seed(42)
        .build();
    let config = TrainConfig {
        epochs: 10,
        batch_size: 4096,
        dim: 64,
        lr: 0.01,
        ..Default::default()
    };

    println!(
        "TransE on {} entities / {} triples, dim {}, batch {}\n",
        dataset.num_entities,
        dataset.train.len(),
        config.dim,
        config.batch_size
    );

    let mut results = Vec::new();
    {
        let model = SpTransE::from_config(&dataset, &config)?;
        let mut trainer = Trainer::new(model, &dataset, &config)?;
        results.push(("SpTransX (sparse)", trainer.run()?));
    }
    {
        let model = DenseTransE::from_config(&dataset, &config)?;
        let mut trainer = Trainer::new(model, &dataset, &config)?;
        results.push(("Baseline (gather/scatter)", trainer.run()?));
    }

    println!(
        "{:<28} {:>9} {:>9} {:>9} {:>10} {:>9}",
        "variant", "fwd (s)", "bwd (s)", "step (s)", "mem (MiB)", "GFLOPs"
    );
    for (name, r) in &results {
        println!(
            "{:<28} {:>9.2} {:>9.2} {:>9.2} {:>10.2} {:>9.2}",
            name,
            r.breakdown.forward.as_secs_f64(),
            r.breakdown.backward.as_secs_f64(),
            r.breakdown.step.as_secs_f64(),
            r.peak_memory_bytes as f64 / (1024.0 * 1024.0),
            r.flops as f64 / 1e9,
        );
    }

    let speedup = results[1].1.wall.as_secs_f64() / results[0].1.wall.as_secs_f64().max(1e-9);
    println!("\noverall: baseline is {speedup:.2}x slower than SpTransX");

    println!("\nloss trajectories (must coincide — same math, different schedule):");
    println!("{:<8} {:>12} {:>12}", "epoch", "sparse", "dense");
    for (e, (a, b)) in results[0]
        .1
        .epoch_losses
        .iter()
        .zip(&results[1].1.epoch_losses)
        .enumerate()
    {
        println!("{e:<8} {a:>12.6} {b:>12.6}");
    }

    // Also show the model names via the common trait, for API discovery.
    let sp = SpTransE::from_config(&dataset, &config)?;
    println!(
        "\ntrait KgeModel: {} / dim {}",
        KgeModel::name(&sp),
        sp.dim()
    );
    Ok(())
}
