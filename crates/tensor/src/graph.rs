//! The define-by-run autograd tape.

use std::sync::Arc;

use sparse::incidence::IncidencePair;
use sparse::spmm::{csr_spmm_acc_into_with, csr_spmm_acc_rows_into_with, csr_spmm_into_with};
use xparallel::PoolHandle;

use crate::profile;
use crate::{Arena, ParamId, ParamStore, Tensor};

/// Fixed chunk length for the tape's scalar reductions (losses, means).
///
/// Boundaries depend only on the input length — never on the pool width —
/// so the f64 fold order, and therefore the result bits, are identical at
/// any `SPTX_NUM_THREADS`.
const REDUCE_CHUNK: usize = 8192;

/// Handle to a node on a [`Graph`] tape.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Var(usize);

/// Per-row score applied on top of an incidence SpMM by
/// [`Graph::spmm_score`] — the distance half of a fused
/// gather+distance kernel.
///
/// Each variant reduces one SpMM output row to a scalar with **exactly**
/// the float association of the corresponding standalone norm op
/// ([`Graph::l1_norm_rows`], [`Graph::l2_norm_rows`], …), so the fused and
/// materialized pipelines are bit-identical.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RowScore {
    /// `Σ_j |x_j|` — [`Graph::l1_norm_rows`].
    L1,
    /// `√(Σ_j x_j²)` — [`Graph::l2_norm_rows`]; `eps` guards the backward
    /// division for zero rows.
    L2 {
        /// Backward-division guard, as in [`Graph::l2_norm_rows`].
        eps: f32,
    },
    /// `Σ_j x_j²` — [`Graph::squared_l2_norm_rows`].
    SquaredL2,
    /// `Σ_j min(f_j, 1−f_j)`, `f_j = frac(x_j)` — [`Graph::torus_l1_rows`].
    TorusL1,
    /// `Σ_j min(f_j, 1−f_j)²` — [`Graph::torus_l2_sq_rows`].
    TorusL2Sq,
}

impl RowScore {
    /// Per-element forward term, matching the standalone norm op's closure
    /// expression-for-expression.
    #[inline]
    fn term(self, x: f32) -> f32 {
        match self {
            RowScore::L1 => x.abs(),
            RowScore::L2 { .. } | RowScore::SquaredL2 => x * x,
            RowScore::TorusL1 => {
                let f = x - x.floor();
                f.min(1.0 - f)
            }
            RowScore::TorusL2Sq => {
                let f = x - x.floor();
                let d = f.min(1.0 - f);
                d * d
            }
        }
    }

    /// Final per-row transform of the accumulated terms.
    #[inline]
    fn finish(self, acc: f32) -> f32 {
        match self {
            RowScore::L2 { .. } => acc.sqrt(),
            _ => acc,
        }
    }

    /// Per-element derivative for every variant except `L2` (whose backward
    /// divides by the stored row norm and is handled inline).
    #[inline]
    fn deriv(self, x: f32) -> f32 {
        match self {
            RowScore::L1 => x.signum(),
            RowScore::SquaredL2 => 2.0 * x,
            RowScore::TorusL1 => {
                let f = x - x.floor();
                if f <= 0.5 {
                    1.0
                } else {
                    -1.0
                }
            }
            RowScore::TorusL2Sq => {
                let f = x - x.floor();
                if f <= 0.5 {
                    2.0 * f
                } else {
                    -2.0 * (1.0 - f)
                }
            }
            RowScore::L2 { .. } => unreachable!("L2 backward divides by the stored norm"),
        }
    }
}

/// One output element of an incidence-row × dense product, replicating
/// [`sparse::spmm`]'s `spmm_row` arithmetic (including its 1/2/3-nonzero
/// fast-path float association) so fused kernels that recompute elements
/// on the fly stay bit-identical to the materialized SpMM.
#[inline]
fn spmm_elem(cols: &[u32], vals: &[f32], b: &[f32], n: usize, j: usize) -> f32 {
    match cols.len() {
        0 => 0.0,
        1 => vals[0] * b[cols[0] as usize * n + j],
        2 => vals[0] * b[cols[0] as usize * n + j] + vals[1] * b[cols[1] as usize * n + j],
        3 => {
            vals[0] * b[cols[0] as usize * n + j]
                + vals[1] * b[cols[1] as usize * n + j]
                + vals[2] * b[cols[2] as usize * n + j]
        }
        _ => {
            // General path: fold from 0.0 in nonzero order, exactly the
            // tiled axpy accumulation of the general SpMM kernel.
            let mut acc = 0.0f32;
            for (v, &c) in vals.iter().zip(cols) {
                acc += v * b[c as usize * n + j];
            }
            acc
        }
    }
}

/// [`spmm_elem`] for a paged parameter: `b` is the slot-aligned cache and
/// `map` the row→slot translation, so the element read is
/// `b[map[c]·n + j]` instead of `b[c·n + j]`. The fold structure (fast
/// paths included) is byte-for-byte the same — the slot map moves bytes,
/// never arithmetic, which is what keeps the paged arm bit-identical.
#[inline]
fn spmm_elem_mapped(cols: &[u32], vals: &[f32], b: &[f32], map: &[u32], n: usize, j: usize) -> f32 {
    #[inline(always)]
    fn at(b: &[f32], map: &[u32], c: u32, n: usize, j: usize) -> f32 {
        b[map[c as usize] as usize * n + j]
    }
    match cols.len() {
        0 => 0.0,
        1 => vals[0] * at(b, map, cols[0], n, j),
        2 => vals[0] * at(b, map, cols[0], n, j) + vals[1] * at(b, map, cols[1], n, j),
        3 => {
            vals[0] * at(b, map, cols[0], n, j)
                + vals[1] * at(b, map, cols[1], n, j)
                + vals[2] * at(b, map, cols[2], n, j)
        }
        _ => {
            let mut acc = 0.0f32;
            for (v, &c) in vals.iter().zip(cols) {
                acc += v * at(b, map, c, n, j);
            }
            acc
        }
    }
}

#[derive(Debug, Clone)]
enum Op {
    Input,
    Gather {
        param: ParamId,
        indices: Arc<Vec<u32>>,
    },
    Spmm {
        param: ParamId,
        pair: Arc<IncidencePair>,
    },
    SpmmScore {
        param: ParamId,
        pair: Arc<IncidencePair>,
        score: RowScore,
    },
    Add(Var, Var),
    Sub(Var, Var),
    Mul(Var, Var),
    Scale(Var, f32),
    RowDot(Var, Var),
    ScaleRows {
        mat: Var,
        scale: Var,
    },
    L1NormRows(Var),
    L2NormRows {
        input: Var,
        eps: f32,
    },
    SquaredL2NormRows(Var),
    TorusL1Rows(Var),
    TorusL2SqRows(Var),
    ProjectRows {
        mats: ParamId,
        vecs: Var,
        rels: Arc<Vec<u32>>,
        d_out: usize,
        d_in: usize,
    },
    MarginRankingLoss {
        pos: Var,
        neg: Var,
        margin: f32,
    },
    Mean(Var),
    RowSum(Var),
    TripleProduct {
        param: ParamId,
        pair: Arc<IncidencePair>,
    },
    RotateScore {
        param: ParamId,
        pair: Arc<IncidencePair>,
    },
    ComplexScore {
        param: ParamId,
        pair: Arc<IncidencePair>,
    },
}

/// Decomposes one 3-nonzero incidence row into `(pos_a, pos_b, tail)` column
/// indices: the negative coefficient marks the tail; the other two positive
/// columns are interchangeable for the complex products (h ⊙ r commutes).
#[inline]
fn split_hrt_row(cols: &[u32], vals: &[f32]) -> (usize, usize, usize) {
    debug_assert_eq!(cols.len(), 3);
    let mut tail = usize::MAX;
    let mut pos = [usize::MAX; 2];
    let mut k = 0;
    for (c, v) in cols.iter().zip(vals) {
        if *v < 0.0 {
            tail = *c as usize;
        } else if k < 2 {
            pos[k] = *c as usize;
            k += 1;
        }
    }
    debug_assert!(tail != usize::MAX && k == 2, "row is not a signed hrt row");
    (pos[0], pos[1], tail)
}

#[inline]
fn complex_at(buf: &[f32], row: usize, j: usize, d2: usize) -> (f32, f32) {
    let base = row * d2 + 2 * j;
    (buf[base], buf[base + 1])
}

#[inline]
fn cmul(a: (f32, f32), b: (f32, f32)) -> (f32, f32) {
    (a.0 * b.0 - a.1 * b.1, a.0 * b.1 + a.1 * b.0)
}

#[derive(Debug)]
struct Node {
    value: Tensor,
    grad: Option<Tensor>,
    op: Op,
}

/// A tape of eagerly-evaluated operations supporting reverse-mode autodiff.
///
/// A fresh `Graph` is built per mini-batch (define-by-run, as in PyTorch).
/// Values are computed when ops are recorded; [`Graph::backward`] replays the
/// tape in reverse, accumulating parameter gradients into the
/// [`ParamStore`].
///
/// The two embedding-access ops embody the paper's comparison:
///
/// * [`Graph::gather`] — fine-grained row gather whose backward is a
///   **scatter-add** (the non-sparse baseline path, paper Figure 1);
/// * [`Graph::spmm`] — incidence-matrix SpMM whose backward is a second SpMM
///   with `Aᵀ` (the SparseTransX path, paper §4.1 and Appendix G).
///
/// # Parallelism and determinism
///
/// Every forward kernel and backward closure dispatches on the tape's
/// [`PoolHandle`]: row-wise kernels partition their **output** rows across
/// workers (each row computed by exactly one worker with a serial inner
/// loop), and parameter-gradient accumulation is sharded by **destination**
/// row with per-triple contributions applied in tape order. Scalar
/// reductions (the losses) use fixed-size chunks folded in order. Together
/// these make one training step bit-identical at any pool width — the
/// determinism contract behind `SPTX_NUM_THREADS`-invariant training.
///
/// [`Graph::new`] uses the global pool; [`Graph::with_pool`] pins an
/// explicit handle (e.g. [`PoolHandle::sequential`] inside data-parallel
/// workers, or a pinned width for determinism audits).
///
/// # Memory
///
/// The tape owns a recycling [`Arena`]: every node value, node gradient,
/// kernel output, and backward temporary is drawn from it, and
/// [`Graph::reset`] returns them all for reuse. A driver that keeps one
/// `Graph` per thread and resets it between batches performs **zero**
/// tensor-buffer heap allocations once the first batch has populated the
/// pool (asserted by [`crate::memory::alloc_count`]-based regression
/// tests). Recycling swaps buffer identity only — arithmetic order, and
/// therefore every result bit, is unchanged.
#[derive(Debug)]
pub struct Graph {
    nodes: Vec<Node>,
    pool: PoolHandle,
    arena: Arena,
    /// Whether fused hot-path kernels are used ([`Graph::spmm_score`] and
    /// the margin-loss backward seed). On by default; the unfused arm
    /// records the materialized op-by-op tape instead, bit-identical.
    fused: bool,
}

impl Default for Graph {
    fn default() -> Self {
        Self {
            nodes: Vec::new(),
            pool: PoolHandle::default(),
            arena: Arena::new(),
            fused: true,
        }
    }
}

impl Graph {
    /// Creates an empty tape dispatching kernels on the global pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty tape dispatching kernels on an explicit pool handle.
    pub fn with_pool(pool: PoolHandle) -> Self {
        Self {
            nodes: Vec::new(),
            pool,
            arena: Arena::new(),
            fused: true,
        }
    }

    /// Enables or disables the fused hot-path kernels.
    ///
    /// Fused and unfused tapes are bit-identical (same float association,
    /// operation for operation); the unfused arm exists for ablation and
    /// for the property tests that prove the equivalence.
    pub fn set_fused(&mut self, fused: bool) {
        self.fused = fused;
    }

    /// Whether fused hot-path kernels are enabled.
    pub fn fused(&self) -> bool {
        self.fused
    }

    /// The pool handle this tape dispatches kernels on.
    pub fn pool(&self) -> &PoolHandle {
        &self.pool
    }

    /// The tape's buffer arena (recycling statistics for tests/reports).
    pub fn arena(&self) -> &Arena {
        &self.arena
    }

    /// Clears the tape, recycling every node's value and gradient buffer
    /// into the arena.
    ///
    /// This is the steady-state entry point: call it at the top of each
    /// mini-batch instead of constructing a fresh `Graph`, and the batch's
    /// identical tape shape is served entirely from recycled buffers.
    ///
    /// Every [`Var`] handed out before the reset is **invalidated** (`Var`
    /// is a plain tape index): using one afterwards indexes whatever node
    /// the next batch records at that position, or panics if the new tape
    /// is shorter. Read everything you need (loss values, gradients)
    /// before resetting — exactly as you would before dropping a
    /// per-batch graph.
    pub fn reset(&mut self) {
        for node in self.nodes.drain(..) {
            self.arena.reclaim(node.value);
            if let Some(grad) = node.grad {
                self.arena.reclaim(grad);
            }
        }
    }

    /// Number of recorded nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the tape is empty.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Borrows the forward value of a node.
    pub fn value(&self, v: Var) -> &Tensor {
        &self.nodes[v.0].value
    }

    /// Borrows the gradient of a node, if backward has reached it.
    pub fn grad(&self, v: Var) -> Option<&Tensor> {
        self.nodes[v.0].grad.as_ref()
    }

    fn push(&mut self, value: Tensor, op: Op) -> Var {
        self.nodes.push(Node {
            value,
            grad: None,
            op,
        });
        Var(self.nodes.len() - 1)
    }

    /// Records a constant input (gradients are tracked but go nowhere).
    pub fn input(&mut self, value: Tensor) -> Var {
        self.push(value, Op::Input)
    }

    /// Records a constant input copied out of a slice, drawing the buffer
    /// from the arena — the allocation-free analog of [`Graph::input`] for
    /// per-batch constants (e.g. triple weights) that recur every epoch.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn input_from_slice(&mut self, rows: usize, cols: usize, data: &[f32]) -> Var {
        assert_eq!(data.len(), rows * cols, "buffer length mismatch");
        let mut t = Tensor::uninit_in(&mut self.arena, rows, cols);
        t.as_mut_slice().copy_from_slice(data);
        self.push(t, Op::Input)
    }

    /// Gathers rows `indices` of parameter `param`: `out[i] = P[indices[i]]`.
    ///
    /// Backward is a scatter-add into the parameter gradient — the
    /// fine-grained path the paper identifies as the training bottleneck.
    /// Callers that gather the same index list every epoch should pass an
    /// `Arc<Vec<u32>>` to avoid re-copying it per batch.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of bounds for the parameter.
    pub fn gather(
        &mut self,
        store: &ParamStore,
        param: ParamId,
        indices: impl Into<Arc<Vec<u32>>>,
    ) -> Var {
        let _t = profile::scope("op::gather");
        let indices: Arc<Vec<u32>> = indices.into();
        let p = store.value(param);
        let d = p.cols();
        let mut out = Tensor::uninit_in(&mut self.arena, indices.len(), d);
        let src = p.as_slice();
        let idx = &indices;
        self.pool
            .for_rows(out.as_mut_slice(), d.max(1), 64, |first, chunk| {
                for (k, dst) in chunk.chunks_exact_mut(d.max(1)).enumerate() {
                    let r = idx[first + k] as usize;
                    dst.copy_from_slice(&src[r * d..(r + 1) * d]);
                }
            });
        sparse::metrics::add_bytes(2 * (indices.len() * d * 4) as u64);
        self.push(out, Op::Gather { param, indices })
    }

    /// Multiplies a (cached-transpose) incidence matrix by parameter `param`:
    /// `out = A · P`. Backward: `P.grad += Aᵀ · out.grad` (Appendix G).
    ///
    /// # Panics
    ///
    /// Panics if `A.cols() != P.rows()`.
    pub fn spmm(&mut self, store: &ParamStore, param: ParamId, pair: Arc<IncidencePair>) -> Var {
        let _t = profile::scope("op::spmm");
        let p = store.value(param);
        // The kernel overwrites every output row, so the buffer can come
        // back from the arena unscrubbed (no redundant zero-fill).
        let mut out = Tensor::uninit_in(&mut self.arena, pair.forward.rows(), p.cols());
        csr_spmm_into_with(&self.pool, &pair.forward, p.view(), out.as_mut_slice());
        self.push(out, Op::Spmm { param, pair })
    }

    /// Fused gather+distance: computes the `(m, 1)` per-row score
    /// `out[i] = score(A[i,:] · P)` in a single pass, never materializing
    /// the `m × d` SpMM intermediate — the pack-indices-then-single-pass
    /// shape of the paper's hot path.
    ///
    /// Bit-identical to `spmm` followed by the matching norm op: each
    /// output element is recomputed with `spmm_elem`'s exact association
    /// and the terms are folded from `0.0` in column order, the same
    /// arithmetic the materialized pipeline performs. When the tape's fused
    /// flag is off this *records* that two-op pipeline instead.
    ///
    /// Backward (fused arm) traverses the cached transpose like the SpMM
    /// backward, recomputing scored elements on the fly; each parameter
    /// gradient row is owned by exactly one worker, so training stays
    /// bit-identical at any pool width.
    ///
    /// # Panics
    ///
    /// Panics if `A.cols() != P.rows()`.
    pub fn spmm_score(
        &mut self,
        store: &ParamStore,
        param: ParamId,
        pair: Arc<IncidencePair>,
        score: RowScore,
    ) -> Var {
        if !self.fused {
            let x = self.spmm(store, param, pair);
            return match score {
                RowScore::L1 => self.l1_norm_rows(x),
                RowScore::L2 { eps } => self.l2_norm_rows(x, eps),
                RowScore::SquaredL2 => self.squared_l2_norm_rows(x),
                RowScore::TorusL1 => self.torus_l1_rows(x),
                RowScore::TorusL2Sq => self.torus_l2_sq_rows(x),
            };
        }
        let _t = profile::scope("op::spmm_score");
        // `table` serves both residency modes: a resident parameter reads
        // rows directly, a paged one reads its pinned cache through the
        // row→slot map (every incidence column was paged in up front).
        let view = store.table(param);
        assert_eq!(pair.forward.cols(), view.rows(), "incidence width mismatch");
        let d = view.cols();
        let m = pair.forward.rows();
        let pd = view.data();
        let map = view.map();
        let indptr = pair.forward.indptr();
        let indices = pair.forward.indices();
        let values = pair.forward.values();
        let mut out = Tensor::uninit_in(&mut self.arena, m, 1);
        self.pool
            .for_rows(out.as_mut_slice(), 1, 128, |first, chunk| {
                for (k, dst) in chunk.iter_mut().enumerate() {
                    let i = first + k;
                    let (s, e) = (indptr[i] as usize, indptr[i + 1] as usize);
                    let (cols, vals) = (&indices[s..e], &values[s..e]);
                    let mut acc = 0.0f32;
                    match map {
                        None => {
                            for j in 0..d {
                                acc += score.term(spmm_elem(cols, vals, pd, d, j));
                            }
                        }
                        Some(map) => {
                            for j in 0..d {
                                acc += score.term(spmm_elem_mapped(cols, vals, pd, map, d, j));
                            }
                        }
                    }
                    *dst = score.finish(acc);
                }
            });
        // One SpMM's worth of reads plus the reduction's flops, but the
        // output write shrinks from m·d to m — the traffic the fusion
        // eliminates, visible in the per-kernel counter report.
        sparse::metrics::record_spmm_call();
        let nnz = pair.forward.nnz() as u64;
        let spmm_flops = if pair.forward.has_unit_coefficients() {
            nnz.saturating_sub(m as u64) * d as u64
        } else {
            2 * nnz * d as u64
        };
        sparse::metrics::add_flops(spmm_flops + 2 * (m * d) as u64);
        sparse::metrics::add_bytes(nnz * 8 + nnz * d as u64 * 4 + m as u64 * 4);
        self.push(out, Op::SpmmScore { param, pair, score })
    }

    /// Elementwise sum of two same-shape nodes.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn add(&mut self, a: Var, b: Var) -> Var {
        let _t = profile::scope("op::add");
        let (m, n) = self.value(a).shape();
        let mut v = Tensor::uninit_in(&mut self.arena, m, n);
        self.nodes[a.0].value.zip_map_into_with(
            &self.pool,
            &self.nodes[b.0].value,
            |x, y| x + y,
            &mut v,
        );
        sparse::metrics::add_flops(v.len() as u64);
        self.push(v, Op::Add(a, b))
    }

    /// Elementwise difference of two same-shape nodes.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn sub(&mut self, a: Var, b: Var) -> Var {
        let _t = profile::scope("op::sub");
        let (m, n) = self.value(a).shape();
        let mut v = Tensor::uninit_in(&mut self.arena, m, n);
        self.nodes[a.0].value.zip_map_into_with(
            &self.pool,
            &self.nodes[b.0].value,
            |x, y| x - y,
            &mut v,
        );
        sparse::metrics::add_flops(v.len() as u64);
        self.push(v, Op::Sub(a, b))
    }

    /// Elementwise product of two same-shape nodes.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn mul(&mut self, a: Var, b: Var) -> Var {
        let _t = profile::scope("op::mul");
        let (m, n) = self.value(a).shape();
        let mut v = Tensor::uninit_in(&mut self.arena, m, n);
        self.nodes[a.0].value.zip_map_into_with(
            &self.pool,
            &self.nodes[b.0].value,
            |x, y| x * y,
            &mut v,
        );
        sparse::metrics::add_flops(v.len() as u64);
        self.push(v, Op::Mul(a, b))
    }

    /// Scales a node by a constant.
    pub fn scale(&mut self, a: Var, c: f32) -> Var {
        let (m, n) = self.value(a).shape();
        let mut v = Tensor::uninit_in(&mut self.arena, m, n);
        self.nodes[a.0]
            .value
            .map_into_with(&self.pool, |x| c * x, &mut v);
        sparse::metrics::add_flops(v.len() as u64);
        self.push(v, Op::Scale(a, c))
    }

    /// Per-row dot product: `out[i] = Σ_j a[i,j]·b[i,j]`, shape `(m, 1)`.
    ///
    /// TransH uses this for `wᵣᵀ·(h−t)`.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn row_dot(&mut self, a: Var, b: Var) -> Var {
        let _t = profile::scope("op::row_dot");
        let (m, n) = {
            let (av, bv) = (self.value(a), self.value(b));
            assert_eq!(av.shape(), bv.shape(), "row_dot shape mismatch");
            av.shape()
        };
        let mut out = Tensor::uninit_in(&mut self.arena, m, 1);
        let (ad, bd) = (
            self.nodes[a.0].value.as_slice(),
            self.nodes[b.0].value.as_slice(),
        );
        self.pool
            .for_rows(out.as_mut_slice(), 1, 256, |first, chunk| {
                for (k, dst) in chunk.iter_mut().enumerate() {
                    let i = first + k;
                    let mut acc = 0.0;
                    for j in 0..n {
                        acc += ad[i * n + j] * bd[i * n + j];
                    }
                    *dst = acc;
                }
            });
        sparse::metrics::add_flops(2 * (m * n) as u64);
        self.push(out, Op::RowDot(a, b))
    }

    /// Broadcast row scaling: `out[i,:] = mat[i,:] · scale[i]`, where `scale`
    /// has shape `(m, 1)`.
    ///
    /// # Panics
    ///
    /// Panics if `scale` is not `(mat.rows, 1)`.
    pub fn scale_rows(&mut self, mat: Var, scale: Var) -> Var {
        let _t = profile::scope("op::scale_rows");
        let (m, n) = {
            let (mv, sv) = (self.value(mat), self.value(scale));
            assert_eq!(sv.shape(), (mv.rows(), 1), "scale must be a (m,1) column");
            mv.shape()
        };
        let mut out = Tensor::uninit_in(&mut self.arena, m, n);
        let (md, sd) = (
            self.nodes[mat.0].value.as_slice(),
            self.nodes[scale.0].value.as_slice(),
        );
        self.pool
            .for_rows(out.as_mut_slice(), n.max(1), 64, |first, chunk| {
                for (k, dst) in chunk.chunks_exact_mut(n.max(1)).enumerate() {
                    let i = first + k;
                    let s = sd[i];
                    for (j, d) in dst.iter_mut().enumerate() {
                        *d = md[i * n + j] * s;
                    }
                }
            });
        sparse::metrics::add_flops((m * n) as u64);
        self.push(out, Op::ScaleRows { mat, scale })
    }

    /// Per-row L1 norm: `out[i] = Σ_j |a[i,j]|`, shape `(m, 1)`.
    pub fn l1_norm_rows(&mut self, a: Var) -> Var {
        let _t = profile::scope("op::l1_norm");
        let v = row_reduce(&self.pool, &mut self.arena, &self.nodes[a.0].value, |row| {
            row.iter().map(|x| x.abs()).sum()
        });
        self.push(v, Op::L1NormRows(a))
    }

    /// Per-row L2 norm: `out[i] = √(Σ_j a[i,j]²)`, shape `(m, 1)`.
    ///
    /// `eps` guards the backward division for zero rows.
    pub fn l2_norm_rows(&mut self, a: Var, eps: f32) -> Var {
        let _t = profile::scope("op::l2_norm");
        let v = row_reduce(&self.pool, &mut self.arena, &self.nodes[a.0].value, |row| {
            row.iter().map(|x| x * x).sum::<f32>().sqrt()
        });
        self.push(v, Op::L2NormRows { input: a, eps })
    }

    /// Per-row squared L2 norm (TransC-style scoring), shape `(m, 1)`.
    pub fn squared_l2_norm_rows(&mut self, a: Var) -> Var {
        let _t = profile::scope("op::sq_l2_norm");
        let v = row_reduce(&self.pool, &mut self.arena, &self.nodes[a.0].value, |row| {
            row.iter().map(|x| x * x).sum()
        });
        self.push(v, Op::SquaredL2NormRows(a))
    }

    /// Per-row L1 torus distance: `out[i] = Σ_j min(fⱼ, 1−fⱼ)` where
    /// `fⱼ = frac(a[i,j])` — TorusE's wraparound metric.
    pub fn torus_l1_rows(&mut self, a: Var) -> Var {
        let _t = profile::scope("op::torus_l1");
        let v = row_reduce(&self.pool, &mut self.arena, &self.nodes[a.0].value, |row| {
            row.iter()
                .map(|&x| {
                    let f = x - x.floor();
                    f.min(1.0 - f)
                })
                .sum()
        });
        self.push(v, Op::TorusL1Rows(a))
    }

    /// Per-row squared L2 torus distance: `out[i] = Σ_j min(fⱼ, 1−fⱼ)²`.
    ///
    /// This is the `l2_torus_dissimilarity` the paper's Figure 2 profiles.
    pub fn torus_l2_sq_rows(&mut self, a: Var) -> Var {
        let _t = profile::scope("op::torus_l2");
        let v = row_reduce(&self.pool, &mut self.arena, &self.nodes[a.0].value, |row| {
            row.iter()
                .map(|&x| {
                    let f = x - x.floor();
                    let d = f.min(1.0 - f);
                    d * d
                })
                .sum()
        });
        self.push(v, Op::TorusL2SqRows(a))
    }

    /// Per-row relation-specific projection (TransR):
    /// `out[i] = M_{rels[i]} · vecs[i]`, where parameter `mats` has shape
    /// `(R, d_out·d_in)` storing each `d_out × d_in` matrix row-major.
    ///
    /// # Panics
    ///
    /// Panics if shapes are inconsistent or a relation index is out of range.
    pub fn project_rows(
        &mut self,
        store: &ParamStore,
        mats: ParamId,
        vecs: Var,
        rels: impl Into<Arc<Vec<u32>>>,
        d_out: usize,
    ) -> Var {
        let _t = profile::scope("op::project_rows");
        let rels: Arc<Vec<u32>> = rels.into();
        let mv = store.value(mats);
        let (m, d_in) = self.value(vecs).shape();
        assert_eq!(rels.len(), m, "one relation per row required");
        assert_eq!(
            mv.cols(),
            d_out * d_in,
            "projection parameter has wrong width"
        );
        let mut out = Tensor::uninit_in(&mut self.arena, m, d_out);
        let (md, vd) = (mv.as_slice(), self.nodes[vecs.0].value.as_slice());
        let rl = &rels;
        self.pool
            .for_rows(out.as_mut_slice(), d_out.max(1), 32, |first, chunk| {
                for (k, dst) in chunk.chunks_exact_mut(d_out.max(1)).enumerate() {
                    let i = first + k;
                    let r = rl[i] as usize;
                    let mat = &md[r * d_out * d_in..(r + 1) * d_out * d_in];
                    let vec = &vd[i * d_in..(i + 1) * d_in];
                    for (o, d) in dst.iter_mut().enumerate() {
                        let mrow = &mat[o * d_in..(o + 1) * d_in];
                        let mut acc = 0.0;
                        for j in 0..d_in {
                            acc += mrow[j] * vec[j];
                        }
                        *d = acc;
                    }
                }
            });
        sparse::metrics::add_flops(2 * (m * d_out * d_in) as u64);
        self.push(
            out,
            Op::ProjectRows {
                mats,
                vecs,
                rels,
                d_out,
                d_in,
            },
        )
    }

    /// Margin ranking loss over `(m,1)` positive/negative score columns:
    /// `loss = mean(max(0, margin + pos − neg))`.
    ///
    /// Distance scores: positives should be *smaller* than negatives.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ or are not columns.
    pub fn margin_ranking_loss(&mut self, pos: Var, neg: Var, margin: f32) -> Var {
        let _t = profile::scope("op::margin_loss");
        let (pv, nv) = (self.value(pos), self.value(neg));
        assert_eq!(pv.shape(), nv.shape(), "margin loss operands must match");
        assert_eq!(pv.cols(), 1, "scores must be (m,1) columns");
        let m = pv.rows();
        let (pd, nd) = (pv.as_slice(), nv.as_slice());
        // Fixed-size chunks folded in order: the f64 association depends only
        // on `m`, never on the pool width (determinism contract).
        let acc = self.pool.map_reduce_fixed(
            m,
            REDUCE_CHUNK,
            0.0f64,
            |r| {
                let mut part = 0.0f64;
                for i in r {
                    part += f64::from((margin + pd[i] - nd[i]).max(0.0));
                }
                part
            },
            |x, y| x + y,
        );
        let loss = if m == 0 { 0.0 } else { (acc / m as f64) as f32 };
        sparse::metrics::add_flops(3 * m as u64);
        let mut t = Tensor::uninit_in(&mut self.arena, 1, 1);
        t.set(0, 0, loss);
        self.push(t, Op::MarginRankingLoss { pos, neg, margin })
    }

    /// Mean over all elements, shape `(1,1)`.
    pub fn mean(&mut self, a: Var) -> Var {
        let av = self.value(a);
        let len = av.len();
        let ad = av.as_slice();
        let sum = self.pool.map_reduce_fixed(
            len,
            REDUCE_CHUNK,
            0.0f64,
            |r| ad[r].iter().map(|&x| f64::from(x)).sum::<f64>(),
            |x, y| x + y,
        );
        let mean = if len == 0 {
            0.0
        } else {
            (sum / len as f64) as f32
        };
        let mut v = Tensor::uninit_in(&mut self.arena, 1, 1);
        v.set(0, 0, mean);
        self.push(v, Op::Mean(a))
    }

    /// Per-row sum: `out[i] = Σ_j a[i,j]`, shape `(m, 1)`.
    pub fn row_sum(&mut self, a: Var) -> Var {
        let _t = profile::scope("op::row_sum");
        let v = row_reduce(&self.pool, &mut self.arena, &self.nodes[a.0].value, |row| {
            row.iter().sum()
        });
        self.push(v, Op::RowSum(a))
    }

    /// Semiring triple product (paper Appendix D, DistMult):
    /// `out[i,:] = E[h_i,:] ⊙ E[r_i,:] ⊙ E[t_i,:]` computed with the
    /// `(×, ×)` semiring SpMM over an **unsigned** `hrt` incidence matrix.
    ///
    /// Backward distributes `g_i ⊙ (product of the other two rows)` to each
    /// incident row, traversing the cached transpose so updates stay
    /// deterministic and lock-free.
    ///
    /// # Panics
    ///
    /// Panics if the incidence matrix does not have exactly 3 nonzeros per
    /// row or its width differs from the parameter's row count.
    pub fn triple_product(
        &mut self,
        store: &ParamStore,
        param: ParamId,
        pair: Arc<IncidencePair>,
    ) -> Var {
        let _t = profile::scope("op::triple_product");
        let p = store.value(param);
        assert_eq!(pair.forward.cols(), p.rows(), "incidence width mismatch");
        assert_eq!(
            pair.forward.nnz(),
            3 * pair.forward.rows(),
            "triple_product requires exactly 3 nonzeros per row"
        );
        let mut t = Tensor::uninit_in(&mut self.arena, pair.forward.rows(), p.cols());
        sparse::semiring::semiring_spmm_into_with::<sparse::semiring::TimesTimes>(
            &self.pool,
            &pair.forward,
            p.as_slice(),
            p.rows(),
            p.cols(),
            t.as_mut_slice(),
        );
        self.push(t, Op::TripleProduct { param, pair })
    }

    /// RotatE score rows (paper Appendix D): for each incidence triple,
    /// `out[i] = Σ_j |h_j ⊙ r_j − t_j|` over **interleaved complex**
    /// embeddings (the parameter has `2·d'` columns holding `d'` complex
    /// values per row). Lower is better — a distance, directly usable with
    /// the margin ranking loss.
    ///
    /// The incidence matrix must be the signed `hrt` form: `−1` marks the
    /// tail, the two `+1` columns form the commuting product `h ⊙ r`.
    ///
    /// # Panics
    ///
    /// Panics if the parameter width is odd, the incidence shape mismatches,
    /// or any row does not have exactly 3 nonzeros.
    pub fn rotate_score(
        &mut self,
        store: &ParamStore,
        param: ParamId,
        pair: Arc<IncidencePair>,
    ) -> Var {
        let _t = profile::scope("op::rotate_score");
        let value = complex_score_forward(
            &self.pool,
            &mut self.arena,
            store,
            param,
            &pair,
            ComplexKernel::Rotate,
        );
        self.push(value, Op::RotateScore { param, pair })
    }

    /// ComplEx score rows (paper Appendix D): `out[i] = Σ_j Re(h_j r_j t̄_j)`
    /// over interleaved complex embeddings. **Higher is better** — negate
    /// (e.g. [`Graph::scale`] by `−1`) before a distance-based loss.
    ///
    /// # Panics
    ///
    /// Same conditions as [`Graph::rotate_score`].
    pub fn complex_score(
        &mut self,
        store: &ParamStore,
        param: ParamId,
        pair: Arc<IncidencePair>,
    ) -> Var {
        let _t = profile::scope("op::complex_score");
        let value = complex_score_forward(
            &self.pool,
            &mut self.arena,
            store,
            param,
            &pair,
            ComplexKernel::ComplEx,
        );
        self.push(value, Op::ComplexScore { param, pair })
    }

    /// Runs reverse-mode differentiation from scalar node `loss`.
    ///
    /// Node gradients are materialized on the tape (available via
    /// [`Graph::grad`]); parameter gradients **accumulate** into `store`.
    ///
    /// # Panics
    ///
    /// Panics if `loss` is not a `(1,1)` scalar node.
    pub fn backward(&mut self, loss: Var, store: &mut ParamStore) {
        let _t = profile::scope("backward");
        assert_eq!(
            self.nodes[loss.0].value.shape(),
            (1, 1),
            "backward requires a scalar loss node"
        );
        let mut seed = Tensor::uninit_in(&mut self.arena, 1, 1);
        seed.set(0, 0, 1.0);
        self.nodes[loss.0].grad = Some(seed);
        for i in (0..self.nodes.len()).rev() {
            let Some(g) = self.nodes[i].grad.take() else {
                continue;
            };
            self.backward_node(i, &g, store);
            // Re-install so callers can inspect intermediate gradients.
            self.nodes[i].grad = Some(g);
        }
    }

    fn backward_node(&mut self, i: usize, g: &Tensor, store: &mut ParamStore) {
        // Compute input deltas immutably, then accumulate. All input nodes
        // have indices < i by construction. The op is cloned out of the node
        // (cheap: `Copy` fields plus `Arc`s) so `self` stays borrowable.
        let op = self.nodes[i].op.clone();
        match op {
            Op::Input => {}
            Op::Gather { param, indices } => {
                let _t = profile::scope("op::gather_backward");
                store.touch(param, &indices);
                let (grad, rows) = store.grad_and_rows_mut(param);
                match rows.as_slice() {
                    Some(rows) => scatter_add_rows_listed_with(&self.pool, grad, rows, &indices, g),
                    None => scatter_add_rows_with(&self.pool, grad, &indices, g),
                }
                sparse::metrics::add_flops(g.len() as u64);
            }
            Op::Spmm { param, pair } => {
                let _t = profile::scope("op::spmm_backward");
                // grad += Aᵀ · g, accumulated in place: untouched parameter
                // rows cost nothing (Appendix G, without the dense delta).
                // The pair's cached nonzero-column list feeds the touched-row
                // contract, and the listed kernel walks only those rows
                // (plus any rows other ops already touched, whose Aᵀ rows
                // are empty here) instead of scanning the whole table.
                store.touch(param, pair.touched_columns());
                let (grad, rows) = store.grad_and_rows_mut(param);
                match rows.as_slice() {
                    Some(rows) => csr_spmm_acc_rows_into_with(
                        &self.pool,
                        &pair.transpose,
                        rows,
                        g.view(),
                        grad.as_mut_slice(),
                    ),
                    None => csr_spmm_acc_into_with(
                        &self.pool,
                        &pair.transpose,
                        g.view(),
                        grad.as_mut_slice(),
                    ),
                }
            }
            Op::SpmmScore { param, pair, score } => {
                let _t = profile::scope("op::spmm_score_backward");
                let fwd = &pair.forward;
                let tr = &pair.transpose;
                store.touch(param, pair.touched_columns());
                // The stored (m,1) score column feeds the L2 backward's
                // division, exactly like the standalone norm op.
                let nd = self.nodes[i].value.as_slice();
                if store.is_paged(param) {
                    // Paged arm: value/grad hold the slot-aligned cache, so
                    // the touched-row walk runs over the rows' *slots* (the
                    // cache-row list for `for_listed_rows`) and each slot
                    // maps back to its absolute row for the transpose
                    // traversal. Same per-row arithmetic, same one-worker-
                    // per-row ownership: bit-identical to the resident arm.
                    let (pv, grad, slots, row_of, slot_of) = store.paged_backward_parts(param);
                    let d = pv.cols();
                    let pd = pv.as_slice();
                    let gd = g.as_slice();
                    let indptr = fwd.indptr();
                    let indices = fwd.indices();
                    let values = fwd.values();
                    if d > 0 {
                        let process = |e: usize, dst: &mut [f32]| {
                            for (ti, aval) in tr.row(e) {
                                let (s, epos) = (indptr[ti] as usize, indptr[ti + 1] as usize);
                                let (cols, vals) = (&indices[s..epos], &values[s..epos]);
                                let gi = gd[ti];
                                if let RowScore::L2 { eps } = score {
                                    let denom = nd[ti].max(eps);
                                    for (j, dj) in dst.iter_mut().enumerate() {
                                        let x = spmm_elem_mapped(cols, vals, pd, slot_of, d, j);
                                        *dj += aval * (0.0 + gi * x / denom);
                                    }
                                } else {
                                    for (j, dj) in dst.iter_mut().enumerate() {
                                        let x = spmm_elem_mapped(cols, vals, pd, slot_of, d, j);
                                        *dj += aval * (0.0 + gi * score.deriv(x));
                                    }
                                }
                            }
                        };
                        self.pool.for_listed_rows(
                            grad.as_mut_slice(),
                            d,
                            slots,
                            64,
                            |listed, first, window| {
                                for &s in listed {
                                    let s = s as usize;
                                    let off = (s - first) * d;
                                    process(row_of[s] as usize, &mut window[off..off + d]);
                                }
                            },
                        );
                    }
                    sparse::metrics::record_spmm_call();
                    let nnz = fwd.nnz() as u64;
                    sparse::metrics::add_flops(4 * nnz * d as u64);
                    sparse::metrics::add_bytes(nnz * 8 + 3 * (nnz * d as u64 * 4));
                    return;
                }
                let (pv, grad, rows) = store.value_grad_rows_mut(param);
                let d = pv.cols();
                let pd = pv.as_slice();
                let gd = g.as_slice();
                let indptr = fwd.indptr();
                let indices = fwd.indices();
                let values = fwd.values();
                if d > 0 {
                    // For parameter row `e`, each incident batch row `i`
                    // contributes `aval · (g_i · score'(x_{i,j}))`, with
                    // `x` recomputed element-by-element instead of read
                    // from a materialized SpMM output. The leading
                    // `0.0 + …` replicates the unfused pipeline's
                    // node-gradient accumulate (which canonicalizes
                    // `-0.0` to `+0.0`), keeping the arms bit-identical.
                    let process = |e: usize, dst: &mut [f32]| {
                        for (ti, aval) in tr.row(e) {
                            let (s, epos) = (indptr[ti] as usize, indptr[ti + 1] as usize);
                            let (cols, vals) = (&indices[s..epos], &values[s..epos]);
                            let gi = gd[ti];
                            if let RowScore::L2 { eps } = score {
                                let denom = nd[ti].max(eps);
                                for (j, dj) in dst.iter_mut().enumerate() {
                                    let x = spmm_elem(cols, vals, pd, d, j);
                                    *dj += aval * (0.0 + gi * x / denom);
                                }
                            } else {
                                for (j, dj) in dst.iter_mut().enumerate() {
                                    let x = spmm_elem(cols, vals, pd, d, j);
                                    *dj += aval * (0.0 + gi * score.deriv(x));
                                }
                            }
                        }
                    };
                    match rows.as_slice() {
                        Some(rows) => self.pool.for_listed_rows(
                            grad.as_mut_slice(),
                            d,
                            rows,
                            64,
                            |listed, first, window| {
                                for &e in listed {
                                    let e = e as usize;
                                    let off = (e - first) * d;
                                    process(e, &mut window[off..off + d]);
                                }
                            },
                        ),
                        None => self
                            .pool
                            .for_rows(grad.as_mut_slice(), d, 64, |first, chunk| {
                                let rows_here = chunk.len() / d;
                                for local in 0..rows_here {
                                    let e = first + local;
                                    process(e, &mut chunk[local * d..(local + 1) * d]);
                                }
                            }),
                    }
                }
                // Same traffic model as the accumulating SpMM backward
                // (index+value per incident nonzero, one operand-lane read
                // per pair — the recomputed rows are the cache-hot rows the
                // forward just charged — plus the gradient read+write),
                // with the deriv recompute folded into the flop estimate.
                sparse::metrics::record_spmm_call();
                let nnz = fwd.nnz() as u64;
                sparse::metrics::add_flops(4 * nnz * d as u64);
                sparse::metrics::add_bytes(nnz * 8 + 3 * (nnz * d as u64 * 4));
            }
            Op::Add(a, b) => {
                self.accum(a, g, 1.0);
                self.accum(b, g, 1.0);
            }
            Op::Sub(a, b) => {
                self.accum(a, g, 1.0);
                self.accum(b, g, -1.0);
            }
            Op::Mul(a, b) => {
                let (m, n) = g.shape();
                let mut da = Tensor::uninit_in(&mut self.arena, m, n);
                g.zip_map_into_with(
                    &self.pool,
                    &self.nodes[b.0].value,
                    |gx, bx| gx * bx,
                    &mut da,
                );
                let mut db = Tensor::uninit_in(&mut self.arena, m, n);
                g.zip_map_into_with(
                    &self.pool,
                    &self.nodes[a.0].value,
                    |gx, ax| gx * ax,
                    &mut db,
                );
                self.accum(a, &da, 1.0);
                self.accum(b, &db, 1.0);
                self.arena.reclaim(da);
                self.arena.reclaim(db);
            }
            Op::Scale(a, c) => {
                self.accum(a, g, c);
            }
            Op::RowDot(a, b) => {
                let da = scale_rows_tensor(&self.pool, &mut self.arena, &self.nodes[b.0].value, g);
                let db = scale_rows_tensor(&self.pool, &mut self.arena, &self.nodes[a.0].value, g);
                self.accum(a, &da, 1.0);
                self.accum(b, &db, 1.0);
                self.arena.reclaim(da);
                self.arena.reclaim(db);
            }
            Op::ScaleRows { mat, scale } => {
                let dm =
                    scale_rows_tensor(&self.pool, &mut self.arena, g, &self.nodes[scale.0].value);
                let ds = row_dot_tensor(&self.pool, &mut self.arena, g, &self.nodes[mat.0].value);
                self.accum(mat, &dm, 1.0);
                self.accum(scale, &ds, 1.0);
                self.arena.reclaim(dm);
                self.arena.reclaim(ds);
            }
            Op::L1NormRows(a) => {
                let da = rowwise_unary_backward(
                    &self.pool,
                    &mut self.arena,
                    &self.nodes[a.0].value,
                    g,
                    |x, _| x.signum(),
                );
                self.accum(a, &da, 1.0);
                self.arena.reclaim(da);
            }
            Op::L2NormRows { input, eps } => {
                let (m, n) = self.nodes[input.0].value.shape();
                let mut da = Tensor::uninit_in(&mut self.arena, m, n);
                let (ad, nd, gd) = (
                    self.nodes[input.0].value.as_slice(),
                    self.nodes[i].value.as_slice(),
                    g.as_slice(),
                );
                self.pool
                    .for_rows(da.as_mut_slice(), n.max(1), 64, |first, chunk| {
                        for (k, dst) in chunk.chunks_exact_mut(n.max(1)).enumerate() {
                            let r = first + k;
                            let denom = nd[r].max(eps);
                            let gr = gd[r];
                            for (j, d) in dst.iter_mut().enumerate() {
                                *d = gr * ad[r * n + j] / denom;
                            }
                        }
                    });
                sparse::metrics::add_flops(2 * (m * n) as u64);
                self.accum(input, &da, 1.0);
                self.arena.reclaim(da);
            }
            Op::SquaredL2NormRows(a) => {
                let da = rowwise_unary_backward(
                    &self.pool,
                    &mut self.arena,
                    &self.nodes[a.0].value,
                    g,
                    |x, _| 2.0 * x,
                );
                self.accum(a, &da, 1.0);
                self.arena.reclaim(da);
            }
            Op::TorusL1Rows(a) => {
                let da = rowwise_unary_backward(
                    &self.pool,
                    &mut self.arena,
                    &self.nodes[a.0].value,
                    g,
                    |x, _| {
                        let f = x - x.floor();
                        if f <= 0.5 {
                            1.0
                        } else {
                            -1.0
                        }
                    },
                );
                self.accum(a, &da, 1.0);
                self.arena.reclaim(da);
            }
            Op::TorusL2SqRows(a) => {
                let da = rowwise_unary_backward(
                    &self.pool,
                    &mut self.arena,
                    &self.nodes[a.0].value,
                    g,
                    |x, _| {
                        let f = x - x.floor();
                        if f <= 0.5 {
                            2.0 * f
                        } else {
                            -2.0 * (1.0 - f)
                        }
                    },
                );
                self.accum(a, &da, 1.0);
                self.arena.reclaim(da);
            }
            Op::ProjectRows {
                mats,
                vecs,
                rels,
                d_out,
                d_in,
            } => {
                let _t = profile::scope("op::project_backward");
                let m = g.rows();
                // d vecs[i] = M_{r}ᵀ · g_i — computed against the parameter
                // value before its gradient is borrowed mutably.
                let mut dv = Tensor::uninit_in(&mut self.arena, m, d_in);
                {
                    let mv = store.value(mats);
                    let (md, gd) = (mv.as_slice(), g.as_slice());
                    self.pool
                        .for_rows(dv.as_mut_slice(), d_in.max(1), 32, |first, chunk| {
                            for (k, dst) in chunk.chunks_exact_mut(d_in.max(1)).enumerate() {
                                let i = first + k;
                                let r = rels[i] as usize;
                                let mat = &md[r * d_out * d_in..(r + 1) * d_out * d_in];
                                for (j, d) in dst.iter_mut().enumerate() {
                                    let mut acc = 0.0;
                                    for o in 0..d_out {
                                        acc += mat[o * d_in + j] * gd[i * d_out + o];
                                    }
                                    *d = acc;
                                }
                            }
                        });
                }
                // d mats[r] += g_i ⊗ vecs[i], scattered by relation index.
                let vv = self.value(vecs);
                store.touch(mats, &rels);
                let (gm, mat_rows) = store.grad_and_rows_mut(mats);
                match mat_rows.as_slice() {
                    Some(rows) => {
                        scatter_add_outer_listed(&self.pool, gm, rows, &rels, g, vv, d_out, d_in)
                    }
                    None => scatter_add_outer(&self.pool, gm, &rels, g, vv, d_out, d_in),
                }
                sparse::metrics::add_flops(4 * (m * d_out * d_in) as u64);
                self.accum(vecs, &dv, 1.0);
                self.arena.reclaim(dv);
            }
            Op::MarginRankingLoss { pos, neg, margin } => {
                let m = self.nodes[pos.0].value.rows();
                let gscale = if m == 0 { 0.0 } else { g.get(0, 0) / m as f32 };
                if self.fused
                    && pos != neg
                    && self.nodes[pos.0].grad.is_none()
                    && self.nodes[neg.0].grad.is_none()
                {
                    // Fused loss+backward-seed: the score gradients are
                    // written once, directly into fresh node-gradient
                    // buffers, skipping the dp/dn temporaries and the two
                    // accumulate passes. `0.0 + ±gscale` replicates the
                    // accumulate's float association (it canonicalizes
                    // `-0.0` to `+0.0`), so both arms are bit-identical.
                    let _t = profile::scope("op::margin_loss_backward_fused");
                    let mut dp = Tensor::zeros_in(&mut self.arena, m, 1);
                    let mut dn = Tensor::zeros_in(&mut self.arena, m, 1);
                    {
                        let (pd, nd) = (
                            self.nodes[pos.0].value.as_slice(),
                            self.nodes[neg.0].value.as_slice(),
                        );
                        let seed_p = 0.0 + gscale;
                        let seed_n = 0.0 + (-gscale);
                        self.pool.for_mut(dp.as_mut_slice(), 256, |offset, chunk| {
                            for (k, d) in chunk.iter_mut().enumerate() {
                                let r = offset + k;
                                if margin + pd[r] - nd[r] > 0.0 {
                                    *d = seed_p;
                                }
                            }
                        });
                        self.pool.for_mut(dn.as_mut_slice(), 256, |offset, chunk| {
                            for (k, d) in chunk.iter_mut().enumerate() {
                                let r = offset + k;
                                if margin + pd[r] - nd[r] > 0.0 {
                                    *d = seed_n;
                                }
                            }
                        });
                    }
                    self.nodes[pos.0].grad = Some(dp);
                    self.nodes[neg.0].grad = Some(dn);
                    return;
                }
                // Inactive rows keep gradient 0 — the buffers are only
                // partially written, so they must come back zeroed.
                let mut dp = Tensor::zeros_in(&mut self.arena, m, 1);
                let mut dn = Tensor::zeros_in(&mut self.arena, m, 1);
                let (pd, nd) = (
                    self.nodes[pos.0].value.as_slice(),
                    self.nodes[neg.0].value.as_slice(),
                );
                self.pool.for_mut(dp.as_mut_slice(), 256, |offset, chunk| {
                    for (k, d) in chunk.iter_mut().enumerate() {
                        let r = offset + k;
                        if margin + pd[r] - nd[r] > 0.0 {
                            *d = gscale;
                        }
                    }
                });
                self.pool.for_mut(dn.as_mut_slice(), 256, |offset, chunk| {
                    for (k, d) in chunk.iter_mut().enumerate() {
                        let r = offset + k;
                        if margin + pd[r] - nd[r] > 0.0 {
                            *d = -gscale;
                        }
                    }
                });
                self.accum(pos, &dp, 1.0);
                self.accum(neg, &dn, 1.0);
                self.arena.reclaim(dp);
                self.arena.reclaim(dn);
            }
            Op::Mean(a) => {
                let len = self.value(a).len().max(1);
                let gv = g.get(0, 0) / len as f32;
                let (m, n) = self.value(a).shape();
                let mut da = Tensor::uninit_in(&mut self.arena, m, n);
                da.as_mut_slice().fill(gv);
                self.accum(a, &da, 1.0);
                self.arena.reclaim(da);
            }
            Op::RowSum(a) => {
                let da = rowwise_unary_backward(
                    &self.pool,
                    &mut self.arena,
                    &self.nodes[a.0].value,
                    g,
                    |_, _| 1.0,
                );
                self.accum(a, &da, 1.0);
                self.arena.reclaim(da);
            }
            Op::RotateScore { param, pair } => {
                let _t = profile::scope("op::rotate_score_backward");
                complex_score_backward(&self.pool, store, param, &pair, g, ComplexKernel::Rotate);
            }
            Op::ComplexScore { param, pair } => {
                let _t = profile::scope("op::complex_score_backward");
                complex_score_backward(&self.pool, store, param, &pair, g, ComplexKernel::ComplEx);
            }
            Op::TripleProduct { param, pair } => {
                let _t = profile::scope("op::triple_product_backward");
                let d = g.cols();
                let fwd = &pair.forward;
                let tr = &pair.transpose;
                // For entity/relation row `e`, each incident triple row `i`
                // contributes g_i ⊙ Π_{c ≠ e} E[c]. Traverse Aᵀ so each
                // parameter-gradient row is owned by exactly one worker.
                store.touch(param, pair.touched_columns());
                let (pv, grad, rows) = store.value_grad_rows_mut(param);
                let pd = pv.as_slice();
                let gd = g.as_slice();
                let indptr = fwd.indptr();
                let indices = fwd.indices();
                let process = |e: usize, dst: &mut [f32]| {
                    for (i, _) in tr.row(e) {
                        let (s, epos) = (indptr[i] as usize, indptr[i + 1] as usize);
                        debug_assert_eq!(epos - s, 3);
                        // The two sibling columns of triple i (CSR column
                        // indices are strictly ascending, so `e` appears
                        // exactly once).
                        let mut others = [0usize; 2];
                        let mut k = 0;
                        for &c in &indices[s..epos] {
                            if c as usize != e && k < 2 {
                                others[k] = c as usize;
                                k += 1;
                            }
                        }
                        debug_assert_eq!(k, 2);
                        let a = &pd[others[0] * d..others[0] * d + d];
                        let b = &pd[others[1] * d..others[1] * d + d];
                        let gr = &gd[i * d..(i + 1) * d];
                        for j in 0..d {
                            dst[j] += gr[j] * a[j] * b[j];
                        }
                    }
                };
                match rows.as_slice() {
                    // Touched-row walk: identical per-row accumulation, but
                    // only over the rows the batch can reach (rows touched
                    // by other ops have empty Aᵀ rows here and cost one
                    // indptr lookup).
                    Some(rows) => self.pool.for_listed_rows(
                        grad.as_mut_slice(),
                        d.max(1),
                        rows,
                        64,
                        |listed, first, window| {
                            for &e in listed {
                                let e = e as usize;
                                let off = (e - first) * d;
                                process(e, &mut window[off..off + d.max(1)]);
                            }
                        },
                    ),
                    None => {
                        self.pool
                            .for_rows(grad.as_mut_slice(), d.max(1), 64, |first, chunk| {
                                let rows_here = chunk.len() / d.max(1);
                                for local in 0..rows_here {
                                    let e = first + local;
                                    process(e, &mut chunk[local * d..(local + 1) * d]);
                                }
                            })
                    }
                }
                sparse::metrics::add_flops(3 * (fwd.nnz() * d) as u64);
            }
        }
    }

    /// `nodes[v].grad += alpha * delta`, drawing the grad buffer from the
    /// arena on first touch.
    fn accum(&mut self, v: Var, delta: &Tensor, alpha: f32) {
        let (pool, arena) = (&self.pool, &mut self.arena);
        let node = &mut self.nodes[v.0];
        if node.grad.is_none() {
            node.grad = Some(Tensor::zeros_in(
                arena,
                node.value.rows(),
                node.value.cols(),
            ));
        }
        let grad = node.grad.as_mut().expect("grad installed above");
        grad.add_scaled_with(pool, delta, alpha);
        sparse::metrics::add_flops(2 * delta.len() as u64);
    }
}

/// `out[i] = f(row_i)`, shape `(m, 1)`, drawn from `arena`.
fn row_reduce(
    pool: &PoolHandle,
    arena: &mut Arena,
    a: &Tensor,
    f: impl Fn(&[f32]) -> f32 + Sync,
) -> Tensor {
    let (m, n) = a.shape();
    let mut out = Tensor::uninit_in(arena, m, 1);
    let ad = a.as_slice();
    pool.for_rows(out.as_mut_slice(), 1, 256, |first, chunk| {
        for (k, dst) in chunk.iter_mut().enumerate() {
            let i = first + k;
            *dst = f(&ad[i * n..(i + 1) * n]);
        }
    });
    sparse::metrics::add_flops(2 * (m * n) as u64);
    out
}

/// `out[i,j] = mat[i,j] * col[i]` (col is `(m,1)`), drawn from `arena`.
fn scale_rows_tensor(pool: &PoolHandle, arena: &mut Arena, mat: &Tensor, col: &Tensor) -> Tensor {
    let (m, n) = mat.shape();
    debug_assert_eq!(col.shape(), (m, 1));
    let mut out = Tensor::uninit_in(arena, m, n);
    let (md, cd) = (mat.as_slice(), col.as_slice());
    pool.for_rows(out.as_mut_slice(), n.max(1), 64, |first, chunk| {
        for (k, dst) in chunk.chunks_exact_mut(n.max(1)).enumerate() {
            let i = first + k;
            for (j, d) in dst.iter_mut().enumerate() {
                *d = md[i * n + j] * cd[i];
            }
        }
    });
    out
}

/// `out[i] = Σ_j a[i,j]·b[i,j]` as an `(m,1)` tensor drawn from `arena`.
fn row_dot_tensor(pool: &PoolHandle, arena: &mut Arena, a: &Tensor, b: &Tensor) -> Tensor {
    let (m, n) = a.shape();
    debug_assert_eq!(b.shape(), (m, n));
    let mut out = Tensor::uninit_in(arena, m, 1);
    let (ad, bd) = (a.as_slice(), b.as_slice());
    pool.for_rows(out.as_mut_slice(), 1, 256, |first, chunk| {
        for (k, dst) in chunk.iter_mut().enumerate() {
            let i = first + k;
            let mut acc = 0.0;
            for j in 0..n {
                acc += ad[i * n + j] * bd[i * n + j];
            }
            *dst = acc;
        }
    });
    out
}

/// `da[i,j] = g[i] * f(a[i,j], j)` — shared shape of the norm backwards.
fn rowwise_unary_backward(
    pool: &PoolHandle,
    arena: &mut Arena,
    a: &Tensor,
    g: &Tensor,
    f: impl Fn(f32, usize) -> f32 + Sync,
) -> Tensor {
    let (m, n) = a.shape();
    debug_assert_eq!(g.shape(), (m, 1));
    sparse::metrics::add_flops((m * n) as u64);
    let mut out = Tensor::uninit_in(arena, m, n);
    let (ad, gd) = (a.as_slice(), g.as_slice());
    pool.for_rows(out.as_mut_slice(), n.max(1), 64, |first, chunk| {
        for (k, dst) in chunk.chunks_exact_mut(n.max(1)).enumerate() {
            let i = first + k;
            for (j, d) in dst.iter_mut().enumerate() {
                *d = gd[i] * f(ad[i * n + j], j);
            }
        }
    });
    out
}

/// `dst[indices[k], :] += src[k, :]` — the scatter of paper Figure 1(b).
///
/// Parallelized by destination row range: each worker scans the whole index
/// list and applies only the updates landing in its range, which is
/// deterministic and lock-free.
pub fn scatter_add_rows(dst: &mut Tensor, indices: &[u32], src: &Tensor) {
    scatter_add_rows_with(&PoolHandle::global(), dst, indices, src);
}

/// Like [`scatter_add_rows`] but dispatched on an explicit pool handle.
///
/// Row accumulation order follows the global index scan regardless of how
/// rows are chunked, so the result is bit-identical at any pool width.
pub fn scatter_add_rows_with(pool: &PoolHandle, dst: &mut Tensor, indices: &[u32], src: &Tensor) {
    let n = dst.cols();
    debug_assert_eq!(src.cols(), n);
    debug_assert_eq!(src.rows(), indices.len());
    let sd = src.as_slice();
    pool.for_rows(dst.as_mut_slice(), n.max(1), 512, |first, chunk| {
        let rows_here = chunk.len() / n.max(1);
        let lo = first;
        let hi = first + rows_here;
        for (k, &idx) in indices.iter().enumerate() {
            let r = idx as usize;
            if r >= lo && r < hi {
                let dst_row = &mut chunk[(r - lo) * n..(r - lo + 1) * n];
                let src_row = &sd[k * n..(k + 1) * n];
                for (d, s) in dst_row.iter_mut().zip(src_row) {
                    *d += *s;
                }
            }
        }
    });
    sparse::metrics::add_bytes(3 * (indices.len() * n * 4) as u64);
}

/// Like [`scatter_add_rows_with`] but restricted to the sorted destination
/// rows in `rows` — the touched-row variant of the gather backward.
///
/// Every index in `indices` **must** appear in `rows` (callers pass the
/// parameter's [`crate::RowSet`], a superset of the index list by
/// construction); listed rows that no index targets are never written.
/// Contributions land in global index-scan order per destination row, the
/// same order as the dense sweep, so the two are bit-identical.
fn scatter_add_rows_listed_with(
    pool: &PoolHandle,
    dst: &mut Tensor,
    rows: &[u32],
    indices: &[u32],
    src: &Tensor,
) {
    let n = dst.cols();
    debug_assert_eq!(src.cols(), n);
    debug_assert_eq!(src.rows(), indices.len());
    debug_assert!(
        indices.iter().all(|i| rows.binary_search(i).is_ok()),
        "every scatter index must be in the touched-row list"
    );
    if n == 0 || indices.is_empty() {
        return;
    }
    let sd = src.as_slice();
    pool.for_listed_rows(dst.as_mut_slice(), n, rows, 128, |listed, first, window| {
        // The window spans [listed[0], listed.last()] contiguously; any
        // index inside that span is a listed row of *this* chunk (the list
        // is sorted and chunks partition it), so a range test suffices.
        let lo = listed[0];
        let hi = *listed.last().expect("chunks are non-empty");
        for (k, &idx) in indices.iter().enumerate() {
            if idx >= lo && idx <= hi {
                let r = idx as usize - first;
                let dst_row = &mut window[r * n..(r + 1) * n];
                let src_row = &sd[k * n..(k + 1) * n];
                for (d, s) in dst_row.iter_mut().zip(src_row) {
                    *d += *s;
                }
            }
        }
    });
    sparse::metrics::add_bytes(3 * (indices.len() * n * 4) as u64);
}

/// `dst[rels[i]] += g_i ⊗ v_i` where `dst` is `(R, d_out*d_in)`.
fn scatter_add_outer(
    pool: &PoolHandle,
    dst: &mut Tensor,
    rels: &[u32],
    g: &Tensor,
    v: &Tensor,
    d_out: usize,
    d_in: usize,
) {
    let width = d_out * d_in;
    debug_assert_eq!(dst.cols(), width);
    let (gd, vd) = (g.as_slice(), v.as_slice());
    pool.for_rows(dst.as_mut_slice(), width.max(1), 8, |first, chunk| {
        let rows_here = chunk.len() / width.max(1);
        let (lo, hi) = (first, first + rows_here);
        for (i, &rel) in rels.iter().enumerate() {
            let r = rel as usize;
            if r >= lo && r < hi {
                let mat = &mut chunk[(r - lo) * width..(r - lo + 1) * width];
                for o in 0..d_out {
                    let go = gd[i * d_out + o];
                    let row = &mut mat[o * d_in..(o + 1) * d_in];
                    for (j, m) in row.iter_mut().enumerate() {
                        *m += go * vd[i * d_in + j];
                    }
                }
            }
        }
    });
}

/// Touched-row variant of [`scatter_add_outer`]: only the sorted relation
/// rows in `rows` are visited. Same preconditions and determinism argument
/// as [`scatter_add_rows_listed_with`].
#[allow(clippy::too_many_arguments)]
fn scatter_add_outer_listed(
    pool: &PoolHandle,
    dst: &mut Tensor,
    rows: &[u32],
    rels: &[u32],
    g: &Tensor,
    v: &Tensor,
    d_out: usize,
    d_in: usize,
) {
    let width = d_out * d_in;
    debug_assert_eq!(dst.cols(), width);
    debug_assert!(
        rels.iter().all(|r| rows.binary_search(r).is_ok()),
        "every relation index must be in the touched-row list"
    );
    if width == 0 || rels.is_empty() {
        return;
    }
    let (gd, vd) = (g.as_slice(), v.as_slice());
    pool.for_listed_rows(
        dst.as_mut_slice(),
        width,
        rows,
        8,
        |listed, first, window| {
            let lo = listed[0];
            let hi = *listed.last().expect("chunks are non-empty");
            for (i, &rel) in rels.iter().enumerate() {
                if rel >= lo && rel <= hi {
                    let r = rel as usize - first;
                    let mat = &mut window[r * width..(r + 1) * width];
                    for o in 0..d_out {
                        let go = gd[i * d_out + o];
                        let row = &mut mat[o * d_in..(o + 1) * d_in];
                        for (j, m) in row.iter_mut().enumerate() {
                            *m += go * vd[i * d_in + j];
                        }
                    }
                }
            }
        },
    );
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ComplexKernel {
    Rotate,
    ComplEx,
}

/// Shared forward of the complex-semiring score ops: one `(m, 1)` column of
/// RotatE distances or ComplEx similarities, drawn from `arena`.
fn complex_score_forward(
    pool: &PoolHandle,
    arena: &mut Arena,
    store: &ParamStore,
    param: ParamId,
    pair: &IncidencePair,
    kernel: ComplexKernel,
) -> Tensor {
    let p = store.value(param);
    let d2 = p.cols();
    assert!(
        d2.is_multiple_of(2),
        "complex ops need an even parameter width"
    );
    assert_eq!(pair.forward.cols(), p.rows(), "incidence width mismatch");
    assert_eq!(
        pair.forward.nnz(),
        3 * pair.forward.rows(),
        "complex score ops require exactly 3 nonzeros per row"
    );
    let half = d2 / 2;
    let m = pair.forward.rows();
    let pd = p.as_slice();
    let indptr = pair.forward.indptr();
    let indices = pair.forward.indices();
    let values = pair.forward.values();
    let mut out = Tensor::uninit_in(arena, m, 1);
    pool.for_rows(out.as_mut_slice(), 1, 128, |first, chunk| {
        for (k, dst) in chunk.iter_mut().enumerate() {
            let i = first + k;
            let (s, e) = (indptr[i] as usize, indptr[i + 1] as usize);
            let (a, b, t) = split_hrt_row(&indices[s..e], &values[s..e]);
            let mut acc = 0.0f32;
            for j in 0..half {
                let hv = complex_at(pd, a, j, d2);
                let rv = complex_at(pd, b, j, d2);
                let tv = complex_at(pd, t, j, d2);
                match kernel {
                    ComplexKernel::Rotate => {
                        let hr = cmul(hv, rv);
                        let z = (hr.0 - tv.0, hr.1 - tv.1);
                        acc += (z.0 * z.0 + z.1 * z.1).sqrt();
                    }
                    ComplexKernel::ComplEx => {
                        let hr = cmul(hv, rv);
                        // Re(hr · conj(t)) = hr.re·t.re + hr.im·t.im.
                        acc += hr.0 * tv.0 + hr.1 * tv.1;
                    }
                }
            }
            *dst = acc;
        }
    });
    sparse::metrics::add_flops(8 * (m * half) as u64);
    out
}

/// Shared backward: distributes per-triple complex gradients to the three
/// incident parameter rows via the cached transpose (deterministic, each
/// gradient row owned by one worker).
///
/// Derivations (treating re/im as independent reals):
/// * RotatE, `f = Σ|z|`, `z = h·r − t`: with `u = z/|z|`,
///   `∇h = conj(r)·u`, `∇r = conj(h)·u`, `∇t = −u`.
/// * ComplEx, `f = Σ Re(h·r·conj(t))`: `∇h = conj(r·conj(t)) = conj(r)·t`,
///   `∇r = conj(h)·t`, `∇t = h·r`.
fn complex_score_backward(
    pool: &PoolHandle,
    store: &mut ParamStore,
    param: ParamId,
    pair: &IncidencePair,
    g: &Tensor,
    kernel: ComplexKernel,
) {
    let fwd = &pair.forward;
    let tr = &pair.transpose;
    store.touch(param, pair.touched_columns());
    let (pv, grad, rows) = store.value_grad_rows_mut(param);
    let d2 = pv.cols();
    let half = d2 / 2;
    let pd = pv.as_slice();
    let gd = g.as_slice();
    let indptr = fwd.indptr();
    let indices = fwd.indices();
    let values = fwd.values();
    let process = |e: usize, dst: &mut [f32]| {
        for (i, _) in tr.row(e) {
            let (s, epos) = (indptr[i] as usize, indptr[i + 1] as usize);
            let (a, b, t) = split_hrt_row(&indices[s..epos], &values[s..epos]);
            let gi = gd[i];
            for j in 0..half {
                let hv = complex_at(pd, a, j, d2);
                let rv = complex_at(pd, b, j, d2);
                let tv = complex_at(pd, t, j, d2);
                // Per-component upstream direction.
                let gz = match kernel {
                    ComplexKernel::Rotate => {
                        let hr = cmul(hv, rv);
                        let z = (hr.0 - tv.0, hr.1 - tv.1);
                        let norm = (z.0 * z.0 + z.1 * z.1).sqrt().max(1e-12);
                        (z.0 / norm, z.1 / norm)
                    }
                    ComplexKernel::ComplEx => tv,
                };
                let delta = if e == t {
                    match kernel {
                        ComplexKernel::Rotate => (-gz.0, -gz.1),
                        ComplexKernel::ComplEx => cmul(hv, rv),
                    }
                } else {
                    // e is one of the two positive columns; the partner
                    // is the other one. ∇e = conj(partner)·gz for both
                    // kernels (ComplEx: gz = t).
                    let partner = if e == a { rv } else { hv };
                    cmul((partner.0, -partner.1), gz)
                };
                dst[2 * j] += gi * delta.0;
                dst[2 * j + 1] += gi * delta.1;
            }
        }
    };
    match rows.as_slice() {
        Some(rows) => pool.for_listed_rows(
            grad.as_mut_slice(),
            d2.max(1),
            rows,
            32,
            |listed, first, window| {
                for &e in listed {
                    let e = e as usize;
                    let off = (e - first) * d2;
                    process(e, &mut window[off..off + d2.max(1)]);
                }
            },
        ),
        None => pool.for_rows(grad.as_mut_slice(), d2.max(1), 32, |first, chunk| {
            let rows_here = chunk.len() / d2.max(1);
            for local in 0..rows_here {
                let e = first + local;
                process(e, &mut chunk[local * d2..(local + 1) * d2]);
            }
        }),
    }
    sparse::metrics::add_flops(12 * (fwd.nnz() * half) as u64);
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparse::incidence::{hrt, ht, TailSign};

    fn store_with(name: &str, t: Tensor) -> (ParamStore, ParamId) {
        let mut s = ParamStore::new();
        let id = s.add_param(name, t);
        (s, id)
    }

    #[test]
    fn gather_forward_and_backward() {
        let (mut store, emb) = store_with(
            "e",
            Tensor::from_rows(&[[1.0, 2.0], [3.0, 4.0], [5.0, 6.0]]),
        );
        let mut g = Graph::new();
        let x = g.gather(&store, emb, vec![2, 0, 2]);
        assert_eq!(g.value(x).row(0), &[5.0, 6.0]);
        assert_eq!(g.value(x).row(1), &[1.0, 2.0]);
        let loss = g.mean(x);
        g.backward(loss, &mut store);
        // d mean / d x = 1/6 per element; row 2 gathered twice.
        let grad = store.grad(emb);
        assert!((grad.get(0, 0) - 1.0 / 6.0).abs() < 1e-6);
        assert!((grad.get(1, 0) - 0.0).abs() < 1e-6);
        assert!((grad.get(2, 0) - 2.0 / 6.0).abs() < 1e-6);
    }

    #[test]
    fn spmm_matches_gather_arithmetic() {
        // h + r - t via SpMM should equal the gather/add/sub path.
        let stacked = Tensor::from_rows(&[[1.0, 0.5], [2.0, -1.0], [0.25, 0.25]]); // e0,e1,r0
        let (mut store, emb) = store_with("emb", stacked);
        let pair = Arc::new(IncidencePair::new(
            hrt(2, 1, &[0], &[0], &[1], TailSign::Negative).unwrap(),
        ));
        let mut g = Graph::new();
        let expr = g.spmm(&store, emb, pair);
        assert_eq!(g.value(expr).row(0), &[1.0 + 0.25 - 2.0, 0.5 + 0.25 + 1.0]);
        let loss = g.mean(expr);
        g.backward(loss, &mut store);
        let grad = store.grad(emb);
        // d expr / d e0 = +1, e1 = -1, r0 = +1; mean scale 1/2 per column.
        assert!((grad.get(0, 0) - 0.5).abs() < 1e-6);
        assert!((grad.get(1, 0) + 0.5).abs() < 1e-6);
        assert!((grad.get(2, 0) - 0.5).abs() < 1e-6);
    }

    #[test]
    fn spmm_and_gather_paths_agree_on_gradients() {
        let data = Tensor::from_rows(&[[0.3, -0.2], [1.5, 0.7], [-0.4, 0.9], [0.1, 0.2]]);
        // Entities 0..3, relation embedded separately in same stacked matrix:
        // treat row 3 as the single relation.
        let heads = vec![0u32, 1];
        let tails = vec![2u32, 0];
        let rels = vec![0u32, 0];

        // Sparse path.
        let (mut s1, p1) = store_with("emb", data.clone());
        let pair = Arc::new(IncidencePair::new(
            hrt(3, 1, &heads, &rels, &tails, TailSign::Negative).unwrap(),
        ));
        let mut g1 = Graph::new();
        let expr1 = g1.spmm(&s1, p1, pair);
        let n1 = g1.l2_norm_rows(expr1, 1e-9);
        let l1 = g1.mean(n1);
        g1.backward(l1, &mut s1);

        // Dense path.
        let (mut s2, p2) = store_with("emb", data);
        let mut g2 = Graph::new();
        let h = g2.gather(&s2, p2, heads.clone());
        let r = g2.gather(&s2, p2, rels.iter().map(|&x| x + 3).collect::<Vec<u32>>());
        let t = g2.gather(&s2, p2, tails.clone());
        let hr = g2.add(h, r);
        let expr2 = g2.sub(hr, t);
        let n2 = g2.l2_norm_rows(expr2, 1e-9);
        let l2 = g2.mean(n2);
        g2.backward(l2, &mut s2);

        assert!((g1.value(l1).get(0, 0) - g2.value(l2).get(0, 0)).abs() < 1e-6);
        for (a, b) in s1.grad(p1).as_slice().iter().zip(s2.grad(p2).as_slice()) {
            assert!((a - b).abs() < 1e-5, "{a} vs {b}");
        }
    }

    #[test]
    fn ht_spmm_is_head_minus_tail() {
        let (store, emb) = store_with("e", Tensor::from_rows(&[[1.0], [4.0], [9.0]]));
        let pair = Arc::new(IncidencePair::new(ht(3, &[2], &[0]).unwrap()));
        let mut g = Graph::new();
        let expr = g.spmm(&store, emb, pair);
        assert_eq!(g.value(expr).get(0, 0), 8.0);
    }

    #[test]
    fn margin_loss_forward_and_active_set() {
        let mut store = ParamStore::new();
        let mut g = Graph::new();
        let pos = g.input(Tensor::from_rows(&[[1.0], [5.0]]));
        let neg = g.input(Tensor::from_rows(&[[3.0], [5.2]]));
        // margin 0.5: row 0 -> 0.5 + 1 - 3 < 0 inactive; row 1 -> 0.5 + 5 - 5.2 = 0.3 active.
        let loss = g.margin_ranking_loss(pos, neg, 0.5);
        assert!((g.value(loss).get(0, 0) - 0.15).abs() < 1e-6);
        g.backward(loss, &mut store);
        let gp = g.grad(pos).unwrap();
        assert_eq!(gp.get(0, 0), 0.0);
        assert!((gp.get(1, 0) - 0.5).abs() < 1e-6);
    }

    #[test]
    fn transh_style_composition_runs() {
        // (h - t) + d_r - w (wᵀ(h-t)) through the tape.
        let (mut store, ent) = store_with(
            "ent",
            Tensor::from_rows(&[[0.5, 0.1], [0.2, -0.3], [0.9, 0.4]]),
        );
        let w = store.add_param("w", Tensor::from_rows(&[[0.6, 0.8]]));
        let d = store.add_param("d", Tensor::from_rows(&[[0.05, -0.02]]));
        let pair = Arc::new(IncidencePair::new(ht(3, &[0, 1], &[2, 0]).unwrap()));
        let mut g = Graph::new();
        let htv = g.spmm(&store, ent, pair);
        let wv = g.gather(&store, w, vec![0, 0]);
        let dv = g.gather(&store, d, vec![0, 0]);
        let dot = g.row_dot(wv, htv);
        let proj = g.scale_rows(wv, dot);
        let tmp = g.sub(htv, proj);
        let expr = g.add(tmp, dv);
        let score = g.l2_norm_rows(expr, 1e-9);
        let loss = g.mean(score);
        g.backward(loss, &mut store);
        assert!(store.grad(ent).frobenius_norm() > 0.0);
        assert!(store.grad(w).frobenius_norm() > 0.0);
        assert!(store.grad(d).frobenius_norm() > 0.0);
    }

    #[test]
    fn project_rows_forward() {
        let (store, _) = store_with("unused", Tensor::zeros(1, 1));
        let mut s = ParamStore::new();
        // One relation, projecting 2D -> 1D with matrix [2, 3].
        let mats = s.add_param("m", Tensor::from_rows(&[[2.0, 3.0]]));
        let mut g = Graph::new();
        let v = g.input(Tensor::from_rows(&[[1.0, 1.0], [0.5, -1.0]]));
        let p = g.project_rows(&s, mats, v, vec![0, 0], 1);
        assert_eq!(g.value(p).get(0, 0), 5.0);
        assert_eq!(g.value(p).get(1, 0), -2.0);
        drop(store);
    }

    #[test]
    fn torus_norms_are_wraparound() {
        let mut g = Graph::new();
        let x = g.input(Tensor::from_rows(&[[0.25, 1.75]])); // fracs: 0.25, 0.75
        let l1 = g.torus_l1_rows(x);
        assert!((g.value(l1).get(0, 0) - 0.5).abs() < 1e-6); // 0.25 + 0.25
        let l2 = g.torus_l2_sq_rows(x);
        assert!((g.value(l2).get(0, 0) - 0.125).abs() < 1e-6); // 0.0625 * 2
    }

    #[test]
    fn scatter_add_rows_handles_duplicates() {
        let mut dst = Tensor::zeros(4, 2);
        let src = Tensor::from_rows(&[[1.0, 1.0], [2.0, 2.0], [4.0, 4.0]]);
        scatter_add_rows(&mut dst, &[1, 1, 3], &src);
        assert_eq!(dst.row(1), &[3.0, 3.0]);
        assert_eq!(dst.row(3), &[4.0, 4.0]);
        assert_eq!(dst.row(0), &[0.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "scalar loss")]
    fn backward_requires_scalar() {
        let mut store = ParamStore::new();
        let mut g = Graph::new();
        let x = g.input(Tensor::zeros(2, 2));
        g.backward(x, &mut store);
    }

    /// One forward + backward pass of a TransE-shaped tape (SpMM, L2 norm,
    /// mean), returning the loss and parameter-gradient bits.
    fn tape_pass(g: &mut Graph, store: &mut ParamStore, p: ParamId) -> (u32, Vec<u32>) {
        let pair = Arc::new(IncidencePair::new(
            hrt(3, 1, &[0, 1], &[0, 0], &[2, 0], TailSign::Negative).unwrap(),
        ));
        let expr = g.spmm(store, p, pair);
        let n = g.l2_norm_rows(expr, 1e-9);
        let loss = g.mean(n);
        g.backward(loss, store);
        (
            g.value(loss).get(0, 0).to_bits(),
            store
                .grad(p)
                .as_slice()
                .iter()
                .map(|x| x.to_bits())
                .collect(),
        )
    }

    #[test]
    fn reset_makes_repeat_passes_allocation_free_and_bit_identical() {
        let data = Tensor::from_rows(&[[0.3, -0.2], [1.5, 0.7], [-0.4, 0.9], [0.1, 0.2]]);
        let (mut store, p) = store_with("emb", data);
        let mut g = Graph::new();
        let first = tape_pass(&mut g, &mut store, p);

        g.reset();
        store.zero_grads();
        let misses = g.arena().misses();
        let second = tape_pass(&mut g, &mut store, p);
        // Every buffer request of the second pass is served by the arena
        // (misses are the only path that heap-allocates).
        assert_eq!(
            g.arena().misses(),
            misses,
            "steady-state pass must draw every buffer from the arena"
        );
        assert!(g.arena().hits() > 0);
        // Recycling swaps buffer identity, never arithmetic: bits match.
        assert_eq!(first, second);
    }

    #[test]
    fn reset_reclaims_every_node_buffer() {
        let (mut store, p) = store_with("emb", Tensor::from_rows(&[[1.0, 2.0], [3.0, 4.0]]));
        let mut g = Graph::new();
        let x = g.gather(&store, p, vec![0, 1, 0]);
        let n = g.l2_norm_rows(x, 1e-9);
        let loss = g.mean(n);
        g.backward(loss, &mut store);
        assert!(
            g.arena().pooled_buffers() > 0,
            "backward temporaries recycle"
        );
        let nodes = g.len();
        g.reset();
        assert!(g.is_empty());
        // At least one value and one grad buffer per node went back.
        assert!(g.arena().pooled_buffers() >= nodes);
        assert!(g.arena().held_bytes() > 0);
    }

    /// All five row scores the fused kernel supports.
    const ALL_SCORES: [RowScore; 5] = [
        RowScore::L1,
        RowScore::L2 { eps: 1e-9 },
        RowScore::SquaredL2,
        RowScore::TorusL1,
        RowScore::TorusL2Sq,
    ];

    /// Full pos/neg margin-loss tape over `spmm_score`, returning the score
    /// bits, loss bits, and parameter-gradient bits.
    fn spmm_score_pass(fused: bool, score: RowScore) -> (Vec<u32>, u32, Vec<u32>) {
        let data = Tensor::from_rows(&[
            [0.3, -0.2, 1.1],
            [1.5, 0.7, -0.6],
            [-0.4, 0.9, 0.2],
            [0.1, 0.2, -1.3],
            [0.8, -0.5, 0.4],
        ]);
        let (mut store, p) = store_with("emb", data);
        // Entities 0..4 with relation rows folded in; duplicate heads/tails
        // exercise gradient accumulation order.
        let pos = Arc::new(IncidencePair::new(
            hrt(4, 1, &[0, 1, 0], &[0, 0, 0], &[2, 0, 3], TailSign::Negative).unwrap(),
        ));
        let neg = Arc::new(IncidencePair::new(
            hrt(4, 1, &[3, 1, 2], &[0, 0, 0], &[1, 2, 0], TailSign::Negative).unwrap(),
        ));
        let mut g = Graph::new();
        g.set_fused(fused);
        let sp = g.spmm_score(&store, p, pos, score);
        let sn = g.spmm_score(&store, p, neg, score);
        let loss = g.margin_ranking_loss(sp, sn, 1.0);
        g.backward(loss, &mut store);
        let score_bits = g
            .value(sp)
            .as_slice()
            .iter()
            .chain(g.value(sn).as_slice())
            .map(|x| x.to_bits())
            .collect();
        let grad_bits = store
            .grad(p)
            .as_slice()
            .iter()
            .map(|x| x.to_bits())
            .collect();
        (score_bits, g.value(loss).get(0, 0).to_bits(), grad_bits)
    }

    #[test]
    fn fused_spmm_score_matches_unfused_bitwise() {
        for score in ALL_SCORES {
            let fused = spmm_score_pass(true, score);
            let unfused = spmm_score_pass(false, score);
            assert_eq!(fused, unfused, "fused vs unfused diverged for {score:?}");
        }
    }

    #[test]
    fn fused_spmm_score_matches_two_nonzero_rows() {
        // ht incidence (2 nonzeros per row) hits spmm_elem's pair fast path.
        let data = Tensor::from_rows(&[[1.0, -0.5], [0.3, 0.8], [-1.2, 0.1]]);
        for score in ALL_SCORES {
            let run = |fused: bool| {
                let (mut store, p) = store_with("emb", data.clone());
                let pair = Arc::new(IncidencePair::new(ht(3, &[0, 2, 1], &[1, 0, 2]).unwrap()));
                let mut g = Graph::new();
                g.set_fused(fused);
                let s = g.spmm_score(&store, p, pair, score);
                let loss = g.mean(s);
                g.backward(loss, &mut store);
                let bits: Vec<u32> = g
                    .value(s)
                    .as_slice()
                    .iter()
                    .chain(store.grad(p).as_slice())
                    .map(|x| x.to_bits())
                    .collect();
                bits
            };
            assert_eq!(run(true), run(false), "ht divergence for {score:?}");
        }
    }

    #[test]
    fn fused_margin_loss_seed_matches_accumulated_path() {
        // Gather-based tape (no spmm_score): only the loss+seed fusion
        // differs between the arms.
        let run = |fused: bool| {
            let data = Tensor::from_rows(&[[0.4, -0.7], [1.1, 0.2], [-0.3, 0.9]]);
            let (mut store, p) = store_with("emb", data);
            let mut g = Graph::new();
            g.set_fused(fused);
            let hp = g.gather(&store, p, vec![0, 1, 2]);
            let hn = g.gather(&store, p, vec![2, 0, 1]);
            let np = g.l2_norm_rows(hp, 1e-9);
            let nn = g.l2_norm_rows(hn, 1e-9);
            let loss = g.margin_ranking_loss(np, nn, 0.5);
            g.backward(loss, &mut store);
            let bits: Vec<u32> = g
                .grad(np)
                .unwrap()
                .as_slice()
                .iter()
                .chain(g.grad(nn).unwrap().as_slice())
                .chain(store.grad(p).as_slice())
                .map(|x| x.to_bits())
                .collect();
            (g.value(loss).get(0, 0).to_bits(), bits)
        };
        assert_eq!(run(true), run(false));
    }

    #[test]
    fn fused_margin_loss_with_shared_operand_falls_back() {
        // pos == neg must not hit the direct-seed path (both grads land on
        // one node); the loss is degenerate but must not panic and the two
        // arms must agree.
        let run = |fused: bool| {
            let mut store = ParamStore::new();
            let mut g = Graph::new();
            g.set_fused(fused);
            let s = g.input(Tensor::from_rows(&[[1.0], [2.0]]));
            let loss = g.margin_ranking_loss(s, s, 0.5);
            g.backward(loss, &mut store);
            g.grad(s)
                .unwrap()
                .as_slice()
                .iter()
                .map(|x| x.to_bits())
                .collect::<Vec<u32>>()
        };
        assert_eq!(run(true), run(false));
    }

    #[test]
    fn spmm_score_reports_fewer_bytes_than_materialized_pipeline() {
        let data = Tensor::from_rows(&[
            [0.3, -0.2, 1.1, 0.5],
            [1.5, 0.7, -0.6, -0.1],
            [-0.4, 0.9, 0.2, 0.3],
            [0.1, 0.2, -1.3, 0.8],
        ]);
        let pair = Arc::new(IncidencePair::new(
            hrt(3, 1, &[0, 1], &[0, 0], &[2, 0], TailSign::Negative).unwrap(),
        ));
        let forward_bytes = |fused: bool| {
            let (store, p) = store_with("emb", data.clone());
            let mut g = Graph::new();
            g.set_fused(fused);
            let before = sparse::metrics::snapshot();
            let _ = g.spmm_score(&store, p, pair.clone(), RowScore::L2 { eps: 1e-9 });
            (sparse::metrics::snapshot() - before).bytes_touched
        };
        let fused = forward_bytes(true);
        let unfused = forward_bytes(false);
        assert!(
            fused < unfused,
            "fused forward must move fewer bytes ({fused} vs {unfused})"
        );
    }
}
