//! Integration tests of the data pipeline: text loading → dataset →
//! training, and the streaming embedding store under a real model.

use kg::stream::EmbeddingStore;
use kg::{load_tsv, write_tsv, Dataset, Vocab};
use sptransx::{KgeModel, SpTransE, TrainConfig, Trainer};

fn temp_dir() -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("sptx-integration-io");
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn train_from_tsv_file() {
    // Write a small KG as TSV, load it back through the standard loader,
    // and train a model on it.
    let path = temp_dir().join("toy.tsv");
    let mut text = String::new();
    for i in 0..40 {
        text.push_str(&format!("person{}\tknows\tperson{}\n", i, (i + 1) % 40));
        text.push_str(&format!("person{}\tworks_at\tcompany{}\n", i, i % 5));
    }
    std::fs::write(&path, &text).unwrap();

    let mut vocab = Vocab::new();
    let triples = load_tsv(std::fs::File::open(&path).unwrap(), &mut vocab).unwrap();
    assert_eq!(triples.len(), 80);
    assert_eq!(vocab.num_relations(), 2);

    let ds = Dataset::from_single_store(
        "toy-tsv",
        vocab.num_entities(),
        vocab.num_relations(),
        triples,
        0.1,
        0.1,
        1,
    )
    .unwrap();

    let cfg = TrainConfig {
        epochs: 20,
        batch_size: 32,
        dim: 8,
        lr: 0.2,
        ..Default::default()
    };
    let mut trainer = Trainer::new(SpTransE::from_config(&ds, &cfg).unwrap(), &ds, &cfg).unwrap();
    let report = trainer.run().unwrap();
    assert!(report.epoch_losses.last().unwrap() < report.epoch_losses.first().unwrap());
}

#[test]
fn tsv_round_trip_preserves_triples() {
    let mut vocab = Vocab::new();
    let original = load_tsv("a\tr1\tb\nb\tr2\tc\nc\tr1\ta\n".as_bytes(), &mut vocab).unwrap();
    let mut buf = Vec::new();
    write_tsv(&mut buf, &original, &vocab).unwrap();
    let mut vocab2 = Vocab::new();
    let reloaded = load_tsv(buf.as_slice(), &mut vocab2).unwrap();
    assert_eq!(original, reloaded);
}

#[test]
fn model_embeddings_round_trip_through_store() {
    let ds = kg::synthetic::SyntheticKgBuilder::new(100, 5)
        .triples(600)
        .seed(3)
        .build();
    let cfg = TrainConfig {
        epochs: 5,
        batch_size: 128,
        dim: 16,
        lr: 0.1,
        ..Default::default()
    };
    let mut trainer = Trainer::new(SpTransE::from_config(&ds, &cfg).unwrap(), &ds, &cfg).unwrap();
    trainer.run().unwrap();
    let model = trainer.into_model();
    let emb = model.store().value(model.embedding_param());

    // Save.
    let path = temp_dir().join("trained_emb.bin");
    EmbeddingStore::write(&path, emb.rows(), emb.cols(), |r, out| {
        out.copy_from_slice(emb.row(r));
    })
    .unwrap();

    // Reload in chunks and compare exactly.
    let mut store = EmbeddingStore::open(&path).unwrap();
    assert_eq!((store.rows(), store.cols()), emb.shape());
    let mut mismatch = 0usize;
    store
        .for_each_chunk(17, |first, chunk| {
            let d = emb.cols();
            for (k, row) in chunk.chunks_exact(d).enumerate() {
                if row != emb.row(first + k) {
                    mismatch += 1;
                }
            }
        })
        .unwrap();
    assert_eq!(mismatch, 0);
}

#[test]
fn streamed_init_matches_in_memory_init() {
    // Seeding a model through the disk store must be equivalent to copying
    // the tensor directly.
    let ds = kg::synthetic::SyntheticKgBuilder::new(60, 3)
        .triples(300)
        .seed(4)
        .build();
    let cfg = TrainConfig {
        dim: 8,
        ..Default::default()
    };
    let rows = ds.num_entities + ds.num_relations;
    let pretrained = tensor::init::uniform(rows, cfg.dim, 1.0, 9);

    let path = temp_dir().join("seed_emb.bin");
    EmbeddingStore::write(&path, rows, cfg.dim, |r, out| {
        out.copy_from_slice(pretrained.row(r));
    })
    .unwrap();

    let mut model = SpTransE::from_config(&ds, &cfg).unwrap();
    let emb_id = model.embedding_param();
    {
        let mut store = EmbeddingStore::open(&path).unwrap();
        let target = model.store_mut().value_mut(emb_id);
        store
            .for_each_chunk(13, |first, chunk| {
                let d = target.cols();
                target.as_mut_slice()[first * d..first * d + chunk.len()].copy_from_slice(chunk);
            })
            .unwrap();
    }
    assert_eq!(
        model.store().value(emb_id).as_slice(),
        pretrained.as_slice()
    );
}
