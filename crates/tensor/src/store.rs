//! Parameter storage: the model's learnable tensors, their gradients, the
//! touched-row sets that make every downstream gradient sweep sparse, and
//! the dirty-row sets that make per-epoch renormalization sparse too.
//!
//! Parameters can additionally be **paged out** to a [`RowStorage`] backend
//! ([`ParamStore::page_out`]): the full table then lives behind the
//! backend and only a fixed budget of rows — each batch's touched working
//! set, known in advance from the incidence index lists — is resident in a
//! pinned cache with LRU eviction and dirty-row write-back (see
//! [`crate::paged`]).

use crate::hogwild::SharedTable;
use crate::paged::{io_error, storage_error, Pager, RowStorage};
use crate::{Error, Result, Tensor};

/// Opaque handle to a parameter in a [`ParamStore`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ParamId(pub(crate) usize);

impl ParamId {
    /// The dense index of this parameter within its store (stable for the
    /// store's lifetime; optimizers key their state on it).
    pub fn index(self) -> usize {
        self.0
    }
}

/// The set of parameter rows whose gradient may be nonzero — the
/// **touched-row contract** threaded from the autograd tape to the
/// optimizers and the data-parallel all-reduce.
///
/// Two states:
///
/// * **Sparse** — a sorted, deduplicated list of row indices. Maintained by
///   [`ParamStore::touch`]; downstream sweeps (`zero_grads`, `Sgd`,
///   `Adagrad`, `all_reduce_grads`) walk only these rows, so per-batch cost
///   is `O(batch · d)` instead of `O(N · d)`.
/// * **Dense** — [`RowSet::mark_all`]: every row may hold gradient. This is
///   the fallback for writers without row structure (anything going through
///   [`ParamStore::grad_mut`]) and the explicit
///   [`ParamStore::set_dense_grads`] ablation mode; all sweeps take their
///   full-table path, which is bit-identical to the sparse walk.
///
/// The backing vector keeps its capacity across [`RowSet::clear`], so the
/// steady-state training step reuses it batch after batch (arena-style —
/// no per-batch allocation once the largest batch has been seen).
///
/// # Examples
///
/// ```
/// use tensor::RowSet;
///
/// let mut rows = RowSet::new();
/// rows.insert_slice(&[5, 1, 5, 3]);
/// rows.insert_slice(&[2, 3]);
/// assert_eq!(rows.as_slice(), Some(&[1, 2, 3, 5][..]));
/// rows.mark_all();
/// assert!(rows.is_dense());
/// assert_eq!(rows.as_slice(), None);
/// ```
#[derive(Debug, Clone, Default)]
pub struct RowSet {
    rows: Vec<u32>,
    /// Merge scratch for [`RowSet::insert_slice`]; kept on the set so the
    /// steady-state union is allocation-free once at high-water capacity.
    scratch: Vec<u32>,
    dense: bool,
}

impl RowSet {
    /// Creates an empty (sparse) set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Whether the set is in the dense (all-rows) state.
    pub fn is_dense(&self) -> bool {
        self.dense
    }

    /// Whether no row is marked (and the set is not dense).
    pub fn is_empty(&self) -> bool {
        !self.dense && self.rows.is_empty()
    }

    /// Number of listed rows (meaningless when dense).
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Switches to the dense state: every row may hold gradient.
    pub fn mark_all(&mut self) {
        self.dense = true;
        self.rows.clear();
    }

    /// Resets to the empty sparse state, **retaining capacity** so the next
    /// batch's inserts are allocation-free once the high-water mark is
    /// reached.
    pub fn clear(&mut self) {
        self.dense = false;
        self.rows.clear();
    }

    /// Unions `rows` (any order, duplicates allowed) into the set, keeping
    /// it sorted and deduplicated. A no-op in the dense state.
    ///
    /// Strictly-sorted input (the common case: another set's
    /// [`RowSet::as_slice`], a kernel's packed index list) takes a linear
    /// two-pointer merge — `O(self.len() + rows.len())` — so repeatedly
    /// unioning small batches into a large set never re-sorts the whole
    /// set. Unsorted input falls back to extend + sort + dedup.
    pub fn insert_slice(&mut self, rows: &[u32]) {
        if self.dense || rows.is_empty() {
            return;
        }
        if self
            .rows
            .last()
            .is_none_or(|&last| rows.first().is_some_and(|&f| last < f))
            && rows.windows(2).all(|w| w[0] < w[1])
        {
            self.rows.extend_from_slice(rows);
            return;
        }
        if rows.windows(2).all(|w| w[0] < w[1]) {
            self.scratch.clear();
            self.scratch.reserve(self.rows.len() + rows.len());
            let (mut i, mut j) = (0, 0);
            while i < self.rows.len() && j < rows.len() {
                let (a, b) = (self.rows[i], rows[j]);
                self.scratch.push(a.min(b));
                i += (a <= b) as usize;
                j += (b <= a) as usize;
            }
            self.scratch.extend_from_slice(&self.rows[i..]);
            self.scratch.extend_from_slice(&rows[j..]);
            std::mem::swap(&mut self.rows, &mut self.scratch);
            return;
        }
        self.rows.extend_from_slice(rows);
        self.rows.sort_unstable();
        self.rows.dedup();
    }

    /// The sorted row list, or `None` in the dense state (callers take
    /// their full-table path).
    pub fn as_slice(&self) -> Option<&[u32]> {
        if self.dense {
            None
        } else {
            Some(&self.rows)
        }
    }
}

/// Owns a model's learnable tensors and their gradient accumulators.
///
/// Parameters live *outside* the autograd tape: per-batch [`crate::Graph`]s
/// reference them by [`ParamId`] so the (potentially huge) embedding matrices
/// are never copied into the graph. Gradients accumulate across
/// [`crate::Graph::backward`] calls until [`ParamStore::zero_grads`].
///
/// # Touched-row invariant
///
/// Each parameter carries a [`RowSet`] of rows whose gradient may be
/// nonzero. The invariant every writer upholds: **outside the set, gradient
/// rows are exactly `+0.0`**. [`crate::Graph::backward`] records rows from
/// the ops that know the sparsity (gather index lists, incidence nonzero
/// columns, projection relation lists); [`ParamStore::grad_mut`] — the only
/// untracked mutable entry point — conservatively marks the whole parameter
/// dense. [`ParamStore::zero_grads`] clears only the set's rows and then
/// resets the set.
///
/// # Examples
///
/// ```
/// use tensor::{ParamStore, Tensor};
///
/// let mut store = ParamStore::new();
/// let w = store.add_param("weights", Tensor::zeros(4, 2));
/// assert_eq!(store.value(w).shape(), (4, 2));
/// assert_eq!(store.lookup("weights"), Some(w));
/// assert!(store.touched(w).is_empty());
/// ```
#[derive(Debug, Default)]
pub struct ParamStore {
    names: Vec<String>,
    values: Vec<Tensor>,
    grads: Vec<Tensor>,
    touched: Vec<RowSet>,
    /// Rows whose **value** may have changed since the last
    /// [`ParamStore::for_dirty_rows`] sweep — the epoch-renormalization
    /// analog of the touched-row contract. Populated by the optimizers
    /// (union of stepped rows) and the untracked value accessors; consumed
    /// with retention by `for_dirty_rows`.
    dirty: Vec<RowSet>,
    /// `Some` for parameters paged out to backing storage
    /// ([`ParamStore::page_out`]): the value/grad tensors then hold the
    /// `budget × d` slot cache (slot-aligned, so one translation map serves
    /// both) while the touched/dirty row sets keep **absolute** indices.
    pagers: Vec<Option<Pager>>,
    dense_grads: bool,
}

/// Read view of a parameter's table for kernels that index rows: the cache
/// (or full-table) data plus the optional row → slot translation map.
///
/// For resident parameters `data` is the full `rows × cols` table and
/// `map` is `None`; for paged parameters `data` is the `budget × cols`
/// cache and `map` translates absolute rows to slots. Kernels that support
/// paging address `data[view.slot(r) * cols ..]` — same bytes either way,
/// so the arms are bit-identical.
#[derive(Debug, Clone, Copy)]
pub struct TableView<'a> {
    data: &'a [f32],
    rows: usize,
    cols: usize,
    map: Option<&'a [u32]>,
}

impl<'a> TableView<'a> {
    /// Logical row count of the parameter (not the cache size).
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Row width.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// The backing data: full table (resident) or slot cache (paged).
    pub fn data(&self) -> &'a [f32] {
        self.data
    }

    /// The row → slot map, `None` for resident parameters.
    pub fn map(&self) -> Option<&'a [u32]> {
        self.map
    }

    /// Translates an absolute row index to its index within
    /// [`TableView::data`].
    ///
    /// # Panics
    ///
    /// Panics (paged parameters only) if the row is not resident — a
    /// kernel touched a row outside the paged-in working set.
    #[inline]
    pub fn slot(&self, row: usize) -> usize {
        match self.map {
            None => row,
            Some(m) => {
                let s = m[row];
                assert_ne!(
                    s,
                    crate::paged::NOT_RESIDENT,
                    "row {row} not resident; it was outside the working set paged in for this batch"
                );
                s as usize
            }
        }
    }
}

impl ParamStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a parameter, returning its handle.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered (parameter names are unique).
    pub fn add_param(&mut self, name: impl Into<String>, value: Tensor) -> ParamId {
        let name = name.into();
        assert!(
            !self.names.contains(&name),
            "duplicate parameter name: {name}"
        );
        let grad = Tensor::zeros(value.rows(), value.cols());
        let mut rows = RowSet::new();
        if self.dense_grads {
            rows.mark_all();
        }
        // A fresh parameter starts all-dirty: its initializer wrote every
        // row, so the first renormalization sweep must visit them all (the
        // init arithmetic makes no fixed-point promise).
        let mut dirty = RowSet::new();
        dirty.mark_all();
        self.names.push(name);
        self.values.push(value);
        self.grads.push(grad);
        self.touched.push(rows);
        self.dirty.push(dirty);
        self.pagers.push(None);
        ParamId(self.values.len() - 1)
    }

    /// Finds a parameter by name.
    pub fn lookup(&self, name: &str) -> Option<ParamId> {
        self.names.iter().position(|n| n == name).map(ParamId)
    }

    /// Like [`lookup`](Self::lookup) but returns an error for missing names.
    ///
    /// # Errors
    ///
    /// Returns [`Error::UnknownParam`] if no parameter has this name.
    pub fn require(&self, name: &str) -> Result<ParamId> {
        self.lookup(name).ok_or_else(|| Error::UnknownParam {
            name: name.to_string(),
        })
    }

    /// Number of registered parameters.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Parameter name.
    pub fn name(&self, id: ParamId) -> &str {
        &self.names[id.0]
    }

    /// Borrows a parameter's value.
    ///
    /// # Panics
    ///
    /// Panics for paged parameters: their value tensor holds the slot
    /// cache, not the full table, so any caller reaching for the whole
    /// matrix must [`ParamStore::unpage`] first (or use
    /// [`ParamStore::table`] if it can translate rows). This is also the
    /// guard that stops ops without paged support (gather/SpMM backends,
    /// projections) from silently reading slot bytes as absolute rows.
    pub fn value(&self, id: ParamId) -> &Tensor {
        self.assert_resident(id);
        &self.values[id.0]
    }

    /// Mutably borrows a parameter's value (e.g. for re-initialization or
    /// ad-hoc edits).
    ///
    /// This entry point carries no row information, so it conservatively
    /// marks the whole parameter **dirty** — the next
    /// [`ParamStore::for_dirty_rows`] sweep revisits every row. Epoch
    /// renormalization goes through `for_dirty_rows` instead.
    pub fn value_mut(&mut self, id: ParamId) -> &mut Tensor {
        self.assert_resident(id);
        self.dirty[id.0].mark_all();
        &mut self.values[id.0]
    }

    /// Borrows a parameter's gradient accumulator.
    ///
    /// # Panics
    ///
    /// Panics for paged parameters (the accumulator is slot-addressed; see
    /// [`ParamStore::value`]).
    pub fn grad(&self, id: ParamId) -> &Tensor {
        self.assert_resident(id);
        &self.grads[id.0]
    }

    /// Mutably borrows a parameter's gradient accumulator.
    ///
    /// This entry point carries no row information, so it conservatively
    /// [`RowSet::mark_all`]s the parameter — the dense fallback of the
    /// touched-row contract. Structured writers inside the crate use the
    /// tracked accessors instead; external writers with row knowledge can
    /// re-tighten via [`ParamStore::touch`] after a `zero_grads`.
    pub fn grad_mut(&mut self, id: ParamId) -> &mut Tensor {
        self.assert_resident(id);
        self.touched[id.0].mark_all();
        &mut self.grads[id.0]
    }

    /// Mutably borrows a parameter's gradient for writes **restricted to
    /// `rows`**, which are recorded in the touched set first — the tracked
    /// counterpart of [`ParamStore::grad_mut`] for external writers with
    /// row structure (e.g. the data-parallel all-reduce). Writing outside
    /// `rows` breaks the touched-row invariant; use
    /// [`ParamStore::grad_mut`] when the write pattern is unknown.
    pub fn grad_rows_mut(&mut self, id: ParamId, rows: &[u32]) -> &mut Tensor {
        self.assert_resident(id);
        self.touch(id, rows);
        &mut self.grads[id.0]
    }

    /// Borrows a parameter's touched-row set.
    pub fn touched(&self, id: ParamId) -> &RowSet {
        &self.touched[id.0]
    }

    /// Records that `rows` of `id`'s gradient may now be nonzero (any
    /// order, duplicates fine). In dense-gradient mode this marks the whole
    /// parameter instead.
    pub fn touch(&mut self, id: ParamId, rows: &[u32]) {
        if self.dense_grads {
            self.touched[id.0].mark_all();
        } else {
            self.touched[id.0].insert_slice(rows);
        }
    }

    /// Forces every parameter's row set dense, now and for all future
    /// [`ParamStore::touch`] calls — the `--dense-grads` ablation mode.
    ///
    /// Every sweep (zeroing, optimizer steps, all-reduce) then takes its
    /// full-table path, which is **bit-identical** to the sparse walks (the
    /// per-row arithmetic is the same and untouched rows carry exact
    /// `+0.0` gradients); only the per-batch cost changes from
    /// `O(batch · d)` to `O(N · d)`.
    pub fn set_dense_grads(&mut self, dense: bool) {
        assert!(
            !dense || !self.has_paged(),
            "dense-gradient mode is incompatible with paged parameters (the \
             accumulator only holds the cache's slots, not the full table)"
        );
        self.dense_grads = dense;
        if dense {
            for rows in &mut self.touched {
                rows.mark_all();
            }
            // The ablation arm must measure the full O(N · d) baseline:
            // renormalization sweeps go dense too (and stay dense — see
            // `for_dirty_rows`).
            for rows in &mut self.dirty {
                rows.mark_all();
            }
        }
    }

    /// Whether the store is in forced dense-gradient mode.
    pub fn dense_grads(&self) -> bool {
        self.dense_grads
    }

    /// Tracked gradient access: the mutable gradient plus the row set a
    /// structured writer should restrict itself to (callers [`touch`]
    /// (Self::touch) first, then walk the returned set or a subset of it).
    pub(crate) fn grad_and_rows_mut(&mut self, id: ParamId) -> (&mut Tensor, &RowSet) {
        self.assert_resident(id);
        (&mut self.grads[id.0], &self.touched[id.0])
    }

    /// Like [`grad_and_rows_mut`](Self::grad_and_rows_mut) with the value
    /// borrowed alongside (the fused backward kernels read it).
    pub(crate) fn value_grad_rows_mut(&mut self, id: ParamId) -> (&Tensor, &mut Tensor, &RowSet) {
        self.assert_resident(id);
        (
            &self.values[id.0],
            &mut self.grads[id.0],
            &self.touched[id.0],
        )
    }

    /// Borrows a parameter's dirty-row set (rows whose value may have
    /// changed since the last [`ParamStore::for_dirty_rows`] sweep).
    pub fn dirty(&self, id: ParamId) -> &RowSet {
        &self.dirty[id.0]
    }

    /// Records that `rows` of `id`'s **value** were rewritten (any order,
    /// duplicates fine) — the hook optimizers use after stepping a sparse
    /// row list, so epoch renormalization knows what to revisit.
    pub fn mark_dirty(&mut self, id: ParamId, rows: &[u32]) {
        self.dirty[id.0].insert_slice(rows);
    }

    /// Like [`mark_dirty`](Self::mark_dirty) but marks every row — for
    /// writers without row structure (dense optimizer sweeps, `Adam`).
    pub fn mark_all_dirty(&mut self, id: ParamId) {
        self.dirty[id.0].mark_all();
    }

    /// Walks the dirty rows of `id`'s value, handing each `(row_index,
    /// row_slice)` to `f`, and **retains** exactly the rows for which `f`
    /// returns `true` in the dirty set — the epoch-renormalization sweep.
    ///
    /// The retention contract makes lazy renormalization bit-identical to a
    /// dense sweep: a normalizer returns `true` when it *changed the row's
    /// bits* (the row is not yet a fixed point of the normalization, so the
    /// next sweep must revisit it even if no batch touches it again) and
    /// `false` when the row came out bit-identical (re-normalizing it later
    /// would be a no-op) or lies outside the range the caller normalizes at
    /// all (a future write re-marks it via the optimizer). In the dense
    /// state the walk covers every row and the set collapses to the
    /// retained list.
    ///
    /// In forced dense-gradient mode ([`ParamStore::set_dense_grads`]) the
    /// set is re-marked dense afterwards, so the ablation arm keeps paying
    /// the full `O(N · d)` sweep every epoch.
    pub fn for_dirty_rows(&mut self, id: ParamId, mut f: impl FnMut(usize, &mut [f32]) -> bool) {
        if self.pagers[id.0].is_some() {
            return self.for_dirty_rows_paged(id, f);
        }
        let value = &mut self.values[id.0];
        let cols = value.cols();
        let num_rows = value.rows();
        let dirty = &mut self.dirty[id.0];
        if cols == 0 || num_rows == 0 {
            dirty.clear();
        } else {
            let data = value.as_mut_slice();
            if dirty.dense {
                dirty.dense = false;
                dirty.rows.clear();
                for r in 0..num_rows {
                    if f(r, &mut data[r * cols..(r + 1) * cols]) {
                        dirty.rows.push(r as u32);
                    }
                }
            } else {
                let mut keep = 0usize;
                for i in 0..dirty.rows.len() {
                    let r = dirty.rows[i] as usize;
                    debug_assert!(r < num_rows, "dirty row {r} out of bounds");
                    if f(r, &mut data[r * cols..(r + 1) * cols]) {
                        dirty.rows[keep] = r as u32;
                        keep += 1;
                    }
                }
                dirty.rows.truncate(keep);
            }
        }
        if self.dense_grads {
            dirty.mark_all();
        }
    }

    /// Iterates over `(id, value, grad, touched, dirty, pager)` tuples
    /// mutably — the optimizer hook. The touched set tells the optimizer
    /// which rows can carry gradient (dense means "sweep everything"); the
    /// optimizer unions the rows it actually rewrites into the dirty set so
    /// epoch renormalization can stay sparse. A `Some` pager means value
    /// and grad are the **slot cache**: the optimizer must address rows
    /// through [`Pager::slot`] (only `Sgd` supports this; stateful
    /// optimizers keyed on absolute rows refuse).
    pub fn iter_mut(
        &mut self,
    ) -> impl Iterator<
        Item = (
            ParamId,
            &mut Tensor,
            &mut Tensor,
            &RowSet,
            &mut RowSet,
            Option<&Pager>,
        ),
    > {
        self.values
            .iter_mut()
            .zip(self.grads.iter_mut())
            .zip(self.touched.iter())
            .zip(self.dirty.iter_mut())
            .zip(self.pagers.iter())
            .enumerate()
            .map(|(i, ((((v, g), r), d), p))| (ParamId(i), v, g, r, d, p.as_ref()))
    }

    /// Handles of all registered parameters, in registration order.
    pub fn param_ids(&self) -> Vec<ParamId> {
        (0..self.values.len()).map(ParamId).collect()
    }

    /// Zeroes gradient accumulators and resets the touched-row sets.
    ///
    /// Sparse sets are walked row by row (`O(touched · d)`); dense sets
    /// memset the full table. Because untouched rows are already exact
    /// `+0.0` (the touched-row invariant), both paths leave identical bits.
    pub fn zero_grads(&mut self) {
        for i in 0..self.grads.len() {
            if self.pagers[i].is_some() {
                // The paged equivalent also marks the stepped rows' slots
                // for write-back — the optimizer rewrote their values.
                self.prepare_paged(i);
                continue;
            }
            let (g, rows) = (&mut self.grads[i], &mut self.touched[i]);
            match rows.as_slice() {
                None => g.zero_(),
                Some(listed) => {
                    let n = g.cols();
                    let data = g.as_mut_slice();
                    for &r in listed {
                        let r = r as usize;
                        data[r * n..(r + 1) * n].fill(0.0);
                    }
                }
            }
            rows.clear();
            if self.dense_grads {
                rows.mark_all();
            }
        }
    }

    /// Total number of learnable scalars.
    pub fn num_scalars(&self) -> usize {
        self.values.iter().map(Tensor::len).sum()
    }

    /// Converts every parameter's **value** tensor to Hogwild-shared
    /// storage, returning one [`SharedTable`] handle per parameter (in
    /// registration order) for replica stores to alias via
    /// [`ParamStore::alias_values`].
    ///
    /// Only values are shared: gradients, touched sets, and dirty sets stay
    /// private to each store, so concurrent workers accumulate gradients
    /// independently and only their optimizer *steps* race on the shared
    /// bytes (see [`crate::hogwild`] for the safety argument).
    ///
    /// # Errors
    ///
    /// Fails if any parameter is paged out — the paged value tensor is a
    /// slot cache, not the table, and Hogwild sharing of a demand-paged
    /// cache is not supported.
    pub fn share_values(&mut self) -> Result<Vec<SharedTable>> {
        if self.has_paged() {
            return Err(storage_error(
                "Hogwild value sharing is incompatible with paged parameters \
                 (the value tensor holds a slot cache, not the table)"
                    .into(),
            ));
        }
        Ok(self.values.iter_mut().map(Tensor::share).collect())
    }

    /// Replaces this store's value tensors with aliases of `tables` (as
    /// produced by another store's [`ParamStore::share_values`]), making
    /// this store a Hogwild replica: its forwards read — and its optimizer
    /// steps write — the canonical store's bytes, while its gradients and
    /// row sets remain private.
    ///
    /// Every parameter is conservatively marked all-dirty (its value now
    /// changes under other workers' feet); the async driver merges and
    /// settles dirty sets at epoch edges.
    ///
    /// # Errors
    ///
    /// Fails if any parameter is paged, or if `tables` does not match this
    /// store parameter-for-parameter in count and shape.
    pub fn alias_values(&mut self, tables: &[SharedTable]) -> Result<()> {
        if self.has_paged() {
            return Err(storage_error(
                "Hogwild value sharing is incompatible with paged parameters".into(),
            ));
        }
        if tables.len() != self.values.len() {
            return Err(Error::ShapeMismatch {
                context: format!(
                    "alias_values: {} shared tables for {} parameters",
                    tables.len(),
                    self.values.len()
                ),
            });
        }
        for (i, table) in tables.iter().enumerate() {
            let have = self.values[i].shape();
            let want = (table.rows(), table.cols());
            if have != want {
                return Err(Error::ShapeMismatch {
                    context: format!(
                        "alias_values: parameter '{}' is {}x{} but the shared table is {}x{}",
                        self.names[i], have.0, have.1, want.0, want.1
                    ),
                });
            }
        }
        for (value, table) in self.values.iter_mut().zip(tables) {
            *value = Tensor::from_shared(table);
        }
        for dirty in &mut self.dirty {
            dirty.mark_all();
        }
        Ok(())
    }

    fn assert_resident(&self, id: ParamId) {
        assert!(
            self.pagers[id.0].is_none(),
            "parameter '{}' is paged out to backing storage; this access \
             path needs the full table (unpage it, go through \
             ParamStore::table, or run with --store ram)",
            self.names[id.0]
        );
    }

    /// Whether `id` is paged out to backing storage.
    pub fn is_paged(&self, id: ParamId) -> bool {
        self.pagers[id.0].is_some()
    }

    /// Whether any parameter is paged.
    pub fn has_paged(&self) -> bool {
        self.pagers.iter().any(Option::is_some)
    }

    /// Borrows `id`'s pager (counters, trace), if paged.
    pub fn pager(&self, id: ParamId) -> Option<&Pager> {
        self.pagers[id.0].as_ref()
    }

    /// Mutably borrows `id`'s pager (e.g. to enable trace recording).
    pub fn pager_mut(&mut self, id: ParamId) -> Option<&mut Pager> {
        self.pagers[id.0].as_mut()
    }

    /// Logical shape `(rows, cols)` of a parameter — the full-table shape
    /// even when paged (use this instead of [`ParamStore::value`] for
    /// shape-only queries).
    pub fn param_shape(&self, id: ParamId) -> (usize, usize) {
        match &self.pagers[id.0] {
            None => self.values[id.0].shape(),
            Some(p) => (p.rows(), p.cols()),
        }
    }

    /// Read view of a parameter's table for row-indexing kernels: data plus
    /// the optional row → slot map (see [`TableView`]).
    pub fn table(&self, id: ParamId) -> TableView<'_> {
        let i = id.0;
        match &self.pagers[i] {
            None => TableView {
                data: self.values[i].as_slice(),
                rows: self.values[i].rows(),
                cols: self.values[i].cols(),
                map: None,
            },
            Some(p) => TableView {
                data: self.values[i].as_slice(),
                rows: p.rows(),
                cols: p.cols(),
                map: Some(p.slot_of()),
            },
        }
    }

    /// Moves `id`'s full table into `storage` (writing the current values
    /// to it) and replaces the in-RAM tensors with a `budget × d` slot
    /// cache. From here on, each batch must page its working set in via
    /// [`ParamStore::page_in`] before kernels touch the parameter, and
    /// reads/writes go through slot translation ([`ParamStore::table`],
    /// the pager-aware optimizer path). `budget` is clamped to the table's
    /// row count.
    ///
    /// Paging moves bytes, never arithmetic: training a paged parameter is
    /// bit-identical to the resident run.
    ///
    /// # Errors
    ///
    /// Fails if the store is in dense-gradient mode, the parameter is
    /// already paged, `storage`'s shape mismatches, gradients are pending
    /// (call [`ParamStore::zero_grads`] first), the budget is zero, or on
    /// backing-store I/O errors.
    pub fn page_out(
        &mut self,
        id: ParamId,
        mut storage: Box<dyn RowStorage>,
        budget: usize,
    ) -> Result<()> {
        let i = id.0;
        if self.dense_grads {
            return Err(storage_error(
                "paged storage is incompatible with dense-gradient mode".into(),
            ));
        }
        if self.pagers[i].is_some() {
            return Err(storage_error(format!(
                "parameter '{}' is already paged",
                self.names[i]
            )));
        }
        if budget == 0 {
            return Err(storage_error("cache budget must be at least 1 row".into()));
        }
        if !self.touched[i].is_empty() {
            return Err(storage_error(format!(
                "parameter '{}' has pending gradients; zero_grads before paging out",
                self.names[i]
            )));
        }
        let value = &self.values[i];
        if storage.rows() != value.rows() || storage.cols() != value.cols() {
            return Err(storage_error(format!(
                "backing store shape {}x{} does not match parameter '{}' ({}x{})",
                storage.rows(),
                storage.cols(),
                self.names[i],
                value.rows(),
                value.cols()
            )));
        }
        storage
            .write_rows(0, value.rows(), value.as_slice())
            .map_err(io_error)?;
        storage.flush().map_err(io_error)?;
        let budget = budget.min(value.rows().max(1));
        let cols = value.cols();
        self.values[i] = Tensor::zeros(budget, cols);
        self.grads[i] = Tensor::zeros(budget, cols);
        self.pagers[i] = Some(Pager::new(storage, budget));
        Ok(())
    }

    /// Pages in the union of the given sorted index `lists` — a batch's
    /// working set, e.g. its positive and negative incidence column lists —
    /// pinning those rows for the coming forward/backward/step. A no-op
    /// for resident parameters, so models can call it unconditionally.
    ///
    /// Before loading, the *previous* batch's bookkeeping is settled: its
    /// touched rows (still resident by the pinning invariant) get their
    /// gradient slots zeroed and their value slots marked for write-back —
    /// the paged equivalent of [`ParamStore::zero_grads`], which delegates
    /// here for paged parameters.
    ///
    /// # Errors
    ///
    /// Fails if the union exceeds the cache budget or on backing-store I/O
    /// errors.
    pub fn page_in(&mut self, id: ParamId, lists: &[&[u32]]) -> Result<()> {
        let i = id.0;
        if self.pagers[i].is_none() {
            return Ok(());
        }
        self.prepare_paged(i);
        let pager = self.pagers[i].as_mut().expect("checked above");
        pager.ensure_union(lists, self.values[i].as_mut_slice())
    }

    /// Writes every dirty resident row of a paged parameter back to its
    /// backing store and flushes it — the checkpoint hook. A no-op for
    /// resident parameters.
    ///
    /// # Errors
    ///
    /// Backing-store I/O errors.
    pub fn flush_paged(&mut self, id: ParamId) -> Result<()> {
        let i = id.0;
        if self.pagers[i].is_none() {
            return Ok(());
        }
        self.prepare_paged(i);
        let pager = self.pagers[i].as_mut().expect("checked above");
        pager.flush(self.values[i].as_slice())
    }

    /// Reverses [`ParamStore::page_out`]: flushes dirty rows, reads the
    /// full table back into a resident tensor, and drops the pager (and its
    /// backing store). The gradient accumulator is reset to full-table
    /// zeros. Residency is transiently `O(N · d)` again — this is for
    /// end-of-training evaluation and dumps, not for mid-training use.
    ///
    /// # Errors
    ///
    /// Backing-store I/O errors.
    pub fn unpage(&mut self, id: ParamId) -> Result<()> {
        let i = id.0;
        if self.pagers[i].is_none() {
            return Ok(());
        }
        self.prepare_paged(i);
        let pager = self.pagers[i].as_mut().expect("checked above");
        pager.flush(self.values[i].as_slice())?;
        let (rows, cols) = (pager.rows(), pager.cols());
        let mut full = Tensor::zeros(rows, cols);
        pager.read_all(full.as_mut_slice())?;
        self.values[i] = full;
        self.grads[i] = Tensor::zeros(rows, cols);
        self.pagers[i] = None;
        Ok(())
    }

    /// Settles a paged parameter's previous-batch bookkeeping: zeroes the
    /// gradient slots of the touched rows (which are still resident — rows
    /// stay pinned until this runs), marks their value slots dirty (the
    /// optimizer rewrote them), and clears the touched set. Idempotent;
    /// every paged operation that can evict calls it first so no slot is
    /// ever recycled with stale gradient bytes or an unsaved value.
    fn prepare_paged(&mut self, i: usize) {
        let Some(pager) = self.pagers[i].as_mut() else {
            return;
        };
        let touched = &mut self.touched[i];
        let rows = touched.as_slice().unwrap_or_else(|| {
            panic!(
                "paged parameter '{}' cannot use a dense touched set",
                self.names[i]
            )
        });
        let grad = &mut self.grads[i];
        let cols = grad.cols();
        let gd = grad.as_mut_slice();
        for &r in rows {
            let s = pager.slot(r as usize);
            if cols > 0 {
                gd[s * cols..(s + 1) * cols].fill(0.0);
            }
            pager.mark_slot_dirty(s);
        }
        touched.clear();
    }

    /// The paged arm of [`ParamStore::for_dirty_rows`]: walks the same
    /// dirty rows in the same order with the same retention contract, but
    /// streams them through the slot cache in budget-sized chunks (each
    /// chunk's accesses hit the pager, so they land in the trace and the
    /// hit/miss counters like any batch access).
    ///
    /// # Panics
    ///
    /// Panics on backing-store I/O errors (this sweep has no error channel;
    /// a failing pagefile mid-epoch is not recoverable).
    fn for_dirty_rows_paged(&mut self, id: ParamId, mut f: impl FnMut(usize, &mut [f32]) -> bool) {
        let i = id.0;
        self.prepare_paged(i);
        let pager = self.pagers[i].as_mut().expect("paged dispatch");
        let cols = pager.cols();
        let num_rows = pager.rows();
        let budget = pager.budget();
        let dirty = &mut self.dirty[i];
        if cols == 0 || num_rows == 0 {
            dirty.clear();
            return;
        }
        let cache = self.values[i].as_mut_slice();
        if dirty.dense {
            // Fresh-parameter state: every row is dirty. Stream the whole
            // table through the cache once (this is the one O(N · d) sweep,
            // paid on the first epoch only — retention thins it after).
            dirty.dense = false;
            dirty.rows.clear();
            let mut chunk: Vec<u32> = Vec::with_capacity(budget);
            let mut start = 0usize;
            while start < num_rows {
                let end = (start + budget).min(num_rows);
                chunk.clear();
                chunk.extend(start as u32..end as u32);
                pager
                    .ensure(&chunk, cache)
                    .expect("paged renormalization sweep failed to page rows in");
                for r in start..end {
                    let s = pager.slot(r);
                    if f(r, &mut cache[s * cols..(s + 1) * cols]) {
                        pager.mark_slot_dirty(s);
                        dirty.rows.push(r as u32);
                    }
                }
                start = end;
            }
        } else {
            let total = dirty.rows.len();
            let mut keep = 0usize;
            let mut start = 0usize;
            while start < total {
                let end = (start + budget).min(total);
                pager
                    .ensure(&dirty.rows[start..end], cache)
                    .expect("paged renormalization sweep failed to page rows in");
                for idx in start..end {
                    let r = dirty.rows[idx] as usize;
                    let s = pager.slot(r);
                    if f(r, &mut cache[s * cols..(s + 1) * cols]) {
                        pager.mark_slot_dirty(s);
                        dirty.rows[keep] = r as u32;
                        keep += 1;
                    }
                }
                start = end;
            }
            dirty.rows.truncate(keep);
        }
    }

    /// Backward-pass view of a paged parameter for the slot-translating
    /// fused kernels: `(cache values, cache grads, sorted slots of the
    /// touched rows, slot → row map, row → slot map)`. The slot list is
    /// strictly ascending (for destination-row-sharded dispatch); its
    /// translation is a bijection off the sorted touched set, so per-row
    /// work — and therefore every bit — matches the resident arm.
    pub(crate) fn paged_backward_parts(
        &mut self,
        id: ParamId,
    ) -> (&Tensor, &mut Tensor, &[u32], &[u32], &[u32]) {
        let i = id.0;
        {
            let pager = self.pagers[i].as_mut().expect("parameter is paged");
            let touched = self.touched[i]
                .as_slice()
                .expect("paged parameters require sparse touched sets");
            pager.translate_sorted(touched);
        }
        let pager = self.pagers[i].as_ref().expect("parameter is paged");
        (
            &self.values[i],
            &mut self.grads[i],
            &pager.slot_scratch,
            pager.row_of(),
            pager.slot_of(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_lookup_and_access() {
        let mut s = ParamStore::new();
        let a = s.add_param("a", Tensor::zeros(2, 3));
        let b = s.add_param("b", Tensor::zeros(1, 1));
        assert_eq!(s.len(), 2);
        assert_eq!(s.lookup("a"), Some(a));
        assert_eq!(s.lookup("missing"), None);
        assert!(s.require("missing").is_err());
        assert_eq!(s.name(b), "b");
        assert_eq!(s.num_scalars(), 7);
        s.value_mut(a).set(0, 0, 1.0);
        assert_eq!(s.value(a).get(0, 0), 1.0);
    }

    #[test]
    fn grads_zeroable() {
        let mut s = ParamStore::new();
        let a = s.add_param("a", Tensor::zeros(2, 2));
        s.grad_mut(a).set(1, 1, 5.0);
        s.zero_grads();
        assert_eq!(s.grad(a).get(1, 1), 0.0);
    }

    #[test]
    #[should_panic(expected = "duplicate parameter name")]
    fn duplicate_names_rejected() {
        let mut s = ParamStore::new();
        s.add_param("x", Tensor::zeros(1, 1));
        s.add_param("x", Tensor::zeros(1, 1));
    }

    #[test]
    fn row_set_sorts_dedups_and_retains_capacity() {
        let mut rs = RowSet::new();
        assert!(rs.is_empty());
        rs.insert_slice(&[7, 2, 2, 9]);
        rs.insert_slice(&[3, 7]);
        assert_eq!(rs.as_slice(), Some(&[2, 3, 7, 9][..]));
        assert_eq!(rs.len(), 4);
        // Appending a strictly-greater sorted run skips the re-sort but
        // stays correct.
        rs.insert_slice(&[11, 12]);
        assert_eq!(rs.as_slice(), Some(&[2, 3, 7, 9, 11, 12][..]));
        let cap = rs.rows.capacity();
        rs.clear();
        assert!(rs.is_empty());
        assert_eq!(rs.rows.capacity(), cap, "clear must retain capacity");
        rs.mark_all();
        assert!(rs.is_dense());
        rs.insert_slice(&[1]); // no-op when dense
        assert_eq!(rs.as_slice(), None);
        rs.clear();
        assert!(!rs.is_dense());
    }

    #[test]
    fn touch_tracks_and_grad_mut_marks_dense() {
        let mut s = ParamStore::new();
        let a = s.add_param("a", Tensor::zeros(6, 2));
        s.touch(a, &[4, 1, 4]);
        assert_eq!(s.touched(a).as_slice(), Some(&[1, 4][..]));
        // The untracked accessor falls back to dense.
        let _ = s.grad_mut(a);
        assert!(s.touched(a).is_dense());
        // zero_grads resets the set to empty sparse.
        s.zero_grads();
        assert!(s.touched(a).is_empty());
    }

    #[test]
    fn sparse_zero_grads_clears_only_touched_rows_and_matches_invariant() {
        let mut s = ParamStore::new();
        let a = s.add_param("a", Tensor::zeros(4, 2));
        // Simulate a tracked writer: rows 1 and 3 carry gradient.
        s.touch(a, &[1, 3]);
        {
            let (g, rows) = s.grad_and_rows_mut(a);
            assert_eq!(rows.as_slice(), Some(&[1, 3][..]));
            g.row_mut(1).fill(2.5);
            g.row_mut(3).fill(-1.0);
        }
        s.zero_grads();
        assert!(s.grad(a).as_slice().iter().all(|&x| x.to_bits() == 0));
        assert!(s.touched(a).is_empty());
    }

    #[test]
    fn new_params_start_all_dirty_and_sweeps_retain_changed_rows() {
        let mut s = ParamStore::new();
        let a = s.add_param("a", Tensor::from_rows(&[[1.0], [2.0], [3.0], [4.0]]));
        assert!(s.dirty(a).is_dense(), "fresh params start all-dirty");
        // First sweep (dense): "normalize" rows > 2.0 down, report changed.
        s.for_dirty_rows(a, |_, row| {
            if row[0] > 2.0 {
                row[0] = 2.0;
                true
            } else {
                false
            }
        });
        assert_eq!(s.dirty(a).as_slice(), Some(&[2, 3][..]));
        // Second sweep only sees the retained rows; nothing changes now.
        let mut seen = Vec::new();
        s.for_dirty_rows(a, |r, _| {
            seen.push(r);
            false
        });
        assert_eq!(seen, vec![2, 3]);
        assert!(s.dirty(a).is_empty());
        // An optimizer marking rows re-arms the sweep for exactly those.
        s.mark_dirty(a, &[1, 3, 1]);
        let mut seen = Vec::new();
        s.for_dirty_rows(a, |r, _| {
            seen.push(r);
            false
        });
        assert_eq!(seen, vec![1, 3]);
    }

    #[test]
    fn value_mut_and_mark_all_dirty_force_dense_dirty() {
        let mut s = ParamStore::new();
        let a = s.add_param("a", Tensor::zeros(3, 2));
        s.for_dirty_rows(a, |_, _| false);
        assert!(s.dirty(a).is_empty());
        let _ = s.value_mut(a);
        assert!(s.dirty(a).is_dense(), "untracked value access goes dense");
        s.for_dirty_rows(a, |_, _| false);
        s.mark_all_dirty(a);
        assert!(s.dirty(a).is_dense());
    }

    #[test]
    fn dense_grads_mode_keeps_dirty_dense_across_sweeps() {
        let mut s = ParamStore::new();
        let a = s.add_param("a", Tensor::zeros(3, 2));
        s.set_dense_grads(true);
        assert!(s.dirty(a).is_dense());
        let mut visits = 0;
        s.for_dirty_rows(a, |_, _| {
            visits += 1;
            false
        });
        assert_eq!(visits, 3, "ablation arm sweeps the full table");
        assert!(
            s.dirty(a).is_dense(),
            "ablation arm stays dense after the sweep"
        );
    }

    #[test]
    fn dense_grads_mode_forces_mark_all() {
        let mut s = ParamStore::new();
        let a = s.add_param("a", Tensor::zeros(3, 1));
        s.set_dense_grads(true);
        assert!(s.dense_grads());
        assert!(s.touched(a).is_dense());
        s.zero_grads();
        assert!(s.touched(a).is_dense(), "dense mode survives zero_grads");
        s.touch(a, &[0]);
        assert!(s.touched(a).is_dense());
        let b = s.add_param("b", Tensor::zeros(2, 1));
        assert!(s.touched(b).is_dense(), "late params start dense too");
    }
}
