//! Entity-count scaling of the per-batch training step — the touched-row
//! gradient contract's acceptance bench.
//!
//! The paper's premise is that TransX training is row-sparse: a batch of
//! `B` triples touches `O(B)` embedding rows out of `N`. With the
//! touched-row pipeline (sparse `zero_grads`, listed backward kernels,
//! touched-row SGD), per-batch step time depends on the **batch**, not the
//! table: the `sparse` arm must stay flat (±20%) across a 10k → 1M entity
//! sweep at fixed batch size. The `dense-grads` ablation arm
//! (`TrainConfig::dense_grads` / `ParamStore::set_dense_grads`, the same
//! switch as `sptx train --dense-grads true`) restores the pre-contract
//! full-table sweeps and must grow roughly linearly in `N` — the two arms
//! are bit-identical in results (see `tests/sparse_grad_properties.rs`),
//! so the gap is pure bookkeeping cost.
//!
//! Two benchmark groups share the controlled batch:
//!
//! * `scale` — one synchronous training step (zero grads, tape reset,
//!   forward, loss, backward, SGD) on a single fixed-size batch. Per-epoch
//!   model constraints (entity renormalization) are excluded to isolate the
//!   *per-batch* cost the gradient contract bounds.
//! * `scale_epoch` — a whole epoch (the same triples split into 8 batches)
//!   **including** `end_epoch()` renormalization. With the touched-row
//!   dirty sets the renorm sweep visits `O(batch · epochs)` rows, so the
//!   `sparse` arm stays flat (±20%) across the sweep; the `dense-grads`
//!   ablation re-marks every row dirty each step and its `O(N · d)`
//!   full-table renorm grows roughly linearly in `N`. (The first epoch
//!   after construction renormalizes every row — all rows start dirty —
//!   and criterion's warm-up absorbs it.)
//!
//! **Controlled variable:** the batch is held **byte-identical** across the
//! sweep — every dataset uses the same triples over entities `0..10k`
//! (negatives included), and only the declared entity count (and therefore
//! the embedding-table height) grows. Sampling triples from the full range
//! instead would shrink duplicate-row collisions and scatter the touched
//! rows across a larger working set as `N` grows — real effects, but
//! cache-locality ones that any gather-based implementation pays per
//! *distinct touched row*; the contract under test is about `O(N)`
//! full-table sweeps, so the sweep isolates exactly those.
//!
//! Run with `cargo bench -p sptx-bench --bench scale`. The flat-vs-linear
//! separation shows on any machine — it is allocator/memory-bound, not
//! core-count-bound.

use std::time::Duration;

use criterion::{criterion_group, BenchmarkId, Criterion, Throughput};
use kg::synthetic::SyntheticKgBuilder;
use kg::{BatchPlan, UniformSampler};
use sptransx::{KgeModel, SpTransE, TrainConfig};
use tensor::optim::{Optimizer, Sgd};
use tensor::Graph;
use xparallel::PoolHandle;

/// Positive triples per batch; the whole (train-split) plan is one batch so
/// every size in the sweep steps over an identically-sized batch.
const TRIPLES: usize = 2_048;
const DIM: usize = 16;
/// Entity range the fixed batch actually references (see module docs).
const ACTIVE_ENTITIES: usize = 10_000;

fn bench_entity_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("scale");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(2));
    group.warm_up_time(Duration::from_millis(300));

    // One batch over entities 0..10k, reused verbatim at every table size.
    let base = SyntheticKgBuilder::new(ACTIVE_ENTITIES, 8)
        .triples(TRIPLES)
        .seed(0x5CA1E)
        .build();
    let known = base.all_known();
    // Negatives stay inside the active range too, keeping the batch
    // byte-identical while the table grows.
    let sampler = UniformSampler::new(ACTIVE_ENTITIES);

    for &(entities, label) in &[(10_000usize, "10k"), (100_000, "100k"), (1_000_000, "1M")] {
        let mut ds = base.clone();
        ds.num_entities = entities;
        for dense_grads in [false, true] {
            let cfg = TrainConfig {
                epochs: 1,
                batch_size: TRIPLES, // one batch per epoch: fixed batch size
                dim: DIM,
                rel_dim: DIM / 2,
                lr: 0.01,
                dense_grads,
                ..Default::default()
            };
            let plan = BatchPlan::build(&ds.train, &known, &sampler, cfg.batch_size, cfg.seed);
            let batch_rows = plan.batch(0).len() as u64;
            let mut model = SpTransE::from_config(&ds, &cfg).expect("model");
            model.attach_plan(&plan).expect("plan");
            model.store_mut().set_dense_grads(cfg.dense_grads);
            let mut opt = Sgd::new(cfg.lr);
            opt.set_pool(&PoolHandle::global());
            let mut graph = Graph::new();

            let arm = if dense_grads { "dense-grads" } else { "sparse" };
            group.throughput(Throughput::Elements(batch_rows));
            group.bench_with_input(BenchmarkId::new(arm, label), &entities, |b, _| {
                b.iter(|| {
                    model.store_mut().zero_grads();
                    graph.reset();
                    let (pos, neg) = model.score_batch(&mut graph, 0);
                    let loss = graph.margin_ranking_loss(pos, neg, cfg.margin);
                    graph.backward(loss, model.store_mut());
                    opt.step(model.store_mut());
                });
            });
        }
    }
    group.finish();
}

/// Positive triples per `scale_epoch` batch: the same 2 048-triple plan as
/// the per-batch group, split into 8 batches so the epoch loop exercises
/// multi-batch dirty-set accumulation before the renorm sweep.
const EPOCH_BATCH: usize = 256;

fn bench_epoch_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("scale_epoch");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(2));
    group.warm_up_time(Duration::from_millis(300));

    let base = SyntheticKgBuilder::new(ACTIVE_ENTITIES, 8)
        .triples(TRIPLES)
        .seed(0x5CA1E)
        .build();
    let known = base.all_known();
    let sampler = UniformSampler::new(ACTIVE_ENTITIES);

    for &(entities, label) in &[(10_000usize, "10k"), (100_000, "100k"), (1_000_000, "1M")] {
        let mut ds = base.clone();
        ds.num_entities = entities;
        for dense_grads in [false, true] {
            let cfg = TrainConfig {
                epochs: 1,
                batch_size: EPOCH_BATCH,
                dim: DIM,
                rel_dim: DIM / 2,
                lr: 0.01,
                dense_grads,
                ..Default::default()
            };
            let plan = BatchPlan::build(&ds.train, &known, &sampler, cfg.batch_size, cfg.seed);
            let epoch_rows: u64 = (0..plan.num_batches())
                .map(|b| plan.batch(b).len() as u64)
                .sum();
            let mut model = SpTransE::from_config(&ds, &cfg).expect("model");
            model.attach_plan(&plan).expect("plan");
            model.store_mut().set_dense_grads(cfg.dense_grads);
            let mut opt = Sgd::new(cfg.lr);
            opt.set_pool(&PoolHandle::global());
            let mut graph = Graph::new();

            let arm = if dense_grads { "dense-grads" } else { "sparse" };
            group.throughput(Throughput::Elements(epoch_rows));
            group.bench_with_input(BenchmarkId::new(arm, label), &entities, |b, _| {
                b.iter(|| {
                    for bi in 0..model.num_batches() {
                        model.store_mut().zero_grads();
                        graph.reset();
                        let (pos, neg) = model.score_batch(&mut graph, bi);
                        let loss = graph.margin_ranking_loss(pos, neg, cfg.margin);
                        graph.backward(loss, model.store_mut());
                        opt.step(model.store_mut());
                    }
                    model.end_epoch();
                });
            });
        }
    }
    group.finish();
}

/// The largest per-batch working set of a plan: distinct stacked-matrix rows
/// (`h`, `t`, `N + r`) across a batch's positive and negative triples. The
/// paged arm's cache budget must be at least this to pin a batch.
fn max_batch_working_set(plan: &BatchPlan, num_entities: usize) -> usize {
    (0..plan.num_batches())
        .map(|i| {
            let batch = plan.batch(i);
            let mut rows: Vec<u32> = Vec::with_capacity(6 * batch.len());
            for store in [&batch.pos, &batch.neg] {
                rows.extend_from_slice(store.heads());
                rows.extend_from_slice(store.tails());
                rows.extend(store.rels().iter().map(|&r| num_entities as u32 + r));
            }
            rows.sort_unstable();
            rows.dedup();
            rows.len()
        })
        .max()
        .unwrap_or(0)
}

/// Out-of-core arm: the same epoch loop as `scale_epoch`'s sparse arm, but
/// with the embedding table paged out to backing storage and only a
/// budgeted row cache resident. The budget sweeps 1% / 10% / 100% of the
/// table (clamped from below to the batch working set — a smaller cache
/// cannot pin a batch and is a hard error by contract), measuring how the
/// paging overhead (LRU bookkeeping, row copies, dirty write-backs)
/// shrinks as the cache approaches the table. In-RAM `VecStorage` backs
/// the table so the sweep isolates pager cost from disk latency; arithmetic
/// is bit-identical to the resident arms by the paging contract.
///
/// The tightest budget additionally runs a `1pct-prefetch` arm with the
/// background I/O worker staging batch *b+1*'s working set while batch *b*
/// trains — same epoch loop, same bytes, reads moved off the training
/// thread (the disk-backed sync-vs-prefetch comparison lives in the
/// `BENCH_paged.json` pass, where the pagefile makes the overlap visible).
fn bench_paged_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("scale_paged");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(2));
    group.warm_up_time(Duration::from_millis(300));

    let base = SyntheticKgBuilder::new(ACTIVE_ENTITIES, 8)
        .triples(TRIPLES)
        .seed(0x5CA1E)
        .build();
    let known = base.all_known();
    let sampler = UniformSampler::new(ACTIVE_ENTITIES);

    for &(entities, label) in &[(10_000usize, "10k"), (100_000, "100k"), (1_000_000, "1M")] {
        let mut ds = base.clone();
        ds.num_entities = entities;
        let cfg = TrainConfig {
            epochs: 1,
            batch_size: EPOCH_BATCH,
            dim: DIM,
            rel_dim: DIM / 2,
            lr: 0.01,
            ..Default::default()
        };
        let plan = BatchPlan::build(&ds.train, &known, &sampler, cfg.batch_size, cfg.seed);
        let epoch_rows: u64 = (0..plan.num_batches())
            .map(|b| plan.batch(b).len() as u64)
            .sum();
        let working_set = max_batch_working_set(&plan, entities);

        for &(pct, prefetch, pct_label) in &[
            (1usize, false, "1pct"),
            (1, true, "1pct-prefetch"),
            (10, false, "10pct"),
            (100, false, "100pct"),
        ] {
            let mut model = SpTransE::from_config(&ds, &cfg).expect("model");
            model.attach_plan(&plan).expect("plan");
            let emb = model.embedding_param();
            let (rows, cols) = model.store().param_shape(emb);
            let budget = (rows * pct / 100).max(working_set).min(rows);
            model
                .store_mut()
                .page_out(emb, Box::new(tensor::VecStorage::new(rows, cols)), budget)
                .expect("page out");
            if prefetch {
                model.set_prefetch(true).expect("prefetch");
            }
            let mut opt = Sgd::new(cfg.lr);
            opt.set_pool(&PoolHandle::global());
            let mut graph = Graph::new();

            group.throughput(Throughput::Elements(epoch_rows));
            group.bench_with_input(BenchmarkId::new(pct_label, label), &entities, |b, _| {
                b.iter(|| {
                    for bi in 0..model.num_batches() {
                        model.store_mut().zero_grads();
                        model.page_in_batch(bi).expect("page in");
                        graph.reset();
                        let (pos, neg) = model.score_batch(&mut graph, bi);
                        let loss = graph.margin_ranking_loss(pos, neg, cfg.margin);
                        graph.backward(loss, model.store_mut());
                        opt.step(model.store_mut());
                    }
                    model.end_epoch();
                });
            });
        }
    }
    group.finish();
}

/// Post-Criterion JSON pass: re-times one epoch (after one warm-up epoch)
/// of the sparse and dense-grads arms at each table size with a plain
/// `Instant`, and writes the records to `BENCH_scale.json` (see
/// `sptx_bench::json`) — plain numbers scripts can diff, next to
/// Criterion's distribution estimates.
fn emit_json() {
    use sptx_bench::json::{write_bench_json, JsonObject};

    let base = SyntheticKgBuilder::new(ACTIVE_ENTITIES, 8)
        .triples(TRIPLES)
        .seed(0x5CA1E)
        .build();
    let known = base.all_known();
    let sampler = UniformSampler::new(ACTIVE_ENTITIES);
    let mut records = Vec::new();

    for &(entities, label) in &[(10_000usize, "10k"), (100_000, "100k"), (1_000_000, "1M")] {
        let mut ds = base.clone();
        ds.num_entities = entities;
        for dense_grads in [false, true] {
            let cfg = TrainConfig {
                epochs: 1,
                batch_size: EPOCH_BATCH,
                dim: DIM,
                rel_dim: DIM / 2,
                lr: 0.01,
                dense_grads,
                ..Default::default()
            };
            let plan = BatchPlan::build(&ds.train, &known, &sampler, cfg.batch_size, cfg.seed);
            let mut model = SpTransE::from_config(&ds, &cfg).expect("model");
            model.attach_plan(&plan).expect("plan");
            model.store_mut().set_dense_grads(cfg.dense_grads);
            let mut opt = Sgd::new(cfg.lr);
            opt.set_pool(&PoolHandle::global());
            let mut graph = Graph::new();

            let epoch = |model: &mut SpTransE, graph: &mut Graph, opt: &mut Sgd| {
                for bi in 0..model.num_batches() {
                    model.store_mut().zero_grads();
                    graph.reset();
                    let (pos, neg) = model.score_batch(graph, bi);
                    let loss = graph.margin_ranking_loss(pos, neg, cfg.margin);
                    graph.backward(loss, model.store_mut());
                    opt.step(model.store_mut());
                }
                model.end_epoch();
            };
            // Warm-up epoch: first-touch renormalization (all rows start
            // dirty) and arena growth happen here, not in the measurement.
            epoch(&mut model, &mut graph, &mut opt);
            let t = std::time::Instant::now();
            epoch(&mut model, &mut graph, &mut opt);
            let ms = t.elapsed().as_secs_f64() * 1e3;

            records.push(
                JsonObject::new()
                    .str("bench", "scale_epoch")
                    .str("arm", if dense_grads { "dense-grads" } else { "sparse" })
                    .str("entities", label)
                    .int("entity_count", entities as u64)
                    .num("ms_per_epoch", ms),
            );
        }
    }

    match write_bench_json("scale", &records) {
        Ok(path) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("could not write BENCH_scale.json: {e}"),
    }
}

/// Epochs in the timed window of the paged JSON pass. One warm-up epoch
/// precedes it — the first `end_epoch` renormalizes every row (all rows
/// start dirty), a one-time full-table page-through that must not pollute
/// steady-state numbers or counters.
const PAGED_TIMED_EPOCHS: u32 = 5;

/// Out-of-core JSON pass → `BENCH_paged.json`: one warm-up epoch plus a
/// [`PAGED_TIMED_EPOCHS`]-epoch `Instant`-timed window per arm, across the
/// budget sweep (in-RAM backing) and a disk-backed (`FileRowStorage`
/// pagefile) sync-vs-prefetch pair at the tightest budget — the comparison
/// the prefetch pipeline exists for. Each record carries the per-epoch
/// time, its cost relative to the resident sparse epoch at the same table
/// size, and the pager's prefetch counters over the timed window only
/// (bit-identity across arms is the paging contract, enforced by the test
/// suites; this pass only reports time).
fn emit_json_paged() {
    use sptransx::FileRowStorage;
    use sptx_bench::json::{write_bench_json, JsonObject};

    let base = SyntheticKgBuilder::new(ACTIVE_ENTITIES, 8)
        .triples(TRIPLES)
        .seed(0x5CA1E)
        .build();
    let known = base.all_known();
    let sampler = UniformSampler::new(ACTIVE_ENTITIES);
    let mut records = Vec::new();
    let pagefile =
        std::env::temp_dir().join(format!("sptx_bench_paged_{}.bin", std::process::id()));

    for &(entities, label) in &[(10_000usize, "10k"), (100_000, "100k"), (1_000_000, "1M")] {
        let mut ds = base.clone();
        ds.num_entities = entities;
        let cfg = TrainConfig {
            epochs: 1,
            batch_size: EPOCH_BATCH,
            dim: DIM,
            rel_dim: DIM / 2,
            lr: 0.01,
            ..Default::default()
        };
        let plan = BatchPlan::build(&ds.train, &known, &sampler, cfg.batch_size, cfg.seed);
        let working_set = max_batch_working_set(&plan, entities);

        let epoch = |model: &mut SpTransE, graph: &mut Graph, opt: &mut Sgd| {
            for bi in 0..model.num_batches() {
                model.store_mut().zero_grads();
                model.page_in_batch(bi).expect("page in");
                graph.reset();
                let (pos, neg) = model.score_batch(graph, bi);
                let loss = graph.margin_ranking_loss(pos, neg, cfg.margin);
                graph.backward(loss, model.store_mut());
                opt.step(model.store_mut());
            }
            model.end_epoch();
        };

        // Resident sparse epoch at this table size: the denominator for
        // every arm's relative-cost column.
        let resident_ms = {
            let mut model = SpTransE::from_config(&ds, &cfg).expect("model");
            model.attach_plan(&plan).expect("plan");
            let mut opt = Sgd::new(cfg.lr);
            opt.set_pool(&PoolHandle::global());
            let mut graph = Graph::new();
            epoch(&mut model, &mut graph, &mut opt);
            let t = std::time::Instant::now();
            for _ in 0..PAGED_TIMED_EPOCHS {
                epoch(&mut model, &mut graph, &mut opt);
            }
            t.elapsed().as_secs_f64() * 1e3 / f64::from(PAGED_TIMED_EPOCHS)
        };

        // `pct = 0` pins the budget to the batch working set itself — the
        // tightest legal cache. The percentage budgets grow with the table
        // while the (byte-identical) batch's traffic does not, so at 1M
        // entities even 1 % already holds the whole active row range; the
        // `ws` arms keep the eviction churn — the I/O-bound regime
        // prefetch exists for — at every table size.
        for &(disk, pct, prefetch, arm) in &[
            (false, 1usize, false, "ram-1pct"),
            (false, 1, true, "ram-1pct-prefetch"),
            (false, 10, false, "ram-10pct"),
            (false, 100, false, "ram-100pct"),
            (true, 1, false, "disk-1pct"),
            (true, 1, true, "disk-1pct-prefetch"),
            (true, 0, false, "disk-ws"),
            (true, 0, true, "disk-ws-prefetch"),
        ] {
            let mut model = SpTransE::from_config(&ds, &cfg).expect("model");
            model.attach_plan(&plan).expect("plan");
            let emb = model.embedding_param();
            let (rows, cols) = model.store().param_shape(emb);
            let budget = (rows * pct / 100).max(working_set).min(rows);
            let storage: Box<dyn tensor::RowStorage> = if disk {
                Box::new(FileRowStorage::create(&pagefile, rows, cols).expect("pagefile"))
            } else {
                Box::new(tensor::VecStorage::new(rows, cols))
            };
            model
                .store_mut()
                .page_out(emb, storage, budget)
                .expect("page out");
            if prefetch {
                model.set_prefetch(true).expect("prefetch");
            }
            let mut opt = Sgd::new(cfg.lr);
            opt.set_pool(&PoolHandle::global());
            let mut graph = Graph::new();
            epoch(&mut model, &mut graph, &mut opt);
            let warm = model.store().pager(emb).expect("paged").prefetch_stats();
            let warm_io = model.prefetch_timing().unwrap_or_default();
            let t = std::time::Instant::now();
            for _ in 0..PAGED_TIMED_EPOCHS {
                epoch(&mut model, &mut graph, &mut opt);
            }
            let ms = t.elapsed().as_secs_f64() * 1e3 / f64::from(PAGED_TIMED_EPOCHS);
            let pstats = model.store().pager(emb).expect("paged").prefetch_stats();
            let io = model.prefetch_timing().unwrap_or_default();

            records.push(
                JsonObject::new()
                    .str("bench", "scale_paged")
                    .str("arm", arm)
                    .str("entities", label)
                    .int("entity_count", entities as u64)
                    .int("budget_rows", budget as u64)
                    .int("epochs_timed", u64::from(PAGED_TIMED_EPOCHS))
                    .num("ms_per_epoch", ms)
                    .num("cost_vs_resident", ms / resident_ms)
                    .int("prefetch_admitted", pstats.admitted - warm.admitted)
                    .int(
                        "prefetch_demand_loads",
                        pstats.demand_loads - warm.demand_loads,
                    )
                    .int("prefetch_wasted", pstats.wasted - warm.wasted)
                    .num("worker_read_ms", (io.0 - warm_io.0).as_secs_f64() * 1e3)
                    .num("train_stall_ms", (io.1 - warm_io.1).as_secs_f64() * 1e3),
            );
        }
    }
    let _ = std::fs::remove_file(&pagefile);

    match write_bench_json("paged", &records) {
        Ok(path) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("could not write BENCH_paged.json: {e}"),
    }
}

criterion_group!(
    benches,
    bench_entity_scaling,
    bench_epoch_scaling,
    bench_paged_scaling
);

fn main() {
    benches();
    emit_json();
    emit_json_paged();
}
