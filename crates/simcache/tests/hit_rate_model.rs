//! Hit-rate model tests: replay short traces whose hit counts can be
//! computed by hand, so the simulator's LRU/indexing behaviour is pinned
//! exactly — the property the serving layer relies on when it cross-validates
//! its query cache against a `simcache` model.

use simcache::trace::{replay_gather, EMB_BASE, OUT_BASE};
use simcache::{Access, Cache, CacheConfig, CacheStats, Hierarchy};

/// A fully-associative LRU with `lines` one-line slots — the configuration
/// the serving layer uses to model its query cache.
fn fully_assoc(lines: usize) -> Cache {
    Cache::new(CacheConfig {
        size_bytes: lines * 64,
        line_bytes: 64,
        ways: lines,
    })
}

#[test]
fn cycling_one_more_line_than_capacity_never_hits() {
    // Capacity 3, cyclic sweep over 4 distinct lines: classic LRU worst
    // case — every access evicts the line needed 3 accesses later.
    let mut c = fully_assoc(3);
    for i in 0..40u64 {
        let addr = (i % 4) * 64;
        assert_eq!(c.access(addr), Access::Miss, "access {i}");
    }
    assert_eq!(
        c.stats(),
        CacheStats {
            hits: 0,
            misses: 40
        }
    );
    assert_eq!(c.stats().miss_rate(), 1.0);
}

#[test]
fn cycling_exactly_capacity_hits_after_warmup() {
    // Capacity 3, cyclic sweep over 3 lines: 3 cold misses, then 100% hits.
    let mut c = fully_assoc(3);
    for i in 0..30u64 {
        let got = c.access((i % 3) * 64);
        let want = if i < 3 { Access::Miss } else { Access::Hit };
        assert_eq!(got, want, "access {i}");
    }
    let s = c.stats();
    assert_eq!((s.hits, s.misses), (27, 3));
    assert_eq!(s.accesses(), 30);
    assert!((s.miss_rate() - 0.1).abs() < 1e-12);
}

#[test]
fn lru_victim_is_least_recently_used_not_least_recently_inserted() {
    let mut c = fully_assoc(2);
    assert_eq!(c.access(0), Access::Miss); // {0}
    assert_eq!(c.access(64), Access::Miss); // {0, 64}
    assert_eq!(c.access(0), Access::Hit); // refreshes 0 => 64 is LRU
    assert_eq!(c.access(128), Access::Miss); // evicts 64, not 0
    assert_eq!(c.access(0), Access::Hit); // 0 survived
    assert_eq!(c.access(64), Access::Miss); // 64 did not
}

#[test]
fn same_line_accesses_hit_regardless_of_offset() {
    // Two addresses in the same 64-byte line are one cache line.
    let mut c = fully_assoc(4);
    assert_eq!(c.access(256), Access::Miss);
    assert_eq!(c.access(256 + 63), Access::Hit);
    assert_eq!(c.access(256 + 64), Access::Miss); // next line
}

#[test]
fn set_indexing_isolates_conflicting_lines() {
    // 2 sets x 1 way, 64-byte lines: addresses 0 and 128 map to set 0 and
    // conflict; 64 maps to set 1 and is untouched by their eviction war.
    let mut c = Cache::new(CacheConfig {
        size_bytes: 2 * 64,
        line_bytes: 64,
        ways: 1,
    });
    assert_eq!(c.access(0), Access::Miss);
    assert_eq!(c.access(64), Access::Miss);
    assert_eq!(c.access(128), Access::Miss); // evicts 0 from set 0
    assert_eq!(c.access(64), Access::Hit); // set 1 unaffected
    assert_eq!(c.access(0), Access::Miss); // was evicted
}

#[test]
fn gather_trace_hit_count_is_hand_computable() {
    // dim = 16 floats = 64 bytes = exactly one line per embedding row and
    // one line per output row. Indices [5, 9, 5, 9]:
    //   item 0: emb row 5 miss, out row 0 miss
    //   item 1: emb row 9 miss, out row 1 miss
    //   item 2: emb row 5 HIT,  out row 2 miss
    //   item 3: emb row 9 HIT,  out row 3 miss
    // => L1 sees 8 accesses, 6 misses, 2 hits. L2 sees the 6 L1 misses,
    // all distinct lines => all miss.
    let mut h = Hierarchy::epyc_like();
    replay_gather(&mut h, &[5, 9, 5, 9], 16);
    let l1 = h.l1.stats();
    assert_eq!((l1.accesses(), l1.hits, l1.misses), (8, 2, 6));
    let l2 = h.l2.stats();
    assert_eq!((l2.accesses(), l2.hits, l2.misses), (6, 0, 6));
    assert_eq!(h.overall_miss_rate(), 0.75);
    // Sanity: the layout really does separate the two structures.
    const _: () = assert!(OUT_BASE > EMB_BASE);
}

#[test]
fn reset_stats_clears_counters_but_not_contents() {
    let mut c = fully_assoc(2);
    c.access(0);
    c.access(64);
    c.reset_stats();
    assert_eq!(c.stats().accesses(), 0);
    // Contents survive the reset: both lines still hit.
    assert_eq!(c.access(0), Access::Hit);
    assert_eq!(c.access(64), Access::Hit);
}
