//! Dataset preparation, model dispatch, and table formatting shared by the
//! per-figure benchmark binaries.
//!
//! Every binary accepts two environment knobs:
//!
//! * `SPTX_SCALE` — divisor applied to the paper's dataset sizes
//!   (default 200; `1` reproduces full-size graphs, which takes hours);
//! * `SPTX_EPOCHS` — training epochs per measurement (default 5; the paper
//!   uses 200).

use kg::synthetic::{PaperDatasetSpec, COVID19_SPEC, PAPER_DATASETS};
use kg::Dataset;
use sptransx::{
    DenseTorusE, DenseTransE, DenseTransH, DenseTransR, KgeModel, SpTorusE, SpTransE, SpTransH,
    SpTransR, TrainConfig, TrainReport, Trainer,
};

/// Default dataset scale divisor.
pub const DEFAULT_SCALE: usize = 200;
/// Default epochs per measurement.
pub const DEFAULT_EPOCHS: usize = 5;

/// Reads `SPTX_SCALE`.
pub fn scale_from_env() -> usize {
    std::env::var("SPTX_SCALE")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&s| s >= 1)
        .unwrap_or(DEFAULT_SCALE)
}

/// Reads `SPTX_EPOCHS`.
pub fn epochs_from_env() -> usize {
    std::env::var("SPTX_EPOCHS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&e| e >= 1)
        .unwrap_or(DEFAULT_EPOCHS)
}

/// The four models of the paper's headline evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ModelKind {
    /// TransE (`h + r − t`).
    TransE,
    /// TransR (relation-space projection).
    TransR,
    /// TransH (hyperplane translation).
    TransH,
    /// TorusE (wraparound metric).
    TorusE,
}

impl ModelKind {
    /// All four, in the paper's column order.
    pub const ALL: [ModelKind; 4] = [
        ModelKind::TransE,
        ModelKind::TransR,
        ModelKind::TransH,
        ModelKind::TorusE,
    ];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            ModelKind::TransE => "TransE",
            ModelKind::TransR => "TransR",
            ModelKind::TransH => "TransH",
            ModelKind::TorusE => "TorusE",
        }
    }
}

/// Sparse (SpTransX) or dense-baseline implementation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Variant {
    /// The paper's contribution.
    Sparse,
    /// The gather/scatter baseline (TorchKGE-style).
    Dense,
}

impl Variant {
    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            Variant::Sparse => "SpTransX",
            Variant::Dense => "Baseline",
        }
    }
}

/// Trains `kind`/`variant` on `dataset` and returns the report.
///
/// # Panics
///
/// Panics on configuration errors (benchmark configs are controlled).
pub fn run_model(
    kind: ModelKind,
    variant: Variant,
    dataset: &Dataset,
    config: &TrainConfig,
) -> TrainReport {
    match (kind, variant) {
        (ModelKind::TransE, Variant::Sparse) => {
            train(SpTransE::from_config(dataset, config), dataset, config)
        }
        (ModelKind::TransE, Variant::Dense) => {
            train(DenseTransE::from_config(dataset, config), dataset, config)
        }
        (ModelKind::TransR, Variant::Sparse) => {
            train(SpTransR::from_config(dataset, config), dataset, config)
        }
        (ModelKind::TransR, Variant::Dense) => {
            train(DenseTransR::from_config(dataset, config), dataset, config)
        }
        (ModelKind::TransH, Variant::Sparse) => {
            train(SpTransH::from_config(dataset, config), dataset, config)
        }
        (ModelKind::TransH, Variant::Dense) => {
            train(DenseTransH::from_config(dataset, config), dataset, config)
        }
        (ModelKind::TorusE, Variant::Sparse) => {
            train(SpTorusE::from_config(dataset, config), dataset, config)
        }
        (ModelKind::TorusE, Variant::Dense) => {
            train(DenseTorusE::from_config(dataset, config), dataset, config)
        }
    }
}

fn train<M: KgeModel>(
    model: sptransx::Result<M>,
    dataset: &Dataset,
    config: &TrainConfig,
) -> TrainReport {
    let model = model.expect("benchmark config must be valid");
    let mut trainer = Trainer::new(model, dataset, config).expect("plan construction");
    trainer.run().expect("training")
}

/// Generates the scaled stand-ins for the paper's seven datasets (Table 3).
pub fn paper_datasets(scale: usize) -> Vec<(PaperDatasetSpec, Dataset)> {
    PAPER_DATASETS
        .iter()
        .map(|spec| (*spec, spec.generate(scale, 0xBEEF)))
        .collect()
}

/// Generates the scaled COVID-19 graph of Appendix F.
pub fn covid_dataset(scale: usize) -> Dataset {
    COVID19_SPEC.generate(scale, 0xC0FFEE)
}

/// A benchmark TrainConfig with the paper's optimizer settings (§5.3) and a
/// per-run dimension/batch override.
pub fn bench_config(dim: usize, rel_dim: usize, batch_size: usize, epochs: usize) -> TrainConfig {
    TrainConfig {
        epochs,
        batch_size,
        dim,
        rel_dim,
        lr: 4e-4,
        margin: 0.5,
        ..Default::default()
    }
}

/// Prints a row-major text table with a header and aligned columns.
pub fn print_table(title: &str, header: &[&str], rows: &[Vec<String>]) {
    println!("\n## {title}\n");
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let line: Vec<String> = header
        .iter()
        .enumerate()
        .map(|(i, h)| format!("{:<w$}", h, w = widths[i]))
        .collect();
    println!("| {} |", line.join(" | "));
    let sep: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
    println!("|-{}-|", sep.join("-|-"));
    for row in rows {
        let cells: Vec<String> = row
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:<w$}", c, w = widths.get(i).copied().unwrap_or(0)))
            .collect();
        println!("| {} |", cells.join(" | "));
    }
}

/// Formats a duration in seconds with two decimals.
pub fn secs(d: std::time::Duration) -> String {
    format!("{:.3}", d.as_secs_f64())
}

/// Formats a byte count in MiB with two decimals.
pub fn mib(bytes: u64) -> String {
    format!("{:.2}", bytes as f64 / (1024.0 * 1024.0))
}

/// Formats a speedup/slowdown factor like the paper's bar labels.
pub fn factor(base: f64, other: f64) -> String {
    if base <= 0.0 {
        return "-".to_string();
    }
    format!("{:.1}x", other / base)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn model_dispatch_trains_every_pair() {
        let spec = PaperDatasetSpec::by_name("WN18RR").unwrap();
        let ds = spec.generate(2000, 1);
        let cfg = bench_config(8, 4, 64, 1);
        for kind in ModelKind::ALL {
            for variant in [Variant::Sparse, Variant::Dense] {
                let report = run_model(kind, variant, &ds, &cfg);
                assert_eq!(report.epoch_losses.len(), 1, "{kind:?}/{variant:?}");
            }
        }
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(secs(std::time::Duration::from_millis(1500)), "1.500");
        assert_eq!(mib(1024 * 1024), "1.00");
        assert_eq!(factor(2.0, 5.0), "2.5x");
        assert_eq!(factor(0.0, 5.0), "-");
    }

    #[test]
    fn env_knob_defaults() {
        // Not set in the test environment.
        assert!(scale_from_env() >= 1);
        assert!(epochs_from_env() >= 1);
    }
}
