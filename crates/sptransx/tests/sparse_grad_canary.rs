//! Untouched rows are **never written** by the sparse gradient pipeline.
//!
//! Strategy: fill every parameter row the batch cannot reach with a canary
//! bit pattern (values *and* gradients), run forward/backward/optimizer
//! steps through the touched-row path, and assert the canary bits survive
//! untouched — while `tensor::memory::alloc_count` stays flat, proving the
//! sparse sweeps neither materialize dense temporaries nor fall back to a
//! full-table pass.
//!
//! ONE test fn on purpose: `alloc_count()` is process-global and sibling
//! tests in the same binary run concurrently (see
//! `tests/alloc_regression.rs` for the same convention).

use std::sync::Arc;

use sparse::incidence::{hrt, IncidencePair, TailSign};
use tensor::optim::{Adagrad, Optimizer, Sgd};
use tensor::{memory, Graph, ParamStore, Tensor};

/// A value no training arithmetic produces: exact bits we can assert on.
const CANARY: f32 = -1234.5678;

#[test]
fn untouched_rows_keep_canary_bits_and_sparse_steps_do_not_allocate() {
    // 64 entities + 4 relations stacked, dim 6. The batch only references
    // entities 0..8 and relation 0 (column 64): rows 8..64 and 65..68 are
    // unreachable.
    let (n, r, d) = (64usize, 4usize, 6usize);
    let mut store = ParamStore::new();
    // Varied init: a uniform fill would make the pos/neg gradient
    // contributions cancel exactly and leave nothing to train.
    let mut init = Tensor::zeros(n + r, d);
    for i in 0..n + r {
        for j in 0..d {
            init.set(i, j, 0.02 * (i as f32 + 1.0) + 0.003 * j as f32);
        }
    }
    let row0_before: Vec<u32> = init.row(0).iter().map(|x| x.to_bits()).collect();
    let emb = store.add_param("embeddings", init);
    let touched_max = 8u32;

    // Canary every unreachable row's value; gradients start zero (the
    // touched-row invariant) but we canary a *copy* to diff against.
    for row in touched_max as usize..n {
        store.value_mut(emb).row_mut(row).fill(CANARY);
    }
    for row in n + 1..n + r {
        store.value_mut(emb).row_mut(row).fill(CANARY);
    }

    let heads: Vec<u32> = vec![0, 1, 2, 3];
    let rels: Vec<u32> = vec![0, 0, 0, 0];
    let tails: Vec<u32> = vec![4, 5, 6, 7];
    let neg_tails: Vec<u32> = vec![5, 6, 7, 4];
    let pos = Arc::new(IncidencePair::new(
        hrt(n, r, &heads, &rels, &tails, TailSign::Negative).unwrap(),
    ));
    let neg = Arc::new(IncidencePair::new(
        hrt(n, r, &heads, &rels, &neg_tails, TailSign::Negative).unwrap(),
    ));

    let mut graph = Graph::new();
    let mut sgd = Sgd::new(0.05);
    let mut adagrad = Adagrad::new(0.05);

    let step = |graph: &mut Graph, store: &mut ParamStore, opt: &mut dyn Optimizer| {
        store.zero_grads();
        graph.reset();
        let pe = graph.spmm(store, emb, pos.clone());
        let ps = graph.l2_norm_rows(pe, 1e-9);
        // A gather rides along so the scatter-add path is exercised too.
        let ge = graph.gather(store, emb, heads.clone());
        let gs = graph.l2_norm_rows(ge, 1e-9);
        let extra = graph.scale(gs, 0.0);
        let ne = graph.spmm(store, emb, neg.clone());
        let ns0 = graph.l2_norm_rows(ne, 1e-9);
        let ns = graph.add(ns0, extra);
        let loss = graph.margin_ranking_loss(ps, ns, 5.0);
        graph.backward(loss, store);
        opt.step(store);
    };

    // Warm-up batch populates the graph arena, the row-set capacity, and
    // the Adagrad state; everything after it must be allocation-free.
    step(&mut graph, &mut store, &mut sgd);
    step(&mut graph, &mut store, &mut adagrad);

    let allocs_before = memory::alloc_count();
    for _ in 0..5 {
        step(&mut graph, &mut store, &mut sgd);
        step(&mut graph, &mut store, &mut adagrad);
    }
    assert_eq!(
        memory::alloc_count(),
        allocs_before,
        "steady-state sparse steps must not allocate tensor buffers \
         (a dense temporary or full-table fallback would)"
    );

    // The row set is sparse and bounded by the batch's reach.
    let rows = store
        .touched(emb)
        .as_slice()
        .expect("tracked training must keep the row set sparse");
    assert!(!rows.is_empty());
    assert!(
        rows.iter().all(|&row| row < touched_max || row == n as u32),
        "row set {rows:?} exceeds the batch's reach"
    );

    // Canary check: every unreachable value row still holds the exact
    // canary bits, and every unreachable gradient row is exact +0.0.
    let canary_bits = CANARY.to_bits();
    let value = store.value(emb);
    let grad = store.grad(emb);
    for row in (touched_max as usize..n).chain(n + 1..n + r) {
        for (j, x) in value.row(row).iter().enumerate() {
            assert_eq!(
                x.to_bits(),
                canary_bits,
                "value row {row} col {j} was written by the sparse pipeline"
            );
        }
        for (j, g) in grad.row(row).iter().enumerate() {
            assert_eq!(
                g.to_bits(),
                0f32.to_bits(),
                "grad row {row} col {j} is not exact +0.0"
            );
        }
    }
    // Touched rows did train (the canary test is not vacuous).
    assert!(value
        .row(0)
        .iter()
        .zip(&row0_before)
        .any(|(x, before)| x.to_bits() != *before));
}
