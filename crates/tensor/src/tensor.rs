//! The dense tensor type.

use crate::memory;
use crate::Arena;

/// An owned, row-major `rows × cols` matrix of `f32` with tracked allocation.
///
/// `Tensor` is deliberately 2-D: every object in translation-based KGE
/// training is a matrix (embedding tables, batches of expression rows,
/// per-triple score columns). Column vectors are `m × 1` tensors.
///
/// # Examples
///
/// ```
/// use tensor::Tensor;
///
/// let a = Tensor::from_rows(&[[1.0, 2.0], [3.0, 4.0]]);
/// let b = a.map(|x| x * 2.0);
/// assert_eq!(b.row(1), &[6.0, 8.0]);
/// ```
#[derive(Debug, PartialEq)]
pub struct Tensor {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Tensor {
    /// Creates a zero-filled tensor.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        memory::register((rows * cols * 4) as u64);
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates a tensor filled with `value`.
    pub fn full(rows: usize, cols: usize, value: f32) -> Self {
        memory::register((rows * cols * 4) as u64);
        Self {
            rows,
            cols,
            data: vec![value; rows * cols],
        }
    }

    /// Creates a zero-filled tensor, recycling a buffer from `arena` when
    /// one of the right length is pooled (falling back to a fresh, counted
    /// heap allocation otherwise).
    ///
    /// Recycled buffers are zero-filled, so the result is indistinguishable
    /// from [`Tensor::zeros`] — only the allocation traffic differs.
    pub fn zeros_in(arena: &mut Arena, rows: usize, cols: usize) -> Self {
        match arena.take(rows * cols) {
            Some(mut data) => {
                data.fill(0.0);
                Self { rows, cols, data }
            }
            None => Self::zeros(rows, cols),
        }
    }

    /// Creates a tensor with **unspecified contents**, recycling a buffer
    /// from `arena` when possible (a pool miss zero-fills, a hit returns the
    /// previous occupant's stale values).
    ///
    /// This is safe — the buffer is always initialized `f32` data, never
    /// uninitialized memory — but callers **must fully overwrite** the
    /// tensor before reading it, or results become dependent on recycling
    /// history. Reserved for kernels that write every output element (SpMM,
    /// gathers, elementwise maps, row reductions).
    pub fn uninit_in(arena: &mut Arena, rows: usize, cols: usize) -> Self {
        match arena.take(rows * cols) {
            Some(data) => Self { rows, cols, data },
            None => Self::zeros(rows, cols),
        }
    }

    /// Wraps an existing row-major buffer.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(data.len(), rows * cols, "buffer length mismatch");
        memory::register((data.len() * 4) as u64);
        Self { rows, cols, data }
    }

    /// Creates a tensor from fixed-size row arrays.
    pub fn from_rows<const N: usize>(rows: &[[f32; N]]) -> Self {
        let mut data = Vec::with_capacity(rows.len() * N);
        for r in rows {
            data.extend_from_slice(r);
        }
        Self::from_vec(rows.len(), N, data)
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Total element count.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the tensor has zero elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// The `(rows, cols)` pair.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Underlying row-major buffer.
    #[inline]
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable underlying buffer.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Borrows row `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= rows`.
    #[inline]
    pub fn row(&self, i: usize) -> &[f32] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Mutably borrows row `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= rows`.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [f32] {
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Element accessor.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f32 {
        assert!(i < self.rows && j < self.cols, "({i},{j}) out of bounds");
        self.data[i * self.cols + j]
    }

    /// Sets one element.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, v: f32) {
        assert!(i < self.rows && j < self.cols, "({i},{j}) out of bounds");
        self.data[i * self.cols + j] = v;
    }

    /// A borrowed [`sparse::DenseView`] of this tensor.
    pub fn view(&self) -> sparse::DenseView<'_> {
        sparse::DenseView::new(self.rows, self.cols, &self.data)
    }

    /// Applies `f` elementwise, returning a new tensor.
    pub fn map(&self, f: impl Fn(f32) -> f32 + Sync) -> Tensor {
        self.map_with(&xparallel::PoolHandle::global(), f)
    }

    /// Like [`Tensor::map`] but dispatched on an explicit pool handle (the
    /// autograd tape routes all its elementwise work through its own handle).
    pub fn map_with(&self, pool: &xparallel::PoolHandle, f: impl Fn(f32) -> f32 + Sync) -> Tensor {
        let mut out = Tensor::zeros(self.rows, self.cols);
        let src = &self.data;
        pool.for_mut(out.as_mut_slice(), 4096, |offset, chunk| {
            for (k, d) in chunk.iter_mut().enumerate() {
                *d = f(src[offset + k]);
            }
        });
        out
    }

    /// Combines two same-shape tensors elementwise.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn zip_map(&self, other: &Tensor, f: impl Fn(f32, f32) -> f32 + Sync) -> Tensor {
        self.zip_map_with(&xparallel::PoolHandle::global(), other, f)
    }

    /// Like [`Tensor::map_with`] but writing into a caller-provided tensor
    /// (every element of `out` is overwritten) — the allocation-free variant
    /// the autograd tape pairs with [`Tensor::uninit_in`].
    ///
    /// # Panics
    ///
    /// Panics if `out` does not share this tensor's shape.
    pub fn map_into_with(
        &self,
        pool: &xparallel::PoolHandle,
        f: impl Fn(f32) -> f32 + Sync,
        out: &mut Tensor,
    ) {
        assert_eq!(self.shape(), out.shape(), "map_into shape mismatch");
        let src = &self.data;
        pool.for_mut(out.as_mut_slice(), 4096, |offset, chunk| {
            for (k, d) in chunk.iter_mut().enumerate() {
                *d = f(src[offset + k]);
            }
        });
    }

    /// Like [`Tensor::zip_map`] but dispatched on an explicit pool handle.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn zip_map_with(
        &self,
        pool: &xparallel::PoolHandle,
        other: &Tensor,
        f: impl Fn(f32, f32) -> f32 + Sync,
    ) -> Tensor {
        assert_eq!(self.shape(), other.shape(), "zip_map shape mismatch");
        let mut out = Tensor::zeros(self.rows, self.cols);
        let (a, b) = (&self.data, &other.data);
        pool.for_mut(out.as_mut_slice(), 4096, |offset, chunk| {
            for (k, d) in chunk.iter_mut().enumerate() {
                *d = f(a[offset + k], b[offset + k]);
            }
        });
        out
    }

    /// Like [`Tensor::zip_map_with`] but writing into a caller-provided
    /// tensor (every element of `out` is overwritten).
    ///
    /// # Panics
    ///
    /// Panics if the operands or `out` differ in shape.
    pub fn zip_map_into_with(
        &self,
        pool: &xparallel::PoolHandle,
        other: &Tensor,
        f: impl Fn(f32, f32) -> f32 + Sync,
        out: &mut Tensor,
    ) {
        assert_eq!(self.shape(), other.shape(), "zip_map shape mismatch");
        assert_eq!(self.shape(), out.shape(), "zip_map output shape mismatch");
        let (a, b) = (&self.data, &other.data);
        pool.for_mut(out.as_mut_slice(), 4096, |offset, chunk| {
            for (k, d) in chunk.iter_mut().enumerate() {
                *d = f(a[offset + k], b[offset + k]);
            }
        });
    }

    /// In-place `self += alpha * other`.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn add_scaled(&mut self, other: &Tensor, alpha: f32) {
        self.add_scaled_with(&xparallel::PoolHandle::global(), other, alpha);
    }

    /// Like [`Tensor::add_scaled`] but dispatched on an explicit pool handle.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn add_scaled_with(&mut self, pool: &xparallel::PoolHandle, other: &Tensor, alpha: f32) {
        assert_eq!(self.shape(), other.shape(), "add_scaled shape mismatch");
        let b = &other.data;
        pool.for_mut(&mut self.data, 4096, |offset, chunk| {
            for (k, d) in chunk.iter_mut().enumerate() {
                *d += alpha * b[offset + k];
            }
        });
    }

    /// In-place fill with zeros.
    pub fn zero_(&mut self) {
        self.data.fill(0.0);
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        xparallel::parallel_map_reduce(
            self.data.len(),
            8192,
            0f64,
            |r| self.data[r].iter().map(|&x| x as f64).sum::<f64>(),
            |a, b| a + b,
        ) as f32
    }

    /// Mean of all elements (`0.0` for empty tensors).
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f32
        }
    }

    /// The Frobenius norm.
    pub fn frobenius_norm(&self) -> f32 {
        (xparallel::parallel_map_reduce(
            self.data.len(),
            8192,
            0f64,
            |r| {
                self.data[r]
                    .iter()
                    .map(|&x| (x as f64) * (x as f64))
                    .sum::<f64>()
            },
            |a, b| a + b,
        ))
        .sqrt() as f32
    }

    /// Normalizes each row to unit L2 norm in place (rows with norm below
    /// `eps` are left untouched).
    pub fn normalize_rows_(&mut self, eps: f32) {
        let cols = self.cols;
        xparallel::parallel_for_rows(&mut self.data, cols.max(1), 64, |_, chunk| {
            for row in chunk.chunks_exact_mut(cols.max(1)) {
                let norm = row.iter().map(|x| x * x).sum::<f32>().sqrt();
                if norm > eps {
                    let inv = 1.0 / norm;
                    for x in row {
                        *x *= inv;
                    }
                }
            }
        });
    }

    /// Consumes the tensor, returning the buffer (deregisters memory).
    pub fn into_vec(mut self) -> Vec<f32> {
        let data = std::mem::take(&mut self.data);
        // The Drop impl will see an empty buffer, so deregister here.
        memory::deregister((data.len() * 4) as u64);
        data
    }

    /// Consumes the tensor, returning the buffer **without** deregistering:
    /// the bytes stay counted as live. This is the [`Arena`] reclamation
    /// path — registration ownership moves to the pool (and back out again
    /// on the next [`Tensor::zeros_in`] / [`Tensor::uninit_in`] hit).
    pub(crate) fn into_raw_registered(mut self) -> Vec<f32> {
        // The Drop impl sees an empty buffer and deregisters nothing.
        std::mem::take(&mut self.data)
    }
}

impl Clone for Tensor {
    fn clone(&self) -> Self {
        memory::register((self.data.len() * 4) as u64);
        Self {
            rows: self.rows,
            cols: self.cols,
            data: self.data.clone(),
        }
    }
}

impl Drop for Tensor {
    fn drop(&mut self) {
        memory::deregister((self.data.len() * 4) as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_shape() {
        let t = Tensor::zeros(3, 4);
        assert_eq!(t.shape(), (3, 4));
        assert_eq!(t.len(), 12);
        assert!(!t.is_empty());
        let t = Tensor::full(2, 2, 7.0);
        assert_eq!(t.as_slice(), &[7.0; 4]);
    }

    #[test]
    fn map_and_zip_map() {
        let a = Tensor::from_rows(&[[1.0, -2.0]]);
        let b = a.map(f32::abs);
        assert_eq!(b.as_slice(), &[1.0, 2.0]);
        let c = a.zip_map(&b, |x, y| x + y);
        assert_eq!(c.as_slice(), &[2.0, 0.0]);
    }

    #[test]
    fn add_scaled_accumulates() {
        let mut a = Tensor::zeros(1, 3);
        let b = Tensor::from_rows(&[[1.0, 2.0, 3.0]]);
        a.add_scaled(&b, 0.5);
        assert_eq!(a.as_slice(), &[0.5, 1.0, 1.5]);
    }

    #[test]
    fn reductions() {
        let t = Tensor::from_rows(&[[1.0, 2.0], [3.0, 4.0]]);
        assert_eq!(t.sum(), 10.0);
        assert_eq!(t.mean(), 2.5);
        assert!((t.frobenius_norm() - 30f32.sqrt()).abs() < 1e-6);
    }

    #[test]
    fn row_normalization() {
        let mut t = Tensor::from_rows(&[[3.0, 4.0], [0.0, 0.0]]);
        t.normalize_rows_(1e-12);
        assert!((t.get(0, 0) - 0.6).abs() < 1e-6);
        assert!((t.get(0, 1) - 0.8).abs() < 1e-6);
        assert_eq!(t.row(1), &[0.0, 0.0]); // zero row untouched
    }

    #[test]
    fn mean_of_empty_is_zero() {
        let t = Tensor::zeros(0, 5);
        assert_eq!(t.mean(), 0.0);
        assert_eq!(t.sum(), 0.0);
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn zip_map_validates_shapes() {
        let a = Tensor::zeros(1, 2);
        let b = Tensor::zeros(2, 1);
        let _ = a.zip_map(&b, |x, _| x);
    }
}
