//! Regenerates **Figure 7**: total training time for every dataset × model,
//! SpTransX vs the dense baseline, with slowdown factors, in both thread
//! configurations.
//!
//! Paper claims to check: SpTransX wins everywhere; the largest factors are
//! on TransE (embedding-gradient bound), the smallest on TorusE (metric
//! bound); factors are consistent across small and large datasets.

use sptx_bench::harness::{
    bench_config, epochs_from_env, factor, paper_datasets, print_table, run_model, scale_from_env,
    secs, ModelKind, Variant,
};

fn main() {
    let scale = scale_from_env();
    let epochs = epochs_from_env();
    println!("# Figure 7 — total training time (scale 1/{scale}, {epochs} epochs)");
    let datasets = paper_datasets(scale);

    for (mode_name, limit) in [
        ("(a) CPU — 1 thread", 1usize),
        ("(b) GPU analog — all cores", usize::MAX),
    ] {
        xparallel::with_parallelism(limit, || {
            for kind in ModelKind::ALL {
                // Table 4 dimensions, scaled: TransE/TorusE run wide, TransR/
                // TransH reduced for memory (we scale all down uniformly).
                let (dim, rel_dim, bs) = match kind {
                    ModelKind::TransE | ModelKind::TorusE => (128, 8, 4096),
                    ModelKind::TransR => (32, 16, 2048),
                    ModelKind::TransH => (32, 32, 1024),
                };
                let cfg = bench_config(dim, rel_dim, bs, epochs);
                let mut rows = Vec::new();
                for (spec, ds) in &datasets {
                    eprintln!("[figure7/{mode_name}] {} {} ...", kind.name(), spec.name);
                    let sp = run_model(kind, Variant::Sparse, ds, &cfg);
                    let de = run_model(kind, Variant::Dense, ds, &cfg);
                    rows.push(vec![
                        spec.name.to_string(),
                        secs(sp.wall),
                        secs(de.wall),
                        factor(sp.wall.as_secs_f64(), de.wall.as_secs_f64()),
                    ]);
                }
                print_table(
                    &format!("{mode_name} — {}", kind.name()),
                    &[
                        "Dataset",
                        "SpTransX (s)",
                        "Baseline (s)",
                        "Baseline slowdown",
                    ],
                    &rows,
                );
            }
        });
    }
    println!("\nExpected shape: slowdown factors > 1 everywhere; largest for TransE,");
    println!("smallest for TorusE; consistent across datasets for a given model.");
}
