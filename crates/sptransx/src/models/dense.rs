//! Dense (gather/scatter) baselines — the "non-sparse" competitors.
//!
//! These mirror how TorchKGE / PyG / DGL-KE train the same models: per batch,
//! embedding rows are **gathered** per triple component (paper Figure 1a),
//! the score expression is assembled with elementwise tensor ops, and the
//! backward pass **scatter-adds** gradients into the embedding tables
//! (Figure 1b). Mathematically identical to the sparse variants — the paper's
//! point is that only the *computation schedule* differs.
//!
//! Two fidelity details copied from the baselines the paper profiles:
//!
//! * Dense TransR projects head and tail **separately** (`Mᵣh`, `Mᵣt`) —
//!   twice the projection work of the rearranged sparse form.
//! * Dense TransH projects head and tail onto the hyperplane separately —
//!   two dot products and two rank-1 corrections per triple, with a larger
//!   computational graph (the paper's explanation for TransH's memory gap).

use std::sync::Arc;

use kg::eval::TripleScorer;
use kg::{BatchPlan, Dataset};
use tensor::{init, Graph, ParamId, ParamStore, Tensor, Var};

use crate::model::{normalize_leading_rows, KgeModel, Norm, TrainConfig};
use crate::models::{build_dense_caches, DenseCache};
use crate::scorer::{
    distances_to_rows, gathered_translational_scores_into, hyperplane_scores_into,
    projected_scores_into, QueryDir,
};
use crate::Result;

/// Implements [`kg::eval::BatchScorer`] for a dense TransE-style baseline by
/// gathering query vectors from the split entity/relation tables and running
/// the shared pool-parallel distance pass.
macro_rules! impl_gathered_batch_scorer {
    ($ty:ident) => {
        impl kg::eval::BatchScorer for $ty {
            fn num_entities(&self) -> usize {
                self.num_entities
            }

            fn score_tails_into(&self, queries: &[(u32, u32)], out: &mut [f32]) {
                gathered_translational_scores_into(
                    self.store.value(self.ent).as_slice(),
                    self.store.value(self.rel).as_slice(),
                    self.num_entities,
                    self.dim,
                    self.norm,
                    queries,
                    QueryDir::Tails,
                    out,
                );
            }

            fn score_heads_into(&self, queries: &[(u32, u32)], out: &mut [f32]) {
                gathered_translational_scores_into(
                    self.store.value(self.ent).as_slice(),
                    self.store.value(self.rel).as_slice(),
                    self.num_entities,
                    self.dim,
                    self.norm,
                    queries,
                    QueryDir::Heads,
                    out,
                );
            }
        }
    };
}

/// Builds the stacked `(N+R) × d` init used by the sparse models, then
/// splits it into separate entity/relation tensors so dense and sparse
/// variants start from bit-identical parameters.
fn split_stacked_init(
    n: usize,
    r: usize,
    d: usize,
    seed: u64,
    normalize: bool,
) -> (Tensor, Tensor) {
    let stacked = if normalize {
        crate::models::stacked_transe_init(n, r, d, seed)
    } else {
        let mut t = init::uniform(n + r, d, 0.5, seed);
        for x in t.as_mut_slice() {
            *x += 0.5;
        }
        t
    };
    let buf = stacked.as_slice();
    let ent = Tensor::from_vec(n, d, buf[..n * d].to_vec());
    let rel = Tensor::from_vec(r, d, buf[n * d..].to_vec());
    (ent, rel)
}

macro_rules! impl_common_accessors {
    ($ty:ident) => {
        impl $ty {
            /// Embedding dimension.
            pub fn dim(&self) -> usize {
                self.dim
            }
        }
    };
}

// ---------------------------------------------------------------------------
// Dense TransE
// ---------------------------------------------------------------------------

/// Gather/scatter TransE baseline (TorchKGE-style).
///
/// # Examples
///
/// ```
/// use kg::synthetic::SyntheticKgBuilder;
/// use sptransx::{DenseTransE, TrainConfig};
///
/// let ds = SyntheticKgBuilder::new(40, 3).triples(200).seed(1).build();
/// let model = DenseTransE::from_config(&ds, &TrainConfig { dim: 8, ..Default::default() })?;
/// assert_eq!(sptransx::KgeModel::name(&model), "TransE-dense");
/// # Ok::<(), sptransx::Error>(())
/// ```
#[derive(Debug)]
pub struct DenseTransE {
    store: ParamStore,
    ent: ParamId,
    rel: ParamId,
    num_entities: usize,
    dim: usize,
    norm: Norm,
    batches: Vec<DenseCache>,
}

impl DenseTransE {
    /// Initializes the model (bit-identical init to [`crate::SpTransE`] for
    /// the same config).
    ///
    /// # Errors
    ///
    /// Returns [`crate::Error::Config`] for invalid hyperparameters.
    pub fn from_config(dataset: &Dataset, config: &TrainConfig) -> Result<Self> {
        config.validate()?;
        let (n, r, d) = (dataset.num_entities, dataset.num_relations, config.dim);
        let (ent_t, rel_t) = split_stacked_init(n, r, d, config.seed, true);
        let mut store = ParamStore::new();
        let ent = store.add_param("entities", ent_t);
        let rel = store.add_param("relations", rel_t);
        Ok(Self {
            store,
            ent,
            rel,
            num_entities: n,
            dim: d,
            norm: config.norm,
            batches: Vec::new(),
        })
    }

    fn side(
        &self,
        g: &mut Graph,
        heads: &Arc<Vec<u32>>,
        rels: &Arc<Vec<u32>>,
        tails: &Arc<Vec<u32>>,
    ) -> Var {
        let h = g.gather(&self.store, self.ent, heads.clone());
        let r = g.gather(&self.store, self.rel, rels.clone());
        let t = g.gather(&self.store, self.ent, tails.clone());
        let hr = g.add(h, r);
        let expr = g.sub(hr, t);
        self.norm.apply(g, expr)
    }
}

impl_common_accessors!(DenseTransE);

impl KgeModel for DenseTransE {
    fn name(&self) -> &'static str {
        "TransE-dense"
    }
    fn store(&self) -> &ParamStore {
        &self.store
    }
    fn store_mut(&mut self) -> &mut ParamStore {
        &mut self.store
    }
    fn attach_plan(&mut self, plan: &BatchPlan) -> Result<()> {
        self.batches = build_dense_caches(plan);
        Ok(())
    }
    fn num_batches(&self) -> usize {
        self.batches.len()
    }
    fn score_batch(&self, g: &mut Graph, batch_idx: usize) -> (Var, Var) {
        let c = &self.batches[batch_idx];
        let pos = self.side(g, &c.pos_heads, &c.pos_rels, &c.pos_tails);
        let neg = self.side(g, &c.neg_heads, &c.neg_rels, &c.neg_tails);
        (pos, neg)
    }
    fn end_epoch(&mut self) {
        normalize_leading_rows(&mut self.store, self.ent, self.num_entities);
    }
}

impl TripleScorer for DenseTransE {
    fn score_tails(&self, head: u32, rel: u32) -> Vec<f32> {
        let ent = self.store.value(self.ent);
        let r = self.store.value(self.rel);
        let query: Vec<f32> = ent
            .row(head as usize)
            .iter()
            .zip(r.row(rel as usize))
            .map(|(a, b)| a + b)
            .collect();
        distances_to_rows(
            ent.as_slice(),
            self.num_entities,
            self.dim,
            &query,
            self.norm,
        )
    }
    fn score_heads(&self, rel: u32, tail: u32) -> Vec<f32> {
        let ent = self.store.value(self.ent);
        let r = self.store.value(self.rel);
        let query: Vec<f32> = ent
            .row(tail as usize)
            .iter()
            .zip(r.row(rel as usize))
            .map(|(a, b)| a - b)
            .collect();
        distances_to_rows(
            ent.as_slice(),
            self.num_entities,
            self.dim,
            &query,
            self.norm,
        )
    }
    fn num_entities(&self) -> usize {
        self.num_entities
    }
}

impl_gathered_batch_scorer!(DenseTransE);

// ---------------------------------------------------------------------------
// Dense TorusE
// ---------------------------------------------------------------------------

/// Gather/scatter TorusE baseline.
#[derive(Debug)]
pub struct DenseTorusE {
    store: ParamStore,
    ent: ParamId,
    rel: ParamId,
    num_entities: usize,
    dim: usize,
    norm: Norm,
    batches: Vec<DenseCache>,
}

impl DenseTorusE {
    /// Initializes the model (bit-identical init to [`crate::SpTorusE`]).
    ///
    /// # Errors
    ///
    /// Returns [`crate::Error::Config`] for invalid hyperparameters.
    pub fn from_config(dataset: &Dataset, config: &TrainConfig) -> Result<Self> {
        config.validate()?;
        let (n, r, d) = (dataset.num_entities, dataset.num_relations, config.dim);
        let (ent_t, rel_t) = split_stacked_init(n, r, d, config.seed, false);
        let norm = match config.norm {
            Norm::L1 | Norm::TorusL1 => Norm::TorusL1,
            _ => Norm::TorusL2,
        };
        let mut store = ParamStore::new();
        let ent = store.add_param("entities", ent_t);
        let rel = store.add_param("relations", rel_t);
        Ok(Self {
            store,
            ent,
            rel,
            num_entities: n,
            dim: d,
            norm,
            batches: Vec::new(),
        })
    }
}

impl_common_accessors!(DenseTorusE);

impl KgeModel for DenseTorusE {
    fn name(&self) -> &'static str {
        "TorusE-dense"
    }
    fn store(&self) -> &ParamStore {
        &self.store
    }
    fn store_mut(&mut self) -> &mut ParamStore {
        &mut self.store
    }
    fn attach_plan(&mut self, plan: &BatchPlan) -> Result<()> {
        self.batches = build_dense_caches(plan);
        Ok(())
    }
    fn num_batches(&self) -> usize {
        self.batches.len()
    }
    fn score_batch(&self, g: &mut Graph, batch_idx: usize) -> (Var, Var) {
        let c = &self.batches[batch_idx];
        let side =
            |g: &mut Graph, heads: &Arc<Vec<u32>>, rels: &Arc<Vec<u32>>, tails: &Arc<Vec<u32>>| {
                let h = g.gather(&self.store, self.ent, heads.clone());
                let r = g.gather(&self.store, self.rel, rels.clone());
                let t = g.gather(&self.store, self.ent, tails.clone());
                let hr = g.add(h, r);
                let expr = g.sub(hr, t);
                self.norm.apply(g, expr)
            };
        let pos = side(g, &c.pos_heads, &c.pos_rels, &c.pos_tails);
        let neg = side(g, &c.neg_heads, &c.neg_rels, &c.neg_tails);
        (pos, neg)
    }
}

impl TripleScorer for DenseTorusE {
    fn score_tails(&self, head: u32, rel: u32) -> Vec<f32> {
        let ent = self.store.value(self.ent);
        let r = self.store.value(self.rel);
        let query: Vec<f32> = ent
            .row(head as usize)
            .iter()
            .zip(r.row(rel as usize))
            .map(|(a, b)| a + b)
            .collect();
        distances_to_rows(
            ent.as_slice(),
            self.num_entities,
            self.dim,
            &query,
            self.norm,
        )
    }
    fn score_heads(&self, rel: u32, tail: u32) -> Vec<f32> {
        let ent = self.store.value(self.ent);
        let r = self.store.value(self.rel);
        let query: Vec<f32> = ent
            .row(tail as usize)
            .iter()
            .zip(r.row(rel as usize))
            .map(|(a, b)| a - b)
            .collect();
        distances_to_rows(
            ent.as_slice(),
            self.num_entities,
            self.dim,
            &query,
            self.norm,
        )
    }
    fn num_entities(&self) -> usize {
        self.num_entities
    }
}

impl_gathered_batch_scorer!(DenseTorusE);

// ---------------------------------------------------------------------------
// Dense TransR
// ---------------------------------------------------------------------------

/// Gather/scatter TransR baseline: projects head and tail separately, as
/// TorchKGE does (`‖Mᵣh + r − Mᵣt‖`).
#[derive(Debug)]
pub struct DenseTransR {
    store: ParamStore,
    ent: ParamId,
    rel: ParamId,
    mats: ParamId,
    num_entities: usize,
    dim: usize,
    rel_dim: usize,
    norm: Norm,
    batches: Vec<DenseCache>,
}

impl DenseTransR {
    /// Initializes the model (bit-identical init to [`crate::SpTransR`]).
    ///
    /// # Errors
    ///
    /// Returns [`crate::Error::Config`] for invalid hyperparameters.
    pub fn from_config(dataset: &Dataset, config: &TrainConfig) -> Result<Self> {
        config.validate()?;
        let (n, r) = (dataset.num_entities, dataset.num_relations);
        let (d, k) = (config.dim, config.rel_dim);
        let mut store = ParamStore::new();
        let ent = store.add_param("entities", init::xavier_normalized(n, d, config.seed));
        let rel = store.add_param(
            "relations",
            init::xavier_translational(r, k, config.seed + 1),
        );
        let mats = store.add_param("projections", init::stacked_identity(r, k, d));
        Ok(Self {
            store,
            ent,
            rel,
            mats,
            num_entities: n,
            dim: d,
            rel_dim: k,
            norm: match config.norm {
                Norm::TorusL1 | Norm::TorusL2 => Norm::L2,
                other => other,
            },
            batches: Vec::new(),
        })
    }
}

impl_common_accessors!(DenseTransR);

impl KgeModel for DenseTransR {
    fn name(&self) -> &'static str {
        "TransR-dense"
    }
    fn store(&self) -> &ParamStore {
        &self.store
    }
    fn store_mut(&mut self) -> &mut ParamStore {
        &mut self.store
    }
    fn attach_plan(&mut self, plan: &BatchPlan) -> Result<()> {
        self.batches = build_dense_caches(plan);
        Ok(())
    }
    fn num_batches(&self) -> usize {
        self.batches.len()
    }
    fn score_batch(&self, g: &mut Graph, batch_idx: usize) -> (Var, Var) {
        let c = &self.batches[batch_idx];
        let side =
            |g: &mut Graph, heads: &Arc<Vec<u32>>, rels: &Arc<Vec<u32>>, tails: &Arc<Vec<u32>>| {
                let h = g.gather(&self.store, self.ent, heads.clone());
                let t = g.gather(&self.store, self.ent, tails.clone());
                // Two projections per triple (the un-rearranged formulation).
                let ph = g.project_rows(&self.store, self.mats, h, rels.clone(), self.rel_dim);
                let pt = g.project_rows(&self.store, self.mats, t, rels.clone(), self.rel_dim);
                let r = g.gather(&self.store, self.rel, rels.clone());
                let phr = g.add(ph, r);
                let expr = g.sub(phr, pt);
                self.norm.apply(g, expr)
            };
        let pos = side(g, &c.pos_heads, &c.pos_rels, &c.pos_tails);
        let neg = side(g, &c.neg_heads, &c.neg_rels, &c.neg_tails);
        (pos, neg)
    }
    fn end_epoch(&mut self) {
        normalize_leading_rows(&mut self.store, self.ent, self.num_entities);
    }
}

impl DenseTransR {
    /// Projects `vec` with relation `rel`'s matrix (evaluation helper).
    fn project(&self, rel: usize, vec: &[f32]) -> Vec<f32> {
        let mats = self.store.value(self.mats);
        let mat = mats.row(rel);
        let (k, d) = (self.rel_dim, self.dim);
        (0..k)
            .map(|o| {
                mat[o * d..(o + 1) * d]
                    .iter()
                    .zip(vec)
                    .map(|(m, v)| m * v)
                    .sum()
            })
            .collect()
    }
}

impl TripleScorer for DenseTransR {
    fn score_tails(&self, head: u32, rel: u32) -> Vec<f32> {
        let ent = self.store.value(self.ent);
        let r_emb = self.store.value(self.rel);
        let ph = self.project(rel as usize, ent.row(head as usize));
        let query: Vec<f32> = ph
            .iter()
            .zip(r_emb.row(rel as usize))
            .map(|(a, b)| a + b)
            .collect();
        (0..self.num_entities)
            .map(|t| {
                let pt = self.project(rel as usize, ent.row(t));
                self.norm.distance(&query, &pt)
            })
            .collect()
    }
    fn score_heads(&self, rel: u32, tail: u32) -> Vec<f32> {
        let ent = self.store.value(self.ent);
        let r_emb = self.store.value(self.rel);
        let pt = self.project(rel as usize, ent.row(tail as usize));
        let query: Vec<f32> = pt
            .iter()
            .zip(r_emb.row(rel as usize))
            .map(|(a, b)| a - b)
            .collect();
        (0..self.num_entities)
            .map(|h| {
                let ph = self.project(rel as usize, ent.row(h));
                self.norm.distance(&ph, &query)
            })
            .collect()
    }
    fn num_entities(&self) -> usize {
        self.num_entities
    }
}

impl kg::eval::BatchScorer for DenseTransR {
    fn num_entities(&self) -> usize {
        self.num_entities
    }

    fn score_tails_into(&self, queries: &[(u32, u32)], out: &mut [f32]) {
        projected_scores_into(
            self.store.value(self.ent).as_slice(),
            self.store.value(self.rel).as_slice(),
            self.store.value(self.mats).as_slice(),
            self.num_entities,
            self.dim,
            self.rel_dim,
            self.norm,
            queries,
            QueryDir::Tails,
            out,
        );
    }

    fn score_heads_into(&self, queries: &[(u32, u32)], out: &mut [f32]) {
        projected_scores_into(
            self.store.value(self.ent).as_slice(),
            self.store.value(self.rel).as_slice(),
            self.store.value(self.mats).as_slice(),
            self.num_entities,
            self.dim,
            self.rel_dim,
            self.norm,
            queries,
            QueryDir::Heads,
            out,
        );
    }
}

// ---------------------------------------------------------------------------
// Dense TransH
// ---------------------------------------------------------------------------

/// Gather/scatter TransH baseline: projects head and tail onto the
/// hyperplane separately (`h⊥ + dᵣ − t⊥`), with the larger computational
/// graph the paper attributes to baseline TransH implementations.
#[derive(Debug)]
pub struct DenseTransH {
    store: ParamStore,
    ent: ParamId,
    normals: ParamId,
    translations: ParamId,
    num_entities: usize,
    num_relations: usize,
    dim: usize,
    norm: Norm,
    batches: Vec<DenseCache>,
}

impl DenseTransH {
    /// Initializes the model (bit-identical init to [`crate::SpTransH`]).
    ///
    /// # Errors
    ///
    /// Returns [`crate::Error::Config`] for invalid hyperparameters.
    pub fn from_config(dataset: &Dataset, config: &TrainConfig) -> Result<Self> {
        config.validate()?;
        let (n, r, d) = (dataset.num_entities, dataset.num_relations, config.dim);
        let mut store = ParamStore::new();
        let ent = store.add_param("entities", init::xavier_normalized(n, d, config.seed));
        let normals = store.add_param("normals", init::xavier_normalized(r, d, config.seed + 1));
        let translations = store.add_param(
            "translations",
            init::xavier_translational(r, d, config.seed + 2),
        );
        Ok(Self {
            store,
            ent,
            normals,
            translations,
            num_entities: n,
            num_relations: r,
            dim: d,
            norm: match config.norm {
                Norm::TorusL1 | Norm::TorusL2 => Norm::L2,
                other => other,
            },
            batches: Vec::new(),
        })
    }
}

impl_common_accessors!(DenseTransH);

impl KgeModel for DenseTransH {
    fn name(&self) -> &'static str {
        "TransH-dense"
    }
    fn store(&self) -> &ParamStore {
        &self.store
    }
    fn store_mut(&mut self) -> &mut ParamStore {
        &mut self.store
    }
    fn attach_plan(&mut self, plan: &BatchPlan) -> Result<()> {
        self.batches = build_dense_caches(plan);
        Ok(())
    }
    fn num_batches(&self) -> usize {
        self.batches.len()
    }
    fn score_batch(&self, g: &mut Graph, batch_idx: usize) -> (Var, Var) {
        let c = &self.batches[batch_idx];
        let side =
            |g: &mut Graph, heads: &Arc<Vec<u32>>, rels: &Arc<Vec<u32>>, tails: &Arc<Vec<u32>>| {
                let h = g.gather(&self.store, self.ent, heads.clone());
                let t = g.gather(&self.store, self.ent, tails.clone());
                let w = g.gather(&self.store, self.normals, rels.clone());
                let dr = g.gather(&self.store, self.translations, rels.clone());
                // h⊥ = h − (wᵀh)w; t⊥ = t − (wᵀt)w — two separate projections.
                let dot_h = g.row_dot(w, h);
                let corr_h = g.scale_rows(w, dot_h);
                let hp = g.sub(h, corr_h);
                let dot_t = g.row_dot(w, t);
                let corr_t = g.scale_rows(w, dot_t);
                let tp = g.sub(t, corr_t);
                let hpd = g.add(hp, dr);
                let expr = g.sub(hpd, tp);
                self.norm.apply(g, expr)
            };
        let pos = side(g, &c.pos_heads, &c.pos_rels, &c.pos_tails);
        let neg = side(g, &c.neg_heads, &c.neg_rels, &c.neg_tails);
        (pos, neg)
    }
    fn end_epoch(&mut self) {
        normalize_leading_rows(&mut self.store, self.ent, self.num_entities);
        normalize_leading_rows(&mut self.store, self.normals, self.num_relations);
    }
}

impl DenseTransH {
    /// Projects `x` onto relation `rel`'s hyperplane (evaluation helper).
    fn project(&self, rel: usize, x: &[f32]) -> Vec<f32> {
        let w = self.store.value(self.normals).row(rel);
        let dot: f32 = w.iter().zip(x).map(|(a, b)| a * b).sum();
        x.iter().zip(w).map(|(xi, wi)| xi - dot * wi).collect()
    }
}

impl TripleScorer for DenseTransH {
    fn score_tails(&self, head: u32, rel: u32) -> Vec<f32> {
        let ent = self.store.value(self.ent);
        let dr = self.store.value(self.translations).row(rel as usize);
        let hp = self.project(rel as usize, ent.row(head as usize));
        let query: Vec<f32> = hp.iter().zip(dr).map(|(a, b)| a + b).collect();
        (0..self.num_entities)
            .map(|t| {
                let tp = self.project(rel as usize, ent.row(t));
                self.norm.distance(&query, &tp)
            })
            .collect()
    }
    fn score_heads(&self, rel: u32, tail: u32) -> Vec<f32> {
        let ent = self.store.value(self.ent);
        let dr = self.store.value(self.translations).row(rel as usize);
        let tp = self.project(rel as usize, ent.row(tail as usize));
        let query: Vec<f32> = tp.iter().zip(dr).map(|(a, b)| a - b).collect();
        (0..self.num_entities)
            .map(|h| {
                let hp = self.project(rel as usize, ent.row(h));
                self.norm.distance(&hp, &query)
            })
            .collect()
    }
    fn num_entities(&self) -> usize {
        self.num_entities
    }
}

impl kg::eval::BatchScorer for DenseTransH {
    fn num_entities(&self) -> usize {
        self.num_entities
    }

    fn score_tails_into(&self, queries: &[(u32, u32)], out: &mut [f32]) {
        hyperplane_scores_into(
            self.store.value(self.ent).as_slice(),
            self.store.value(self.normals).as_slice(),
            self.store.value(self.translations).as_slice(),
            self.num_entities,
            self.dim,
            self.norm,
            queries,
            QueryDir::Tails,
            out,
        );
    }

    fn score_heads_into(&self, queries: &[(u32, u32)], out: &mut [f32]) {
        hyperplane_scores_into(
            self.store.value(self.ent).as_slice(),
            self.store.value(self.normals).as_slice(),
            self.store.value(self.translations).as_slice(),
            self.num_entities,
            self.dim,
            self.norm,
            queries,
            QueryDir::Heads,
            out,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{SpTorusE, SpTransE, SpTransH, SpTransR};
    use kg::synthetic::SyntheticKgBuilder;
    use kg::UniformSampler;

    fn dataset() -> Dataset {
        SyntheticKgBuilder::new(50, 5).triples(400).seed(20).build()
    }

    fn plan(ds: &Dataset, bs: usize) -> BatchPlan {
        let sampler = UniformSampler::new(ds.num_entities);
        BatchPlan::build(&ds.train, &ds.all_known(), &sampler, bs, 21)
    }

    fn config() -> TrainConfig {
        TrainConfig {
            dim: 8,
            rel_dim: 8,
            batch_size: 64,
            ..Default::default()
        }
    }

    /// The load-bearing equivalence: dense and sparse variants must produce
    /// identical forward scores (they share initialization).
    #[test]
    fn transe_dense_equals_sparse_forward() {
        let ds = dataset();
        let p = plan(&ds, 64);
        let cfg = config();
        let mut sparse_m = SpTransE::from_config(&ds, &cfg).unwrap();
        let mut dense_m = DenseTransE::from_config(&ds, &cfg).unwrap();
        sparse_m.attach_plan(&p).unwrap();
        dense_m.attach_plan(&p).unwrap();
        for b in 0..p.num_batches().min(3) {
            let mut g1 = Graph::new();
            let (sp, _) = sparse_m.score_batch(&mut g1, b);
            let mut g2 = Graph::new();
            let (dp, _) = dense_m.score_batch(&mut g2, b);
            for (a, c) in g1.value(sp).as_slice().iter().zip(g2.value(dp).as_slice()) {
                assert!((a - c).abs() < 1e-4, "{a} vs {c}");
            }
        }
    }

    #[test]
    fn transe_dense_equals_sparse_gradients() {
        let ds = dataset();
        let p = plan(&ds, 64);
        let cfg = config();
        let mut sparse_m = SpTransE::from_config(&ds, &cfg).unwrap();
        let mut dense_m = DenseTransE::from_config(&ds, &cfg).unwrap();
        sparse_m.attach_plan(&p).unwrap();
        dense_m.attach_plan(&p).unwrap();

        let mut g1 = Graph::new();
        let (sp, sn) = sparse_m.score_batch(&mut g1, 0);
        let l1 = g1.margin_ranking_loss(sp, sn, 0.5);
        g1.backward(l1, sparse_m.store_mut());

        let mut g2 = Graph::new();
        let (dp, dn) = dense_m.score_batch(&mut g2, 0);
        let l2 = g2.margin_ranking_loss(dp, dn, 0.5);
        g2.backward(l2, dense_m.store_mut());

        // Sparse: one stacked grad (N+R, d); dense: split grads.
        let stacked = sparse_m.store().grad(sparse_m.embedding_param());
        let dent = dense_m
            .store()
            .grad(dense_m.store().lookup("entities").unwrap());
        let drel = dense_m
            .store()
            .grad(dense_m.store().lookup("relations").unwrap());
        let n = ds.num_entities;
        for i in 0..n {
            for (a, b) in stacked.row(i).iter().zip(dent.row(i)) {
                assert!((a - b).abs() < 1e-4, "entity {i}: {a} vs {b}");
            }
        }
        for i in 0..ds.num_relations {
            for (a, b) in stacked.row(n + i).iter().zip(drel.row(i)) {
                assert!((a - b).abs() < 1e-4, "relation {i}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn toruse_dense_equals_sparse_forward() {
        let ds = dataset();
        let p = plan(&ds, 64);
        let cfg = config();
        let mut sparse_m = SpTorusE::from_config(&ds, &cfg).unwrap();
        let mut dense_m = DenseTorusE::from_config(&ds, &cfg).unwrap();
        sparse_m.attach_plan(&p).unwrap();
        dense_m.attach_plan(&p).unwrap();
        let mut g1 = Graph::new();
        let (sp, _) = sparse_m.score_batch(&mut g1, 0);
        let mut g2 = Graph::new();
        let (dp, _) = dense_m.score_batch(&mut g2, 0);
        for (a, c) in g1.value(sp).as_slice().iter().zip(g2.value(dp).as_slice()) {
            assert!((a - c).abs() < 1e-4, "{a} vs {c}");
        }
    }

    #[test]
    fn transr_dense_equals_sparse_forward() {
        let ds = dataset();
        let p = plan(&ds, 64);
        let cfg = config();
        let mut sparse_m = SpTransR::from_config(&ds, &cfg).unwrap();
        let mut dense_m = DenseTransR::from_config(&ds, &cfg).unwrap();
        sparse_m.attach_plan(&p).unwrap();
        dense_m.attach_plan(&p).unwrap();
        let mut g1 = Graph::new();
        let (sp, _) = sparse_m.score_batch(&mut g1, 0);
        let mut g2 = Graph::new();
        let (dp, _) = dense_m.score_batch(&mut g2, 0);
        // Mᵣ(h − t) + r == Mᵣh + r − Mᵣt up to float association.
        for (a, c) in g1.value(sp).as_slice().iter().zip(g2.value(dp).as_slice()) {
            assert!((a - c).abs() < 1e-3, "{a} vs {c}");
        }
    }

    #[test]
    fn transh_dense_equals_sparse_forward() {
        let ds = dataset();
        let p = plan(&ds, 64);
        let cfg = config();
        let mut sparse_m = SpTransH::from_config(&ds, &cfg).unwrap();
        let mut dense_m = DenseTransH::from_config(&ds, &cfg).unwrap();
        sparse_m.attach_plan(&p).unwrap();
        dense_m.attach_plan(&p).unwrap();
        let mut g1 = Graph::new();
        let (sp, _) = sparse_m.score_batch(&mut g1, 0);
        let mut g2 = Graph::new();
        let (dp, _) = dense_m.score_batch(&mut g2, 0);
        for (a, c) in g1.value(sp).as_slice().iter().zip(g2.value(dp).as_slice()) {
            assert!((a - c).abs() < 1e-3, "{a} vs {c}");
        }
    }

    #[test]
    fn dense_graph_is_larger_than_sparse() {
        // The paper's memory argument: the dense TransH graph materializes
        // more intermediate nodes than the rearranged sparse one.
        let ds = dataset();
        let p = plan(&ds, 64);
        let cfg = config();
        let mut sparse_m = SpTransH::from_config(&ds, &cfg).unwrap();
        let mut dense_m = DenseTransH::from_config(&ds, &cfg).unwrap();
        sparse_m.attach_plan(&p).unwrap();
        dense_m.attach_plan(&p).unwrap();
        let mut g1 = Graph::new();
        sparse_m.score_batch(&mut g1, 0);
        let mut g2 = Graph::new();
        dense_m.score_batch(&mut g2, 0);
        assert!(
            g2.len() > g1.len(),
            "dense {} <= sparse {}",
            g2.len(),
            g1.len()
        );
    }
}
