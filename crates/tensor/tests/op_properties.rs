//! Property-based tests of the autograd ops: linearity of the tape,
//! gradient-accumulation semantics, and memory-accounting invariants.

use proptest::prelude::*;
use tensor::{memory, Graph, ParamStore, Tensor};

fn small_matrix() -> impl Strategy<Value = (usize, usize, Vec<f32>)> {
    (1usize..8, 1usize..8)
        .prop_flat_map(|(m, n)| (Just(m), Just(n), prop::collection::vec(-3.0f32..3.0, m * n)))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// add/sub/mul forward values match elementwise arithmetic.
    #[test]
    fn elementwise_forward_laws((m, n, data) in small_matrix()) {
        let mut g = Graph::new();
        let a = g.input(Tensor::from_vec(m, n, data.clone()));
        let b = g.input(Tensor::from_vec(m, n, data.iter().map(|x| x * 0.5 + 1.0).collect()));
        let sum = g.add(a, b);
        let diff = g.sub(sum, b);
        // (a + b) - b == a.
        for (x, y) in g.value(diff).as_slice().iter().zip(&data) {
            prop_assert!((x - y).abs() < 1e-4);
        }
        let prod = g.mul(a, b);
        for (got, x) in g.value(prod).as_slice().iter().zip(&data) {
            let want = x * (x * 0.5 + 1.0);
            prop_assert!((got - want).abs() < 1e-3);
        }
    }

    /// Gradient of mean(gather) counts row multiplicity.
    #[test]
    fn gather_gradient_counts_multiplicity(
        rows in 2usize..6,
        cols in 1usize..5,
        picks in prop::collection::vec(0u32..6, 1..12),
    ) {
        let picks: Vec<u32> = picks.into_iter().map(|p| p % rows as u32).collect();
        let mut store = ParamStore::new();
        let p = store.add_param("p", Tensor::full(rows, cols, 1.0));
        let mut g = Graph::new();
        let x = g.gather(&store, p, picks.clone());
        let loss = g.mean(x);
        g.backward(loss, &mut store);
        let scale = 1.0 / (picks.len() * cols) as f32;
        for r in 0..rows {
            let mult = picks.iter().filter(|&&i| i as usize == r).count() as f32;
            for j in 0..cols {
                let got = store.grad(p).get(r, j);
                prop_assert!((got - mult * scale).abs() < 1e-5,
                    "row {} mult {}: got {}", r, mult, got);
            }
        }
    }

    /// Backward of `scale` is linear: grad(c·x) = c · grad(x).
    #[test]
    fn scale_backward_linearity((m, n, data) in small_matrix(), c in -3.0f32..3.0) {
        let run = |scale: f32| {
            let mut store = ParamStore::new();
            let p = store.add_param("p", Tensor::from_vec(m, n, data.clone()));
            let mut g = Graph::new();
            let x = g.gather(&store, p, (0..m as u32).collect::<Vec<u32>>());
            let y = g.scale(x, scale);
            let loss = g.mean(y);
            g.backward(loss, &mut store);
            store.grad(p).as_slice().to_vec()
        };
        let base = run(1.0);
        let scaled = run(c);
        for (b, s) in base.iter().zip(&scaled) {
            prop_assert!((c * b - s).abs() < 1e-4);
        }
    }

    /// Gradients accumulate across backward calls until zero_grads.
    #[test]
    fn gradients_accumulate_until_cleared((m, n, data) in small_matrix()) {
        let mut store = ParamStore::new();
        let p = store.add_param("p", Tensor::from_vec(m, n, data));
        let backward_once = |store: &mut ParamStore| {
            let mut g = Graph::new();
            let x = g.gather(store, p, (0..m as u32).collect::<Vec<u32>>());
            let loss = g.mean(x);
            g.backward(loss, store);
        };
        backward_once(&mut store);
        let once = store.grad(p).as_slice().to_vec();
        backward_once(&mut store);
        for (g2, g1) in store.grad(p).as_slice().iter().zip(&once) {
            prop_assert!((g2 - 2.0 * g1).abs() < 1e-5);
        }
        store.zero_grads();
        prop_assert!(store.grad(p).as_slice().iter().all(|&x| x == 0.0));
    }

    /// Every tensor allocation is balanced by its drop.
    #[test]
    fn memory_accounting_balances((m, n, data) in small_matrix()) {
        let before = memory::current_bytes();
        {
            let t = Tensor::from_vec(m, n, data);
            let c = t.clone();
            prop_assert_eq!(
                memory::current_bytes(),
                before + 2 * (m * n * 4) as u64
            );
            drop(c);
        }
        prop_assert_eq!(memory::current_bytes(), before);
    }

    /// Row norms: L1 ≥ L2 ≥ 0 and both are absolutely homogeneous.
    #[test]
    fn norm_inequalities((m, n, data) in small_matrix()) {
        let mut g = Graph::new();
        let x = g.input(Tensor::from_vec(m, n, data));
        let l1 = g.l1_norm_rows(x);
        let l2 = g.l2_norm_rows(x, 1e-9);
        for i in 0..m {
            let a = g.value(l1).get(i, 0);
            let b = g.value(l2).get(i, 0);
            prop_assert!(a + 1e-5 >= b, "L1 {} < L2 {}", a, b);
            prop_assert!(b >= 0.0);
        }
    }
}
