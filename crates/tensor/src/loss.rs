//! Standalone loss utilities.
//!
//! The differentiable margin ranking loss lives on the tape
//! ([`crate::Graph::margin_ranking_loss`]); this module provides the
//! non-differentiable helpers used for reporting and evaluation.

use crate::Tensor;

/// Computes `mean(max(0, margin + pos − neg))` without a tape.
///
/// Matches the forward value of [`crate::Graph::margin_ranking_loss`]; used
/// to evaluate held-out loss without building a graph.
///
/// # Panics
///
/// Panics if the score columns differ in length.
///
/// # Examples
///
/// ```
/// use tensor::{loss, Tensor};
///
/// let pos = Tensor::from_rows(&[[1.0], [2.0]]);
/// let neg = Tensor::from_rows(&[[2.0], [1.0]]);
/// // row 0: max(0, 0.5 - 1) = 0; row 1: max(0, 0.5 + 1) = 1.5
/// assert!((loss::margin_ranking(&pos, &neg, 0.5) - 0.75).abs() < 1e-6);
/// ```
pub fn margin_ranking(pos: &Tensor, neg: &Tensor, margin: f32) -> f32 {
    assert_eq!(pos.shape(), neg.shape(), "margin loss operands must match");
    let m = pos.rows();
    if m == 0 {
        return 0.0;
    }
    let mut acc = 0.0f64;
    for i in 0..m {
        acc += f64::from((margin + pos.get(i, 0) - neg.get(i, 0)).max(0.0));
    }
    (acc / m as f64) as f32
}

/// Fraction of pairs where the positive scores strictly better (lower) than
/// the negative — a quick training-sanity metric.
pub fn pairwise_accuracy(pos: &Tensor, neg: &Tensor) -> f32 {
    assert_eq!(pos.shape(), neg.shape(), "operands must match");
    let m = pos.rows();
    if m == 0 {
        return 0.0;
    }
    let wins = (0..m).filter(|&i| pos.get(i, 0) < neg.get(i, 0)).count();
    wins as f32 / m as f32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loss_zero_when_well_separated() {
        let pos = Tensor::from_rows(&[[0.1], [0.2]]);
        let neg = Tensor::from_rows(&[[5.0], [6.0]]);
        assert_eq!(margin_ranking(&pos, &neg, 1.0), 0.0);
        assert_eq!(pairwise_accuracy(&pos, &neg), 1.0);
    }

    #[test]
    fn loss_equals_margin_when_tied() {
        let pos = Tensor::from_rows(&[[2.0]]);
        let neg = Tensor::from_rows(&[[2.0]]);
        assert!((margin_ranking(&pos, &neg, 0.5) - 0.5).abs() < 1e-6);
        assert_eq!(pairwise_accuracy(&pos, &neg), 0.0);
    }

    #[test]
    fn empty_inputs() {
        let empty = Tensor::zeros(0, 1);
        assert_eq!(margin_ranking(&empty, &empty, 1.0), 0.0);
        assert_eq!(pairwise_accuracy(&empty, &empty), 0.0);
    }
}
