//! Semiring-generalized SpMM (paper Appendix D).
//!
//! TransE's `h + r − t` is a standard `(+, ×)` SpMM over the `hrt` incidence
//! matrix. Appendix D observes that swapping the semiring operators turns the
//! *same traversal* into the score kernels of non-translational models:
//!
//! * **DistMult** — `h ⊙ r ⊙ t`: both operators become multiplication
//!   ([`TimesTimes`]).
//! * **ComplEx** — `h ⊙ r ⊙ t̄` over complex embeddings: complex
//!   multiplication, with the tail's `−1` coefficient flagging conjugation
//!   ([`ComplexTriple`]).
//! * **RotatE** — `h ⊙ r − t` over complex embeddings: multiply on `+1`
//!   entries, subtract on `−1` entries ([`RotateTriple`]).
//!
//! Because CSR stores row entries in column order (head/tail before the
//! offset relation columns), accumulators must be **order-independent**:
//! each semiring keeps whatever partial state it needs ([`Semiring::Acc`])
//! and renders a scalar only in [`Semiring::finish`].

use crate::{metrics, Complex32, CsrMatrix};

/// A (generalized) semiring: how one incidence row combines gathered values.
///
/// Implementations are zero-sized tag types; the kernel is monomorphized per
/// semiring. The trait is sealed in spirit — downstream models are expected
/// to add semirings here rather than implement it externally, but it is left
/// open for extension experiments.
pub trait Semiring: Send + Sync + 'static {
    /// Element type of the dense operand and the output.
    type Scalar: Copy + Send + Sync + Default;
    /// Accumulator carried across a row's nonzeros.
    type Acc: Copy + Send + Sync;
    /// Human-readable kernel name (for reports).
    const NAME: &'static str;

    /// The empty-row accumulator.
    fn init() -> Self::Acc;
    /// Folds one `(coefficient, value)` pair into the accumulator.
    fn absorb(acc: Self::Acc, coeff: f32, val: Self::Scalar) -> Self::Acc;
    /// Renders the accumulator into an output element.
    fn finish(acc: Self::Acc) -> Self::Scalar;
}

/// Standard arithmetic `(+, ×)` over `f32` — recovers ordinary SpMM.
#[derive(Debug, Clone, Copy, Default)]
pub struct PlusTimes;

impl Semiring for PlusTimes {
    type Scalar = f32;
    type Acc = f32;
    const NAME: &'static str = "plus-times";

    #[inline]
    fn init() -> f32 {
        0.0
    }
    #[inline]
    fn absorb(acc: f32, coeff: f32, val: f32) -> f32 {
        acc + coeff * val
    }
    #[inline]
    fn finish(acc: f32) -> f32 {
        acc
    }
}

/// Both operators are multiplication — the DistMult kernel `h ⊙ r ⊙ t`.
///
/// Coefficient signs are ignored; use an unsigned (`TailSign::Positive`)
/// incidence matrix for clarity.
#[derive(Debug, Clone, Copy, Default)]
pub struct TimesTimes;

impl Semiring for TimesTimes {
    type Scalar = f32;
    type Acc = f32;
    const NAME: &'static str = "times-times";

    #[inline]
    fn init() -> f32 {
        1.0
    }
    #[inline]
    fn absorb(acc: f32, _coeff: f32, val: f32) -> f32 {
        acc * val
    }
    #[inline]
    fn finish(acc: f32) -> f32 {
        acc
    }
}

/// ComplEx kernel: complex product, conjugating values with negative
/// coefficients (`h ⊙ r ⊙ t̄`).
#[derive(Debug, Clone, Copy, Default)]
pub struct ComplexTriple;

impl Semiring for ComplexTriple {
    type Scalar = Complex32;
    type Acc = Complex32;
    const NAME: &'static str = "complex-conj-product";

    #[inline]
    fn init() -> Complex32 {
        Complex32::ONE
    }
    #[inline]
    fn absorb(acc: Complex32, coeff: f32, val: Complex32) -> Complex32 {
        if coeff >= 0.0 {
            acc * val
        } else {
            acc * val.conj()
        }
    }
    #[inline]
    fn finish(acc: Complex32) -> Complex32 {
        acc
    }
}

/// RotatE kernel: multiply positive-coefficient values, subtract
/// negative-coefficient values (`h ⊙ r − t`).
///
/// The accumulator keeps the product chain and the subtractive part
/// separately so the fold is independent of CSR column order.
#[derive(Debug, Clone, Copy, Default)]
pub struct RotateTriple;

impl Semiring for RotateTriple {
    type Scalar = Complex32;
    type Acc = (Complex32, Complex32); // (product, subtrahend)
    const NAME: &'static str = "rotate";

    #[inline]
    fn init() -> (Complex32, Complex32) {
        (Complex32::ONE, Complex32::ZERO)
    }
    #[inline]
    fn absorb(acc: (Complex32, Complex32), coeff: f32, val: Complex32) -> (Complex32, Complex32) {
        if coeff >= 0.0 {
            (acc.0 * val, acc.1)
        } else {
            (acc.0, acc.1 + val)
        }
    }
    #[inline]
    fn finish(acc: (Complex32, Complex32)) -> Complex32 {
        acc.0 - acc.1
    }
}

/// Computes `C[i][j] = finish(fold_k absorb(coeff_ik, B[k][j]))` — semiring
/// SpMM over a generic scalar type.
///
/// `b` is row-major with `b_rows × b_cols` elements of `S::Scalar`.
///
/// # Panics
///
/// Panics if `a.cols() != b_rows` or `b.len() != b_rows * b_cols`.
///
/// # Examples
///
/// ```
/// use sparse::semiring::{semiring_spmm, TimesTimes};
/// use sparse::incidence::{hrt, TailSign};
///
/// // DistMult: one triple (h=0, r=0, t=1), 2 entities + 1 relation.
/// let a = hrt(2, 1, &[0], &[0], &[1], TailSign::Positive)?;
/// let b = vec![2.0f32, 3.0, /* t */ 5.0, 7.0, /* r */ 11.0, 13.0];
/// let c = semiring_spmm::<TimesTimes>(&a, &b, 3, 2);
/// assert_eq!(c, vec![2.0 * 5.0 * 11.0, 3.0 * 7.0 * 13.0]);
/// # Ok::<(), sparse::Error>(())
/// ```
pub fn semiring_spmm<S: Semiring>(
    a: &CsrMatrix,
    b: &[S::Scalar],
    b_rows: usize,
    b_cols: usize,
) -> Vec<S::Scalar> {
    semiring_spmm_with::<S>(&xparallel::PoolHandle::global(), a, b, b_rows, b_cols)
}

/// Like [`semiring_spmm`] but dispatched on an explicit
/// [`xparallel::PoolHandle`] (the allocating counterpart of
/// [`semiring_spmm_into_with`], mirroring the `csr_spmm` family).
///
/// # Panics
///
/// Same conditions as [`semiring_spmm_into`].
pub fn semiring_spmm_with<S: Semiring>(
    pool: &xparallel::PoolHandle,
    a: &CsrMatrix,
    b: &[S::Scalar],
    b_rows: usize,
    b_cols: usize,
) -> Vec<S::Scalar> {
    let mut out: Vec<S::Scalar> = vec![S::Scalar::default(); a.rows() * b_cols];
    semiring_spmm_into_with::<S>(pool, a, b, b_rows, b_cols, &mut out);
    out
}

/// Like [`semiring_spmm`] but writes into a caller-provided buffer
/// (overwritten) instead of allocating the output.
///
/// This is the batched-evaluation workhorse: ranking engines score chunk
/// after chunk of queries through the same kernel and reuse one scratch
/// buffer across all of them.
///
/// # Panics
///
/// Panics if `a.cols() != b_rows`, `b.len() != b_rows * b_cols`, or
/// `out.len() != a.rows() * b_cols`.
pub fn semiring_spmm_into<S: Semiring>(
    a: &CsrMatrix,
    b: &[S::Scalar],
    b_rows: usize,
    b_cols: usize,
    out: &mut [S::Scalar],
) {
    semiring_spmm_into_with::<S>(&xparallel::PoolHandle::global(), a, b, b_rows, b_cols, out);
}

/// Like [`semiring_spmm_into`] but dispatched on an explicit
/// [`xparallel::PoolHandle`] — used by the training tape so semiring forward
/// kernels follow the tape's schedule.
///
/// # Panics
///
/// Same conditions as [`semiring_spmm_into`].
pub fn semiring_spmm_into_with<S: Semiring>(
    pool: &xparallel::PoolHandle,
    a: &CsrMatrix,
    b: &[S::Scalar],
    b_rows: usize,
    b_cols: usize,
    out: &mut [S::Scalar],
) {
    assert_eq!(a.cols(), b_rows, "semiring spmm shape mismatch");
    assert_eq!(b.len(), b_rows * b_cols, "dense operand has wrong length");
    assert_eq!(
        out.len(),
        a.rows() * b_cols,
        "output buffer has wrong length"
    );
    metrics::record_spmm_call();
    metrics::add_flops(2 * a.nnz() as u64 * b_cols as u64);
    if b_cols == 0 || a.rows() == 0 {
        return;
    }
    let indptr = a.indptr();
    let indices = a.indices();
    let values = a.values();
    pool.for_rows(out, b_cols, 16, |first_row, chunk| {
        let nrows = chunk.len() / b_cols;
        for local in 0..nrows {
            let i = first_row + local;
            let (s, e) = (indptr[i] as usize, indptr[i + 1] as usize);
            let dst = &mut chunk[local * b_cols..(local + 1) * b_cols];
            for (j, d) in dst.iter_mut().enumerate() {
                let mut acc = S::init();
                for k in s..e {
                    let col = indices[k] as usize;
                    acc = S::absorb(acc, values[k], b[col * b_cols + j]);
                }
                *d = S::finish(acc);
            }
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::incidence::{hrt, TailSign};
    use crate::spmm::csr_spmm;
    use crate::{CooMatrix, DenseMatrix};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn plus_times_matches_regular_spmm() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut coo = CooMatrix::new(20, 15);
        for _ in 0..60 {
            coo.push(
                rng.gen_range(0..20),
                rng.gen_range(0..15),
                rng.gen_range(-1.0..1.0),
            )
            .unwrap();
        }
        let a = coo.to_csr();
        let bdata: Vec<f32> = (0..15 * 6).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let b = DenseMatrix::from_vec(15, 6, bdata.clone());
        let want = csr_spmm(&a, &b);
        let got = semiring_spmm::<PlusTimes>(&a, &bdata, 15, 6);
        for (x, y) in got.iter().zip(want.as_slice()) {
            assert!((x - y).abs() < 1e-4);
        }
    }

    #[test]
    fn into_variant_overwrites_and_matches_allocating() {
        let mut rng = StdRng::seed_from_u64(17);
        let a = hrt(6, 2, &[0, 3, 5], &[0, 1, 0], &[1, 2, 4], TailSign::Positive).unwrap();
        let b: Vec<f32> = (0..8 * 5).map(|_| rng.gen_range(0.5..2.0)).collect();
        let want = semiring_spmm::<TimesTimes>(&a, &b, 8, 5);
        // Dirty buffer: the into-variant must fully overwrite it.
        let mut out = vec![123.0f32; 3 * 5];
        semiring_spmm_into::<TimesTimes>(&a, &b, 8, 5, &mut out);
        assert_eq!(out, want);
    }

    #[test]
    #[should_panic(expected = "output buffer has wrong length")]
    fn into_variant_validates_output_length() {
        let a = hrt(3, 1, &[0], &[0], &[1], TailSign::Positive).unwrap();
        let b = vec![0.0f32; 4 * 2];
        let mut out = vec![0.0f32; 3];
        semiring_spmm_into::<TimesTimes>(&a, &b, 4, 2, &mut out);
    }

    #[test]
    fn distmult_triple_product() {
        // 3 entities, 2 relations, embedding dim 4.
        let n = 3;
        let r = 2;
        let d = 4;
        let mut rng = StdRng::seed_from_u64(1);
        let b: Vec<f32> = (0..(n + r) * d).map(|_| rng.gen_range(0.5..2.0)).collect();
        let a = hrt(n, r, &[0, 2], &[1, 0], &[1, 1], TailSign::Positive).unwrap();
        let c = semiring_spmm::<TimesTimes>(&a, &b, n + r, d);
        for (row, (h, rel, t)) in [(0usize, 1usize, 1usize), (2, 0, 1)].iter().enumerate() {
            for j in 0..d {
                let want = b[h * d + j] * b[(n + rel) * d + j] * b[t * d + j];
                assert!((c[row * d + j] - want).abs() < 1e-5);
            }
        }
    }

    #[test]
    fn complex_conjugates_tail() {
        // 2 entities + 1 relation, complex dim 2.
        let n = 2;
        let d = 2;
        let b = vec![
            Complex32::new(1.0, 1.0),
            Complex32::new(2.0, 0.0), // h = e0
            Complex32::new(0.5, -0.5),
            Complex32::new(1.0, 3.0), // t = e1
            Complex32::new(0.0, 1.0),
            Complex32::new(1.0, 0.0), // r = r0
        ];
        let a = hrt(n, 1, &[0], &[0], &[1], TailSign::Negative).unwrap();
        let c = semiring_spmm::<ComplexTriple>(&a, &b, 3, d);
        for j in 0..d {
            let want = b[j] * b[2 * d + j] * b[d + j].conj();
            assert!((c[j] - want).norm_sqr() < 1e-8, "{} vs {}", c[j], want);
        }
    }

    #[test]
    fn rotate_is_product_minus_tail() {
        let n = 2;
        let d = 3;
        let mut rng = StdRng::seed_from_u64(4);
        let b: Vec<Complex32> = (0..(n + 1) * d)
            .map(|_| Complex32::new(rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0)))
            .collect();
        let a = hrt(n, 1, &[1], &[0], &[0], TailSign::Negative).unwrap();
        let c = semiring_spmm::<RotateTriple>(&a, &b, n + 1, d);
        for j in 0..d {
            let want = b[d + j] * b[2 * d + j] - b[j]; // h=e1, r=r0, t=e0
            assert!((c[j] - want).norm_sqr() < 1e-8);
        }
    }

    #[test]
    fn rotate_order_independence_with_low_tail_column() {
        // Tail column 0 sorts before head column 1 in CSR; the accumulator
        // must still produce h*r - t, not (1 - t) * h * r.
        let b = vec![
            Complex32::new(5.0, 0.0), // e0 (tail)
            Complex32::new(2.0, 0.0), // e1 (head)
            Complex32::new(3.0, 0.0), // r0
        ];
        let a = hrt(2, 1, &[1], &[0], &[0], TailSign::Negative).unwrap();
        let c = semiring_spmm::<RotateTriple>(&a, &b, 3, 1);
        assert!((c[0] - Complex32::new(1.0, 0.0)).norm_sqr() < 1e-10); // 2*3-5
    }

    #[test]
    fn empty_rows_yield_finished_identity() {
        let a = CooMatrix::new(2, 3).to_csr();
        let b = vec![1.0f32; 3 * 2];
        let c = semiring_spmm::<TimesTimes>(&a, &b, 3, 2);
        assert_eq!(c, vec![1.0; 4]); // finish(init) = 1 for product semiring

        let c = semiring_spmm::<PlusTimes>(&a, &b, 3, 2);
        assert_eq!(c, vec![0.0; 4]);
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn shape_validation() {
        let a = CooMatrix::new(1, 3).to_csr();
        let b = vec![0.0f32; 4];
        let _ = semiring_spmm::<PlusTimes>(&a, &b, 2, 2);
    }
}
