//! Integration tests of the paper's *qualitative claims* at test scale,
//! using the deterministic instrumented metrics (FLOPs, peak memory, graph
//! size, simulated cache misses) rather than flaky wall-clock assertions.

use kg::synthetic::SyntheticKgBuilder;
use kg::{BatchPlan, UniformSampler};
use sptransx::{
    DenseTorusE, DenseTransE, DenseTransH, DenseTransR, KgeModel, SpTorusE, SpTransE, SpTransH,
    SpTransR, TrainConfig, Trainer,
};

fn dataset() -> kg::Dataset {
    SyntheticKgBuilder::new(2_000, 30)
        .triples(12_000)
        .seed(55)
        .build()
}

fn config() -> TrainConfig {
    TrainConfig {
        epochs: 2,
        batch_size: 2048,
        dim: 32,
        rel_dim: 16,
        lr: 0.01,
        ..Default::default()
    }
}

fn reports<S: KgeModel, D: KgeModel>(
    sparse: S,
    dense: D,
) -> (sptransx::TrainReport, sptransx::TrainReport) {
    let ds = dataset();
    let cfg = config();
    let rs = Trainer::new(sparse, &ds, &cfg).unwrap().run().unwrap();
    let rd = Trainer::new(dense, &ds, &cfg).unwrap().run().unwrap();
    (rs, rd)
}

/// Table 6's claim: the sparse schedule executes fewer floating-point
/// operations for every model.
#[test]
fn sparse_uses_fewer_flops_all_models() {
    let ds = dataset();
    let cfg = config();
    macro_rules! pair {
        ($sp:ident, $de:ident, $name:literal) => {{
            let (rs, rd) = reports(
                $sp::from_config(&ds, &cfg).unwrap(),
                $de::from_config(&ds, &cfg).unwrap(),
            );
            assert!(
                rs.flops < rd.flops,
                "{}: sparse {} !< dense {}",
                $name,
                rs.flops,
                rd.flops
            );
        }};
    }
    pair!(SpTransE, DenseTransE, "TransE");
    pair!(SpTorusE, DenseTorusE, "TorusE");
    pair!(SpTransR, DenseTransR, "TransR");
    pair!(SpTransH, DenseTransH, "TransH");
}

/// Table 5's claim: the sparse schedule allocates less peak tensor memory.
#[test]
fn sparse_uses_less_peak_memory_all_models() {
    let ds = dataset();
    let cfg = config();
    macro_rules! pair {
        ($sp:ident, $de:ident, $name:literal) => {{
            // Runs must be serialized: peak-memory tracking is global.
            let rs = Trainer::new($sp::from_config(&ds, &cfg).unwrap(), &ds, &cfg)
                .unwrap()
                .run()
                .unwrap();
            let rd = Trainer::new($de::from_config(&ds, &cfg).unwrap(), &ds, &cfg)
                .unwrap()
                .run()
                .unwrap();
            assert!(
                rs.peak_memory_bytes <= rd.peak_memory_bytes,
                "{}: sparse {} !<= dense {}",
                $name,
                rs.peak_memory_bytes,
                rd.peak_memory_bytes
            );
        }};
    }
    pair!(SpTransE, DenseTransE, "TransE");
    pair!(SpTorusE, DenseTorusE, "TorusE");
    pair!(SpTransR, DenseTransR, "TransR");
    pair!(SpTransH, DenseTransH, "TransH");
}

/// §6.2.5's claim: the sparse formulation does not change the optimization —
/// losses coincide epoch by epoch when init and batch order are shared.
#[test]
fn accuracy_parity_loss_trajectories_match() {
    let ds = dataset();
    let cfg = TrainConfig {
        epochs: 3,
        ..config()
    };
    macro_rules! pair {
        ($sp:ident, $de:ident, $name:literal, $tol:expr) => {{
            let rs = Trainer::new($sp::from_config(&ds, &cfg).unwrap(), &ds, &cfg)
                .unwrap()
                .run()
                .unwrap();
            let rd = Trainer::new($de::from_config(&ds, &cfg).unwrap(), &ds, &cfg)
                .unwrap()
                .run()
                .unwrap();
            for (a, b) in rs.epoch_losses.iter().zip(&rd.epoch_losses) {
                assert!((a - b).abs() < $tol, "{}: {a} vs {b}", $name);
            }
        }};
    }
    pair!(SpTransE, DenseTransE, "TransE", 1e-3);
    pair!(SpTorusE, DenseTorusE, "TorusE", 1e-3);
    pair!(SpTransR, DenseTransR, "TransR", 2e-3);
    pair!(SpTransH, DenseTransH, "TransH", 2e-3);
}

/// Table 7's claim, via the cache simulator: the SpMM pipeline's miss rate
/// does not exceed the gather/scatter pipeline's.
#[test]
fn spmm_cache_behaviour_not_worse() {
    let ds = dataset();
    let sampler = UniformSampler::new(ds.num_entities);
    let plan = BatchPlan::build(&ds.train, &ds.all_known(), &sampler, 2048, 3);
    let b = plan.batch(0);
    let incidence = sparse::incidence::hrt(
        ds.num_entities,
        ds.num_relations,
        b.pos.heads(),
        b.pos.rels(),
        b.pos.tails(),
        sparse::incidence::TailSign::Negative,
    )
    .unwrap();
    let cmp = simcache::trace::compare_kernels(&incidence, 64);
    assert!(
        cmp.spmm_miss_rate <= cmp.gather_scatter_miss_rate + 1e-9,
        "spmm {} vs gather/scatter {}",
        cmp.spmm_miss_rate,
        cmp.gather_scatter_miss_rate
    );
}

/// §6.2.2's mechanism: the dense TransH computational graph materializes
/// more nodes (and the sparse one fewer intermediates), which is where the
/// memory gap comes from.
#[test]
fn sparse_graphs_are_smaller() {
    let ds = dataset();
    let cfg = config();
    let sampler = UniformSampler::new(ds.num_entities);
    let plan = BatchPlan::build(&ds.train, &ds.all_known(), &sampler, 2048, 3);

    macro_rules! graph_sizes {
        ($sp:ident, $de:ident) => {{
            let mut sp = $sp::from_config(&ds, &cfg).unwrap();
            sp.attach_plan(&plan).unwrap();
            let mut de = $de::from_config(&ds, &cfg).unwrap();
            de.attach_plan(&plan).unwrap();
            let mut g1 = tensor::Graph::new();
            sp.score_batch(&mut g1, 0);
            let mut g2 = tensor::Graph::new();
            de.score_batch(&mut g2, 0);
            (g1.len(), g2.len())
        }};
    }
    let (s, d) = graph_sizes!(SpTransE, DenseTransE);
    assert!(s < d, "TransE: sparse graph {s} !< dense graph {d}");
    let (s, d) = graph_sizes!(SpTransH, DenseTransH);
    assert!(s < d, "TransH: sparse graph {s} !< dense graph {d}");
    let (s, d) = graph_sizes!(SpTransR, DenseTransR);
    assert!(s < d, "TransR: sparse graph {s} !< dense graph {d}");
}

/// The paper's Appendix G: backward-of-SpMM is transpose-SpMM, so the number
/// of SpMM kernel calls in sparse TransE training is exactly
/// `epochs × batches × 2 sides × 2 (fwd + bwd)`.
#[test]
fn spmm_call_count_matches_formula() {
    let ds = dataset();
    let cfg = config();
    let mut trainer = Trainer::new(SpTransE::from_config(&ds, &cfg).unwrap(), &ds, &cfg).unwrap();
    let batches = trainer.num_batches();
    let report = trainer.run().unwrap();
    let expected = (cfg.epochs * batches * 4) as u64;
    assert_eq!(report.spmm_calls, expected);
}
