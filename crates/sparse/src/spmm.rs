//! Sparse × dense matrix multiplication kernels.
//!
//! These are the workhorses of the whole reproduction: SparseTransX replaces
//! every embedding gather (forward) and gradient scatter (backward) with one
//! call into [`csr_spmm`] / [`csr_spmm_into`]. The kernel is:
//!
//! * **row-parallel** — output rows are sharded over the [`xparallel`] pool,
//!   so no synchronization is needed on the output;
//! * **cache-blocked** — wide dense operands are processed in column tiles of
//!   [`COL_TILE`] floats so the accumulator row stays resident in L1;
//! * **unrolled** — the inner axpy runs 4 accumulators wide, which is enough
//!   for LLVM to emit packed SIMD;
//! * **specialized for incidence rows** — rows with ≤ 3 nonzeros (every
//!   `ht`/`hrt` incidence row) take a branch-free fused path.
//!
//! FLOP counts (`2 · nnz · n`) are recorded in [`crate::metrics`].

use crate::{metrics, CooMatrix, CsrMatrix, DenseMatrix, DenseView};

/// Column-tile width (in `f32` lanes) for the cache-blocked kernel.
///
/// 1024 floats = 4 KiB per operand row slice: an accumulator tile plus the
/// 2–3 gathered rows fit comfortably in a 32 KiB L1.
pub const COL_TILE: usize = 1024;

/// Minimum rows per parallel chunk; below this the kernel runs sequentially.
pub const MIN_ROWS_PER_CHUNK: usize = 16;

/// Computes `C = A · B` where `A` is sparse CSR and `B` is dense row-major.
///
/// # Panics
///
/// Panics if `A.cols() != B.rows()`.
///
/// # Examples
///
/// ```
/// use sparse::{CooMatrix, DenseMatrix};
///
/// let a = CooMatrix::from_triplets(1, 2, vec![(0, 0, 1.0), (0, 1, -1.0)])?.to_csr();
/// let b = DenseMatrix::from_rows(&[[5.0, 6.0], [1.0, 2.0]]);
/// let c = sparse::spmm::csr_spmm(&a, &b);
/// assert_eq!(c.row(0), &[4.0, 4.0]); // head - tail
/// # Ok::<(), sparse::Error>(())
/// ```
pub fn csr_spmm<'a>(a: &CsrMatrix, b: impl Into<DenseView<'a>>) -> DenseMatrix {
    csr_spmm_with(&xparallel::PoolHandle::global(), a, b)
}

/// Like [`csr_spmm`] but dispatched on an explicit [`xparallel::PoolHandle`]
/// — the training tape threads its handle through here so the whole step
/// shares one schedule (and can run inline inside data-parallel workers).
pub fn csr_spmm_with<'a>(
    pool: &xparallel::PoolHandle,
    a: &CsrMatrix,
    b: impl Into<DenseView<'a>>,
) -> DenseMatrix {
    let b = b.into();
    let mut out = DenseMatrix::zeros(a.rows(), b.cols());
    csr_spmm_into_with(pool, a, b, out.as_mut_slice());
    out
}

/// Computes `C = A · B` into a caller-provided buffer (overwritten).
///
/// # Panics
///
/// Panics if `A.cols() != B.rows()` or `out.len() != A.rows() * B.cols()`.
pub fn csr_spmm_into(a: &CsrMatrix, b: DenseView<'_>, out: &mut [f32]) {
    csr_spmm_into_with(&xparallel::PoolHandle::global(), a, b, out);
}

/// Like [`csr_spmm_into`] but dispatched on an explicit
/// [`xparallel::PoolHandle`].
///
/// # Panics
///
/// Same conditions as [`csr_spmm_into`].
pub fn csr_spmm_into_with(
    pool: &xparallel::PoolHandle,
    a: &CsrMatrix,
    b: DenseView<'_>,
    out: &mut [f32],
) {
    assert_eq!(
        a.cols(),
        b.rows(),
        "spmm shape mismatch: A is {}x{}, B is {}x{}",
        a.rows(),
        a.cols(),
        b.rows(),
        b.cols()
    );
    let n = b.cols();
    assert_eq!(out.len(), a.rows() * n, "output buffer has wrong length");
    metrics::record_spmm_call();
    // Incidence matrices carry only ±1 coefficients, so each output element
    // costs (row_nnz - 1) additions, not 2·nnz multiply-adds. Count what the
    // kernel actually has to execute (the paper measures FLOPs with perf).
    // The ±1 property is cached on the matrix — no per-call O(nnz) scan.
    let flops = if a.has_unit_coefficients() {
        a.nnz().saturating_sub(a.rows()) as u64 * n as u64
    } else {
        2 * a.nnz() as u64 * n as u64
    };
    metrics::add_flops(flops);
    metrics::add_bytes(
        (a.nnz() as u64 * (4 + 4)) + (a.nnz() as u64 * n as u64 * 4) + (out.len() as u64 * 4),
    );
    if n == 0 || a.rows() == 0 {
        return;
    }
    let bdata = b.as_slice();
    let indptr = a.indptr();
    let indices = a.indices();
    let values = a.values();
    pool.for_rows(out, n, MIN_ROWS_PER_CHUNK, |first_row, chunk| {
        let nrows = chunk.len() / n;
        for local in 0..nrows {
            let i = first_row + local;
            let (s, e) = (indptr[i] as usize, indptr[i + 1] as usize);
            let dst = &mut chunk[local * n..(local + 1) * n];
            spmm_row(&indices[s..e], &values[s..e], bdata, n, dst);
        }
    });
}

/// One output row: `dst = Σ val_k · B[col_k, :]`, overwriting `dst`.
#[inline]
fn spmm_row(cols: &[u32], vals: &[f32], b: &[f32], n: usize, dst: &mut [f32]) {
    match cols.len() {
        0 => dst.fill(0.0),
        // Fast paths for incidence-matrix rows: `ht` rows have 2 nonzeros,
        // `hrt` rows have 3. Fusing the gathers avoids re-reading `dst`.
        2 => {
            let r0 = &b[cols[0] as usize * n..cols[0] as usize * n + n];
            let r1 = &b[cols[1] as usize * n..cols[1] as usize * n + n];
            let (v0, v1) = (vals[0], vals[1]);
            for j in 0..n {
                dst[j] = v0 * r0[j] + v1 * r1[j];
            }
        }
        3 => {
            let r0 = &b[cols[0] as usize * n..cols[0] as usize * n + n];
            let r1 = &b[cols[1] as usize * n..cols[1] as usize * n + n];
            let r2 = &b[cols[2] as usize * n..cols[2] as usize * n + n];
            let (v0, v1, v2) = (vals[0], vals[1], vals[2]);
            for j in 0..n {
                dst[j] = v0 * r0[j] + v1 * r1[j] + v2 * r2[j];
            }
        }
        1 => {
            let r0 = &b[cols[0] as usize * n..cols[0] as usize * n + n];
            let v0 = vals[0];
            for j in 0..n {
                dst[j] = v0 * r0[j];
            }
        }
        _ => {
            // General path: zero the accumulator, then tile columns so the
            // destination slice stays hot while we stream source rows.
            dst.fill(0.0);
            let mut t0 = 0;
            while t0 < n {
                let t1 = (t0 + COL_TILE).min(n);
                for (k, &c) in cols.iter().enumerate() {
                    let v = vals[k];
                    let src = &b[c as usize * n + t0..c as usize * n + t1];
                    axpy(v, src, &mut dst[t0..t1]);
                }
                t0 = t1;
            }
        }
    }
}

/// `dst += a * src`, 4-way unrolled.
#[inline]
fn axpy(a: f32, src: &[f32], dst: &mut [f32]) {
    // Every caller slices equal-length operands; the `min` below only
    // exists to keep the unrolled loop panic-free and must never actually
    // truncate (a silent truncation would mask an indexing bug upstream).
    debug_assert_eq!(src.len(), dst.len(), "axpy operand length mismatch");
    let n = dst.len().min(src.len());
    let chunks = n / 4;
    for k in 0..chunks {
        let j = k * 4;
        dst[j] += a * src[j];
        dst[j + 1] += a * src[j + 1];
        dst[j + 2] += a * src[j + 2];
        dst[j + 3] += a * src[j + 3];
    }
    for j in chunks * 4..n {
        dst[j] += a * src[j];
    }
}

/// Computes `out += A · B` **accumulating** into the caller's buffer and
/// skipping empty rows of `A` entirely.
///
/// This is the backward-pass kernel: the transpose incidence matrix
/// `Aᵀ ∈ (N+R) × M` has one row per entity/relation, most of which are
/// untouched by any given batch — accumulation avoids materializing (and
/// re-adding) a dense delta the size of the whole embedding table.
///
/// # Panics
///
/// Same conditions as [`csr_spmm_into`].
pub fn csr_spmm_acc_into(a: &CsrMatrix, b: DenseView<'_>, out: &mut [f32]) {
    csr_spmm_acc_into_with(&xparallel::PoolHandle::global(), a, b, out);
}

/// Like [`csr_spmm_acc_into`] but dispatched on an explicit
/// [`xparallel::PoolHandle`] — the backward-pass entry point of the
/// pool-parallel training step.
///
/// # Panics
///
/// Same conditions as [`csr_spmm_into`].
pub fn csr_spmm_acc_into_with(
    pool: &xparallel::PoolHandle,
    a: &CsrMatrix,
    b: DenseView<'_>,
    out: &mut [f32],
) {
    assert_eq!(a.cols(), b.rows(), "spmm shape mismatch");
    let n = b.cols();
    assert_eq!(out.len(), a.rows() * n, "output buffer has wrong length");
    metrics::record_spmm_call();
    let flops = if a.has_unit_coefficients() {
        // Accumulation makes every nonzero one add.
        a.nnz() as u64 * n as u64
    } else {
        2 * a.nnz() as u64 * n as u64
    };
    metrics::add_flops(flops);
    // Traffic accounting mirrors csr_spmm_into_with: index+value reads per
    // nonzero plus one gathered B row per nonzero. The accumulating output
    // is read *and* written once per incident nonzero (2×), instead of the
    // forward kernel's single streaming write of the whole buffer.
    metrics::add_bytes(
        (a.nnz() as u64 * (4 + 4))
            + (a.nnz() as u64 * n as u64 * 4)
            + 2 * (a.nnz() as u64 * n as u64 * 4),
    );
    if n == 0 || a.rows() == 0 {
        return;
    }
    let bdata = b.as_slice();
    let indptr = a.indptr();
    let indices = a.indices();
    let values = a.values();
    pool.for_rows(out, n, MIN_ROWS_PER_CHUNK, |first_row, chunk| {
        let nrows = chunk.len() / n;
        for local in 0..nrows {
            let i = first_row + local;
            let (s, e) = (indptr[i] as usize, indptr[i + 1] as usize);
            if s == e {
                continue; // untouched parameter row: no work at all
            }
            let dst = &mut chunk[local * n..(local + 1) * n];
            for k in s..e {
                let c = indices[k] as usize;
                axpy(values[k], &bdata[c * n..(c + 1) * n], dst);
            }
        }
    });
}

/// Like [`csr_spmm_acc_into_with`] but restricted to an explicit sorted list
/// of output rows — the touched-row backward kernel.
///
/// `rows` must be strictly ascending indices into `A`'s rows. Only listed
/// rows are processed (each by exactly one worker, accumulating its
/// nonzeros in CSR order, so results are bit-identical to the dense sweep
/// at any pool width); listed rows with no nonzeros cost nothing. **Rows
/// outside the list are not touched at all** — the caller must guarantee
/// every nonempty row of `A` is listed (for an incidence transpose, the
/// [`crate::incidence::IncidencePair::touched_columns`] list or any
/// superset of it), otherwise their contributions are silently dropped.
///
/// This is what makes the backward pass `O(batch)` instead of `O(N)`: the
/// dense sweep scans every parameter row's `indptr` entry, this kernel only
/// walks the touched list.
///
/// # Panics
///
/// Same conditions as [`csr_spmm_into`], plus (debug only) an unsorted row
/// list.
pub fn csr_spmm_acc_rows_into_with(
    pool: &xparallel::PoolHandle,
    a: &CsrMatrix,
    rows: &[u32],
    b: DenseView<'_>,
    out: &mut [f32],
) {
    assert_eq!(a.cols(), b.rows(), "spmm shape mismatch");
    let n = b.cols();
    assert_eq!(out.len(), a.rows() * n, "output buffer has wrong length");
    metrics::record_spmm_call();
    let indptr = a.indptr();
    let nnz_listed: u64 = rows
        .iter()
        .map(|&r| u64::from(indptr[r as usize + 1] - indptr[r as usize]))
        .sum();
    let flops = if a.has_unit_coefficients() {
        nnz_listed * n as u64
    } else {
        2 * nnz_listed * n as u64
    };
    metrics::add_flops(flops);
    // Same traffic model as the dense accumulating kernel, but only the
    // listed rows' nonzeros move bytes.
    metrics::add_bytes(
        (nnz_listed * (4 + 4)) + (nnz_listed * n as u64 * 4) + 2 * (nnz_listed * n as u64 * 4),
    );
    if n == 0 || rows.is_empty() {
        return;
    }
    let bdata = b.as_slice();
    let indices = a.indices();
    let values = a.values();
    pool.for_listed_rows(out, n, rows, MIN_ROWS_PER_CHUNK, |listed, first, window| {
        for &r in listed {
            let i = r as usize;
            let (s, e) = (indptr[i] as usize, indptr[i + 1] as usize);
            if s == e {
                continue;
            }
            let off = (i - first) * n;
            let dst = &mut window[off..off + n];
            for k in s..e {
                let c = indices[k] as usize;
                axpy(values[k], &bdata[c * n..(c + 1) * n], dst);
            }
        }
    });
}

/// Like [`csr_spmm_into`] but always takes the general (tiled axpy) path,
/// skipping the 1/2/3-nonzero incidence fast paths — used by the ablation
/// benchmarks to quantify the fast path's contribution.
///
/// # Panics
///
/// Same conditions as [`csr_spmm_into`].
pub fn csr_spmm_into_general(a: &CsrMatrix, b: DenseView<'_>, out: &mut [f32]) {
    assert_eq!(a.cols(), b.rows(), "spmm shape mismatch");
    let n = b.cols();
    assert_eq!(out.len(), a.rows() * n, "output buffer has wrong length");
    metrics::record_spmm_call();
    metrics::add_flops(2 * a.nnz() as u64 * n as u64);
    if n == 0 || a.rows() == 0 {
        return;
    }
    let bdata = b.as_slice();
    let indptr = a.indptr();
    let indices = a.indices();
    let values = a.values();
    xparallel::parallel_for_rows(out, n, MIN_ROWS_PER_CHUNK, |first_row, chunk| {
        let nrows = chunk.len() / n;
        for local in 0..nrows {
            let i = first_row + local;
            let (s, e) = (indptr[i] as usize, indptr[i + 1] as usize);
            let dst = &mut chunk[local * n..(local + 1) * n];
            dst.fill(0.0);
            let mut t0 = 0;
            while t0 < n {
                let t1 = (t0 + COL_TILE).min(n);
                for k in s..e {
                    let c = indices[k] as usize;
                    let src = &bdata[c * n + t0..c * n + t1];
                    axpy(values[k], src, &mut dst[t0..t1]);
                }
                t0 = t1;
            }
        }
    });
}

/// Computes `C = A · B` directly from COO with per-thread scatter buffers.
///
/// Kept for comparison benchmarks (the paper selects COO for DGL's GPU
/// kernel); CSR is faster on CPU for incidence workloads.
///
/// # Panics
///
/// Panics if `A.cols() != B.rows()`.
pub fn coo_spmm<'a>(a: &CooMatrix, b: impl Into<DenseView<'a>>) -> DenseMatrix {
    let b = b.into();
    assert_eq!(a.cols(), b.rows(), "spmm shape mismatch");
    let n = b.cols();
    metrics::record_spmm_call();
    metrics::add_flops(2 * a.nnz() as u64 * n as u64);
    let mut out = DenseMatrix::zeros(a.rows(), n);
    let bdata = b.as_slice();
    // COO entries may hit any output row, so we shard the *entries* and give
    // each worker a private output buffer, reduced deterministically at the
    // end. This mirrors the scatter-side cost the paper attributes to
    // gather/scatter training.
    let rows = a.row_indices();
    let cols = a.col_indices();
    let vals = a.values();
    let total = out.as_slice().len();
    let partial = xparallel::parallel_map_reduce(
        a.nnz(),
        4096,
        vec![0f32; 0],
        |range| {
            let mut buf = vec![0f32; total];
            for k in range {
                let r = rows[k] as usize;
                let c = cols[k] as usize;
                let v = vals[k];
                let src = &bdata[c * n..(c + 1) * n];
                axpy(v, src, &mut buf[r * n..(r + 1) * n]);
            }
            buf
        },
        |mut acc, part| {
            if acc.is_empty() {
                return part;
            }
            for (d, s) in acc.iter_mut().zip(&part) {
                *d += *s;
            }
            acc
        },
    );
    if !partial.is_empty() {
        out.as_mut_slice().copy_from_slice(&partial);
    }
    out
}

/// Naive, single-threaded reference SpMM for testing.
pub fn spmm_reference(a: &CsrMatrix, b: DenseView<'_>) -> DenseMatrix {
    assert_eq!(a.cols(), b.rows(), "spmm shape mismatch");
    let n = b.cols();
    let mut out = DenseMatrix::zeros(a.rows(), n);
    for i in 0..a.rows() {
        for (c, v) in a.row(i) {
            for j in 0..n {
                let cur = out.get(i, j);
                out.set(i, j, cur + v * b.row(c)[j]);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_csr(rng: &mut StdRng, rows: usize, cols: usize, nnz_per_row: usize) -> CsrMatrix {
        let mut coo = CooMatrix::new(rows, cols);
        for r in 0..rows {
            for _ in 0..rng.gen_range(0..=nnz_per_row) {
                let c = rng.gen_range(0..cols);
                coo.push(r, c, rng.gen_range(-2.0..2.0)).unwrap();
            }
        }
        coo.to_csr()
    }

    fn random_dense(rng: &mut StdRng, rows: usize, cols: usize) -> DenseMatrix {
        let data = (0..rows * cols).map(|_| rng.gen_range(-1.0..1.0)).collect();
        DenseMatrix::from_vec(rows, cols, data)
    }

    fn assert_close(a: &DenseMatrix, b: &DenseMatrix, tol: f32) {
        assert_eq!((a.rows(), a.cols()), (b.rows(), b.cols()));
        for (x, y) in a.as_slice().iter().zip(b.as_slice()) {
            assert!((x - y).abs() <= tol, "{x} vs {y}");
        }
    }

    #[test]
    fn csr_matches_reference_random() {
        let mut rng = StdRng::seed_from_u64(42);
        for (rows, cols, n, per_row) in [
            (1, 1, 1, 1),
            (10, 8, 4, 3),
            (100, 50, 17, 6),
            (64, 64, 64, 2),
            (200, 30, 5, 10),
        ] {
            let a = random_csr(&mut rng, rows, cols, per_row);
            let b = random_dense(&mut rng, cols, n);
            let got = csr_spmm(&a, &b);
            let want = spmm_reference(&a, b.view());
            assert_close(&got, &want, 1e-4);
        }
    }

    #[test]
    fn incidence_fast_paths_match_reference() {
        let mut rng = StdRng::seed_from_u64(7);
        // Exactly 2 or 3 nonzeros per row with ±1 values: incidence shape.
        for nnz in [2usize, 3] {
            let rows = 128;
            let cols = 64;
            let mut coo = CooMatrix::new(rows, cols);
            for r in 0..rows {
                let mut seen = std::collections::HashSet::new();
                while seen.len() < nnz {
                    seen.insert(rng.gen_range(0..cols));
                }
                for (k, c) in seen.into_iter().enumerate() {
                    let v = if k == nnz - 1 { -1.0 } else { 1.0 };
                    coo.push(r, c, v).unwrap();
                }
            }
            let a = coo.to_csr();
            let b = random_dense(&mut rng, cols, 33);
            assert_close(&csr_spmm(&a, &b), &spmm_reference(&a, b.view()), 1e-4);
        }
    }

    #[test]
    fn wide_dense_exercises_tiling() {
        let mut rng = StdRng::seed_from_u64(3);
        let a = random_csr(&mut rng, 20, 40, 8);
        let b = random_dense(&mut rng, 40, COL_TILE + 100);
        assert_close(&csr_spmm(&a, &b), &spmm_reference(&a, b.view()), 1e-3);
    }

    #[test]
    fn acc_kernel_accumulates_and_matches() {
        let mut rng = StdRng::seed_from_u64(33);
        let a = random_csr(&mut rng, 40, 25, 4);
        let b = random_dense(&mut rng, 25, 9);
        // Start from a nonzero buffer; acc must add on top.
        let mut acc = vec![0.5f32; 40 * 9];
        csr_spmm_acc_into(&a, b.view(), &mut acc);
        let want = csr_spmm(&a, &b);
        for (x, w) in acc.iter().zip(want.as_slice()) {
            assert!((x - (w + 0.5)).abs() < 1e-4, "{x} vs {}", w + 0.5);
        }
    }

    #[test]
    fn acc_rows_kernel_matches_dense_sweep_bitwise() {
        let mut rng = StdRng::seed_from_u64(19);
        let a = random_csr(&mut rng, 120, 25, 4);
        let b = random_dense(&mut rng, 25, 9);
        let mut dense = vec![0.25f32; 120 * 9];
        let mut listed = dense.clone();
        csr_spmm_acc_into(&a, b.view(), &mut dense);
        let rows = a.occupied_rows();
        csr_spmm_acc_rows_into_with(
            &xparallel::PoolHandle::global(),
            &a,
            &rows,
            b.view(),
            &mut listed,
        );
        // Bit-identical: the listed kernel performs the exact per-row
        // accumulation of the dense sweep, skipping only empty rows.
        for (x, y) in listed.iter().zip(&dense) {
            assert_eq!(x.to_bits(), y.to_bits(), "{x} vs {y}");
        }
        // A superset list (extra empty rows) changes nothing, and unlisted
        // rows are left alone entirely.
        let mut superset = vec![0.25f32; 120 * 9];
        let all: Vec<u32> = (0..120).collect();
        csr_spmm_acc_rows_into_with(
            &xparallel::PoolHandle::global().with_width(5),
            &a,
            &all,
            b.view(),
            &mut superset,
        );
        for (x, y) in superset.iter().zip(&dense) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
        let mut none = vec![0.25f32; 120 * 9];
        csr_spmm_acc_rows_into_with(
            &xparallel::PoolHandle::global(),
            &a,
            &[],
            b.view(),
            &mut none,
        );
        assert!(none.iter().all(|&x| x == 0.25));
    }

    #[test]
    fn general_path_matches_fast_path() {
        let mut rng = StdRng::seed_from_u64(21);
        let a = random_csr(&mut rng, 60, 40, 3);
        let b = random_dense(&mut rng, 40, 19);
        let mut fast = vec![0f32; 60 * 19];
        let mut general = vec![0f32; 60 * 19];
        csr_spmm_into(&a, b.view(), &mut fast);
        csr_spmm_into_general(&a, b.view(), &mut general);
        for (x, y) in fast.iter().zip(&general) {
            assert!((x - y).abs() < 1e-4);
        }
    }

    #[test]
    fn coo_matches_csr() {
        let mut rng = StdRng::seed_from_u64(11);
        let coo = {
            let mut m = CooMatrix::new(50, 30);
            for _ in 0..200 {
                m.push(
                    rng.gen_range(0..50),
                    rng.gen_range(0..30),
                    rng.gen_range(-1.0..1.0),
                )
                .unwrap();
            }
            m
        };
        let b = random_dense(&mut rng, 30, 12);
        let via_csr = csr_spmm(&coo.to_csr(), &b);
        let via_coo = coo_spmm(&coo, &b);
        assert_close(&via_coo, &via_csr, 1e-4);
    }

    #[test]
    fn transpose_spmm_is_backward_of_forward() {
        // Appendix G: dL/dX = Aᵀ · dL/dC. Check via dense algebra.
        let mut rng = StdRng::seed_from_u64(5);
        let a = random_csr(&mut rng, 12, 9, 4);
        let g = random_dense(&mut rng, 12, 7); // upstream gradient, shape of C
        let grad = csr_spmm(&a.transpose(), &g);
        // Dense check: Aᵀ(9x12) · G(12x7) = 9x7.
        let ad = a.to_dense();
        let mut want = DenseMatrix::zeros(9, 7);
        for i in 0..9 {
            for j in 0..7 {
                let mut acc = 0.0;
                for k in 0..12 {
                    acc += ad.get(k, i) * g.get(k, j);
                }
                want.set(i, j, acc);
            }
        }
        assert_close(&grad, &want, 1e-4);
    }

    #[test]
    fn zero_sized_operands() {
        let a = CooMatrix::new(0, 5).to_csr();
        let b = DenseMatrix::zeros(5, 3);
        let c = csr_spmm(&a, &b);
        assert_eq!((c.rows(), c.cols()), (0, 3));

        let a = CooMatrix::new(4, 5).to_csr();
        let b = DenseMatrix::zeros(5, 0);
        let c = csr_spmm(&a, &b);
        assert_eq!((c.rows(), c.cols()), (4, 0));
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn shape_mismatch_panics() {
        let a = CooMatrix::new(2, 3).to_csr();
        let b = DenseMatrix::zeros(4, 2);
        let _ = csr_spmm(&a, &b);
    }

    #[test]
    fn flop_counter_increments() {
        let before = metrics::snapshot();
        let a = CooMatrix::from_triplets(1, 2, vec![(0, 0, 1.0), (0, 1, -1.0)])
            .unwrap()
            .to_csr();
        let b = DenseMatrix::zeros(2, 8);
        let _ = csr_spmm(&a, &b);
        let delta = metrics::snapshot() - before;
        // ±1 incidence row: (nnz - rows) * n = (2 - 1) * 8 additions.
        assert!(delta.flops >= 8);
        assert!(delta.spmm_calls >= 1);
    }
}
