//! Minimal persistent thread pool and data-parallel loop primitives.
//!
//! The SparseTransX paper relies on OpenMP-style parallel loops (via MKL and
//! iSpLib) for its CPU SpMM kernels. This crate provides the Rust-native
//! equivalent used throughout the reproduction: a small persistent
//! [`ThreadPool`] plus [`parallel_for`] / [`parallel_map_reduce`] helpers that
//! split an index range into contiguous chunks, one per worker.
//!
//! Design goals:
//!
//! * **No per-call thread spawn.** Kernels are invoked thousands of times per
//!   epoch; workers are started once and parked on a channel.
//! * **Borrowed data.** Loop bodies may capture `&`/`&mut`-derived state; the
//!   pool blocks until every task finishes before returning, which makes the
//!   internal lifetime erasure sound.
//! * **Determinism.** Chunk boundaries depend only on `(len, num_threads)`,
//!   and reductions combine partial results in chunk order, so results are
//!   reproducible run-to-run for a fixed thread count.
//!
//! **Place in the workspace:** the bottom of the dependency graph — this
//! crate depends on no other workspace crate, and every kernel in `sparse`,
//! `tensor`, and `kg` runs on its global pool.
//!
//! # Examples
//!
//! ```
//! let mut out = vec![0u64; 1024];
//! xparallel::parallel_for_mut(&mut out, 64, |offset, chunk| {
//!     for (i, v) in chunk.iter_mut().enumerate() {
//!         *v = (offset + i) as u64 * 2;
//!     }
//! });
//! assert_eq!(out[10], 20);
//! ```

use std::ops::Range;
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};

use crossbeam::channel::{unbounded, Sender};
use parking_lot::{Condvar, Mutex};

mod handle;
mod pool;
pub use handle::PoolHandle;
pub use pool::ThreadPool;

/// Environment variable consulted for the default worker count.
pub const NUM_THREADS_ENV: &str = "SPTX_NUM_THREADS";

static GLOBAL_POOL: OnceLock<ThreadPool> = OnceLock::new();
static OVERRIDE_THREADS: AtomicUsize = AtomicUsize::new(0);
static PARALLELISM_LIMIT: AtomicUsize = AtomicUsize::new(usize::MAX);

/// Returns the process-wide shared pool, creating it on first use.
///
/// The pool size is, in order of precedence: the value passed to
/// [`set_num_threads`] before first use, the `SPTX_NUM_THREADS` environment
/// variable, or the number of available CPUs.
pub fn global_pool() -> &'static ThreadPool {
    GLOBAL_POOL.get_or_init(|| {
        let n = OVERRIDE_THREADS.load(Ordering::SeqCst);
        let n = if n > 0 { n } else { default_num_threads() };
        ThreadPool::new(n)
    })
}

/// Sets the worker count used when the global pool is first created.
///
/// Has no effect if the global pool has already been instantiated; returns
/// `false` in that case.
pub fn set_num_threads(n: usize) -> bool {
    OVERRIDE_THREADS.store(n.max(1), Ordering::SeqCst);
    GLOBAL_POOL.get().is_none()
}

/// Number of workers in the global pool (forces pool creation).
pub fn current_num_threads() -> usize {
    global_pool().num_threads()
}

/// Caps how many chunks the `parallel_*` helpers may split work into,
/// without tearing down the pool. `1` forces sequential execution.
///
/// The SparseTransX benchmarks use this to emulate the paper's single-core
/// "CPU" and all-core "GPU" configurations within one process. Returns the
/// previous limit.
pub fn set_parallelism_limit(n: usize) -> usize {
    PARALLELISM_LIMIT.swap(n.max(1), Ordering::SeqCst)
}

/// The current chunk-count cap (defaults to unlimited).
pub fn parallelism_limit() -> usize {
    PARALLELISM_LIMIT.load(Ordering::SeqCst)
}

/// Effective worker count: pool size clamped by the parallelism limit.
pub fn effective_parallelism() -> usize {
    global_pool().num_threads().min(parallelism_limit())
}

/// Runs `f` with the parallelism limit set to `n`, restoring it afterwards.
pub fn with_parallelism<T>(n: usize, f: impl FnOnce() -> T) -> T {
    let prev = set_parallelism_limit(n);
    let result = f();
    set_parallelism_limit(prev);
    result
}

fn default_num_threads() -> usize {
    if let Ok(v) = std::env::var(NUM_THREADS_ENV) {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Splits `len` items into at most `max_chunks` contiguous ranges of at least
/// `min_chunk` items each (except possibly the last).
///
/// Returns an empty vector when `len == 0`.
pub fn chunk_ranges(len: usize, min_chunk: usize, max_chunks: usize) -> Vec<Range<usize>> {
    if len == 0 {
        return Vec::new();
    }
    let min_chunk = min_chunk.max(1);
    let max_chunks = max_chunks.max(1);
    let chunks = (len / min_chunk).clamp(1, max_chunks);
    let base = len / chunks;
    let rem = len % chunks;
    let mut out = Vec::with_capacity(chunks);
    let mut start = 0;
    for i in 0..chunks {
        let extra = usize::from(i < rem);
        let end = start + base + extra;
        out.push(start..end);
        start = end;
    }
    out
}

/// Runs `body(range)` over disjoint chunks of `0..len` on the global pool.
///
/// `min_chunk` bounds how small a chunk may get; short loops run inline on the
/// caller thread without touching the pool.
///
/// # Panics
///
/// Propagates the first panic raised by any chunk body.
pub fn parallel_for<F>(len: usize, min_chunk: usize, body: F)
where
    F: Fn(Range<usize>) + Sync,
{
    PoolHandle::global().for_range(len, min_chunk, body);
}

/// Runs `body(offset, chunk)` over disjoint mutable sub-slices of `data`.
///
/// This is the mutable-output workhorse used by the SpMM kernels: each worker
/// owns an exclusive window of the output buffer, so no synchronization is
/// needed inside the loop body.
pub fn parallel_for_mut<T, F>(data: &mut [T], min_chunk: usize, body: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    PoolHandle::global().for_mut(data, min_chunk, body);
}

/// Index ranges `i..i+1` for dispatching one pre-built work item per task.
pub(crate) fn singleton_ranges(n: usize) -> Vec<Range<usize>> {
    (0..n).map(|i| i..i + 1).collect()
}

/// One-shot handoff slot carrying a worker's `(offset, window)` pair.
pub(crate) type WindowSlot<'a, T> = Mutex<Option<(usize, &'a mut [T])>>;

/// Runs `body(first_row, rows_chunk)` over row-aligned mutable windows of a
/// row-major buffer.
///
/// `data.len()` must be a multiple of `stride` (the row width); chunk
/// boundaries always fall on row boundaries, which is what the SpMM kernels
/// need to hand each worker an exclusive set of output rows.
///
/// # Panics
///
/// Panics if `stride == 0` or `data.len() % stride != 0`.
pub fn parallel_for_rows<T, F>(data: &mut [T], stride: usize, min_rows: usize, body: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    PoolHandle::global().for_rows(data, stride, min_rows, body);
}

/// Runs one **long-lived worker per slot** on dedicated scoped OS threads:
/// `body(i, &mut slots[i])` for every `i`, all concurrently, joining before
/// return.
///
/// This is deliberately *not* pool fan-out. The pool's primitives
/// ([`parallel_for`], [`PoolHandle::for_each_mut`]) dispatch short tasks
/// and rejoin at a barrier per call — the synchronous training step's
/// shape. Hogwild-style asynchronous training instead needs W workers that
/// each run an entire epoch's batch stream with **no barrier between
/// steps**; those workers would starve (or deadlock with
/// `SPTX_NUM_THREADS=1`) if they occupied pool workers for a whole epoch
/// while also dispatching their own kernels onto the same pool. Dedicated
/// scoped threads sidestep both problems and leave the pool free for
/// whatever parallelism each worker's kernels want.
///
/// A single slot runs inline on the caller thread — no thread is spawned,
/// so a one-worker "async" run executes the exact instruction stream a
/// plain sequential driver would (the degenerate-determinism contract).
///
/// # Panics
///
/// Propagates a panic raised by any worker after all workers have been
/// joined.
pub fn scope_workers<T, F>(slots: &mut [T], body: F)
where
    T: Send,
    F: Fn(usize, &mut T) + Sync,
{
    if slots.len() <= 1 {
        if let Some(slot) = slots.first_mut() {
            body(0, slot);
        }
        return;
    }
    std::thread::scope(|s| {
        for (i, slot) in slots.iter_mut().enumerate() {
            let body = &body;
            s.spawn(move || body(i, slot));
        }
    });
}

/// Maps chunks of `0..len` to partial values and folds them in chunk order.
///
/// `map(range)` produces one partial per chunk; `reduce` combines partials
/// left-to-right starting from `identity`, so floating-point reductions are
/// deterministic for a fixed thread count.
pub fn parallel_map_reduce<T, M, R>(
    len: usize,
    min_chunk: usize,
    identity: T,
    map: M,
    reduce: R,
) -> T
where
    T: Send,
    M: Fn(Range<usize>) -> T + Sync,
    R: Fn(T, T) -> T,
{
    if len == 0 {
        return identity;
    }
    let pool = global_pool();
    let ranges = chunk_ranges(len, min_chunk, effective_parallelism());
    if ranges.len() == 1 {
        return reduce(identity, map(0..len));
    }
    let slots: Vec<Mutex<Option<T>>> = (0..ranges.len()).map(|_| Mutex::new(None)).collect();
    let ranges_for_run = ranges.clone();
    pool.scope_run_indexed(&ranges_for_run, &|i, r| {
        *slots[i].lock() = Some(map(r));
    });
    let mut acc = identity;
    for slot in slots {
        let part = slot.into_inner().expect("missing reduction partial");
        acc = reduce(acc, part);
    }
    acc
}

/// A latch that lets one thread wait for `n` completions.
pub(crate) struct WaitGroup {
    remaining: Mutex<usize>,
    cond: Condvar,
    panicked: Mutex<Option<String>>,
}

impl WaitGroup {
    pub(crate) fn new(n: usize) -> Arc<Self> {
        Arc::new(Self {
            remaining: Mutex::new(n),
            cond: Condvar::new(),
            panicked: Mutex::new(None),
        })
    }

    pub(crate) fn done(&self) {
        let mut rem = self.remaining.lock();
        *rem -= 1;
        if *rem == 0 {
            self.cond.notify_all();
        }
    }

    pub(crate) fn record_panic(&self, msg: String) {
        let mut p = self.panicked.lock();
        if p.is_none() {
            *p = Some(msg);
        }
    }

    pub(crate) fn wait(&self) {
        let mut rem = self.remaining.lock();
        while *rem > 0 {
            self.cond.wait(&mut rem);
        }
        drop(rem);
        if let Some(msg) = self.panicked.lock().take() {
            panic!("worker task panicked: {msg}");
        }
    }
}

pub(crate) type Job = Box<dyn FnOnce() + Send>;

pub(crate) fn run_catching(wg: &WaitGroup, f: impl FnOnce()) {
    let result = panic::catch_unwind(AssertUnwindSafe(f));
    if let Err(e) = result {
        let msg = e
            .downcast_ref::<&str>()
            .map(|s| s.to_string())
            .or_else(|| e.downcast_ref::<String>().cloned())
            .unwrap_or_else(|| "<non-string panic payload>".to_string());
        wg.record_panic(msg);
    }
    wg.done();
}

pub(crate) fn spawn_worker(rx: crossbeam::channel::Receiver<Job>) -> std::thread::JoinHandle<()> {
    std::thread::Builder::new()
        .name("xparallel-worker".into())
        .spawn(move || {
            while let Ok(job) = rx.recv() {
                job();
            }
        })
        .expect("failed to spawn worker thread")
}

pub(crate) fn make_channel() -> (Sender<Job>, crossbeam::channel::Receiver<Job>) {
    unbounded()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn chunk_ranges_cover_everything() {
        for len in [0usize, 1, 7, 64, 1000, 1001] {
            for min_chunk in [1usize, 8, 100] {
                for max_chunks in [1usize, 3, 16] {
                    let ranges = chunk_ranges(len, min_chunk, max_chunks);
                    let total: usize = ranges.iter().map(|r| r.len()).sum();
                    assert_eq!(total, len, "len={len} mc={min_chunk} xc={max_chunks}");
                    let mut cursor = 0;
                    for r in &ranges {
                        assert_eq!(r.start, cursor);
                        assert!(!r.is_empty());
                        cursor = r.end;
                    }
                }
            }
        }
    }

    #[test]
    fn chunk_ranges_respect_max_chunks() {
        let ranges = chunk_ranges(100, 1, 4);
        assert_eq!(ranges.len(), 4);
        let ranges = chunk_ranges(3, 10, 4);
        assert_eq!(ranges.len(), 1);
    }

    #[test]
    fn parallel_for_sums() {
        let acc = AtomicU64::new(0);
        parallel_for(10_000, 16, |r| {
            let local: u64 = r.map(|i| i as u64).sum();
            acc.fetch_add(local, Ordering::Relaxed);
        });
        assert_eq!(acc.load(Ordering::Relaxed), 10_000u64 * 9_999 / 2);
    }

    #[test]
    fn parallel_for_mut_writes_all() {
        let mut data = vec![0usize; 4096];
        parallel_for_mut(&mut data, 32, |offset, chunk| {
            for (i, v) in chunk.iter_mut().enumerate() {
                *v = offset + i;
            }
        });
        for (i, v) in data.iter().enumerate() {
            assert_eq!(*v, i);
        }
    }

    #[test]
    fn parallel_for_rows_is_row_aligned() {
        let stride = 7;
        let nrows = 1000;
        let mut data = vec![usize::MAX; stride * nrows];
        parallel_for_rows(&mut data, stride, 4, |first_row, chunk| {
            assert_eq!(chunk.len() % stride, 0);
            for (k, v) in chunk.iter_mut().enumerate() {
                *v = first_row + k / stride;
            }
        });
        for (i, v) in data.iter().enumerate() {
            assert_eq!(*v, i / stride);
        }
    }

    #[test]
    #[should_panic(expected = "whole number of rows")]
    fn parallel_for_rows_validates_stride() {
        let mut data = vec![0u8; 10];
        parallel_for_rows(&mut data, 3, 1, |_, _| {});
    }

    #[test]
    fn map_reduce_is_deterministic() {
        let a = parallel_map_reduce(
            100_000,
            64,
            0f64,
            |r| r.map(|i| i as f64).sum(),
            |a, b| a + b,
        );
        let b = parallel_map_reduce(
            100_000,
            64,
            0f64,
            |r| r.map(|i| i as f64).sum(),
            |a, b| a + b,
        );
        assert_eq!(a, b);
    }

    #[test]
    fn empty_inputs_are_noops() {
        parallel_for(0, 1, |_| panic!("should not run"));
        let mut empty: Vec<u8> = Vec::new();
        parallel_for_mut(&mut empty, 1, |_, _| panic!("should not run"));
        let v = parallel_map_reduce(0, 1, 42u32, |_| panic!("should not run"), |a, _b| a);
        assert_eq!(v, 42);
    }

    #[test]
    fn parallelism_limit_forces_sequential() {
        let before = parallelism_limit();
        with_parallelism(1, || {
            assert_eq!(effective_parallelism(), 1);
            // Work still completes correctly.
            let mut data = vec![0usize; 1000];
            parallel_for_mut(&mut data, 1, |offset, chunk| {
                for (i, v) in chunk.iter_mut().enumerate() {
                    *v = offset + i;
                }
            });
            assert!(data.iter().enumerate().all(|(i, &v)| v == i));
        });
        assert_eq!(parallelism_limit(), before);
    }

    #[test]
    fn panics_propagate() {
        let result = std::panic::catch_unwind(|| {
            parallel_for(1000, 1, |r| {
                if r.contains(&500) {
                    panic!("boom");
                }
            });
        });
        assert!(result.is_err());
    }

    #[test]
    fn scope_workers_runs_every_slot_concurrently() {
        let mut slots: Vec<(usize, std::thread::ThreadId)> =
            vec![(0, std::thread::current().id()); 4];
        scope_workers(&mut slots, |i, slot| {
            slot.0 = i + 1;
            slot.1 = std::thread::current().id();
        });
        for (i, (v, tid)) in slots.iter().enumerate() {
            assert_eq!(*v, i + 1);
            assert_ne!(
                *tid,
                std::thread::current().id(),
                "multi-slot workers run on dedicated threads"
            );
        }
    }

    #[test]
    fn scope_workers_single_slot_runs_inline() {
        let mut slots = [std::thread::current().id()];
        scope_workers(&mut slots, |_, slot| *slot = std::thread::current().id());
        assert_eq!(slots[0], std::thread::current().id());
        // Zero slots is a no-op.
        scope_workers::<u8, _>(&mut [], |_, _| unreachable!());
    }

    #[test]
    fn scope_workers_propagates_worker_panics() {
        let result = std::panic::catch_unwind(|| {
            let mut slots = [0u32; 3];
            scope_workers(&mut slots, |i, _| {
                if i == 2 {
                    panic!("worker down");
                }
            });
        });
        assert!(result.is_err());
    }
}
