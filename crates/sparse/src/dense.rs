//! Row-major dense matrices used as SpMM operands.
//!
//! The autograd crate (`tensor`) has its own tensor type; these are the
//! minimal owned/borrowed dense-matrix views the sparse kernels operate on so
//! that `sparse` stays dependency-free in that direction.

use serde::{Deserialize, Serialize};

/// An owned row-major `rows × cols` matrix of `f32`.
///
/// # Examples
///
/// ```
/// use sparse::DenseMatrix;
///
/// let m = DenseMatrix::from_rows(&[[1.0, 2.0], [3.0, 4.0]]);
/// assert_eq!(m.rows(), 2);
/// assert_eq!(m.get(1, 0), 3.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DenseMatrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl DenseMatrix {
    /// Creates a zero-filled matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates a matrix from an existing row-major buffer.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "buffer length {} does not match {rows}x{cols}",
            data.len()
        );
        Self { rows, cols, data }
    }

    /// Creates a matrix from fixed-size row arrays.
    pub fn from_rows<const N: usize>(rows: &[[f32; N]]) -> Self {
        let mut data = Vec::with_capacity(rows.len() * N);
        for row in rows {
            data.extend_from_slice(row);
        }
        Self {
            rows: rows.len(),
            cols: N,
            data,
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// The underlying row-major buffer.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable access to the underlying row-major buffer.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the matrix, returning its buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Borrows row `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= rows`.
    pub fn row(&self, i: usize) -> &[f32] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Mutably borrows row `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= rows`.
    pub fn row_mut(&mut self, i: usize) -> &mut [f32] {
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Element accessor.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    pub fn get(&self, i: usize, j: usize) -> f32 {
        assert!(i < self.rows && j < self.cols, "({i},{j}) out of bounds");
        self.data[i * self.cols + j]
    }

    /// Sets one element.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    pub fn set(&mut self, i: usize, j: usize, v: f32) {
        assert!(i < self.rows && j < self.cols, "({i},{j}) out of bounds");
        self.data[i * self.cols + j] = v;
    }

    /// Borrowed view of the whole matrix.
    pub fn view(&self) -> DenseView<'_> {
        DenseView {
            rows: self.rows,
            cols: self.cols,
            data: &self.data,
        }
    }
}

/// A borrowed row-major matrix view.
///
/// Kernels accept `DenseView` so callers (notably the tensor crate) can pass
/// externally-owned buffers without copying.
#[derive(Debug, Clone, Copy)]
pub struct DenseView<'a> {
    rows: usize,
    cols: usize,
    data: &'a [f32],
}

impl<'a> DenseView<'a> {
    /// Wraps a row-major buffer.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn new(rows: usize, cols: usize, data: &'a [f32]) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "buffer length {} does not match {rows}x{cols}",
            data.len()
        );
        Self { rows, cols, data }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Underlying buffer.
    pub fn as_slice(&self) -> &[f32] {
        self.data
    }

    /// Borrows row `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= rows`.
    pub fn row(&self, i: usize) -> &'a [f32] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }
}

impl<'a> From<&'a DenseMatrix> for DenseView<'a> {
    fn from(m: &'a DenseMatrix) -> Self {
        m.view()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_and_accessors() {
        let mut m = DenseMatrix::zeros(3, 2);
        m.set(2, 1, 5.5);
        assert_eq!(m.get(2, 1), 5.5);
        assert_eq!(m.row(2), &[0.0, 5.5]);
        m.row_mut(0)[0] = 1.0;
        assert_eq!(m.as_slice()[0], 1.0);
        let v: DenseView = (&m).into();
        assert_eq!(v.row(2), &[0.0, 5.5]);
        assert_eq!(v.rows(), 3);
        assert_eq!(v.cols(), 2);
    }

    #[test]
    #[should_panic(expected = "does not match")]
    fn from_vec_validates_length() {
        let _ = DenseMatrix::from_vec(2, 2, vec![0.0; 3]);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn get_bounds_checked() {
        let m = DenseMatrix::zeros(1, 1);
        let _ = m.get(1, 0);
    }
}
