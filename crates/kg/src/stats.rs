//! Dataset statistics: degree distributions and relation cardinality
//! classes.
//!
//! These are the structural properties the synthetic generator
//! ([`crate::synthetic`]) is calibrated on — heavy-tailed entity degrees
//! (gather/scatter locality) and the 1-1 / 1-N / N-1 / N-N relation mix
//! (ranking difficulty). The benchmark harness prints them so runs on
//! synthetic stand-ins can be sanity-checked against the original datasets'
//! published statistics.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use crate::TripleStore;

/// Cardinality class of a relation, following Bordes et al. (2013): a
/// relation is "1-to-N" in the tail direction if heads average more than 1.5
/// distinct tails, etc.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RelationClass {
    /// ≤ 1.5 tails per head and ≤ 1.5 heads per tail.
    OneToOne,
    /// > 1.5 tails per head, ≤ 1.5 heads per tail.
    OneToMany,
    /// ≤ 1.5 tails per head, > 1.5 heads per tail.
    ManyToOne,
    /// > 1.5 on both sides.
    ManyToMany,
}

/// Aggregate statistics of a triple store.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GraphStats {
    /// Number of triples measured.
    pub triples: usize,
    /// Number of distinct entities that actually appear.
    pub active_entities: usize,
    /// Number of distinct relations that actually appear.
    pub active_relations: usize,
    /// Mean entity degree (in + out).
    pub mean_degree: f64,
    /// Maximum entity degree.
    pub max_degree: usize,
    /// Fraction of total degree carried by the top 1% of entities — the
    /// heavy-tail indicator.
    pub top1pct_degree_share: f64,
    /// Relation-class histogram `(1-1, 1-N, N-1, N-N)`.
    pub class_counts: [usize; 4],
}

impl GraphStats {
    /// Computes statistics over `store` for a graph with `num_entities`.
    pub fn compute(store: &TripleStore, num_entities: usize) -> GraphStats {
        let mut degree = vec![0usize; num_entities];
        for t in store.iter() {
            degree[t.head as usize] += 1;
            degree[t.tail as usize] += 1;
        }
        let active_entities = degree.iter().filter(|&&d| d > 0).count();
        let total_degree: usize = degree.iter().sum();
        let max_degree = degree.iter().copied().max().unwrap_or(0);

        let mut sorted = degree.clone();
        sorted.sort_unstable_by(|a, b| b.cmp(a));
        let top = (num_entities / 100).max(1);
        let top_share = if total_degree == 0 {
            0.0
        } else {
            sorted[..top].iter().sum::<usize>() as f64 / total_degree as f64
        };

        let classes = classify_relations(store);
        let mut class_counts = [0usize; 4];
        for class in classes.values() {
            let idx = match class {
                RelationClass::OneToOne => 0,
                RelationClass::OneToMany => 1,
                RelationClass::ManyToOne => 2,
                RelationClass::ManyToMany => 3,
            };
            class_counts[idx] += 1;
        }

        GraphStats {
            triples: store.len(),
            active_entities,
            active_relations: classes.len(),
            mean_degree: if active_entities == 0 {
                0.0
            } else {
                total_degree as f64 / active_entities as f64
            },
            max_degree,
            top1pct_degree_share: top_share,
            class_counts,
        }
    }
}

/// Classifies every relation appearing in `store`.
pub fn classify_relations(store: &TripleStore) -> HashMap<u32, RelationClass> {
    // (rel, head) -> distinct-ish tail count; counting multiplicity is fine
    // for the 1.5 threshold on de-duplicated stores.
    let mut tails_of: HashMap<(u32, u32), u32> = HashMap::new();
    let mut heads_of: HashMap<(u32, u32), u32> = HashMap::new();
    for t in store.iter() {
        *tails_of.entry((t.rel, t.head)).or_insert(0) += 1;
        *heads_of.entry((t.rel, t.tail)).or_insert(0) += 1;
    }
    let mut tph: HashMap<u32, (u64, u64)> = HashMap::new();
    for ((rel, _), c) in &tails_of {
        let e = tph.entry(*rel).or_insert((0, 0));
        e.0 += u64::from(*c);
        e.1 += 1;
    }
    let mut hpt: HashMap<u32, (u64, u64)> = HashMap::new();
    for ((rel, _), c) in &heads_of {
        let e = hpt.entry(*rel).or_insert((0, 0));
        e.0 += u64::from(*c);
        e.1 += 1;
    }
    let mut out = HashMap::new();
    for (rel, (sum, n)) in &tph {
        let t = *sum as f64 / (*n).max(1) as f64;
        let (hs, hn) = hpt.get(rel).copied().unwrap_or((0, 1));
        let h = hs as f64 / hn.max(1) as f64;
        let class = match (t > 1.5, h > 1.5) {
            (false, false) => RelationClass::OneToOne,
            (true, false) => RelationClass::OneToMany,
            (false, true) => RelationClass::ManyToOne,
            (true, true) => RelationClass::ManyToMany,
        };
        out.insert(*rel, class);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synthetic::SyntheticKgBuilder;
    use crate::Triple;

    #[test]
    fn classifies_archetypes() {
        let mut store = TripleStore::new();
        // rel 0: 1-1 chain.
        for i in 0..10u32 {
            store.push(Triple::new(i, 0, i + 20));
        }
        // rel 1: 1-N fan-out from entity 0.
        for t in 1..=10u32 {
            store.push(Triple::new(0, 1, t + 30));
        }
        // rel 2: N-1 fan-in to entity 50.
        for h in 0..10u32 {
            store.push(Triple::new(h, 2, 50));
        }
        // rel 3: N-N bipartite block.
        for h in 0..4u32 {
            for t in 0..4u32 {
                store.push(Triple::new(h, 3, t + 60));
            }
        }
        let classes = classify_relations(&store);
        assert_eq!(classes[&0], RelationClass::OneToOne);
        assert_eq!(classes[&1], RelationClass::OneToMany);
        assert_eq!(classes[&2], RelationClass::ManyToOne);
        assert_eq!(classes[&3], RelationClass::ManyToMany);
    }

    #[test]
    fn stats_on_empty_store() {
        let s = GraphStats::compute(&TripleStore::new(), 10);
        assert_eq!(s.triples, 0);
        assert_eq!(s.active_entities, 0);
        assert_eq!(s.mean_degree, 0.0);
    }

    #[test]
    fn synthetic_graphs_are_heavy_tailed() {
        let ds = SyntheticKgBuilder::new(1_000, 10)
            .triples(8_000)
            .zipf_exponent(1.0)
            .seed(5)
            .build();
        let stats = GraphStats::compute(&ds.train, ds.num_entities);
        // Top 1% of entities must carry well above their uniform 1% share.
        assert!(
            stats.top1pct_degree_share > 0.05,
            "expected heavy tail, got {}",
            stats.top1pct_degree_share
        );
        assert!(stats.mean_degree > 1.0);
        assert!(stats.max_degree > 20);
        // Dense synthetic graphs tend toward N-N; the histogram must at
        // least be populated and consistent.
        assert_eq!(
            stats.class_counts.iter().sum::<usize>(),
            stats.active_relations,
            "class histogram {:?}",
            stats.class_counts
        );
    }

    #[test]
    fn uniform_graphs_are_flatter_than_zipf() {
        let zipf = SyntheticKgBuilder::new(1_000, 5)
            .triples(6_000)
            .zipf_exponent(1.1)
            .seed(6)
            .build();
        let flat = SyntheticKgBuilder::new(1_000, 5)
            .triples(6_000)
            .zipf_exponent(0.0)
            .seed(6)
            .build();
        let sz = GraphStats::compute(&zipf.train, 1_000);
        let sf = GraphStats::compute(&flat.train, 1_000);
        assert!(
            sz.top1pct_degree_share > sf.top1pct_degree_share,
            "zipf {} vs flat {}",
            sz.top1pct_degree_share,
            sf.top1pct_degree_share
        );
    }
}
