//! Criterion comparison of the paper's central contrast at kernel grain:
//! **gather + scatter-add** (the baseline's embedding access pattern) versus
//! **SpMM + transpose-SpMM** (SpTransX's). Same embedding rows touched, same
//! math — only the schedule differs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sparse::incidence::{hrt, IncidencePair, TailSign};
use sparse::spmm::csr_spmm;
use tensor::kernels::scatter_add_rows;
use tensor::{Graph, ParamStore, Tensor};

struct Setup {
    store: ParamStore,
    emb: tensor::ParamId,
    pair: std::sync::Arc<IncidencePair>,
    gather_idx: Vec<u32>,
    upstream: Tensor,
    m: usize,
    d: usize,
}

fn setup(n_ent: usize, n_rel: usize, m: usize, d: usize, seed: u64) -> Setup {
    let mut rng = StdRng::seed_from_u64(seed);
    let heads: Vec<u32> = (0..m).map(|_| rng.gen_range(0..n_ent as u32)).collect();
    let tails: Vec<u32> = (0..m)
        .map(|i| {
            let mut t = rng.gen_range(0..n_ent as u32);
            if t == heads[i] {
                t = (t + 1) % n_ent as u32;
            }
            t
        })
        .collect();
    let rels: Vec<u32> = (0..m).map(|_| rng.gen_range(0..n_rel as u32)).collect();
    let a = hrt(n_ent, n_rel, &heads, &rels, &tails, TailSign::Negative).unwrap();
    let mut store = ParamStore::new();
    let emb = store.add_param("emb", tensor::init::uniform(n_ent + n_rel, d, 1.0, seed));
    let mut gather_idx = Vec::with_capacity(3 * m);
    gather_idx.extend(&heads);
    gather_idx.extend(rels.iter().map(|&r| r + n_ent as u32));
    gather_idx.extend(&tails);
    let upstream = tensor::init::uniform(m, d, 1.0, seed + 1);
    Setup {
        store,
        emb,
        pair: std::sync::Arc::new(IncidencePair::new(a)),
        gather_idx,
        upstream,
        m,
        d,
    }
}

fn bench_forward(c: &mut Criterion) {
    let mut group = c.benchmark_group("forward_embedding_access");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(3));
    group.warm_up_time(std::time::Duration::from_secs(1));
    for &(m, d) in &[(4096usize, 128usize), (16384, 64)] {
        let s = setup(20_000, 200, m, d, 7);
        group.bench_with_input(
            BenchmarkId::new("spmm", format!("m{m}_d{d}")),
            &s,
            |b, s| {
                b.iter(|| {
                    let mut g = Graph::new();
                    g.spmm(&s.store, s.emb, s.pair.clone())
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("gather_add_sub", format!("m{m}_d{d}")),
            &s,
            |b, s| {
                b.iter(|| {
                    let mut g = Graph::new();
                    let h = g.gather(&s.store, s.emb, s.gather_idx[..s.m].to_vec());
                    let r = g.gather(&s.store, s.emb, s.gather_idx[s.m..2 * s.m].to_vec());
                    let t = g.gather(&s.store, s.emb, s.gather_idx[2 * s.m..].to_vec());
                    let hr = g.add(h, r);
                    g.sub(hr, t)
                })
            },
        );
    }
    group.finish();
}

fn bench_backward(c: &mut Criterion) {
    let mut group = c.benchmark_group("backward_gradient_distribution");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(3));
    group.warm_up_time(std::time::Duration::from_secs(1));
    {
        let &(m, d) = &(4096usize, 128usize);
        let s = setup(20_000, 200, m, d, 9);
        // SpTransX: grad = Aᵀ · G, one SpMM against the cached transpose.
        group.bench_with_input(
            BenchmarkId::new("transpose_spmm", format!("m{m}_d{d}")),
            &s,
            |b, s| b.iter(|| csr_spmm(&s.pair.transpose, s.upstream.view())),
        );
        // Baseline: scatter-add one row per (h, r, t) occurrence.
        group.bench_with_input(
            BenchmarkId::new("scatter_add", format!("m{m}_d{d}")),
            &s,
            |b, s| {
                b.iter(|| {
                    let mut grad = Tensor::zeros(s.store.value(s.emb).rows(), s.d);
                    // Three scatters (h, r, t), as three gathers in forward.
                    scatter_add_rows(&mut grad, &s.gather_idx[..s.m], &s.upstream);
                    scatter_add_rows(&mut grad, &s.gather_idx[s.m..2 * s.m], &s.upstream);
                    scatter_add_rows(&mut grad, &s.gather_idx[2 * s.m..], &s.upstream);
                    grad
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_forward, bench_backward);
criterion_main!(benches);
