//! Regenerates **Table 8** (Appendix E): mean ± std of filtered Hits@10 over
//! 9 seeds on the WN18 stand-in, sparse vs dense baseline, trained with the
//! step LR scheduler.
//!
//! Paper claim to check: SpTransX accuracy is comparable to (or slightly
//! better than) the baseline — the sparse schedule changes no math.

use kg::eval::EvalConfig;
use kg::synthetic::PaperDatasetSpec;
use sptransx::{
    DenseTorusE, DenseTransE, DenseTransH, DenseTransR, KgeModel, SpTorusE, SpTransE, SpTransH,
    SpTransR, TrainConfig, Trainer,
};
use sptx_bench::harness::{epochs_from_env, print_table, scale_from_env};

const SEEDS: [u64; 9] = [11, 22, 33, 44, 55, 66, 77, 88, 99];

fn main() {
    let scale = scale_from_env();
    let epochs = epochs_from_env().max(10);
    println!(
        "# Table 8 — Hits@10 over {} seeds (WN18 stand-in, scale 1/{scale})",
        SEEDS.len()
    );
    let spec = PaperDatasetSpec::by_name("WN18").expect("known dataset");
    let ds = spec.generate(scale, 0x88);
    let eval_cfg = EvalConfig {
        max_triples: Some(150),
        ..Default::default()
    };

    let base = TrainConfig {
        epochs,
        batch_size: 2048,
        dim: 32,
        rel_dim: 16,
        lr: 0.3,
        lr_schedule: Some((5, 0.7)),
        ..Default::default()
    };

    let mut rows = Vec::new();
    macro_rules! model_pair {
        ($name:literal, $sp:ident, $de:ident) => {{
            let sp = stats($name, "sparse", &ds, &base, &eval_cfg, |ds, cfg| {
                run($sp::from_config(ds, cfg).unwrap(), ds, cfg, &eval_cfg)
            });
            let de = stats($name, "dense", &ds, &base, &eval_cfg, |ds, cfg| {
                run($de::from_config(ds, cfg).unwrap(), ds, cfg, &eval_cfg)
            });
            rows.push(vec![
                $name.to_string(),
                format!("{:.3} ± {:.4}", de.0, de.1),
                format!("{:.3} ± {:.4}", sp.0, sp.1),
            ]);
        }};
    }
    model_pair!("TransE", SpTransE, DenseTransE);
    model_pair!("TransR", SpTransR, DenseTransR);
    model_pair!("TransH", SpTransH, DenseTransH);
    model_pair!("TorusE", SpTorusE, DenseTorusE);

    print_table(
        "Filtered Hits@10 (mean ± std over seeds)",
        &["Model", "Baseline (TorchKGE-style)", "SpTransX"],
        &rows,
    );
    println!("\nExpected shape: overlapping intervals — the sparse formulation is");
    println!("accuracy-neutral (paper reports equal or slightly better Hits@10).");
}

fn run<M: KgeModel + kg::eval::BatchScorer>(
    model: M,
    ds: &kg::Dataset,
    cfg: &TrainConfig,
    eval_cfg: &EvalConfig,
) -> f32 {
    let mut t = Trainer::new(model, ds, cfg).expect("trainer");
    t.run().expect("train");
    t.evaluate_batched(ds, eval_cfg).hits(10).unwrap_or(0.0)
}

fn stats(
    model: &str,
    variant: &str,
    ds: &kg::Dataset,
    base: &TrainConfig,
    _eval: &EvalConfig,
    f: impl Fn(&kg::Dataset, &TrainConfig) -> f32,
) -> (f64, f64) {
    let mut values = Vec::with_capacity(SEEDS.len());
    for &seed in &SEEDS {
        eprintln!("[table8] {model}/{variant} seed {seed} ...");
        let cfg = TrainConfig {
            seed,
            ..base.clone()
        };
        values.push(f64::from(f(ds, &cfg)));
    }
    let mean = values.iter().sum::<f64>() / values.len() as f64;
    let var = values.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / values.len() as f64;
    (mean, var.sqrt())
}
