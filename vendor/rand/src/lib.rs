//! Minimal offline shim for the subset of the `rand` 0.8 API this workspace
//! uses: [`rngs::StdRng`] seeded via [`SeedableRng::seed_from_u64`], the
//! [`Rng`] extension methods `gen_range` / `gen` / `gen_bool`, and
//! [`seq::SliceRandom::shuffle`].
//!
//! The container building this repository has no access to crates.io, so the
//! workspace vendors tiny API-compatible stand-ins for its external
//! dependencies (see `vendor/README.md`). The generator is SplitMix64 — fast,
//! 64-bit equidistributed, and entirely deterministic from the seed, which is
//! what the reproduction's tests and synthetic-dataset builders need. Streams
//! differ from upstream `StdRng` (ChaCha12), so seeds produce different
//! values than the real crate; every consumer in this workspace only relies
//! on determinism, not on specific streams.

use std::ops::{Range, RangeInclusive};

/// A low-level source of 64-bit random words.
pub trait RngCore {
    /// Returns the next word in the stream.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32-bit word in the stream.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable generators (subset: construction from a `u64`).
pub trait SeedableRng: Sized {
    /// Creates a generator deterministically from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing extension methods, implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples uniformly from a half-open or inclusive range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: SampleRange<T>,
    {
        range.sample(self.as_core())
    }

    /// Samples a value of `T` from its standard distribution
    /// (`[0, 1)` for floats, full range for integers).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self.as_core())
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability out of range"
        );
        f64::sample(self.as_core()) < p
    }

    #[doc(hidden)]
    fn as_core(&mut self) -> &mut dyn RngCore;
}

impl<R: RngCore> Rng for R {
    fn as_core(&mut self) -> &mut dyn RngCore {
        self
    }
}

/// Types that can be sampled uniformly from a range.
pub trait SampleUniform: PartialOrd + Copy {
    /// Uniform sample from `[lo, hi)`.
    fn sample_half_open(rng: &mut dyn RngCore, lo: Self, hi: Self) -> Self;
    /// Uniform sample from `[lo, hi]`.
    fn sample_inclusive(rng: &mut dyn RngCore, lo: Self, hi: Self) -> Self;
}

/// Range argument accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    fn sample(self, rng: &mut dyn RngCore) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample(self, rng: &mut dyn RngCore) -> T {
        assert!(self.start < self.end, "cannot sample from empty range");
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample(self, rng: &mut dyn RngCore) -> T {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "cannot sample from empty range");
        T::sample_inclusive(rng, lo, hi)
    }
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open(rng: &mut dyn RngCore, lo: Self, hi: Self) -> Self {
                // Span fits in u128 for every integer type we support; the
                // modulo bias is < span / 2^64, negligible for this
                // workspace's test/data-generation workloads.
                let span = (hi as i128 - lo as i128) as u128;
                let offset = (rng.next_u64() as u128) % span;
                (lo as i128 + offset as i128) as $t
            }
            fn sample_inclusive(rng: &mut dyn RngCore, lo: Self, hi: Self) -> Self {
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let offset = (rng.next_u64() as u128) % span;
                (lo as i128 + offset as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open(rng: &mut dyn RngCore, lo: Self, hi: Self) -> Self {
                // Sample at the target precision (not via a wider cast) and
                // clamp: `lo + u * (hi - lo)` can round up to `hi` when `u`
                // is within one ulp of 1, which would violate the half-open
                // contract.
                let u = <$t as Standard>::sample(rng);
                let v = lo + u * (hi - lo);
                if v >= hi { hi.next_down().max(lo) } else { v }
            }
            fn sample_inclusive(rng: &mut dyn RngCore, lo: Self, hi: Self) -> Self {
                let u = <$t as Standard>::sample(rng);
                lo + u * (hi - lo)
            }
        }
    )*};
}

impl_sample_uniform_float!(f32, f64);

/// Standard-distribution sampling used by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one sample.
    fn sample(rng: &mut dyn RngCore) -> Self;
}

impl Standard for f64 {
    fn sample(rng: &mut dyn RngCore) -> Self {
        // 53 mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample(rng: &mut dyn RngCore) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for u32 {
    fn sample(rng: &mut dyn RngCore) -> Self {
        rng.next_u32()
    }
}

impl Standard for u64 {
    fn sample(rng: &mut dyn RngCore) -> Self {
        rng.next_u64()
    }
}

impl Standard for usize {
    fn sample(rng: &mut dyn RngCore) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    fn sample(rng: &mut dyn RngCore) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator (SplitMix64).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // Pre-mix the seed so small sequential seeds (0, 1, 2, …) do not
            // produce correlated early outputs.
            let mut rng = Self {
                state: seed ^ 0x5D58_8B65_6C07_8965,
            };
            rng.next_u64();
            rng
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

/// Slice extensions (`rand::seq` subset).
pub mod seq {
    use super::Rng;

    /// In-place random reordering of slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle driven by `rng`.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_from_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0..1000u32), b.gen_range(0..1000u32));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(3..17usize);
            assert!((3..17).contains(&v));
            let f = rng.gen_range(-2.0f32..2.0);
            assert!((-2.0..2.0).contains(&f));
            let i = rng.gen_range(0..=4usize);
            assert!(i <= 4);
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(1);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "hits={hits}");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut v: Vec<usize> = (0..100).collect();
        v.shuffle(&mut StdRng::seed_from_u64(5));
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, (0..100).collect::<Vec<_>>());
    }
}
