//! Parameter storage: the model's learnable tensors and their gradients.

use crate::{Error, Result, Tensor};

/// Opaque handle to a parameter in a [`ParamStore`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ParamId(pub(crate) usize);

impl ParamId {
    /// The dense index of this parameter within its store (stable for the
    /// store's lifetime; optimizers key their state on it).
    pub fn index(self) -> usize {
        self.0
    }
}

/// Owns a model's learnable tensors and their gradient accumulators.
///
/// Parameters live *outside* the autograd tape: per-batch [`crate::Graph`]s
/// reference them by [`ParamId`] so the (potentially huge) embedding matrices
/// are never copied into the graph. Gradients accumulate across
/// [`crate::Graph::backward`] calls until [`ParamStore::zero_grads`].
///
/// # Examples
///
/// ```
/// use tensor::{ParamStore, Tensor};
///
/// let mut store = ParamStore::new();
/// let w = store.add_param("weights", Tensor::zeros(4, 2));
/// assert_eq!(store.value(w).shape(), (4, 2));
/// assert_eq!(store.lookup("weights"), Some(w));
/// ```
#[derive(Debug, Default)]
pub struct ParamStore {
    names: Vec<String>,
    values: Vec<Tensor>,
    grads: Vec<Tensor>,
}

impl ParamStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a parameter, returning its handle.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered (parameter names are unique).
    pub fn add_param(&mut self, name: impl Into<String>, value: Tensor) -> ParamId {
        let name = name.into();
        assert!(
            !self.names.contains(&name),
            "duplicate parameter name: {name}"
        );
        let grad = Tensor::zeros(value.rows(), value.cols());
        self.names.push(name);
        self.values.push(value);
        self.grads.push(grad);
        ParamId(self.values.len() - 1)
    }

    /// Finds a parameter by name.
    pub fn lookup(&self, name: &str) -> Option<ParamId> {
        self.names.iter().position(|n| n == name).map(ParamId)
    }

    /// Like [`lookup`](Self::lookup) but returns an error for missing names.
    ///
    /// # Errors
    ///
    /// Returns [`Error::UnknownParam`] if no parameter has this name.
    pub fn require(&self, name: &str) -> Result<ParamId> {
        self.lookup(name).ok_or_else(|| Error::UnknownParam {
            name: name.to_string(),
        })
    }

    /// Number of registered parameters.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Parameter name.
    pub fn name(&self, id: ParamId) -> &str {
        &self.names[id.0]
    }

    /// Borrows a parameter's value.
    pub fn value(&self, id: ParamId) -> &Tensor {
        &self.values[id.0]
    }

    /// Mutably borrows a parameter's value (e.g. for normalization between
    /// epochs, as TransE does).
    pub fn value_mut(&mut self, id: ParamId) -> &mut Tensor {
        &mut self.values[id.0]
    }

    /// Borrows a parameter's gradient accumulator.
    pub fn grad(&self, id: ParamId) -> &Tensor {
        &self.grads[id.0]
    }

    /// Mutably borrows a parameter's gradient accumulator.
    pub fn grad_mut(&mut self, id: ParamId) -> &mut Tensor {
        &mut self.grads[id.0]
    }

    /// Simultaneously borrows value immutably and gradient mutably.
    pub(crate) fn value_and_grad_mut(&mut self, id: ParamId) -> (&Tensor, &mut Tensor) {
        (&self.values[id.0], &mut self.grads[id.0])
    }

    /// Iterates over `(id, value, grad)` triples mutably (optimizer hook).
    pub fn iter_mut(&mut self) -> impl Iterator<Item = (ParamId, &mut Tensor, &mut Tensor)> {
        self.values
            .iter_mut()
            .zip(self.grads.iter_mut())
            .enumerate()
            .map(|(i, (v, g))| (ParamId(i), v, g))
    }

    /// Handles of all registered parameters, in registration order.
    pub fn param_ids(&self) -> Vec<ParamId> {
        (0..self.values.len()).map(ParamId).collect()
    }

    /// Zeroes all gradient accumulators.
    pub fn zero_grads(&mut self) {
        for g in &mut self.grads {
            g.zero_();
        }
    }

    /// Total number of learnable scalars.
    pub fn num_scalars(&self) -> usize {
        self.values.iter().map(Tensor::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_lookup_and_access() {
        let mut s = ParamStore::new();
        let a = s.add_param("a", Tensor::zeros(2, 3));
        let b = s.add_param("b", Tensor::zeros(1, 1));
        assert_eq!(s.len(), 2);
        assert_eq!(s.lookup("a"), Some(a));
        assert_eq!(s.lookup("missing"), None);
        assert!(s.require("missing").is_err());
        assert_eq!(s.name(b), "b");
        assert_eq!(s.num_scalars(), 7);
        s.value_mut(a).set(0, 0, 1.0);
        assert_eq!(s.value(a).get(0, 0), 1.0);
    }

    #[test]
    fn grads_zeroable() {
        let mut s = ParamStore::new();
        let a = s.add_param("a", Tensor::zeros(2, 2));
        s.grad_mut(a).set(1, 1, 5.0);
        s.zero_grads();
        assert_eq!(s.grad(a).get(1, 1), 0.0);
    }

    #[test]
    #[should_panic(expected = "duplicate parameter name")]
    fn duplicate_names_rejected() {
        let mut s = ParamStore::new();
        s.add_param("x", Tensor::zeros(1, 1));
        s.add_param("x", Tensor::zeros(1, 1));
    }
}
