//! Regenerates **Table 6**: average FLOP count per model, SpTransX vs the
//! dense baseline.
//!
//! FLOPs are recorded analytically by the instrumented kernels (the paper
//! uses `perf`). Paper claim to check: SpTransX executes fewer
//! floating-point operations — the incidence SpMM's ±1 coefficients are pure
//! adds, and the rearranged formulations avoid duplicated projections.

use sptx_bench::harness::{
    bench_config, epochs_from_env, factor, paper_datasets, print_table, run_model, scale_from_env,
    ModelKind, Variant,
};

fn main() {
    let scale = scale_from_env();
    let epochs = epochs_from_env();
    println!("# Table 6 — average FLOP count (scale 1/{scale}, {epochs} epochs)");
    let datasets = paper_datasets(scale);
    let n = datasets.len() as u64;

    let mut rows = Vec::new();
    for kind in ModelKind::ALL {
        let (dim, rel_dim, bs) = match kind {
            ModelKind::TransE | ModelKind::TorusE => (128, 8, 4096),
            ModelKind::TransR => (32, 16, 2048),
            ModelKind::TransH => (32, 32, 1024),
        };
        let cfg = bench_config(dim, rel_dim, bs, epochs);
        let mut flops = [0u64; 2];
        for (vi, variant) in [Variant::Sparse, Variant::Dense].into_iter().enumerate() {
            for (spec, ds) in &datasets {
                eprintln!(
                    "[table6] {} {} {} ...",
                    kind.name(),
                    variant.name(),
                    spec.name
                );
                flops[vi] += run_model(kind, variant, ds, &cfg).flops;
            }
            flops[vi] /= n;
        }
        rows.push(vec![
            kind.name().to_string(),
            format!("{:.2}", flops[0] as f64 / 1e9),
            format!("{:.2}", flops[1] as f64 / 1e9),
            factor(flops[0] as f64, flops[1] as f64),
        ]);
    }
    print_table(
        "Mean GFLOPs per training run",
        &["Model", "SpTransX", "Baseline", "Baseline overhead"],
        &rows,
    );
    println!("\nExpected shape: SpTransX ≤ Baseline for every model.");
}
