//! # SparseTransX reproduction — facade crate
//!
//! This crate re-exports the entire workspace: a from-scratch Rust
//! reproduction of *SparseTransX: Efficient Training of Translation-Based
//! Knowledge Graph Embeddings Using Sparse Matrix Operations* (MLSys 2025).
//!
//! The individual subsystems live in dedicated crates:
//!
//! * [`xparallel`] — persistent thread pool and parallel loops.
//! * [`sparse`] — COO/CSR matrices, (semiring) SpMM kernels, incidence builders.
//! * [`tensor`] — dense tensors, tape autograd, optimizers, losses.
//! * [`kg`] — triple stores, dataset loaders/generators, sampling, evaluation.
//! * [`simcache`] — cache simulator used for the Table 7 analog.
//! * [`sptransx`] — the models (sparse + dense baselines) and trainers.
//!
//! # Examples
//!
//! ```
//! use sptransx_repro::prelude::*;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let dataset = kg::synthetic::SyntheticKgBuilder::new(200, 8)
//!     .triples(1_000)
//!     .seed(7)
//!     .build();
//! let config = TrainConfig { epochs: 2, batch_size: 256, dim: 16, ..Default::default() };
//! let mut trainer = Trainer::new(SpTransE::from_config(&dataset, &config)?, &dataset, &config)?;
//! let report = trainer.run()?;
//! assert_eq!(report.epoch_losses.len(), 2);
//! # Ok(())
//! # }
//! ```

pub use kg;
pub use simcache;
pub use sparse;
pub use sptransx;
pub use tensor;
pub use xparallel;

pub mod cli;

/// Convenience re-exports of the most commonly used items.
pub mod prelude {
    pub use kg::{self, Dataset, TripleStore};
    pub use sparse::{CooMatrix, CsrMatrix};
    pub use sptransx::{
        DenseTorusE, DenseTransE, DenseTransH, DenseTransR, KgeModel, SpComplEx, SpDistMult,
        SpRotatE, SpTorusE, SpTransC, SpTransE, SpTransH, SpTransM, SpTransR, TrainConfig, Trainer,
    };
    pub use tensor::Tensor;
}
