//! Evaluation scoring helpers and the complex-embedding scorers
//! (ComplEx / RotatE, paper Appendix D).
//!
//! The second half of this module is the **batched evaluation engine**: the
//! shared kernels behind every model's [`kg::eval::BatchScorer`]
//! implementation. A chunk of ranking queries is turned into a 2-nonzero
//! query incidence matrix, pushed through the same `sparse::spmm` /
//! `sparse::semiring` kernels used in training to materialize the query
//! vectors, and then scored against every candidate entity with one
//! pool-parallel pass over the `(chunk × num_entities)` output buffer —
//! replacing one heap-allocated `Vec` and one kernel dispatch *per query*
//! with one of each *per chunk*. (The standalone ComplEx/RotatE scorers use
//! a per-query *candidates* incidence instead — see
//! `candidate_semiring_scores_into` for the cost trade-off.)
//!
//! Every helper reproduces its scalar counterpart's arithmetic
//! operation-for-operation, so batched and scalar evaluation produce
//! bit-identical score buffers (property-tested in
//! `tests/batch_eval_properties.rs`).

use kg::eval::{BatchScorer, TripleScorer};
use sparse::incidence::{hrt, TailSign};
use sparse::semiring::{
    semiring_spmm, semiring_spmm_into, ComplexTriple, RotateTriple, Semiring, TimesTimes,
};
use sparse::spmm::csr_spmm_into;
use sparse::{Complex32, CooMatrix, CsrMatrix, DenseView};

use crate::model::Norm;

/// Distances from `query` to each of the first `n` rows of a row-major
/// `buffer` with row width `d`, under `norm`. Parallelized over rows.
pub(crate) fn distances_to_rows(
    buffer: &[f32],
    n: usize,
    d: usize,
    query: &[f32],
    norm: Norm,
) -> Vec<f32> {
    debug_assert!(buffer.len() >= n * d);
    debug_assert_eq!(query.len(), d);
    let mut out = vec![0f32; n];
    xparallel::parallel_for_mut(&mut out, 256, |offset, chunk| {
        for (k, dst) in chunk.iter_mut().enumerate() {
            let i = offset + k;
            *dst = norm.distance(query, &buffer[i * d..(i + 1) * d]);
        }
    });
    out
}

// ---------------------------------------------------------------------------
// Batched evaluation kernels (shared by every BatchScorer implementation)
// ---------------------------------------------------------------------------

/// Direction of a batch of ranking queries, fixing how `(u32, u32)` pairs are
/// interpreted: tail queries are `(head, rel)`, head queries are `(rel, tail)`
/// (matching the scalar `score_tails` / `score_heads` argument orders).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum QueryDir {
    /// Predict tails: query entity is the head, relation enters with `+1`
    /// (`q = h + r`).
    Tails,
    /// Predict heads: query entity is the tail, relation enters with `−1`
    /// (`q = t − r`).
    Heads,
}

impl QueryDir {
    /// `(entity, relation)` of one raw query pair under this direction.
    #[inline]
    pub(crate) fn split(self, q: (u32, u32)) -> (u32, u32) {
        match self {
            QueryDir::Tails => (q.0, q.1),
            QueryDir::Heads => (q.1, q.0),
        }
    }
}

/// Builds the `chunk × (N + R)` query incidence matrix over the stacked
/// `[entities; relations]` embedding layout: row `i` holds `+1` at the query
/// entity and `rel_coeff` at `N + rel` — the evaluation-time analog of the
/// training `hrt` incidence, with the unknown candidate column left open.
pub(crate) fn stacked_query_incidence(
    num_entities: usize,
    num_relations: usize,
    queries: &[(u32, u32)],
    dir: QueryDir,
    rel_coeff: f32,
) -> CsrMatrix {
    let m = queries.len();
    let mut coo = CooMatrix::with_capacity(m, num_entities + num_relations, 2 * m);
    for (i, &q) in queries.iter().enumerate() {
        let (ent, rel) = dir.split(q);
        assert!(
            (ent as usize) < num_entities && (rel as usize) < num_relations,
            "query ({ent}, {rel}) out of range for {num_entities} entities / {num_relations} relations"
        );
        coo.push_unchecked(i, ent as usize, 1.0);
        coo.push_unchecked(i, num_entities + rel as usize, rel_coeff);
    }
    coo.to_csr()
}

/// Materializes a chunk's translational query vectors `q = h + r` (tails) or
/// `q = t − r` (heads) with the training [`csr_spmm_into`] kernel over the
/// stacked `(N + R) × d` embedding matrix.
pub(crate) fn stacked_query_rows(
    emb: &[f32],
    num_entities: usize,
    num_relations: usize,
    d: usize,
    queries: &[(u32, u32)],
    dir: QueryDir,
) -> Vec<f32> {
    let rel_coeff = match dir {
        QueryDir::Tails => 1.0,
        QueryDir::Heads => -1.0,
    };
    let a = stacked_query_incidence(num_entities, num_relations, queries, dir, rel_coeff);
    let mut q = vec![0f32; queries.len() * d];
    csr_spmm_into(
        &a,
        DenseView::new(num_entities + num_relations, d, emb),
        &mut q,
    );
    q
}

/// Like [`stacked_query_rows`] but through a product semiring
/// ([`semiring_spmm_into`]): row `i` becomes `ent_i ⊙ rel_i` under `S`
/// (DistMult's `h ⊙ r`, ComplEx/RotatE's complex `h ∘ r`).
pub(crate) fn stacked_query_rows_semiring<S: Semiring>(
    emb: &[S::Scalar],
    num_entities: usize,
    num_relations: usize,
    d: usize,
    queries: &[(u32, u32)],
    dir: QueryDir,
) -> Vec<S::Scalar> {
    let a = stacked_query_incidence(num_entities, num_relations, queries, dir, 1.0);
    let mut q = vec![S::Scalar::default(); queries.len() * d];
    semiring_spmm_into::<S>(&a, emb, num_entities + num_relations, d, &mut q);
    q
}

/// Scores every `(query, candidate)` element of the `chunk × n` buffer in
/// parallel on the global pool: `out[qi * n + cand] = f(qi, cand, scratch)`.
///
/// `scratch` is a per-worker `f32` buffer of length `scratch_len` for models
/// whose candidate transform needs temporary storage (TransH/TransR
/// projections) — allocated once per worker chunk, not per element.
pub(crate) fn for_each_score<F>(n: usize, scratch_len: usize, out: &mut [f32], f: F)
where
    F: Fn(usize, usize, &mut [f32]) -> f32 + Sync,
{
    if n == 0 {
        return;
    }
    debug_assert_eq!(out.len() % n, 0);
    xparallel::parallel_for_mut(out, 256, |offset, chunk| {
        let mut scratch = vec![0f32; scratch_len];
        // Track (query, candidate) incrementally — a div/mod per element
        // costs more than the cheap per-element score kernels.
        let mut qi = offset / n;
        let mut cand = offset % n;
        for dst in chunk.iter_mut() {
            *dst = f(qi, cand, &mut scratch);
            cand += 1;
            if cand == n {
                cand = 0;
                qi += 1;
            }
        }
    });
}

/// Batched counterpart of [`distances_to_rows`]: fills
/// `out[qi * n + cand] = norm.distance(queries[qi], emb[cand])` for the first
/// `n` rows of `emb`, parallel over the whole chunk buffer.
pub(crate) fn batched_distances_into(
    queries: &[f32],
    d: usize,
    emb: &[f32],
    n: usize,
    norm: Norm,
    out: &mut [f32],
) {
    debug_assert!(emb.len() >= n * d);
    if n == 0 {
        return;
    }
    debug_assert_eq!(out.len() % n, 0);
    // Element-granular split (a worker window may start mid-row), but the
    // inner loop walks whole per-query runs so the query row is sliced once
    // per run instead of once per candidate.
    xparallel::parallel_for_mut(out, 256, |offset, chunk| {
        let mut idx = offset;
        let mut remaining = chunk;
        while !remaining.is_empty() {
            let (qi, cand0) = (idx / n, idx % n);
            let run = (n - cand0).min(remaining.len());
            let (cur, rest) = remaining.split_at_mut(run);
            let q = &queries[qi * d..(qi + 1) * d];
            let mut e = cand0 * d;
            for dst in cur {
                *dst = norm.distance(q, &emb[e..e + d]);
                e += d;
            }
            idx += run;
            remaining = rest;
        }
    });
}

/// Batched scoring for the stacked translational models (TransE, TorusE and
/// friends): query vectors via one SpMM, then pool-parallel distances.
#[allow(clippy::too_many_arguments)]
pub(crate) fn translational_scores_into(
    emb: &[f32],
    num_entities: usize,
    num_relations: usize,
    d: usize,
    norm: Norm,
    queries: &[(u32, u32)],
    dir: QueryDir,
    out: &mut [f32],
) {
    let q = stacked_query_rows(emb, num_entities, num_relations, d, queries, dir);
    batched_distances_into(&q, d, emb, num_entities, norm, out);
}

/// Batched scoring for split-parameter translational baselines (dense TransE
/// / TorusE): queries gathered directly from separate entity/relation tables,
/// same parallel distance pass.
#[allow(clippy::too_many_arguments)]
pub(crate) fn gathered_translational_scores_into(
    ent: &[f32],
    rel: &[f32],
    num_entities: usize,
    d: usize,
    norm: Norm,
    queries: &[(u32, u32)],
    dir: QueryDir,
    out: &mut [f32],
) {
    let mut q = vec![0f32; queries.len() * d];
    for (row, &raw) in q.chunks_exact_mut(d.max(1)).zip(queries) {
        let (e, r) = dir.split(raw);
        let e_row = &ent[e as usize * d..(e as usize + 1) * d];
        let r_row = &rel[r as usize * d..(r as usize + 1) * d];
        match dir {
            QueryDir::Tails => {
                for ((dst, a), b) in row.iter_mut().zip(e_row).zip(r_row) {
                    *dst = a + b;
                }
            }
            QueryDir::Heads => {
                for ((dst, a), b) in row.iter_mut().zip(e_row).zip(r_row) {
                    *dst = a - b;
                }
            }
        }
    }
    batched_distances_into(&q, d, ent, num_entities, norm, out);
}

/// Batched DistMult scoring: `q = h ⊙ r` (or `t ⊙ r`) via the
/// [`TimesTimes`] semiring kernel, then `out = −⟨q, e⟩` per candidate.
pub(crate) fn distmult_scores_into(
    emb: &[f32],
    num_entities: usize,
    num_relations: usize,
    d: usize,
    queries: &[(u32, u32)],
    dir: QueryDir,
    out: &mut [f32],
) {
    let q = stacked_query_rows_semiring::<TimesTimes>(
        emb,
        num_entities,
        num_relations,
        d,
        queries,
        dir,
    );
    for_each_score(num_entities, 0, out, |qi, cand, _| {
        let qr = &q[qi * d..(qi + 1) * d];
        -qr.iter()
            .zip(&emb[cand * d..(cand + 1) * d])
            .map(|(a, b)| a * b)
            .sum::<f32>()
    });
}

/// Batched TransH-family scoring (shared by the sparse and dense variants —
/// identical parameter layout): per-query hyperplane query vectors up front,
/// then pool-parallel candidate projection + distance.
#[allow(clippy::too_many_arguments)]
pub(crate) fn hyperplane_scores_into(
    ent: &[f32],
    normals: &[f32],
    translations: &[f32],
    num_entities: usize,
    d: usize,
    norm: Norm,
    queries: &[(u32, u32)],
    dir: QueryDir,
    out: &mut [f32],
) {
    let m = queries.len();
    let mut qv = vec![0f32; m * d];
    let mut rels = vec![0usize; m];
    for (i, &raw) in queries.iter().enumerate() {
        let (e, r) = dir.split(raw);
        let (e, r) = (e as usize, r as usize);
        rels[i] = r;
        let x = &ent[e * d..(e + 1) * d];
        let w = &normals[r * d..(r + 1) * d];
        let dr = &translations[r * d..(r + 1) * d];
        let dot: f32 = w.iter().zip(x).map(|(a, b)| a * b).sum();
        let row = &mut qv[i * d..(i + 1) * d];
        match dir {
            QueryDir::Tails => {
                for (((dst, xi), wi), di) in row.iter_mut().zip(x).zip(w).zip(dr) {
                    *dst = (xi - dot * wi) + di;
                }
            }
            QueryDir::Heads => {
                for (((dst, xi), wi), di) in row.iter_mut().zip(x).zip(w).zip(dr) {
                    *dst = (xi - dot * wi) - di;
                }
            }
        }
    }
    for_each_score(num_entities, d, out, |qi, cand, scratch| {
        let r = rels[qi];
        let w = &normals[r * d..(r + 1) * d];
        let x = &ent[cand * d..(cand + 1) * d];
        let dot: f32 = w.iter().zip(x).map(|(a, b)| a * b).sum();
        for ((s, xi), wi) in scratch.iter_mut().zip(x).zip(w) {
            *s = xi - dot * wi;
        }
        let q = &qv[qi * d..(qi + 1) * d];
        // Argument order mirrors the scalar scorers exactly.
        match dir {
            QueryDir::Tails => norm.distance(q, scratch),
            QueryDir::Heads => norm.distance(scratch, q),
        }
    })
}

/// Batched TransR-family scoring (shared by the sparse and dense variants):
/// per-query projected query vectors, then pool-parallel candidate
/// projection + distance in the `rel_dim`-dimensional relation space.
#[allow(clippy::too_many_arguments)]
pub(crate) fn projected_scores_into(
    ent: &[f32],
    rel: &[f32],
    mats: &[f32],
    num_entities: usize,
    d: usize,
    k: usize,
    norm: Norm,
    queries: &[(u32, u32)],
    dir: QueryDir,
    out: &mut [f32],
) {
    let project = |r: usize, vec: &[f32], dst: &mut [f32]| {
        let mat = &mats[r * k * d..(r + 1) * k * d];
        for (o, s) in dst.iter_mut().enumerate() {
            *s = mat[o * d..(o + 1) * d]
                .iter()
                .zip(vec)
                .map(|(m, v)| m * v)
                .sum();
        }
    };
    let m = queries.len();
    let mut qv = vec![0f32; m * k];
    let mut rels = vec![0usize; m];
    let mut proj = vec![0f32; k];
    for (i, &raw) in queries.iter().enumerate() {
        let (e, r) = dir.split(raw);
        let (e, r) = (e as usize, r as usize);
        rels[i] = r;
        project(r, &ent[e * d..(e + 1) * d], &mut proj);
        let r_row = &rel[r * k..(r + 1) * k];
        let row = &mut qv[i * k..(i + 1) * k];
        match dir {
            QueryDir::Tails => {
                for ((dst, a), b) in row.iter_mut().zip(&proj).zip(r_row) {
                    *dst = a + b;
                }
            }
            QueryDir::Heads => {
                for ((dst, a), b) in row.iter_mut().zip(&proj).zip(r_row) {
                    *dst = a - b;
                }
            }
        }
    }
    for_each_score(num_entities, k, out, |qi, cand, scratch| {
        let r = rels[qi];
        project(r, &ent[cand * d..(cand + 1) * d], scratch);
        let q = &qv[qi * k..(qi + 1) * k];
        match dir {
            QueryDir::Tails => norm.distance(q, scratch),
            QueryDir::Heads => norm.distance(scratch, q),
        }
    })
}

/// Link-prediction scorer over **complex** embeddings with the ComplEx score
/// `Re(⟨h, r, t̄⟩)` (similarity — negated into a distance).
///
/// Embeddings are interleaved `(re, im)` pairs: `2 * half_dim` floats per
/// row, entities stacked above relations as in the `hrt` formulation. The
/// per-triple kernel is the Appendix D semiring SpMM.
///
/// # Examples
///
/// ```
/// use sptransx::ComplExScorer;
/// use kg::eval::TripleScorer;
///
/// // 2 entities + 1 relation, complex dim 1 (2 floats per row).
/// let emb = vec![1.0, 0.0,  0.0, 1.0,  1.0, 0.0];
/// let scorer = ComplExScorer::new(emb, 2, 1, 1)?;
/// let scores = scorer.score_tails(0, 0);
/// assert_eq!(scores.len(), 2);
/// # Ok::<(), sptransx::Error>(())
/// ```
#[derive(Debug, Clone)]
pub struct ComplExScorer {
    emb: Vec<Complex32>,
    num_entities: usize,
    num_relations: usize,
    half_dim: usize,
}

impl ComplExScorer {
    /// Wraps interleaved complex embeddings of shape
    /// `(num_entities + num_relations) × (2 * half_dim)`.
    ///
    /// # Errors
    ///
    /// Returns [`crate::Error::Config`] if the buffer length disagrees with
    /// the declared shape.
    pub fn new(
        interleaved: Vec<f32>,
        num_entities: usize,
        num_relations: usize,
        half_dim: usize,
    ) -> crate::Result<Self> {
        let expected = (num_entities + num_relations) * half_dim * 2;
        if interleaved.len() != expected {
            return Err(crate::Error::config(format!(
                "embedding buffer has {} floats, expected {expected}",
                interleaved.len()
            )));
        }
        Ok(Self {
            emb: Complex32::slice_from_interleaved(&interleaved),
            num_entities,
            num_relations,
            half_dim,
        })
    }

    /// ComplEx similarity of one triple via the semiring SpMM kernel.
    pub fn similarity(&self, head: u32, rel: u32, tail: u32) -> f32 {
        let a = hrt(
            self.num_entities,
            self.num_relations,
            &[head],
            &[rel],
            &[tail],
            TailSign::Negative, // −1 marks the conjugated operand
        )
        .expect("validated indices");
        let c = semiring_spmm::<ComplexTriple>(
            &a,
            &self.emb,
            self.num_entities + self.num_relations,
            self.half_dim,
        );
        c.iter().map(|z| z.re).sum()
    }
}

impl TripleScorer for ComplExScorer {
    fn score_tails(&self, head: u32, rel: u32) -> Vec<f32> {
        (0..self.num_entities as u32)
            .map(|t| -self.similarity(head, rel, t))
            .collect()
    }

    fn score_heads(&self, rel: u32, tail: u32) -> Vec<f32> {
        (0..self.num_entities as u32)
            .map(|h| -self.similarity(h, rel, tail))
            .collect()
    }

    fn num_entities(&self) -> usize {
        self.num_entities
    }
}

/// Batched semiring scoring over a **candidates incidence**: for each query
/// one `N × half_dim` [`semiring_spmm_into`] dispatch (every candidate is one
/// `hrt` row) replaces `N` single-row dispatches, reusing one scratch buffer
/// for the whole chunk; `reduce` renders each semiring output row into a
/// score.
///
/// Unlike the query-incidence kernels above, this path still builds one
/// `3N`-nonzero incidence matrix **per query** — an `O(N)` build amortized
/// against the `O(N · half_dim)` SpMM it feeds, kept because hand-assembling
/// the CSR (with its duplicate-collapse and column-sort semantics) would risk
/// the bit-identity the incidence builder guarantees.
#[allow(clippy::too_many_arguments)]
fn candidate_semiring_scores_into<S: Semiring<Scalar = Complex32>>(
    emb: &[Complex32],
    num_entities: usize,
    num_relations: usize,
    half_dim: usize,
    queries: &[(u32, u32)],
    dir: QueryDir,
    reduce: impl Fn(&[Complex32]) -> f32,
    out: &mut [f32],
) {
    let n = num_entities;
    assert_eq!(
        out.len(),
        queries.len() * n,
        "score buffer has wrong length"
    );
    let candidates: Vec<u32> = (0..n as u32).collect();
    let mut scratch = vec![Complex32::default(); n * half_dim];
    // Index buffers reused across the chunk — only the fill values change.
    let mut fixed = vec![0u32; n];
    let mut rels = vec![0u32; n];
    for (row, &raw) in out.chunks_exact_mut(n.max(1)).zip(queries) {
        let (ent, rel) = dir.split(raw);
        fixed.fill(ent);
        rels.fill(rel);
        let a = match dir {
            QueryDir::Tails => hrt(
                n,
                num_relations,
                &fixed,
                &rels,
                &candidates,
                TailSign::Negative,
            ),
            QueryDir::Heads => hrt(
                n,
                num_relations,
                &candidates,
                &rels,
                &fixed,
                TailSign::Negative,
            ),
        }
        .expect("validated indices");
        semiring_spmm_into::<S>(&a, emb, n + num_relations, half_dim, &mut scratch);
        for (t, dst) in row.iter_mut().enumerate() {
            *dst = reduce(&scratch[t * half_dim..(t + 1) * half_dim]);
        }
    }
}

impl BatchScorer for ComplExScorer {
    fn num_entities(&self) -> usize {
        self.num_entities
    }

    fn score_tails_into(&self, queries: &[(u32, u32)], out: &mut [f32]) {
        candidate_semiring_scores_into::<ComplexTriple>(
            &self.emb,
            self.num_entities,
            self.num_relations,
            self.half_dim,
            queries,
            QueryDir::Tails,
            |row| -row.iter().map(|z| z.re).sum::<f32>(),
            out,
        );
    }

    fn score_heads_into(&self, queries: &[(u32, u32)], out: &mut [f32]) {
        candidate_semiring_scores_into::<ComplexTriple>(
            &self.emb,
            self.num_entities,
            self.num_relations,
            self.half_dim,
            queries,
            QueryDir::Heads,
            |row| -row.iter().map(|z| z.re).sum::<f32>(),
            out,
        );
    }
}

/// Link-prediction scorer with the RotatE score `‖h ∘ r − t‖` over complex
/// embeddings (distance — lower is better), computed with the Appendix D
/// rotate semiring.
#[derive(Debug, Clone)]
pub struct RotatEScorer {
    emb: Vec<Complex32>,
    num_entities: usize,
    num_relations: usize,
    half_dim: usize,
}

impl RotatEScorer {
    /// Wraps interleaved complex embeddings (same layout as
    /// [`ComplExScorer::new`]).
    ///
    /// # Errors
    ///
    /// Returns [`crate::Error::Config`] on a shape mismatch.
    pub fn new(
        interleaved: Vec<f32>,
        num_entities: usize,
        num_relations: usize,
        half_dim: usize,
    ) -> crate::Result<Self> {
        let expected = (num_entities + num_relations) * half_dim * 2;
        if interleaved.len() != expected {
            return Err(crate::Error::config(format!(
                "embedding buffer has {} floats, expected {expected}",
                interleaved.len()
            )));
        }
        Ok(Self {
            emb: Complex32::slice_from_interleaved(&interleaved),
            num_entities,
            num_relations,
            half_dim,
        })
    }

    /// RotatE distance of one triple via the semiring SpMM kernel.
    pub fn distance(&self, head: u32, rel: u32, tail: u32) -> f32 {
        let a = hrt(
            self.num_entities,
            self.num_relations,
            &[head],
            &[rel],
            &[tail],
            TailSign::Negative,
        )
        .expect("validated indices");
        let c = semiring_spmm::<RotateTriple>(
            &a,
            &self.emb,
            self.num_entities + self.num_relations,
            self.half_dim,
        );
        c.iter().map(|z| z.abs()).sum()
    }
}

impl TripleScorer for RotatEScorer {
    fn score_tails(&self, head: u32, rel: u32) -> Vec<f32> {
        (0..self.num_entities as u32)
            .map(|t| self.distance(head, rel, t))
            .collect()
    }

    fn score_heads(&self, rel: u32, tail: u32) -> Vec<f32> {
        (0..self.num_entities as u32)
            .map(|h| self.distance(h, rel, tail))
            .collect()
    }

    fn num_entities(&self) -> usize {
        self.num_entities
    }
}

impl BatchScorer for RotatEScorer {
    fn num_entities(&self) -> usize {
        self.num_entities
    }

    fn score_tails_into(&self, queries: &[(u32, u32)], out: &mut [f32]) {
        candidate_semiring_scores_into::<RotateTriple>(
            &self.emb,
            self.num_entities,
            self.num_relations,
            self.half_dim,
            queries,
            QueryDir::Tails,
            |row| row.iter().map(|z| z.abs()).sum::<f32>(),
            out,
        );
    }

    fn score_heads_into(&self, queries: &[(u32, u32)], out: &mut [f32]) {
        candidate_semiring_scores_into::<RotateTriple>(
            &self.emb,
            self.num_entities,
            self.num_relations,
            self.half_dim,
            queries,
            QueryDir::Heads,
            |row| row.iter().map(|z| z.abs()).sum::<f32>(),
            out,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distances_to_rows_matches_norm() {
        let buffer = vec![0.0, 0.0, 3.0, 4.0, 1.0, 1.0];
        let q = vec![0.0, 0.0];
        let d = distances_to_rows(&buffer, 3, 2, &q, Norm::L2);
        assert!((d[0] - 0.0).abs() < 1e-6);
        assert!((d[1] - 5.0).abs() < 1e-6);
        let d = distances_to_rows(&buffer, 3, 2, &q, Norm::L1);
        assert!((d[2] - 2.0).abs() < 1e-6);
    }

    #[test]
    fn complex_scorer_validates_shape() {
        assert!(ComplExScorer::new(vec![0.0; 5], 2, 1, 1).is_err());
        assert!(ComplExScorer::new(vec![0.0; 6], 2, 1, 1).is_ok());
    }

    #[test]
    fn complex_similarity_matches_manual() {
        // h = 1+i, r = i, t = 2 - i: Re(h*r*conj(t)).
        let emb = vec![
            1.0, 1.0, // e0 = h
            2.0, -1.0, // e1 = t
            0.0, 1.0, // r0
        ];
        let s = ComplExScorer::new(emb, 2, 1, 1).unwrap();
        let h = Complex32::new(1.0, 1.0);
        let r = Complex32::new(0.0, 1.0);
        let t = Complex32::new(2.0, -1.0);
        let want = (h * r * t.conj()).re;
        assert!((s.similarity(0, 0, 1) - want).abs() < 1e-5);
    }

    #[test]
    fn batched_complex_scorers_match_scalar_bitwise() {
        // 5 entities + 2 relations, complex dim 3: pseudo-random values.
        let (n, r, half) = (5usize, 2usize, 3usize);
        let emb: Vec<f32> = (0..(n + r) * half * 2)
            .map(|i| ((i * 2654435761usize) % 1000) as f32 / 500.0 - 1.0)
            .collect();
        let tail_q = [(0u32, 0u32), (4, 1), (2, 0)]; // (head, rel)
        let head_q = [(0u32, 0u32), (1, 4), (0, 2)]; // (rel, tail)

        let s = ComplExScorer::new(emb.clone(), n, r, half).unwrap();
        let mut out = vec![0f32; tail_q.len() * n];
        s.score_tails_into(&tail_q, &mut out);
        for (i, &(h, rel)) in tail_q.iter().enumerate() {
            assert_eq!(&out[i * n..(i + 1) * n], s.score_tails(h, rel).as_slice());
        }
        s.score_heads_into(&head_q, &mut out);
        for (i, &(rel, t)) in head_q.iter().enumerate() {
            assert_eq!(&out[i * n..(i + 1) * n], s.score_heads(rel, t).as_slice());
        }

        let s = RotatEScorer::new(emb, n, r, half).unwrap();
        s.score_tails_into(&tail_q, &mut out);
        for (i, &(h, rel)) in tail_q.iter().enumerate() {
            assert_eq!(&out[i * n..(i + 1) * n], s.score_tails(h, rel).as_slice());
        }
        s.score_heads_into(&head_q, &mut out);
        for (i, &(rel, t)) in head_q.iter().enumerate() {
            assert_eq!(&out[i * n..(i + 1) * n], s.score_heads(rel, t).as_slice());
        }
    }

    #[test]
    fn query_incidence_has_two_sorted_nonzeros_per_row() {
        let a = stacked_query_incidence(10, 3, &[(4, 2), (9, 0)], QueryDir::Tails, 1.0);
        assert_eq!((a.rows(), a.cols()), (2, 13));
        assert_eq!(a.row(0).collect::<Vec<_>>(), vec![(4, 1.0), (12, 1.0)]);
        assert_eq!(a.row(1).collect::<Vec<_>>(), vec![(9, 1.0), (10, 1.0)]);
        // Head queries are (rel, tail) with a −1 relation coefficient.
        let a = stacked_query_incidence(10, 3, &[(2, 4)], QueryDir::Heads, -1.0);
        assert_eq!(a.row(0).collect::<Vec<_>>(), vec![(4, 1.0), (12, -1.0)]);
    }

    #[test]
    fn batched_distances_match_distances_to_rows() {
        let emb: Vec<f32> = (0..7 * 4).map(|i| (i as f32 * 0.37).sin()).collect();
        let queries: Vec<f32> = (0..2 * 4).map(|i| (i as f32 * 0.11).cos()).collect();
        let mut out = vec![0f32; 2 * 6];
        batched_distances_into(&queries, 4, &emb, 6, Norm::L2, &mut out);
        for qi in 0..2 {
            let want = distances_to_rows(&emb, 6, 4, &queries[qi * 4..(qi + 1) * 4], Norm::L2);
            assert_eq!(&out[qi * 6..(qi + 1) * 6], want.as_slice());
        }
    }

    #[test]
    fn rotate_exact_rotation_scores_zero() {
        // t = h rotated by r (unit phase) => distance 0.
        let h = Complex32::from_phase(0.7);
        let r = Complex32::from_phase(1.1);
        let t = h * r;
        let emb = vec![h.re, h.im, t.re, t.im, r.re, r.im];
        let s = RotatEScorer::new(emb, 2, 1, 1).unwrap();
        assert!(s.distance(0, 0, 1) < 1e-5);
        // And the true tail ranks first.
        let tails = s.score_tails(0, 0);
        assert!(tails[1] < tails[0]);
    }
}
