//! Kernel address-trace generators.
//!
//! Each generator replays the byte-level access pattern of one training
//! kernel against a [`crate::Hierarchy`]. Addresses use a simple virtual
//! layout: the embedding table at [`EMB_BASE`], the batch output buffer at
//! [`OUT_BASE`], and sparse-index arrays at [`IDX_BASE`], far enough apart
//! that distinct structures never share a line.

use sparse::CsrMatrix;

use crate::Hierarchy;

/// Base address of the (large) embedding/parameter table.
pub const EMB_BASE: u64 = 0x1_0000_0000;
/// Base address of per-batch output/gradient buffers.
pub const OUT_BASE: u64 = 0x8_0000_0000;
/// Base address of CSR index structures.
pub const IDX_BASE: u64 = 0xC_0000_0000;

const F32: u64 = 4;
const U32: u64 = 4;

/// Replays the **gather** kernel (paper Figure 1a): for each batch item,
/// read one `dim`-wide embedding row and write one output row.
pub fn replay_gather(h: &mut Hierarchy, indices: &[u32], dim: usize) {
    let row = dim as u64 * F32;
    for (k, &idx) in indices.iter().enumerate() {
        h.access_range(EMB_BASE + u64::from(idx) * row, row);
        h.access_range(OUT_BASE + k as u64 * row, row);
    }
}

/// Replays the **scatter-add** backward (paper Figure 1b): for each batch
/// item, read the upstream gradient row and read-modify-write one row of the
/// (large) parameter-gradient table. Each occurrence of an entity in the
/// batch touches its gradient row again — the fine-grained cost the paper
/// attributes to `EmbeddingBackward`.
pub fn replay_scatter(h: &mut Hierarchy, indices: &[u32], dim: usize) {
    let row = dim as u64 * F32;
    // The gradient table lives at a distinct offset above the embeddings.
    let grad_base = EMB_BASE + (1u64 << 34);
    for (k, &idx) in indices.iter().enumerate() {
        h.access_range(OUT_BASE + k as u64 * row, row);
        // RMW of the destination row (read-for-ownership counted once per
        // line, as a hardware prefetch-free LLC would see it).
        h.access_range(grad_base + u64::from(idx) * row, row);
    }
}

/// Replays the **CSR SpMM** forward kernel: stream `indptr`/`indices`/
/// `values`, gather the 2–3 source rows per output row, write the output row.
pub fn replay_csr_spmm(h: &mut Hierarchy, a: &CsrMatrix, dim: usize) {
    let row = dim as u64 * F32;
    let indptr_base = IDX_BASE;
    let indices_base = IDX_BASE + (1 << 30);
    let values_base = IDX_BASE + (2 << 30);
    for i in 0..a.rows() {
        h.access_range(indptr_base + i as u64 * U32, 2 * U32);
        let (s, e) = a.row_bounds(i);
        if e > s {
            h.access_range(indices_base + s as u64 * U32, (e - s) as u64 * U32);
            h.access_range(values_base + s as u64 * F32, (e - s) as u64 * F32);
        }
        for (col, _) in a.row(i) {
            h.access_range(EMB_BASE + col as u64 * row, row);
        }
        h.access_range(OUT_BASE + i as u64 * row, row);
    }
}

/// Replays the **transpose-SpMM** backward (`Aᵀ · G`): the transpose is
/// row-major over *columns* of `A`, so parameter-gradient rows are written
/// sequentially while upstream-gradient rows are gathered.
pub fn replay_csr_spmm_transpose(h: &mut Hierarchy, a_t: &CsrMatrix, dim: usize) {
    let row = dim as u64 * F32;
    let grad_base = EMB_BASE + (1u64 << 34);
    let indptr_base = IDX_BASE + (3u64 << 30);
    let indices_base = IDX_BASE + (4u64 << 30);
    for i in 0..a_t.rows() {
        h.access_range(indptr_base + i as u64 * U32, 2 * U32);
        let (s, e) = a_t.row_bounds(i);
        if e > s {
            h.access_range(indices_base + s as u64 * U32, (e - s) as u64 * U32);
        }
        for (col, _) in a_t.row(i) {
            // Gather the upstream gradient row (batch-sized buffer).
            h.access_range(OUT_BASE + col as u64 * row, row);
        }
        if e > s {
            // One sequential write of this parameter-gradient row.
            h.access_range(grad_base + i as u64 * row, row);
        }
    }
}

/// Miss-rate comparison for one batch of triples: the gather/scatter
/// ("non-sparse") pipeline versus the SpMM ("sparse") pipeline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KernelComparison {
    /// Overall miss rate of gather (fwd) + scatter (bwd).
    pub gather_scatter_miss_rate: f64,
    /// Overall miss rate of SpMM (fwd) + transpose SpMM (bwd).
    pub spmm_miss_rate: f64,
}

/// Runs both pipelines over the same triple batch and embedding dimension.
///
/// `incidence` must be the batch's `hrt` (or `ht`) incidence matrix; the
/// gather indices are taken from its nonzero columns so both pipelines touch
/// the same embedding rows.
pub fn compare_kernels(incidence: &CsrMatrix, dim: usize) -> KernelComparison {
    // Gather indices: every nonzero column, row-major (h, r, t per triple).
    let gather_indices: Vec<u32> = incidence.indices().to_vec();

    let mut gs = Hierarchy::epyc_like();
    replay_gather(&mut gs, &gather_indices, dim);
    replay_scatter(&mut gs, &gather_indices, dim);
    let gather_scatter = gs.overall_miss_rate();

    let mut sp = Hierarchy::epyc_like();
    let a_t = incidence.transpose();
    replay_csr_spmm(&mut sp, incidence, dim);
    replay_csr_spmm_transpose(&mut sp, &a_t, dim);
    let spmm = sp.overall_miss_rate();

    KernelComparison {
        gather_scatter_miss_rate: gather_scatter,
        spmm_miss_rate: spmm,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use sparse::incidence::{hrt, TailSign};

    /// Heavy-tailed entity draw (`u³` skew approximates Zipf popularity, as
    /// real KG batches have).
    fn skewed(rng: &mut StdRng, n: usize) -> u32 {
        let u: f64 = rng.gen();
        ((u * u * u) * n as f64) as u32
    }

    fn random_incidence(n_ent: usize, n_rel: usize, m: usize, seed: u64) -> CsrMatrix {
        let mut rng = StdRng::seed_from_u64(seed);
        let heads: Vec<u32> = (0..m).map(|_| skewed(&mut rng, n_ent)).collect();
        let tails: Vec<u32> = (0..m).map(|_| skewed(&mut rng, n_ent)).collect();
        let rels: Vec<u32> = (0..m).map(|_| rng.gen_range(0..n_rel as u32)).collect();
        hrt(n_ent, n_rel, &heads, &rels, &tails, TailSign::Negative).unwrap()
    }

    #[test]
    fn traces_generate_accesses() {
        let a = random_incidence(1000, 10, 256, 1);
        let mut h = Hierarchy::epyc_like();
        replay_csr_spmm(&mut h, &a, 64);
        assert!(h.l1.stats().accesses() > 0);
    }

    #[test]
    fn spmm_misses_no_more_than_gather_scatter() {
        // Large entity table, moderate batch: the SpMM pipeline reads index
        // arrays sequentially and touches each embedding row once per use,
        // while scatter does irregular read-modify-writes — the paper's
        // Table 7 ordering.
        let a = random_incidence(50_000, 100, 4096, 2);
        let cmp = compare_kernels(&a, 128);
        assert!(
            cmp.spmm_miss_rate <= cmp.gather_scatter_miss_rate + 1e-9,
            "spmm {} vs gather/scatter {}",
            cmp.spmm_miss_rate,
            cmp.gather_scatter_miss_rate
        );
    }

    #[test]
    fn small_working_sets_mostly_hit() {
        let a = random_incidence(32, 2, 64, 3);
        let cmp = compare_kernels(&a, 16);
        assert!(cmp.spmm_miss_rate < 0.8);
        assert!(cmp.gather_scatter_miss_rate < 0.9);
    }
}
