//! File-backed embedding storage with chunked streaming reads.
//!
//! The paper's framework supports "streaming embeddings from disc storage
//! when the embeddings are too large to fit in CPU memory" via PyTorch
//! memory-mapped tensors (§4.7.1) — the use case is starting from pre-trained
//! LLM embeddings. [`EmbeddingStore`] is the Rust analog: a flat binary file
//! of little-endian `f32` rows with a header, read back row-range by
//! row-range so only the active window is resident.

use std::fs::File;
use std::io::{BufReader, BufWriter, Read, Seek, SeekFrom, Write};
use std::path::Path;

use bytes::{Buf, BufMut, BytesMut};

use crate::{Error, Result};

const MAGIC: &[u8; 8] = b"SPTXEMB1";

/// Writer/reader for an on-disk embedding matrix.
///
/// Layout: 8-byte magic, `u64` rows, `u64` cols, then `rows × cols`
/// little-endian `f32`s.
///
/// # Examples
///
/// ```
/// use kg::stream::EmbeddingStore;
///
/// let dir = std::env::temp_dir().join("sptx-doc-embstore");
/// std::fs::create_dir_all(&dir)?;
/// let path = dir.join("emb.bin");
/// EmbeddingStore::write(&path, 4, 2, |row, out| {
///     out[0] = row as f32;
///     out[1] = -(row as f32);
/// })?;
/// let mut store = EmbeddingStore::open(&path)?;
/// assert_eq!(store.rows(), 4);
/// let window = store.read_rows(1, 2)?;
/// assert_eq!(window, vec![1.0, -1.0, 2.0, -2.0]);
/// # Ok::<(), kg::Error>(())
/// ```
#[derive(Debug)]
pub struct EmbeddingStore {
    file: BufReader<File>,
    rows: usize,
    cols: usize,
}

impl EmbeddingStore {
    /// Writes an embedding file by invoking `fill(row, out_row)` per row.
    ///
    /// Rows are produced one at a time, so arbitrarily large matrices can be
    /// written with `O(cols)` memory.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Io`] on any write failure.
    pub fn write(
        path: impl AsRef<Path>,
        rows: usize,
        cols: usize,
        mut fill: impl FnMut(usize, &mut [f32]),
    ) -> Result<()> {
        let mut w = BufWriter::new(File::create(path)?);
        let mut header = BytesMut::with_capacity(24);
        header.put_slice(MAGIC);
        header.put_u64_le(rows as u64);
        header.put_u64_le(cols as u64);
        w.write_all(&header)?;
        let mut row_buf = vec![0f32; cols];
        let mut byte_buf = BytesMut::with_capacity(cols * 4);
        for r in 0..rows {
            fill(r, &mut row_buf);
            byte_buf.clear();
            for &v in &row_buf {
                byte_buf.put_f32_le(v);
            }
            w.write_all(&byte_buf)?;
        }
        w.flush()?;
        Ok(())
    }

    /// Opens an embedding file, validating the header **and** the file
    /// length: a truncated or padded file is rejected here rather than
    /// surfacing as a confusing short-read error (or stale data) later.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Io`] on read failure and [`Error::Parse`] on a bad
    /// magic number or when the file size disagrees with the declared
    /// `rows × cols` shape.
    pub fn open(path: impl AsRef<Path>) -> Result<Self> {
        let file = File::open(path)?;
        let file_len = file.metadata()?.len();
        let mut file = BufReader::new(file);
        let mut header = [0u8; 24];
        file.read_exact(&mut header)?;
        if &header[..8] != MAGIC {
            return Err(Error::Parse {
                line: 0,
                context: "not an SPTXEMB1 embedding file".to_string(),
            });
        }
        let mut rest = &header[8..];
        let rows = rest.get_u64_le() as usize;
        let cols = rest.get_u64_le() as usize;
        let expected = (rows as u64)
            .checked_mul(cols as u64)
            .and_then(|cells| cells.checked_mul(4))
            .and_then(|body| body.checked_add(24));
        match expected {
            Some(expected) if expected == file_len => Ok(Self { file, rows, cols }),
            _ => Err(Error::Parse {
                line: 0,
                context: format!(
                    "embedding file is {file_len} bytes but the header declares {rows} x {cols} \
                     rows (corrupt or truncated)"
                ),
            }),
        }
    }

    /// Number of embedding rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Embedding dimension.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Reads `count` rows starting at `first`, returning a row-major buffer.
    ///
    /// # Errors
    ///
    /// Returns [`Error::IndexOutOfBounds`] if the range exceeds the stored
    /// rows, or [`Error::Io`] on read failure.
    pub fn read_rows(&mut self, first: usize, count: usize) -> Result<Vec<f32>> {
        if first + count > self.rows {
            return Err(Error::IndexOutOfBounds {
                context: format!(
                    "rows {first}..{} of a {}-row store",
                    first + count,
                    self.rows
                ),
            });
        }
        let offset = 24 + (first * self.cols * 4) as u64;
        self.file.seek(SeekFrom::Start(offset))?;
        let mut bytes = vec![0u8; count * self.cols * 4];
        self.file.read_exact(&mut bytes)?;
        let mut out = Vec::with_capacity(count * self.cols);
        let mut cursor = bytes.as_slice();
        for _ in 0..count * self.cols {
            out.push(cursor.get_f32_le());
        }
        Ok(out)
    }

    /// Iterates the store in windows of `rows_per_chunk` rows, calling
    /// `visit(first_row, chunk)` for each — the streaming-training access
    /// pattern.
    ///
    /// # Errors
    ///
    /// Propagates any read error.
    pub fn for_each_chunk(
        &mut self,
        rows_per_chunk: usize,
        mut visit: impl FnMut(usize, &[f32]),
    ) -> Result<()> {
        let step = rows_per_chunk.max(1);
        let mut first = 0;
        while first < self.rows {
            let count = step.min(self.rows - first);
            let chunk = self.read_rows(first, count)?;
            visit(first, &chunk);
            first += count;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_path(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("sptx-kg-stream-tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn write_open_read_round_trip() {
        let path = temp_path("round_trip.bin");
        EmbeddingStore::write(&path, 10, 3, |r, out| {
            for (j, v) in out.iter_mut().enumerate() {
                *v = (r * 10 + j) as f32;
            }
        })
        .unwrap();
        let mut store = EmbeddingStore::open(&path).unwrap();
        assert_eq!((store.rows(), store.cols()), (10, 3));
        let rows = store.read_rows(2, 2).unwrap();
        assert_eq!(rows, vec![20.0, 21.0, 22.0, 30.0, 31.0, 32.0]);
        // Seeks are independent: read an earlier range afterwards.
        let rows = store.read_rows(0, 1).unwrap();
        assert_eq!(rows, vec![0.0, 1.0, 2.0]);
    }

    #[test]
    fn chunked_iteration_covers_all_rows() {
        let path = temp_path("chunks.bin");
        EmbeddingStore::write(&path, 25, 2, |r, out| {
            out[0] = r as f32;
            out[1] = 0.0;
        })
        .unwrap();
        let mut store = EmbeddingStore::open(&path).unwrap();
        let mut seen = Vec::new();
        store
            .for_each_chunk(8, |first, chunk| {
                assert!(chunk.len() % 2 == 0);
                for (k, pair) in chunk.chunks_exact(2).enumerate() {
                    seen.push((first + k, pair[0] as usize));
                }
            })
            .unwrap();
        assert_eq!(seen.len(), 25);
        assert!(seen.iter().all(|&(i, v)| i == v));
    }

    #[test]
    fn out_of_range_read_rejected() {
        let path = temp_path("oob.bin");
        EmbeddingStore::write(&path, 4, 2, |_, out| out.fill(0.0)).unwrap();
        let mut store = EmbeddingStore::open(&path).unwrap();
        assert!(matches!(
            store.read_rows(3, 2),
            Err(Error::IndexOutOfBounds { .. })
        ));
    }

    #[test]
    fn bad_magic_rejected() {
        let path = temp_path("bad_magic.bin");
        std::fs::write(&path, b"NOTMAGIC________________").unwrap();
        assert!(matches!(
            EmbeddingStore::open(&path),
            Err(Error::Parse { .. })
        ));
    }

    #[test]
    fn truncated_body_rejected_at_open() {
        let path = temp_path("truncated.bin");
        EmbeddingStore::write(&path, 6, 4, |r, out| out.fill(r as f32)).unwrap();
        let full = std::fs::read(&path).unwrap();
        // Chop half the body off; the header still claims 6 x 4.
        std::fs::write(&path, &full[..full.len() - 48]).unwrap();
        assert!(matches!(
            EmbeddingStore::open(&path),
            Err(Error::Parse { .. })
        ));
        // A header-only file is equally rejected.
        std::fs::write(&path, &full[..24]).unwrap();
        assert!(matches!(
            EmbeddingStore::open(&path),
            Err(Error::Parse { .. })
        ));
    }

    #[test]
    fn trailing_garbage_rejected_at_open() {
        let path = temp_path("padded.bin");
        EmbeddingStore::write(&path, 2, 2, |_, out| out.fill(1.0)).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        bytes.extend_from_slice(&[0u8; 7]);
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            EmbeddingStore::open(&path),
            Err(Error::Parse { .. })
        ));
    }
}
