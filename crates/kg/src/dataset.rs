//! A complete dataset: entity/relation counts plus train/valid/test splits.

use serde::{Deserialize, Serialize};

use crate::{Result, TripleSet, TripleStore};

/// A knowledge-graph dataset with standard splits.
///
/// # Examples
///
/// ```
/// use kg::{Dataset, Triple, TripleStore};
///
/// let train: TripleStore = [Triple::new(0, 0, 1)].into_iter().collect();
/// let ds = Dataset::new("toy", 2, 1, train, TripleStore::new(), TripleStore::new())?;
/// assert_eq!(ds.total_triples(), 1);
/// # Ok::<(), kg::Error>(())
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Dataset {
    /// Dataset name (e.g. `"FB15K"` or `"synth-fb15k"`).
    pub name: String,
    /// Number of distinct entities.
    pub num_entities: usize,
    /// Number of distinct relations.
    pub num_relations: usize,
    /// Training triples.
    pub train: TripleStore,
    /// Validation triples.
    pub valid: TripleStore,
    /// Test triples.
    pub test: TripleStore,
}

impl Dataset {
    /// Assembles and validates a dataset.
    ///
    /// # Errors
    ///
    /// Returns [`crate::Error::IndexOutOfBounds`] if any split references an
    /// entity or relation outside the declared counts.
    pub fn new(
        name: impl Into<String>,
        num_entities: usize,
        num_relations: usize,
        train: TripleStore,
        valid: TripleStore,
        test: TripleStore,
    ) -> Result<Self> {
        train.validate(num_entities, num_relations)?;
        valid.validate(num_entities, num_relations)?;
        test.validate(num_entities, num_relations)?;
        Ok(Self {
            name: name.into(),
            num_entities,
            num_relations,
            train,
            valid,
            test,
        })
    }

    /// Total triples across all splits.
    pub fn total_triples(&self) -> usize {
        self.train.len() + self.valid.len() + self.test.len()
    }

    /// The set of all known triples (for the filtered evaluation protocol).
    pub fn all_known(&self) -> TripleSet {
        TripleSet::from_stores([&self.train, &self.valid, &self.test])
    }

    /// Splits a single store into train/valid/test by the given fractions
    /// (deterministic shuffle with `seed`); remainder goes to train.
    ///
    /// # Panics
    ///
    /// Panics if `valid_frac + test_frac >= 1.0` or fractions are negative.
    pub fn from_single_store(
        name: impl Into<String>,
        num_entities: usize,
        num_relations: usize,
        all: TripleStore,
        valid_frac: f64,
        test_frac: f64,
        seed: u64,
    ) -> Result<Self> {
        assert!(
            valid_frac >= 0.0 && test_frac >= 0.0,
            "fractions must be non-negative"
        );
        assert!(valid_frac + test_frac < 1.0, "train split would be empty");
        let shuffled = all.shuffled(seed);
        let n = shuffled.len();
        let n_valid = (n as f64 * valid_frac) as usize;
        let n_test = (n as f64 * test_frac) as usize;
        let valid = shuffled.slice(0..n_valid);
        let test = shuffled.slice(n_valid..n_valid + n_test);
        let train = shuffled.slice(n_valid + n_test..n);
        Self::new(name, num_entities, num_relations, train, valid, test)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Triple;

    fn store(n: u32) -> TripleStore {
        (0..n)
            .map(|i| Triple::new(i % 5, i % 2, (i + 1) % 5))
            .collect()
    }

    #[test]
    fn new_validates_all_splits() {
        let bad = Dataset::new("x", 3, 2, store(20), TripleStore::new(), TripleStore::new());
        assert!(bad.is_err());
        let ok = Dataset::new("x", 5, 2, store(20), TripleStore::new(), TripleStore::new());
        assert!(ok.is_ok());
    }

    #[test]
    fn single_store_split_fractions() {
        let ds = Dataset::from_single_store("x", 5, 2, store(100), 0.1, 0.2, 7).unwrap();
        assert_eq!(ds.valid.len(), 10);
        assert_eq!(ds.test.len(), 20);
        assert_eq!(ds.train.len(), 70);
        assert_eq!(ds.total_triples(), 100);
    }

    #[test]
    fn all_known_unions_splits() {
        let ds = Dataset::from_single_store("x", 5, 2, store(50), 0.2, 0.2, 7).unwrap();
        let known = ds.all_known();
        for t in ds.test.iter() {
            assert!(known.contains(&t));
        }
    }

    #[test]
    #[should_panic(expected = "train split would be empty")]
    fn rejects_degenerate_split() {
        let _ = Dataset::from_single_store("x", 5, 2, store(10), 0.5, 0.5, 7);
    }
}
