//! Mini-batch planning.
//!
//! SparseTransX pre-generates negatives and shards triples into fixed
//! batches once, then reuses the shards (and their incidence matrices) every
//! epoch (§5.3). [`BatchPlan`] captures that: it pairs positive and negative
//! shards so trainers can cache per-batch sparse structures.

use crate::{NegativeSampler, TripleSet, TripleStore};

/// One training mini-batch: parallel positive and negative triple columns.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Batch {
    /// Positive triples.
    pub pos: TripleStore,
    /// One negative per positive (same length).
    pub neg: TripleStore,
}

impl Batch {
    /// Number of positive/negative pairs.
    pub fn len(&self) -> usize {
        self.pos.len()
    }

    /// Whether the batch is empty.
    pub fn is_empty(&self) -> bool {
        self.pos.is_empty()
    }
}

/// A fixed sharding of a training set into batches, with pre-generated
/// negatives.
///
/// # Examples
///
/// ```
/// use kg::{BatchPlan, synthetic::SyntheticKgBuilder, UniformSampler};
///
/// let ds = SyntheticKgBuilder::new(50, 3).triples(300).seed(2).build();
/// let sampler = UniformSampler::new(ds.num_entities);
/// let plan = BatchPlan::build(&ds.train, &ds.all_known(), &sampler, 64, 9);
/// assert!(plan.num_batches() >= 4);
/// for batch in plan.iter() {
///     assert_eq!(batch.pos.len(), batch.neg.len());
/// }
/// ```
#[derive(Debug, Clone)]
pub struct BatchPlan {
    batches: Vec<Batch>,
    batch_size: usize,
}

impl BatchPlan {
    /// Shuffles `train`, shards it into `batch_size` chunks, and draws one
    /// negative per positive with `sampler`.
    ///
    /// # Panics
    ///
    /// Panics if `batch_size == 0`.
    pub fn build(
        train: &TripleStore,
        known: &TripleSet,
        sampler: &dyn NegativeSampler,
        batch_size: usize,
        seed: u64,
    ) -> Self {
        assert!(batch_size > 0, "batch size must be positive");
        let shuffled = train.shuffled(seed);
        let mut batches = Vec::with_capacity(shuffled.len().div_ceil(batch_size));
        let mut start = 0;
        let mut batch_seed = seed;
        while start < shuffled.len() {
            let end = (start + batch_size).min(shuffled.len());
            let pos = shuffled.slice(start..end);
            batch_seed = batch_seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let neg = sampler.corrupt(&pos, known, batch_seed);
            batches.push(Batch { pos, neg });
            start = end;
        }
        Self {
            batches,
            batch_size,
        }
    }

    /// Number of batches.
    pub fn num_batches(&self) -> usize {
        self.batches.len()
    }

    /// The configured batch size (the final batch may be smaller).
    pub fn batch_size(&self) -> usize {
        self.batch_size
    }

    /// Total triples across batches.
    pub fn total_triples(&self) -> usize {
        self.batches.iter().map(Batch::len).sum()
    }

    /// Iterates batches in order.
    pub fn iter(&self) -> impl Iterator<Item = &Batch> {
        self.batches.iter()
    }

    /// Borrows batch `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= num_batches()`.
    pub fn batch(&self, i: usize) -> &Batch {
        &self.batches[i]
    }

    /// Splits the plan into `n` contiguous shards of whole batches, for
    /// data-parallel workers (Appendix F). Earlier shards may hold one more
    /// batch than later ones.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn shard(&self, n: usize) -> Vec<BatchPlan> {
        assert!(n > 0, "shard count must be positive");
        let ranges = xparallel::chunk_ranges(self.batches.len(), 1, n);
        let mut out: Vec<BatchPlan> = ranges
            .into_iter()
            .map(|r| BatchPlan {
                batches: self.batches[r].to_vec(),
                batch_size: self.batch_size,
            })
            .collect();
        while out.len() < n {
            out.push(BatchPlan {
                batches: Vec::new(),
                batch_size: self.batch_size,
            });
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synthetic::SyntheticKgBuilder;
    use crate::UniformSampler;

    fn plan(batch_size: usize) -> BatchPlan {
        let ds = SyntheticKgBuilder::new(40, 3).triples(200).seed(5).build();
        let sampler = UniformSampler::new(ds.num_entities);
        BatchPlan::build(&ds.train, &ds.all_known(), &sampler, batch_size, 11)
    }

    #[test]
    fn covers_all_triples_once() {
        let p = plan(32);
        let per_batch: Vec<usize> = p.iter().map(Batch::len).collect();
        assert!(per_batch[..per_batch.len() - 1].iter().all(|&n| n == 32));
        assert_eq!(p.total_triples(), 180); // 200 * 0.9 train fraction
    }

    #[test]
    fn negatives_parallel_positives() {
        let p = plan(64);
        for b in p.iter() {
            assert_eq!(b.pos.len(), b.neg.len());
            for i in 0..b.len() {
                assert_eq!(b.pos.get(i).rel, b.neg.get(i).rel);
            }
        }
    }

    #[test]
    fn plans_are_deterministic() {
        let a = plan(32);
        let b = plan(32);
        for (x, y) in a.iter().zip(b.iter()) {
            assert_eq!(x, y);
        }
    }

    #[test]
    fn sharding_partitions_batches() {
        let p = plan(16);
        let shards = p.shard(4);
        assert_eq!(shards.len(), 4);
        let total: usize = shards.iter().map(BatchPlan::total_triples).sum();
        assert_eq!(total, p.total_triples());
    }

    #[test]
    fn sharding_more_workers_than_batches() {
        let p = plan(1000); // single batch
        let shards = p.shard(4);
        assert_eq!(shards.len(), 4);
        assert_eq!(shards[0].num_batches(), 1);
        assert_eq!(shards[3].num_batches(), 0);
    }
}
