//! Sparse TransH (paper §4.5).
//!
//! TransH translates on relation-specific hyperplanes:
//! `‖h⊥ + dᵣ − t⊥‖` with `x⊥ = x − (wᵣᵀx)wᵣ`. The paper's rearrangement
//!
//! ```text
//! (h − t) + dᵣ − wᵣ (wᵣᵀ (h − t))
//! ```
//!
//! contains the `ht` expression **twice**; the sparse variant computes it
//! with one SpMM and reuses the node, where the dense baseline projects head
//! and tail separately (two dot products, two rank-1 updates) — this
//! expression reuse is why the paper reports ~11× lower GPU memory for
//! TransH (§6.2.2).

use kg::eval::{BatchScorer, TripleScorer};
use kg::{BatchPlan, Dataset};
use tensor::{init, Graph, ParamId, ParamStore, Var};

use crate::model::{normalize_leading_rows, KgeModel, Norm, TrainConfig};
use crate::models::{build_ht_caches, HtCache};
use crate::scorer::{hyperplane_scores_into, QueryDir};
use crate::Result;

/// The SpTransX TransH model.
///
/// Parameters: entity embeddings `(N, d)`, hyperplane normals `(R, d)` (unit
/// rows), and translation vectors `(R, d)`.
///
/// # Examples
///
/// ```
/// use kg::synthetic::SyntheticKgBuilder;
/// use sptransx::{SpTransH, TrainConfig};
///
/// let ds = SyntheticKgBuilder::new(40, 3).triples(200).seed(1).build();
/// let model = SpTransH::from_config(&ds, &TrainConfig { dim: 8, ..Default::default() })?;
/// assert_eq!(sptransx::KgeModel::name(&model), "SpTransH");
/// # Ok::<(), sptransx::Error>(())
/// ```
#[derive(Debug)]
pub struct SpTransH {
    store: ParamStore,
    ent: ParamId,
    normals: ParamId,
    translations: ParamId,
    num_entities: usize,
    num_relations: usize,
    dim: usize,
    norm: Norm,
    batches: Vec<HtCache>,
}

impl SpTransH {
    /// Initializes the model for a dataset.
    ///
    /// # Errors
    ///
    /// Returns [`crate::Error::Config`] for invalid hyperparameters.
    pub fn from_config(dataset: &Dataset, config: &TrainConfig) -> Result<Self> {
        config.validate()?;
        let (n, r, d) = (dataset.num_entities, dataset.num_relations, config.dim);
        let mut store = ParamStore::new();
        let ent = store.add_param("entities", init::xavier_normalized(n, d, config.seed));
        let normals = store.add_param("normals", init::xavier_normalized(r, d, config.seed + 1));
        let translations = store.add_param(
            "translations",
            init::xavier_translational(r, d, config.seed + 2),
        );
        Ok(Self {
            store,
            ent,
            normals,
            translations,
            num_entities: n,
            num_relations: r,
            dim: d,
            norm: match config.norm {
                Norm::TorusL1 | Norm::TorusL2 => Norm::L2,
                other => other,
            },
            batches: Vec::new(),
        })
    }

    /// Embedding dimension.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Handles to `(entities, normals, translations)` parameters.
    pub fn params(&self) -> (ParamId, ParamId, ParamId) {
        (self.ent, self.normals, self.translations)
    }

    /// Projects `x` onto relation `rel`'s hyperplane (evaluation helper).
    fn project(&self, rel: usize, x: &[f32]) -> Vec<f32> {
        let w = self.store.value(self.normals).row(rel);
        let dot: f32 = w.iter().zip(x).map(|(a, b)| a * b).sum();
        x.iter().zip(w).map(|(xi, wi)| xi - dot * wi).collect()
    }
}

impl KgeModel for SpTransH {
    fn name(&self) -> &'static str {
        "SpTransH"
    }

    fn store(&self) -> &ParamStore {
        &self.store
    }

    fn store_mut(&mut self) -> &mut ParamStore {
        &mut self.store
    }

    fn attach_plan(&mut self, plan: &BatchPlan) -> Result<()> {
        self.batches = build_ht_caches(plan, self.num_entities)?;
        Ok(())
    }

    fn num_batches(&self) -> usize {
        self.batches.len()
    }

    fn score_batch(&self, g: &mut Graph, batch_idx: usize) -> (Var, Var) {
        let cache = &self.batches[batch_idx];
        let side = |g: &mut Graph,
                    pair: &std::sync::Arc<sparse::incidence::IncidencePair>,
                    rels: &std::sync::Arc<Vec<u32>>| {
            // (h − t) + dᵣ − wᵣ(wᵣᵀ(h − t)): ht computed once and reused.
            // Index lists are Arc-shared with the tape (no per-batch copy).
            let ht = g.spmm(&self.store, self.ent, pair.clone());
            let w = g.gather(&self.store, self.normals, rels.clone());
            let dr = g.gather(&self.store, self.translations, rels.clone());
            let dot = g.row_dot(w, ht);
            let proj = g.scale_rows(w, dot);
            let perp = g.sub(ht, proj);
            let expr = g.add(perp, dr);
            self.norm.apply(g, expr)
        };
        let pos = side(g, &cache.pos, &cache.pos_rels);
        let neg = side(g, &cache.neg, &cache.neg_rels);
        (pos, neg)
    }

    fn end_epoch(&mut self) {
        normalize_leading_rows(&mut self.store, self.ent, self.num_entities);
        // Hyperplane normals are unit vectors by definition.
        normalize_leading_rows(&mut self.store, self.normals, self.num_relations);
    }
}

impl TripleScorer for SpTransH {
    fn score_tails(&self, head: u32, rel: u32) -> Vec<f32> {
        let ent = self.store.value(self.ent);
        let dr = self.store.value(self.translations).row(rel as usize);
        let hp = self.project(rel as usize, ent.row(head as usize));
        let query: Vec<f32> = hp.iter().zip(dr).map(|(a, b)| a + b).collect();
        (0..self.num_entities)
            .map(|t| {
                let tp = self.project(rel as usize, ent.row(t));
                self.norm.distance(&query, &tp)
            })
            .collect()
    }

    fn score_heads(&self, rel: u32, tail: u32) -> Vec<f32> {
        let ent = self.store.value(self.ent);
        let dr = self.store.value(self.translations).row(rel as usize);
        let tp = self.project(rel as usize, ent.row(tail as usize));
        let query: Vec<f32> = tp.iter().zip(dr).map(|(a, b)| a - b).collect();
        (0..self.num_entities)
            .map(|h| {
                let hp = self.project(rel as usize, ent.row(h));
                self.norm.distance(&hp, &query)
            })
            .collect()
    }

    fn num_entities(&self) -> usize {
        self.num_entities
    }
}

impl BatchScorer for SpTransH {
    fn num_entities(&self) -> usize {
        self.num_entities
    }

    fn score_tails_into(&self, queries: &[(u32, u32)], out: &mut [f32]) {
        hyperplane_scores_into(
            self.store.value(self.ent).as_slice(),
            self.store.value(self.normals).as_slice(),
            self.store.value(self.translations).as_slice(),
            self.num_entities,
            self.dim,
            self.norm,
            queries,
            QueryDir::Tails,
            out,
        );
    }

    fn score_heads_into(&self, queries: &[(u32, u32)], out: &mut [f32]) {
        hyperplane_scores_into(
            self.store.value(self.ent).as_slice(),
            self.store.value(self.normals).as_slice(),
            self.store.value(self.translations).as_slice(),
            self.num_entities,
            self.dim,
            self.norm,
            queries,
            QueryDir::Heads,
            out,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kg::synthetic::SyntheticKgBuilder;
    use kg::UniformSampler;

    fn setup() -> (Dataset, SpTransH, BatchPlan) {
        let ds = SyntheticKgBuilder::new(40, 4).triples(300).seed(11).build();
        let config = TrainConfig {
            dim: 8,
            batch_size: 64,
            ..Default::default()
        };
        let model = SpTransH::from_config(&ds, &config).unwrap();
        let sampler = UniformSampler::new(ds.num_entities);
        let plan = BatchPlan::build(&ds.train, &ds.all_known(), &sampler, 64, 12);
        (ds, model, plan)
    }

    #[test]
    fn forward_matches_hyperplane_definition() {
        // Compare the rearranged sparse formulation against the direct
        // h⊥ + dᵣ − t⊥ definition.
        let (_, mut model, plan) = setup();
        model.attach_plan(&plan).unwrap();
        let mut g = Graph::new();
        let (pos, _) = model.score_batch(&mut g, 0);
        let batch = plan.batch(0);
        let ent_id = model.params().0;
        let ent = model.store().value(ent_id);
        for i in 0..batch.len().min(8) {
            let t = batch.pos.get(i);
            let hp = model.project(t.rel as usize, ent.row(t.head as usize));
            let tp = model.project(t.rel as usize, ent.row(t.tail as usize));
            let dr = model.store().value(model.params().2).row(t.rel as usize);
            let mut dist = 0.0f32;
            for j in 0..model.dim() {
                let v = hp[j] + dr[j] - tp[j];
                dist += v * v;
            }
            assert!(
                (g.value(pos).get(i, 0) - dist.sqrt()).abs() < 1e-4,
                "triple {i}: {} vs {}",
                g.value(pos).get(i, 0),
                dist.sqrt()
            );
        }
    }

    #[test]
    fn gradients_reach_all_three_params() {
        let (_, mut model, plan) = setup();
        model.attach_plan(&plan).unwrap();
        let mut g = Graph::new();
        let (pos, neg) = model.score_batch(&mut g, 0);
        let loss = g.margin_ranking_loss(pos, neg, 5.0);
        g.backward(loss, model.store_mut());
        let (ent, w, d) = model.params();
        assert!(model.store().grad(ent).frobenius_norm() > 0.0);
        assert!(model.store().grad(w).frobenius_norm() > 0.0);
        assert!(model.store().grad(d).frobenius_norm() > 0.0);
    }

    #[test]
    fn end_epoch_normalizes_normals() {
        let (_, mut model, _) = setup();
        let w_id = model.params().1;
        model.store_mut().value_mut(w_id).as_mut_slice()[0] = 50.0;
        model.end_epoch();
        let w = model.store().value(w_id);
        let norm: f32 = w.row(0).iter().map(|x| x * x).sum::<f32>().sqrt();
        assert!((norm - 1.0).abs() < 1e-5);
    }

    #[test]
    fn projection_is_idempotent() {
        let (_, model, _) = setup();
        let ent_id = model.params().0;
        let x = model.store().value(ent_id).row(0).to_vec();
        let p1 = model.project(0, &x);
        let p2 = model.project(0, &p1);
        for (a, b) in p1.iter().zip(&p2) {
            assert!(
                (a - b).abs() < 1e-5,
                "projection not idempotent: {a} vs {b}"
            );
        }
    }
}
