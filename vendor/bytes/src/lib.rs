//! Minimal offline shim for the subset of the `bytes` crate this workspace
//! uses: [`BytesMut`] as a growable byte buffer with little-endian `put_*`
//! writers, and the [`Buf`] reader trait for advancing `&[u8]` cursors.
//!
//! The container building this repository has no access to crates.io, so the
//! workspace vendors tiny API-compatible stand-ins for its external
//! dependencies (see `vendor/README.md`).

use std::ops::{Deref, DerefMut};

/// A growable, contiguous byte buffer (thin wrapper over `Vec<u8>`).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        Self { data: Vec::new() }
    }

    /// Creates an empty buffer with at least `cap` bytes of capacity.
    pub fn with_capacity(cap: usize) -> Self {
        Self {
            data: Vec::with_capacity(cap),
        }
    }

    /// Clears the buffer, keeping its capacity.
    pub fn clear(&mut self) {
        self.data.clear();
    }

    /// Number of bytes currently in the buffer.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.data
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

/// Write primitive values to the end of a byte buffer.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends a `u64` in little-endian byte order.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a `u32` in little-endian byte order.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends an `f32` in little-endian byte order.
    fn put_f32_le(&mut self, v: f32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends an `f64` in little-endian byte order.
    fn put_f64_le(&mut self, v: f64) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

/// Read primitive values from the front of a byte cursor, advancing it.
pub trait Buf {
    /// Bytes remaining in the cursor.
    fn remaining(&self) -> usize;

    /// Copies `dst.len()` bytes out of the cursor, advancing past them.
    ///
    /// # Panics
    ///
    /// Panics if fewer than `dst.len()` bytes remain.
    fn copy_to_slice(&mut self, dst: &mut [u8]);

    /// Reads a little-endian `u64`, advancing 8 bytes.
    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }

    /// Reads a little-endian `u32`, advancing 4 bytes.
    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }

    /// Reads a little-endian `f32`, advancing 4 bytes.
    fn get_f32_le(&mut self) -> f32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        f32::from_le_bytes(b)
    }

    /// Reads a little-endian `f64`, advancing 8 bytes.
    fn get_f64_le(&mut self) -> f64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        f64::from_le_bytes(b)
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(self.len() >= dst.len(), "buffer underflow");
        let (head, tail) = self.split_at(dst.len());
        dst.copy_from_slice(head);
        *self = tail;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_get_round_trip() {
        let mut buf = BytesMut::with_capacity(32);
        buf.put_slice(b"MAGIC!!!");
        buf.put_u64_le(42);
        buf.put_f32_le(1.5);
        let mut cursor: &[u8] = &buf;
        let mut magic = [0u8; 8];
        cursor.copy_to_slice(&mut magic);
        assert_eq!(&magic, b"MAGIC!!!");
        assert_eq!(cursor.get_u64_le(), 42);
        assert_eq!(cursor.get_f32_le(), 1.5);
        assert_eq!(cursor.remaining(), 0);
    }

    #[test]
    fn clear_keeps_capacity() {
        let mut buf = BytesMut::with_capacity(8);
        buf.put_u64_le(1);
        assert_eq!(buf.len(), 8);
        buf.clear();
        assert!(buf.is_empty());
    }
}
