//! Regenerates **Table 9** (Appendix F): data-parallel scaling of SpTransE
//! on the COVID-19-shaped graph.
//!
//! The paper scales DDP from 4 to 64 A100s; the analog sweeps in-process
//! data-parallel workers (gradient all-reduce per step). Paper claim to
//! check: wall-clock time falls as workers are added (communication is not
//! yet the bottleneck at this scale).

use sptransx::distributed::train_data_parallel;
use sptransx::{SpTransE, TrainConfig};
use sptx_bench::harness::{covid_dataset, epochs_from_env, print_table, scale_from_env, secs};

fn main() {
    let scale = scale_from_env();
    let epochs = epochs_from_env();
    println!("# Table 9 — data-parallel scaling on the COVID-19 stand-in (scale 1/{scale})");
    let ds = covid_dataset(scale);
    println!(
        "\nGraph: {} entities, {} relations, {} triples",
        ds.num_entities,
        ds.num_relations,
        ds.total_triples()
    );
    let cfg = TrainConfig {
        epochs,
        batch_size: 2048,
        dim: 64,
        rel_dim: 16,
        lr: 4e-4,
        ..Default::default()
    };

    let max_workers = xparallel::current_num_threads().min(16);
    let mut workers = vec![1usize, 2, 4, 8, 16];
    workers.retain(|&w| w <= max_workers.max(2));

    let mut rows = Vec::new();
    let mut baseline = None;
    for &w in &workers {
        eprintln!("[table9] {w} workers ...");
        // Each worker thread runs its replica single-threaded so that worker
        // count, not kernel parallelism, is the variable being swept.
        let report = xparallel::with_parallelism(1, || {
            train_data_parallel(&ds, &cfg, w, SpTransE::from_config).expect("distributed training")
        });
        let t = report.wall.as_secs_f64();
        let speedup = baseline.get_or_insert(t);
        rows.push(vec![
            w.to_string(),
            secs(report.wall),
            format!("{:.2}x", *speedup / t),
            report.steps.to_string(),
        ]);
    }
    print_table(
        &format!("SpTransE, {epochs} epochs"),
        &["Workers", "Time (s)", "Speedup vs 1 worker", "Sync steps"],
        &rows,
    );
    println!("\nExpected shape: monotone speedup with diminishing returns (Table 9's");
    println!("706s -> 180s over 4 -> 64 GPUs is a ~3.9x gain over 16x more hardware).");
}
