//! Named wall-clock timers for training-phase attribution.
//!
//! The paper breaks training time into forward / backward / optimizer-step
//! (Table 1, Figure 8) and attributes CPU time to individual functions
//! (Figure 2). Every autograd op and trainer phase wraps itself in a
//! [`scope`]; the accumulated totals regenerate those artifacts.
//!
//! # Examples
//!
//! ```
//! tensor::profile::reset();
//! {
//!     let _t = tensor::profile::scope("my_phase");
//!     std::thread::sleep(std::time::Duration::from_millis(1));
//! }
//! let report = tensor::profile::report();
//! assert!(report.iter().any(|e| e.name == "my_phase" && e.calls == 1));
//! ```

use std::collections::HashMap;
use std::time::{Duration, Instant};

use parking_lot::Mutex;

#[derive(Debug, Default, Clone, Copy)]
struct Entry {
    total: Duration,
    calls: u64,
}

static REGISTRY: Mutex<Option<HashMap<&'static str, Entry>>> = Mutex::new(None);

/// One row of a profiling [`report`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReportEntry {
    /// Scope name.
    pub name: &'static str,
    /// Accumulated wall-clock time.
    pub total: Duration,
    /// Number of times the scope was entered.
    pub calls: u64,
}

/// RAII guard recording elapsed time into the named bucket on drop.
#[derive(Debug)]
pub struct ScopeGuard {
    name: &'static str,
    start: Instant,
}

/// Starts a named timing scope.
///
/// Names must be `'static` (string literals); nesting is allowed and each
/// scope accumulates independently (no exclusive-time subtraction).
pub fn scope(name: &'static str) -> ScopeGuard {
    ScopeGuard {
        name,
        start: Instant::now(),
    }
}

impl Drop for ScopeGuard {
    fn drop(&mut self) {
        let elapsed = self.start.elapsed();
        let mut reg = REGISTRY.lock();
        let map = reg.get_or_insert_with(HashMap::new);
        let e = map.entry(self.name).or_default();
        e.total += elapsed;
        e.calls += 1;
    }
}

/// Returns accumulated totals, sorted by descending total time.
pub fn report() -> Vec<ReportEntry> {
    let reg = REGISTRY.lock();
    let mut rows: Vec<ReportEntry> = reg
        .as_ref()
        .map(|m| {
            m.iter()
                .map(|(&name, e)| ReportEntry {
                    name,
                    total: e.total,
                    calls: e.calls,
                })
                .collect()
        })
        .unwrap_or_default();
    rows.sort_by_key(|e| std::cmp::Reverse(e.total));
    rows
}

/// Total time recorded under `name` (zero if never entered).
pub fn total(name: &str) -> Duration {
    let reg = REGISTRY.lock();
    reg.as_ref()
        .and_then(|m| m.get(name).map(|e| e.total))
        .unwrap_or_default()
}

/// Clears all accumulated totals.
pub fn reset() {
    let mut reg = REGISTRY.lock();
    *reg = None;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scopes_accumulate_calls() {
        reset();
        for _ in 0..3 {
            let _t = scope("unit_test_scope");
        }
        let rows = report();
        let row = rows.iter().find(|e| e.name == "unit_test_scope").unwrap();
        assert_eq!(row.calls, 3);
    }

    #[test]
    fn total_of_unknown_scope_is_zero() {
        assert_eq!(total("never_entered_xyz"), Duration::ZERO);
    }

    #[test]
    fn nested_scopes_both_record() {
        reset();
        {
            let _a = scope("outer_scope_test");
            let _b = scope("inner_scope_test");
        }
        assert!(report().iter().any(|e| e.name == "outer_scope_test"));
        assert!(report().iter().any(|e| e.name == "inner_scope_test"));
    }
}
